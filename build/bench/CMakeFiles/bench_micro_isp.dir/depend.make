# Empty dependencies file for bench_micro_isp.
# This may be replaced when dependencies are built.
