file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_isp.dir/bench_micro_isp.cpp.o"
  "CMakeFiles/bench_micro_isp.dir/bench_micro_isp.cpp.o.d"
  "bench_micro_isp"
  "bench_micro_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
