# Empty compiler generated dependencies file for bench_table6_stability_training.
# This may be replaced when dependencies are built.
