file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_stability_training.dir/bench_table6_stability_training.cpp.o"
  "CMakeFiles/bench_table6_stability_training.dir/bench_table6_stability_training.cpp.o.d"
  "bench_table6_stability_training"
  "bench_table6_stability_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_stability_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
