# Empty compiler generated dependencies file for bench_fig9_top3.
# This may be replaced when dependencies are built.
