file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_top3.dir/bench_fig9_top3.cpp.o"
  "CMakeFiles/bench_fig9_top3.dir/bench_fig9_top3.cpp.o.d"
  "bench_fig9_top3"
  "bench_fig9_top3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_top3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
