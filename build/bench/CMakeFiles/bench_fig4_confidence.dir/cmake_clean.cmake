file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_confidence.dir/bench_fig4_confidence.cpp.o"
  "CMakeFiles/bench_fig4_confidence.dir/bench_fig4_confidence.cpp.o.d"
  "bench_fig4_confidence"
  "bench_fig4_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
