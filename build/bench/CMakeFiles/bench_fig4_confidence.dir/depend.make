# Empty dependencies file for bench_fig4_confidence.
# This may be replaced when dependencies are built.
