# Empty dependencies file for bench_fig1_temporal.
# This may be replaced when dependencies are built.
