# Empty dependencies file for bench_table5_os_cpu.
# This may be replaced when dependencies are built.
