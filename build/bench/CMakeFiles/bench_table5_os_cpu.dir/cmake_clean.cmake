file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_os_cpu.dir/bench_table5_os_cpu.cpp.o"
  "CMakeFiles/bench_table5_os_cpu.dir/bench_table5_os_cpu.cpp.o.d"
  "bench_table5_os_cpu"
  "bench_table5_os_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_os_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
