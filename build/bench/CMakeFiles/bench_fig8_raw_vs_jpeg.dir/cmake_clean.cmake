file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_raw_vs_jpeg.dir/bench_fig8_raw_vs_jpeg.cpp.o"
  "CMakeFiles/bench_fig8_raw_vs_jpeg.dir/bench_fig8_raw_vs_jpeg.cpp.o.d"
  "bench_fig8_raw_vs_jpeg"
  "bench_fig8_raw_vs_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_raw_vs_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
