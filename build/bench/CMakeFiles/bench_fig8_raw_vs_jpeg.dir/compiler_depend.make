# Empty compiler generated dependencies file for bench_fig8_raw_vs_jpeg.
# This may be replaced when dependencies are built.
