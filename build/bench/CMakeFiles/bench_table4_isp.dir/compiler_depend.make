# Empty compiler generated dependencies file for bench_table4_isp.
# This may be replaced when dependencies are built.
