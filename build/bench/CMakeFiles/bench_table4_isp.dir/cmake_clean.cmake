file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_isp.dir/bench_table4_isp.cpp.o"
  "CMakeFiles/bench_table4_isp.dir/bench_table4_isp.cpp.o.d"
  "bench_table4_isp"
  "bench_table4_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
