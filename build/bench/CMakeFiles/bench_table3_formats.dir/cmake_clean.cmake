file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_formats.dir/bench_table3_formats.cpp.o"
  "CMakeFiles/bench_table3_formats.dir/bench_table3_formats.cpp.o.d"
  "bench_table3_formats"
  "bench_table3_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
