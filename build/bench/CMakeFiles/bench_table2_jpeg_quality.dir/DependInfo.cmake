
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_jpeg_quality.cpp" "bench/CMakeFiles/bench_table2_jpeg_quality.dir/bench_table2_jpeg_quality.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_jpeg_quality.dir/bench_table2_jpeg_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/edgestab_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/edgestab_data.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/edgestab_device.dir/DependInfo.cmake"
  "/root/repo/build/src/isp/CMakeFiles/edgestab_isp.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/edgestab_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/edgestab_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/edgestab_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/edgestab_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/edgestab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
