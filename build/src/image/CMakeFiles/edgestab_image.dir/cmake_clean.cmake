file(REMOVE_RECURSE
  "CMakeFiles/edgestab_image.dir/color.cpp.o"
  "CMakeFiles/edgestab_image.dir/color.cpp.o.d"
  "CMakeFiles/edgestab_image.dir/draw.cpp.o"
  "CMakeFiles/edgestab_image.dir/draw.cpp.o.d"
  "CMakeFiles/edgestab_image.dir/image.cpp.o"
  "CMakeFiles/edgestab_image.dir/image.cpp.o.d"
  "CMakeFiles/edgestab_image.dir/metrics.cpp.o"
  "CMakeFiles/edgestab_image.dir/metrics.cpp.o.d"
  "CMakeFiles/edgestab_image.dir/resize.cpp.o"
  "CMakeFiles/edgestab_image.dir/resize.cpp.o.d"
  "libedgestab_image.a"
  "libedgestab_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
