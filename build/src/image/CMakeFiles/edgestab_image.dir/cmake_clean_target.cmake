file(REMOVE_RECURSE
  "libedgestab_image.a"
)
