# Empty compiler generated dependencies file for edgestab_image.
# This may be replaced when dependencies are built.
