# Empty compiler generated dependencies file for edgestab_device.
# This may be replaced when dependencies are built.
