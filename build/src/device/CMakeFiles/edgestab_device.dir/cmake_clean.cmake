file(REMOVE_RECURSE
  "CMakeFiles/edgestab_device.dir/capture.cpp.o"
  "CMakeFiles/edgestab_device.dir/capture.cpp.o.d"
  "CMakeFiles/edgestab_device.dir/fleets.cpp.o"
  "CMakeFiles/edgestab_device.dir/fleets.cpp.o.d"
  "libedgestab_device.a"
  "libedgestab_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
