file(REMOVE_RECURSE
  "libedgestab_device.a"
)
