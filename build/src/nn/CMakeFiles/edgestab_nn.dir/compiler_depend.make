# Empty compiler generated dependencies file for edgestab_nn.
# This may be replaced when dependencies are built.
