file(REMOVE_RECURSE
  "libedgestab_nn.a"
)
