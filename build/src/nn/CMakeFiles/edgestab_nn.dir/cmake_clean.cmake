file(REMOVE_RECURSE
  "CMakeFiles/edgestab_nn.dir/block.cpp.o"
  "CMakeFiles/edgestab_nn.dir/block.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/layers.cpp.o"
  "CMakeFiles/edgestab_nn.dir/layers.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/loss.cpp.o"
  "CMakeFiles/edgestab_nn.dir/loss.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/mobilenet.cpp.o"
  "CMakeFiles/edgestab_nn.dir/mobilenet.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/model.cpp.o"
  "CMakeFiles/edgestab_nn.dir/model.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/optim.cpp.o"
  "CMakeFiles/edgestab_nn.dir/optim.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/quantize.cpp.o"
  "CMakeFiles/edgestab_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/edgestab_nn.dir/trainer.cpp.o"
  "CMakeFiles/edgestab_nn.dir/trainer.cpp.o.d"
  "libedgestab_nn.a"
  "libedgestab_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
