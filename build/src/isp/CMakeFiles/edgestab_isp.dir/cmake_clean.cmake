file(REMOVE_RECURSE
  "CMakeFiles/edgestab_isp.dir/pipeline.cpp.o"
  "CMakeFiles/edgestab_isp.dir/pipeline.cpp.o.d"
  "CMakeFiles/edgestab_isp.dir/raw.cpp.o"
  "CMakeFiles/edgestab_isp.dir/raw.cpp.o.d"
  "CMakeFiles/edgestab_isp.dir/sensor.cpp.o"
  "CMakeFiles/edgestab_isp.dir/sensor.cpp.o.d"
  "CMakeFiles/edgestab_isp.dir/software_isp.cpp.o"
  "CMakeFiles/edgestab_isp.dir/software_isp.cpp.o.d"
  "CMakeFiles/edgestab_isp.dir/stages.cpp.o"
  "CMakeFiles/edgestab_isp.dir/stages.cpp.o.d"
  "libedgestab_isp.a"
  "libedgestab_isp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_isp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
