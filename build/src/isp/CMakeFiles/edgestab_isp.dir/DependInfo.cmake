
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isp/pipeline.cpp" "src/isp/CMakeFiles/edgestab_isp.dir/pipeline.cpp.o" "gcc" "src/isp/CMakeFiles/edgestab_isp.dir/pipeline.cpp.o.d"
  "/root/repo/src/isp/raw.cpp" "src/isp/CMakeFiles/edgestab_isp.dir/raw.cpp.o" "gcc" "src/isp/CMakeFiles/edgestab_isp.dir/raw.cpp.o.d"
  "/root/repo/src/isp/sensor.cpp" "src/isp/CMakeFiles/edgestab_isp.dir/sensor.cpp.o" "gcc" "src/isp/CMakeFiles/edgestab_isp.dir/sensor.cpp.o.d"
  "/root/repo/src/isp/software_isp.cpp" "src/isp/CMakeFiles/edgestab_isp.dir/software_isp.cpp.o" "gcc" "src/isp/CMakeFiles/edgestab_isp.dir/software_isp.cpp.o.d"
  "/root/repo/src/isp/stages.cpp" "src/isp/CMakeFiles/edgestab_isp.dir/stages.cpp.o" "gcc" "src/isp/CMakeFiles/edgestab_isp.dir/stages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/edgestab_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/edgestab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
