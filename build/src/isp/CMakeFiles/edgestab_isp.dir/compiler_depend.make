# Empty compiler generated dependencies file for edgestab_isp.
# This may be replaced when dependencies are built.
