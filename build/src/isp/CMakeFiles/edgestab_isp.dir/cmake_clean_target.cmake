file(REMOVE_RECURSE
  "libedgestab_isp.a"
)
