file(REMOVE_RECURSE
  "libedgestab_data.a"
)
