file(REMOVE_RECURSE
  "CMakeFiles/edgestab_data.dir/dataset.cpp.o"
  "CMakeFiles/edgestab_data.dir/dataset.cpp.o.d"
  "CMakeFiles/edgestab_data.dir/lab_rig.cpp.o"
  "CMakeFiles/edgestab_data.dir/lab_rig.cpp.o.d"
  "CMakeFiles/edgestab_data.dir/labels.cpp.o"
  "CMakeFiles/edgestab_data.dir/labels.cpp.o.d"
  "CMakeFiles/edgestab_data.dir/render.cpp.o"
  "CMakeFiles/edgestab_data.dir/render.cpp.o.d"
  "CMakeFiles/edgestab_data.dir/screen.cpp.o"
  "CMakeFiles/edgestab_data.dir/screen.cpp.o.d"
  "libedgestab_data.a"
  "libedgestab_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
