# Empty compiler generated dependencies file for edgestab_data.
# This may be replaced when dependencies are built.
