file(REMOVE_RECURSE
  "CMakeFiles/edgestab_util.dir/bytes.cpp.o"
  "CMakeFiles/edgestab_util.dir/bytes.cpp.o.d"
  "CMakeFiles/edgestab_util.dir/csv.cpp.o"
  "CMakeFiles/edgestab_util.dir/csv.cpp.o.d"
  "CMakeFiles/edgestab_util.dir/hashing.cpp.o"
  "CMakeFiles/edgestab_util.dir/hashing.cpp.o.d"
  "CMakeFiles/edgestab_util.dir/md5.cpp.o"
  "CMakeFiles/edgestab_util.dir/md5.cpp.o.d"
  "CMakeFiles/edgestab_util.dir/rng.cpp.o"
  "CMakeFiles/edgestab_util.dir/rng.cpp.o.d"
  "CMakeFiles/edgestab_util.dir/stats.cpp.o"
  "CMakeFiles/edgestab_util.dir/stats.cpp.o.d"
  "CMakeFiles/edgestab_util.dir/table.cpp.o"
  "CMakeFiles/edgestab_util.dir/table.cpp.o.d"
  "libedgestab_util.a"
  "libedgestab_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
