# Empty compiler generated dependencies file for edgestab_util.
# This may be replaced when dependencies are built.
