file(REMOVE_RECURSE
  "libedgestab_util.a"
)
