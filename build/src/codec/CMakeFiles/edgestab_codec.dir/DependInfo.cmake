
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/bitio.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/bitio.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/bitio.cpp.o.d"
  "/root/repo/src/codec/codec.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/codec.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/codec.cpp.o.d"
  "/root/repo/src/codec/coeffs.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/coeffs.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/coeffs.cpp.o.d"
  "/root/repo/src/codec/dct.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/dct.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/dct.cpp.o.d"
  "/root/repo/src/codec/heif_like.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/heif_like.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/heif_like.cpp.o.d"
  "/root/repo/src/codec/huffman.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/huffman.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/huffman.cpp.o.d"
  "/root/repo/src/codec/jpeg_like.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/jpeg_like.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/jpeg_like.cpp.o.d"
  "/root/repo/src/codec/planes.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/planes.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/planes.cpp.o.d"
  "/root/repo/src/codec/png_like.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/png_like.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/png_like.cpp.o.d"
  "/root/repo/src/codec/webp_like.cpp" "src/codec/CMakeFiles/edgestab_codec.dir/webp_like.cpp.o" "gcc" "src/codec/CMakeFiles/edgestab_codec.dir/webp_like.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/edgestab_image.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/edgestab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
