file(REMOVE_RECURSE
  "libedgestab_codec.a"
)
