# Empty compiler generated dependencies file for edgestab_codec.
# This may be replaced when dependencies are built.
