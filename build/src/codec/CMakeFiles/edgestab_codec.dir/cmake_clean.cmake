file(REMOVE_RECURSE
  "CMakeFiles/edgestab_codec.dir/bitio.cpp.o"
  "CMakeFiles/edgestab_codec.dir/bitio.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/codec.cpp.o"
  "CMakeFiles/edgestab_codec.dir/codec.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/coeffs.cpp.o"
  "CMakeFiles/edgestab_codec.dir/coeffs.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/dct.cpp.o"
  "CMakeFiles/edgestab_codec.dir/dct.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/heif_like.cpp.o"
  "CMakeFiles/edgestab_codec.dir/heif_like.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/huffman.cpp.o"
  "CMakeFiles/edgestab_codec.dir/huffman.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/jpeg_like.cpp.o"
  "CMakeFiles/edgestab_codec.dir/jpeg_like.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/planes.cpp.o"
  "CMakeFiles/edgestab_codec.dir/planes.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/png_like.cpp.o"
  "CMakeFiles/edgestab_codec.dir/png_like.cpp.o.d"
  "CMakeFiles/edgestab_codec.dir/webp_like.cpp.o"
  "CMakeFiles/edgestab_codec.dir/webp_like.cpp.o.d"
  "libedgestab_codec.a"
  "libedgestab_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
