file(REMOVE_RECURSE
  "libedgestab_tensor.a"
)
