file(REMOVE_RECURSE
  "CMakeFiles/edgestab_tensor.dir/ops.cpp.o"
  "CMakeFiles/edgestab_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/edgestab_tensor.dir/tensor.cpp.o"
  "CMakeFiles/edgestab_tensor.dir/tensor.cpp.o.d"
  "libedgestab_tensor.a"
  "libedgestab_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
