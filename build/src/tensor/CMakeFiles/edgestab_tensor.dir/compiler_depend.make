# Empty compiler generated dependencies file for edgestab_tensor.
# This may be replaced when dependencies are built.
