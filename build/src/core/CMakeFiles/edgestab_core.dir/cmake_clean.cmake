file(REMOVE_RECURSE
  "CMakeFiles/edgestab_core.dir/confidence.cpp.o"
  "CMakeFiles/edgestab_core.dir/confidence.cpp.o.d"
  "CMakeFiles/edgestab_core.dir/experiment.cpp.o"
  "CMakeFiles/edgestab_core.dir/experiment.cpp.o.d"
  "CMakeFiles/edgestab_core.dir/instability.cpp.o"
  "CMakeFiles/edgestab_core.dir/instability.cpp.o.d"
  "CMakeFiles/edgestab_core.dir/stability_training.cpp.o"
  "CMakeFiles/edgestab_core.dir/stability_training.cpp.o.d"
  "CMakeFiles/edgestab_core.dir/workspace.cpp.o"
  "CMakeFiles/edgestab_core.dir/workspace.cpp.o.d"
  "libedgestab_core.a"
  "libedgestab_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgestab_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
