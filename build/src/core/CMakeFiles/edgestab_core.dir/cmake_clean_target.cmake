file(REMOVE_RECURSE
  "libedgestab_core.a"
)
