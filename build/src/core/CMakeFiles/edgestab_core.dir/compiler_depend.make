# Empty compiler generated dependencies file for edgestab_core.
# This may be replaced when dependencies are built.
