# Empty dependencies file for fleet_characterization.
# This may be replaced when dependencies are built.
