file(REMOVE_RECURSE
  "CMakeFiles/fleet_characterization.dir/fleet_characterization.cpp.o"
  "CMakeFiles/fleet_characterization.dir/fleet_characterization.cpp.o.d"
  "fleet_characterization"
  "fleet_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
