# Empty dependencies file for stability_finetune.
# This may be replaced when dependencies are built.
