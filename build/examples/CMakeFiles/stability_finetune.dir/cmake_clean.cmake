file(REMOVE_RECURSE
  "CMakeFiles/stability_finetune.dir/stability_finetune.cpp.o"
  "CMakeFiles/stability_finetune.dir/stability_finetune.cpp.o.d"
  "stability_finetune"
  "stability_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stability_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
