# Empty dependencies file for os_decoder_audit.
# This may be replaced when dependencies are built.
