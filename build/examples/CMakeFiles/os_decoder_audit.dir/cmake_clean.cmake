file(REMOVE_RECURSE
  "CMakeFiles/os_decoder_audit.dir/os_decoder_audit.cpp.o"
  "CMakeFiles/os_decoder_audit.dir/os_decoder_audit.cpp.o.d"
  "os_decoder_audit"
  "os_decoder_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_decoder_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
