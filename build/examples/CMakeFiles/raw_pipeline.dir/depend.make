# Empty dependencies file for raw_pipeline.
# This may be replaced when dependencies are built.
