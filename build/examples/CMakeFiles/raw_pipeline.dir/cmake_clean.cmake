file(REMOVE_RECURSE
  "CMakeFiles/raw_pipeline.dir/raw_pipeline.cpp.o"
  "CMakeFiles/raw_pipeline.dir/raw_pipeline.cpp.o.d"
  "raw_pipeline"
  "raw_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raw_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
