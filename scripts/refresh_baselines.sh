#!/usr/bin/env bash
# Refresh the committed cross-run baselines in baselines/.
#
# Runs the requested benches (default: all 13 table/figure benches) from
# a build tree with --repeats N, then promotes the candidate
# BENCH_<name>.json files each run emits in bench_out/ into the repo's
# baselines/ directory. Perf bands in a baseline are medians + MADs of
# *this machine's* wall/cpu timings — refresh on the machine that will
# run the sentinel, and commit the result only if that machine is the
# reference rig (e.g. the CI runner).
#
# usage: scripts/refresh_baselines.sh [-b BUILD_DIR] [-r REPEATS]
#                                     [-B BACKEND] [-s] [bench ...]
#   -b BUILD_DIR  build tree holding the bench binaries (default: build)
#   -r REPEATS    repeats per bench; odd values give a true median
#                 (default: 5)
#   -B BACKEND    kernel tier to bench (scalar|avx2|int8, default: scalar).
#                 Non-scalar runs emit tier-decorated candidates
#                 (BENCH_<name>__BACKEND.json), so each tier keeps its own
#                 baseline history — refresh each tier you sentinel.
#   -s            smoke mode: EDGESTAB_RIG_OBJECTS=2, for a quick local
#                 sanity pass (do NOT commit smoke baselines)
#   bench ...     bench executable names (default: every bench_* binary)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
repeats=5
smoke=0
backend=""
while getopts "b:r:B:sh" opt; do
  case "$opt" in
    b) build_dir="$OPTARG" ;;
    r) repeats="$OPTARG" ;;
    B) backend="$OPTARG" ;;
    s) smoke=1 ;;
    *) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 1 ;;
  esac
done
shift $((OPTIND - 1))

bench_dir="$build_dir/bench"
[ -d "$bench_dir" ] || {
  echo "refresh_baselines: no bench binaries in $bench_dir — build first" >&2
  exit 1
}

if [ "$#" -gt 0 ]; then
  benches=("$@")
else
  benches=()
  for exe in "$bench_dir"/bench_*; do
    [ -x "$exe" ] && benches+=("$(basename "$exe")")
  done
fi

env_extra=()
if [ "$smoke" -eq 1 ]; then
  env_extra+=("EDGESTAB_RIG_OBJECTS=2")
  echo "refresh_baselines: SMOKE run — do not commit these baselines" >&2
fi
if [ -n "$backend" ]; then
  case "$backend" in
    scalar|avx2|int8) env_extra+=("EDGESTAB_BACKEND=$backend") ;;
    *) echo "refresh_baselines: unknown backend '$backend'" >&2; exit 1 ;;
  esac
fi

workdir="$(mktemp -d "${TMPDIR:-/tmp}/refresh_baselines.XXXXXX")"
trap 'rm -rf "$workdir"' EXIT

mkdir -p "$repo_root/baselines"
for bench in "${benches[@]}"; do
  echo "== $bench (--repeats $repeats)"
  (cd "$workdir" &&
   env "EDGESTAB_CACHE=$build_dir/edgestab_cache" \
       ${env_extra[@]+"${env_extra[@]}"} \
       "$bench_dir/$bench" --repeats "$repeats")
done

shopt -s nullglob
candidates=("$workdir"/bench_out/BENCH_*.json)
if [ "${#candidates[@]}" -eq 0 ]; then
  echo "refresh_baselines: no BENCH_*.json candidates produced" >&2
  exit 1
fi
for candidate in "${candidates[@]}"; do
  cp "$candidate" "$repo_root/baselines/"
  echo "promoted baselines/$(basename "$candidate")"
done
echo "refresh_baselines: done — review 'git diff baselines/' before committing"
