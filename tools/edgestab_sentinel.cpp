// edgestab_sentinel — the cross-run regression sentinel CLI.
//
//   edgestab_sentinel compare --bench fig3 [--runs bench_out/runs.jsonl]
//       [--baseline FILE | --baseline-dir baselines] [--rel-tol 0.25]
//       [--mad-k 5] [--perf-advisory] [--json]
//     Diff the newest archived record of a bench against its committed
//     baseline. Exit 0 = no regressions, 2 = regressions present,
//     1 = usage/IO error.
//
//   edgestab_sentinel trend [--runs FILE] [--out bench_out/trend.html]
//       [--baseline-dir baselines]
//     Render the self-contained HTML trend report over the whole run
//     archive, marking points that regress against their baseline.
//
//   edgestab_sentinel list [--runs FILE]
//     One line per archived run.
//
//   edgestab_sentinel hotspots FILE [--top N]
//     Render the hotspot table of a <bench>.profile.json written by a
//     --profile run.
//
//   edgestab_sentinel fleet FILE [--format text|html] [--out FILE]
//     Re-render the fleet health dashboard (or the per-device terminal
//     table) offline from a <bench>.fleet.json written by a --telemetry
//     run.
//
// Baselines are refreshed with scripts/refresh_baselines.sh, which
// copies the candidate BENCH_<name>.json files a bench run emits into
// the committed baselines/ directory.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>
#include <vector>

#include "obs/baseline.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/profiler.h"
#include "obs/telemetry/fleet_report.h"

using namespace edgestab;

namespace {

constexpr char kDefaultRuns[] = "bench_out/runs.jsonl";
constexpr char kDefaultBaselineDir[] = "baselines";

int usage() {
  std::fprintf(
      stderr,
      "usage: edgestab_sentinel <compare|trend|list> [options]\n"
      "  compare --bench NAME [--runs FILE] [--baseline FILE]\n"
      "          [--baseline-dir DIR] [--rel-tol X] [--mad-k X]\n"
      "          [--perf-advisory] [--json]\n"
      "  trend   [--runs FILE] [--out FILE] [--baseline-dir DIR]\n"
      "  list    [--runs FILE]\n"
      "  hotspots FILE [--top N]\n"
      "  fleet   FILE [--format text|html] [--out FILE]\n");
  return 1;
}

/// `--flag value` / `--flag=value` option scanner.
bool option_value(int argc, char** argv, int& i, const char* flag,
                  std::string* out) {
  std::string arg = argv[i];
  std::string prefix = std::string(flag) + "=";
  if (arg == flag && i + 1 < argc) {
    *out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "sentinel: short write to %s\n", path.c_str());
  return ok;
}

int cmd_compare(int argc, char** argv) {
  std::string bench, runs_path = kDefaultRuns, baseline_path;
  std::string baseline_dir = kDefaultBaselineDir;
  obs::CompareOptions options;
  bool perf_advisory = false, as_json = false;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (option_value(argc, argv, i, "--bench", &bench) ||
        option_value(argc, argv, i, "--runs", &runs_path) ||
        option_value(argc, argv, i, "--baseline", &baseline_path) ||
        option_value(argc, argv, i, "--baseline-dir", &baseline_dir))
      continue;
    if (option_value(argc, argv, i, "--rel-tol", &value)) {
      options.perf_rel_tol = std::atof(value.c_str());
      continue;
    }
    if (option_value(argc, argv, i, "--mad-k", &value)) {
      options.perf_mad_k = std::atof(value.c_str());
      continue;
    }
    if (std::strcmp(argv[i], "--perf-advisory") == 0) {
      perf_advisory = true;
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
      continue;
    }
    std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
    return usage();
  }
  if (bench.empty()) {
    std::fprintf(stderr, "sentinel: compare requires --bench NAME\n");
    return usage();
  }

  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::load_run_records(runs_path, &records, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }
  const obs::RunRecord* latest = nullptr;
  for (const obs::RunRecord& r : records)
    if (r.bench == bench) latest = &r;  // archive is append-only: last wins
  if (latest == nullptr) {
    std::fprintf(stderr,
                 "sentinel: no archived run of '%s' in %s — run the bench "
                 "first\n",
                 bench.c_str(), runs_path.c_str());
    return 1;
  }

  if (baseline_path.empty())
    baseline_path = baseline_dir + "/BENCH_" + bench + ".json";
  if (!file_exists(baseline_path)) {
    std::fprintf(stderr,
                 "sentinel: no baseline at %s — refresh with "
                 "scripts/refresh_baselines.sh (or pass --baseline FILE)\n",
                 baseline_path.c_str());
    return 1;
  }
  obs::Baseline baseline;
  if (!obs::load_baseline(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }

  obs::CompareReport report = obs::compare_run(*latest, baseline, options);
  if (as_json)
    std::printf("%s\n", obs::compare_report_json(report).c_str());
  else
    std::printf("%s", obs::compare_report_text(report).c_str());

  int blocking = 0;
  for (const obs::MetricVerdict& v : report.verdicts) {
    if (v.verdict != obs::Verdict::kRegressed) continue;
    if (perf_advisory && v.kind == obs::MetricKind::kPerf) {
      if (!as_json)
        std::printf("  (perf regression on '%s' is advisory)\n",
                    v.name.c_str());
      continue;
    }
    ++blocking;
  }
  return blocking > 0 ? 2 : 0;
}

int cmd_trend(int argc, char** argv) {
  std::string runs_path = kDefaultRuns, out_path = "bench_out/trend.html";
  std::string baseline_dir = kDefaultBaselineDir;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--runs", &runs_path) ||
        option_value(argc, argv, i, "--out", &out_path) ||
        option_value(argc, argv, i, "--baseline-dir", &baseline_dir))
      continue;
    std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
    return usage();
  }
  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::load_run_records(runs_path, &records, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }

  std::vector<obs::Baseline> baselines;
  std::vector<std::string> seen;
  for (const obs::RunRecord& r : records) {
    bool done = false;
    for (const std::string& s : seen) done = done || s == r.bench;
    if (done) continue;
    seen.push_back(r.bench);
    std::string path = baseline_dir + "/BENCH_" + r.bench + ".json";
    if (!file_exists(path)) continue;  // trends render fine without one
    obs::Baseline baseline;
    if (obs::load_baseline(path, &baseline, &error))
      baselines.push_back(std::move(baseline));
    else
      std::fprintf(stderr, "sentinel: skipping %s: %s\n", path.c_str(),
                   error.c_str());
  }

  if (!write_file(out_path, obs::trend_html(records, baselines))) return 1;
  std::printf("sentinel: %s (%zu run(s), %zu baseline(s))\n",
              out_path.c_str(), records.size(), baselines.size());
  return 0;
}

int cmd_list(int argc, char** argv) {
  std::string runs_path = kDefaultRuns;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--runs", &runs_path)) continue;
    std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
    return usage();
  }
  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::load_run_records(runs_path, &records, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }
  std::printf("%-20s %-20s %-14s %7s %9s %7s %s\n", "bench", "when",
              "git", "threads", "wall[s]", "items", "faults");
  for (const obs::RunRecord& r : records) {
    std::vector<double> wall;
    for (const obs::RepeatSample& s : r.repeats)
      wall.push_back(s.wall_seconds);
    char when[32] = "-";
    if (r.created_unix > 0) {
      std::time_t t = static_cast<std::time_t>(r.created_unix);
      std::tm tm = {};
#if defined(_WIN32)
      gmtime_s(&tm, &t);
#else
      gmtime_r(&t, &tm);
#endif
      std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S", &tm);
    }
    std::printf("%-20s %-20s %-14.14s %7d %9.3f %7.0f %s\n",
                r.bench.c_str(), when, r.git_sha.c_str(), r.threads,
                obs::median_of(wall), r.items,
                r.fault_plan.empty() ? "-" : r.fault_plan.c_str());
  }
  return 0;
}

int cmd_hotspots(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 12;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (option_value(argc, argv, i, "--top", &value)) {
      top_n = static_cast<std::size_t>(std::atoi(value.c_str()));
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: hotspots takes one profile file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "sentinel: hotspots requires a <bench>.profile.json\n");
    return usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    text.append(buffer, got);
  std::fclose(f);

  std::string error;
  std::optional<obs::JsonValue> doc = obs::parse_json(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  obs::ProfileDoc profile;
  if (!obs::parse_profile(*doc, &profile, &error)) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  std::printf("%s — profile digest %s\n", profile.bench.c_str(),
              profile.digest.c_str());
  std::printf("%s", obs::hotspot_table(profile.nodes, top_n).c_str());
  std::printf(
      "allocs: %llu (%.2f MiB), peak live %.2f MiB\n",
      static_cast<unsigned long long>(profile.totals.alloc_count),
      static_cast<double>(profile.totals.alloc_bytes) / (1024.0 * 1024.0),
      static_cast<double>(profile.totals.peak_live_bytes) /
          (1024.0 * 1024.0));
  return 0;
}

int cmd_fleet(int argc, char** argv) {
  std::string path, format = "text", out_path;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--format", &format) ||
        option_value(argc, argv, i, "--out", &out_path))
      continue;
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: fleet takes one fleet.json file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr, "sentinel: fleet requires a <bench>.fleet.json\n");
    return usage();
  }
  if (format != "text" && format != "html") {
    std::fprintf(stderr, "sentinel: --format must be text or html\n");
    return usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    text.append(buffer, got);
  std::fclose(f);

  std::string error;
  std::optional<obs::JsonValue> doc = obs::parse_json(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  obs::FleetDoc fleet;
  if (!obs::parse_fleet(*doc, &fleet, &error)) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  if (format == "html") {
    std::string html = obs::fleet_html(fleet.report, fleet.bench);
    if (out_path.empty()) {
      std::printf("%s", html.c_str());
      return 0;
    }
    if (!write_file(out_path, html)) return 1;
    std::printf("sentinel: %s (%zu device(s), %zu alert(s))\n",
                out_path.c_str(), fleet.report.fleet.devices.size(),
                fleet.report.alerts.total());
    return 0;
  }
  std::printf("%s — fleet health (alert digest %s)\n", fleet.bench.c_str(),
              obs::hex_digest(fleet.report.alerts.digest()).c_str());
  std::printf("%s", obs::fleet_text(fleet.report).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  if (command == "compare") return cmd_compare(argc, argv);
  if (command == "trend") return cmd_trend(argc, argv);
  if (command == "list") return cmd_list(argc, argv);
  if (command == "hotspots") return cmd_hotspots(argc, argv);
  if (command == "fleet") return cmd_fleet(argc, argv);
  std::fprintf(stderr, "sentinel: unknown command '%s'\n", command.c_str());
  return usage();
}
