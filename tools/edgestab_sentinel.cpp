// edgestab_sentinel — the cross-run regression sentinel CLI.
//
//   edgestab_sentinel compare --bench fig3 [--runs bench_out/runs.jsonl]
//       [--baseline FILE | --baseline-dir baselines] [--rel-tol 0.25]
//       [--mad-k 5] [--perf-advisory] [--json]
//     Diff the newest archived record of a bench against its committed
//     baseline. Exit 0 = no regressions, 2 = regressions present,
//     1 = usage/IO error.
//
//   edgestab_sentinel trend [--runs FILE] [--out bench_out/trend.html]
//       [--baseline-dir baselines]
//     Render the self-contained HTML trend report over the whole run
//     archive, marking points that regress against their baseline.
//
//   edgestab_sentinel list [--runs FILE]
//     One line per archived run.
//
//   edgestab_sentinel hotspots FILE [--top N]
//     Render the hotspot table of a <bench>.profile.json written by a
//     --profile run.
//
//   edgestab_sentinel fleet FILE [--format text|html] [--out FILE]
//     Re-render the fleet health dashboard (or the per-device terminal
//     table) offline from a <bench>.fleet.json written by a --telemetry
//     run.
//
//   edgestab_sentinel soak FILE [--devices N]
//     Re-render a streaming-service soak report offline from a
//     <bench>.soak.json written by bench_fleet_soak: outcome mix, stage
//     queue pressure, breaker totals, the modeled latency tail and the
//     N busiest-failing devices.
//
//   edgestab_sentinel timeline FILE [--out FILE]
//     Summarize a <bench>.timeline.json written by a --timeline run:
//     epoch geometry, per-outcome totals reconciled against the shot
//     count, breaker transitions and sampled traces. With --out, re-
//     render the self-contained timeline.html — byte-identical to the
//     one the bench wrote, because the HTML is a pure function of the
//     parsed document.
//
//   edgestab_sentinel prune FILE --keep N
//     Rewrite the run archive keeping only the newest N records per
//     bench (bench names carry the tier suffix, so per (bench, tier)).
//     Crash-safe: tmp sibling + atomic rename.
//
// Baselines are refreshed with scripts/refresh_baselines.sh, which
// copies the candidate BENCH_<name>.json files a bench run emits into
// the committed baselines/ directory.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <optional>
#include <string>
#include <vector>

#include "obs/baseline.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/profiler.h"
#include "obs/telemetry/fleet_report.h"
#include "obs/timeline/timeline.h"
#include "obs/timeline/timeline_report.h"
#include "util/table.h"

using namespace edgestab;

namespace {

constexpr char kDefaultRuns[] = "bench_out/runs.jsonl";
constexpr char kDefaultBaselineDir[] = "baselines";

int usage() {
  std::fprintf(
      stderr,
      "usage: edgestab_sentinel <compare|trend|list> [options]\n"
      "  compare --bench NAME [--runs FILE] [--baseline FILE]\n"
      "          [--baseline-dir DIR] [--rel-tol X] [--mad-k X]\n"
      "          [--perf-advisory] [--json]\n"
      "  trend   [--runs FILE] [--out FILE] [--baseline-dir DIR]\n"
      "  list    [--runs FILE]\n"
      "  hotspots FILE [--top N]\n"
      "  fleet   FILE [--format text|html] [--out FILE]\n"
      "  soak    FILE [--devices N]\n"
      "  timeline FILE [--out FILE]\n"
      "  prune   FILE --keep N\n");
  return 1;
}

/// `--flag value` / `--flag=value` option scanner.
bool option_value(int argc, char** argv, int& i, const char* flag,
                  std::string* out) {
  std::string arg = argv[i];
  std::string prefix = std::string(flag) + "=";
  if (arg == flag && i + 1 < argc) {
    *out = argv[++i];
    return true;
  }
  if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    return true;
  }
  return false;
}

bool file_exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "sentinel: short write to %s\n", path.c_str());
  return ok;
}

int cmd_compare(int argc, char** argv) {
  std::string bench, runs_path = kDefaultRuns, baseline_path;
  std::string baseline_dir = kDefaultBaselineDir;
  obs::CompareOptions options;
  bool perf_advisory = false, as_json = false;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (option_value(argc, argv, i, "--bench", &bench) ||
        option_value(argc, argv, i, "--runs", &runs_path) ||
        option_value(argc, argv, i, "--baseline", &baseline_path) ||
        option_value(argc, argv, i, "--baseline-dir", &baseline_dir))
      continue;
    if (option_value(argc, argv, i, "--rel-tol", &value)) {
      options.perf_rel_tol = std::atof(value.c_str());
      continue;
    }
    if (option_value(argc, argv, i, "--mad-k", &value)) {
      options.perf_mad_k = std::atof(value.c_str());
      continue;
    }
    if (std::strcmp(argv[i], "--perf-advisory") == 0) {
      perf_advisory = true;
      continue;
    }
    if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
      continue;
    }
    std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
    return usage();
  }
  if (bench.empty()) {
    std::fprintf(stderr, "sentinel: compare requires --bench NAME\n");
    return usage();
  }

  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::load_run_records(runs_path, &records, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }
  const obs::RunRecord* latest = nullptr;
  for (const obs::RunRecord& r : records)
    if (r.bench == bench) latest = &r;  // archive is append-only: last wins
  if (latest == nullptr) {
    std::fprintf(stderr,
                 "sentinel: no archived run of '%s' in %s — run the bench "
                 "first\n",
                 bench.c_str(), runs_path.c_str());
    return 1;
  }

  if (baseline_path.empty())
    baseline_path = baseline_dir + "/BENCH_" + bench + ".json";
  if (!file_exists(baseline_path)) {
    std::fprintf(stderr,
                 "sentinel: no baseline at %s — refresh with "
                 "scripts/refresh_baselines.sh (or pass --baseline FILE)\n",
                 baseline_path.c_str());
    return 1;
  }
  obs::Baseline baseline;
  if (!obs::load_baseline(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }

  obs::CompareReport report = obs::compare_run(*latest, baseline, options);
  if (as_json)
    std::printf("%s\n", obs::compare_report_json(report).c_str());
  else
    std::printf("%s", obs::compare_report_text(report).c_str());

  int blocking = 0;
  for (const obs::MetricVerdict& v : report.verdicts) {
    if (v.verdict != obs::Verdict::kRegressed) continue;
    if (perf_advisory && v.kind == obs::MetricKind::kPerf) {
      if (!as_json)
        std::printf("  (perf regression on '%s' is advisory)\n",
                    v.name.c_str());
      continue;
    }
    ++blocking;
  }
  return blocking > 0 ? 2 : 0;
}

int cmd_trend(int argc, char** argv) {
  std::string runs_path = kDefaultRuns, out_path = "bench_out/trend.html";
  std::string baseline_dir = kDefaultBaselineDir;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--runs", &runs_path) ||
        option_value(argc, argv, i, "--out", &out_path) ||
        option_value(argc, argv, i, "--baseline-dir", &baseline_dir))
      continue;
    std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
    return usage();
  }
  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::load_run_records(runs_path, &records, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }

  std::vector<obs::Baseline> baselines;
  std::vector<std::string> seen;
  for (const obs::RunRecord& r : records) {
    bool done = false;
    for (const std::string& s : seen) done = done || s == r.bench;
    if (done) continue;
    seen.push_back(r.bench);
    std::string path = baseline_dir + "/BENCH_" + r.bench + ".json";
    if (!file_exists(path)) continue;  // trends render fine without one
    obs::Baseline baseline;
    if (obs::load_baseline(path, &baseline, &error))
      baselines.push_back(std::move(baseline));
    else
      std::fprintf(stderr, "sentinel: skipping %s: %s\n", path.c_str(),
                   error.c_str());
  }

  if (!write_file(out_path, obs::trend_html(records, baselines))) return 1;
  std::printf("sentinel: %s (%zu run(s), %zu baseline(s))\n",
              out_path.c_str(), records.size(), baselines.size());
  return 0;
}

int cmd_list(int argc, char** argv) {
  std::string runs_path = kDefaultRuns;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--runs", &runs_path)) continue;
    std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
    return usage();
  }
  std::vector<obs::RunRecord> records;
  std::string error;
  if (!obs::load_run_records(runs_path, &records, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }
  std::printf("%-20s %-20s %-14s %7s %9s %7s %s\n", "bench", "when",
              "git", "threads", "wall[s]", "items", "faults");
  for (const obs::RunRecord& r : records) {
    std::vector<double> wall;
    for (const obs::RepeatSample& s : r.repeats)
      wall.push_back(s.wall_seconds);
    char when[32] = "-";
    if (r.created_unix > 0) {
      std::time_t t = static_cast<std::time_t>(r.created_unix);
      std::tm tm = {};
#if defined(_WIN32)
      gmtime_s(&tm, &t);
#else
      gmtime_r(&t, &tm);
#endif
      std::strftime(when, sizeof(when), "%Y-%m-%d %H:%M:%S", &tm);
    }
    std::printf("%-20s %-20s %-14.14s %7d %9.3f %7.0f %s\n",
                r.bench.c_str(), when, r.git_sha.c_str(), r.threads,
                obs::median_of(wall), r.items,
                r.fault_plan.empty() ? "-" : r.fault_plan.c_str());
  }
  return 0;
}

int cmd_hotspots(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 12;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (option_value(argc, argv, i, "--top", &value)) {
      top_n = static_cast<std::size_t>(std::atoi(value.c_str()));
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: hotspots takes one profile file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "sentinel: hotspots requires a <bench>.profile.json\n");
    return usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    text.append(buffer, got);
  std::fclose(f);

  std::string error;
  std::optional<obs::JsonValue> doc = obs::parse_json(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  obs::ProfileDoc profile;
  if (!obs::parse_profile(*doc, &profile, &error)) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  std::printf("%s — profile digest %s\n", profile.bench.c_str(),
              profile.digest.c_str());
  std::printf("%s", obs::hotspot_table(profile.nodes, top_n).c_str());
  std::printf(
      "allocs: %llu (%.2f MiB), peak live %.2f MiB\n",
      static_cast<unsigned long long>(profile.totals.alloc_count),
      static_cast<double>(profile.totals.alloc_bytes) / (1024.0 * 1024.0),
      static_cast<double>(profile.totals.peak_live_bytes) /
          (1024.0 * 1024.0));
  return 0;
}

int cmd_fleet(int argc, char** argv) {
  std::string path, format = "text", out_path;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--format", &format) ||
        option_value(argc, argv, i, "--out", &out_path))
      continue;
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: fleet takes one fleet.json file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr, "sentinel: fleet requires a <bench>.fleet.json\n");
    return usage();
  }
  if (format != "text" && format != "html") {
    std::fprintf(stderr, "sentinel: --format must be text or html\n");
    return usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    text.append(buffer, got);
  std::fclose(f);

  std::string error;
  std::optional<obs::JsonValue> doc = obs::parse_json(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  obs::FleetDoc fleet;
  if (!obs::parse_fleet(*doc, &fleet, &error)) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  if (format == "html") {
    std::string html = obs::fleet_html(fleet.report, fleet.bench);
    if (out_path.empty()) {
      std::printf("%s", html.c_str());
      return 0;
    }
    if (!write_file(out_path, html)) return 1;
    std::printf("sentinel: %s (%zu device(s), %zu alert(s))\n",
                out_path.c_str(), fleet.report.fleet.devices.size(),
                fleet.report.alerts.total());
    return 0;
  }
  std::printf("%s — fleet health (alert digest %s)\n", fleet.bench.c_str(),
              obs::hex_digest(fleet.report.alerts.digest()).c_str());
  std::printf("%s", obs::fleet_text(fleet.report).c_str());
  return 0;
}

int cmd_timeline(int argc, char** argv) {
  std::string path, out_path;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--out", &out_path)) continue;
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: timeline takes one timeline.json file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "sentinel: timeline requires a <bench>.timeline.json\n");
    return usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    text.append(buffer, got);
  std::fclose(f);

  std::string error;
  obs::TimelineDoc doc;
  if (!obs::parse_timeline(text, &doc, &error)) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  std::printf("%s — timeline digest %s\n",
              doc.bench.empty() ? path.c_str() : doc.bench.c_str(),
              obs::hex_digest(obs::timeline_digest(doc)).c_str());
  std::printf(
      "%zu epoch(s) x %d slots (%lld slots total), trace sample %lld ppm\n",
      doc.epochs.size(), doc.epoch_slots, doc.slots_total,
      doc.trace_sample_ppm);

  // Per-outcome totals are the sum of the per-epoch deltas; their grand
  // total must reconcile exactly against the shots the run folded.
  std::vector<long long> totals(doc.outcomes.size(), 0);
  long long accounted = 0;
  for (const obs::TimelineEpoch& e : doc.epochs)
    for (std::size_t o = 0; o < e.outcomes.size() && o < totals.size(); ++o) {
      totals[o] += e.outcomes[o];
      accounted += e.outcomes[o];
    }
  Table t({"OUTCOME", "SHOTS", "SHARE"});
  for (std::size_t o = 0; o < doc.outcomes.size(); ++o)
    t.add_row({doc.outcomes[o], std::to_string(totals[o]),
               Table::pct(static_cast<double>(totals[o]) /
                          static_cast<double>(std::max(1LL, accounted)))});
  std::printf("%s", t.str().c_str());
  std::printf("shots accounted: %lld\n", accounted);

  std::printf("breaker transitions: %zu\n", doc.transitions.size());
  if (!doc.transitions.empty()) {
    Table tt({"DEVICE", "EPOCH", "SLOT", "FROM", "TO", "CAUSE"});
    for (const obs::BreakerTransition& tr : doc.transitions)
      tt.add_row({std::to_string(tr.device), std::to_string(tr.epoch),
                  std::to_string(tr.slot), obs::timeline_census_name(tr.from),
                  obs::timeline_census_name(tr.to), tr.cause});
    std::printf("%s", tt.str().c_str());
  }
  std::printf("traces: %zu sampled, %lld dropped at the cap\n",
              doc.traces.size(), doc.traces_dropped);

  if (!out_path.empty()) {
    if (!write_file(out_path, obs::timeline_html(doc))) return 1;
    std::printf("sentinel: %s (%zu epoch(s), %zu transition(s))\n",
                out_path.c_str(), doc.epochs.size(), doc.transitions.size());
  }
  return 0;
}

int cmd_prune(int argc, char** argv) {
  std::string path, keep_s;
  for (int i = 2; i < argc; ++i) {
    if (option_value(argc, argv, i, "--keep", &keep_s)) continue;
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: prune takes one runs.jsonl file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty() || keep_s.empty()) {
    std::fprintf(stderr, "sentinel: prune requires FILE and --keep N\n");
    return usage();
  }
  long keep = std::atol(keep_s.c_str());
  if (keep <= 0) {
    std::fprintf(stderr, "sentinel: --keep must be a positive integer\n");
    return usage();
  }
  std::size_t kept = 0, dropped = 0;
  std::string error;
  if (!obs::prune_run_archive(path, static_cast<std::size_t>(keep), &kept,
                              &dropped, &error)) {
    std::fprintf(stderr, "sentinel: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "sentinel: %s pruned to the newest %ld per bench — kept %zu "
      "record(s), dropped %zu\n",
      path.c_str(), keep, kept, dropped);
  return 0;
}

}  // namespace

int cmd_soak(int argc, char** argv) {
  std::string path;
  int top_devices = 8;
  for (int i = 2; i < argc; ++i) {
    std::string value;
    if (option_value(argc, argv, i, "--devices", &value)) {
      top_devices = std::atoi(value.c_str());
      continue;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sentinel: unknown option '%s'\n", argv[i]);
      return usage();
    }
    if (!path.empty()) {
      std::fprintf(stderr, "sentinel: soak takes one soak.json file\n");
      return usage();
    }
    path = argv[i];
  }
  if (path.empty()) {
    std::fprintf(stderr, "sentinel: soak requires a <bench>.soak.json\n");
    return usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "sentinel: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    text.append(buffer, got);
  std::fclose(f);

  std::string error;
  std::optional<obs::JsonValue> doc = obs::parse_json(text, &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "sentinel: %s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const obs::JsonValue* format = doc->find("format");
  if (format == nullptr || format->string_or("") != "edgestab-soak-v1") {
    std::fprintf(stderr, "sentinel: %s is not an edgestab-soak-v1 report\n",
                 path.c_str());
    return 1;
  }

  auto num = [](const obs::JsonValue* obj, const char* key) -> long long {
    if (obj == nullptr) return 0;
    const obs::JsonValue* v = obj->find(key);
    return v == nullptr
               ? 0
               : static_cast<long long>(std::llround(v->number_or(0.0)));
  };
  const obs::JsonValue* agg = doc->find("aggregate");
  const obs::JsonValue* breaker = doc->find("breaker");
  const obs::JsonValue* digests = doc->find("digests");
  const obs::JsonValue* latency = doc->find("latency_us");

  const long long shots = num(&*doc, "shots");
  std::printf("%s — %lld devices x %lld slots (%lld shots)%s\n",
              path.c_str(), num(&*doc, "devices"), num(&*doc, "slots"),
              shots,
              doc->find("completed") != nullptr &&
                      doc->find("completed")->boolean
                  ? ""
                  : " [incomplete]");
  const long long resumed = num(&*doc, "resumed_from_slot");
  if (resumed >= 0)
    std::printf("resumed from slot %lld, %lld checkpoint(s) written\n",
                resumed, num(&*doc, "checkpoints_written"));
  if (digests != nullptr) {
    const obs::JsonValue* a = digests->find("aggregate");
    const obs::JsonValue* l = digests->find("ledger");
    const obs::JsonValue* b = digests->find("breaker");
    std::printf("digests: aggregate %s  ledger %s  breaker %s\n",
                a ? a->string_or("?").c_str() : "?",
                l ? l->string_or("?").c_str() : "?",
                b ? b->string_or("?").c_str() : "?");
  }

  const long long folded = std::max(1LL, num(agg, "shots_folded"));
  Table outcomes({"OUTCOME", "SHOTS", "SHARE"});
  auto outcome_row = [&](const char* label, const char* key) {
    const long long n = num(agg, key);
    outcomes.add_row({label, std::to_string(n),
                      Table::pct(static_cast<double>(n) /
                                 static_cast<double>(folded))});
  };
  outcome_row("ok", "ok");
  outcome_row("shed", "shed");
  outcome_row("breaker-reject", "rejected");
  outcome_row("deadline-timeout", "timeouts");
  outcome_row("capture-lost", "capture_lost");
  outcome_row("decode-lost", "decode_lost");
  std::printf("%s", outcomes.str().c_str());
  std::printf(
      "slots: %lld fully covered, %lld degraded, %lld lost; "
      "%lld unstable of %lld observed\n",
      num(agg, "slots_fully_covered"), num(agg, "slots_degraded"),
      num(agg, "slots_lost"), num(agg, "unstable_slots"),
      num(agg, "slots_observed"));
  std::printf(
      "breaker: %lld open(s), %lld close(s), %lld reject(s); end state "
      "%lld open / %lld half-open / %lld sticky\n",
      num(breaker, "opens"), num(breaker, "closes"),
      num(breaker, "rejects"), num(breaker, "open_devices"),
      num(breaker, "half_open_devices"), num(breaker, "sticky_devices"));
  if (latency != nullptr)
    std::printf(
        "latency (modeled): p50 %.1f ms  p99 %.1f ms  p99.9 %.1f ms  "
        "max %.1f ms\n",
        static_cast<double>(num(latency, "p50")) / 1000.0,
        static_cast<double>(num(latency, "p99")) / 1000.0,
        static_cast<double>(num(latency, "p999")) / 1000.0,
        static_cast<double>(num(latency, "max")) / 1000.0);

  const obs::JsonValue* stages = doc->find("stages");
  if (stages != nullptr && stages->is_array()) {
    Table t({"STAGE", "WORKERS", "CAP", "HIGH-WATER", "PROCESSED"});
    for (const obs::JsonValue& s : stages->items) {
      const obs::JsonValue* name = s.find("name");
      t.add_row({name ? name->string_or("?") : "?",
                 std::to_string(num(&s, "workers")),
                 std::to_string(num(&s, "capacity")),
                 std::to_string(num(&s, "high_water")),
                 std::to_string(num(&s, "processed"))});
    }
    std::printf("%s", t.str().c_str());
  }

  // The N devices losing the most shots, worst first.
  const obs::JsonValue* rows = doc->find("device_rows");
  if (rows != nullptr && rows->is_array() && top_devices > 0) {
    std::vector<const obs::JsonValue*> worst;
    for (const obs::JsonValue& r : rows->items) worst.push_back(&r);
    auto lost = [&](const obs::JsonValue* r) {
      return num(r, "timeouts") + num(r, "rejected") + num(r, "shed") +
             num(r, "capture_lost") + num(r, "decode_lost");
    };
    std::stable_sort(worst.begin(), worst.end(),
                     [&](const obs::JsonValue* a, const obs::JsonValue* b) {
                       return lost(a) > lost(b);
                     });
    if (worst.size() > static_cast<std::size_t>(top_devices))
      worst.resize(static_cast<std::size_t>(top_devices));
    Table t({"DEVICE", "OK", "SHED", "REJECT", "TIMEOUT", "LOST",
             "BREAKER"});
    for (const obs::JsonValue* r : worst) {
      const obs::JsonValue* state = r->find("breaker_state");
      const obs::JsonValue* sticky = r->find("breaker_sticky");
      std::string breaker_cell =
          state != nullptr ? state->string_or("?") : "?";
      if (sticky != nullptr && sticky->boolean) breaker_cell += " (sticky)";
      t.add_row({std::to_string(num(r, "device")),
                 std::to_string(num(r, "ok")),
                 std::to_string(num(r, "shed")),
                 std::to_string(num(r, "rejected")),
                 std::to_string(num(r, "timeouts")),
                 std::to_string(num(r, "capture_lost") +
                                num(r, "decode_lost")),
                 breaker_cell});
    }
    std::printf("worst devices:\n%s", t.str().c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  std::string command = argv[1];
  if (command == "compare") return cmd_compare(argc, argv);
  if (command == "trend") return cmd_trend(argc, argv);
  if (command == "list") return cmd_list(argc, argv);
  if (command == "hotspots") return cmd_hotspots(argc, argv);
  if (command == "fleet") return cmd_fleet(argc, argv);
  if (command == "soak") return cmd_soak(argc, argv);
  if (command == "timeline") return cmd_timeline(argc, argv);
  if (command == "prune") return cmd_prune(argc, argv);
  std::fprintf(stderr, "sentinel: unknown command '%s'\n", command.c_str());
  return usage();
}
