// Fleet characterization: measure how YOUR device mix behaves. Builds a
// custom three-phone fleet (one premium, one budget, one with an
// aggressive ISP), runs the lab rig, and prints an instability report —
// the workflow a team shipping an on-device model would run before
// choosing mitigation strategies.
#include <cstdio>

#include "core/experiment.h"
#include "core/workspace.h"
#include "data/labels.h"
#include "util/table.h"

using namespace edgestab;

namespace {

PhoneProfile premium_phone() {
  PhoneProfile p;
  p.name = "premium";
  p.sensor.width = 64;
  p.sensor.height = 64;
  p.sensor.unit_seed = 501;
  p.isp.name = "premium_isp";
  p.isp.s_curve = 0.3f;
  p.isp.sharpen_amount = 0.5f;
  p.storage_format = ImageFormat::kHeifLike;
  p.storage_quality = 85;
  p.noise_stream = 51;
  return p;
}

PhoneProfile budget_phone() {
  PhoneProfile p;
  p.name = "budget";
  p.sensor.width = 64;
  p.sensor.height = 64;
  p.sensor.unit_seed = 502;
  p.sensor.full_well = 6000.0f;  // noisier sensor
  p.sensor.read_noise = 3.0f;
  p.isp.name = "budget_isp";
  p.isp.demosaic_kind = DemosaicKind::kBilinear;
  p.isp.denoise_strength = 0.6f;
  p.isp.sharpen_amount = 0.2f;
  p.storage_format = ImageFormat::kJpegLike;
  p.storage_quality = 80;
  p.noise_stream = 52;
  return p;
}

PhoneProfile vivid_phone() {
  PhoneProfile p;
  p.name = "vivid";
  p.sensor.width = 64;
  p.sensor.height = 64;
  p.sensor.unit_seed = 503;
  p.isp.name = "vivid_isp";
  p.isp.wb_gains = {1.15f, 1.0f, 0.95f};
  p.isp.ccm = {1.45f, -0.32f, -0.13f,  //
               -0.24f, 1.40f, -0.16f,  //
               -0.10f, -0.36f, 1.46f};
  p.isp.s_curve = 0.55f;
  p.isp.saturation = 1.3f;
  p.storage_format = ImageFormat::kWebpLike;
  p.storage_quality = 70;
  p.noise_stream = 53;
  return p;
}

}  // namespace

int main() {
  Workspace workspace;
  Model model = workspace.base_model();

  std::vector<PhoneProfile> fleet{premium_phone(), budget_phone(),
                                  vivid_phone()};
  LabRigConfig rig;
  rig.objects_per_class = 15;
  rig.seed = 99;

  std::printf("characterizing a custom %zu-phone fleet...\n", fleet.size());
  EndToEndResult r = run_end_to_end(model, fleet, rig);

  Table accuracy({"DEVICE", "STORAGE", "ACCURACY", "TOP-3"});
  for (std::size_t p = 0; p < fleet.size(); ++p)
    accuracy.add_row({fleet[p].name,
                      format_name(fleet[p].storage_format),
                      Table::pct(r.accuracy_by_phone[p]),
                      Table::pct(r.accuracy_by_phone_top3[p])});
  std::printf("\n%s", accuracy.str().c_str());

  std::printf("\ngroup instability: %s over %d stimuli\n",
              Table::pct(r.overall.instability()).c_str(),
              r.overall.total_items);

  Table pairwise({"PAIR", "PAIRWISE INSTABILITY"});
  for (std::size_t a = 0; a < fleet.size(); ++a)
    for (std::size_t b = a + 1; b < fleet.size(); ++b) {
      InstabilityResult pr = pairwise_instability(
          r.observations, static_cast<int>(a), static_cast<int>(b));
      pairwise.add_row({fleet[a].name + " vs " + fleet[b].name,
                        Table::pct(pr.instability())});
    }
  std::printf("\n%s", pairwise.str().c_str());

  Table per_class({"CLASS", "INSTABILITY"});
  for (const auto& [cls, res] : r.by_class)
    per_class.add_row({class_name(cls), Table::pct(res.instability())});
  std::printf("\n%s", per_class.str().c_str());

  std::printf(
      "\nInterpretation: pairs with the largest pipeline gap drive the\n"
      "group number; use the stability_finetune example to mitigate.\n");
  return 0;
}
