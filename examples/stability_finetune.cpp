// Stability fine-tuning walkthrough (§9.1): take the base model, pair
// every Samsung-analogue photo with its iPhone-analogue twin, fine-tune
// with the embedding-distance stability loss, and compare instability
// before and after — the paper's headline mitigation.
#include <cstdio>

#include "core/experiment.h"
#include "core/stability_training.h"
#include "util/table.h"

using namespace edgestab;

int main() {
  Workspace workspace;

  StabilityGridConfig config;       // calibrated defaults
  config.rig.objects_per_class = 20;  // smaller demo run

  std::vector<PhoneProfile> fleet =
      end_to_end_fleet(config.fleet_divergence);
  const PhoneProfile& samsung = find_phone(fleet, "Samsung Galaxy S10");
  const PhoneProfile& iphone = find_phone(fleet, "iPhone XR");

  std::printf("collecting paired captures (%s / %s)...\n",
              samsung.name.c_str(), iphone.name.c_str());
  PairedCaptures data =
      collect_paired_captures(samsung, iphone, config.rig, 0.6f);
  std::printf("  %zu training stimuli, %zu held-out stimuli\n",
              data.train_a.size(), data.test_a.size());

  // Three regimes: untouched base model, plain fine-tuning, and
  // stability training with the two-image companion.
  StabilityCell plain{"no_noise", StabilityLoss::kNone, 0.0f, 0.0f, 0};
  StabilityCell stability{"two_images", StabilityLoss::kEmbedding, 1.0f,
                          0.0f, 0};

  std::printf("fine-tuning (plain)...\n");
  StabilityCellResult plain_result =
      run_stability_cell(workspace, data, plain, config);
  std::printf("fine-tuning (stability, embedding loss, two images)...\n");
  StabilityCellResult stab_result =
      run_stability_cell(workspace, data, stability, config);

  // Base model evaluation for context.
  Model base = workspace.base_model();
  std::vector<ShotPrediction> pa = classify_inputs(base, data.test_a);
  std::vector<ShotPrediction> pb = classify_inputs(base, data.test_b);
  std::vector<Observation> base_obs;
  for (std::size_t i = 0; i < data.test_a.size(); ++i) {
    for (int env = 0; env < 2; ++env) {
      const ShotPrediction& p = env == 0 ? pa[i] : pb[i];
      Observation o;
      o.item = data.test_stimulus[i];
      o.env = env;
      o.class_id = data.test_labels[i];
      o.predicted = p.predicted();
      o.correct = topk_correct(p, o.class_id, 1);
      base_obs.push_back(o);
    }
  }
  double base_instability = compute_instability(base_obs).instability();

  Table t({"MODEL", "INSTABILITY", "ACC (SAMSUNG)", "ACC (IPHONE)"});
  t.add_row({"base (no fine-tuning)", Table::pct(base_instability, 2), "-",
             "-"});
  t.add_row({"plain fine-tuning", Table::pct(plain_result.instability, 2),
             Table::pct(plain_result.accuracy_a, 1),
             Table::pct(plain_result.accuracy_b, 1)});
  t.add_row({"stability training", Table::pct(stab_result.instability, 2),
             Table::pct(stab_result.accuracy_a, 1),
             Table::pct(stab_result.accuracy_b, 1)});
  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nExpected shape (paper Table 6): stability training < plain\n"
      "fine-tuning < no mitigation, with accuracy as good or better.\n");
  return 0;
}
