// Quickstart: render a scene, photograph it with two simulated phones,
// classify both photos, and compute the instability of a small batch.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The first run trains the shared base model (a few minutes) and caches
// it in .edgestab_cache; later runs start instantly.
#include <cstdio>

#include "core/experiment.h"
#include "core/workspace.h"
#include "data/labels.h"

using namespace edgestab;

int main() {
  // 1. The shared fixed-weight classifier (MobileNetV2-style).
  Workspace workspace;
  Model model = workspace.base_model();

  // 2. Two phones from the paper's fleet.
  std::vector<PhoneProfile> fleet = end_to_end_fleet();
  const PhoneProfile& samsung = find_phone(fleet, "Samsung Galaxy S10");
  const PhoneProfile& iphone = find_phone(fleet, "iPhone XR");

  // 3. Photograph the same displayed scene with both.
  SceneSpec spec;
  spec.class_id = kWaterBottle;
  spec.instance_seed = 7;
  Image scene = render_scene(spec, 96);
  Image emission = display_on_screen(scene, ScreenConfig{});

  Pcg32 rng_s(1, samsung.noise_stream);
  Pcg32 rng_i(1, iphone.noise_stream);
  Capture photo_s = take_photo(samsung, emission, rng_s);
  Capture photo_i = take_photo(iphone, emission, rng_i);
  std::printf("Samsung stored %zu bytes of %s; iPhone stored %zu bytes of %s\n",
              photo_s.file.size(), format_name(photo_s.format).c_str(),
              photo_i.file.size(), format_name(photo_i.format).c_str());

  // 4. Classify both captures.
  std::vector<Tensor> inputs{
      capture_to_input(decode_capture(photo_s, JpegDecodeOptions{})),
      capture_to_input(decode_capture(photo_i, JpegDecodeOptions{}))};
  auto preds = classify_inputs(model, inputs);
  std::printf("ground truth: %s\n", class_name(spec.class_id).c_str());
  std::printf("  Samsung -> %-14s (%.2f)\n",
              class_name(preds[0].predicted()).c_str(),
              preds[0].confidence());
  std::printf("  iPhone  -> %-14s (%.2f)\n",
              class_name(preds[1].predicted()).c_str(),
              preds[1].confidence());

  // 5. Instability over a small batch of objects.
  std::vector<Observation> observations;
  for (int obj = 0; obj < 20; ++obj) {
    SceneSpec s;
    s.class_id = target_classes()[static_cast<std::size_t>(obj) % 5];
    s.instance_seed = 100 + static_cast<std::uint64_t>(obj);
    Image em = display_on_screen(render_scene(s, 96), ScreenConfig{});
    std::vector<Tensor> batch{
        capture_to_input(decode_capture(take_photo(samsung, em, rng_s),
                                        JpegDecodeOptions{})),
        capture_to_input(decode_capture(take_photo(iphone, em, rng_i),
                                        JpegDecodeOptions{}))};
    auto p = classify_inputs(model, batch);
    for (int env = 0; env < 2; ++env) {
      Observation o;
      o.item = obj;
      o.env = env;
      o.class_id = s.class_id;
      o.predicted = p[static_cast<std::size_t>(env)].predicted();
      o.correct = prediction_correct(s.class_id, o.predicted);
      observations.push_back(o);
    }
  }
  InstabilityResult result = compute_instability(observations);
  std::printf(
      "\nover %d objects: %d unstable (instability %.1f%%), %d all-correct, "
      "%d all-wrong\n",
      result.total_items, result.unstable_items,
      result.instability() * 100.0, result.all_correct_items,
      result.all_incorrect_items);
  return 0;
}
