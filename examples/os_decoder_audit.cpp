// OS decoder audit (§7 methodology as a reusable workflow): given a set
// of encoded images and a fleet of inference devices, determine whether
// any device decodes them differently — and whether that ever flips a
// prediction. This is the MD5 forensics the paper used to acquit the
// processors and convict the JPEG decoders.
#include <cstdio>
#include <set>

#include "core/experiment.h"
#include "core/workspace.h"
#include "data/labels.h"
#include "util/table.h"

using namespace edgestab;

int main() {
  Workspace workspace;
  Model model = workspace.base_model();

  OsCpuConfig config;
  config.images_per_class = 10;  // quick audit: 120 fixed images
  std::vector<PhoneProfile> fleet = firebase_fleet();

  std::printf("auditing %zu devices on %d pre-encoded images...\n\n",
              fleet.size(), config.images_per_class * kNumClasses);
  OsCpuResult r = run_os_cpu_experiment(model, fleet, config);

  Table t({"DEVICE", "SOC", "JPEG MD5", "PNG MD5"});
  for (std::size_t p = 0; p < r.phone_names.size(); ++p)
    t.add_row({r.phone_names[p], r.soc_names[p],
               r.jpeg_decode_md5[p].substr(0, 10),
               r.png_decode_md5[p].substr(0, 10)});
  std::printf("%s", t.str().c_str());

  // Count distinct decode behaviours.
  std::set<std::string> jpeg_hashes(r.jpeg_decode_md5.begin(),
                                    r.jpeg_decode_md5.end());
  std::set<std::string> png_hashes(r.png_decode_md5.begin(),
                                   r.png_decode_md5.end());
  std::printf(
      "\n%zu distinct JPEG decode behaviours, %zu distinct PNG decode "
      "behaviours\n",
      jpeg_hashes.size(), png_hashes.size());
  std::printf("instability: JPEG %.2f%%, PNG %.2f%%\n",
              r.jpeg_instability.instability() * 100.0,
              r.png_instability.instability() * 100.0);

  std::printf("\ndevices with identical prediction+confidence streams:\n");
  for (const auto& group : r.agreement_groups) {
    std::printf("  {");
    for (std::size_t i = 0; i < group.size(); ++i)
      std::printf("%s%s", i ? ", " : " ", group[i].c_str());
    std::printf(" }\n");
  }

  std::printf(
      "\nVerdict: if the agreement groups track the JPEG-decode hashes\n"
      "(and PNG shows one hash + zero instability), the divergence is OS\n"
      "image decoding — not the processor. That is the paper's §7 finding.\n");
  return 0;
}
