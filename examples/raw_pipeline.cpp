// Raw pipeline tour (§6 / §9.2): capture a raw mosaic, develop it with
// two software ISPs, inspect how differently they render the same
// photons, then compare the storage codecs on the developed image.
#include <cstdio>

#include "codec/codec.h"
#include "core/workspace.h"
#include "data/labels.h"
#include "data/render.h"
#include "data/screen.h"
#include "device/capture.h"
#include "device/fleets.h"
#include "image/metrics.h"
#include "isp/software_isp.h"
#include "util/table.h"

using namespace edgestab;

int main() {
  // Photograph one scene in raw with the Samsung analogue.
  std::vector<PhoneProfile> fleet = end_to_end_fleet();
  const PhoneProfile& samsung = find_phone(fleet, "Samsung Galaxy S10");
  SceneSpec spec;
  spec.class_id = kWineBottle;
  spec.instance_seed = 21;
  Image emission = display_on_screen(render_scene(spec, 96), ScreenConfig{});
  Pcg32 rng(3, samsung.noise_stream);
  Capture shot = take_photo(samsung, emission, rng);
  ES_CHECK(shot.raw.has_value());
  const RawImage& raw = *shot.raw;
  std::printf("raw mosaic: %dx%d, %d-bit, black level %.2f\n", raw.width(),
              raw.height(), raw.bit_depth(), raw.black_level());

  // The raw container round-trips losslessly at sensor precision.
  Bytes dng = raw.serialize();
  RawImage back = RawImage::deserialize(dng);
  std::printf("serialized 'DNG' container: %zu bytes (round-trip ok: %s)\n",
              dng.size(), back.data() == raw.data() ? "yes" : "NO");

  // Develop with the two software ISPs from the Table 4 experiment.
  Image neutral = develop_raw(raw, magick_isp());
  Image vivid = develop_raw(raw, photo_isp());
  std::printf(
      "\nsame raw, two converters: PSNR between renditions %.1f dB, "
      "%.1f%% of\npixels differ by more than 5%% — a free-of-charge "
      "instability source.\n",
      psnr(neutral, vivid), diff_fraction(neutral, vivid, 0.05f) * 100.0);

  // Codec comparison on the neutral development.
  ImageU8 developed = to_u8(neutral);
  Table t({"FORMAT", "BYTES", "PSNR (DB)", "LOSSLESS"});
  for (ImageFormat f : {ImageFormat::kJpegLike, ImageFormat::kPngLike,
                        ImageFormat::kWebpLike, ImageFormat::kHeifLike}) {
    auto codec = make_codec(f);
    Bytes data = codec->encode(developed);
    ImageU8 decoded = codec->decode(data);
    double quality = psnr(to_float(developed), to_float(decoded));
    char psnr_text[32];
    if (codec->lossless()) {
      std::snprintf(psnr_text, sizeof(psnr_text), "inf");
    } else {
      std::snprintf(psnr_text, sizeof(psnr_text), "%.1f", quality);
    }
    t.add_row({format_name(f), std::to_string(data.size()), psnr_text,
               codec->lossless() ? "yes" : "no"});
  }
  std::printf("\n%s", t.str().c_str());
  std::printf(
      "\nThe phone's own pipeline stored %zu bytes of %s for this shot.\n",
      shot.file.size(), format_name(shot.format).c_str());
  return 0;
}
