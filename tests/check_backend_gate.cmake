# Backend gate: the within-backend bit-exactness contract (DESIGN.md §15)
# checked end to end. bench_micro_inference runs twice per kernel tier
# and the archived metric_logits_digest must be identical between the two
# runs of a tier; the int8 tier must additionally differ from scalar
# (quantized inference is a distinct numeric environment, not a no-op).
# Per-tier artifact naming is asserted too: non-scalar runs archive under
# micro_inference__<tier> with their own BENCH_ candidate baseline, so
# they never collide with the scalar sentinel history. A host or build
# without AVX2 is not a failure — the bench must fall back to scalar
# gracefully, and the avx2 digest checks are skipped.
#
# Expected -D variables: BENCH_EXE, WORK_DIR.
foreach(var BENCH_EXE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_backend_gate: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# One tiny case keeps the gate fast; the digest hook forwards the full
# model regardless of which timing cases ran.
set(filter "--benchmark_filter=BM_Forward/standard/1$")

# Runs the bench once under `backend`, returning the archived logits
# digest in ${out_var} and whether the requested tier actually engaged
# (vs fell back to scalar) in ${engaged_var}.
function(run_tier backend out_var engaged_var)
  execute_process(
    COMMAND "${BENCH_EXE}" --backend ${backend} ${filter}
    WORKING_DIRECTORY "${WORK_DIR}"
    OUTPUT_VARIABLE stdout
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench --backend ${backend} exited with ${rc}")
  endif()

  set(engaged TRUE)
  set(run_name "micro_inference__${backend}")
  if(backend STREQUAL "scalar")
    set(run_name "micro_inference")
  elseif(NOT stdout MATCHES "\\[backend\\] ${backend} kernels active")
    # Requested tier unavailable: the contract is graceful scalar
    # fallback, so the artifacts must land under the *undecorated* name.
    set(engaged FALSE)
    set(run_name "micro_inference")
  endif()

  set(meta "${WORK_DIR}/bench_out/${run_name}.meta.json")
  if(NOT EXISTS "${meta}")
    message(FATAL_ERROR "--backend ${backend}: missing manifest ${meta}")
  endif()
  if(NOT EXISTS "${WORK_DIR}/bench_out/BENCH_${run_name}.json")
    message(FATAL_ERROR
      "--backend ${backend}: missing candidate baseline BENCH_${run_name}.json")
  endif()

  file(READ "${meta}" meta_doc)
  if(NOT meta_doc MATCHES "\"backend\": *\"([a-z0-9]+)\"")
    message(FATAL_ERROR "--backend ${backend}: manifest lacks backend field")
  endif()
  if(engaged AND NOT CMAKE_MATCH_1 STREQUAL backend)
    message(FATAL_ERROR
      "--backend ${backend}: manifest records backend '${CMAKE_MATCH_1}'")
  endif()
  if(NOT meta_doc MATCHES "\"metric_logits_digest\": *\"([0-9a-fA-F]+)\"")
    message(FATAL_ERROR
      "--backend ${backend}: manifest lacks metric_logits_digest")
  endif()

  set(${out_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
  set(${engaged_var} "${engaged}" PARENT_SCOPE)
endfunction()

set(digests "")
foreach(tier scalar avx2 int8)
  run_tier(${tier} first engaged)
  if(NOT engaged)
    message(STATUS "backend gate: ${tier} unavailable, scalar fallback OK")
    continue()
  endif()
  run_tier(${tier} second engaged2)
  if(NOT first STREQUAL second)
    message(FATAL_ERROR
      "${tier} tier is not deterministic: ${first} vs ${second}")
  endif()
  message(STATUS "backend gate: ${tier} digest ${first} stable across runs")
  set(digest_${tier} "${first}")
endforeach()

# Scalar always runs and int8 is always available; their digests must
# differ — if they match, the int8 path silently didn't engage.
if(digest_scalar STREQUAL digest_int8)
  message(FATAL_ERROR
    "int8 digest equals scalar digest — quantized path did not engage")
endif()

message(STATUS "backend gate OK")
