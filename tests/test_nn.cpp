// NN library tests: finite-difference gradient checks for every layer and
// loss, optimizer convergence, serialization round-trips, and training
// smoke tests.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/block.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/model.h"
#include "nn/optim.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace edgestab {
namespace {

Tensor random_tensor(std::vector<int> shape, Pcg32& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data())
    v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

/// Scalar projection loss: L = sum_i r_i * y_i with fixed coefficients r.
/// Gradient w.r.t. y is exactly r, so model.backward(r) yields analytic
/// gradients to compare against central finite differences.
class GradCheck {
 public:
  GradCheck(Model& model, Tensor input, std::uint64_t seed)
      : model_(model), input_(std::move(input)) {
    Pcg32 rng(seed, 99);
    Tensor out = model_.forward(input_, /*train=*/true);
    coeffs_ = random_tensor(out.shape(), rng);
  }

  double loss() {
    Tensor out = model_.forward(input_, /*train=*/true);
    double l = 0.0;
    for (std::size_t i = 0; i < out.numel(); ++i)
      l += static_cast<double>(out[i]) * coeffs_[i];
    return l;
  }

  /// Analytic gradients for all params and the input.
  Tensor analytic_input_grad() {
    model_.zero_grads();
    model_.forward(input_, /*train=*/true);
    return model_.backward(coeffs_);
  }

  /// Relative discrepancy between the analytic gradient of entry `slot`
  /// and a central finite difference, minimized over several step sizes.
  /// ReLU6 kinks make any single eps unreliable (the one-sided derivative
  /// is genuinely different within eps of a kink); a real backward bug
  /// disagrees at *every* step size, a kink crossing passes at a smaller
  /// one.
  double min_discrepancy(float* slot, double analytic) {
    double best = std::numeric_limits<double>::infinity();
    for (double eps : {1e-2, 2e-3, 5e-4}) {
      float orig = *slot;
      *slot = orig + static_cast<float>(eps);
      double lp = loss();
      *slot = orig - static_cast<float>(eps);
      double lm = loss();
      *slot = orig;
      double numeric = (lp - lm) / (2 * eps);
      double denom = std::max({std::abs(numeric), std::abs(analytic), 1.0});
      best = std::min(best, std::abs(analytic - numeric) / denom);
    }
    return best;
  }

  /// Verify dL/dθ for a sample of entries of every parameter.
  void check_params(int samples_per_param, double tol) {
    analytic_input_grad();
    Pcg32 pick(123);
    for (Param* p : model_.params()) {
      auto w = p->value.data();
      auto g = p->grad.data();
      int n_check = std::min<int>(samples_per_param,
                                  static_cast<int>(w.size()));
      for (int s = 0; s < n_check; ++s) {
        std::size_t j = pick.uniform_int(
            static_cast<std::uint32_t>(w.size()));
        EXPECT_LT(min_discrepancy(&w[j], g[j]), tol)
            << p->name << "[" << j << "] analytic=" << g[j];
      }
    }
  }

  /// Verify dL/dx for a sample of input entries.
  void check_input(int samples, double tol) {
    Tensor gin = analytic_input_grad();
    Pcg32 pick(321);
    for (int s = 0; s < samples; ++s) {
      std::size_t j =
          pick.uniform_int(static_cast<std::uint32_t>(input_.numel()));
      EXPECT_LT(min_discrepancy(&input_[j], gin[j]), tol)
          << "input[" << j << "]";
    }
  }

 private:
  Model& model_;
  Tensor input_;
  Tensor coeffs_;
};

Model single_layer_model(LayerPtr layer) {
  Model m;
  m.add(std::move(layer));
  Pcg32 rng(7);
  m.init(rng);
  return m;
}

TEST(GradCheckLayers, Conv2D) {
  Model m = single_layer_model(
      std::make_unique<Conv2D>("c", 2, 3, 3, 1, 1, /*use_bias=*/true));
  Pcg32 rng(11);
  GradCheck gc(m, random_tensor({2, 2, 5, 5}, rng), 1);
  gc.check_params(12, 2e-2);
  gc.check_input(12, 2e-2);
}

TEST(GradCheckLayers, Conv2DStride2) {
  Model m = single_layer_model(
      std::make_unique<Conv2D>("c", 3, 4, 3, 2, 1, /*use_bias=*/false));
  Pcg32 rng(12);
  GradCheck gc(m, random_tensor({2, 3, 8, 8}, rng), 2);
  gc.check_params(12, 2e-2);
  gc.check_input(12, 2e-2);
}

TEST(GradCheckLayers, DepthwiseConv) {
  Model m = single_layer_model(std::make_unique<DepthwiseConv2D>(
      "d", 3, 3, 1, 1, /*use_bias=*/true));
  Pcg32 rng(13);
  GradCheck gc(m, random_tensor({2, 3, 6, 6}, rng), 3);
  gc.check_params(12, 2e-2);
  gc.check_input(12, 2e-2);
}

TEST(GradCheckLayers, DepthwiseConvStride2) {
  Model m = single_layer_model(std::make_unique<DepthwiseConv2D>(
      "d", 2, 3, 2, 1, /*use_bias=*/false));
  Pcg32 rng(14);
  GradCheck gc(m, random_tensor({1, 2, 7, 7}, rng), 4);
  gc.check_params(12, 2e-2);
  gc.check_input(12, 2e-2);
}

TEST(GradCheckLayers, Dense) {
  Model m = single_layer_model(std::make_unique<Dense>("fc", 6, 4));
  Pcg32 rng(15);
  GradCheck gc(m, random_tensor({3, 6}, rng), 5);
  gc.check_params(12, 2e-2);
  gc.check_input(12, 2e-2);
}

TEST(GradCheckLayers, BatchNorm4D) {
  Model m = single_layer_model(std::make_unique<BatchNorm>("bn", 3));
  Pcg32 rng(16);
  GradCheck gc(m, random_tensor({4, 3, 4, 4}, rng), 6);
  gc.check_params(6, 3e-2);
  gc.check_input(12, 3e-2);
}

TEST(GradCheckLayers, ReLU6) {
  Model m = single_layer_model(std::make_unique<ReLU>(6.0f));
  Pcg32 rng(17);
  // Scale 3 ensures values both below 0 and above 6 appear.
  GradCheck gc(m, random_tensor({2, 3, 4, 4}, rng, 3.0), 7);
  gc.check_input(16, 2e-2);
}

TEST(GradCheckLayers, GlobalAvgPool) {
  Model m = single_layer_model(std::make_unique<GlobalAvgPool>());
  Pcg32 rng(18);
  GradCheck gc(m, random_tensor({2, 3, 4, 4}, rng), 8);
  gc.check_input(12, 1e-2);
}

TEST(GradCheckLayers, InvertedResidualWithSkip) {
  Model m = single_layer_model(
      std::make_unique<InvertedResidual>("ir", 4, 4, 2, 1));
  Pcg32 rng(19);
  GradCheck gc(m, random_tensor({2, 4, 5, 5}, rng), 9);
  gc.check_params(8, 4e-2);
  gc.check_input(10, 4e-2);
}

TEST(GradCheckLayers, InvertedResidualStride2NoSkip) {
  Model m = single_layer_model(
      std::make_unique<InvertedResidual>("ir", 3, 5, 2, 2));
  Pcg32 rng(20);
  GradCheck gc(m, random_tensor({2, 3, 6, 6}, rng), 10);
  gc.check_params(8, 4e-2);
  gc.check_input(10, 4e-2);
}

TEST(GradCheckLayers, FullMiniModel) {
  MobileNetConfig cfg;
  cfg.input_size = 16;
  cfg.num_classes = 4;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 rng(21);
  m.init(rng);
  GradCheck gc(m, random_tensor({3, 3, 16, 16}, rng), 11);
  gc.check_params(4, 6e-2);
  gc.check_input(6, 6e-2);
}

// ---- Loss gradients ---------------------------------------------------------

TEST(GradCheckLoss, CrossEntropy) {
  Pcg32 rng(30);
  Tensor logits = random_tensor({4, 5}, rng);
  std::vector<int> labels{0, 2, 4, 1};
  Tensor probs, grad;
  cross_entropy_loss(logits, labels, probs, grad);
  const double eps = 1e-3;
  for (std::size_t j = 0; j < logits.numel(); ++j) {
    float orig = logits[j];
    Tensor p2, g2;
    logits[j] = orig + static_cast<float>(eps);
    double lp = cross_entropy_loss(logits, labels, p2, g2);
    logits[j] = orig - static_cast<float>(eps);
    double lm = cross_entropy_loss(logits, labels, p2, g2);
    logits[j] = orig;
    EXPECT_NEAR(grad[j], (lp - lm) / (2 * eps), 2e-3);
  }
}

TEST(GradCheckLoss, KlStability) {
  Pcg32 rng(31);
  Tensor lc = random_tensor({3, 4}, rng);
  Tensor ln = random_tensor({3, 4}, rng);
  Tensor gc, gn;
  kl_stability_loss(lc, ln, &gc, &gn);
  const double eps = 1e-3;
  for (std::size_t j = 0; j < lc.numel(); ++j) {
    float orig = lc[j];
    lc[j] = orig + static_cast<float>(eps);
    double lp = kl_stability_loss(lc, ln, nullptr, nullptr);
    lc[j] = orig - static_cast<float>(eps);
    double lm = kl_stability_loss(lc, ln, nullptr, nullptr);
    lc[j] = orig;
    EXPECT_NEAR(gc[j], (lp - lm) / (2 * eps), 2e-3) << "clean logit " << j;
  }
  for (std::size_t j = 0; j < ln.numel(); ++j) {
    float orig = ln[j];
    ln[j] = orig + static_cast<float>(eps);
    double lp = kl_stability_loss(lc, ln, nullptr, nullptr);
    ln[j] = orig - static_cast<float>(eps);
    double lm = kl_stability_loss(lc, ln, nullptr, nullptr);
    ln[j] = orig;
    EXPECT_NEAR(gn[j], (lp - lm) / (2 * eps), 2e-3) << "noisy logit " << j;
  }
}

TEST(GradCheckLoss, EmbeddingDistance) {
  Pcg32 rng(32);
  Tensor ec = random_tensor({3, 6}, rng);
  Tensor en = random_tensor({3, 6}, rng);
  Tensor gc, gn;
  embedding_distance_loss(ec, en, &gc, &gn);
  const double eps = 1e-3;
  for (std::size_t j = 0; j < ec.numel(); ++j) {
    float orig = ec[j];
    ec[j] = orig + static_cast<float>(eps);
    double lp = embedding_distance_loss(ec, en, nullptr, nullptr);
    ec[j] = orig - static_cast<float>(eps);
    double lm = embedding_distance_loss(ec, en, nullptr, nullptr);
    ec[j] = orig;
    EXPECT_NEAR(gc[j], (lp - lm) / (2 * eps), 2e-3);
    EXPECT_NEAR(gn[j], -gc[j], 1e-6);
  }
}

TEST(Loss, KlZeroForIdenticalLogits) {
  Pcg32 rng(33);
  Tensor l = random_tensor({2, 5}, rng);
  EXPECT_NEAR(kl_stability_loss(l, l, nullptr, nullptr), 0.0, 1e-9);
}

TEST(Loss, EmbeddingZeroForIdentical) {
  Pcg32 rng(34);
  Tensor e = random_tensor({2, 5}, rng);
  EXPECT_NEAR(embedding_distance_loss(e, e, nullptr, nullptr), 0.0, 1e-3);
}

TEST(Loss, AccuracyAndArgmax) {
  Tensor logits({2, 3});
  logits.at2(0, 1) = 5.0f;
  logits.at2(1, 2) = 5.0f;
  EXPECT_EQ(argmax_rows(logits), (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(accuracy(logits, {1, 0}), 0.5);
}

// ---- Optimizers ------------------------------------------------------------

// Minimize ||w - target||^2 with each optimizer.
void optimize_quadratic(Optimizer& opt, Param& p,
                        const std::vector<float>& target, int steps) {
  for (int s = 0; s < steps; ++s) {
    p.zero_grad();
    for (std::size_t i = 0; i < target.size(); ++i)
      p.grad[i] = 2.0f * (p.value[i] - target[i]);
    opt.step();
  }
}

TEST(Optim, SgdConvergesOnQuadratic) {
  Param p("w", {4});
  std::vector<float> target{1.0f, -2.0f, 0.5f, 3.0f};
  Sgd sgd({&p}, 0.05f, 0.9f);
  optimize_quadratic(sgd, p, target, 200);
  for (std::size_t i = 0; i < target.size(); ++i)
    EXPECT_NEAR(p.value[i], target[i], 1e-3);
}

TEST(Optim, AdamConvergesOnQuadratic) {
  Param p("w", {4});
  std::vector<float> target{1.0f, -2.0f, 0.5f, 3.0f};
  Adam adam({&p}, 0.05f);
  optimize_quadratic(adam, p, target, 500);
  for (std::size_t i = 0; i < target.size(); ++i)
    EXPECT_NEAR(p.value[i], target[i], 5e-3);
}

// ---- Model infrastructure ----------------------------------------------------

TEST(Model, SaveLoadRoundTrip) {
  MobileNetConfig cfg;
  cfg.input_size = 16;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model a = build_mini_mobilenet_v2(cfg);
  Pcg32 rng(40);
  a.init(rng);
  Tensor x = random_tensor({2, 3, 16, 16}, rng);
  Tensor ya = a.forward(x, false);

  Bytes state = a.save_state();
  Model b = build_mini_mobilenet_v2(cfg);
  Pcg32 rng2(999);
  b.init(rng2);
  b.load_state(state);
  Tensor yb = b.forward(x, false);
  ASSERT_TRUE(ya.same_shape(yb));
  for (std::size_t i = 0; i < ya.numel(); ++i)
    EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(Model, LoadRejectsDifferentTopology) {
  MobileNetConfig a_cfg;
  a_cfg.input_size = 16;
  a_cfg.num_classes = 3;
  a_cfg.width = 0.5f;
  a_cfg.embedding_dim = 8;
  Model a = build_mini_mobilenet_v2(a_cfg);
  Pcg32 rng(41);
  a.init(rng);
  Bytes state = a.save_state();

  MobileNetConfig b_cfg = a_cfg;
  b_cfg.num_classes = 4;
  Model b = build_mini_mobilenet_v2(b_cfg);
  EXPECT_THROW(b.load_state(state), CheckError);
}

TEST(Model, EmbeddingTapCaptured) {
  MobileNetConfig cfg;
  cfg.input_size = 16;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 rng(42);
  m.init(rng);
  Tensor x = random_tensor({2, 3, 16, 16}, rng);
  m.forward(x, false);
  ASSERT_FALSE(m.embedding().empty());
  EXPECT_EQ(m.embedding().dim(0), 2);
  EXPECT_EQ(m.embedding().dim(1), 8);
  // Embedding is post-ReLU: non-negative.
  for (std::size_t i = 0; i < m.embedding().numel(); ++i)
    EXPECT_GE(m.embedding()[i], 0.0f);
}

// ---- Training smoke ----------------------------------------------------------

/// Trivially separable dataset: class = brightest channel.
TensorDataset make_channel_dataset(int n, int size, Pcg32& rng) {
  TensorDataset ds;
  ds.images = Tensor({n, 3, size, size});
  ds.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    int cls = static_cast<int>(rng.uniform_int(3u));
    ds.labels[static_cast<std::size_t>(i)] = cls;
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < size; ++y)
        for (int x = 0; x < size; ++x) {
          float base = (c == cls) ? 0.7f : -0.5f;
          ds.images.at4(i, c, y, x) =
              base + static_cast<float>(rng.normal(0.0, 0.15));
        }
  }
  return ds;
}

TEST(Trainer, LearnsSeparableTask) {
  Pcg32 rng(50);
  TensorDataset train = make_channel_dataset(120, 8, rng);
  TensorDataset val = make_channel_dataset(60, 8, rng);

  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 init_rng(51);
  m.init(init_rng);

  TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 16;
  tc.lr = 3e-3f;
  tc.seed = 52;
  TrainStats stats = train_classifier(m, train, &val, tc);
  EXPECT_GT(stats.final_val_accuracy, 0.9);
}

TEST(Trainer, StabilityTrainingRunsAndImprovesInvariance) {
  Pcg32 rng(60);
  TensorDataset train = make_channel_dataset(96, 8, rng);

  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 init_rng(61);
  m.init(init_rng);

  CompanionFn gaussian = [](const Tensor& clean, int, Pcg32& r) {
    Tensor noisy = clean;
    for (float& v : noisy.data())
      v += static_cast<float>(r.normal(0.0, 0.2));
    return noisy;
  };

  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 16;
  tc.lr = 3e-3f;
  tc.seed = 62;
  TrainStats stats = train_stability(m, train, nullptr, StabilityLoss::kKl,
                                     1.0f, gaussian, tc);
  ASSERT_EQ(stats.epochs.size(), 6u);
  for (const auto& e : stats.epochs) {
    EXPECT_TRUE(std::isfinite(e.loss));
    EXPECT_GE(e.stability_loss, 0.0);
  }

  // The real invariance property: compared with plain fine-tuning from
  // the same initialization, the stability-trained model's predictions
  // must move less when the input is perturbed.
  Model plain = build_mini_mobilenet_v2(cfg);
  Pcg32 init_rng2(61);
  plain.init(init_rng2);
  TrainStats plain_stats =
      train_classifier(plain, train, nullptr, tc);
  (void)plain_stats;

  auto mean_noise_kl = [&](Model& model) {
    Pcg32 noise_rng(63);
    Tensor noisy = train.images;
    for (float& v : noisy.data())
      v += static_cast<float>(noise_rng.normal(0.0, 0.2));
    Tensor p_clean = predict_probs(model, train.images);
    Tensor p_noisy = predict_probs(model, noisy);
    double kl = 0.0;
    for (int i = 0; i < p_clean.dim(0); ++i)
      for (int j = 0; j < p_clean.dim(1); ++j) {
        double p = std::max<double>(p_clean.at2(i, j), 1e-9);
        double q = std::max<double>(p_noisy.at2(i, j), 1e-9);
        kl += p * (std::log(p) - std::log(q));
      }
    return kl / p_clean.dim(0);
  };
  EXPECT_LT(mean_noise_kl(m), mean_noise_kl(plain));
}

TEST(Trainer, EmbeddingLossPathRuns) {
  Pcg32 rng(70);
  TensorDataset train = make_channel_dataset(64, 8, rng);
  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 init_rng(71);
  m.init(init_rng);

  CompanionFn gaussian = [](const Tensor& clean, int, Pcg32& r) {
    Tensor noisy = clean;
    for (float& v : noisy.data())
      v += static_cast<float>(r.normal(0.0, 0.2));
    return noisy;
  };
  TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.lr = 1e-3f;
  tc.seed = 72;
  TrainStats stats = train_stability(
      m, train, nullptr, StabilityLoss::kEmbedding, 0.01f, gaussian, tc);
  for (const auto& e : stats.epochs) EXPECT_TRUE(std::isfinite(e.loss));
}

TEST(Trainer, PredictProbsRowsSumToOne) {
  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 5;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 rng(80);
  m.init(rng);
  Tensor x = random_tensor({7, 3, 8, 8}, rng);
  Tensor probs = predict_probs(m, x, /*batch_size=*/3);
  ASSERT_EQ(probs.dim(0), 7);
  ASSERT_EQ(probs.dim(1), 5);
  for (int i = 0; i < 7; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 5; ++j) sum += probs.at2(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Trainer, DeterministicAcrossRuns) {
  Pcg32 rng(90);
  TensorDataset train = make_channel_dataset(48, 8, rng);
  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;

  auto run = [&]() {
    Model m = build_mini_mobilenet_v2(cfg);
    Pcg32 init_rng(91);
    m.init(init_rng);
    TrainConfig tc;
    tc.epochs = 2;
    tc.batch_size = 16;
    tc.lr = 1e-3f;
    tc.seed = 92;
    train_classifier(m, train, nullptr, tc);
    return m.save_state();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace edgestab
