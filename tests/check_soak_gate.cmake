# Hermetic crash/resume gate for the streaming fleet service
# (DESIGN.md §17): the soak digests must be bit-identical across thread
# counts AND across a hard kill (std::_Exit right after a checkpoint
# rename) followed by --resume. Also exercises the sentinel's offline
# soak renderer.
#
#   1. reference soak at --threads 2            -> digests D
#   2. same soak at --threads 1                 -> digests == D
#   3. same soak with --kill-after-ckpt 2       -> must exit 7
#   4. --resume from the surviving checkpoint   -> digests == D
#   5. edgestab_sentinel soak <report>          -> renders, mentions resume
#
# Expected -D variables: BENCH_EXE, SENTINEL_EXE, WORK_DIR, CACHE_DIR.
foreach(var BENCH_EXE SENTINEL_EXE WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_soak_gate: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# A geometry that exercises every tier and control path: all three
# device classes, a deadline tight enough to open breakers, moderate
# capture/delivery faults, telemetry with a 4-item window so the 7-slot
# checkpoint cadence lands mid-window.
set(common_args
  --devices 8 --shots 640 --bank 4 --scene 32
  --faults "moderate,budget,deadline_ms=24" --telemetry)
set(ckpt_file "${WORK_DIR}/soak.ckpt.json")

function(run_soak out_var expect_rc)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      "EDGESTAB_CACHE=${CACHE_DIR}"
      "EDGESTAB_TELEMETRY_WINDOW=4"
      "${BENCH_EXE}" ${common_args} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
      "soak_gate: ${ARGN} exited with ${rc} (expected ${expect_rc}):\n${out}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Pull the four guarded digests out of a .soak.json.
function(soak_digests out_var file)
  file(READ "${file}" body)
  string(REGEX MATCH
    "\"digests\":{[^}]*}" digests "${body}")
  if(digests STREQUAL "")
    message(FATAL_ERROR "soak_gate: no digests block in ${file}")
  endif()
  set(${out_var} "${digests}" PARENT_SCOPE)
endfunction()

message(STATUS "==== soak_gate: reference run (--threads 2) ====")
run_soak(out 0 --threads 2 --soak-out "${WORK_DIR}/ref.soak.json")
soak_digests(ref_digests "${WORK_DIR}/ref.soak.json")

message(STATUS "==== soak_gate: thread invariance (--threads 1) ====")
run_soak(out 0 --threads 1 --soak-out "${WORK_DIR}/t1.soak.json")
soak_digests(t1_digests "${WORK_DIR}/t1.soak.json")
if(NOT t1_digests STREQUAL ref_digests)
  message(FATAL_ERROR
    "soak_gate: digests differ across thread counts:\n"
    "  threads 2: ${ref_digests}\n  threads 1: ${t1_digests}")
endif()

message(STATUS "==== soak_gate: hard kill after 2 checkpoints ====")
run_soak(out 7 --threads 2
  --ckpt "${ckpt_file}" --ckpt-slots 7 --kill-after-ckpt 2)
if(NOT EXISTS "${ckpt_file}")
  message(FATAL_ERROR "soak_gate: hard kill left no checkpoint file")
endif()
if(EXISTS "${ckpt_file}.tmp")
  message(FATAL_ERROR "soak_gate: stale checkpoint tmp file after rename")
endif()

message(STATUS "==== soak_gate: resume to completion ====")
run_soak(resume_out 0 --threads 2
  --ckpt "${ckpt_file}" --ckpt-slots 7 --resume
  --soak-out "${WORK_DIR}/resumed.soak.json")
if(NOT resume_out MATCHES "resumed from")
  message(FATAL_ERROR "soak_gate: resume run did not report resuming")
endif()
soak_digests(resumed_digests "${WORK_DIR}/resumed.soak.json")
if(NOT resumed_digests STREQUAL ref_digests)
  message(FATAL_ERROR
    "soak_gate: kill/resume digests differ from the uninterrupted run:\n"
    "  reference: ${ref_digests}\n  resumed:   ${resumed_digests}")
endif()

message(STATUS "==== soak_gate: sentinel offline render ====")
execute_process(
  COMMAND "${SENTINEL_EXE}" soak "${WORK_DIR}/resumed.soak.json"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "soak_gate: sentinel soak failed with ${rc}:\n${out}")
endif()
if(NOT out MATCHES "resumed from slot" OR NOT out MATCHES "OUTCOME")
  message(FATAL_ERROR "soak_gate: sentinel soak render incomplete:\n${out}")
endif()

message(STATUS
  "soak_gate OK — digests bit-identical across threads and kill/resume")
