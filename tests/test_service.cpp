// Tests for the streaming fleet service (src/service): queue semantics,
// the circuit-breaker state machine, the per-device-class latency model,
// checkpoint round trips, and the end-to-end determinism contract —
// thread-count invariance and kill/resume bit-exactness (DESIGN.md §17).
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/workspace.h"
#include "fault/fault.h"
#include "fault/latency.h"
#include "obs/fault_ledger.h"
#include "obs/telemetry/telemetry.h"
#include "service/breaker.h"
#include "service/checkpoint.h"
#include "service/pipeline.h"
#include "service/queue.h"
#include "service/state.h"

using namespace edgestab;
using namespace edgestab::service;

// ---- BoundedQueue ----------------------------------------------------------

TEST(BoundedQueue, FifoAndCounts) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.high_water(), 3u);
  EXPECT_EQ(q.pushed(), 3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.high_water(), 3u);  // high-water survives the drain
}

TEST(BoundedQueue, PushBlocksUntilPopped) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  // The producer is blocked on the full queue until this pop.
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsPendingThenEnds) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));  // rejected after close
  EXPECT_EQ(q.pop().value(), 7);  // pending item still delivered
  EXPECT_FALSE(q.pop().has_value());  // then end-of-stream
}

TEST(BoundedQueue, CloseAndDrainDiscardsPending) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.push(7));
  q.close_and_drain();
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, TryPopNeverBlocks) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  ASSERT_TRUE(q.push(5));
  EXPECT_EQ(q.try_pop().value(), 5);
  EXPECT_FALSE(q.try_pop().has_value());
}

// ---- CircuitBreaker --------------------------------------------------------

namespace {

BreakerConfig tiny_breaker() {
  BreakerConfig cfg;
  cfg.open_after = 2;
  cfg.cooldown = 3;
  cfg.close_after = 2;
  cfg.max_probe_rounds = 2;
  return cfg;
}

}  // namespace

TEST(CircuitBreaker, OpensAfterConsecutiveTimeouts) {
  CircuitBreaker br(tiny_breaker());
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kAdmit);
  EXPECT_FALSE(br.on_timeout().opened);  // 1 of 2
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_TRUE(br.on_timeout().opened);  // 2 of 2 -> open
  EXPECT_EQ(br.state(), BreakerState::kOpen);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveCount) {
  CircuitBreaker br(tiny_breaker());
  br.on_timeout();
  br.on_success();  // streak broken
  EXPECT_FALSE(br.on_timeout().opened);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
}

TEST(CircuitBreaker, OpenRejectsThroughCooldownThenProbes) {
  CircuitBreaker br(tiny_breaker());
  br.on_timeout();
  br.on_timeout();
  ASSERT_EQ(br.state(), BreakerState::kOpen);
  // Exactly `cooldown` rejects, then a half-open probe.
  EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kReject);
  EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kReject);
  EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kReject);
  EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  EXPECT_EQ(br.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(br.snapshot().rejects, 3);
}

TEST(CircuitBreaker, ClosesAfterProbeSuccessStreak) {
  CircuitBreaker br(tiny_breaker());
  br.on_timeout();
  br.on_timeout();
  for (int i = 0; i < 3; ++i) br.admit();  // burn the cooldown
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  EXPECT_FALSE(br.on_success().closed);  // probe 1 of 2
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  const CircuitBreaker::Feedback fb = br.on_success();  // probe 2 of 2
  EXPECT_TRUE(fb.closed);
  EXPECT_EQ(br.state(), BreakerState::kClosed);
  EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kAdmit);
  EXPECT_EQ(br.snapshot().closes, 1);
}

TEST(CircuitBreaker, FailedProbeReopensAndEventuallySticks) {
  CircuitBreaker br(tiny_breaker());
  br.on_timeout();
  br.on_timeout();  // open (round 0)
  // Probe round 1: fail the probe -> reopen, not yet sticky.
  for (int i = 0; i < 3; ++i) br.admit();
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  CircuitBreaker::Feedback fb = br.on_timeout();
  EXPECT_TRUE(fb.opened);
  EXPECT_FALSE(fb.went_sticky);
  EXPECT_EQ(br.state(), BreakerState::kOpen);
  // Probe round 2: fail again -> sticky open, rejects forever.
  for (int i = 0; i < 3; ++i) br.admit();
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  fb = br.on_timeout();
  EXPECT_TRUE(fb.went_sticky);
  EXPECT_TRUE(br.sticky_open());
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(br.admit(), CircuitBreaker::Admit::kReject);
}

TEST(CircuitBreaker, PartialProbeStreakResetOnFailure) {
  BreakerConfig cfg = tiny_breaker();
  cfg.max_probe_rounds = 5;
  CircuitBreaker br(cfg);
  br.on_timeout();
  br.on_timeout();
  for (int i = 0; i < 3; ++i) br.admit();
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  br.on_success();  // 1 of 2 probe successes...
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  br.on_timeout();  // ...wiped by the failed probe
  for (int i = 0; i < 3; ++i) br.admit();
  ASSERT_EQ(br.admit(), CircuitBreaker::Admit::kProbe);
  EXPECT_FALSE(br.on_success().closed);  // streak restarted at 1 of 2
}

TEST(CircuitBreaker, SnapshotRestoreRoundTrip) {
  CircuitBreaker br(tiny_breaker());
  br.on_timeout();
  br.on_timeout();
  br.admit();
  br.admit();
  const BreakerSnapshot snap = br.snapshot();

  CircuitBreaker copy(tiny_breaker());
  copy.restore(snap);
  // Both continue identically: one more reject, then a probe.
  for (int i = 0; i < 4; ++i) {
    const auto a = br.admit();
    const auto b = copy.admit();
    EXPECT_EQ(static_cast<int>(a), static_cast<int>(b)) << "step " << i;
  }
  EXPECT_EQ(scheduler_digest({0, {{br.snapshot(), 0}}}),
            scheduler_digest({0, {{copy.snapshot(), 0}}}));
}

// ---- Latency model ---------------------------------------------------------

TEST(LatencyModel, DeterministicAndClassOrdered) {
  fault::FaultPlan plan;
  const double a =
      fault::draw_latency_ms(plan, fault::DeviceClass::kBudget, 3, 5, 0, 1);
  const double b =
      fault::draw_latency_ms(plan, fault::DeviceClass::kBudget, 3, 5, 0, 1);
  EXPECT_EQ(a, b);  // pure function of coordinates
  EXPECT_NE(a, fault::draw_latency_ms(plan, fault::DeviceClass::kBudget, 3,
                                      5, 0, 2));
  // Class base floors: a flagship draw is never slower than the budget
  // class's base service time.
  double flagship_max = 0.0;
  for (int s = 0; s < 64; ++s)
    flagship_max = std::max(
        flagship_max, fault::draw_latency_ms(plan, fault::DeviceClass::kFlagship,
                                             1, s, 0, 0));
  const double budget_floor =
      fault::latency_class_model(fault::DeviceClass::kBudget, plan).base_ms;
  double budget_min = 1e9;
  for (int s = 0; s < 64; ++s)
    budget_min = std::min(
        budget_min, fault::draw_latency_ms(plan, fault::DeviceClass::kBudget,
                                           1, s, 0, 0));
  EXPECT_GE(budget_min, budget_floor);
  EXPECT_LT(fault::latency_class_model(fault::DeviceClass::kFlagship, plan)
                .base_ms,
            budget_floor);
  (void)flagship_max;
}

TEST(LatencyModel, PlanKnobsScaleDrawsAndDeadline) {
  fault::FaultPlan base;
  fault::FaultPlan scaled = base;
  scaled.latency_scale = 2.0;
  const double d1 =
      fault::draw_latency_ms(base, fault::DeviceClass::kMid, 2, 9, 0, 0);
  const double d2 =
      fault::draw_latency_ms(scaled, fault::DeviceClass::kMid, 2, 9, 0, 0);
  EXPECT_NEAR(d2, 2.0 * d1, 1e-9);
  EXPECT_NEAR(fault::deadline_budget_ms(fault::DeviceClass::kMid, scaled),
              2.0 * fault::deadline_budget_ms(fault::DeviceClass::kMid, base),
              1e-9);
  fault::FaultPlan pinned = base;
  pinned.deadline_ms = 42.0;
  EXPECT_EQ(fault::deadline_budget_ms(fault::DeviceClass::kBudget, pinned),
            42.0);
}

TEST(LatencyModel, SpecPresetsParse) {
  const fault::FaultPlan budget = fault::parse_fault_plan("budget");
  EXPECT_GT(budget.latency_scale, 1.0);
  EXPECT_GT(budget.latency_slow_boost, 0.0);
  EXPECT_FALSE(budget.any());  // latency-only: injector stays off
  const fault::FaultPlan flagship = fault::parse_fault_plan("flagship");
  EXPECT_LT(flagship.latency_scale, 1.0);
  // Composes with a fault preset and k=v overrides.
  const fault::FaultPlan mixed =
      fault::parse_fault_plan("heavy,budget,deadline_ms=30");
  EXPECT_TRUE(mixed.any());
  EXPECT_EQ(mixed.deadline_ms, 30.0);
  EXPECT_EQ(mixed.latency_scale, budget.latency_scale);
}

// ---- Checkpoint round trips ------------------------------------------------

namespace {

ServiceCheckpoint sample_checkpoint() {
  ServiceCheckpoint ckpt;
  ckpt.config_digest = 0xDEADBEEFCAFEF00DULL;
  ckpt.slot = 21;
  ckpt.agg.slots_folded = 21;
  ckpt.agg.shots_folded = 168;
  ckpt.agg.ok = 150;
  ckpt.agg.correct = 120;
  ckpt.agg.shed = 6;
  ckpt.agg.rejected = 5;
  ckpt.agg.timeouts = 4;
  ckpt.agg.capture_lost = 2;
  ckpt.agg.decode_lost = 1;
  ckpt.agg.fault_events = 40;
  ckpt.agg.retries = 9;
  ckpt.agg.slots_fully_covered = 15;
  ckpt.agg.slots_degraded = 5;
  ckpt.agg.slots_lost = 1;
  ckpt.agg.slots_observed = 20;
  ckpt.agg.unstable_slots = 7;
  ckpt.agg.all_correct_slots = 11;
  ckpt.agg.all_incorrect_slots = 2;
  ckpt.agg.digest_chain = 0xFEEDFACE12345678ULL;
  ckpt.agg.latency_hist_100us[12] = 30;
  ckpt.agg.latency_hist_100us[444] = 2;
  ckpt.agg.devices.resize(8);
  ckpt.agg.devices[3].ok = 19;
  ckpt.agg.devices[3].latency_us_sum = 123456;
  ckpt.sched.next_shot = 168;
  ckpt.sched.devices.resize(8);
  ckpt.sched.devices[2].breaker.state = 1;
  ckpt.sched.devices[2].breaker.cooldown_left = 4;
  ckpt.sched.devices[2].breaker.opens = 2;
  ckpt.sched.devices[2].backlog_us = 314159;
  ckpt.sched.devices[5].breaker.sticky = true;
  ckpt.ledger_events.push_back({obs::FaultEventKind::kDeadlineTimeout, 2,
                                20, 0, 2, false, 7.25});
  ckpt.ledger_events.push_back(
      {obs::FaultEventKind::kRetry, 1, 3, 0, 1, true, 10.0});
  ckpt.telemetry_state = "{\"window\":4}";
  ckpt.timeline_state = "{\"format\":\"edgestab-timeline-state-v1\"}";
  return ckpt;
}

}  // namespace

TEST(Checkpoint, JsonRoundTripIsExact) {
  const ServiceCheckpoint ckpt = sample_checkpoint();
  const std::string json = serialize_checkpoint(ckpt);
  ServiceCheckpoint back;
  std::string error;
  ASSERT_TRUE(parse_checkpoint(json, &back, &error)) << error;
  // Full-surface digest equality covers every field class, including
  // the 64-bit values that must survive the JSON double parser.
  EXPECT_EQ(checkpoint_digest(back), checkpoint_digest(ckpt));
  EXPECT_EQ(back.config_digest, ckpt.config_digest);
  EXPECT_EQ(back.agg.digest_chain, ckpt.agg.digest_chain);
  EXPECT_EQ(aggregate_digest(back.agg), aggregate_digest(ckpt.agg));
  EXPECT_EQ(scheduler_digest(back.sched), scheduler_digest(ckpt.sched));
  EXPECT_EQ(back.ledger_events.size(), ckpt.ledger_events.size());
  EXPECT_EQ(back.telemetry_state, ckpt.telemetry_state);
  EXPECT_EQ(back.timeline_state, ckpt.timeline_state);
  // And the serialization itself is stable.
  EXPECT_EQ(serialize_checkpoint(back), json);
}

TEST(Checkpoint, ParseRejectsWrongFormatAndGarbage) {
  ServiceCheckpoint out;
  std::string error;
  EXPECT_FALSE(parse_checkpoint("{\"format\":\"bogus-v9\"}", &out, &error));
  EXPECT_FALSE(parse_checkpoint("not json at all", &out, &error));
  const std::string json = serialize_checkpoint(sample_checkpoint());
  EXPECT_FALSE(
      parse_checkpoint(json.substr(0, json.size() / 2), &out, &error));
}

TEST(Checkpoint, FileRoundTripAndAtomicTmp) {
  const ServiceCheckpoint ckpt = sample_checkpoint();
  const std::string path =
      testing::TempDir() + "/edgestab_ckpt_test.json";
  std::string error;
  ASSERT_TRUE(write_checkpoint_file(path, ckpt, &error)) << error;
  EXPECT_NE(std::fopen(path.c_str(), "rb"), nullptr);
  // The sibling tmp file must not survive the rename.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  ServiceCheckpoint back;
  ASSERT_TRUE(load_checkpoint_file(path, &back, &error)) << error;
  EXPECT_EQ(checkpoint_digest(back), checkpoint_digest(ckpt));
  std::remove(path.c_str());
}

// ---- End-to-end determinism ------------------------------------------------

namespace {

/// Small geometry that still exercises every tier: 6 devices cover all
/// three device classes twice; "budget,deadline_ms=24" makes deadline
/// timeouts (and thus breaker traffic) common; heavy fault rates feed
/// the capture/delivery sites.
ServiceConfig gate_config() {
  ServiceConfig config;
  config.devices = 6;
  config.shots = 6 * 36;
  config.stimulus_bank = 3;
  config.scene_size = 32;
  config.seed = 99;
  config.plan = fault::parse_fault_plan("moderate,budget,deadline_ms=24");
  config.shed_backlog_ms = 120.0;
  config.drain_ms_per_shot = 40.0;
  return config;
}

struct RunDigests {
  std::uint64_t agg = 0, ledger = 0, breaker = 0, telemetry = 0;
  bool operator==(const RunDigests& o) const {
    return agg == o.agg && ledger == o.ledger && breaker == o.breaker &&
           telemetry == o.telemetry;
  }
};

/// Reset every process-global the service touches, arm the injector and
/// a 4-item telemetry window (so checkpoint boundaries land mid-window),
/// run, and collect the digest surface.
RunDigests run_gate(Model& model, const ServiceConfig& config) {
  obs::FaultLedger::global().clear();
  auto& registry = obs::DeviceHealthRegistry::global();
  registry.clear();
  registry.set_enabled(true);
  registry.set_window_items(4);
  fault::FaultInjector::global().configure(config.plan);
  const SoakReport report = run_fleet_service(model, config);
  fault::FaultInjector::global().reset();
  registry.set_enabled(false);
  RunDigests d;
  d.agg = report.agg_digest;
  d.ledger = report.ledger_digest;
  d.breaker = report.breaker_digest;
  d.telemetry = report.telemetry_digest;
  return d;
}

}  // namespace

TEST(ServicePipeline, DigestsInvariantAcrossThreadCounts) {
  Workspace ws;
  Model model = ws.fresh_model();
  ServiceConfig config = gate_config();
  config.threads = 1;
  const RunDigests one = run_gate(model, config);
  config.threads = 3;
  const RunDigests three = run_gate(model, config);
  EXPECT_TRUE(one == three);
  EXPECT_NE(one.agg, 0u);
  EXPECT_NE(one.ledger, 0u);
}

TEST(ServicePipeline, StopAndResumeMatchesUninterrupted) {
  Workspace ws;
  Model model = ws.fresh_model();
  const std::string ckpt_path =
      testing::TempDir() + "/edgestab_service_resume.ckpt.json";

  ServiceConfig config = gate_config();
  const RunDigests reference = run_gate(model, config);

  // Stop gracefully after the second checkpoint (slot 14 of 36 — a
  // mid-telemetry-window boundary with the 4-item window run_gate arms).
  ServiceConfig first_half = config;
  first_half.checkpoint_path = ckpt_path;
  first_half.checkpoint_every_slots = 7;
  first_half.stop_after_checkpoints = 2;
  obs::FaultLedger::global().clear();
  auto& registry = obs::DeviceHealthRegistry::global();
  registry.clear();
  registry.set_enabled(true);
  registry.set_window_items(4);
  fault::FaultInjector::global().configure(first_half.plan);
  const SoakReport half = run_fleet_service(model, first_half);
  EXPECT_TRUE(half.stopped_at_checkpoint);
  EXPECT_FALSE(half.completed);
  EXPECT_EQ(half.checkpoints_written, 2);
  EXPECT_EQ(half.agg.slots_folded, 14);

  // Fresh globals (a new process), then resume to the end.
  ServiceConfig second_half = config;
  second_half.checkpoint_path = ckpt_path;
  second_half.checkpoint_every_slots = 7;
  second_half.resume = true;
  const RunDigests resumed = run_gate(model, second_half);
  EXPECT_TRUE(resumed == reference);
  std::remove(ckpt_path.c_str());
}

TEST(ServicePipeline, ResumeRefusesMismatchedConfig) {
  Workspace ws;
  Model model = ws.fresh_model();
  const std::string ckpt_path =
      testing::TempDir() + "/edgestab_service_mismatch.ckpt.json";
  ServiceConfig config = gate_config();
  config.checkpoint_path = ckpt_path;
  config.checkpoint_every_slots = 7;
  config.stop_after_checkpoints = 1;
  obs::FaultLedger::global().clear();
  fault::FaultInjector::global().configure(config.plan);
  (void)run_fleet_service(model, config);
  fault::FaultInjector::global().reset();

  ServiceConfig other = config;
  other.stop_after_checkpoints = 0;
  other.resume = true;
  other.seed = config.seed + 1;  // different stream geometry
  obs::FaultLedger::global().clear();
  EXPECT_THROW(run_fleet_service(model, other), CheckError);
  std::remove(ckpt_path.c_str());
}

TEST(ServicePipeline, ShedAccountingNeverSilent) {
  // Every admission decision lands in exactly one outcome bucket and
  // every shed/reject carries a ledger receipt — nothing is silently
  // dropped (the ISSUE's load-shedding contract).
  Workspace ws;
  Model model = ws.fresh_model();
  ServiceConfig config = gate_config();
  obs::FaultLedger::global().clear();
  fault::FaultInjector::global().configure(config.plan);
  const SoakReport report = run_fleet_service(model, config);
  fault::FaultInjector::global().reset();
  const AggregateState& agg = report.agg;
  EXPECT_EQ(agg.ok + agg.shed + agg.rejected + agg.timeouts +
                agg.capture_lost + agg.decode_lost,
            config.shots);
  long long shed_receipts = 0, reject_receipts = 0;
  for (const obs::FaultEvent& e :
       obs::FaultLedger::global().export_group_raw("service")) {
    if (e.kind == obs::FaultEventKind::kShedOverload) ++shed_receipts;
    if (e.kind == obs::FaultEventKind::kBreakerReject) ++reject_receipts;
  }
  EXPECT_EQ(shed_receipts, agg.shed);
  EXPECT_EQ(reject_receipts, agg.rejected);
  EXPECT_GT(agg.timeouts, 0);  // the tight deadline actually fired
}
