# Hermetic end-to-end check of the cross-run regression sentinel.
#
# Flow (all inside WORK_DIR, smoke-size rig, single thread):
#   1. Run bench_fig3_end_to_end --repeats 3 — the run archive and the
#      candidate baseline BENCH_fig3.json must land in bench_out/.
#   2. Promote the candidate into a local baselines/ directory.
#   3. Re-run the bench clean; `sentinel compare` must exit 0 with zero
#      regressed metrics (digests are bit-identical by the PR3
#      determinism guarantee, perf is within band on the same machine).
#   4. Re-run with EDGESTAB_PERF_CANARY_MS armed — a per-shot sleep that
#      adds wall time without touching a single pixel; compare must exit
#      2 (perf regression) while correctness and digest metrics stay
#      clean.
#   5. Render the trend report and assert it is a self-contained HTML
#      document with at least one regression marker.
#
# The baseline is generated in-test, so the gate never reads the
# committed (machine-specific) baselines/ directory.
#
# Expected -D variables: BENCH_EXE, SENTINEL_EXE, WORK_DIR, CACHE_DIR.
foreach(var BENCH_EXE SENTINEL_EXE WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_regression_gate: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/baselines")

set(smoke_env "EDGESTAB_CACHE=${CACHE_DIR}" "EDGESTAB_RIG_OBJECTS=2")

function(run_bench label)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${smoke_env} ${ARGN}
      "${BENCH_EXE}" --threads 1 --repeats 3
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: bench exited with ${rc}")
  endif()
endfunction()

# --- 1. baseline-producing run -------------------------------------------
run_bench("baseline run")
foreach(artifact runs.jsonl BENCH_fig3.json)
  if(NOT EXISTS "${WORK_DIR}/bench_out/${artifact}")
    message(FATAL_ERROR "baseline run produced no bench_out/${artifact}")
  endif()
endforeach()
file(READ "${WORK_DIR}/bench_out/BENCH_fig3.json" candidate)
if(NOT candidate MATCHES "edgestab-baseline-v1")
  message(FATAL_ERROR "BENCH_fig3.json lacks the baseline schema")
endif()

# --- 2. promote the candidate --------------------------------------------
file(COPY "${WORK_DIR}/bench_out/BENCH_fig3.json"
  DESTINATION "${WORK_DIR}/baselines")

# --- 3. clean re-run must compare clean ----------------------------------
run_bench("clean run")
execute_process(
  COMMAND "${SENTINEL_EXE}" compare --bench fig3 --rel-tol 0.5
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "clean compare exited ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "0 regressed")
  message(FATAL_ERROR "clean compare reported regressions:\n${out}")
endif()

# --- 4. canary run must trip the gate ------------------------------------
run_bench("canary run" "EDGESTAB_PERF_CANARY_MS=40")
execute_process(
  COMMAND "${SENTINEL_EXE}" compare --bench fig3 --rel-tol 0.5
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR
    "canary compare exited ${rc} (want 2 = regressed):\n${out}${err}")
endif()
if(NOT out MATCHES "regressed[^\n]*wall_seconds")
  message(FATAL_ERROR "canary compare did not flag wall_seconds:\n${out}")
endif()
# The canary sleeps — it must not disturb pixels or digests.
if(out MATCHES "regressed[^\n]*digest\\.")
  message(FATAL_ERROR "canary run perturbed a digest metric:\n${out}")
endif()

# --- 5. trend report ------------------------------------------------------
execute_process(
  COMMAND "${SENTINEL_EXE}" trend
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sentinel trend exited ${rc}:\n${out}${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/bench_out/trend.html")
  message(FATAL_ERROR "trend wrote no bench_out/trend.html")
endif()
file(READ "${WORK_DIR}/bench_out/trend.html" html)
if(NOT html MATCHES "edgestab trend report")
  message(FATAL_ERROR "trend.html is not a trend report document")
endif()
if(html MATCHES "<script src=" OR html MATCHES "<link ")
  message(FATAL_ERROR "trend.html references external assets")
endif()
if(NOT html MATCHES "#c23b3b")
  message(FATAL_ERROR "trend.html has no regression marker for the canary run")
endif()

message(STATUS "regression gate OK in ${WORK_DIR}")
