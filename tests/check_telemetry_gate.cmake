# Hermetic end-to-end check of the fleet health telemetry stack.
#
# Flow (all inside WORK_DIR, smoke-size rig, faults moderate so the
# anomaly engine has something to page about):
#   1. Warm-up/reference run WITHOUT --telemetry: warms the model cache,
#      snapshots the result CSVs as the observe-never-alter reference,
#      and asserts no fleet artifacts land when telemetry is unarmed.
#   2. Run --telemetry --threads 1: fleet.json + fleet.html +
#      events.jsonl must land with their schemas, the alert cross-check
#      must pass on stdout, and every CSV must be byte-identical to the
#      untelemetered reference.
#   3. Run --telemetry --threads 2: fleet.json and events.jsonl must be
#      byte-identical to the single-threaded run and the alert-ledger
#      digest in the manifest bit-identical (lane-merge determinism).
#   4. `sentinel fleet` re-renders the dashboard offline from fleet.json
#      in both text and html formats.
#   5. Promote the candidate BENCH_fig3.json — which must carry the
#      telemetry headline metrics — and re-run telemetered: `sentinel
#      compare` must exit 0 with zero regressed metrics.
#
# Expected -D variables: BENCH_EXE, SENTINEL_EXE, WORK_DIR, CACHE_DIR.
foreach(var BENCH_EXE SENTINEL_EXE WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_telemetry_gate: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/baselines")

set(smoke_env "EDGESTAB_CACHE=${CACHE_DIR}" "EDGESTAB_RIG_OBJECTS=2")
set(fault_plan "moderate")

function(run_bench label out_var)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${smoke_env} "${BENCH_EXE}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: bench exited with ${rc}\n${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Pull the alert-ledger digest out of the provenance manifest.
function(read_alert_digest path out_var)
  file(READ "${path}" doc)
  if(NOT doc MATCHES "\"alert_ledger\":\"([0-9a-f]+)\"")
    message(FATAL_ERROR "${path} carries no alert_ledger digest")
  endif()
  set(${out_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

function(check_csvs_match label)
  file(GLOB ref_csvs "${WORK_DIR}/ref_csv/*.csv")
  if(ref_csvs STREQUAL "")
    message(FATAL_ERROR "${label}: no reference CSVs were captured")
  endif()
  foreach(ref ${ref_csvs})
    get_filename_component(csv_name "${ref}" NAME)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
        "${ref}" "${WORK_DIR}/bench_out/${csv_name}"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "${label}: ${csv_name} differs from the untelemetered reference — "
        "telemetry must observe, never alter")
    endif()
  endforeach()
endfunction()

# --- 1. warm-up + untelemetered reference --------------------------------
run_bench("reference run" ref_out --threads 1 --faults ${fault_plan})
file(GLOB plain_csvs "${WORK_DIR}/bench_out/fig3[abcd]_*.csv")
if(plain_csvs STREQUAL "")
  message(FATAL_ERROR "reference run produced no fig3 CSVs")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}/ref_csv")
file(COPY ${plain_csvs} DESTINATION "${WORK_DIR}/ref_csv")
foreach(artifact fig3.fleet.json fig3.fleet.html fig3.events.jsonl)
  if(EXISTS "${WORK_DIR}/bench_out/${artifact}")
    message(FATAL_ERROR
      "unarmed run wrote ${artifact} — telemetry must stay opt-in")
  endif()
endforeach()

# --- 2. telemetered single-threaded run ----------------------------------
run_bench("telemetry t1 run" t1_out
  --threads 1 --faults ${fault_plan} --telemetry)
foreach(artifact fig3.fleet.json fig3.fleet.html fig3.events.jsonl)
  if(NOT EXISTS "${WORK_DIR}/bench_out/${artifact}")
    message(FATAL_ERROR "telemetered run wrote no bench_out/${artifact}")
  endif()
endforeach()
file(READ "${WORK_DIR}/bench_out/fig3.fleet.json" fleet_doc)
if(NOT fleet_doc MATCHES "\"schema\":\"edgestab-fleet-v1\"")
  message(FATAL_ERROR "fig3.fleet.json lacks the edgestab-fleet-v1 schema")
endif()
file(READ "${WORK_DIR}/bench_out/fig3.events.jsonl" events_doc)
if(NOT events_doc MATCHES "\"schema\":\"edgestab-events-v1\"")
  message(FATAL_ERROR "fig3.events.jsonl lacks the edgestab-events-v1 schema")
endif()
if(NOT t1_out MATCHES "\\[alert\\] ledger matches receipts")
  message(FATAL_ERROR
    "telemetered run did not pass the alert cross-check:\n${t1_out}")
endif()
check_csvs_match("telemetry t1 run")
read_alert_digest("${WORK_DIR}/bench_out/fig3.meta.json" t1_digest)
file(COPY "${WORK_DIR}/bench_out/fig3.fleet.json"
          "${WORK_DIR}/bench_out/fig3.events.jsonl"
  DESTINATION "${WORK_DIR}/t1_ref")

# --- 3. telemetered two-thread run: lane-merge determinism ---------------
run_bench("telemetry t2 run" t2_out
  --threads 2 --faults ${fault_plan} --telemetry)
read_alert_digest("${WORK_DIR}/bench_out/fig3.meta.json" t2_digest)
if(NOT t1_digest STREQUAL t2_digest)
  message(FATAL_ERROR
    "alert-ledger digest differs across thread counts: "
    "t1=${t1_digest} t2=${t2_digest}")
endif()
foreach(artifact fig3.fleet.json fig3.events.jsonl)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/t1_ref/${artifact}" "${WORK_DIR}/bench_out/${artifact}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${artifact} differs between --threads 1 and 2 — the telemetry "
      "determinism contract is broken")
  endif()
endforeach()
check_csvs_match("telemetry t2 run")

# --- 4. offline re-render via the sentinel -------------------------------
execute_process(
  COMMAND "${SENTINEL_EXE}" fleet bench_out/fig3.fleet.json
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sentinel fleet (text) exited ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "fleet health" OR NOT out MATCHES "${t1_digest}")
  message(FATAL_ERROR
    "sentinel fleet rendered no per-device table / digest:\n${out}")
endif()
execute_process(
  COMMAND "${SENTINEL_EXE}" fleet bench_out/fig3.fleet.json
    --format html --out rerender.html
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sentinel fleet (html) exited ${rc}:\n${out}${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/rerender.html")
  message(FATAL_ERROR "sentinel fleet --format html wrote no file")
endif()

# --- 5. telemetry metrics must survive a clean sentinel compare ----------
file(READ "${WORK_DIR}/bench_out/BENCH_fig3.json" candidate)
foreach(metric alerts_total devices_degraded "health\\." digest.alert_ledger)
  if(NOT candidate MATCHES "${metric}")
    message(FATAL_ERROR "BENCH_fig3.json lacks the ${metric} metric")
  endif()
endforeach()
file(COPY "${WORK_DIR}/bench_out/BENCH_fig3.json"
  DESTINATION "${WORK_DIR}/baselines")

run_bench("compare run" cmp_out
  --threads 2 --faults ${fault_plan} --telemetry)
execute_process(
  COMMAND "${SENTINEL_EXE}" compare --bench fig3 --rel-tol 0.5
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetered compare exited ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "0 regressed")
  message(FATAL_ERROR "telemetered compare reported regressions:\n${out}")
endif()

message(STATUS "telemetry gate OK in ${WORK_DIR}")
