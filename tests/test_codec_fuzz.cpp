// Deterministic decoder fuzzing: try_decode must be *total* over
// arbitrary bytes — it either returns a decoded image or a typed
// DecodeResult error, but never throws, aborts, overruns a buffer or
// balloons memory. The corpus is seed-derived (runtime::derive_rng), so
// a failing mutation reproduces exactly from its (codec, round) index;
// the asan_smoke ctest reruns this whole binary under
// AddressSanitizer + UBSan for the memory-safety half of the claim.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>

#include "codec/codec.h"
#include "codec/heif_like.h"
#include "codec/jpeg_like.h"
#include "codec/png_like.h"
#include "codec/webp_like.h"
#include "image/draw.h"
#include "runtime/seed.h"
#include "util/rng.h"

namespace edgestab {
namespace {

constexpr std::uint64_t kFuzzSeed = 0xF0220;

/// A photo-like test image so the encoded streams carry realistic
/// Huffman tables and coefficient runs.
ImageU8 photo_like_image(int w, int h, std::uint64_t seed) {
  Image img(w, h, 3);
  fill_vertical_gradient(img, {0.55f, 0.65f, 0.8f}, {0.35f, 0.3f, 0.25f});
  Pcg32 rng(seed);
  for (int i = 0; i < 4; ++i) {
    float cx = static_cast<float>(rng.uniform(0.2, 0.8)) * w;
    float cy = static_cast<float>(rng.uniform(0.2, 0.8)) * h;
    float r = static_cast<float>(rng.uniform(0.08, 0.2)) * w;
    Rgb color{static_cast<float>(rng.uniform(0.1, 0.9)),
              static_cast<float>(rng.uniform(0.1, 0.9)),
              static_cast<float>(rng.uniform(0.1, 0.9))};
    paint_sdf(img, SdfCircle{cx, cy, r}, color);
  }
  return to_u8(img);
}

std::vector<std::unique_ptr<Codec>> all_codecs() {
  std::vector<std::unique_ptr<Codec>> codecs;
  codecs.push_back(std::make_unique<JpegLikeCodec>(80));
  codecs.push_back(std::make_unique<PngLikeCodec>());
  codecs.push_back(std::make_unique<WebpLikeCodec>(60));
  codecs.push_back(std::make_unique<HeifLikeCodec>(60));
  return codecs;
}

/// The harness contract: whatever the bytes, try_decode returns — and a
/// claimed success carries a plausible image.
void expect_total(const Codec& codec, const Bytes& data) {
  DecodeResult result;
  ASSERT_NO_THROW(result = codec.try_decode(data))
      << codec.name() << " threw on a " << data.size() << "-byte input";
  if (result.ok()) {
    EXPECT_GT(result.image.width(), 0);
    EXPECT_GT(result.image.height(), 0);
  } else {
    EXPECT_FALSE(result.message.empty());
    EXPECT_NE(result.status, DecodeStatus::kOk);
  }
}

TEST(CodecFuzz, CleanStreamsDecode) {
  ImageU8 img = photo_like_image(48, 40, kFuzzSeed);
  for (const auto& codec : all_codecs()) {
    Bytes data = codec->encode(img);
    DecodeResult result = codec->try_decode(data);
    ASSERT_TRUE(result.ok()) << codec->name() << ": " << result.message;
    EXPECT_EQ(result.image.width(), img.width());
    EXPECT_EQ(result.image.height(), img.height());
  }
}

TEST(CodecFuzz, BitFlippedStreamsNeverCrash) {
  ImageU8 img = photo_like_image(48, 40, kFuzzSeed);
  auto codecs = all_codecs();
  for (std::size_t c = 0; c < codecs.size(); ++c) {
    const Bytes clean = codecs[c]->encode(img);
    for (int round = 0; round < 200; ++round) {
      Pcg32 rng = runtime::derive_rng(kFuzzSeed, 1, c,
                                      static_cast<std::uint64_t>(round));
      Bytes data = clean;
      const int flips = static_cast<int>(rng.uniform_int(1, 64));
      for (int f = 0; f < flips; ++f) {
        auto bit = static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::uint32_t>(data.size() * 8)));
        data[bit >> 3] ^= static_cast<std::uint8_t>(1u << (bit & 7));
      }
      expect_total(*codecs[c], data);
    }
  }
}

TEST(CodecFuzz, TruncatedStreamsNeverCrash) {
  ImageU8 img = photo_like_image(48, 40, kFuzzSeed);
  auto codecs = all_codecs();
  for (std::size_t c = 0; c < codecs.size(); ++c) {
    const Bytes clean = codecs[c]->encode(img);
    // Every prefix length of a short stream would be exhaustive but
    // slow; sample lengths densely near the header and sparsely after.
    for (std::size_t len = 0; len <= clean.size();
         len += (len < 16 ? 1 : 1 + len / 16)) {
      Bytes data(clean.begin(),
                 clean.begin() + static_cast<std::ptrdiff_t>(len));
      expect_total(*codecs[c], data);
    }
  }
}

TEST(CodecFuzz, GarbageHeadersNeverCrash) {
  ImageU8 img = photo_like_image(48, 40, kFuzzSeed);
  auto codecs = all_codecs();
  for (std::size_t c = 0; c < codecs.size(); ++c) {
    const Bytes clean = codecs[c]->encode(img);
    for (int round = 0; round < 100; ++round) {
      Pcg32 rng = runtime::derive_rng(kFuzzSeed, 2, c,
                                      static_cast<std::uint64_t>(round));
      Bytes data = clean;
      // Smash the first bytes — magic, dimensions, quality — with
      // arbitrary values, including pathological sizes.
      const std::size_t n =
          std::min<std::size_t>(data.size(), 1 + rng.uniform_int(9u));
      for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<std::uint8_t>(rng.uniform_int(256u));
      expect_total(*codecs[c], data);
    }
  }
}

TEST(CodecFuzz, RandomBuffersNeverCrash) {
  auto codecs = all_codecs();
  for (std::size_t c = 0; c < codecs.size(); ++c) {
    for (int round = 0; round < 200; ++round) {
      Pcg32 rng = runtime::derive_rng(kFuzzSeed, 3, c,
                                      static_cast<std::uint64_t>(round));
      Bytes data(rng.uniform_int(512u));
      for (auto& b : data)
        b = static_cast<std::uint8_t>(rng.uniform_int(256u));
      expect_total(*codecs[c], data);
    }
  }
}

TEST(CodecFuzz, CrossCodecStreamsNeverCrash) {
  // Feed every codec's valid output to every *other* codec: wrong-magic
  // inputs must come back as typed errors, not aborts.
  ImageU8 img = photo_like_image(48, 40, kFuzzSeed);
  auto codecs = all_codecs();
  for (std::size_t a = 0; a < codecs.size(); ++a) {
    const Bytes stream = codecs[a]->encode(img);
    for (std::size_t b = 0; b < codecs.size(); ++b) {
      if (a == b) continue;
      DecodeResult result = codecs[b]->try_decode(stream);
      EXPECT_FALSE(result.ok())
          << codecs[b]->name() << " accepted a " << codecs[a]->name()
          << " stream";
    }
  }
}

TEST(CodecFuzz, EmptyAndTinyInputs) {
  for (const auto& codec : all_codecs()) {
    expect_total(*codec, Bytes{});
    expect_total(*codec, Bytes{0x00});
    expect_total(*codec, Bytes{0xff, 0xff});
    expect_total(*codec, Bytes{'J', 'L'});  // bare magic, no header
  }
}

TEST(CodecFuzz, AbortingDecodeWrapsTypedFailure) {
  // The aborting decode() API survives as a thin wrapper: the same
  // corrupt stream that try_decode reports as a typed error raises
  // CheckError (programmer-contract style) through decode().
  ImageU8 img = photo_like_image(32, 32, kFuzzSeed);
  JpegLikeCodec codec(80);
  Bytes data = codec.encode(img);
  data.resize(data.size() / 2);
  DecodeResult result = codec.try_decode(data);
  EXPECT_FALSE(result.ok());
  EXPECT_THROW(codec.decode(data), CheckError);
}

}  // namespace
}  // namespace edgestab
