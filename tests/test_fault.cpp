// Tests for the fault-injection framework (src/fault) and the
// resilience policy built on it (src/core/resilience): plan parsing and
// validation, deterministic seed-derived fault draws, payload
// corruption bounds, retrying delivery, quarantine folding, fleet
// coverage accounting, and the instability metric over a degraded
// fleet — all against hand-computed expectations.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "codec/jpeg_like.h"
#include "core/instability.h"
#include "core/resilience.h"
#include "fault/fault.h"
#include "image/draw.h"
#include "obs/fault_ledger.h"
#include "util/check.h"

namespace edgestab {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::parse_fault_plan;
using obs::FaultEventKind;
using obs::FaultLedger;

// The injector and ledger are process-wide singletons; every test that
// arms them must disarm on the way out, pass or fail.
struct FaultEnvGuard {
  FaultEnvGuard() {
    FaultInjector::global().reset();
    FaultLedger::global().clear();
  }
  ~FaultEnvGuard() {
    FaultInjector::global().reset();
    FaultLedger::global().clear();
  }
};

ImageU8 test_image(int w = 32, int h = 24) {
  Image img(w, h, 3);
  fill_vertical_gradient(img, {0.6f, 0.5f, 0.4f}, {0.2f, 0.3f, 0.4f});
  paint_sdf(img, SdfCircle{w * 0.5f, h * 0.5f, w * 0.25f},
            {0.9f, 0.2f, 0.3f});
  return to_u8(img);
}

Capture test_capture() {
  JpegLikeCodec codec(80);
  Capture capture;
  capture.file = codec.encode(test_image());
  capture.format = ImageFormat::kJpegLike;
  capture.quality = 80;
  return capture;
}

// ---- FaultPlan parsing ------------------------------------------------------

TEST(FaultPlan, OffSpecsParseToInertPlans) {
  for (const char* spec : {"", "off", "none"}) {
    FaultPlan plan = parse_fault_plan(spec);
    EXPECT_FALSE(plan.any()) << "spec '" << spec << "'";
  }
}

TEST(FaultPlan, PresetsSetDocumentedRates) {
  FaultPlan moderate = parse_fault_plan("moderate");
  EXPECT_DOUBLE_EQ(moderate.dropout_rate, 0.05);
  EXPECT_DOUBLE_EQ(moderate.transient_rate, 0.05);
  EXPECT_DOUBLE_EQ(moderate.bitflip_rate, 0.05);
  EXPECT_DOUBLE_EQ(moderate.truncate_rate, 0.03);
  EXPECT_DOUBLE_EQ(moderate.straggler_rate, 0.10);
  EXPECT_DOUBLE_EQ(moderate.burst, 0.3);
  EXPECT_TRUE(moderate.any());

  FaultPlan light = parse_fault_plan("light");
  FaultPlan heavy = parse_fault_plan("heavy");
  EXPECT_LT(light.dropout_rate, moderate.dropout_rate);
  EXPECT_LT(moderate.dropout_rate, heavy.dropout_rate);
}

TEST(FaultPlan, PresetFirstWithOverrides) {
  FaultPlan plan = parse_fault_plan("moderate,dropout=0.2,attempts=5,seed=77");
  EXPECT_DOUBLE_EQ(plan.dropout_rate, 0.2);       // overridden
  EXPECT_DOUBLE_EQ(plan.transient_rate, 0.05);    // preset value kept
  EXPECT_EQ(plan.max_attempts, 5);
  EXPECT_EQ(plan.seed, 77u);
}

TEST(FaultPlan, KeyValueOnlySpec) {
  FaultPlan plan = parse_fault_plan(
      "bitflip=0.5,truncate=0.25,max_bitflips=3,straggler_ms=40,"
      "backoff_ms=2.5,quarantine_after=2");
  EXPECT_DOUBLE_EQ(plan.bitflip_rate, 0.5);
  EXPECT_DOUBLE_EQ(plan.truncate_rate, 0.25);
  EXPECT_EQ(plan.max_bitflips, 3);
  EXPECT_DOUBLE_EQ(plan.straggler_mean_ms, 40.0);
  EXPECT_DOUBLE_EQ(plan.backoff_base_ms, 2.5);
  EXPECT_EQ(plan.quarantine_after, 2);
  EXPECT_DOUBLE_EQ(plan.dropout_rate, 0.0);  // untouched defaults
}

TEST(FaultPlan, BadSpecsThrow) {
  EXPECT_THROW(parse_fault_plan("bogus"), CheckError);
  EXPECT_THROW(parse_fault_plan("dropout=notanumber"), CheckError);
  EXPECT_THROW(parse_fault_plan("dropout=1.5"), CheckError);
  EXPECT_THROW(parse_fault_plan("burst=-0.1"), CheckError);
  EXPECT_THROW(parse_fault_plan("attempts=0"), CheckError);
  EXPECT_THROW(parse_fault_plan("quarantine_after=0"), CheckError);
  EXPECT_THROW(parse_fault_plan("max_bitflips=0"), CheckError);
  EXPECT_THROW(parse_fault_plan("unknown_knob=1"), CheckError);
  // A preset is only legal as the first token.
  EXPECT_THROW(parse_fault_plan("dropout=0.1,moderate"), CheckError);
}

TEST(FaultPlan, DigestCoversEveryField) {
  FaultPlan a = parse_fault_plan("moderate");
  FaultPlan b = parse_fault_plan("moderate");
  EXPECT_EQ(a.digest(), b.digest());
  b.seed = a.seed + 1;
  EXPECT_NE(a.digest(), b.digest());
  FaultPlan c = parse_fault_plan("moderate,backoff_ms=11");
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_FALSE(a.summary().empty());
}

// ---- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, ConfigureArmsOnlyPlansWithRates) {
  FaultEnvGuard guard;
  auto& injector = FaultInjector::global();
  EXPECT_FALSE(injector.enabled());
  injector.configure(FaultPlan{});  // all-zero rates
  EXPECT_FALSE(injector.enabled());
  injector.configure(parse_fault_plan("moderate"));
  EXPECT_EQ(injector.enabled(), fault::kFaultsCompiledIn);
  injector.reset();
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.plan().any());
}

TEST(FaultInjector, DrawsAreDeterministicAndRateFaithful) {
  if (!fault::kFaultsCompiledIn) GTEST_SKIP() << "EDGESTAB_FAULTS=OFF build";
  FaultEnvGuard guard;
  auto& injector = FaultInjector::global();

  injector.configure(parse_fault_plan("dropout=1"));
  EXPECT_TRUE(injector.capture_dropout(3, 5, 1));
  injector.configure(parse_fault_plan("dropout=0.5,transient=0.5"));
  int drops = 0;
  for (int item = 0; item < 64; ++item) {
    const bool first = injector.capture_dropout(3, item, 0);
    EXPECT_EQ(first, injector.capture_dropout(3, item, 0)) << item;
    if (first) ++drops;
  }
  // At rate 0.5 (plus burst-free correlation) a 64-draw schedule that is
  // all-drop or no-drop would mean the draw ignores its coordinates.
  EXPECT_GT(drops, 0);
  EXPECT_LT(drops, 64);

  // Every coordinate (device, item, shot, attempt) keys its own stream.
  bool device_matters = false;
  bool shot_matters = false;
  for (int item = 0; item < 64; ++item) {
    if (injector.capture_dropout(3, item, 0) !=
        injector.capture_dropout(4, item, 0))
      device_matters = true;
    if (injector.transient_failure(3, item, 0, 0) !=
        injector.transient_failure(3, item, 1, 0))
      shot_matters = true;
  }
  EXPECT_TRUE(device_matters);
  EXPECT_TRUE(shot_matters);
}

TEST(FaultInjector, CorruptPayloadIsDeterministicAndBounded) {
  if (!fault::kFaultsCompiledIn) GTEST_SKIP() << "EDGESTAB_FAULTS=OFF build";
  FaultEnvGuard guard;
  auto& injector = FaultInjector::global();
  injector.configure(parse_fault_plan("bitflip=1,truncate=1,max_bitflips=4"));

  Bytes clean(256);
  for (std::size_t i = 0; i < clean.size(); ++i)
    clean[i] = static_cast<std::uint8_t>(i);

  Bytes once = clean;
  fault::PayloadFaults pf1 = injector.corrupt_payload(once, 2, 7, 1, 0);
  Bytes again = clean;
  fault::PayloadFaults pf2 = injector.corrupt_payload(again, 2, 7, 1, 0);
  EXPECT_EQ(once, again);
  EXPECT_EQ(pf1.bit_flips, pf2.bit_flips);
  EXPECT_EQ(pf1.truncated_bytes, pf2.truncated_bytes);

  EXPECT_TRUE(pf1.any());
  EXPECT_GE(pf1.truncated_bytes, 1u);  // truncate=1 always loses a tail
  EXPECT_LE(once.size(), clean.size());
  EXPECT_LE(pf1.bit_flips, 4);

  // A retry re-draws: some attempt within the budget must corrupt
  // differently, or retransmission could never help.
  Bytes retry = clean;
  fault::PayloadFaults pf3 = injector.corrupt_payload(retry, 2, 7, 1, 1);
  EXPECT_TRUE(retry != once || pf3.truncated_bytes != pf1.truncated_bytes ||
              pf3.bit_flips != pf1.bit_flips);

  // An empty payload (dropout) has nothing to corrupt.
  Bytes empty;
  fault::PayloadFaults pf4 = injector.corrupt_payload(empty, 2, 7, 1, 0);
  EXPECT_FALSE(pf4.any());
}

TEST(FaultInjector, BackoffDoublesPerAttempt) {
  FaultEnvGuard guard;
  auto& injector = FaultInjector::global();
  injector.configure(parse_fault_plan("transient=0.5,backoff_ms=10"));
  EXPECT_DOUBLE_EQ(injector.backoff_ms(0), 10.0);
  EXPECT_DOUBLE_EQ(injector.backoff_ms(1), 20.0);
  EXPECT_DOUBLE_EQ(injector.backoff_ms(2), 40.0);
  EXPECT_DOUBLE_EQ(injector.backoff_ms(3), 80.0);
}

TEST(FaultInjector, StragglerDelaysAreDeterministicAndPositive) {
  if (!fault::kFaultsCompiledIn) GTEST_SKIP() << "EDGESTAB_FAULTS=OFF build";
  FaultEnvGuard guard;
  auto& injector = FaultInjector::global();
  injector.configure(parse_fault_plan("straggler=1,straggler_ms=100"));
  const double d1 = injector.straggler_delay_ms(0, 0, 0);
  EXPECT_GT(d1, 0.0);
  EXPECT_DOUBLE_EQ(d1, injector.straggler_delay_ms(0, 0, 0));
  injector.configure(parse_fault_plan("dropout=0.5"));  // straggler off
  EXPECT_DOUBLE_EQ(injector.straggler_delay_ms(0, 0, 0), 0.0);
}

// ---- deliver_shot -----------------------------------------------------------

TEST(DeliverShot, CleanPathMatchesAbortingDecode) {
  FaultEnvGuard guard;
  Capture capture = test_capture();
  ShotDelivery d = deliver_shot("test_clean", capture, 0, 11, 0, 0);
  ASSERT_TRUE(d.usable);
  EXPECT_EQ(d.attempts, 1);
  EXPECT_DOUBLE_EQ(d.delay_ms, 0.0);
  EXPECT_EQ(d.image, decode_capture(capture, {}));
  EXPECT_TRUE(FaultLedger::global().empty());
}

TEST(DeliverShot, FaultedDeliveryIsDeterministicAndAccounted) {
  if (!fault::kFaultsCompiledIn) GTEST_SKIP() << "EDGESTAB_FAULTS=OFF build";
  FaultEnvGuard guard;
  FaultInjector::global().configure(parse_fault_plan(
      "bitflip=1,truncate=1,max_bitflips=64,attempts=2,straggler=1"));
  Capture capture = test_capture();

  int lost = 0;
  int usable = 0;
  for (int item = 0; item < 40; ++item) {
    ShotDelivery d = deliver_shot("test_faulted", capture, 0, 11, item, 0);
    ShotDelivery d2 = deliver_shot("repeat_run", capture, 0, 11, item, 0);
    EXPECT_EQ(d.usable, d2.usable) << item;
    EXPECT_EQ(d.attempts, d2.attempts) << item;
    EXPECT_DOUBLE_EQ(d.delay_ms, d2.delay_ms);
    EXPECT_EQ(d.image, d2.image) << item;
    EXPECT_GE(d.attempts, 1);
    EXPECT_LE(d.attempts, 2);
    EXPECT_GT(d.delay_ms, 0.0);  // straggler=1 always stalls
    d.usable ? ++usable : ++lost;
  }
  // Always-truncate against a 2-attempt budget must lose some shots;
  // a truncation that only nibbles the tail can still decode, so some
  // survive too (the corrupt-but-decodable path).
  EXPECT_GT(lost, 0);

  auto group = FaultLedger::global().find_group("test_faulted");
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->shots_lost, lost);
  EXPECT_EQ(group->events_by_kind[static_cast<int>(FaultEventKind::kShotLost)],
            lost);
  // A retry happens exactly when attempt 0's decode failed; a lost shot
  // adds a second decode failure with no further retry (attempts=2), so
  // retries = decode failures - lost.
  EXPECT_EQ(group->events_by_kind[static_cast<int>(FaultEventKind::kRetry)],
            group->events_by_kind[static_cast<int>(
                FaultEventKind::kDecodeFailure)] -
                lost);
  EXPECT_EQ(
      group->events_by_kind[static_cast<int>(FaultEventKind::kStragglerDelay)],
      40);
  ASSERT_EQ(group->devices.size(), 1u);
  EXPECT_EQ(group->devices[0].shots_lost, lost);
  EXPECT_GT(group->devices[0].payload_truncations, 0);
  EXPECT_GT(group->devices[0].total_delay_ms, 0.0);

  // The two identically-faulted groups tally identically.
  auto repeat = FaultLedger::global().find_group("repeat_run");
  ASSERT_TRUE(repeat.has_value());
  EXPECT_EQ(repeat->shots_lost, group->shots_lost);
  EXPECT_EQ(repeat->total_events, group->total_events);
  EXPECT_EQ(repeat->events_by_kind, group->events_by_kind);
}

// ---- Quarantine + coverage, hand-computed -----------------------------------

TEST(Quarantine, FoldQuarantinesAfterKConsecutiveLosses) {
  FaultEnvGuard guard;
  // 2 devices x 6 slots. Device 0 clean; device 1 loses slots 2 and 3.
  std::vector<unsigned char> usable = {
      1, 1, 1, 1, 1, 1,  // device 0
      1, 1, 0, 0, 1, 1,  // device 1
  };
  QuarantineDecision q = quarantine_fold("test_quarantine", 2, 6, usable,
                                         /*quarantine_after=*/2,
                                         /*slots_per_item=*/2);
  EXPECT_EQ(q.quarantined_devices, 1);
  EXPECT_EQ(q.quarantined_from[0], -1);
  // Second consecutive loss lands on slot 3 -> quarantined from slot 4.
  EXPECT_EQ(q.quarantined_from[1], 4);
  EXPECT_FALSE(q.excluded(0, 5));
  EXPECT_FALSE(q.excluded(1, 3));
  EXPECT_TRUE(q.excluded(1, 4));
  EXPECT_TRUE(q.excluded(1, 5));

  auto group = FaultLedger::global().find_group("test_quarantine");
  ASSERT_TRUE(group.has_value());
  ASSERT_EQ(group->entries.size(), 1u);
  EXPECT_EQ(group->entries[0].kind, FaultEventKind::kQuarantine);
  EXPECT_EQ(group->entries[0].device, 1);
  EXPECT_EQ(group->entries[0].item, 2);  // slot 4 / 2 slots per item
  EXPECT_DOUBLE_EQ(group->entries[0].detail, 2.0);
  EXPECT_EQ(group->quarantined_devices, 1);
}

TEST(Quarantine, SuccessResetsTheConsecutiveCounter) {
  std::vector<unsigned char> usable = {0, 1, 0, 1, 0, 1};  // alternating
  QuarantineDecision q = quarantine_fold("unused", 1, 6, usable,
                                         /*quarantine_after=*/2,
                                         /*slots_per_item=*/1,
                                         /*record=*/false);
  EXPECT_EQ(q.quarantined_devices, 0);
  EXPECT_EQ(q.quarantined_from[0], -1);
}

TEST(Quarantine, NonPositiveKDisablesTheFold) {
  std::vector<unsigned char> usable(8, 0);  // every shot lost
  QuarantineDecision q = quarantine_fold("unused", 1, 8, usable,
                                         /*quarantine_after=*/0,
                                         /*slots_per_item=*/1,
                                         /*record=*/false);
  EXPECT_EQ(q.quarantined_devices, 0);
  EXPECT_EQ(q.quarantined_from[0], -1);
}

TEST(Coverage, TallyMatchesHandComputedScenario) {
  FaultEnvGuard guard;
  // 2 devices, 3 items, 2 slots per item (slot 0 of each item feeds the
  // cross-environment observations). Device 1 loses item 1 entirely and
  // is quarantined from item 2 onward.
  std::vector<unsigned char> usable = {
      1, 1, 1, 1, 1, 1,  // device 0
      1, 1, 0, 0, 1, 1,  // device 1
  };
  QuarantineDecision q = quarantine_fold("cov", 2, 6, usable, 2, 2,
                                         /*record=*/false);
  FleetResilienceStats s = tally_fleet_coverage(2, 3, 2, usable, q);

  EXPECT_EQ(s.device_count, 2);
  EXPECT_EQ(s.item_count, 3);
  EXPECT_EQ(s.total_shots, 12);
  EXPECT_EQ(s.shots_lost, 2);      // device 1 slots 2, 3
  EXPECT_EQ(s.shots_excluded, 2);  // device 1 slots 4, 5 (usable, discarded)
  EXPECT_EQ(s.quarantined_devices, 1);
  ASSERT_EQ(s.quarantined_from_item.size(), 2u);
  EXPECT_EQ(s.quarantined_from_item[0], -1);
  EXPECT_EQ(s.quarantined_from_item[1], 2);
  ASSERT_EQ(s.usable_shots_by_device.size(), 2u);
  EXPECT_EQ(s.usable_shots_by_device[0], 6);
  EXPECT_EQ(s.usable_shots_by_device[1], 2);
  // Item 0 seen by both devices; items 1 and 2 by device 0 only.
  ASSERT_EQ(s.coverage_histogram.size(), 3u);
  EXPECT_EQ(s.coverage_histogram[0], 0);
  EXPECT_EQ(s.coverage_histogram[1], 2);
  EXPECT_EQ(s.coverage_histogram[2], 1);
  EXPECT_EQ(s.items_fully_covered, 1);
  EXPECT_EQ(s.items_degraded, 2);
  EXPECT_EQ(s.items_lost, 0);
  EXPECT_DOUBLE_EQ(s.mean_coverage, 4.0 / 3.0);
}

TEST(Coverage, AllLostFleetIsAccountedNotCrashed) {
  std::vector<unsigned char> usable(6, 0);  // 2 devices x 3 slots, all lost
  QuarantineDecision q = quarantine_fold("cov0", 2, 3, usable, 2, 1,
                                         /*record=*/false);
  FleetResilienceStats s = tally_fleet_coverage(2, 3, 1, usable, q);
  EXPECT_EQ(s.shots_lost, 6);
  EXPECT_EQ(s.items_lost, 3);
  EXPECT_EQ(s.items_fully_covered, 0);
  EXPECT_DOUBLE_EQ(s.mean_coverage, 0.0);
  EXPECT_EQ(s.coverage_histogram[0], 3);
}

// ---- Instability over a degraded fleet --------------------------------------

Observation obs_of(int item, int env, bool correct) {
  Observation o;
  o.item = item;
  o.env = env;
  o.correct = correct;
  o.predicted = correct ? 1 : 2;
  o.confidence = 0.5;
  return o;
}

TEST(DegradedFleet, InstabilityMatchesHandComputedValues) {
  // Full fleet: 3 environments x 4 items. Env 2 disagrees on item 0.
  std::vector<Observation> full = {
      obs_of(0, 0, true),  obs_of(0, 1, true),  obs_of(0, 2, false),
      obs_of(1, 0, true),  obs_of(1, 1, false), obs_of(1, 2, true),
      obs_of(2, 0, false), obs_of(2, 1, false), obs_of(2, 2, false),
      obs_of(3, 0, false), obs_of(3, 1, true),  obs_of(3, 2, true),
  };
  InstabilityResult all = compute_instability(full);
  EXPECT_EQ(all.total_items, 4);
  EXPECT_EQ(all.unstable_items, 3);  // items 0, 1, 3
  EXPECT_EQ(all.all_correct_items, 0);
  EXPECT_EQ(all.all_incorrect_items, 1);  // item 2
  EXPECT_DOUBLE_EQ(all.instability(), 0.75);

  // Quarantining env 2 removes its observations: item 0 becomes stable
  // (both survivors agree correctly), the rest keep their verdicts. The
  // metric must keep working on the degraded fleet and the numbers must
  // shift exactly as computed by hand.
  std::vector<Observation> degraded;
  for (const Observation& o : full)
    if (o.env != 2) degraded.push_back(o);
  InstabilityResult deg = compute_instability(degraded);
  EXPECT_EQ(deg.total_items, 4);
  EXPECT_EQ(deg.unstable_items, 2);  // items 1, 3
  EXPECT_EQ(deg.all_correct_items, 1);  // item 0
  EXPECT_EQ(deg.all_incorrect_items, 1);
  EXPECT_DOUBLE_EQ(deg.instability(), 0.5);

  // A fully lost item drops every environment: observed by fewer than 2
  // envs -> skipped entirely, shrinking the denominator.
  std::vector<Observation> item3_lost;
  for (const Observation& o : degraded)
    if (o.item != 3) item3_lost.push_back(o);
  InstabilityResult partial = compute_instability(item3_lost);
  EXPECT_EQ(partial.total_items, 3);
  EXPECT_EQ(partial.unstable_items, 1);
  EXPECT_DOUBLE_EQ(partial.instability(), 1.0 / 3.0);
}

}  // namespace
}  // namespace edgestab
