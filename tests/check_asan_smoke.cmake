# Builds the tree with -DEDGESTAB_ASAN=ON in a child build tree and runs
# the decoder fuzz harness (test_codec_fuzz) under AddressSanitizer +
# UBSan. The harness itself asserts try_decode is total over arbitrary
# bytes; this run adds the memory-safety half of the claim — no heap
# overrun, use-after-free or undefined shift survives a corrupt stream.
# -fno-sanitize-recover=all makes the first finding abort the binary, so
# any report fails the test.
#
# Expected -D variables: SOURCE_DIR, WORK_DIR.
foreach(var SOURCE_DIR WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_asan_smoke: ${var} not set")
  endif()
endforeach()

set(build_dir "${WORK_DIR}/asan_build")
message(STATUS "==== asan_smoke: configure ====")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S "${SOURCE_DIR}" -B "${build_dir}"
    -DCMAKE_BUILD_TYPE=Release
    -DEDGESTAB_ASAN=ON
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan_smoke: configure failed with ${rc}")
endif()

message(STATUS "==== asan_smoke: build test_codec_fuzz ====")
include(ProcessorCount)
ProcessorCount(ncpu)
if(ncpu EQUAL 0)
  set(ncpu 2)
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} --build "${build_dir}"
    --target test_codec_fuzz --parallel ${ncpu}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "asan_smoke: build failed with ${rc}")
endif()

message(STATUS "==== asan_smoke: run fuzz harness under ASan/UBSan ====")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    "ASAN_OPTIONS=halt_on_error=1:detect_leaks=0"
    "${build_dir}/tests/test_codec_fuzz"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "asan_smoke: fuzz harness exited with ${rc} (an ASan/UBSan report or "
    "test failure fails the run; see output above)")
endif()

message(STATUS "asan_smoke OK — decoder fuzzing clean under ASan/UBSan")
