// Tests for the service timeline (src/obs/timeline): fold-epoch
// bucketing, the transition-driven breaker census, the deterministic
// trace cap, checkpoint-state round trips (with knob-mismatch refusal),
// the timeline.json codec and digest (which must ignore the
// observational queue lanes), hostile-label escaping in timeline.html,
// and the end-to-end determinism contract — thread-count invariance and
// kill/resume bit-exactness of the series (DESIGN.md §18).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/workspace.h"
#include "fault/fault.h"
#include "obs/fault_ledger.h"
#include "obs/timeline/timeline.h"
#include "obs/timeline/timeline_report.h"
#include "service/pipeline.h"

using namespace edgestab;
using obs::BreakerTransition;
using obs::ShotTrace;
using obs::TimelineDoc;
using obs::TimelineEpoch;
using obs::TimelineRecorder;

// ---- Recorder accumulation -------------------------------------------------

namespace {

/// A recorder with a 2-slot epoch and tiny name tables, ready to fold.
void begin_tiny(TimelineRecorder& rec, int epoch_slots, int devices = 3) {
  rec.set_epoch_slots(epoch_slots);
  rec.begin_run({"s0", "s1"}, {"c0"}, {"ok", "bad"}, devices);
}

}  // namespace

TEST(TimelineRecorder, BucketsShotsIntoFoldEpochs) {
  TimelineRecorder rec;
  begin_tiny(rec, 2);
  rec.record_shot(0, 0, 10, true);
  rec.record_shot(0, 1, 0, false);  // no latency sample for a lost shot
  rec.note_slot_folded({1, 4});
  rec.record_shot(0, 0, 100, true);
  rec.note_slot_folded({2, 2});  // closes epoch 0
  rec.record_shot(0, 0, 1000, true);
  rec.note_slot_folded({0, 0});

  TimelineDoc doc = rec.snapshot();
  EXPECT_EQ(doc.slots_total, 3);
  ASSERT_EQ(doc.epochs.size(), 2u);  // one closed + the trailing partial
  const TimelineEpoch& e0 = doc.epochs[0];
  EXPECT_EQ(e0.index, 0);
  EXPECT_EQ(e0.slots, 2);
  ASSERT_EQ(e0.outcomes.size(), 2u);
  EXPECT_EQ(e0.outcomes[0], 2);  // both ok shots landed before the close
  EXPECT_EQ(e0.outcomes[1], 1);
  // log2-µs buckets: 10µs -> bucket 3, 100µs -> bucket 6; the lost shot
  // contributed nothing.
  ASSERT_EQ(e0.latency_hist.size(), 1u);
  EXPECT_EQ(e0.latency_hist[0].at(3), 1);
  EXPECT_EQ(e0.latency_hist[0].at(6), 1);
  EXPECT_EQ(e0.latency_hist[0].size(), 2u);
  // Queue lanes: stage 0 saw depths {1, 2}, stage 1 saw {4, 2}.
  ASSERT_EQ(e0.queues.size(), 2u);
  EXPECT_EQ(e0.queues[0].min, 1);
  EXPECT_EQ(e0.queues[0].max, 2);
  EXPECT_EQ(e0.queues[0].sum, 3);
  EXPECT_EQ(e0.queues[1].max, 4);
  const TimelineEpoch& e1 = doc.epochs[1];
  EXPECT_EQ(e1.index, 1);
  EXPECT_EQ(e1.slots, 1);
  EXPECT_EQ(e1.outcomes[0], 1);
  EXPECT_EQ(e1.outcomes[1], 0);
}

TEST(TimelineRecorder, CensusFollowsTransitionStream) {
  TimelineRecorder rec;
  begin_tiny(rec, 1, 4);
  rec.record_transition(1, 0, 1, "timeout_trip");
  rec.record_transition(2, 0, 1, "timeout_trip");
  rec.record_transition(2, 1, 2, "cooldown_elapsed");
  rec.note_slot_folded({0, 0});  // closes epoch 0

  TimelineDoc doc = rec.snapshot();
  ASSERT_EQ(doc.epochs.size(), 1u);
  ASSERT_EQ(doc.epochs[0].census.size(),
            static_cast<std::size_t>(obs::kTimelineCensusStates));
  EXPECT_EQ(doc.epochs[0].census[0], 2);  // devices 0 and 3 still closed
  EXPECT_EQ(doc.epochs[0].census[1], 1);  // device 1 open
  EXPECT_EQ(doc.epochs[0].census[2], 1);  // device 2 half-open
  EXPECT_EQ(doc.epochs[0].census[3], 0);
  ASSERT_EQ(doc.transitions.size(), 3u);
  EXPECT_EQ(doc.transitions[0].device, 1);
  EXPECT_EQ(doc.transitions[0].epoch, 0);
  EXPECT_EQ(doc.transitions[0].cause, "timeout_trip");
  EXPECT_EQ(doc.transitions[2].to, 2);
}

TEST(TimelineRecorder, TraceCapIsDeterministic) {
  TimelineRecorder rec;
  begin_tiny(rec, 64);
  for (std::size_t i = 0; i < TimelineRecorder::kTraceCap + 5; ++i) {
    ShotTrace t;
    t.g = static_cast<long long>(i);
    rec.record_trace(t);
  }
  TimelineDoc doc = rec.snapshot();
  EXPECT_EQ(doc.traces.size(), TimelineRecorder::kTraceCap);
  EXPECT_EQ(doc.traces_dropped, 5);
  // The cap keeps the EARLIEST traces in fold order.
  EXPECT_EQ(doc.traces.front().g, 0);
  EXPECT_EQ(doc.traces.back().g,
            static_cast<long long>(TimelineRecorder::kTraceCap) - 1);
}

// ---- Checkpoint-state round trip -------------------------------------------

namespace {

/// Feed a recorder a deterministic mixed sequence: shots, transitions,
/// a trace, slot folds — ending mid-epoch so the open partial epoch is
/// exercised by serialization.
void feed_sequence(TimelineRecorder& rec, int slots) {
  for (int s = 0; s < slots; ++s) {
    rec.record_shot(0, s % 2, 10 + 90 * s, s % 2 == 0);
    if (s == 1) rec.record_transition(0, 0, 1, "timeout_trip");
    if (s == 2) {
      ShotTrace t;
      t.g = s;
      t.queue_wait_us = 42;
      t.service_us = 1000;
      t.attempts.push_back({0, 1000});
      rec.record_trace(t);
    }
    rec.note_slot_folded({static_cast<long long>(s), 7});
  }
}

}  // namespace

TEST(TimelineState, RoundTripContinuesSeriesMidEpoch) {
  TimelineRecorder a;
  begin_tiny(a, 3);
  feed_sequence(a, 5);  // 1 closed epoch + 2 slots of the open one
  const std::string state = a.serialize_state();

  TimelineRecorder b;
  begin_tiny(b, 3);
  ASSERT_TRUE(b.restore_state(state));
  EXPECT_EQ(b.digest(), a.digest());
  // The restored snapshot is byte-identical, queue lanes included.
  EXPECT_EQ(obs::timeline_json(b.snapshot()),
            obs::timeline_json(a.snapshot()));
  // And both recorders continue identically past the restore point.
  feed_sequence(a, 4);
  feed_sequence(b, 4);
  EXPECT_EQ(b.digest(), a.digest());
  EXPECT_EQ(obs::timeline_json(b.snapshot()),
            obs::timeline_json(a.snapshot()));
}

TEST(TimelineState, RestoreRefusesKnobMismatchAndGarbage) {
  TimelineRecorder a;
  begin_tiny(a, 3);
  feed_sequence(a, 4);
  const std::string state = a.serialize_state();

  TimelineRecorder wrong_epoch;
  begin_tiny(wrong_epoch, 4);  // different bucketing
  EXPECT_FALSE(wrong_epoch.restore_state(state));

  TimelineRecorder wrong_ppm;
  begin_tiny(wrong_ppm, 3);
  wrong_ppm.set_trace_sample_ppm(1);
  EXPECT_FALSE(wrong_ppm.restore_state(state));

  TimelineRecorder ok;
  begin_tiny(ok, 3);
  EXPECT_FALSE(ok.restore_state("not json"));
  EXPECT_FALSE(ok.restore_state("{\"format\":\"bogus-v9\"}"));
  // A failed restore leaves the recorder usable.
  ASSERT_TRUE(ok.restore_state(state));
  EXPECT_EQ(ok.digest(), a.digest());
}

// ---- timeline.json codec + digest ------------------------------------------

TEST(TimelineReport, JsonRoundTripsByteExactly) {
  TimelineRecorder rec;
  begin_tiny(rec, 2);
  feed_sequence(rec, 5);
  TimelineDoc doc = rec.snapshot();
  doc.bench = "fig_test";
  const std::string json = obs::timeline_json(doc);

  TimelineDoc back;
  std::string error;
  ASSERT_TRUE(obs::parse_timeline(json, &back, &error)) << error;
  EXPECT_EQ(obs::timeline_json(back), json);
  EXPECT_EQ(obs::timeline_digest(back), obs::timeline_digest(doc));
  EXPECT_EQ(back.bench, "fig_test");
  EXPECT_EQ(back.epoch_slots, 2);
  ASSERT_EQ(back.epochs.size(), doc.epochs.size());
  EXPECT_EQ(back.epochs[0].queues[0].sum, doc.epochs[0].queues[0].sum);

  EXPECT_FALSE(obs::parse_timeline("{\"format\":\"bogus\"}", &back, &error));
  EXPECT_FALSE(obs::parse_timeline("nope", &back, &error));
}

TEST(TimelineReport, DigestIgnoresObservationalQueueLanes) {
  TimelineRecorder rec;
  begin_tiny(rec, 2);
  feed_sequence(rec, 4);
  TimelineDoc doc = rec.snapshot();
  const std::uint64_t before = obs::timeline_digest(doc);
  // Queue depths are wall-clock observations: perturbing them must not
  // move the digest...
  doc.epochs[0].queues[0].max += 100;
  doc.epochs[0].queues[1].sum += 1;
  EXPECT_EQ(obs::timeline_digest(doc), before);
  // ...but any deterministic surface does.
  doc.epochs[0].outcomes[0] += 1;
  EXPECT_NE(obs::timeline_digest(doc), before);
}

TEST(TimelineReport, HtmlEscapesHostileLabels) {
  TimelineDoc doc;
  doc.bench = "bench<script>alert(1)</script>";
  doc.epoch_slots = 2;
  doc.stages = {"\"><img src=x onerror=alert(2)>"};
  doc.classes = {"<script>alert(3)</script>"};
  doc.outcomes = {"ok"};
  TimelineEpoch e;
  e.index = 0;
  e.slots = 2;
  e.outcomes = {5};
  e.latency_hist.resize(1);
  e.census.assign(obs::kTimelineCensusStates, 0);
  e.queues.resize(1);
  doc.epochs.push_back(e);
  BreakerTransition tr;
  tr.cause = "<b>evil</b>";
  doc.transitions.push_back(tr);
  ShotTrace t;
  t.cls = 0;  // renders the hostile class label in the traces table
  doc.traces.push_back(t);

  const std::string html = obs::timeline_html(doc);
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_EQ(html.find("<img src=x"), std::string::npos);
  EXPECT_EQ(html.find("<b>evil</b>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;alert(3)&lt;/script&gt;"),
            std::string::npos);
  EXPECT_NE(html.find("&lt;img src=x onerror=alert(2)&gt;"),
            std::string::npos);
}

// ---- End-to-end determinism ------------------------------------------------

namespace {

/// The service-gate geometry from test_service.cpp, with a deliberately
/// small epoch so the 36-slot run closes several.
service::ServiceConfig timeline_gate_config() {
  service::ServiceConfig config;
  config.devices = 6;
  config.shots = 6 * 36;
  config.stimulus_bank = 3;
  config.scene_size = 32;
  config.seed = 99;
  config.plan = fault::parse_fault_plan("moderate,budget,deadline_ms=24");
  config.shed_backlog_ms = 120.0;
  config.drain_ms_per_shot = 40.0;
  return config;
}

/// Arm the timeline (5-slot epochs, generous trace sampling), reset the
/// service globals, run, and return the series digest.
std::uint64_t run_timeline_gate(Model& model,
                                const service::ServiceConfig& config) {
  auto& rec = TimelineRecorder::global();
  rec.clear();
  rec.set_epoch_slots(5);
  rec.set_trace_sample_ppm(100000);
  rec.set_enabled(true);
  obs::FaultLedger::global().clear();
  fault::FaultInjector::global().configure(config.plan);
  (void)service::run_fleet_service(model, config);
  fault::FaultInjector::global().reset();
  rec.set_enabled(false);
  return rec.digest();
}

}  // namespace

TEST(TimelineService, DigestInvariantAcrossThreadCounts) {
  if (!obs::kTimelineCompiledIn)
    GTEST_SKIP() << "built with EDGESTAB_TIMELINE=OFF";
  Workspace ws;
  Model model = ws.fresh_model();
  service::ServiceConfig config = timeline_gate_config();
  config.threads = 1;
  const std::uint64_t one = run_timeline_gate(model, config);
  config.threads = 3;
  const std::uint64_t three = run_timeline_gate(model, config);
  EXPECT_EQ(one, three);
  EXPECT_NE(one, 0u);
  EXPECT_FALSE(TimelineRecorder::global().empty());
  TimelineRecorder::global().clear();
}

TEST(TimelineService, StopAndResumeContinuesSeriesExactly) {
  if (!obs::kTimelineCompiledIn)
    GTEST_SKIP() << "built with EDGESTAB_TIMELINE=OFF";
  Workspace ws;
  Model model = ws.fresh_model();
  const std::string ckpt_path =
      testing::TempDir() + "/edgestab_timeline_resume.ckpt.json";

  service::ServiceConfig config = timeline_gate_config();
  const std::uint64_t reference = run_timeline_gate(model, config);

  // Stop after the second checkpoint: slot 14 is mid-epoch with the
  // 5-slot epochs run_timeline_gate arms, so the open partial epoch
  // rides through the checkpoint.
  service::ServiceConfig first_half = config;
  first_half.checkpoint_path = ckpt_path;
  first_half.checkpoint_every_slots = 7;
  first_half.stop_after_checkpoints = 2;
  (void)run_timeline_gate(model, first_half);

  service::ServiceConfig second_half = config;
  second_half.checkpoint_path = ckpt_path;
  second_half.checkpoint_every_slots = 7;
  second_half.resume = true;
  const std::uint64_t resumed = run_timeline_gate(model, second_half);
  EXPECT_EQ(resumed, reference);
  TimelineRecorder::global().clear();
  std::remove(ckpt_path.c_str());
}

TEST(TimelineService, ArmedResumeRefusesTimelineLessCheckpoint) {
  if (!obs::kTimelineCompiledIn)
    GTEST_SKIP() << "built with EDGESTAB_TIMELINE=OFF";
  Workspace ws;
  Model model = ws.fresh_model();
  const std::string ckpt_path =
      testing::TempDir() + "/edgestab_timeline_unarmed.ckpt.json";

  // Cut a checkpoint with the timeline disarmed...
  service::ServiceConfig config = timeline_gate_config();
  config.checkpoint_path = ckpt_path;
  config.checkpoint_every_slots = 7;
  config.stop_after_checkpoints = 1;
  TimelineRecorder::global().set_enabled(false);
  obs::FaultLedger::global().clear();
  fault::FaultInjector::global().configure(config.plan);
  (void)service::run_fleet_service(model, config);
  fault::FaultInjector::global().reset();

  // ...then resuming WITH the timeline armed must refuse: the series
  // cannot be reconstructed for the already-folded half.
  service::ServiceConfig resume = config;
  resume.stop_after_checkpoints = 0;
  resume.resume = true;
  auto& rec = TimelineRecorder::global();
  rec.clear();
  rec.set_epoch_slots(5);
  rec.set_enabled(true);
  obs::FaultLedger::global().clear();
  fault::FaultInjector::global().configure(resume.plan);
  EXPECT_THROW(service::run_fleet_service(model, resume), CheckError);
  fault::FaultInjector::global().reset();
  rec.set_enabled(false);
  rec.clear();
  std::remove(ckpt_path.c_str());
}
