// Regression and hardening tests for issues found during the calibration
// of the reproduction, plus extra property coverage on odd shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/codec.h"
#include "image/metrics.h"
#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace edgestab {
namespace {

// Regression: training-mode forwards of the stability-training companion
// branch used to update BatchNorm running statistics, so heavily-noised
// companions (gaussian sigma^2 = 0.04) corrupted inference behaviour and
// collapsed accuracy. The companion branch must normalize with batch
// stats but leave the running averages untouched.
TEST(Regression, BnStatsFreezeLeavesRunningAveragesUntouched) {
  BatchNorm bn("bn", 3);
  Pcg32 rng(1);
  Tensor x({8, 3, 4, 4});
  for (float& v : x.data()) v = static_cast<float>(rng.normal(2.0, 1.5));

  bn.forward(x, /*train=*/true);
  std::vector<float> mean_after(bn.running_mean().data().begin(),
                                bn.running_mean().data().end());
  std::vector<float> var_after(bn.running_var().data().begin(),
                               bn.running_var().data().end());

  // Frozen: a very different batch must not move the running stats.
  bn.set_update_running_stats(false);
  Tensor noisy({8, 3, 4, 4});
  for (float& v : noisy.data()) v = static_cast<float>(rng.normal(-5.0, 4.0));
  Tensor frozen_out = bn.forward(noisy, /*train=*/true);
  for (std::size_t i = 0; i < mean_after.size(); ++i) {
    EXPECT_FLOAT_EQ(bn.running_mean().data()[i], mean_after[i]);
    EXPECT_FLOAT_EQ(bn.running_var().data()[i], var_after[i]);
  }

  // But the frozen forward still normalizes with *batch* statistics:
  // its output is standardized regardless of the crazy input stats.
  double sum = 0.0;
  for (float v : frozen_out.data()) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(frozen_out.numel()), 0.0, 0.05);

  // Unfrozen again: stats move.
  bn.set_update_running_stats(true);
  bn.forward(noisy, /*train=*/true);
  EXPECT_NE(bn.running_mean().data()[0], mean_after[0]);
}

// Regression: stability training with a large-noise companion must not
// destroy clean-input accuracy (the observable symptom of the BN bug).
TEST(Regression, LargeNoiseCompanionKeepsCleanAccuracy) {
  Pcg32 rng(2);
  // Trivially separable data.
  TensorDataset train;
  train.images = Tensor({96, 3, 8, 8});
  train.labels.resize(96);
  for (int i = 0; i < 96; ++i) {
    int cls = i % 3;
    train.labels[static_cast<std::size_t>(i)] = cls;
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
          train.images.at4(i, c, y, x) =
              (c == cls ? 0.8f : -0.5f) +
              static_cast<float>(rng.normal(0, 0.1));
  }
  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 init(3);
  m.init(init);

  CompanionFn heavy_noise = [](const Tensor& clean, int, Pcg32& r) {
    Tensor noisy = clean;
    for (float& v : noisy.data())
      v += static_cast<float>(r.normal(0.0, 1.0));  // extreme
    return noisy;
  };
  TrainConfig tc;
  tc.epochs = 6;
  tc.batch_size = 16;
  tc.lr = 3e-3f;
  tc.seed = 4;
  train_stability(m, train, nullptr, StabilityLoss::kEmbedding, 0.01f,
                  heavy_noise, tc);
  Tensor probs = predict_probs(m, train.images);
  EXPECT_GT(accuracy(probs, train.labels), 0.9);
}

// Lossy codecs must handle dimensions that are not multiples of their
// block sizes (8 for JPEG/WebP-like, 16 for HEIF-like) and not change
// the image dimensions.
TEST(Regression, LossyCodecsOddDimensions) {
  Pcg32 rng(5);
  for (auto [w, h] : {std::pair{31, 17}, {9, 40}, {16, 16}, {65, 33}}) {
    Image img(w, h, 3);
    for (float& v : img.data()) v = static_cast<float>(rng.uniform());
    // Smooth it so PSNR is meaningful.
    ImageU8 u8 = to_u8(img);
    for (ImageFormat f : {ImageFormat::kJpegLike, ImageFormat::kWebpLike,
                          ImageFormat::kHeifLike}) {
      auto codec = make_codec(f, 90);
      ImageU8 out = codec->decode(codec->encode(u8));
      ASSERT_EQ(out.width(), w) << codec->name();
      ASSERT_EQ(out.height(), h) << codec->name();
    }
  }
}

// Constant-color images are the DC-only path of every transform codec;
// they must reconstruct almost exactly and compress extremely well.
TEST(Regression, ConstantImageDcOnlyPath) {
  ImageU8 img(64, 64, 3);
  for (std::size_t i = 0; i < img.size(); i += 3) {
    img.data()[i] = 180;
    img.data()[i + 1] = 90;
    img.data()[i + 2] = 40;
  }
  for (ImageFormat f : {ImageFormat::kJpegLike, ImageFormat::kWebpLike,
                        ImageFormat::kHeifLike}) {
    auto codec = make_codec(f, 85);
    Bytes data = codec->encode(img);
    EXPECT_LT(data.size(), 600u) << codec->name();
    ImageU8 out = codec->decode(data);
    double p = psnr(to_float(img), to_float(out));
    EXPECT_GT(p, 35.0) << codec->name();
  }
}

// KL loss gradients must stay finite when one distribution is nearly
// one-hot (log-of-tiny-probability territory).
TEST(Regression, KlLossStableNearOneHot) {
  Tensor lc({1, 4});
  Tensor ln({1, 4});
  lc.at2(0, 0) = 30.0f;  // saturated softmax
  ln.at2(0, 1) = 30.0f;  // disagreeing, also saturated
  Tensor gc, gn;
  double kl = kl_stability_loss(lc, ln, &gc, &gn);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);
  for (std::size_t i = 0; i < gc.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(gc[i]));
    EXPECT_TRUE(std::isfinite(gn[i]));
  }
}

// Dense layers reused across batch sizes must not carry stale caches.
TEST(Regression, LayerHandlesChangingBatchSize) {
  Dense fc("fc", 6, 3);
  Pcg32 rng(6);
  fc.init(rng);
  Tensor a({2, 6}, 0.5f);
  Tensor b({7, 6}, 0.25f);
  Tensor ya = fc.forward(a, true);
  EXPECT_EQ(ya.dim(0), 2);
  Tensor yb = fc.forward(b, true);
  EXPECT_EQ(yb.dim(0), 7);
  Tensor gb({7, 3}, 1.0f);
  Tensor gin = fc.backward(gb);
  EXPECT_EQ(gin.dim(0), 7);
}

// predict_probs with a batch size that does not divide the sample count
// must classify the ragged tail too.
TEST(Regression, PredictProbsRaggedTail) {
  MobileNetConfig cfg;
  cfg.input_size = 8;
  cfg.num_classes = 3;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  Pcg32 rng(7);
  m.init(rng);
  Tensor x({5, 3, 8, 8});
  for (float& v : x.data()) v = static_cast<float>(rng.normal());
  Tensor probs = predict_probs(m, x, /*batch_size=*/2);
  ASSERT_EQ(probs.dim(0), 5);
  for (int i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 3; ++j) sum += probs.at2(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

}  // namespace
}  // namespace edgestab
