// Image library tests: storage/indexing, u8 conversions, color-space
// round trips, resizing (including property sweeps over filters), affine
// warps, drawing invariants, and comparison metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "image/color.h"
#include "image/draw.h"
#include "image/image.h"
#include "image/metrics.h"
#include "image/resize.h"
#include "util/rng.h"

namespace edgestab {
namespace {

Image random_image(int w, int h, int c, Pcg32& rng) {
  Image img(w, h, c);
  for (float& v : img.data()) v = static_cast<float>(rng.uniform());
  return img;
}

TEST(Image, PlanarLayout) {
  Image img(4, 3, 2);
  img.at(1, 2, 1) = 0.5f;
  // plane 1 offset = 12, row 2 offset = 8, x = 1.
  EXPECT_FLOAT_EQ(img.data()[12 + 8 + 1], 0.5f);
  EXPECT_EQ(img.plane(1).size(), 12u);
}

TEST(Image, ClampedSampling) {
  Image img(2, 2, 1);
  img.at(0, 0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(img.at_clamped(-5, -5, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.at_clamped(7, 0, 0), img.at(1, 0, 0));
}

TEST(Image, BilinearSampleInterpolates) {
  Image img(2, 1, 1);
  img.at(0, 0, 0) = 0.0f;
  img.at(1, 0, 0) = 1.0f;
  EXPECT_NEAR(img.sample_bilinear(0.5f, 0.0f, 0), 0.5f, 1e-6f);
  EXPECT_NEAR(img.sample_bilinear(0.25f, 0.0f, 0), 0.25f, 1e-6f);
}

TEST(Image, U8RoundTripExact) {
  Pcg32 rng(1);
  Image img = random_image(8, 8, 3, rng);
  ImageU8 u8 = to_u8(img);
  Image back = to_float(u8);
  // Quantization error bounded by half a step.
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_NEAR(back.data()[i], img.data()[i], 0.5f / 255.0f + 1e-6f);
  // u8 -> float -> u8 is lossless.
  EXPECT_EQ(to_u8(back), u8);
}

TEST(Image, ArithmeticHelpers) {
  Image a(2, 2, 1, 0.5f);
  Image b(2, 2, 1, 1.0f);
  a.add_scaled(b, 0.25f);
  EXPECT_FLOAT_EQ(a.at(0, 0, 0), 0.75f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1, 0), 1.5f);
  a.clamp(0.0f, 1.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1, 0), 1.0f);
}

TEST(Color, YCbCrRoundTrip) {
  Pcg32 rng(2);
  for (int i = 0; i < 200; ++i) {
    float r = static_cast<float>(rng.uniform());
    float g = static_cast<float>(rng.uniform());
    float b = static_cast<float>(rng.uniform());
    float y, cb, cr, r2, g2, b2;
    rgb_to_ycbcr(r, g, b, y, cb, cr);
    ycbcr_to_rgb(y, cb, cr, r2, g2, b2);
    EXPECT_NEAR(r, r2, 5e-3f);
    EXPECT_NEAR(g, g2, 5e-3f);
    EXPECT_NEAR(b, b2, 5e-3f);
  }
}

TEST(Color, GrayHasCenteredChroma) {
  float y, cb, cr;
  rgb_to_ycbcr(0.5f, 0.5f, 0.5f, y, cb, cr);
  EXPECT_NEAR(y, 0.5f, 1e-5f);
  EXPECT_NEAR(cb, 0.5f, 1e-5f);
  EXPECT_NEAR(cr, 0.5f, 1e-5f);
}

TEST(Color, HsvRoundTrip) {
  Pcg32 rng(3);
  for (int i = 0; i < 200; ++i) {
    float r = static_cast<float>(rng.uniform());
    float g = static_cast<float>(rng.uniform());
    float b = static_cast<float>(rng.uniform());
    float h, s, v, r2, g2, b2;
    rgb_to_hsv(r, g, b, h, s, v);
    hsv_to_rgb(h, s, v, r2, g2, b2);
    EXPECT_NEAR(r, r2, 1e-4f);
    EXPECT_NEAR(g, g2, 1e-4f);
    EXPECT_NEAR(b, b2, 1e-4f);
  }
}

TEST(Color, HsvPrimaries) {
  float h, s, v;
  rgb_to_hsv(1.0f, 0.0f, 0.0f, h, s, v);
  EXPECT_NEAR(h, 0.0f, 1e-5f);
  EXPECT_NEAR(s, 1.0f, 1e-5f);
  EXPECT_NEAR(v, 1.0f, 1e-5f);
  rgb_to_hsv(0.0f, 1.0f, 0.0f, h, s, v);
  EXPECT_NEAR(h, 1.0f / 3.0f, 1e-5f);
}

TEST(Color, SrgbRoundTripAndEndpoints) {
  EXPECT_NEAR(srgb_encode(0.0f), 0.0f, 1e-6f);
  EXPECT_NEAR(srgb_encode(1.0f), 1.0f, 1e-6f);
  Pcg32 rng(4);
  for (int i = 0; i < 100; ++i) {
    float v = static_cast<float>(rng.uniform());
    EXPECT_NEAR(srgb_decode(srgb_encode(v)), v, 1e-5f);
  }
}

TEST(Color, AdjustHsvIdentityIsNoOp) {
  Pcg32 rng(5);
  Image img = random_image(6, 6, 3, rng);
  Image copy = img;
  adjust_hsv(copy, 0.0f, 1.0f, 1.0f);
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_NEAR(copy.data()[i], img.data()[i], 1e-4f);
}

TEST(Color, ContrastBrightness) {
  Image img(1, 1, 3, 0.5f);
  adjust_contrast_brightness(img, 2.0f, 0.1f);
  EXPECT_NEAR(img.at(0, 0, 0), 0.6f, 1e-6f);
  Image img2(1, 1, 3, 0.75f);
  adjust_contrast_brightness(img2, 2.0f, 0.0f);
  EXPECT_NEAR(img2.at(0, 0, 0), 1.0f, 1e-6f);  // clamped
}

TEST(Color, ColorMatrixIdentity) {
  Pcg32 rng(6);
  Image img = random_image(4, 4, 3, rng);
  Image copy = img;
  apply_color_matrix(copy, {1, 0, 0, 0, 1, 0, 0, 0, 1});
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_FLOAT_EQ(copy.data()[i], img.data()[i]);
}

class ResizeFilterTest : public ::testing::TestWithParam<ResizeFilter> {};

TEST_P(ResizeFilterTest, PreservesConstantImages) {
  Image img(9, 7, 3, 0.42f);
  Image out = resize(img, 5, 4, GetParam());
  for (float v : out.data()) EXPECT_NEAR(v, 0.42f, 1e-5f);
}

TEST_P(ResizeFilterTest, IdentityWhenSameSize) {
  Pcg32 rng(7);
  Image img = random_image(6, 6, 3, rng);
  Image out = resize(img, 6, 6, GetParam());
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_FLOAT_EQ(out.data()[i], img.data()[i]);
}

TEST_P(ResizeFilterTest, OutputInInputRangeForUpscale) {
  Pcg32 rng(8);
  Image img = random_image(4, 4, 1, rng);
  Image out = resize(img, 13, 11, GetParam());
  // Catmull-Rom can overshoot slightly; allow a small margin.
  for (float v : out.data()) {
    EXPECT_GT(v, -0.2f);
    EXPECT_LT(v, 1.2f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFilters, ResizeFilterTest,
                         ::testing::Values(ResizeFilter::kNearest,
                                           ResizeFilter::kBilinear,
                                           ResizeFilter::kBicubic,
                                           ResizeFilter::kArea));

TEST(Resize, AreaDownscaleAverages) {
  Image img(4, 4, 1);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      img.at(x, y, 0) = static_cast<float>(y * 4 + x);
  Image out = resize(img, 2, 2, ResizeFilter::kArea);
  EXPECT_NEAR(out.at(0, 0, 0), (0 + 1 + 4 + 5) / 4.0f, 1e-5f);
  EXPECT_NEAR(out.at(1, 1, 0), (10 + 11 + 14 + 15) / 4.0f, 1e-5f);
}

TEST(Resize, CropExtractsRegion) {
  Pcg32 rng(9);
  Image img = random_image(8, 8, 2, rng);
  Image c = crop(img, 2, 3, 4, 2);
  EXPECT_EQ(c.width(), 4);
  EXPECT_EQ(c.height(), 2);
  EXPECT_FLOAT_EQ(c.at(0, 0, 1), img.at(2, 3, 1));
  EXPECT_FLOAT_EQ(c.at(3, 1, 0), img.at(5, 4, 0));
  EXPECT_THROW(crop(img, 6, 6, 4, 4), CheckError);
}

TEST(Resize, FlipHorizontalInvolution) {
  Pcg32 rng(10);
  Image img = random_image(7, 5, 3, rng);
  Image back = flip_horizontal(flip_horizontal(img));
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_FLOAT_EQ(back.data()[i], img.data()[i]);
}

TEST(Affine, IdentityWarpIsNearNoOp) {
  Pcg32 rng(11);
  Image img = random_image(8, 8, 3, rng);
  Image out = warp_affine(img, Affine::identity(), 8, 8);
  for (int y = 1; y < 7; ++y)
    for (int x = 1; x < 7; ++x)
      for (int c = 0; c < 3; ++c)
        EXPECT_NEAR(out.at(x, y, c), img.at(x, y, c), 1e-5f);
}

TEST(Affine, TranslationMovesContent) {
  Image img(8, 8, 1);
  img.at(3, 3, 0) = 1.0f;
  // Output pixel (5,3) should sample source (3,3).
  Image out = warp_affine(img, Affine::translate(-2, 0), 8, 8);
  EXPECT_NEAR(out.at(5, 3, 0), 1.0f, 1e-5f);
}

TEST(Affine, ComposeMatchesSequentialApplication) {
  Affine a = Affine::rotate_about(0.3f, 4.0f, 4.0f);
  Affine b = Affine::scale_about(1.2f, 0.8f, 2.0f, 2.0f);
  Affine ab = a.compose(b);
  float x1, y1, x2, y2;
  b.apply(1.5f, 2.5f, x1, y1);
  a.apply(x1, y1, x1, y1);
  ab.apply(1.5f, 2.5f, x2, y2);
  EXPECT_NEAR(x1, x2, 1e-4f);
  EXPECT_NEAR(y1, y2, 1e-4f);
}

TEST(Affine, RotationPreservesCenter) {
  Affine r = Affine::rotate_about(1.1f, 5.0f, 6.0f);
  float x, y;
  r.apply(5.0f, 6.0f, x, y);
  EXPECT_NEAR(x, 5.0f, 1e-4f);
  EXPECT_NEAR(y, 6.0f, 1e-4f);
}

TEST(Draw, FillAndGradient) {
  Image img(4, 4, 3);
  fill(img, {0.2f, 0.4f, 0.6f});
  EXPECT_FLOAT_EQ(img.at(2, 2, 1), 0.4f);
  fill_vertical_gradient(img, {0, 0, 0}, {1, 1, 1});
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.at(0, 3, 0), 1.0f);
}

TEST(Draw, CircleCoverage) {
  Image img(20, 20, 3);
  fill(img, {0, 0, 0});
  paint_sdf(img, SdfCircle{10, 10, 5}, {1, 1, 1});
  EXPECT_NEAR(img.at(10, 10, 0), 1.0f, 1e-5f);   // center inside
  EXPECT_NEAR(img.at(1, 1, 0), 0.0f, 1e-5f);     // corner outside
}

TEST(Draw, SdfSigns) {
  SdfCircle c{0, 0, 2};
  EXPECT_LT(c(0, 0), 0.0f);
  EXPECT_GT(c(5, 0), 0.0f);
  SdfRoundRect r{0, 0, 4, 3, 1};
  EXPECT_LT(r(0, 0), 0.0f);
  EXPECT_GT(r(10, 0), 0.0f);
  SdfEllipse e{0, 0, 4, 2};
  EXPECT_LT(e(0, 0), 0.0f);
  EXPECT_GT(e(0, 5), 0.0f);
  SdfCapsule cap{0, 0, 4, 0, 1};
  EXPECT_LT(cap(2, 0), 0.0f);
  EXPECT_GT(cap(2, 3), 0.0f);
  SdfTrapezoid t{0, 0, 4, 1, 3};
  EXPECT_LT(t(0, 0), 0.0f);
  EXPECT_GT(t(5, 0), 0.0f);
}

TEST(Draw, ValueNoiseDeterministicAndBounded) {
  float a = value_noise(3.7f, 9.1f, 4.0f, 42);
  float b = value_noise(3.7f, 9.1f, 4.0f, 42);
  EXPECT_FLOAT_EQ(a, b);
  EXPECT_NE(a, value_noise(3.7f, 9.1f, 4.0f, 43));
  Pcg32 rng(12);
  for (int i = 0; i < 200; ++i) {
    float v = value_noise(static_cast<float>(rng.uniform(0, 100)),
                          static_cast<float>(rng.uniform(0, 100)), 7.0f, 7);
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(Metrics, PsnrIdenticalIsInfinite) {
  Pcg32 rng(13);
  Image img = random_image(6, 6, 3, rng);
  EXPECT_TRUE(std::isinf(psnr(img, img)));
}

TEST(Metrics, PsnrKnownValue) {
  Image a(10, 10, 1, 0.0f);
  Image b(10, 10, 1, 0.1f);
  // MSE = 0.01 -> PSNR = 20 dB.
  EXPECT_NEAR(psnr(a, b), 20.0, 1e-6);
}

TEST(Metrics, DiffMaskAndFraction) {
  Image a(4, 4, 3, 0.5f);
  Image b = a;
  b.at(1, 1, 0) = 0.8f;  // above 5% threshold
  b.at(2, 2, 1) = 0.52f; // below threshold
  EXPECT_NEAR(diff_fraction(a, b, 0.05f), 1.0 / 16.0, 1e-9);
  Image mask = diff_mask(a, b, 0.05f);
  EXPECT_FLOAT_EQ(mask.at(1, 1, 0), 1.0f);
  EXPECT_FLOAT_EQ(mask.at(2, 2, 0), 0.0f);
}

TEST(Metrics, ShapeMismatchThrows) {
  Image a(4, 4, 3);
  Image b(4, 5, 3);
  EXPECT_THROW(mse(a, b), CheckError);
}

TEST(Metrics, SsimIdenticalIsOne) {
  Pcg32 rng(17);
  Image img = random_image(32, 32, 3, rng);
  EXPECT_NEAR(ssim(img, img), 1.0, 1e-9);
}

TEST(Metrics, SsimOrdersDistortionSeverity) {
  Pcg32 rng(18);
  Image a = random_image(32, 32, 3, rng);
  Pcg32 noise_rng(19);
  Image mild = a;
  Image severe = a;
  for (std::size_t i = 0; i < a.size(); ++i) {
    auto n = static_cast<float>(noise_rng.uniform() - 0.5);
    mild.data()[i] = std::clamp(a.data()[i] + 0.1f * n, 0.0f, 1.0f);
    severe.data()[i] = std::clamp(a.data()[i] + 0.8f * n, 0.0f, 1.0f);
  }
  double s_mild = ssim(a, mild);
  double s_severe = ssim(a, severe);
  EXPECT_LT(s_mild, 1.0);
  EXPECT_GT(s_mild, s_severe);
  EXPECT_GT(s_severe, 0.0);
}

TEST(Metrics, SsimForgivesUniformShiftMoreThanNoise) {
  // SSIM is a *structural* metric: a constant brightness offset keeps
  // structure intact and must score higher than same-energy noise.
  Pcg32 rng(20);
  Image a = random_image(32, 32, 1, rng);
  for (float& v : a.data()) v = 0.25f + 0.5f * v;  // keep shift in range
  Image shifted = a;
  for (float& v : shifted.data()) v += 0.1f;
  Pcg32 noise_rng(21);
  Image noisy = a;
  for (float& v : noisy.data())
    v += (noise_rng.uniform() < 0.5 ? -0.1f : 0.1f);
  EXPECT_NEAR(mse(a, shifted), mse(a, noisy), 1e-6);
  EXPECT_GT(ssim(a, shifted), ssim(a, noisy));
}

}  // namespace
}  // namespace edgestab
