# Runs one bench binary end-to-end in a scratch directory and asserts its
# artifacts land: the result CSV and provenance manifest always, the
# Chrome trace only when tracing is compiled in, the drift reports only
# when divergence auditing is compiled in (and their absence when not).
# Invoked by the `bench_artifacts` ctest entry; the model cache lives in
# the build tree so only the first run pays for pretraining.
#
# Expected -D variables: BENCH_EXE, WORK_DIR, CACHE_DIR, BENCH_NAME,
# CSV_FILE, TRACING_ON, DRIFT_ON.
foreach(var BENCH_EXE WORK_DIR CACHE_DIR BENCH_NAME CSV_FILE)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_bench_artifacts: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}/bench_out")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "EDGESTAB_CACHE=${CACHE_DIR}" "${BENCH_EXE}"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench exited with ${bench_rc}")
endif()

set(out "${WORK_DIR}/bench_out")
foreach(artifact "${CSV_FILE}" "${BENCH_NAME}.meta.json")
  if(NOT EXISTS "${out}/${artifact}")
    message(FATAL_ERROR "missing artifact ${out}/${artifact}")
  endif()
endforeach()

# The manifest must be non-trivial (schema header present).
file(READ "${out}/${BENCH_NAME}.meta.json" meta)
if(NOT meta MATCHES "edgestab-run-manifest-v1")
  message(FATAL_ERROR "manifest ${out}/${BENCH_NAME}.meta.json lacks schema")
endif()

set(trace "${out}/${BENCH_NAME}.trace.json")
if(TRACING_ON)
  if(NOT EXISTS "${trace}")
    message(FATAL_ERROR "tracing build produced no ${trace}")
  endif()
  file(READ "${trace}" trace_doc)
  if(NOT trace_doc MATCHES "traceEvents")
    message(FATAL_ERROR "${trace} is not a Chrome trace document")
  endif()
  if(NOT EXISTS "${out}/${BENCH_NAME}_stage_timing.csv")
    message(FATAL_ERROR "missing ${out}/${BENCH_NAME}_stage_timing.csv")
  endif()
else()
  if(EXISTS "${trace}")
    message(FATAL_ERROR "non-tracing build still wrote ${trace}")
  endif()
endif()

set(drift_json "${out}/${BENCH_NAME}.drift.json")
set(drift_html "${out}/${BENCH_NAME}.drift.html")
if(DRIFT_ON)
  if(NOT EXISTS "${drift_json}")
    message(FATAL_ERROR "drift build produced no ${drift_json}")
  endif()
  file(READ "${drift_json}" drift_doc)
  if(NOT drift_doc MATCHES "edgestab-drift-report-v1")
    message(FATAL_ERROR "${drift_json} lacks the drift report schema")
  endif()
  if(NOT EXISTS "${drift_html}")
    message(FATAL_ERROR "drift build produced no ${drift_html}")
  endif()
  # The manifest must carry the drift digests bench::Run folded in.
  if(NOT meta MATCHES "drift_report")
    message(FATAL_ERROR "manifest lacks the drift_report digest")
  endif()
else()
  if(EXISTS "${drift_json}" OR EXISTS "${drift_html}")
    message(FATAL_ERROR "non-drift build still wrote drift reports")
  endif()
endif()

message(STATUS "bench artifacts OK in ${out}")
