// Codec tests: bit I/O, Huffman coding, DCT inversion, round-trips for
// all four codecs (parameterized quality sweeps), size orderings that the
// paper's Tables 2-3 rely on, and the JPEG decoder variants that drive the
// §7 OS experiment.
#include <gtest/gtest.h>

#include <cmath>

#include "codec/bitio.h"
#include "codec/codec.h"
#include "codec/coeffs.h"
#include "codec/dct.h"
#include "codec/huffman.h"
#include "codec/jpeg_like.h"
#include "codec/png_like.h"
#include "image/draw.h"
#include "image/metrics.h"
#include "util/md5.h"
#include "util/rng.h"

namespace edgestab {
namespace {

/// A photo-like test image: gradient sky, textured ground, a few shapes.
ImageU8 photo_like_image(int w, int h, std::uint64_t seed) {
  Image img(w, h, 3);
  fill_vertical_gradient(img, {0.55f, 0.65f, 0.8f}, {0.35f, 0.3f, 0.25f});
  Pcg32 rng(seed);
  for (int i = 0; i < 4; ++i) {
    float cx = static_cast<float>(rng.uniform(0.2, 0.8)) * w;
    float cy = static_cast<float>(rng.uniform(0.2, 0.8)) * h;
    float r = static_cast<float>(rng.uniform(0.08, 0.2)) * w;
    Rgb color{static_cast<float>(rng.uniform(0.1, 0.9)),
              static_cast<float>(rng.uniform(0.1, 0.9)),
              static_cast<float>(rng.uniform(0.1, 0.9))};
    paint_sdf(img, SdfCircle{cx, cy, r}, color);
  }
  texture_speckle(img, SdfRoundRect{w / 2.0f, h / 2.0f, w / 2.0f, h / 2.0f,
                                    1.0f},
                  0.03f, 3.0f, seed + 1);
  return to_u8(img);
}

TEST(BitIo, RoundTripVariousWidths) {
  BitWriter bw;
  bw.put(1, 1);
  bw.put(0b1010, 4);
  bw.put(0x3ff, 10);
  bw.put(0xdeadbeef, 32);
  bw.put(0, 3);
  Bytes data = bw.finish();
  BitReader br(data);
  EXPECT_EQ(br.get(1), 1u);
  EXPECT_EQ(br.get(4), 0b1010u);
  EXPECT_EQ(br.get(10), 0x3ffu);
  EXPECT_EQ(br.get(32), 0xdeadbeefu);
  EXPECT_EQ(br.get(3), 0u);
}

TEST(BitIo, MsbFirstByteLayout) {
  BitWriter bw;
  bw.put(1, 1);  // high bit of first byte
  Bytes data = bw.finish();
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data[0], 0x80);
}

TEST(BitIo, ReadPastEndThrows) {
  BitWriter bw;
  bw.put(0xff, 8);
  Bytes data = bw.finish();
  BitReader br(data);
  br.get(8);
  // Over-reading is a data error (truncated stream), not a programmer
  // error: it throws the typed DecodeError so try_decode can trap it.
  EXPECT_THROW(br.get(1), DecodeError);
}

TEST(Huffman, RoundTripRandomSymbols) {
  Pcg32 rng(1);
  std::vector<std::uint64_t> freq(64, 0);
  std::vector<int> symbols;
  for (int i = 0; i < 2000; ++i) {
    // Skewed distribution.
    int s = static_cast<int>(rng.uniform() * rng.uniform() * 64) % 64;
    symbols.push_back(s);
    ++freq[static_cast<std::size_t>(s)];
  }
  HuffmanTable table = HuffmanTable::from_frequencies(freq);
  BitWriter bw;
  table.write_table(bw);
  for (int s : symbols) table.encode(bw, s);
  Bytes data = bw.finish();

  BitReader br(data);
  HuffmanTable decoded_table = HuffmanTable::read_table(br);
  for (int expected : symbols) EXPECT_EQ(decoded_table.decode(br), expected);
}

TEST(Huffman, SingleSymbolAlphabet) {
  std::vector<std::uint64_t> freq(10, 0);
  freq[3] = 100;
  HuffmanTable table = HuffmanTable::from_frequencies(freq);
  BitWriter bw;
  for (int i = 0; i < 5; ++i) table.encode(bw, 3);
  Bytes data = bw.finish();
  BitReader br(data);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(table.decode(br), 3);
}

TEST(Huffman, OptimalForSkewedDistribution) {
  // Frequencies 8,4,2,1,1: optimal lengths 1,2,3,4,4.
  std::vector<std::uint64_t> freq{8, 4, 2, 1, 1};
  HuffmanTable table = HuffmanTable::from_frequencies(freq);
  EXPECT_EQ(table.lengths()[0], 1);
  EXPECT_EQ(table.lengths()[1], 2);
  EXPECT_EQ(table.lengths()[2], 3);
  EXPECT_EQ(table.lengths()[3], 4);
  EXPECT_EQ(table.lengths()[4], 4);
  EXPECT_EQ(table.cost_bits(freq), 8u * 1 + 4 * 2 + 2 * 3 + 1 * 4 + 1 * 4);
}

TEST(Huffman, AllZeroFrequenciesThrows) {
  std::vector<std::uint64_t> freq(8, 0);
  EXPECT_THROW(HuffmanTable::from_frequencies(freq), CheckError);
}

class DctSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(DctSizeTest, ForwardInverseIdentity) {
  int n = GetParam();
  Pcg32 rng(2);
  std::vector<float> block(static_cast<std::size_t>(n) * n);
  for (auto& v : block) v = static_cast<float>(rng.uniform(-128, 128));
  std::vector<float> coeffs(block.size()), back(block.size());
  fdct_2d(block.data(), coeffs.data(), n);
  idct_2d(coeffs.data(), back.data(), n);
  for (std::size_t i = 0; i < block.size(); ++i)
    EXPECT_NEAR(back[i], block[i], 1e-2f);
}

TEST_P(DctSizeTest, ParsevalEnergyPreserved) {
  int n = GetParam();
  Pcg32 rng(3);
  std::vector<float> block(static_cast<std::size_t>(n) * n);
  for (auto& v : block) v = static_cast<float>(rng.uniform(-1, 1));
  std::vector<float> coeffs(block.size());
  fdct_2d(block.data(), coeffs.data(), n);
  double e1 = 0, e2 = 0;
  for (std::size_t i = 0; i < block.size(); ++i) {
    e1 += static_cast<double>(block[i]) * block[i];
    e2 += static_cast<double>(coeffs[i]) * coeffs[i];
  }
  EXPECT_NEAR(e1, e2, 1e-3 * e1);
}

TEST_P(DctSizeTest, ConstantBlockIsDcOnly) {
  int n = GetParam();
  std::vector<float> block(static_cast<std::size_t>(n) * n, 5.0f);
  std::vector<float> coeffs(block.size());
  fdct_2d(block.data(), coeffs.data(), n);
  EXPECT_NEAR(coeffs[0], 5.0f * n, 1e-3f);
  for (std::size_t i = 1; i < coeffs.size(); ++i)
    EXPECT_NEAR(coeffs[i], 0.0f, 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DctSizeTest, ::testing::Values(4, 8, 16));

TEST(Dct, FixedPointIdctCloseToFloat) {
  Pcg32 rng(4);
  float coeffs[64];
  for (auto& v : coeffs) v = static_cast<float>(rng.uniform(-100, 100));
  float a[64], b[64];
  idct_2d(coeffs, a, 8);
  idct8_fixed(coeffs, b);
  int exact = 0;
  for (int i = 0; i < 64; ++i) {
    EXPECT_NEAR(a[i], b[i], 0.5f);  // close...
    if (a[i] == b[i]) ++exact;
  }
  EXPECT_LT(exact, 64);  // ...but not bit-identical (that's the point)
}

TEST(Coeffs, ZigzagIsPermutationLowFreqFirst) {
  for (int n : {4, 8, 16}) {
    const auto& zz = codec_detail::zigzag_order(n);
    std::vector<int> sorted = zz;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < n * n; ++i)
      EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(zz[0], 0);
    EXPECT_EQ(zz[1], 1);      // (0,1)
    EXPECT_EQ(zz[2], n);      // (1,0)
    EXPECT_EQ(zz.back(), n * n - 1);
  }
}

TEST(Coeffs, AmplitudeRoundTrip) {
  for (int v : {-255, -128, -17, -1, 0, 1, 5, 127, 255, 1000}) {
    int cat = codec_detail::category_of(v);
    BitWriter bw;
    codec_detail::put_amplitude(bw, v, cat);
    bw.put(0, 7);  // padding so finish() has data even for v=0
    Bytes data = bw.finish();
    BitReader br(data);
    EXPECT_EQ(codec_detail::get_amplitude(br, cat), v) << "v=" << v;
  }
}

TEST(Coeffs, AcRoundTripWithLongRuns) {
  std::vector<int> block(64, 0);
  block[0] = 7;     // DC, not coded here
  block[5] = -3;
  block[40] = 12;   // long zero run before this
  block[63] = -1;
  std::vector<std::uint64_t> freq(256, 0);
  codec_detail::count_ac_tokens(block, freq);
  HuffmanTable table = HuffmanTable::from_frequencies(freq);
  BitWriter bw;
  codec_detail::encode_ac(block, table, bw);
  Bytes data = bw.finish();
  BitReader br(data);
  std::vector<int> out(64, 0);
  codec_detail::decode_ac(out, table, br);
  out[0] = block[0];
  EXPECT_EQ(out, block);
}

// ---- Full codec round trips ---------------------------------------------------

TEST(PngLike, LosslessRoundTrip) {
  PngLikeCodec codec;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    ImageU8 img = photo_like_image(37, 29, seed);  // odd sizes on purpose
    Bytes data = codec.encode(img);
    ImageU8 back = codec.decode(data);
    EXPECT_EQ(back, img) << "seed " << seed;
  }
}

TEST(PngLike, LosslessOnRandomNoise) {
  Pcg32 rng(9);
  ImageU8 img(16, 16, 3);
  for (auto& v : img.data())
    v = static_cast<std::uint8_t>(rng.uniform_int(256u));
  PngLikeCodec codec;
  EXPECT_EQ(codec.decode(codec.encode(img)), img);
}

TEST(PngLike, CompressesSmoothContent) {
  ImageU8 img = photo_like_image(64, 64, 5);
  PngLikeCodec codec;
  Bytes data = codec.encode(img);
  EXPECT_LT(data.size(), img.size());  // beats raw
}

struct LossyCase {
  ImageFormat format;
  int quality;
  double min_psnr;
};

class LossyCodecTest : public ::testing::TestWithParam<LossyCase> {};

TEST_P(LossyCodecTest, RoundTripQuality) {
  auto [format, quality, min_psnr] = GetParam();
  auto codec = make_codec(format, quality);
  ImageU8 img = photo_like_image(48, 40, 7);
  Bytes data = codec->encode(img);
  ImageU8 back = codec->decode(data);
  ASSERT_EQ(back.width(), img.width());
  ASSERT_EQ(back.height(), img.height());
  double p = psnr(to_float(img), to_float(back));
  EXPECT_GT(p, min_psnr) << codec->name() << " psnr=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    QualitySweep, LossyCodecTest,
    ::testing::Values(
        LossyCase{ImageFormat::kJpegLike, 100, 32.0},
        LossyCase{ImageFormat::kJpegLike, 85, 28.0},
        LossyCase{ImageFormat::kJpegLike, 50, 26.0},
        LossyCase{ImageFormat::kJpegLike, 20, 22.0},
        LossyCase{ImageFormat::kWebpLike, 90, 27.0},
        LossyCase{ImageFormat::kWebpLike, 75, 24.0},
        LossyCase{ImageFormat::kWebpLike, 40, 20.0},
        LossyCase{ImageFormat::kHeifLike, 95, 32.0},
        LossyCase{ImageFormat::kHeifLike, 80, 27.0},
        LossyCase{ImageFormat::kHeifLike, 50, 23.0}));

TEST(JpegLike, HigherQualityLargerAndCloser) {
  ImageU8 img = photo_like_image(64, 64, 11);
  JpegLikeCodec q50(50), q85(85), q100(100);
  Bytes d50 = q50.encode(img);
  Bytes d85 = q85.encode(img);
  Bytes d100 = q100.encode(img);
  EXPECT_LT(d50.size(), d85.size());
  EXPECT_LT(d85.size(), d100.size());
  double p50 = psnr(to_float(img), to_float(q50.decode(d50)));
  double p85 = psnr(to_float(img), to_float(q85.decode(d85)));
  double p100 = psnr(to_float(img), to_float(q100.decode(d100)));
  EXPECT_LT(p50, p85);
  EXPECT_LT(p85, p100);
}

TEST(Codecs, SizeOrderingMatchesPaperTables) {
  // Paper Table 3: PNG >> JPEG > HEIF > WebP (format defaults).
  ImageU8 img = photo_like_image(96, 96, 13);
  auto png = make_codec(ImageFormat::kPngLike);
  auto jpeg = make_codec(ImageFormat::kJpegLike);
  auto heif = make_codec(ImageFormat::kHeifLike);
  auto webp = make_codec(ImageFormat::kWebpLike);
  std::size_t s_png = png->encode(img).size();
  std::size_t s_jpeg = jpeg->encode(img).size();
  std::size_t s_heif = heif->encode(img).size();
  std::size_t s_webp = webp->encode(img).size();
  EXPECT_GT(s_png, s_jpeg);
  EXPECT_GT(s_jpeg, s_heif);
  EXPECT_GT(s_heif, s_webp);
}

TEST(Codecs, LossyFormatsProduceDifferentPixels) {
  // The §5 instability mechanism: same input, different reconstructions.
  ImageU8 img = photo_like_image(48, 48, 17);
  auto jpeg = make_codec(ImageFormat::kJpegLike, 85);
  auto webp = make_codec(ImageFormat::kWebpLike, 85);
  auto heif = make_codec(ImageFormat::kHeifLike, 85);
  ImageU8 rj = jpeg->decode(jpeg->encode(img));
  ImageU8 rw = webp->decode(webp->encode(img));
  ImageU8 rh = heif->decode(heif->encode(img));
  EXPECT_FALSE(rj == rw);
  EXPECT_FALSE(rj == rh);
  EXPECT_FALSE(rw == rh);
}

TEST(JpegLike, EncodeIndependentOfDecodeOptions) {
  ImageU8 img = photo_like_image(32, 32, 19);
  JpegLikeCodec standard(85, {});
  JpegDecodeOptions variant_opts;
  variant_opts.upsample = JpegDecodeOptions::Upsample::kBilinear;
  variant_opts.fixed_point_idct = true;
  JpegLikeCodec variant(85, variant_opts);
  EXPECT_EQ(standard.encode(img), variant.encode(img));
}

TEST(JpegLike, DecoderVariantsDifferOnSameBytes) {
  // §7 mechanism: identical file, different decoded pixels, different MD5.
  ImageU8 img = photo_like_image(32, 32, 23);
  JpegLikeCodec standard(85, {});
  Bytes data = standard.encode(img);

  JpegDecodeOptions variant_opts;
  variant_opts.upsample = JpegDecodeOptions::Upsample::kBilinear;
  variant_opts.fixed_point_idct = true;
  JpegLikeCodec variant(85, variant_opts);

  ImageU8 decoded_standard = standard.decode(data);
  ImageU8 decoded_variant = variant.decode(data);
  EXPECT_FALSE(decoded_standard == decoded_variant);
  EXPECT_NE(Md5::hex(decoded_standard.data()),
            Md5::hex(decoded_variant.data()));
  // Pixel difference is small — the images look identical.
  double mad = mean_abs_diff(to_float(decoded_standard),
                             to_float(decoded_variant));
  EXPECT_LT(mad, 0.02);
}

TEST(JpegLike, DeterministicDecodeSameVariant) {
  ImageU8 img = photo_like_image(32, 32, 29);
  JpegLikeCodec codec(85, {});
  Bytes data = codec.encode(img);
  EXPECT_EQ(codec.decode(data), codec.decode(data));
}

TEST(PngLike, DecodeIsVariantInsensitive) {
  // Lossless formats leave no room for decoder interpretation — the
  // paper found zero instability on PNG inputs (§7).
  ImageU8 img = photo_like_image(24, 24, 31);
  PngLikeCodec a, b;
  Bytes data = a.encode(img);
  EXPECT_EQ(a.decode(data), b.decode(data));
  EXPECT_EQ(Md5::hex(a.decode(data).data()), Md5::hex(b.decode(data).data()));
}

TEST(Codecs, CorruptStreamThrowsNotCrashes) {
  ImageU8 img = photo_like_image(24, 24, 37);
  for (ImageFormat f : {ImageFormat::kJpegLike, ImageFormat::kPngLike,
                        ImageFormat::kWebpLike, ImageFormat::kHeifLike}) {
    auto codec = make_codec(f, 85);
    Bytes data = codec->encode(img);
    Bytes truncated(data.begin(), data.begin() + data.size() / 3);
    EXPECT_THROW(
        {
          ImageU8 out = codec->decode(truncated);
          (void)out;
        },
        CheckError)
        << format_name(f);
    Bytes bad_magic = data;
    bad_magic[0] ^= 0xff;
    EXPECT_THROW(
        {
          ImageU8 out = codec->decode(bad_magic);
          (void)out;
        },
        CheckError)
        << format_name(f);
  }
}

TEST(Codecs, QualityOutOfRangeThrows) {
  EXPECT_THROW(make_codec(ImageFormat::kJpegLike, 0), CheckError);
  EXPECT_THROW(make_codec(ImageFormat::kJpegLike, 101), CheckError);
  EXPECT_THROW(make_codec(ImageFormat::kWebpLike, -5), CheckError);
  EXPECT_THROW(make_codec(ImageFormat::kHeifLike, 1000), CheckError);
}

}  // namespace
}  // namespace edgestab
