// Tests for the extension features: post-training quantization, bootstrap
// confidence intervals for the instability metric, and the optional
// optics models (defocus, chromatic aberration).
#include <gtest/gtest.h>

#include <cmath>

#include "core/instability.h"
#include "isp/sensor.h"
#include "nn/loss.h"
#include "nn/mobilenet.h"
#include "nn/quantize.h"
#include "util/rng.h"

namespace edgestab {
namespace {

Model small_model(Pcg32& rng) {
  MobileNetConfig cfg;
  cfg.input_size = 16;
  cfg.num_classes = 4;
  cfg.width = 0.5f;
  cfg.embedding_dim = 8;
  Model m = build_mini_mobilenet_v2(cfg);
  m.init(rng);
  return m;
}

TEST(Quantize, WeightsLandOnGrid) {
  Pcg32 rng(1);
  Model m = small_model(rng);
  QuantizationSpec spec;
  spec.bits = 8;
  spec.per_channel = false;
  QuantizationReport report = quantize_weights(m, spec);
  // Every tensor's values must be integer multiples of its scale.
  std::size_t t = 0;
  for (Param* p : m.params()) {
    float max_abs = report.tensors[t].max_abs;
    if (max_abs > 0.0f) {
      float scale = max_abs / 127.0f;
      for (float v : p->value.data()) {
        float q = v / scale;
        EXPECT_NEAR(q, std::round(q), 1e-3f) << p->name;
      }
    }
    ++t;
  }
}

TEST(Quantize, ReportsPerTensorStats) {
  Pcg32 rng(2);
  Model m = small_model(rng);
  QuantizationReport report = quantize_weights(m, {});
  EXPECT_EQ(report.tensors.size(), m.params().size());
  EXPECT_GT(report.total_mean_abs_error, 0.0);
  for (const auto& t : report.tensors) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(t.max_abs, 0.0f);
  }
}

TEST(Quantize, FewerBitsMoreError) {
  Pcg32 rng(3);
  Model m8 = small_model(rng);
  Pcg32 rng2(3);
  Model m4 = small_model(rng2);
  QuantizationSpec s8;
  s8.bits = 8;
  QuantizationSpec s4;
  s4.bits = 4;
  double e8 = quantize_weights(m8, s8).total_mean_abs_error;
  double e4 = quantize_weights(m4, s4).total_mean_abs_error;
  EXPECT_GT(e4, e8 * 4);
}

TEST(Quantize, Int8PreservesPredictionsMostly) {
  Pcg32 rng(4);
  Model m = small_model(rng);
  Pcg32 xrng(5);
  Tensor x({16, 3, 16, 16});
  for (float& v : x.data()) v = static_cast<float>(xrng.normal(0, 0.5));
  Tensor before = m.forward(x, false);
  quantize_weights(m, {});
  Tensor after = m.forward(x, false);
  auto a = argmax_rows(before);
  auto b = argmax_rows(after);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) same += a[i] == b[i] ? 1 : 0;
  EXPECT_GE(same, 14);  // int8 flips at most a couple of borderline rows
}

TEST(Quantize, RejectsBadWidths) {
  Pcg32 rng(6);
  Model m = small_model(rng);
  QuantizationSpec spec;
  spec.bits = 1;
  EXPECT_THROW(quantize_weights(m, spec), CheckError);
  spec.bits = 17;
  EXPECT_THROW(quantize_weights(m, spec), CheckError);
}

Observation obs(int item, int env, bool correct) {
  Observation o;
  o.item = item;
  o.env = env;
  o.correct = correct;
  return o;
}

TEST(BootstrapCi, BracketsPointEstimate) {
  Pcg32 rng(7);
  std::vector<Observation> v;
  for (int item = 0; item < 200; ++item) {
    bool unstable = rng.bernoulli(0.2);
    bool first = unstable ? true : rng.bernoulli(0.6);
    v.push_back(obs(item, 0, first));
    v.push_back(obs(item, 1, unstable ? !first : first));
  }
  InstabilityResult point = compute_instability(v);
  InstabilityCi ci = bootstrap_instability_ci(v, 0.95, 500, 1);
  EXPECT_DOUBLE_EQ(ci.point, point.instability());
  EXPECT_LE(ci.lower, ci.point);
  EXPECT_GE(ci.upper, ci.point);
  EXPECT_GT(ci.upper - ci.lower, 0.0);
  // With n=200 and p~0.2 the 95% percentile width is roughly 4*sqrt(pq/n).
  EXPECT_LT(ci.upper - ci.lower, 0.25);
  EXPECT_GT(ci.upper - ci.lower, 0.05);
}

TEST(BootstrapCi, DeterministicForSeed) {
  std::vector<Observation> v;
  for (int item = 0; item < 40; ++item) {
    v.push_back(obs(item, 0, item % 3 != 0));
    v.push_back(obs(item, 1, item % 4 != 0));
  }
  InstabilityCi a = bootstrap_instability_ci(v, 0.9, 200, 42);
  InstabilityCi b = bootstrap_instability_ci(v, 0.9, 200, 42);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(BootstrapCi, EmptyAndDegenerate) {
  InstabilityCi empty = bootstrap_instability_ci({}, 0.95, 100, 1);
  EXPECT_DOUBLE_EQ(empty.point, 0.0);
  // All-stable inputs: zero-width interval at zero.
  std::vector<Observation> v{obs(0, 0, true), obs(0, 1, true)};
  InstabilityCi ci = bootstrap_instability_ci(v, 0.95, 100, 1);
  EXPECT_DOUBLE_EQ(ci.point, 0.0);
  EXPECT_DOUBLE_EQ(ci.lower, 0.0);
  EXPECT_DOUBLE_EQ(ci.upper, 0.0);
}

TEST(Optics, DefaultsAreByteIdenticalToNoOptics) {
  Image scene(32, 32, 3);
  Pcg32 srng(8);
  for (float& v : scene.data()) v = static_cast<float>(srng.uniform());
  SensorConfig plain;
  plain.width = 32;
  plain.height = 32;
  Pcg32 r1(9, 2), r2(9, 2);
  RawImage a = expose_sensor(scene, plain, r1);
  SensorConfig explicit_off = plain;
  explicit_off.defocus = 0.0f;
  explicit_off.chroma_aberration = 0.0f;
  RawImage b = expose_sensor(scene, explicit_off, r2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(Optics, DefocusSoftensEdges) {
  // Step edge scene; defocus must reduce the mosaic's edge contrast.
  Image scene(32, 32, 3);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      for (int c = 0; c < 3; ++c)
        scene.at(x, y, c) = x < 16 ? 0.1f : 0.9f;
  SensorConfig sharp;
  sharp.width = 32;
  sharp.height = 32;
  sharp.read_noise = 0.0f;
  sharp.full_well = 1e7f;
  SensorConfig soft = sharp;
  soft.defocus = 2.0f;
  Pcg32 r1(10, 1), r2(10, 1);
  RawImage a = expose_sensor(scene, sharp, r1);
  RawImage b = expose_sensor(scene, soft, r2);
  // Contrast right at the edge (the 5x5 defocus kernel spreads the
  // transition over x in [14, 17]; sample inside that zone).
  float sharp_step = a.at(17, 16) - a.at(14, 16);
  float soft_step = b.at(17, 16) - b.at(14, 16);
  EXPECT_LT(soft_step, sharp_step - 0.05f);
}

TEST(Optics, ChromaticAberrationShiftsRedBlueApart) {
  // A bright ring against dark background: with CA, red samples shrink
  // toward center and blue expand, so R and B planes diverge off-center.
  Image scene(64, 64, 3);
  for (int y = 0; y < 64; ++y)
    for (int x = 0; x < 64; ++x) {
      float dx = x - 31.5f, dy = y - 31.5f;
      float r = std::sqrt(dx * dx + dy * dy);
      float v = (r > 18.0f && r < 24.0f) ? 0.9f : 0.1f;
      for (int c = 0; c < 3; ++c) scene.at(x, y, c) = v;
    }
  SensorConfig ideal;
  ideal.width = 64;
  ideal.height = 64;
  ideal.read_noise = 0.0f;
  ideal.full_well = 1e7f;
  SensorConfig ca = ideal;
  ca.chroma_aberration = 0.04f;
  Pcg32 r1(11, 1), r2(11, 1);
  RawImage a = expose_sensor(scene, ideal, r1);
  RawImage b = expose_sensor(scene, ca, r2);
  // Without CA the two mosaics match; with CA they differ near the ring.
  double diff = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    diff += std::abs(a.data()[i] - b.data()[i]);
  EXPECT_GT(diff / static_cast<double>(a.data().size()), 1e-3);
}

}  // namespace
}  // namespace edgestab
