# Builds the tree with -DEDGESTAB_TSAN=ON in a child build tree and runs
# bench_table4_isp --threads 4 (smoke-size rig, shared model cache) under
# ThreadSanitizer. The parallel runtime's determinism contract is checked
# by test_runtime's digest tests; this test checks the other half — that
# the pool, the drift auditor's off-lock comparisons and the codec/ISP
# bodies running on pool lanes are free of data races, with TSAN as the
# judge. halt_on_error makes the bench exit non-zero on the first report.
#
# Expected -D variables: SOURCE_DIR, WORK_DIR, CACHE_DIR.
foreach(var SOURCE_DIR WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_tsan_smoke: ${var} not set")
  endif()
endforeach()

set(build_dir "${WORK_DIR}/tsan_build")
message(STATUS "==== tsan_smoke: configure ====")
execute_process(
  COMMAND ${CMAKE_COMMAND} -S "${SOURCE_DIR}" -B "${build_dir}"
    -DCMAKE_BUILD_TYPE=Release
    -DEDGESTAB_TSAN=ON
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan_smoke: configure failed with ${rc}")
endif()

message(STATUS "==== tsan_smoke: build bench_table4_isp ====")
include(ProcessorCount)
ProcessorCount(ncpu)
if(ncpu EQUAL 0)
  set(ncpu 2)
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} --build "${build_dir}"
    --target bench_table4_isp --parallel ${ncpu}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan_smoke: build failed with ${rc}")
endif()

message(STATUS "==== tsan_smoke: run under ThreadSanitizer ====")
set(run_dir "${build_dir}/smoke_run")
file(REMOVE_RECURSE "${run_dir}")
file(MAKE_DIRECTORY "${run_dir}")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    "EDGESTAB_CACHE=${CACHE_DIR}"
    "EDGESTAB_RIG_OBJECTS=2"
    "TSAN_OPTIONS=halt_on_error=1"
    "${build_dir}/bench/bench_table4_isp" --threads 4
  WORKING_DIRECTORY "${run_dir}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "tsan_smoke: bench exited with ${rc} (a ThreadSanitizer report fails "
    "the run; see output above)")
endif()

if(NOT EXISTS "${run_dir}/bench_out/table4_isp.meta.json")
  message(FATAL_ERROR "tsan_smoke: bench produced no provenance manifest")
endif()

# The streaming service is the most thread-shaped subsystem in the tree
# (bounded MPMC queues, a condvar lead cap, seven worker groups), so a
# tiny faulted soak runs under TSAN too.
message(STATUS "==== tsan_smoke: build bench_fleet_soak ====")
execute_process(
  COMMAND ${CMAKE_COMMAND} --build "${build_dir}"
    --target bench_fleet_soak --parallel ${ncpu}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tsan_smoke: soak build failed with ${rc}")
endif()

message(STATUS "==== tsan_smoke: run service soak under ThreadSanitizer ====")
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env
    "EDGESTAB_CACHE=${CACHE_DIR}"
    "TSAN_OPTIONS=halt_on_error=1"
    "${build_dir}/bench/bench_fleet_soak" --threads 4
    --devices 6 --shots 120 --bank 2 --scene 32
    --faults "light,budget,deadline_ms=24" --telemetry
  WORKING_DIRECTORY "${run_dir}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "tsan_smoke: bench_fleet_soak exited with ${rc} (a ThreadSanitizer "
    "report fails the run; see output above)")
endif()

message(STATUS "tsan_smoke OK — no races reported at --threads 4")
