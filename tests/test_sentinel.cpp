// Tests for the cross-run regression sentinel: JSON parsing, float
// round-trip formatting, run-archive round trips, baseline derivation
// (median + MAD), and — most importantly — the comparison engine's edge
// cases: missing baselines, provenance mismatches, zero-MAD baselines,
// NaN/Inf values, and empty archives.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "obs/baseline.h"
#include "obs/compare.h"
#include "obs/json.h"
#include "obs/progress.h"

using namespace edgestab;
using obs::Baseline;
using obs::BaselineMetric;
using obs::CompareOptions;
using obs::CompareReport;
using obs::Direction;
using obs::MetricKind;
using obs::MetricSample;
using obs::MetricVerdict;
using obs::RepeatSample;
using obs::RunRecord;
using obs::Verdict;

namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

RunRecord sample_record() {
  RunRecord r;
  r.bench = "fig_test";
  r.git_sha = "abcdef0123456789";
  r.created_unix = 1700000000;
  r.has_seed = true;
  r.seed = 4242;
  r.threads = 2;
  r.digests = {{"lab_rig", "7c89074498ec8395"},
               {"workspace", "0a37fe48bbdd1708"},
               {"drift_report", "1111222233334444"}};
  r.repeats = {{1.0, 0.9, 0.05}, {2.0, 1.8, 0.1}, {10.0, 9.5, 0.2}};
  r.items = 100.0;
  r.max_rss_kb = 51200;
  r.stage_wall_ms = {{"stage.capture", 812.5}, {"stage.infer", 93.25}};
  MetricSample m;
  m.name = "instability";
  m.kind = MetricKind::kCorrectness;
  m.direction = Direction::kExact;
  m.value = 0.15;
  r.metrics.push_back(m);
  return r;
}

const MetricVerdict* find_verdict(const CompareReport& report,
                                  const std::string& name) {
  for (const MetricVerdict& v : report.verdicts)
    if (v.name == name) return &v;
  return nullptr;
}

// ---- format_double ---------------------------------------------------------

TEST(FormatDouble, RoundTripsExactly) {
  for (double v : {0.1, 1.0 / 3.0, 1e-17, 123456.789012345678,
                   -0.000123456789, 5.19, 2.0}) {
    std::string s = obs::format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
}

TEST(FormatDouble, UsesShortestForm) {
  EXPECT_EQ(obs::format_double(0.5), "0.5");
  EXPECT_EQ(obs::format_double(2.0), "2");
  EXPECT_EQ(obs::format_double(0.0), "0");
}

TEST(FormatDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::format_double(std::numeric_limits<double>::infinity()),
            "null");
}

// ---- JSON parser -----------------------------------------------------------

TEST(JsonParser, ParsesNestedDocument) {
  auto doc = obs::parse_json(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}})");
  ASSERT_TRUE(doc.has_value());
  const obs::JsonValue* a = doc->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->items.size(), 3u);
  EXPECT_EQ(a->items[2].number_or(0), -300.0);
  const obs::JsonValue* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->find("c")->string_or(""), "x\ny");
  EXPECT_TRUE(b->find("d")->boolean);
  EXPECT_TRUE(b->find("e")->is_null());
}

TEST(JsonParser, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::parse_json("{", &error).has_value());
  EXPECT_FALSE(obs::parse_json("{\"a\": }", &error).has_value());
  EXPECT_FALSE(obs::parse_json("[1,]", &error).has_value());
  EXPECT_FALSE(obs::parse_json("{} trailing", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(JsonParser, RoundTripsWriterOutput) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("pi").value(3.141592653589793);
  w.key("s").value("quote \" backslash \\ tab \t");
  w.end_object();
  auto doc = obs::parse_json(w.take());
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("pi")->number_or(0), 3.141592653589793);
  EXPECT_EQ(doc->find("s")->string_or(""), "quote \" backslash \\ tab \t");
}

// ---- median / MAD ----------------------------------------------------------

TEST(Baseline, MedianAndMad) {
  EXPECT_EQ(obs::median_of({1.0, 2.0, 10.0}), 2.0);
  EXPECT_EQ(obs::median_of({1.0, 2.0, 3.0, 4.0}), 2.5);
  EXPECT_EQ(obs::median_of({}), 0.0);
  EXPECT_EQ(obs::mad_of({1.0, 2.0, 10.0}, 2.0), 1.0);
  EXPECT_EQ(obs::mad_of({5.0, 5.0, 5.0}, 5.0), 0.0);
}

// ---- run archive -----------------------------------------------------------

TEST(RunArchive, RecordRoundTrips) {
  RunRecord original = sample_record();
  auto doc = obs::parse_json(obs::run_record_json(original));
  ASSERT_TRUE(doc.has_value());
  RunRecord parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_run_record(*doc, &parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, original.bench);
  EXPECT_EQ(parsed.seed, original.seed);
  EXPECT_EQ(parsed.threads, original.threads);
  EXPECT_EQ(parsed.digests, original.digests);
  ASSERT_EQ(parsed.repeats.size(), 3u);
  EXPECT_EQ(parsed.repeats[2].wall_seconds, 10.0);
  EXPECT_EQ(parsed.stage_wall_ms, original.stage_wall_ms);
  ASSERT_EQ(parsed.metrics.size(), 1u);
  EXPECT_EQ(parsed.metrics[0].value, 0.15);
}

TEST(RunArchive, AppendAndLoad) {
  std::string path = temp_path("edgestab_test_runs.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(obs::append_run_record(path, sample_record()));
  RunRecord second = sample_record();
  second.bench = "other";
  ASSERT_TRUE(obs::append_run_record(path, second));
  std::vector<RunRecord> records;
  std::string error;
  ASSERT_TRUE(obs::load_run_records(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].bench, "other");
  std::remove(path.c_str());
}

TEST(RunArchive, EmptyArchiveLoadsZeroRecords) {
  std::string path = temp_path("edgestab_test_empty.jsonl");
  { std::ofstream out(path); }
  std::vector<RunRecord> records{sample_record()};
  std::string error;
  EXPECT_TRUE(obs::load_run_records(path, &records, &error)) << error;
  EXPECT_TRUE(records.empty());
  std::remove(path.c_str());
}

TEST(RunArchive, MissingArchiveIsAnError) {
  std::vector<RunRecord> records;
  std::string error;
  EXPECT_FALSE(obs::load_run_records(
      temp_path("edgestab_test_does_not_exist.jsonl"), &records, &error));
  EXPECT_FALSE(error.empty());
}

TEST(RunArchive, MalformedLineFailsWithLineNumber) {
  std::string path = temp_path("edgestab_test_bad.jsonl");
  {
    std::ofstream out(path);
    out << obs::run_record_json(sample_record()) << "\n";
    out << "{not json}\n";
  }
  std::vector<RunRecord> records;
  std::string error;
  EXPECT_FALSE(obs::load_run_records(path, &records, &error));
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(RunArchive, PruneKeepsNewestPerBenchInOriginalOrder) {
  std::string path = temp_path("edgestab_test_prune.jsonl");
  std::remove(path.c_str());
  // Interleave two benches: a0 b0 a1 a2 b1. keep=2 must drop only a0.
  for (const auto& [bench, stamp] :
       std::vector<std::pair<std::string, std::int64_t>>{{"a", 10},
                                                         {"b", 11},
                                                         {"a", 12},
                                                         {"a", 13},
                                                         {"b", 14}}) {
    RunRecord r = sample_record();
    r.bench = bench;
    r.created_unix = stamp;
    ASSERT_TRUE(obs::append_run_record(path, r));
  }
  std::size_t kept = 0, dropped = 0;
  std::string error;
  ASSERT_TRUE(obs::prune_run_archive(path, 2, &kept, &dropped, &error))
      << error;
  EXPECT_EQ(kept, 4u);
  EXPECT_EQ(dropped, 1u);
  std::vector<RunRecord> records;
  ASSERT_TRUE(obs::load_run_records(path, &records, &error)) << error;
  ASSERT_EQ(records.size(), 4u);
  // Survivors keep the original append order (compare's last-wins
  // "newest" convention still holds).
  EXPECT_EQ(records[0].created_unix, 11);
  EXPECT_EQ(records[1].created_unix, 12);
  EXPECT_EQ(records[2].created_unix, 13);
  EXPECT_EQ(records[3].created_unix, 14);
  // The tmp sibling must not survive the rename.
  EXPECT_EQ(std::fopen((path + ".tmp").c_str(), "rb"), nullptr);
  // Pruning again with a generous keep is a no-op.
  ASSERT_TRUE(obs::prune_run_archive(path, 10, &kept, &dropped, &error));
  EXPECT_EQ(kept, 4u);
  EXPECT_EQ(dropped, 0u);
  std::remove(path.c_str());
}

TEST(RunArchive, PruneRejectsZeroKeepAndMissingFile) {
  std::string error;
  EXPECT_FALSE(obs::prune_run_archive(
      temp_path("edgestab_test_prune_missing.jsonl"), 2, nullptr, nullptr,
      &error));
  EXPECT_FALSE(error.empty());
  std::string path = temp_path("edgestab_test_prune_zero.jsonl");
  std::remove(path.c_str());
  ASSERT_TRUE(obs::append_run_record(path, sample_record()));
  EXPECT_FALSE(obs::prune_run_archive(path, 0, nullptr, nullptr, &error));
  std::remove(path.c_str());
}

// ---- baseline derivation ---------------------------------------------------

TEST(Baseline, DerivesPerfSummariesFromRepeats) {
  Baseline b = obs::baseline_from_record(sample_record());
  EXPECT_EQ(b.bench, "fig_test");
  EXPECT_EQ(b.threads, 2);
  // Provenance digests only; the drift_report output digest becomes a
  // digest *metric* instead.
  ASSERT_EQ(b.digests.size(), 2u);
  const BaselineMetric* wall = nullptr;
  const BaselineMetric* ips = nullptr;
  const BaselineMetric* drift = nullptr;
  for (const BaselineMetric& m : b.metrics) {
    if (m.name == "wall_seconds") wall = &m;
    if (m.name == "items_per_second") ips = &m;
    if (m.name == "digest.drift_report") drift = &m;
  }
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->median, 2.0);  // median of {1, 2, 10}
  EXPECT_EQ(wall->mad, 1.0);     // MAD around 2
  EXPECT_EQ(wall->n, 3);
  ASSERT_NE(ips, nullptr);
  EXPECT_EQ(ips->direction, Direction::kHigherIsBetter);
  EXPECT_EQ(ips->median, 50.0);  // median of {100, 50, 10}
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->kind, MetricKind::kDigest);
  EXPECT_EQ(drift->text, "1111222233334444");
}

TEST(Baseline, JsonRoundTrips) {
  Baseline original = obs::baseline_from_record(sample_record());
  std::string path = temp_path("edgestab_test_baseline.json");
  ASSERT_TRUE(obs::write_baseline(path, original));
  Baseline loaded;
  std::string error;
  ASSERT_TRUE(obs::load_baseline(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.bench, original.bench);
  EXPECT_EQ(loaded.digests, original.digests);
  ASSERT_EQ(loaded.metrics.size(), original.metrics.size());
  for (std::size_t i = 0; i < loaded.metrics.size(); ++i) {
    EXPECT_EQ(loaded.metrics[i].name, original.metrics[i].name);
    EXPECT_EQ(loaded.metrics[i].median, original.metrics[i].median);
    EXPECT_EQ(loaded.metrics[i].mad, original.metrics[i].mad);
  }
  std::remove(path.c_str());
}

// ---- comparison engine -----------------------------------------------------

TEST(Compare, UnchangedOnIdenticalRun) {
  RunRecord r = sample_record();
  CompareReport report = obs::compare_run(r, obs::baseline_from_record(r));
  EXPECT_TRUE(report.provenance_comparable);
  EXPECT_TRUE(report.perf_comparable);
  EXPECT_FALSE(report.has_regressions());
  EXPECT_EQ(report.count(Verdict::kIncomparable), 0);
}

TEST(Compare, SeedMismatchMakesEverythingIncomparable) {
  RunRecord r = sample_record();
  Baseline b = obs::baseline_from_record(r);
  r.seed = 9999;
  CompareReport report = obs::compare_run(r, b);
  EXPECT_FALSE(report.provenance_comparable);
  EXPECT_FALSE(report.has_regressions());
  for (const MetricVerdict& v : report.verdicts)
    EXPECT_EQ(v.verdict, Verdict::kIncomparable) << v.name;
}

TEST(Compare, ProvenanceDigestMismatchMakesEverythingIncomparable) {
  RunRecord r = sample_record();
  Baseline b = obs::baseline_from_record(r);
  r.digests[0].second = "ffffffffffffffff";  // lab_rig
  CompareReport report = obs::compare_run(r, b);
  EXPECT_FALSE(report.provenance_comparable);
  EXPECT_EQ(report.count(Verdict::kIncomparable),
            static_cast<int>(report.verdicts.size()));
}

TEST(Compare, FaultPlanMismatchMakesEverythingIncomparable) {
  RunRecord r = sample_record();
  Baseline b = obs::baseline_from_record(r);
  r.fault_plan = "drop=0.1";
  CompareReport report = obs::compare_run(r, b);
  EXPECT_FALSE(report.provenance_comparable);
  EXPECT_FALSE(report.has_regressions());
}

TEST(Compare, ThreadMismatchVoidsOnlyPerf) {
  RunRecord r = sample_record();
  Baseline b = obs::baseline_from_record(r);
  r.threads = 8;
  CompareReport report = obs::compare_run(r, b);
  EXPECT_TRUE(report.provenance_comparable);
  EXPECT_FALSE(report.perf_comparable);
  const MetricVerdict* wall = find_verdict(report, "wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->verdict, Verdict::kIncomparable);
  // Results are bit-deterministic at any thread count, so correctness
  // and digest metrics stay comparable.
  const MetricVerdict* inst = find_verdict(report, "instability");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->verdict, Verdict::kUnchanged);
  const MetricVerdict* drift = find_verdict(report, "digest.drift_report");
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->verdict, Verdict::kUnchanged);
}

TEST(Compare, ZeroMadStillHasTolerance) {
  RunRecord base = sample_record();
  base.repeats = {{2.0, 1.9, 0.05}};  // single repeat → MAD 0
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.repeats = {{2.2, 2.1, 0.05}};  // +10%, inside the 25% rel band
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* wall = find_verdict(report, "wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->verdict, Verdict::kUnchanged);
  EXPECT_GT(wall->band, 0.0);

  current.repeats = {{4.0, 3.9, 0.05}};  // 2x — well outside every band
  report = obs::compare_run(current, b);
  wall = find_verdict(report, "wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->verdict, Verdict::kRegressed);
}

TEST(Compare, PerfImprovementIsDirectionAware) {
  RunRecord base = sample_record();
  base.repeats = {{10.0, 9.5, 0.1}};
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.repeats = {{4.0, 3.8, 0.1}};  // much faster
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* wall = find_verdict(report, "wall_seconds");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->verdict, Verdict::kImproved);
  const MetricVerdict* ips = find_verdict(report, "items_per_second");
  ASSERT_NE(ips, nullptr);
  EXPECT_EQ(ips->verdict, Verdict::kImproved);
}

TEST(Compare, NanAndInfAreIncomparableNotUnchanged) {
  RunRecord base = sample_record();
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.metrics[0].value = std::numeric_limits<double>::quiet_NaN();
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* inst = find_verdict(report, "instability");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->verdict, Verdict::kIncomparable);

  current.metrics[0].value = std::numeric_limits<double>::infinity();
  report = obs::compare_run(current, b);
  inst = find_verdict(report, "instability");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->verdict, Verdict::kIncomparable);
}

TEST(Compare, NanSurvivesArchiveRoundTrip) {
  RunRecord r = sample_record();
  r.metrics[0].value = std::numeric_limits<double>::quiet_NaN();
  auto doc = obs::parse_json(obs::run_record_json(r));
  ASSERT_TRUE(doc.has_value());
  RunRecord parsed;
  std::string error;
  ASSERT_TRUE(obs::parse_run_record(*doc, &parsed, &error)) << error;
  EXPECT_TRUE(std::isnan(parsed.metrics[0].value));
}

TEST(Compare, CorrectnessDriftOutsideEpsilonRegresses) {
  RunRecord base = sample_record();
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.metrics[0].value = 0.151;  // was 0.15, epsilon 1e-12
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* inst = find_verdict(report, "instability");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->verdict, Verdict::kRegressed);
  EXPECT_TRUE(report.has_regressions());
}

TEST(Compare, DeclaredEpsilonWidensCorrectnessBand) {
  RunRecord base = sample_record();
  base.metrics[0].epsilon = 0.01;
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.metrics[0].value = 0.155;  // within the declared 0.01
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* inst = find_verdict(report, "instability");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->verdict, Verdict::kUnchanged);
}

TEST(Compare, OutputDigestMismatchRegresses) {
  RunRecord base = sample_record();
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.digests[2].second = "deadbeefdeadbeef";  // drift_report (output)
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* drift = find_verdict(report, "digest.drift_report");
  ASSERT_NE(drift, nullptr);
  EXPECT_EQ(drift->verdict, Verdict::kRegressed);
}

TEST(Compare, MissingMetricsAreIncomparableBothWays) {
  RunRecord base = sample_record();
  Baseline b = obs::baseline_from_record(base);
  RunRecord current = base;
  current.metrics[0].name = "renamed_metric";
  CompareReport report = obs::compare_run(current, b);
  const MetricVerdict* gone = find_verdict(report, "instability");
  ASSERT_NE(gone, nullptr);
  EXPECT_EQ(gone->verdict, Verdict::kIncomparable);
  const MetricVerdict* added = find_verdict(report, "renamed_metric");
  ASSERT_NE(added, nullptr);
  EXPECT_EQ(added->verdict, Verdict::kIncomparable);
  EXPECT_FALSE(report.has_regressions());
}

TEST(Compare, EmptyRepeatsYieldNoPerfVerdicts) {
  RunRecord base = sample_record();
  base.repeats.clear();
  Baseline b = obs::baseline_from_record(base);
  for (const BaselineMetric& m : b.metrics)
    EXPECT_NE(m.kind, MetricKind::kPerf) << m.name;
  RunRecord current = sample_record();
  CompareReport report = obs::compare_run(current, b);
  EXPECT_FALSE(report.has_regressions());
}

TEST(Compare, ReportJsonParses) {
  RunRecord r = sample_record();
  CompareReport report = obs::compare_run(r, obs::baseline_from_record(r));
  auto doc = obs::parse_json(obs::compare_report_json(report));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("schema")->string_or(""), "edgestab-compare-v1");
  EXPECT_EQ(doc->find("counts")->find("regressed")->number_or(-1), 0.0);
}

// ---- trend report ----------------------------------------------------------

TEST(Trend, HtmlIsSelfContainedAndMarksRegressions) {
  RunRecord first = sample_record();
  RunRecord second = sample_record();
  second.repeats = {{30.0, 29.0, 0.5}};  // way slower than baseline
  Baseline b = obs::baseline_from_record(first);
  std::string html = obs::trend_html({first, second}, {b});
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("fig_test"), std::string::npos);
  EXPECT_NE(html.find("regressed vs baseline"), std::string::npos);
  EXPECT_EQ(html.find("<script src"), std::string::npos);
  EXPECT_EQ(html.find("<link"), std::string::npos);
}

TEST(Trend, RendersWithoutBaselines) {
  std::string html = obs::trend_html({sample_record()}, {});
  EXPECT_NE(html.find("no committed baseline"), std::string::npos);
  EXPECT_EQ(html.find("regressed vs baseline"), std::string::npos);
}

// ---- progress meter --------------------------------------------------------

TEST(Progress, DisabledMeterStaysSilentAndCounts) {
  obs::ProgressMeter meter("test", 10, /*enabled=*/false);
  meter.tick(3);
  meter.tick(7);
  meter.finish();
  EXPECT_EQ(meter.done(), 10);
  EXPECT_FALSE(meter.enabled());
}

}  // namespace
