// Compute-backend tests (DESIGN.md §15): selection / fallback semantics,
// scalar-vs-avx2 kernel agreement within float tolerance, int8
// quantization round-trip properties, and the within-backend determinism
// contract — bit-identical logits at 1/2/8 pool lanes for every backend
// available on this host.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "nn/layers.h"
#include "nn/mobilenet.h"
#include "nn/model.h"
#include "nn/trainer.h"
#include "runtime/thread_pool.h"
#include "tensor/backend.h"
#include "tensor/int8.h"
#include "tensor/ops.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace edgestab {
namespace {

/// The backend is process-global state; every test that changes it goes
/// through this guard so a failing assertion can't leak a non-scalar
/// tier into later tests.
class BackendGuard {
 public:
  BackendGuard() : prev_(active_backend()) {}
  ~BackendGuard() { set_active_backend(prev_); }

 private:
  BackendKind prev_;
};

Tensor random_tensor(std::vector<int> shape, Pcg32& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data())
    v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

std::uint64_t digest(const Tensor& t) {
  Fingerprint fp;
  for (std::size_t i = 0; i < t.numel(); ++i)
    fp.add(static_cast<double>(t[i]));
  return fp.value();
}

/// Relative L2 error ||a - b|| / ||b||.
double rel_l2(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.numel(), b.numel());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    num += d * d;
    den += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  return std::sqrt(num / std::max(den, 1e-30));
}

// ---------------------------------------------------------------------------
// Selection / dispatch.

TEST(Backend, ScalarIsDefault) {
  EXPECT_EQ(active_backend(), BackendKind::kScalar);
  EXPECT_FALSE(use_avx2());
  EXPECT_FALSE(use_int8());
}

TEST(Backend, ParseAcceptsCanonicalNamesOnly) {
  BackendKind k = BackendKind::kScalar;
  EXPECT_TRUE(parse_backend("scalar", k));
  EXPECT_EQ(k, BackendKind::kScalar);
  EXPECT_TRUE(parse_backend("avx2", k));
  EXPECT_EQ(k, BackendKind::kAvx2);
  EXPECT_TRUE(parse_backend("int8", k));
  EXPECT_EQ(k, BackendKind::kInt8);

  k = BackendKind::kScalar;
  EXPECT_FALSE(parse_backend("AVX2", k));  // canonical lower-case only
  EXPECT_FALSE(parse_backend("neon", k));
  EXPECT_FALSE(parse_backend("", k));
  EXPECT_EQ(k, BackendKind::kScalar);  // untouched on failure
}

TEST(Backend, NamesRoundTrip) {
  for (BackendKind k :
       {BackendKind::kScalar, BackendKind::kAvx2, BackendKind::kInt8}) {
    BackendKind parsed = BackendKind::kScalar;
    ASSERT_TRUE(parse_backend(backend_name(k), parsed));
    EXPECT_EQ(parsed, k);
  }
}

TEST(Backend, AvailabilityRules) {
  EXPECT_TRUE(backend_available(BackendKind::kScalar));
  EXPECT_TRUE(backend_available(BackendKind::kInt8));
  // avx2 needs both the compiled-in TUs and CPUID support.
  EXPECT_EQ(backend_available(BackendKind::kAvx2),
            kAvx2CompiledIn && cpu_supports_avx2());
}

TEST(Backend, SetActiveHonorsRequestOrFallsBackToScalar) {
  BackendGuard guard;
  EXPECT_EQ(set_active_backend(BackendKind::kInt8), BackendKind::kInt8);
  EXPECT_TRUE(use_int8());
  EXPECT_FALSE(use_avx2());

  const BackendKind got = set_active_backend(BackendKind::kAvx2);
  if (backend_available(BackendKind::kAvx2)) {
    EXPECT_EQ(got, BackendKind::kAvx2);
    EXPECT_TRUE(use_avx2());
  } else {
    EXPECT_EQ(got, BackendKind::kScalar);  // graceful fallback, no crash
    EXPECT_EQ(active_backend(), BackendKind::kScalar);
  }

  EXPECT_EQ(set_active_backend(BackendKind::kScalar), BackendKind::kScalar);
}

// ---------------------------------------------------------------------------
// Scalar vs avx2 kernel agreement. The tiers intentionally differ in
// accumulation order, so agreement is float-tolerance, not bit-equality.

TEST(BackendAvx2, GemmMatchesScalarWithinTolerance) {
  if (!backend_available(BackendKind::kAvx2))
    GTEST_SKIP() << "avx2 tier unavailable on this host";
  BackendGuard guard;
  Pcg32 rng(2024, 7);
  // Odd sizes exercise the 6/2/1-row and vector-tail remainder paths.
  const int m = 37, k = 61, n = 53;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor c_scalar({m, n});
  Tensor c_avx2({m, n});

  set_active_backend(BackendKind::kScalar);
  gemm(a.raw(), b.raw(), c_scalar.raw(), m, k, n);
  set_active_backend(BackendKind::kAvx2);
  gemm(a.raw(), b.raw(), c_avx2.raw(), m, k, n);

  EXPECT_LT(rel_l2(c_avx2, c_scalar), 1e-6);
  EXPECT_NE(digest(c_avx2), 0u);
}

TEST(BackendAvx2, GemmAccumulateAddsIntoC) {
  if (!backend_available(BackendKind::kAvx2))
    GTEST_SKIP() << "avx2 tier unavailable on this host";
  BackendGuard guard;
  Pcg32 rng(11, 3);
  const int m = 9, k = 17, n = 23;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor base = random_tensor({m, n}, rng);

  Tensor expect = base;  // scalar reference: base + A*B
  set_active_backend(BackendKind::kScalar);
  gemm(a.raw(), b.raw(), expect.raw(), m, k, n, /*accumulate=*/true);

  Tensor got = base;
  set_active_backend(BackendKind::kAvx2);
  gemm(a.raw(), b.raw(), got.raw(), m, k, n, /*accumulate=*/true);

  EXPECT_LT(rel_l2(got, expect), 1e-6);
}

TEST(BackendAvx2, GemmIsDeterministic) {
  if (!backend_available(BackendKind::kAvx2))
    GTEST_SKIP() << "avx2 tier unavailable on this host";
  BackendGuard guard;
  set_active_backend(BackendKind::kAvx2);
  Pcg32 rng(5, 5);
  const int m = 30, k = 40, n = 50;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);
  Tensor c1({m, n}), c2({m, n});
  gemm(a.raw(), b.raw(), c1.raw(), m, k, n);
  gemm(a.raw(), b.raw(), c2.raw(), m, k, n);
  EXPECT_EQ(digest(c1), digest(c2));
}

TEST(BackendAvx2, BlockedMatmulModeStaysOnScalarPath) {
  if (!backend_available(BackendKind::kAvx2))
    GTEST_SKIP() << "avx2 tier unavailable on this host";
  BackendGuard guard;
  Pcg32 rng(77, 1);
  const int m = 12, k = 33, n = 20;
  Tensor a = random_tensor({m, k}, rng);
  Tensor b = random_tensor({k, n}, rng);

  // kBlocked models a per-phone accumulation order; the avx2 tier must
  // not capture it, so results are bit-identical across backends.
  Tensor c_scalar({m, n});
  set_active_backend(BackendKind::kScalar);
  gemm(a.raw(), b.raw(), c_scalar.raw(), m, k, n, false,
       MatmulMode::kBlocked);

  Tensor c_avx2({m, n});
  set_active_backend(BackendKind::kAvx2);
  gemm(a.raw(), b.raw(), c_avx2.raw(), m, k, n, false, MatmulMode::kBlocked);

  EXPECT_EQ(digest(c_avx2), digest(c_scalar));
}

TEST(BackendAvx2, DepthwiseLayerMatchesScalarWithinTolerance) {
  if (!backend_available(BackendKind::kAvx2))
    GTEST_SKIP() << "avx2 tier unavailable on this host";
  BackendGuard guard;
  // Covers the padded-plane 3x3 stride-1/2 fast paths and the generic
  // gather path (kernel 5), each with awkward non-multiple-of-8 widths.
  struct Case {
    int kernel, stride, pad, h, w;
  };
  for (const Case& c : {Case{3, 1, 1, 13, 19}, Case{3, 2, 1, 14, 21},
                        Case{5, 1, 2, 11, 17}}) {
    Pcg32 rng(31 * c.kernel + c.stride, 9);
    DepthwiseConv2D layer("dw", /*channels=*/4, c.kernel, c.stride, c.pad,
                          /*use_bias=*/true);
    layer.init(rng);
    Tensor input = random_tensor({2, 4, c.h, c.w}, rng);

    set_active_backend(BackendKind::kScalar);
    Tensor ref = layer.forward(input, /*train=*/false);
    set_active_backend(BackendKind::kAvx2);
    Tensor got = layer.forward(input, /*train=*/false);

    EXPECT_LT(rel_l2(got, ref), 1e-6)
        << "kernel=" << c.kernel << " stride=" << c.stride;
  }
}

TEST(BackendAvx2, ConvLayerMatchesScalarWithinTolerance) {
  if (!backend_available(BackendKind::kAvx2))
    GTEST_SKIP() << "avx2 tier unavailable on this host";
  BackendGuard guard;
  Pcg32 rng(42, 13);
  // 3x3 im2col path and the 1x1 identity-cols shortcut.
  for (int kernel : {3, 1}) {
    Conv2D layer("conv", /*in_c=*/5, /*out_c=*/7, kernel, /*stride=*/1,
                 /*pad=*/kernel / 2, /*use_bias=*/true);
    layer.init(rng);
    Tensor input = random_tensor({2, 5, 15, 18}, rng);

    set_active_backend(BackendKind::kScalar);
    Tensor ref = layer.forward(input, /*train=*/false);
    set_active_backend(BackendKind::kAvx2);
    Tensor got = layer.forward(input, /*train=*/false);

    EXPECT_LT(rel_l2(got, ref), 1e-6) << "kernel=" << kernel;
  }
}

// ---------------------------------------------------------------------------
// int8 quantization properties.

TEST(BackendInt8, TensorScaleAndQuantizeRoundTrip) {
  Pcg32 rng(8, 8);
  std::vector<float> x(257);
  for (float& v : x) v = static_cast<float>(rng.normal(0.0, 2.0));
  x[100] = -5.5f;  // known extremum

  const float scale = int8::tensor_scale(x.data(), x.size());
  EXPECT_FLOAT_EQ(scale, 5.5f / 127.0f);

  std::vector<std::int8_t> q(x.size());
  int8::quantize(x.data(), x.size(), scale, q.data());

  int max_code = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    max_code = std::max(max_code, std::abs(static_cast<int>(q[i])));
    // Round-trip error of symmetric round-to-nearest is at most half a
    // quantization step.
    EXPECT_LE(std::abs(x[i] - static_cast<float>(q[i]) * scale),
              scale * 0.5f + 1e-6f);
  }
  EXPECT_EQ(max_code, 127);  // the extremum maps to the last code
}

TEST(BackendInt8, ZeroTensorQuantizesToZeroCodes) {
  std::vector<float> x(64, 0.0f);
  EXPECT_EQ(int8::tensor_scale(x.data(), x.size()), 0.0f);
  std::vector<std::int8_t> q(x.size(), 42);
  int8::quantize(x.data(), x.size(), 0.0f, q.data());
  for (std::int8_t c : q) EXPECT_EQ(c, 0);
}

TEST(BackendInt8, PerRowAndPerColScales) {
  // Two rows with different magnitudes must get independent scales.
  const float m[6] = {1.0f, -2.0f, 0.5f, 100.0f, 50.0f, -127.0f};
  std::int8_t q[6];
  float row_scales[2];
  int8::quantize_rows(m, 2, 3, q, row_scales);
  EXPECT_FLOAT_EQ(row_scales[0], 2.0f / 127.0f);
  EXPECT_FLOAT_EQ(row_scales[1], 1.0f);
  EXPECT_EQ(q[1], -127);
  EXPECT_EQ(q[5], -127);

  float col_scales[3];
  int8::quantize_cols(m, 2, 3, q, col_scales);
  EXPECT_FLOAT_EQ(col_scales[0], 100.0f / 127.0f);
  EXPECT_FLOAT_EQ(col_scales[1], 50.0f / 127.0f);
  EXPECT_FLOAT_EQ(col_scales[2], 1.0f);
}

TEST(BackendInt8, Sat32SaturatesAtAccumulatorRange) {
  const std::int64_t lo = std::numeric_limits<std::int32_t>::min();
  const std::int64_t hi = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(int8::sat32(0), 0);
  EXPECT_EQ(int8::sat32(hi), hi);
  EXPECT_EQ(int8::sat32(lo), lo);
  EXPECT_EQ(int8::sat32(hi + 1), hi);
  EXPECT_EQ(int8::sat32(lo - 1), lo);
  EXPECT_EQ(int8::sat32(std::numeric_limits<std::int64_t>::max()), hi);
}

TEST(BackendInt8, GemmS8MatchesInt64Reference) {
  Pcg32 rng(3, 3);
  const int m = 7, k = 31, n = 11;
  std::vector<std::int8_t> a(static_cast<std::size_t>(m) * k);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k) * n);
  for (auto& v : a)
    v = static_cast<std::int8_t>(static_cast<int>(rng.normal(0, 50)) % 128);
  for (auto& v : b)
    v = static_cast<std::int8_t>(static_cast<int>(rng.normal(0, 50)) % 128);

  std::vector<std::int32_t> c(static_cast<std::size_t>(m) * n);
  int8::gemm_s8(a.data(), b.data(), c.data(), m, k, n);

  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (int p = 0; p < k; ++p)
        acc += static_cast<std::int64_t>(a[static_cast<std::size_t>(i) * k +
                                           p]) *
               b[static_cast<std::size_t>(p) * n + j];
      EXPECT_EQ(c[static_cast<std::size_t>(i) * n + j], int8::sat32(acc));
    }
}

TEST(BackendInt8, GemmS8SaturatesLongAllMaxDotProduct) {
  // 127 * 127 * 140000 ≈ 2.26e9 overflows int32; the contract is an
  // exact int64 sum saturated once at the end, so the result must be
  // exactly INT32_MAX — not a wrapped or incrementally-clamped value.
  const int k = 140000;
  std::vector<std::int8_t> a(static_cast<std::size_t>(k), 127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k), 127);
  std::int32_t c = 0;
  int8::gemm_s8(a.data(), b.data(), &c, 1, k, 1);
  EXPECT_EQ(c, std::numeric_limits<std::int32_t>::max());

  for (auto& v : b) v = -127;
  int8::gemm_s8(a.data(), b.data(), &c, 1, k, 1);
  EXPECT_EQ(c, std::numeric_limits<std::int32_t>::min());
}

TEST(BackendInt8, ConvLayerInt8CloseToScalarAndDeterministic) {
  BackendGuard guard;
  Pcg32 rng(21, 2);
  Conv2D layer("conv", /*in_c=*/4, /*out_c=*/6, /*kernel=*/3, /*stride=*/1,
               /*pad=*/1, /*use_bias=*/true);
  layer.init(rng);
  Tensor input = random_tensor({2, 4, 12, 12}, rng);

  set_active_backend(BackendKind::kScalar);
  Tensor ref = layer.forward(input, /*train=*/false);

  set_active_backend(BackendKind::kInt8);
  Tensor q1 = layer.forward(input, /*train=*/false);
  Tensor q2 = layer.forward(input, /*train=*/false);

  // Quantized inference is an approximation of the float path...
  EXPECT_LT(rel_l2(q1, ref), 0.05);
  // ...but a bit-exact one within its own tier.
  EXPECT_EQ(digest(q1), digest(q2));
}

TEST(BackendInt8, TrainingForwardIgnoresInt8Backend) {
  BackendGuard guard;
  Pcg32 rng(19, 4);
  Dense layer("fc", 10, 5);
  layer.init(rng);
  Tensor input = random_tensor({3, 10}, rng);

  set_active_backend(BackendKind::kScalar);
  Tensor ref = layer.forward(input, /*train=*/true);
  set_active_backend(BackendKind::kInt8);
  // Quantized kernels are inference-only; training forwards must stay on
  // the float path bit-for-bit so gradients stay consistent.
  Tensor got = layer.forward(input, /*train=*/true);
  EXPECT_EQ(digest(got), digest(ref));
}

// ---------------------------------------------------------------------------
// Within-backend determinism across pool lanes: the logits digest of a
// parallel eval sweep must not depend on --threads for ANY backend.

TEST(BackendDeterminism, LogitsDigestStableAcrossLaneCounts) {
  BackendGuard guard;
  MobileNetConfig config;
  config.width = 0.25f;
  Model model = build_mini_mobilenet_v2(config);
  Pcg32 init_rng(1234, 1);
  model.init(init_rng);

  Pcg32 data_rng(99, 6);
  Tensor images = random_tensor({8, 3, config.input_size, config.input_size},
                                data_rng, 0.25);

  const int prev_threads = runtime::ThreadPool::global().threads();
  for (BackendKind kind :
       {BackendKind::kScalar, BackendKind::kAvx2, BackendKind::kInt8}) {
    if (!backend_available(kind)) continue;
    set_active_backend(kind);
    std::uint64_t first = 0;
    for (int threads : {1, 2, 8}) {
      runtime::ThreadPool::set_global_threads(threads);
      const std::uint64_t d =
          digest(predict_logits(model, images, /*batch_size=*/2));
      if (threads == 1)
        first = d;
      else
        EXPECT_EQ(d, first) << backend_name(kind) << " diverged at --threads "
                            << threads;
    }
  }
  runtime::ThreadPool::set_global_threads(prev_threads);
}

}  // namespace
}  // namespace edgestab
