// Unit tests for the hot-path profiler (obs/profiler.h): scope nesting
// and the exclusive-time identity, canonical snapshot ordering,
// allocation attribution through the util/alloc_track hooks, lane-merge
// determinism (identical digests and alloc totals at any thread count),
// the profile JSON round trip, report rendering, and the
// hooks-compiled-out flavor contract.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "util/alloc_track.h"
#include "util/bytes.h"

namespace edgestab::obs {
namespace {

const ProfileNode* find_node(const std::vector<ProfileNode>& nodes,
                             const std::string& path) {
  for (const ProfileNode& n : nodes)
    if (n.path == path) return &n;
  return nullptr;
}

// Every test starts and ends with a pristine profiler so the suite works
// in any order and leaves no armed state behind for other tests.
class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kProfileCompiledIn)
      GTEST_SKIP() << "profiler compiled out (EDGESTAB_PROFILE=OFF)";
    Profiler::global().clear();
  }
  void TearDown() override {
    if (kProfileCompiledIn) Profiler::global().clear();
  }
};

TEST_F(ProfilerTest, DisabledScopesAndAllocationsAreInert) {
  ASSERT_FALSE(Profiler::global().enabled());
  {
    ProfileScope scope("test", "ignored");
    Tensor t({8, 8});
    (void)t;
  }
  EXPECT_FALSE(Profiler::global().armed());
  EXPECT_TRUE(Profiler::global().snapshot().empty());
  EXPECT_EQ(Profiler::global().totals().alloc_count, 0u);
}

TEST_F(ProfilerTest, ScopeNestingBuildsTreeWithExclusiveTimeIdentity) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    ProfileScope outer("t", "outer");
    {
      ProfileScope inner("t", "inner");
    }
    {
      ProfileScope inner("t", "inner");  // second call, same node
    }
    {
      ProfileScope other("t", "other");
    }
  }
  p.set_enabled(false);

  auto nodes = p.snapshot();
  ASSERT_EQ(nodes.size(), 3u);
  const ProfileNode* outer = find_node(nodes, "t.outer");
  const ProfileNode* inner = find_node(nodes, "t.outer/t.inner");
  const ProfileNode* other = find_node(nodes, "t.outer/t.other");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(other, nullptr);

  EXPECT_EQ(outer->depth, 0);
  EXPECT_EQ(inner->depth, 1);
  EXPECT_EQ(outer->calls, 1u);
  EXPECT_EQ(inner->calls, 2u);
  EXPECT_EQ(other->calls, 1u);

  // Single-threaded region: the bookkeeping is exact, not approximate —
  // the parent's exclusive time is its inclusive time minus the summed
  // inclusive time of its (same-thread) children.
  EXPECT_EQ(outer->excl_ns,
            outer->incl_ns - inner->incl_ns - other->incl_ns);
  EXPECT_EQ(inner->excl_ns, inner->incl_ns);  // leaf
  EXPECT_GE(outer->incl_ns, inner->incl_ns + other->incl_ns);
}

TEST_F(ProfilerTest, SnapshotIsDfsPreorderWithSortedSiblings) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    // Enter siblings in anti-alphabetical order; the snapshot must not
    // depend on entry order.
    ProfileScope root("r", "root");
    { ProfileScope z("t", "zeta"); { ProfileScope leaf("t", "leaf"); } }
    { ProfileScope a("t", "alpha"); }
    { ProfileScope m("s", "mid"); }
  }
  p.set_enabled(false);

  auto nodes = p.snapshot();
  ASSERT_EQ(nodes.size(), 5u);
  EXPECT_EQ(nodes[0].path, "r.root");
  // Siblings sort by (category, name): s.mid < t.alpha < t.zeta.
  EXPECT_EQ(nodes[1].path, "r.root/s.mid");
  EXPECT_EQ(nodes[2].path, "r.root/t.alpha");
  EXPECT_EQ(nodes[3].path, "r.root/t.zeta");
  // DFS preorder: zeta's child follows zeta.
  EXPECT_EQ(nodes[4].path, "r.root/t.zeta/t.leaf");
  EXPECT_EQ(nodes[4].depth, 2);
}

TEST_F(ProfilerTest, AllocationsAttributeToInnermostScopeAndSite) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    ProfileScope outer("t", "outer");
    Bytes blob(100);
    {
      ProfileScope inner("t", "tensors");
      Tensor t({4, 8});  // 32 floats = 128 bytes at site kTensor
      (void)t;
    }
    (void)blob;
  }
  p.set_enabled(false);

  auto nodes = p.snapshot();
  const ProfileNode* outer = find_node(nodes, "t.outer");
  const ProfileNode* inner = find_node(nodes, "t.outer/t.tensors");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_GE(inner->alloc_count, 1u);
  EXPECT_GE(inner->alloc_bytes, 4u * 8u * sizeof(float));
  // The tensor died inside its scope, so its frees landed there too.
  EXPECT_EQ(inner->free_count, inner->alloc_count);
  EXPECT_EQ(inner->free_bytes, inner->alloc_bytes);
  EXPECT_GE(inner->peak_live_bytes, 4u * 8u * sizeof(float));
  // The Bytes buffer belongs to the outer scope, not the inner one.
  EXPECT_GE(outer->alloc_bytes, 100u);

  ProfileTotals totals = p.totals();
  EXPECT_EQ(totals.alloc_count, outer->alloc_count + inner->alloc_count);
  EXPECT_GE(
      totals.site_alloc_bytes[static_cast<int>(AllocSite::kTensor)],
      4u * 8u * sizeof(float));
  EXPECT_GE(totals.site_alloc_bytes[static_cast<int>(AllocSite::kBytes)],
            100u);
  EXPECT_EQ(totals.site_alloc_count[static_cast<int>(AllocSite::kImage)],
            0u);
}

TEST_F(ProfilerTest, UnscopedAllocationsLandInCatchAllNode) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  Tensor t({2, 2});
  (void)t;
  p.set_enabled(false);

  const ProfileNode* unscoped =
      find_node(p.snapshot(), "profile.unscoped");
  ASSERT_NE(unscoped, nullptr);
  EXPECT_GE(unscoped->alloc_bytes, 2u * 2u * sizeof(float));
}

TEST_F(ProfilerTest, SuspendTracingAlsoMutesProfiler) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    SuspendTracing suspend;
    EXPECT_FALSE(p.enabled());
    ProfileScope scope("t", "hidden");
    Tensor t({4, 4});
    (void)t;
  }
  EXPECT_TRUE(p.enabled());
  p.set_enabled(false);
  EXPECT_TRUE(p.snapshot().empty());
  EXPECT_EQ(p.totals().alloc_count, 0u);
}

// One deterministic parallel workload: each item opens a profile scope
// on whatever lane runs it and allocates an item-dependent tensor. With
// ambient-scope propagation across the pool fan-out, the logical tree —
// and therefore the digest and the alloc totals — must be identical at
// every thread count.
struct WorkloadResult {
  std::string digest;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t item_calls = 0;
};

WorkloadResult run_workload(int threads) {
  runtime::ThreadPool::set_global_threads(threads);
  Profiler& p = Profiler::global();
  p.clear();
  p.set_enabled(true);
  {
    ProfileScope root("wl", "root");
    runtime::parallel_for(64, [](std::size_t i) {
      ProfileScope item("wl", "item");
      Tensor t({static_cast<int>(i % 7) + 1, 16});
      (void)t;
    }, /*grain=*/1);
  }
  p.set_enabled(false);

  WorkloadResult result;
  result.digest = p.digest_hex();
  ProfileTotals totals = p.totals();
  result.alloc_count = totals.alloc_count;
  result.alloc_bytes = totals.alloc_bytes;
  const ProfileNode* item = find_node(p.snapshot(), "wl.root/wl.item");
  if (item != nullptr) result.item_calls = item->calls;
  p.clear();
  return result;
}

TEST_F(ProfilerTest, LaneMergeIsDeterministicAcrossThreadCounts) {
  WorkloadResult one = run_workload(1);
  WorkloadResult two = run_workload(2);
  WorkloadResult eight = run_workload(8);
  runtime::ThreadPool::set_global_threads(
      runtime::ThreadPool::default_threads());

  EXPECT_EQ(one.item_calls, 64u);
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.digest, eight.digest);
  EXPECT_EQ(one.alloc_count, two.alloc_count);
  EXPECT_EQ(one.alloc_count, eight.alloc_count);
  EXPECT_EQ(one.alloc_bytes, two.alloc_bytes);
  EXPECT_EQ(one.alloc_bytes, eight.alloc_bytes);
  EXPECT_EQ(two.item_calls, 64u);
  EXPECT_EQ(eight.item_calls, 64u);
}

TEST_F(ProfilerTest, DigestReflectsCallCounts) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  { ProfileScope s("t", "a"); }
  p.set_enabled(false);
  std::string once = p.digest_hex();

  p.clear();
  p.set_enabled(true);
  { ProfileScope s("t", "a"); }
  { ProfileScope s("t", "a"); }
  p.set_enabled(false);
  EXPECT_NE(once, p.digest_hex());
}

TEST_F(ProfilerTest, ProfileJsonRoundTrips) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    ProfileScope root("t", "root");
    ProfileScope leaf("t", "leaf");
    Tensor t({8, 8});
    (void)t;
  }
  p.set_enabled(false);

  std::string json = profile_json(p, "unit_bench");
  std::string error;
  std::optional<JsonValue> doc = parse_json(json, &error);
  ASSERT_TRUE(doc.has_value()) << error;

  ProfileDoc parsed;
  ASSERT_TRUE(parse_profile(*doc, &parsed, &error)) << error;
  EXPECT_EQ(parsed.bench, "unit_bench");
  EXPECT_EQ(parsed.digest, p.digest_hex());

  auto nodes = p.snapshot();
  ASSERT_EQ(parsed.nodes.size(), nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(parsed.nodes[i].path, nodes[i].path);
    EXPECT_EQ(parsed.nodes[i].depth, nodes[i].depth);
    EXPECT_EQ(parsed.nodes[i].calls, nodes[i].calls);
    EXPECT_EQ(parsed.nodes[i].incl_ns, nodes[i].incl_ns);
    EXPECT_EQ(parsed.nodes[i].excl_ns, nodes[i].excl_ns);
    EXPECT_EQ(parsed.nodes[i].alloc_count, nodes[i].alloc_count);
    EXPECT_EQ(parsed.nodes[i].alloc_bytes, nodes[i].alloc_bytes);
    EXPECT_EQ(parsed.nodes[i].free_count, nodes[i].free_count);
    EXPECT_EQ(parsed.nodes[i].peak_live_bytes, nodes[i].peak_live_bytes);
  }

  ProfileTotals totals = p.totals();
  EXPECT_EQ(parsed.totals.alloc_count, totals.alloc_count);
  EXPECT_EQ(parsed.totals.alloc_bytes, totals.alloc_bytes);
  EXPECT_EQ(parsed.totals.free_bytes, totals.free_bytes);
  for (int s = 0; s < kAllocSiteCount; ++s) {
    EXPECT_EQ(parsed.totals.site_alloc_count[s],
              totals.site_alloc_count[s]);
    EXPECT_EQ(parsed.totals.site_alloc_bytes[s],
              totals.site_alloc_bytes[s]);
  }
}

TEST_F(ProfilerTest, ParseProfileRejectsWrongSchema) {
  std::string error;
  std::optional<JsonValue> doc =
      parse_json("{\"schema\":\"not-a-profile\",\"nodes\":[]}", &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ProfileDoc parsed;
  EXPECT_FALSE(parse_profile(*doc, &parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST_F(ProfilerTest, HotspotTableAndHtmlRenderNodes) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    ProfileScope root("bench", "unit");
    ProfileScope stage("isp", "demosaic");
    Tensor t({16, 16});
    (void)t;
  }
  p.set_enabled(false);

  auto nodes = p.snapshot();
  std::string table = hotspot_table(nodes);
  EXPECT_NE(table.find("isp.demosaic"), std::string::npos);
  EXPECT_NE(table.find("excl_ms"), std::string::npos);

  std::string html = profile_html(nodes, p.totals(), "unit_bench");
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("unit_bench"), std::string::npos);
  EXPECT_NE(html.find("isp.demosaic"), std::string::npos);
}

TEST_F(ProfilerTest, ProfileHtmlEscapesHostileScopeLabels) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    // Scope labels are user data (bench/stage names flow in verbatim)
    // and must come out HTML-escaped in the report.
    ProfileScope hostile("bench", "<script>alert('x')</script>");
    Tensor t({8, 8});
    (void)t;
  }
  p.set_enabled(false);

  std::string html =
      profile_html(p.snapshot(), p.totals(), "unit<bench> & \"quoted\"");
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_EQ(html.find("unit<bench>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;alert"), std::string::npos);
  EXPECT_NE(html.find("unit&lt;bench&gt; &amp; &quot;quoted&quot;"),
            std::string::npos);
}

TEST_F(ProfilerTest, WriteProfileReportEmitsArtifactsAndManifestFields) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    ProfileScope root("t", "root");
    Tensor t({8, 8});
    (void)t;
  }
  p.set_enabled(false);

  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "edgestab_profiler_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  RunManifest manifest("unit_bench");
  ASSERT_TRUE(
      write_profile_report(p, "unit_bench", dir.string(), &manifest));

  std::filesystem::path json_path = dir / "unit_bench.profile.json";
  std::filesystem::path html_path = dir / "unit_bench.profile.html";
  EXPECT_TRUE(std::filesystem::exists(json_path));
  EXPECT_TRUE(std::filesystem::exists(html_path));

  std::ifstream in(json_path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::string error;
  ProfileDoc parsed;
  std::optional<JsonValue> doc = parse_json(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  ASSERT_TRUE(parse_profile(*doc, &parsed, &error)) << error;
  EXPECT_EQ(parsed.digest, p.digest_hex());

  const std::string* digest = manifest.find_string_field("profile_digest");
  ASSERT_NE(digest, nullptr);
  EXPECT_EQ(*digest, p.digest_hex());
  EXPECT_TRUE(manifest.find_number_field("profile_alloc_count").has_value());
  EXPECT_TRUE(manifest.find_number_field("profile_alloc_bytes").has_value());
  EXPECT_NE(manifest.to_json().find("unit_bench.profile.json"),
            std::string::npos);

  std::filesystem::remove_all(dir);
}

TEST_F(ProfilerTest, ClearResetsEverything) {
  Profiler& p = Profiler::global();
  p.set_enabled(true);
  {
    ProfileScope s("t", "a");
    Tensor t({4, 4});
    (void)t;
  }
  EXPECT_TRUE(p.armed());
  p.clear();
  EXPECT_FALSE(p.armed());
  EXPECT_FALSE(p.enabled());
  EXPECT_TRUE(p.snapshot().empty());
  EXPECT_EQ(p.totals().alloc_count, 0u);
  EXPECT_EQ(p.totals().alloc_bytes, 0u);
}

#ifndef EDGESTAB_PROFILE
// Compiled-out flavor: the tracked containers must be the exact
// pre-profiler types (same ABI, same std::vector), and kProfileCompiledIn
// must advertise the flavor so runtime knobs can warn instead of
// silently doing nothing.
TEST(ProfilerCompiledOut, TrackedVectorIsPlainStdVector) {
  static_assert(std::is_same_v<TrackedVector<float, AllocSite::kTensor>,
                               std::vector<float>>);
  static_assert(
      std::is_same_v<TrackedVector<std::uint8_t, AllocSite::kBytes>,
                     std::vector<std::uint8_t>>);
  EXPECT_FALSE(kProfileCompiledIn);
}
#endif

}  // namespace
}  // namespace edgestab::obs
