// Unit tests for the observability layer: JSON writer output and
// escaping, histogram bucketing and quantiles, registry behavior, span
// recording/nesting/suspension, Chrome-trace export (validated with a
// minimal JSON parser), the provenance manifest document, the divergence
// auditor (stage taps, logit drift, prediction-flip ledger), the drift
// report exporters, and the shared end-of-run artifact export including
// its failure paths.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "image/image.h"
#include "obs/drift.h"
#include "obs/fault_ledger.h"
#include "obs/flip_ledger.h"
#include "obs/json.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "util/check.h"
#include "util/csv.h"

namespace edgestab::obs {
namespace {

// ---- Minimal recursive-descent JSON validator -------------------------------
// Enough grammar to prove the exporters emit well-formed documents without
// pulling in a JSON dependency. Returns true iff the whole input is one
// valid JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Restores the tracer to a clean, disabled state around each span test so
// tests do not leak state into one another.
struct TracerSandbox {
  TracerSandbox() {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  ~TracerSandbox() {
    Tracer::global().set_enabled(false);
    Tracer::global().set_max_events_per_thread(Tracer::kMaxEventsPerThread);
    Tracer::global().clear();
  }
};

// Same idea for the divergence auditor: enabled and empty on entry,
// disabled and empty (with the default item cap) on exit.
struct DriftSandbox {
  DriftSandbox() {
    DriftAuditor::global().clear();
    DriftAuditor::global().set_enabled(true);
  }
  ~DriftSandbox() {
    DriftAuditor::global().set_enabled(false);
    DriftAuditor::global().set_max_audited_items(
        DriftAuditor::kDefaultMaxAuditedItems);
    DriftAuditor::global().clear();
  }
};

// Scratch directory for exporter tests, wiped on entry and exit.
std::filesystem::path scratch_dir(const char* leaf) {
  std::filesystem::path dir =
      std::filesystem::path(testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b");
  w.begin_array();
  w.value("x").value(2.5).value(true);
  w.end_array();
  w.key("c").value("z");
  w.end_object();
  EXPECT_EQ(w.take(), R"({"a":1,"b":["x",2.5,true],"c":"z"})");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("q\"b\\s\n\t"), "q\\\"b\\\\s\\n\\t");
  // Control characters must come out as \u00xx escapes.
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.end_array();
  w.key("obj");
  w.begin_object();
  w.end_object();
  w.end_object();
  std::string doc = w.take();
  EXPECT_EQ(doc, R"({"list":[],"obj":{}})");
  EXPECT_TRUE(JsonChecker(doc).valid());
}

TEST(JsonWriter, UnbalancedNestingIsRejected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.take(), CheckError);
}

// ---- Counter / Histogram ----------------------------------------------------

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 5, 6, 7}) h.record(v);
  // Values below kSubBuckets land in unit-width buckets, so quantiles on
  // this input are exact order statistics.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 28u);
}

TEST(Histogram, BucketIndexMonotonicAndBounded) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 100000; v = v < 16 ? v + 1 : v * 2) {
    int idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  EXPECT_LT(Histogram::bucket_index(UINT64_MAX), Histogram::kBucketCount);
}

TEST(Histogram, LargeValueQuantilesWithinRelativeError) {
  Histogram h;
  // 100 samples at exactly 1e6 ns: every quantile must come back within
  // the documented <= 1/16 relative bucket error.
  for (int i = 0; i < 100; ++i) h.record(1000000);
  for (double q : {0.5, 0.95, 0.99}) {
    double est = h.quantile(q);
    EXPECT_NEAR(est, 1e6, 1e6 / 16.0) << "q=" << q;
  }
  HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1000000u);
  EXPECT_EQ(s.max, 1000000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1e6);
}

TEST(Histogram, InterpolatesWithinWideBucket) {
  Histogram h;
  // 1024..1151 share one log bucket of width 128; without interpolation
  // every quantile would collapse onto a bucket edge.
  for (std::uint64_t v = 1024; v < 1152; ++v) h.record(v);
  ASSERT_EQ(Histogram::bucket_index(1024), Histogram::bucket_index(1151));
  EXPECT_NEAR(h.quantile(0.5), 1087.5, 0.51);
  EXPECT_NEAR(h.quantile(0.25), 1055.5, 0.51);
  EXPECT_LT(h.quantile(0.25), h.quantile(0.75));
  // Clamping into the observed range keeps boundary quantiles honest:
  // q=1 is the exact max, q=0 never drops below the min.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1151.0);
  EXPECT_GE(h.quantile(0.0), 1024.0);
  EXPECT_LE(h.quantile(0.0), 1025.0);
}

TEST(Histogram, FirstAndLastBucketBoundary) {
  Histogram h;
  h.record(7);  // last unit-width bucket: exact
  h.record(8);  // first log bucket [8, 9)
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  // The interpolated estimate inside [8, 9) lands above the true max and
  // must clamp back to it.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(Histogram, MixedDistributionQuantileOrdering) {
  Histogram h;
  for (int i = 0; i < 95; ++i) h.record(100);
  for (int i = 0; i < 5; ++i) h.record(100000);
  // p50 sits in the bulk, p99 in the tail — the orders of magnitude must
  // not blur together.
  EXPECT_LT(h.quantile(0.5), 200.0);
  EXPECT_GT(h.quantile(0.99), 50000.0);
}

TEST(MetricsRegistry, StableReferencesAndSnapshot) {
  MetricsRegistry reg;
  Counter& a = reg.counter("alpha");
  Counter& a2 = reg.counter("alpha");
  EXPECT_EQ(&a, &a2);
  a.add(3);
  reg.counter("beta").add(1);
  reg.histogram("stage").record(5);

  auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[0].second, 3u);
  EXPECT_EQ(counters[1].first, "beta");

  auto histograms = reg.histograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].first, "stage");
  EXPECT_EQ(histograms[0].second.count, 1u);

  reg.reset();
  EXPECT_EQ(reg.counters()[0].second, 0u);
  EXPECT_EQ(reg.histograms()[0].second.count, 0u);
}

TEST(MetricsRegistry, StageTimingCsvShape) {
  MetricsRegistry reg;
  reg.histogram("isp.demosaic").record(2000000);  // 2 ms
  CsvWriter csv = stage_timing_csv(reg);
  std::string text = csv.str();
  EXPECT_NE(text.find("stage,count,total_ms"), std::string::npos);
  EXPECT_NE(text.find("isp.demosaic,1,2"), std::string::npos);
}

// ---- Tracer / ScopedSpan ----------------------------------------------------

TEST(Tracer, RecordsNestedSpansWithDepth) {
  TracerSandbox sandbox;
  {
    ScopedSpan outer("test", "outer");
    ScopedSpan inner("test", "inner");
  }
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner destructs first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  TracerSandbox sandbox;
  Tracer::global().set_enabled(false);
  {
    ScopedSpan span("test", "ignored");
  }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Tracer, SuspendTracingIsNestingSafe) {
  TracerSandbox sandbox;
  {
    SuspendTracing outer;
    EXPECT_FALSE(Tracer::global().enabled());
    {
      SuspendTracing inner;
      EXPECT_FALSE(Tracer::global().enabled());
    }
    EXPECT_FALSE(Tracer::global().enabled());
    ScopedSpan span("test", "suppressed");
  }
  EXPECT_TRUE(Tracer::global().enabled());
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Tracer, SpanFeedsHistogram) {
  TracerSandbox sandbox;
  Histogram h;
  {
    ScopedSpan span("test", "timed", &h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Tracer, ThreadsGetDistinctIds) {
  TracerSandbox sandbox;
  {
    ScopedSpan span("test", "main_thread");
  }
  std::thread([] { ScopedSpan span("test", "worker"); }).join();
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
}

TEST(Tracer, DroppedEventsAreCountedAgainstTheCap) {
  TracerSandbox sandbox;
  Tracer::global().set_max_events_per_thread(4);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test", "capped");
  }
  EXPECT_EQ(Tracer::global().size(), 4u);
  EXPECT_EQ(Tracer::global().dropped(), 6u);
}

TEST(Tracer, WorkerStagingFlushesAtThreadExit) {
  TracerSandbox sandbox;
  std::thread([] {
    for (int i = 0; i < 3; ++i) {
      ScopedSpan span("test", "worker_staged");
    }
    // No flush/snapshot here: fewer than kFlushChunk events sit in the
    // worker's staging vector until its thread-exit flush.
  }).join();
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (const SpanEvent& e : events) EXPECT_STREQ(e.name, "worker_staged");
}

TEST(Tracer, ChromeTraceJsonRoundTrips) {
  TracerSandbox sandbox;
  {
    ScopedSpan outer("isp", "pipeline");
    ScopedSpan inner("isp", "demosaic \"quoted\"");
  }
  std::string doc = chrome_trace_json(Tracer::global());
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"demosaic \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"isp\""), std::string::npos);
}

// The instrumentation macro must compile in both build flavors; it only
// produces spans when tracing is compiled in.
TEST(Tracer, MacroRespectsBuildFlavor) {
  TracerSandbox sandbox;
  {
    ES_TRACE_SCOPE("test", "macro_span");
    ES_COUNT("test.macro_count", 2);
  }
  if (kTracingCompiledIn) {
    EXPECT_EQ(Tracer::global().size(), 1u);
    EXPECT_GE(
        MetricsRegistry::global().counter("test.macro_count").value(), 2u);
  } else {
    EXPECT_EQ(Tracer::global().size(), 0u);
  }
}

// ---- RunManifest ------------------------------------------------------------

TEST(RunManifest, EmitsValidProvenanceJson) {
  RunManifest m("unit_test");
  m.set_seed(4242);
  m.set_wall_seconds(1.5);
  m.set_field("note", "hello \"world\"");
  m.set_field("objects", 30.0);
  m.add_digest("lab_rig", 0xdeadbeefcafef00dull);
  ManifestDevice d;
  d.name = "Samsung Galaxy S10";
  d.model_code = "SM-G973F";
  d.isp = "warm";
  d.format = "jpeg";
  d.quality = 85;
  d.soc = "Exynos 9820";
  d.digest = "0123456789abcdef";
  m.add_device(d);
  m.add_artifact("unit_test.csv");

  std::string doc = m.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema\":\"edgestab-run-manifest-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":4242"), std::string::npos);
  EXPECT_NE(doc.find("\"lab_rig\":\"deadbeefcafef00d\""), std::string::npos);
  EXPECT_NE(doc.find("\"Samsung Galaxy S10\""), std::string::npos);
  EXPECT_NE(doc.find("\"unit_test.csv\""), std::string::npos);
}

TEST(RunManifest, HexDigestIsZeroPadded) {
  EXPECT_EQ(hex_digest(0x1ull), "0000000000000001");
  EXPECT_EQ(hex_digest(UINT64_MAX), "ffffffffffffffff");
}

// ---- DriftAuditor -----------------------------------------------------------

TEST(DriftAuditor, TapComparesAgainstReferenceEnvironment) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  Image ref(16, 16, 3, 0.5f);
  Image cur(16, 16, 3, 0.6f);
  {
    DriftScope scope("unit", /*item=*/0, /*env=*/0);
    auditor.tap_stage(0, "demosaic", ref);
  }
  {
    DriftScope scope("unit", 0, 1);
    auditor.tap_stage(0, "demosaic", cur);
  }
  auto stages = auditor.stage_summaries();
  ASSERT_EQ(stages.size(), 1u);
  const StageDriftSummary& s = stages[0];
  EXPECT_EQ(s.group, "unit");
  EXPECT_EQ(s.stage, "demosaic");
  EXPECT_EQ(s.stage_index, 0);
  EXPECT_EQ(s.psnr_db.count, 1);
  // A constant 0.1 offset has MSE 0.01 -> PSNR 20 dB (the quantized
  // reference shifts it by a fraction of a dB).
  EXPECT_NEAR(s.psnr_db.mean(), 20.0, 0.3);
  EXPECT_NEAR(s.channel_mean_delta.mean(), 0.1, 1e-3);
  EXPECT_NEAR(s.channel_var_delta.mean(), 0.0, 1e-3);
  EXPECT_LT(s.ssim.mean(), 1.0);
  EXPECT_EQ(s.identical_pairs, 0);
  // The comparison also fed the registry histograms named in the summary.
  EXPECT_EQ(s.psnr_metric, "drift.unit.demosaic.psnr_mdb");
  EXPECT_EQ(
      MetricsRegistry::global().histogram(s.psnr_metric).count() >= 1, true);
  EXPECT_FALSE(is_timing_histogram(s.psnr_metric));
}

TEST(DriftAuditor, IdenticalImagesHitPsnrCap) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  Image img(8, 8, 3, 1.0f);  // 1.0 quantizes exactly
  {
    DriftScope scope("unit", 0, 0);
    auditor.tap_stage(1, "white_balance", img);
  }
  {
    DriftScope scope("unit", 0, 1);
    auditor.tap_stage(1, "white_balance", img);
  }
  auto stages = auditor.stage_summaries();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].identical_pairs, 1);
  EXPECT_DOUBLE_EQ(stages[0].psnr_db.mean(), DriftAuditor::kPsnrCapDb);
  EXPECT_DOUBLE_EQ(stages[0].ssim.mean(), 1.0);
}

TEST(DriftAuditor, TapWithoutScopeOrWhenDisabledIsIgnored) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  Image img(8, 8, 1, 0.5f);
  auditor.tap_stage(0, "demosaic", img);  // no DriftScope on this thread
  EXPECT_TRUE(auditor.stage_summaries().empty());

  auditor.set_enabled(false);
  {
    DriftScope scope("unit", 0, 0);
    auditor.tap_stage(0, "demosaic", img);
  }
  EXPECT_TRUE(auditor.stage_summaries().empty());
  auditor.set_enabled(true);
}

TEST(DriftAuditor, ItemCapSkipsAndCounts) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  auditor.set_max_audited_items(1);
  Image img(8, 8, 1, 0.25f);
  {
    DriftScope scope("cap", 0, 0);
    auditor.tap_stage(0, "demosaic", img);  // item 0 becomes the reference
  }
  {
    DriftScope scope("cap", 1, 0);
    auditor.tap_stage(0, "demosaic", img);  // item 1 is over the cap
  }
  {
    DriftScope scope("cap", 1, 1);
    auditor.tap_stage(0, "demosaic", img);  // still over the cap
  }
  EXPECT_EQ(auditor.skipped_items(), 2);
  {
    DriftScope scope("cap", 0, 1);
    auditor.tap_stage(0, "demosaic", img);  // item 0 still compares fine
  }
  auto stages = auditor.stage_summaries();
  ASSERT_EQ(stages.size(), 1u);
  EXPECT_EQ(stages[0].psnr_db.count, 1);
}

TEST(DriftAuditor, LogitDriftMetrics) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  std::vector<float> ref = {2.0f, 0.0f, 0.0f};
  std::vector<float> cur = {0.0f, 2.0f, 0.0f};
  auditor.record_logits("logits", 0, 0, ref);
  auditor.record_logits("logits", 0, 1, cur);
  auditor.record_logits("logits", 0, 0, ref);  // reference env: no self-compare
  auto summaries = auditor.logit_summaries();
  ASSERT_EQ(summaries.size(), 1u);
  const LogitDriftSummary& s = summaries[0];
  EXPECT_EQ(s.comparisons, 1);
  EXPECT_EQ(s.top1_agree, 0);  // argmax flipped 0 -> 1
  EXPECT_NEAR(s.l2.mean(), std::sqrt(8.0), 1e-5);
  EXPECT_NEAR(s.linf.mean(), 2.0, 1e-6);
  EXPECT_GT(s.kl.mean(), 0.0);
  EXPECT_NEAR(s.top1_margin.mean(), 2.0, 1e-6);
  EXPECT_EQ(s.l2_metric, "drift.logit.logits.l2_micro");
}

TEST(DriftAuditor, EnvLabelsDefaultAndOverride) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  EXPECT_EQ(auditor.env_label("g", 3), "env3");
  auditor.set_env_label("g", 3, "Samsung Galaxy S10");
  EXPECT_EQ(auditor.env_label("g", 3), "Samsung Galaxy S10");
}

TEST(DriftScope, NestedScopesRestoreOuterContext) {
  DriftSandbox sandbox;
  DriftAuditor& auditor = DriftAuditor::global();
  Image img(4, 4, 1, 0.5f);
  {
    DriftScope outer("outer", 0, 0);
    {
      DriftScope inner("inner", 7, 1);
      auditor.tap_stage(0, "demosaic", img);
    }
    auditor.tap_stage(0, "demosaic", img);
  }
  auto stages = auditor.stage_summaries();
  ASSERT_EQ(stages.size(), 2u);  // one slot per group, sorted by name
  EXPECT_EQ(stages[0].group, "inner");
  EXPECT_EQ(stages[1].group, "outer");
}

// ---- FlipLedger -------------------------------------------------------------

TEST(FlipLedger, MatchesInstabilitySemantics) {
  FlipLedger ledger;
  std::vector<FlipOutcome> outcomes = {
      // item 0 (class 3): env0 correct, env1 wrong — the one unstable item.
      {0, 0, true, 3, 3},
      {0, 1, false, 5, 3},
      // item 1: all environments correct.
      {1, 0, true, 2, 2},
      {1, 1, true, 2, 2},
      // item 2: all environments wrong — stays in the denominator.
      {2, 0, false, 1, 7},
      {2, 1, false, 4, 7},
      // item 3: a single observation is skipped entirely.
      {3, 0, true, 9, 9},
  };
  ledger.add_group("g", outcomes);
  auto s = ledger.find_group("g");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->total_items, 3);
  EXPECT_EQ(s->unstable_items, 1);
  EXPECT_EQ(s->all_correct_items, 1);
  EXPECT_EQ(s->all_incorrect_items, 1);
  EXPECT_DOUBLE_EQ(s->instability(), 1.0 / 3.0);
  EXPECT_EQ(s->flips_by_class.at(3), 1);
  EXPECT_EQ(s->unstable_by_class.at(3), 1);
  EXPECT_EQ(s->flips_by_pair.at({0, 1}), 1);
  ASSERT_EQ(s->entries.size(), 1u);
  EXPECT_EQ(s->entries[0].item, 0);
  EXPECT_EQ(s->entries[0].env_correct, 0);
  EXPECT_EQ(s->entries[0].env_incorrect, 1);
  EXPECT_EQ(s->entries[0].predicted_correct, 3);
  EXPECT_EQ(s->entries[0].predicted_incorrect, 5);
  EXPECT_EQ(s->dropped_entries, 0);
  EXPECT_FALSE(ledger.find_group("missing").has_value());
}

TEST(FlipLedger, AppendsToExistingGroup) {
  FlipLedger ledger;
  std::vector<FlipOutcome> first = {{0, 0, true, 1, 1}};
  std::vector<FlipOutcome> second = {{0, 1, false, 2, 1}};
  ledger.add_group("g", first);
  // One observation so far: the item is skipped.
  EXPECT_EQ(ledger.find_group("g")->total_items, 0);
  ledger.add_group("g", second);
  auto s = ledger.find_group("g");
  EXPECT_EQ(s->total_items, 1);
  EXPECT_EQ(s->unstable_items, 1);
}

TEST(FlipLedger, DigestTracksContent) {
  FlipLedger a;
  FlipLedger b;
  EXPECT_EQ(a.digest(), b.digest());
  std::vector<FlipOutcome> outcomes = {{0, 0, true, 1, 1},
                                       {0, 1, false, 2, 1}};
  a.add_group("g", outcomes);
  EXPECT_NE(a.digest(), b.digest());
  b.add_group("g", outcomes);
  EXPECT_EQ(a.digest(), b.digest());
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.digest(), FlipLedger().digest());
}

TEST(FlipLedger, MergeIsShardOrderIndependent) {
  // The same outcomes, recorded whole vs. sharded across two ledgers in
  // scrambled order (as per-thread shards would be), must merge to an
  // identical ledger: same tallies, entries and digest.
  std::vector<FlipOutcome> outcomes = {
      {0, 0, true, 3, 3},  {0, 1, false, 5, 3}, {1, 0, true, 2, 2},
      {1, 1, false, 4, 2}, {2, 0, false, 1, 7}, {2, 1, true, 7, 7},
  };
  FlipLedger whole;
  whole.add_group("g", outcomes);

  FlipLedger shard_a, shard_b;
  std::vector<FlipOutcome> a_part = {outcomes[3], outcomes[0], outcomes[5]};
  std::vector<FlipOutcome> b_part = {outcomes[4], outcomes[2], outcomes[1]};
  shard_a.add_group("g", a_part);
  shard_b.add_group("g", b_part);

  FlipLedger merged_ab, merged_ba;
  merged_ab.merge(shard_a);
  merged_ab.merge(shard_b);
  merged_ba.merge(shard_b);
  merged_ba.merge(shard_a);

  EXPECT_EQ(merged_ab.digest(), whole.digest());
  EXPECT_EQ(merged_ba.digest(), whole.digest());
  auto s = merged_ab.find_group("g");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->total_items, 3);
  EXPECT_EQ(s->unstable_items, 3);
  ASSERT_EQ(s->entries.size(), whole.find_group("g")->entries.size());
  for (std::size_t i = 0; i < s->entries.size(); ++i) {
    EXPECT_EQ(s->entries[i].item,
              whole.find_group("g")->entries[i].item);
    EXPECT_EQ(s->entries[i].env_correct,
              whole.find_group("g")->entries[i].env_correct);
  }
}

// ---- Fault ledger -----------------------------------------------------------

FaultEvent fault_event(FaultEventKind kind, int device, int item, int shot,
                       int attempt = 0, double detail = 0.0) {
  return FaultEvent{kind, device, item, shot, attempt, false, detail};
}

TEST(FaultLedger, SummariesTallyPerDeviceAndKind) {
  FaultLedger ledger;
  ledger.record("g", fault_event(FaultEventKind::kCaptureDropout, 0, 1, 0));
  ledger.record("g", fault_event(FaultEventKind::kShotLost, 0, 1, 0, 0, 1));
  ledger.record("g",
                fault_event(FaultEventKind::kPayloadBitFlip, 1, 2, 0, 0, 3));
  ledger.record("g",
                fault_event(FaultEventKind::kStragglerDelay, 1, 2, 0, 0, 80));
  ledger.record("g", fault_event(FaultEventKind::kRetry, 1, 2, 0, 1, 20));
  ledger.record("g", fault_event(FaultEventKind::kQuarantine, 1, 4, 0, 0, 2));
  ledger.record("other", fault_event(FaultEventKind::kShotLost, 0, 0, 0));

  auto g = ledger.find_group("g");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->total_events, 6);
  EXPECT_EQ(g->shots_lost, 1);
  EXPECT_EQ(g->quarantined_devices, 1);
  ASSERT_EQ(g->devices.size(), 2u);
  EXPECT_EQ(g->devices[0].device, 0);
  EXPECT_EQ(g->devices[0].dropouts, 1);
  EXPECT_EQ(g->devices[0].shots_lost, 1);
  EXPECT_FALSE(g->devices[0].quarantined);
  EXPECT_EQ(g->devices[1].device, 1);
  EXPECT_EQ(g->devices[1].payload_bit_flips, 1);
  EXPECT_EQ(g->devices[1].stragglers, 1);
  EXPECT_EQ(g->devices[1].retries, 1);
  // Straggler + backoff time both land in the synthetic delay total.
  EXPECT_DOUBLE_EQ(g->devices[1].total_delay_ms, 100.0);
  EXPECT_TRUE(g->devices[1].quarantined);
  EXPECT_EQ(g->devices[1].quarantined_from_item, 4);

  EXPECT_FALSE(ledger.find_group("missing").has_value());
  ASSERT_TRUE(ledger.find_group("other").has_value());
  EXPECT_EQ(ledger.find_group("other")->shots_lost, 1);
}

TEST(FaultLedger, EntriesAreCanonicallySorted) {
  // Record in scrambled (completion) order; the summary must come back
  // in coordinate order regardless.
  FaultLedger ledger;
  ledger.record("g", fault_event(FaultEventKind::kShotLost, 1, 0, 1));
  ledger.record("g", fault_event(FaultEventKind::kCaptureDropout, 0, 2, 0));
  ledger.record("g", fault_event(FaultEventKind::kCaptureDropout, 1, 0, 0));
  ledger.record("g", fault_event(FaultEventKind::kCaptureDropout, 0, 1, 0));

  auto g = ledger.find_group("g");
  ASSERT_TRUE(g.has_value());
  ASSERT_EQ(g->entries.size(), 4u);
  for (std::size_t i = 1; i < g->entries.size(); ++i) {
    const FaultEvent& a = g->entries[i - 1];
    const FaultEvent& b = g->entries[i];
    EXPECT_LE(std::tie(a.device, a.item, a.shot),
              std::tie(b.device, b.item, b.shot));
  }
  EXPECT_EQ(g->entries[0].device, 0);
  EXPECT_EQ(g->entries[0].item, 1);
}

TEST(FaultLedger, MergeIsShardOrderIndependent) {
  // The same events recorded whole vs. sharded across two ledgers in
  // scrambled order (as parallel lanes would) must merge to identical
  // tallies and digest — the property the faulted determinism test
  // leans on.
  std::vector<FaultEvent> events = {
      fault_event(FaultEventKind::kCaptureDropout, 0, 0, 0),
      fault_event(FaultEventKind::kShotLost, 0, 0, 0, 0, 1),
      fault_event(FaultEventKind::kPayloadBitFlip, 1, 1, 0, 0, 2),
      fault_event(FaultEventKind::kRetry, 1, 1, 0, 1, 20),
      fault_event(FaultEventKind::kShotLost, 2, 3, 1, 1, 2),
      fault_event(FaultEventKind::kQuarantine, 2, 4, 0, 0, 2),
  };
  FaultLedger whole;
  for (const FaultEvent& e : events) whole.record("g", e);

  FaultLedger shard_a, shard_b;
  for (std::size_t i : {3u, 0u, 5u}) shard_a.record("g", events[i]);
  for (std::size_t i : {4u, 2u, 1u}) shard_b.record("g", events[i]);

  FaultLedger merged_ab, merged_ba;
  merged_ab.merge(shard_a);
  merged_ab.merge(shard_b);
  merged_ba.merge(shard_b);
  merged_ba.merge(shard_a);

  EXPECT_EQ(merged_ab.digest(), whole.digest());
  EXPECT_EQ(merged_ba.digest(), whole.digest());
  auto s = merged_ab.find_group("g");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->total_events, 6);
  EXPECT_EQ(s->shots_lost, 2);
  EXPECT_EQ(s->quarantined_devices, 1);
}

TEST(FaultLedger, DigestTracksContentAndClearResets) {
  FaultLedger a, b;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.digest(), b.digest());
  a.record("g", fault_event(FaultEventKind::kShotLost, 0, 0, 0));
  EXPECT_FALSE(a.empty());
  EXPECT_NE(a.digest(), b.digest());
  b.record("g", fault_event(FaultEventKind::kShotLost, 0, 0, 0));
  EXPECT_EQ(a.digest(), b.digest());
  // Same coordinates, different kind -> different digest.
  FaultLedger c;
  c.record("g", fault_event(FaultEventKind::kCaptureDropout, 0, 0, 0));
  EXPECT_NE(a.digest(), c.digest());
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.digest(), FaultLedger().digest());
}

// ---- Drift report exporters -------------------------------------------------

// Feed the auditor one of everything so the report sections are all
// populated.
void feed_auditor_for_report() {
  DriftAuditor& auditor = DriftAuditor::global();
  Image a(8, 8, 3, 1.0f);
  Image b(8, 8, 3, 0.25f);
  {
    DriftScope scope("report", 0, 0);
    auditor.tap_stage(0, "demosaic", a);
  }
  {
    DriftScope scope("report", 0, 1);
    auditor.tap_stage(0, "demosaic", b);
  }
  std::vector<float> ref = {2.0f, 0.0f};
  std::vector<float> cur = {0.0f, 2.0f};
  auditor.record_logits("report", 0, 0, ref);
  auditor.record_logits("report", 0, 1, cur);
  auditor.set_env_label("report", 0, "ref phone");
  auditor.set_env_label("report", 1, "drifty <phone>");
  std::vector<FlipOutcome> outcomes = {{0, 0, true, 1, 1},
                                       {0, 1, false, 2, 1}};
  auditor.record_flips("report", outcomes);
}

TEST(DriftReport, JsonIsValidAndComplete) {
  DriftSandbox sandbox;
  feed_auditor_for_report();
  std::string doc = drift_json(DriftAuditor::global(), "unit_report");
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema\":\"edgestab-drift-report-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit_report\""), std::string::npos);
  EXPECT_NE(doc.find("\"stage_drift\""), std::string::npos);
  EXPECT_NE(doc.find("\"stage\":\"demosaic\""), std::string::npos);
  EXPECT_NE(doc.find("\"logit_drift\""), std::string::npos);
  EXPECT_NE(doc.find("\"flip_ledger\""), std::string::npos);
  EXPECT_NE(doc.find("\"unstable_items\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"env_correct_label\":\"ref phone\""),
            std::string::npos);
}

TEST(DriftReport, HtmlIsSelfContainedAndEscaped) {
  DriftSandbox sandbox;
  feed_auditor_for_report();
  std::string doc = drift_html(DriftAuditor::global(), "unit_report");
  EXPECT_NE(doc.find("<html"), std::string::npos);
  EXPECT_NE(doc.find("<style>"), std::string::npos);
  EXPECT_NE(doc.find("id=\"stage-drift\""), std::string::npos);
  EXPECT_NE(doc.find("id=\"logit-drift\""), std::string::npos);
  EXPECT_NE(doc.find("demosaic"), std::string::npos);
  // Env labels are user data and must come out HTML-escaped.
  EXPECT_NE(doc.find("drifty &lt;phone&gt;"), std::string::npos);
  EXPECT_EQ(doc.find("drifty <phone>"), std::string::npos);
  // Self-contained: no external assets.
  EXPECT_EQ(doc.find("http://"), std::string::npos);
  EXPECT_EQ(doc.find("https://"), std::string::npos);
}

// ---- export_run_artifacts ---------------------------------------------------

TEST(ExportRunArtifacts, WritesManifestAndFlavorArtifacts) {
  TracerSandbox tracer_sandbox;
  DriftSandbox drift_sandbox;
  feed_auditor_for_report();
  {
    ScopedSpan span("test", "exported_span");
  }
  namespace fs = std::filesystem;
  fs::path dir = scratch_dir("es_export_ok");
  RunManifest m("unit_export");
  EXPECT_TRUE(export_run_artifacts("unit_export", dir.string(), m));
  EXPECT_TRUE(fs::exists(dir / "unit_export.meta.json"));
  EXPECT_EQ(fs::exists(dir / "unit_export.trace.json"), kTracingCompiledIn);
  EXPECT_EQ(fs::exists(dir / "unit_export_stage_timing.csv"),
            kTracingCompiledIn);
  // Drift artifacts follow the drift build flavor (the auditor is
  // enabled, so only compilation gates them).
  EXPECT_EQ(fs::exists(dir / "unit_export.drift.json"), kDriftCompiledIn);
  EXPECT_EQ(fs::exists(dir / "unit_export.drift.html"), kDriftCompiledIn);
  std::string manifest_doc = m.to_json();
  EXPECT_TRUE(JsonChecker(manifest_doc).valid());
  if (kDriftCompiledIn) {
    EXPECT_NE(manifest_doc.find("\"drift_report\""), std::string::npos);
    EXPECT_NE(manifest_doc.find("\"drift_flip_ledger\""), std::string::npos);
    EXPECT_NE(manifest_doc.find("unit_export.drift.json"), std::string::npos);
  } else {
    EXPECT_EQ(manifest_doc.find("\"drift_report\""), std::string::npos);
  }
  fs::remove_all(dir);
}

TEST(ExportRunArtifacts, FailsWhenOutDirIsNotWritable) {
  TracerSandbox tracer_sandbox;
  namespace fs = std::filesystem;
  fs::path blocker = fs::path(testing::TempDir()) / "es_export_blocked";
  fs::remove_all(blocker);
  {
    std::ofstream out(blocker);
    out << "a file, not a directory";
  }
  RunManifest m("unit_blocked");
  // Every artifact path runs through the blocking file, so every write —
  // including the manifest — fails and the export reports it.
  EXPECT_FALSE(
      export_run_artifacts("unit_blocked", (blocker / "deeper").string(), m));
  fs::remove_all(blocker);
}

TEST(ExportRunArtifacts, DroppedSpansFailTheExport) {
  if (!kTracingCompiledIn) GTEST_SKIP() << "tracing compiled out";
  TracerSandbox sandbox;
  Tracer::global().set_max_events_per_thread(1);
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span("test", "overflow");
  }
  ASSERT_GT(Tracer::global().dropped(), 0u);
  namespace fs = std::filesystem;
  fs::path dir = scratch_dir("es_export_dropped");
  RunManifest m("unit_dropped");
  EXPECT_FALSE(export_run_artifacts("unit_dropped", dir.string(), m));
  // The artifacts themselves still land: an incomplete trace is flagged
  // through the exit code, not by suppressing the files.
  EXPECT_TRUE(fs::exists(dir / "unit_dropped.trace.json"));
  EXPECT_TRUE(fs::exists(dir / "unit_dropped.meta.json"));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace edgestab::obs
