// Unit tests for the observability layer: JSON writer output and
// escaping, histogram bucketing and quantiles, registry behavior, span
// recording/nesting/suspension, Chrome-trace export (validated with a
// minimal JSON parser), and the provenance manifest document.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>

#include "obs/json.h"
#include "obs/obs.h"
#include "util/check.h"
#include "util/csv.h"

namespace edgestab::obs {
namespace {

// ---- Minimal recursive-descent JSON validator -------------------------------
// Enough grammar to prove the exporters emit well-formed documents without
// pulling in a JSON dependency. Returns true iff the whole input is one
// valid JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(const char* word) {
    std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Restores the tracer to a clean, disabled state around each span test so
// tests do not leak state into one another.
struct TracerSandbox {
  TracerSandbox() {
    Tracer::global().clear();
    Tracer::global().set_enabled(true);
  }
  ~TracerSandbox() {
    Tracer::global().set_enabled(false);
    Tracer::global().clear();
  }
};

// ---- JsonWriter -------------------------------------------------------------

TEST(JsonWriter, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b");
  w.begin_array();
  w.value("x").value(2.5).value(true);
  w.end_array();
  w.key("c").value("z");
  w.end_object();
  EXPECT_EQ(w.take(), R"({"a":1,"b":["x",2.5,true],"c":"z"})");
}

TEST(JsonWriter, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("q\"b\\s\n\t"), "q\\\"b\\\\s\\n\\t");
  // Control characters must come out as \u00xx escapes.
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, EmptyContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list");
  w.begin_array();
  w.end_array();
  w.key("obj");
  w.begin_object();
  w.end_object();
  w.end_object();
  std::string doc = w.take();
  EXPECT_EQ(doc, R"({"list":[],"obj":{}})");
  EXPECT_TRUE(JsonChecker(doc).valid());
}

TEST(JsonWriter, UnbalancedNestingIsRejected) {
  JsonWriter w;
  w.begin_object();
  EXPECT_THROW(w.take(), CheckError);
}

// ---- Counter / Histogram ----------------------------------------------------

TEST(Counter, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v : {1, 2, 3, 4, 5, 6, 7}) h.record(v);
  // Values below kSubBuckets land in unit-width buckets, so quantiles on
  // this input are exact order statistics.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  EXPECT_EQ(h.count(), 7u);
  EXPECT_EQ(h.sum(), 28u);
}

TEST(Histogram, BucketIndexMonotonicAndBounded) {
  int prev = -1;
  for (std::uint64_t v = 0; v < 100000; v = v < 16 ? v + 1 : v * 2) {
    int idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
  EXPECT_LT(Histogram::bucket_index(UINT64_MAX), Histogram::kBucketCount);
}

TEST(Histogram, LargeValueQuantilesWithinRelativeError) {
  Histogram h;
  // 100 samples at exactly 1e6 ns: every quantile must come back within
  // the documented <= 1/16 relative bucket error.
  for (int i = 0; i < 100; ++i) h.record(1000000);
  for (double q : {0.5, 0.95, 0.99}) {
    double est = h.quantile(q);
    EXPECT_NEAR(est, 1e6, 1e6 / 16.0) << "q=" << q;
  }
  HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1000000u);
  EXPECT_EQ(s.max, 1000000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1e6);
}

TEST(Histogram, MixedDistributionQuantileOrdering) {
  Histogram h;
  for (int i = 0; i < 95; ++i) h.record(100);
  for (int i = 0; i < 5; ++i) h.record(100000);
  // p50 sits in the bulk, p99 in the tail — the orders of magnitude must
  // not blur together.
  EXPECT_LT(h.quantile(0.5), 200.0);
  EXPECT_GT(h.quantile(0.99), 50000.0);
}

TEST(MetricsRegistry, StableReferencesAndSnapshot) {
  MetricsRegistry reg;
  Counter& a = reg.counter("alpha");
  Counter& a2 = reg.counter("alpha");
  EXPECT_EQ(&a, &a2);
  a.add(3);
  reg.counter("beta").add(1);
  reg.histogram("stage").record(5);

  auto counters = reg.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "alpha");
  EXPECT_EQ(counters[0].second, 3u);
  EXPECT_EQ(counters[1].first, "beta");

  auto histograms = reg.histograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].first, "stage");
  EXPECT_EQ(histograms[0].second.count, 1u);

  reg.reset();
  EXPECT_EQ(reg.counters()[0].second, 0u);
  EXPECT_EQ(reg.histograms()[0].second.count, 0u);
}

TEST(MetricsRegistry, StageTimingCsvShape) {
  MetricsRegistry reg;
  reg.histogram("isp.demosaic").record(2000000);  // 2 ms
  CsvWriter csv = stage_timing_csv(reg);
  std::string text = csv.str();
  EXPECT_NE(text.find("stage,count,total_ms"), std::string::npos);
  EXPECT_NE(text.find("isp.demosaic,1,2"), std::string::npos);
}

// ---- Tracer / ScopedSpan ----------------------------------------------------

TEST(Tracer, RecordsNestedSpansWithDepth) {
  TracerSandbox sandbox;
  {
    ScopedSpan outer("test", "outer");
    ScopedSpan inner("test", "inner");
  }
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Inner destructs first, so it is recorded first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[1].duration_ns, events[0].duration_ns);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  TracerSandbox sandbox;
  Tracer::global().set_enabled(false);
  {
    ScopedSpan span("test", "ignored");
  }
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Tracer, SuspendTracingIsNestingSafe) {
  TracerSandbox sandbox;
  {
    SuspendTracing outer;
    EXPECT_FALSE(Tracer::global().enabled());
    {
      SuspendTracing inner;
      EXPECT_FALSE(Tracer::global().enabled());
    }
    EXPECT_FALSE(Tracer::global().enabled());
    ScopedSpan span("test", "suppressed");
  }
  EXPECT_TRUE(Tracer::global().enabled());
  EXPECT_EQ(Tracer::global().size(), 0u);
}

TEST(Tracer, SpanFeedsHistogram) {
  TracerSandbox sandbox;
  Histogram h;
  {
    ScopedSpan span("test", "timed", &h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Tracer, ThreadsGetDistinctIds) {
  TracerSandbox sandbox;
  {
    ScopedSpan span("test", "main_thread");
  }
  std::thread([] { ScopedSpan span("test", "worker"); }).join();
  auto events = Tracer::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_id, events[1].thread_id);
}

TEST(Tracer, ChromeTraceJsonRoundTrips) {
  TracerSandbox sandbox;
  {
    ScopedSpan outer("isp", "pipeline");
    ScopedSpan inner("isp", "demosaic \"quoted\"");
  }
  std::string doc = chrome_trace_json(Tracer::global());
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"demosaic \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"cat\":\"isp\""), std::string::npos);
}

// The instrumentation macro must compile in both build flavors; it only
// produces spans when tracing is compiled in.
TEST(Tracer, MacroRespectsBuildFlavor) {
  TracerSandbox sandbox;
  {
    ES_TRACE_SCOPE("test", "macro_span");
    ES_COUNT("test.macro_count", 2);
  }
  if (kTracingCompiledIn) {
    EXPECT_EQ(Tracer::global().size(), 1u);
    EXPECT_GE(
        MetricsRegistry::global().counter("test.macro_count").value(), 2u);
  } else {
    EXPECT_EQ(Tracer::global().size(), 0u);
  }
}

// ---- RunManifest ------------------------------------------------------------

TEST(RunManifest, EmitsValidProvenanceJson) {
  RunManifest m("unit_test");
  m.set_seed(4242);
  m.set_wall_seconds(1.5);
  m.set_field("note", "hello \"world\"");
  m.set_field("objects", 30.0);
  m.add_digest("lab_rig", 0xdeadbeefcafef00dull);
  ManifestDevice d;
  d.name = "Samsung Galaxy S10";
  d.model_code = "SM-G973F";
  d.isp = "warm";
  d.format = "jpeg";
  d.quality = 85;
  d.soc = "Exynos 9820";
  d.digest = "0123456789abcdef";
  m.add_device(d);
  m.add_artifact("unit_test.csv");

  std::string doc = m.to_json();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"schema\":\"edgestab-run-manifest-v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"bench\":\"unit_test\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\":4242"), std::string::npos);
  EXPECT_NE(doc.find("\"lab_rig\":\"deadbeefcafef00d\""), std::string::npos);
  EXPECT_NE(doc.find("\"Samsung Galaxy S10\""), std::string::npos);
  EXPECT_NE(doc.find("\"unit_test.csv\""), std::string::npos);
}

TEST(RunManifest, HexDigestIsZeroPadded) {
  EXPECT_EQ(hex_digest(0x1ull), "0000000000000001");
  EXPECT_EQ(hex_digest(UINT64_MAX), "ffffffffffffffff");
}

}  // namespace
}  // namespace edgestab::obs
