// Unit tests for the fleet health telemetry stack: registry windowing
// and quantization, merge/digest order-independence, the anomaly
// engine's absolute and robust-z rules (with denominator and fleet-size
// gating), the per-device status state machine, the canonical alert
// ledger, the fleet.json round trip, the events.jsonl shape, and HTML
// escaping of hostile device labels in the dashboard.
//
// Registry-feeding tests skip when telemetry is compiled out
// (EDGESTAB_TELEMETRY=OFF folds every record hook to a dead test); the
// anomaly engine, alert ledger and exporters operate on hand-built
// structures and run in both flavors.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "obs/telemetry/alert_ledger.h"
#include "obs/telemetry/anomaly.h"
#include "obs/telemetry/fleet_report.h"
#include "obs/telemetry/telemetry.h"

namespace edgestab::obs {
namespace {

// A window stats row with enough backing samples to clear every
// default rule's min_denominator gate.
DeviceWindowStats window_stats(int window, int window_items) {
  DeviceWindowStats w;
  w.window = window;
  w.item_lo = window * window_items;
  w.item_hi = w.item_lo + window_items;
  w.observations = 8;
  w.shots = 8;
  return w;
}

DeviceHealth device_row(int device, const std::string& label) {
  DeviceHealth d;
  d.device = device;
  d.label = label;
  return d;
}

// A hand-built two-alert report for the exporter tests.
FleetHealthReport sample_report() {
  FleetHealthReport report;
  report.fleet.window_items = 4;

  DeviceHealth d0 = device_row(0, "Pixel 4a");
  DeviceWindowStats w0 = window_stats(0, 4);
  w0.flipped_items = 1;
  w0.flip_rate = 0.125;
  w0.latency_p50_ms = 1.5;
  w0.latency_p99_ms = 9.25;
  d0.windows.push_back(w0);
  d0.observations = 8;
  d0.flip_rate = 0.125;
  report.fleet.devices.push_back(d0);

  DeviceHealth d1 = device_row(1, "LG K10 LTE");
  d1.status = HealthStatus::kQuarantined;
  DeviceWindowStats w1 = window_stats(0, 4);
  w1.shots_lost = 4;
  w1.loss_rate = 0.5;
  w1.quarantined = true;
  w1.quarantine_item = 2;
  d1.windows.push_back(w1);
  d1.transitions.push_back({0, 0, HealthStatus::kHealthy,
                            HealthStatus::kQuarantined,
                            "quarantined from item 2"});
  report.fleet.devices.push_back(d1);

  Alert loss;
  loss.rule = "loss_rate_high";
  loss.metric = "loss_rate";
  loss.severity = AlertSeverity::kCritical;
  loss.device = 1;
  loss.device_label = "LG K10 LTE";
  loss.window = 0;
  loss.item_lo = 0;
  loss.item_hi = 4;
  loss.value = 0.5;
  loss.threshold = 0.25;
  loss.numerator = 4;
  loss.denominator = 8;
  loss.detail = "loss_rate=0.5 > 0.25";
  report.alerts.record(loss);

  Alert quarantine;
  quarantine.rule = "device_quarantined";
  quarantine.metric = "quarantine";
  quarantine.severity = AlertSeverity::kCritical;
  quarantine.device = 1;
  quarantine.device_label = "LG K10 LTE";
  quarantine.window = 0;
  quarantine.item_lo = 0;
  quarantine.item_hi = 4;
  quarantine.item = 2;
  quarantine.value = 1.0;
  quarantine.detail = "resilience policy quarantined device from item 2";
  report.alerts.record(quarantine);

  report.alerts_total = 2;
  report.alerts_critical = 2;
  report.devices_quarantined = 1;
  return report;
}

// ---- Registry -------------------------------------------------------------

TEST(Telemetry, DisabledRegistryRecordsNothing) {
  DeviceHealthRegistry registry;  // never enabled
  registry.record_observation(0, 0, false, true);
  registry.record_shot(0, 0, 0, 1, true, 3.0, 1);
  EXPECT_TRUE(registry.empty());
  EXPECT_TRUE(registry.snapshot().empty());
}

TEST(Telemetry, RegistryWindowsQuantizesAndDerivesRates) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  DeviceHealthRegistry registry;
  registry.set_enabled(true);
  registry.set_window_items(4);
  registry.set_device_label(0, "Pixel 4a");

  // Window 0: items 0-3. Two flips out of four observations.
  for (int item = 0; item < 4; ++item)
    registry.record_observation(0, item, item >= 2, item < 2);
  // Window 1: item 5 only.
  registry.record_observation(0, 5, true, false);
  // Latency multiset in window 0: 0.25, 1.0005 (rounds to 1001 us), 4.0.
  registry.record_shot(0, 0, 0, 1, false, 4.0, 0);
  registry.record_shot(0, 1, 0, 2, false, 0.25, 1);
  registry.record_shot(0, 2, 0, 1, true, 1.0005, 2);
  registry.record_stage_drift(0, 0, 30.0);
  registry.record_stage_drift(0, 1, 18.5);
  registry.record_coverage(0, 3, 4);
  registry.record_coverage(0, 2, 4);

  FleetHealthSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.devices.size(), 1u);
  const DeviceHealth& d = snap.devices[0];
  EXPECT_EQ(d.label, "Pixel 4a");
  EXPECT_EQ(d.coverage_usable, 5);
  EXPECT_EQ(d.coverage_slots, 8);
  ASSERT_EQ(d.windows.size(), 2u);

  const DeviceWindowStats& w0 = d.windows[0];
  EXPECT_EQ(w0.window, 0);
  EXPECT_EQ(w0.item_lo, 0);
  EXPECT_EQ(w0.item_hi, 4);
  EXPECT_EQ(w0.observations, 4);
  EXPECT_EQ(w0.flipped_items, 2);
  EXPECT_EQ(w0.incorrect_items, 2);
  EXPECT_DOUBLE_EQ(w0.flip_rate, 0.5);
  EXPECT_EQ(w0.shots, 3);
  EXPECT_EQ(w0.shots_lost, 1);
  EXPECT_EQ(w0.retries, 1);  // attempts=2 => one retry
  EXPECT_EQ(w0.fault_events, 3);
  EXPECT_DOUBLE_EQ(w0.loss_rate, 1.0 / 3.0);
  // Nearest-rank percentiles over the sorted microsecond multiset
  // {250, 1001, 4000}: p50 = 1001 us (note the half-microsecond round).
  EXPECT_DOUBLE_EQ(w0.latency_p50_ms, 1.001);
  EXPECT_DOUBLE_EQ(w0.latency_p99_ms, 4.0);
  EXPECT_DOUBLE_EQ(w0.latency_max_ms, 4.0);
  EXPECT_EQ(w0.drift_comparisons, 2);
  EXPECT_DOUBLE_EQ(w0.drift_psnr_db_min, 18.5);
  EXPECT_DOUBLE_EQ(w0.drift_psnr_db_mean, 24.25);

  const DeviceWindowStats& w1 = d.windows[1];
  EXPECT_EQ(w1.window, 1);
  EXPECT_EQ(w1.item_lo, 4);
  EXPECT_EQ(w1.observations, 1);
  EXPECT_EQ(w1.shots, 0);
  EXPECT_DOUBLE_EQ(w1.latency_p99_ms, 0.0);
}

TEST(Telemetry, RegistryMergeAndDigestAreOrderIndependent) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  auto feed = [](DeviceHealthRegistry& r, bool reversed) {
    struct Event {
      int device, item;
      double latency;
      bool lost;
    };
    std::vector<Event> events = {{0, 0, 1.0, false}, {0, 9, 2.5, true},
                                 {1, 3, 0.0, false}, {1, 17, 7.75, false},
                                 {0, 4, 3.25, true}, {1, 0, 0.5, false}};
    if (reversed) std::reverse(events.begin(), events.end());
    for (const Event& e : events)
      r.record_shot(e.device, e.item, 0, 1, e.lost, e.latency, 0);
    r.record_quarantine(1, 5);
    r.record_stage_drift(0, 2, 21.5);
  };

  DeviceHealthRegistry forward, backward;
  forward.set_enabled(true);
  backward.set_enabled(true);
  forward.set_window_items(8);
  backward.set_window_items(8);
  feed(forward, false);
  feed(backward, true);
  EXPECT_EQ(forward.digest(), backward.digest());

  // Sharded feed + merge must land on the same digest.
  DeviceHealthRegistry shard_a, shard_b, merged;
  for (DeviceHealthRegistry* r : {&shard_a, &shard_b, &merged}) {
    r->set_enabled(true);
    r->set_window_items(8);
  }
  feed(shard_a, false);
  feed(shard_b, true);
  merged.merge(shard_a);
  DeviceHealthRegistry doubled;
  doubled.set_enabled(true);
  doubled.set_window_items(8);
  feed(doubled, false);
  feed(doubled, true);
  merged.merge(shard_b);
  EXPECT_EQ(merged.digest(), doubled.digest());
}

TEST(Telemetry, RegistryClearPreservesEnabled) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  DeviceHealthRegistry registry;
  registry.set_enabled(true);
  registry.record_shot(0, 0, 0, 1, false, 1.0, 0);
  registry.record_quarantine(0, 0);
  EXPECT_FALSE(registry.empty());
  EXPECT_EQ(registry.live_alert_count(), 1);
  registry.clear();
  EXPECT_TRUE(registry.empty());
  EXPECT_EQ(registry.live_alert_count(), 0);
  EXPECT_TRUE(registry.enabled());
  registry.record_shot(0, 0, 0, 1, false, 1.0, 0);
  EXPECT_FALSE(registry.empty());
}

TEST(Telemetry, LiveAlertHeuristicCountsLossBursts) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  DeviceHealthRegistry registry;
  registry.set_enabled(true);
  for (long long i = 0; i < DeviceHealthRegistry::kLiveLossAlertShots - 1; ++i)
    registry.record_shot(0, 0, static_cast<int>(i), 1, true, 0.0, 0);
  EXPECT_EQ(registry.live_alert_count(), 0);
  registry.record_capture_loss(0, 1, 0, 0);  // crosses the burst threshold
  EXPECT_EQ(registry.live_alert_count(), 1);
  registry.record_shot(0, 2, 0, 1, true, 0.0, 0);  // same bucket: no re-count
  EXPECT_EQ(registry.live_alert_count(), 1);
}

// ---- Anomaly engine -------------------------------------------------------

TEST(Telemetry, AbsoluteRuleFiresAndGatesOnDenominator) {
  FleetHealthSnapshot snap;
  snap.window_items = 4;
  DeviceHealth d = device_row(0, "solo");
  DeviceWindowStats sick = window_stats(0, 4);
  sick.shots_lost = 4;
  sick.loss_rate = 0.5;
  DeviceWindowStats thin = window_stats(1, 4);
  thin.shots = 2;  // under loss_rate_high's min_denominator of 4
  thin.shots_lost = 2;
  thin.loss_rate = 1.0;
  d.windows.push_back(sick);
  d.windows.push_back(thin);
  snap.devices.push_back(d);

  AlertLedger ledger = AnomalyEngine().evaluate(snap);
  int loss_alerts = 0;
  for (const Alert& a : ledger.alerts()) {
    if (a.rule != "loss_rate_high") continue;
    ++loss_alerts;
    EXPECT_EQ(a.window, 0);
    EXPECT_EQ(a.severity, AlertSeverity::kCritical);
    EXPECT_EQ(a.numerator, 4);
    EXPECT_EQ(a.denominator, 8);
    EXPECT_DOUBLE_EQ(a.value, 0.5);
  }
  EXPECT_EQ(loss_alerts, 1) << "window 1 must be gated by min_denominator";
}

TEST(Telemetry, RobustZFlagsOutlierAgainstFleetCrossSection) {
  FleetHealthSnapshot snap;
  snap.window_items = 4;
  for (int device = 0; device < 4; ++device) {
    DeviceHealth d = device_row(device, "phone" + std::to_string(device));
    DeviceWindowStats w = window_stats(0, 4);
    if (device == 3) {
      w.flipped_items = 3;
      w.flip_rate = 0.375;  // under flip_rate_high's 0.5, over the 0.15 floor
    }
    d.windows.push_back(w);
    snap.devices.push_back(d);
  }
  AlertLedger ledger = AnomalyEngine().evaluate(snap);
  int outliers = 0;
  for (const Alert& a : ledger.alerts()) {
    EXPECT_NE(a.rule, "flip_rate_high") << "no device crossed the absolute bar";
    if (a.rule != "flip_rate_outlier") continue;
    ++outliers;
    EXPECT_EQ(a.device, 3);
    EXPECT_DOUBLE_EQ(a.baseline, 0.0);      // fleet median
    EXPECT_DOUBLE_EQ(a.threshold, 0.15);    // MAD 0 => abs_floor band
    EXPECT_EQ(a.numerator, 3);
  }
  EXPECT_EQ(outliers, 1);
}

TEST(Telemetry, RobustZNeedsMinimumFleetSize) {
  FleetHealthSnapshot snap;
  snap.window_items = 4;
  for (int device = 0; device < AnomalyEngine::kMinDevices - 1; ++device) {
    DeviceHealth d = device_row(device, "phone" + std::to_string(device));
    DeviceWindowStats w = window_stats(0, 4);
    if (device == 0) {
      w.flipped_items = 3;
      w.flip_rate = 0.375;
    }
    d.windows.push_back(w);
    snap.devices.push_back(d);
  }
  AlertLedger ledger = AnomalyEngine().evaluate(snap);
  for (const Alert& a : ledger.alerts())
    EXPECT_NE(a.rule, "flip_rate_outlier")
        << "a two-device cross-section cannot call outliers";
}

// ---- Status state machine -------------------------------------------------

TEST(Telemetry, StatusMachineDegradesAndRecovers) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  DeviceHealthRegistry registry;
  registry.set_enabled(true);
  registry.set_window_items(4);
  // Window 0: half the shots lost => loss_rate_high pages. Windows 1-2:
  // clean => recovery after kRecoveryWindows.
  for (int shot = 0; shot < 8; ++shot)
    registry.record_shot(0, shot % 4, shot, 1, shot < 4, 0.0, 0);
  for (int item = 4; item < 12; ++item) {
    registry.record_shot(0, item, 0, 1, false, 0.0, 0);
    registry.record_shot(0, item, 1, 1, false, 0.0, 0);
  }
  FleetHealthReport report = evaluate_fleet_health(registry);
  ASSERT_EQ(report.fleet.devices.size(), 1u);
  const DeviceHealth& d = report.fleet.devices[0];
  EXPECT_EQ(d.status, HealthStatus::kHealthy);
  ASSERT_EQ(d.transitions.size(), 2u);
  EXPECT_EQ(d.transitions[0].to, HealthStatus::kDegraded);
  EXPECT_EQ(d.transitions[0].window, 0);
  EXPECT_EQ(d.transitions[0].reason, "loss_rate_high");
  EXPECT_EQ(d.transitions[1].to, HealthStatus::kHealthy);
  EXPECT_EQ(d.transitions[1].window, 2);
  EXPECT_EQ(report.devices_degraded, 0);
}

TEST(Telemetry, StatusMachineQuarantineIsSticky) {
  if (!kTelemetryCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  DeviceHealthRegistry registry;
  registry.set_enabled(true);
  registry.set_window_items(4);
  registry.record_quarantine(0, 1);
  // Clean windows after the quarantine must not resurrect the device.
  for (int item = 4; item < 12; ++item)
    registry.record_shot(0, item, 0, 1, false, 0.0, 0);
  FleetHealthReport report = evaluate_fleet_health(registry);
  ASSERT_EQ(report.fleet.devices.size(), 1u);
  EXPECT_EQ(report.fleet.devices[0].status, HealthStatus::kQuarantined);
  EXPECT_EQ(report.devices_quarantined, 1);
  bool paged = false;
  for (const Alert& a : report.alerts.alerts())
    if (a.rule == "device_quarantined" && a.item == 1) paged = true;
  EXPECT_TRUE(paged) << "the quarantine verdict must land in the ledger";
}

// ---- Alert ledger ---------------------------------------------------------

TEST(Telemetry, AlertLedgerSortsCanonicallyAndMergesDeterministically) {
  Alert a;
  a.rule = "flip_rate_high";
  a.device = 1;
  a.window = 2;
  Alert b;
  b.rule = "loss_rate_high";
  b.device = 0;
  b.window = 5;
  Alert c;
  c.rule = "device_quarantined";
  c.device = 0;
  c.window = 5;

  AlertLedger forward, backward;
  forward.record(a);
  forward.record(b);
  forward.record(c);
  backward.record(c);
  backward.record(a);
  backward.record(b);
  EXPECT_EQ(forward.digest(), backward.digest());
  ASSERT_EQ(forward.alerts().size(), 3u);
  EXPECT_EQ(forward.alerts()[0].device, 0);
  EXPECT_EQ(forward.alerts()[0].rule, "device_quarantined");
  EXPECT_EQ(forward.alerts()[1].rule, "loss_rate_high");
  EXPECT_EQ(forward.alerts()[2].device, 1);

  AlertLedger merged;
  merged.record(b);
  AlertLedger shard;
  shard.record(c);
  shard.record(a);
  merged.merge(shard);
  EXPECT_EQ(merged.digest(), forward.digest());
  EXPECT_EQ(merged.count(AlertSeverity::kWarning), 3u);
}

// ---- Exporters ------------------------------------------------------------

TEST(Telemetry, FleetJsonRoundTripsThroughParseFleet) {
  const FleetHealthReport report = sample_report();
  const std::string doc = fleet_json(report, "unit");
  std::string error;
  std::optional<JsonValue> parsed = parse_json(doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  FleetDoc fleet;
  ASSERT_TRUE(parse_fleet(*parsed, &fleet, &error)) << error;
  EXPECT_EQ(fleet.bench, "unit");
  EXPECT_EQ(fleet.report.alerts_total, 2);
  EXPECT_EQ(fleet.report.devices_quarantined, 1);
  ASSERT_EQ(fleet.report.fleet.devices.size(), 2u);
  EXPECT_EQ(fleet.report.fleet.devices[0].label, "Pixel 4a");
  EXPECT_EQ(fleet.report.fleet.devices[1].status, HealthStatus::kQuarantined);
  ASSERT_EQ(fleet.report.fleet.devices[1].transitions.size(), 1u);
  EXPECT_EQ(fleet.report.fleet.devices[1].windows[0].quarantine_item, 2);
  EXPECT_DOUBLE_EQ(fleet.report.fleet.devices[0].windows[0].latency_p99_ms,
                   9.25);
  // The reconstructed ledger must carry the same canonical digest, so
  // offline re-renders stay traceable to the original run.
  EXPECT_EQ(fleet.report.alerts.digest(), report.alerts.digest());

  FleetDoc rejected;
  std::optional<JsonValue> not_fleet = parse_json("{\"schema\":\"x\"}", &error);
  ASSERT_TRUE(not_fleet.has_value());
  EXPECT_FALSE(parse_fleet(*not_fleet, &rejected, &error));
}

TEST(Telemetry, EventsJsonlEmitsAlertsThenTransitions) {
  const std::string doc = events_jsonl(sample_report(), "unit");
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < doc.size()) {
    std::size_t end = doc.find('\n', start);
    if (end == std::string::npos) end = doc.size();
    if (end > start) lines.push_back(doc.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 3u);  // 2 alerts + 1 transition
  for (const std::string& line : lines) {
    std::string error;
    std::optional<JsonValue> v = parse_json(line, &error);
    ASSERT_TRUE(v.has_value()) << error << ": " << line;
    EXPECT_NE(line.find("\"schema\":\"edgestab-events-v1\""),
              std::string::npos);
  }
  EXPECT_NE(lines[0].find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"alert\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"type\":\"status\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"level\":\"critical\""), std::string::npos)
      << "a quarantine transition is a critical event";
}

TEST(Telemetry, FleetHtmlEscapesHostileLabels) {
  FleetHealthReport report = sample_report();
  report.fleet.devices[0].label = "<script>alert('x')</script> & \"Pixel\"";
  Alert hostile;
  hostile.rule = "flip_rate_high";
  hostile.metric = "flip_rate";
  hostile.device = 0;
  hostile.device_label = report.fleet.devices[0].label;
  hostile.window = 0;
  hostile.item_hi = 4;
  hostile.detail = "<img src=x onerror=alert(1)>";
  report.alerts.record(hostile);

  const std::string html = fleet_html(report, "unit<bench>");
  EXPECT_EQ(html.find("<script>alert"), std::string::npos);
  EXPECT_EQ(html.find("<img src=x"), std::string::npos);
  EXPECT_EQ(html.find("unit<bench>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
  EXPECT_NE(html.find("&amp; &quot;Pixel&quot;"), std::string::npos);
  EXPECT_NE(html.find("&lt;img src=x"), std::string::npos);
}

TEST(Telemetry, FleetTextListsDevicesAndAlerts) {
  const std::string text = fleet_text(sample_report());
  EXPECT_NE(text.find("Pixel 4a"), std::string::npos);
  EXPECT_NE(text.find("LG K10 LTE"), std::string::npos);
  EXPECT_NE(text.find("quarantined"), std::string::npos);
  EXPECT_NE(text.find("loss_rate_high"), std::string::npos);
}

TEST(Telemetry, SharedHtmlEscapeHandlesEveryMetachar) {
  EXPECT_EQ(html_escape("a<b>c&d\"e"), "a&lt;b&gt;c&amp;d&quot;e");
  EXPECT_EQ(html_escape("plain"), "plain");
}

}  // namespace
}  // namespace edgestab::obs
