// Core metric + harness tests: the instability metric's definition and
// edge cases (the paper's §2.2 semantics), grouped variants, confidence
// splitting, precision-recall, top-k correctness, workspace caching, and
// stability-training plumbing.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/confidence.h"
#include "core/experiment.h"
#include "core/instability.h"
#include "core/stability_training.h"
#include "core/workspace.h"
#include "obs/flip_ledger.h"
#include "util/rng.h"

namespace edgestab {
namespace {

Observation obs(int item, int env, bool correct, double conf = 0.5,
                int cls = 0, int angle = 0) {
  Observation o;
  o.item = item;
  o.env = env;
  o.correct = correct;
  o.confidence = conf;
  o.class_id = cls;
  o.angle = angle;
  return o;
}

TEST(Instability, DefinitionFromPaper) {
  // Item 0: one correct, one incorrect -> unstable.
  // Item 1: both correct -> stable.
  // Item 2: both incorrect -> NOT unstable (but in the denominator).
  std::vector<Observation> v{obs(0, 0, true),  obs(0, 1, false),
                             obs(1, 0, true),  obs(1, 1, true),
                             obs(2, 0, false), obs(2, 1, false)};
  InstabilityResult r = compute_instability(v);
  EXPECT_EQ(r.total_items, 3);
  EXPECT_EQ(r.unstable_items, 1);
  EXPECT_EQ(r.all_correct_items, 1);
  EXPECT_EQ(r.all_incorrect_items, 1);
  EXPECT_DOUBLE_EQ(r.instability(), 1.0 / 3.0);
}

TEST(Instability, SingleEnvironmentItemsSkipped) {
  std::vector<Observation> v{obs(0, 0, true), obs(1, 0, true),
                             obs(1, 1, false)};
  InstabilityResult r = compute_instability(v);
  EXPECT_EQ(r.total_items, 1);  // item 0 observed once -> skipped
  EXPECT_EQ(r.unstable_items, 1);
}

TEST(Instability, EmptyInput) {
  InstabilityResult r = compute_instability({});
  EXPECT_EQ(r.total_items, 0);
  EXPECT_DOUBLE_EQ(r.instability(), 0.0);
}

TEST(Instability, FiveEnvironmentGroupSemantics) {
  // One disagreeing environment out of five is enough.
  std::vector<Observation> v;
  for (int env = 0; env < 5; ++env) v.push_back(obs(0, env, env != 3));
  InstabilityResult r = compute_instability(v);
  EXPECT_EQ(r.unstable_items, 1);
}

TEST(Instability, PairwiseRestrictsEnvironments) {
  std::vector<Observation> v{
      obs(0, 0, true), obs(0, 1, true), obs(0, 2, false),  // unstable in group
      obs(1, 0, true), obs(1, 1, false), obs(1, 2, true)};
  EXPECT_DOUBLE_EQ(compute_instability(v).instability(), 1.0);
  // Envs {0,1}: item 0 stable, item 1 unstable.
  InstabilityResult r01 = pairwise_instability(v, 0, 1);
  EXPECT_EQ(r01.unstable_items, 1);
  EXPECT_EQ(r01.total_items, 2);
  // Envs {0,2}: item 0 unstable, item 1 stable.
  InstabilityResult r02 = pairwise_instability(v, 0, 2);
  EXPECT_EQ(r02.unstable_items, 1);
}

TEST(Instability, GroupedByClassAndAngle) {
  std::vector<Observation> v{
      obs(0, 0, true, 0.5, /*cls=*/7, /*angle=*/0),
      obs(0, 1, false, 0.5, 7, 0),
      obs(1, 0, true, 0.5, 9, 2),
      obs(1, 1, true, 0.5, 9, 2)};
  auto by_class = instability_by_class(v);
  EXPECT_DOUBLE_EQ(by_class[7].instability(), 1.0);
  EXPECT_DOUBLE_EQ(by_class[9].instability(), 0.0);
  auto by_angle = instability_by_angle(v);
  EXPECT_DOUBLE_EQ(by_angle[0].instability(), 1.0);
  EXPECT_DOUBLE_EQ(by_angle[2].instability(), 0.0);
}

TEST(Instability, EnvironmentAccuracyAndListing) {
  std::vector<Observation> v{obs(0, 0, true), obs(1, 0, false),
                             obs(0, 2, true)};
  EXPECT_DOUBLE_EQ(environment_accuracy(v, 0), 0.5);
  EXPECT_DOUBLE_EQ(environment_accuracy(v, 2), 1.0);
  EXPECT_DOUBLE_EQ(environment_accuracy(v, 9), 0.0);
  EXPECT_EQ(environments(v), (std::vector<int>{0, 2}));
}

// The obs/flip_ledger bookkeeping is an independent implementation of
// the same §2.2 semantics; randomized observation sets must never make
// the two disagree (bench::Run enforces this cross-check at run time,
// this test hammers it over many shapes).
TEST(Instability, FlipLedgerAgreesOnRandomizedObservations) {
  namespace dobs = edgestab::obs;
  Pcg32 rng(991, 7);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Observation> observations;
    std::vector<dobs::FlipOutcome> outcomes;
    int items = 1 + static_cast<int>(rng.next_u32() % 40);
    for (int item = 0; item < items; ++item) {
      // 1..4 environments: single-observation items exercise the skip
      // rule on both sides.
      int envs = 1 + static_cast<int>(rng.next_u32() % 4);
      int cls = static_cast<int>(rng.next_u32() % 5);
      for (int env = 0; env < envs; ++env) {
        bool correct = rng.uniform() < 0.6;
        observations.push_back(obs(item, env, correct, 0.5, cls));
        dobs::FlipOutcome o;
        o.item = item;
        o.env = env;
        o.correct = correct;
        o.predicted = correct ? cls : cls + 1;
        o.class_id = cls;
        outcomes.push_back(o);
      }
    }
    InstabilityResult expected = compute_instability(observations);
    dobs::FlipLedger ledger;
    ledger.add_group("trial", outcomes);
    auto summary = ledger.find_group("trial");
    ASSERT_TRUE(summary.has_value());
    EXPECT_EQ(summary->total_items, expected.total_items) << "trial " << trial;
    EXPECT_EQ(summary->unstable_items, expected.unstable_items)
        << "trial " << trial;
    EXPECT_EQ(summary->all_correct_items, expected.all_correct_items)
        << "trial " << trial;
    EXPECT_EQ(summary->all_incorrect_items, expected.all_incorrect_items)
        << "trial " << trial;
  }
}

TEST(Confidence, SplitsByStability) {
  std::vector<Observation> v{
      obs(0, 0, true, 0.9), obs(0, 1, true, 0.8),    // stable correct
      obs(1, 0, false, 0.4), obs(1, 1, false, 0.3),  // stable incorrect
      obs(2, 0, true, 0.55), obs(2, 1, false, 0.52)  // unstable
  };
  ConfidenceSplit s = split_confidences(v);
  EXPECT_EQ(s.stable_correct.size(), 2u);
  EXPECT_EQ(s.stable_incorrect.size(), 2u);
  EXPECT_EQ(s.unstable_correct.size(), 1u);
  EXPECT_EQ(s.unstable_incorrect.size(), 1u);
  EXPECT_DOUBLE_EQ(s.unstable_correct[0], 0.55);
}

TEST(Confidence, PrCurveMonotoneRecall) {
  std::vector<std::pair<double, bool>> data{
      {0.9, true}, {0.8, true}, {0.7, false}, {0.6, true}, {0.2, false}};
  auto curve = precision_recall_curve(data);
  ASSERT_EQ(curve.size(), 5u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.2);
  EXPECT_DOUBLE_EQ(curve[1].recall, 0.4);
  EXPECT_DOUBLE_EQ(curve[2].precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(curve.back().recall, 3.0 / 5.0);
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
  double ap = average_precision(curve);
  EXPECT_GT(ap, 0.0);
  EXPECT_LE(ap, 1.0);
}

TEST(TopK, AliasAwareCorrectness) {
  ShotPrediction p;
  p.topk = {7 /*bubble*/, 5 /*red_wine*/, 2 /*wine_bottle*/};
  p.topk_conf = {0.4, 0.3, 0.2};
  EXPECT_FALSE(topk_correct(p, /*truth=*/2, 1));
  EXPECT_TRUE(topk_correct(p, 2, 2));  // red_wine aliases wine_bottle
  EXPECT_TRUE(topk_correct(p, 2, 3));
  EXPECT_FALSE(topk_correct(p, 0, 3));
  EXPECT_THROW(topk_correct(p, 2, 4), CheckError);
}

TEST(StabilityCells, PaperGridStructure) {
  auto emb = table6_embedding_cells();
  auto kl = table6_kl_cells();
  ASSERT_EQ(emb.size(), 5u);
  ASSERT_EQ(kl.size(), 5u);
  EXPECT_EQ(emb[0].noise, "two_images");
  EXPECT_EQ(emb[1].images_per_class, 10);  // subsample-10
  EXPECT_EQ(emb[4].noise, "no_noise");
  EXPECT_EQ(emb[4].loss, StabilityLoss::kNone);
  EXPECT_EQ(kl[2].noise, "distortion");
  EXPECT_EQ(kl[2].loss, StabilityLoss::kKl);
  // Cache tokens are unique across the grid except the two no_noise
  // baselines, which share a cell (they differ by training seed, which
  // enters the cache key at a higher level).
  std::set<std::string> tokens;
  int collisions = 0;
  for (const auto& c : emb)
    collisions += tokens.insert(c.cache_token()).second ? 0 : 1;
  for (const auto& c : kl)
    collisions += tokens.insert(c.cache_token()).second ? 0 : 1;
  EXPECT_EQ(collisions, 1);
  // Hyper descriptions match the paper's table format.
  EXPECT_EQ(emb[4].hyper_description(), "N/A");
  EXPECT_NE(emb[1].hyper_description().find("#images=10"),
            std::string::npos);
  EXPECT_NE(kl[3].hyper_description().find("sigma2"), std::string::npos);
}

TEST(Workspace, BlobCacheRoundTrip) {
  setenv("EDGESTAB_CACHE", "/tmp/edgestab_test_cache", 1);
  std::filesystem::remove_all("/tmp/edgestab_test_cache");
  {
    WorkspaceConfig cfg;
    cfg.verbose = false;
    Workspace ws(cfg);
    Bytes data{1, 2, 3};
    Bytes out;
    EXPECT_FALSE(ws.load_blob("key1", out));
    ws.store_blob("key1", data);
    EXPECT_TRUE(ws.load_blob("key1", out));
    EXPECT_EQ(out, data);
  }
  std::filesystem::remove_all("/tmp/edgestab_test_cache");
  unsetenv("EDGESTAB_CACHE");
}

TEST(Workspace, FingerprintTracksConfig) {
  WorkspaceConfig a;
  a.verbose = false;
  WorkspaceConfig b = a;
  b.pretrain.per_class += 1;
  setenv("EDGESTAB_CACHE", "/tmp/edgestab_test_cache2", 1);
  Workspace wa(a), wb(b);
  EXPECT_NE(wa.fingerprint(), wb.fingerprint());
  Workspace wa2(a);
  EXPECT_EQ(wa.fingerprint(), wa2.fingerprint());
  std::filesystem::remove_all("/tmp/edgestab_test_cache2");
  unsetenv("EDGESTAB_CACHE");
}

TEST(Workspace, FreshModelMatchesConfig) {
  setenv("EDGESTAB_CACHE", "/tmp/edgestab_test_cache3", 1);
  WorkspaceConfig cfg;
  cfg.verbose = false;
  Workspace ws(cfg);
  Model m = ws.fresh_model();
  Pcg32 rng(1);
  m.init(rng);
  Tensor x({1, 3, cfg.model.input_size, cfg.model.input_size});
  Tensor logits = m.forward(x, false);
  EXPECT_EQ(logits.dim(1), cfg.model.num_classes);
  std::filesystem::remove_all("/tmp/edgestab_test_cache3");
  unsetenv("EDGESTAB_CACHE");
}

TEST(PairedCaptures, SplitCoversAllClassesBothSides) {
  auto fleet = end_to_end_fleet();
  LabRigConfig rig;
  rig.objects_per_class = 10;
  rig.angles = {0.0f};
  PairedCaptures data = collect_paired_captures(fleet[0], fleet[4], rig,
                                                0.7f);
  EXPECT_EQ(data.train_a.size() + data.test_a.size(), 50u);
  EXPECT_EQ(data.train_a.size(), data.train_b.size());
  EXPECT_NEAR(static_cast<double>(data.train_a.size()) / 50.0, 0.7, 0.05);
  std::set<int> train_classes(data.train_labels.begin(),
                              data.train_labels.end());
  std::set<int> test_classes(data.test_labels.begin(),
                             data.test_labels.end());
  EXPECT_EQ(train_classes.size(), 5u);
  EXPECT_EQ(test_classes.size(), 5u);
  // Stimulus ids are disjoint between the splits.
  for (int s : data.train_stimulus)
    EXPECT_EQ(std::count(data.test_stimulus.begin(),
                         data.test_stimulus.end(), s),
              0);
}

}  // namespace
}  // namespace edgestab
