// Data layer tests: label space + aliases, scene renderer determinism and
// variety, viewpoint behaviour, screen simulation, dataset construction
// and normalization, and lab-rig structure.
#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/lab_rig.h"
#include "data/labels.h"
#include "data/render.h"
#include "data/screen.h"
#include "image/metrics.h"

namespace edgestab {
namespace {

TEST(Labels, NamesAndTargets) {
  EXPECT_EQ(kNumClasses, 12);
  EXPECT_EQ(class_name(kWaterBottle), "water_bottle");
  EXPECT_EQ(class_name(kBubble), "bubble");
  EXPECT_EQ(target_classes().size(), 5u);
  EXPECT_EQ(target_classes()[0], kWaterBottle);
  EXPECT_THROW(class_name(12), CheckError);
  EXPECT_THROW(class_name(-1), CheckError);
}

TEST(Labels, WineAliasAcceptedBothWays) {
  // §3.2: "wine bottle" and "red wine" overlap in ImageNet.
  EXPECT_TRUE(prediction_correct(kWineBottle, kWineBottle));
  EXPECT_TRUE(prediction_correct(kWineBottle, kRedWine));
  EXPECT_TRUE(prediction_correct(kRedWine, kWineBottle));
  EXPECT_FALSE(prediction_correct(kWineBottle, kBeerBottle));
  EXPECT_FALSE(prediction_correct(kWaterBottle, kBubble));
}

TEST(Render, DeterministicPerSpec) {
  SceneSpec spec;
  spec.class_id = kBackpack;
  spec.instance_seed = 5;
  Image a = render_scene(spec, 64);
  Image b = render_scene(spec, 64);
  EXPECT_EQ(to_u8(a), to_u8(b));
}

TEST(Render, InstancesVary) {
  SceneSpec a, b;
  a.class_id = b.class_id = kPurse;
  a.instance_seed = 1;
  b.instance_seed = 2;
  Image ia = render_scene(a, 64);
  Image ib = render_scene(b, 64);
  EXPECT_GT(diff_fraction(ia, ib, 0.05f), 0.1);
}

TEST(Render, AllClassesRenderInRange) {
  for (int cls = 0; cls < kNumClasses; ++cls) {
    SceneSpec spec;
    spec.class_id = cls;
    spec.instance_seed = 3;
    Image img = render_scene(spec, 64);
    EXPECT_EQ(img.width(), 64);
    EXPECT_EQ(img.channels(), 3);
    for (float v : img.data()) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
}

TEST(Render, ViewAngleShiftsObject) {
  SceneSpec left, right;
  left.class_id = right.class_id = kBeerBottle;
  left.instance_seed = right.instance_seed = 9;
  left.view_angle = -1.0f;
  right.view_angle = 1.0f;
  Image il = render_scene(left, 96);
  Image ir = render_scene(right, 96);
  // The same object viewed from different angles — clearly different
  // images.
  EXPECT_GT(diff_fraction(il, ir, 0.05f), 0.05);
  EXPECT_THROW(
      {
        SceneSpec bad = left;
        bad.view_angle = 2.0f;
        render_scene(bad, 96);
      },
      CheckError);
}

TEST(Screen, EmitsLinearLightAtScaledResolution) {
  Image srgb(32, 32, 3, 0.5f);
  ScreenConfig config;
  config.output_scale = 2;
  Image emission = display_on_screen(srgb, config);
  EXPECT_EQ(emission.width(), 64);
  // Mid-gray sRGB is ~0.214 linear; the screen adds black glow and the
  // subpixel grid modulates around that.
  double sum = 0.0;
  for (float v : emission.data()) sum += v;
  double mean = sum / static_cast<double>(emission.size());
  EXPECT_NEAR(mean, 0.23, 0.05);
}

TEST(Screen, BlackLevelLiftsShadows) {
  Image black(8, 8, 3, 0.0f);
  ScreenConfig config;
  config.pixel_grid = 0.0f;
  Image emission = display_on_screen(black, config);
  for (float v : emission.data()) EXPECT_GT(v, 0.0f);
}

TEST(Dataset, InputNormalizationRange) {
  Image img(48, 48, 3);
  for (int y = 0; y < 48; ++y)
    for (int x = 0; x < 48; ++x)
      for (int c = 0; c < 3; ++c)
        img.at(x, y, c) = static_cast<float>(x) / 47.0f;
  Tensor input = image_to_input(img);
  EXPECT_EQ(input.dim(2), kModelInputSize);
  float mn = 1e9f, mx = -1e9f;
  for (float v : input.data()) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  EXPECT_GE(mn, -1.0f);
  EXPECT_LE(mx, 1.0f);
  EXPECT_LT(mn, -0.8f);  // full range is exercised
  EXPECT_GT(mx, 0.8f);
}

TEST(Dataset, StackInputsShapeChecked) {
  Tensor a({1, 3, 8, 8}, 1.0f);
  Tensor b({1, 3, 8, 8}, 2.0f);
  Tensor stacked = stack_inputs({a, b});
  EXPECT_EQ(stacked.dim(0), 2);
  EXPECT_FLOAT_EQ(stacked.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(stacked.at4(1, 2, 7, 7), 2.0f);
  Tensor c({1, 3, 4, 4});
  EXPECT_THROW(stack_inputs({a, c}), CheckError);
}

TEST(Dataset, PretrainCoversAllClassesBalanced) {
  PretrainConfig config;
  config.per_class = 6;
  config.scene_size = 48;
  config.capture_probability = 0.0f;  // keep the test fast
  config.jpeg_probability = 0.0f;
  TensorDataset ds = make_pretrain_dataset(config);
  EXPECT_EQ(ds.size(), 6 * kNumClasses);
  std::vector<int> counts(kNumClasses, 0);
  for (int label : ds.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_EQ(c, 6);
}

TEST(Dataset, ValidationDisjointFromTraining) {
  PretrainConfig config;
  config.per_class = 5;
  config.scene_size = 48;
  config.capture_probability = 0.0f;
  config.jpeg_probability = 0.0f;
  config.blur_probability = 0.0f;
  config.noise_sigma = 0.0f;
  TensorDataset train = make_pretrain_dataset(config);
  TensorDataset val = make_validation_dataset(config);
  EXPECT_GT(val.size(), 0);
  // No training sample equals any validation sample (disjoint instance
  // seeds produce different scenes).
  const std::size_t n = 3u * kModelInputSize * kModelInputSize;
  for (int i = 0; i < std::min(train.size(), 12); ++i)
    for (int j = 0; j < std::min(val.size(), 12); ++j) {
      bool equal = std::equal(train.images.raw() + i * n,
                              train.images.raw() + (i + 1) * n,
                              val.images.raw() + j * n);
      EXPECT_FALSE(equal) << i << "," << j;
    }
}

TEST(LabRig, StructureAndCoverage) {
  auto fleet = end_to_end_fleet();
  LabRigConfig config;
  config.objects_per_class = 2;
  LabRun run = run_lab_rig(fleet, config);
  // 5 classes x 2 objects x 5 angles x 5 phones.
  EXPECT_EQ(run.shots.size(), 5u * 2 * 5 * 5);
  EXPECT_EQ(run.object_class.size(), 10u);
  EXPECT_EQ(run.angle_count, 5);
  // Every (object, angle, phone) combination appears exactly once.
  std::set<std::tuple<int, int, int>> seen;
  for (const LabShot& shot : run.shots) {
    EXPECT_TRUE(seen.emplace(shot.object_index, shot.angle_index,
                             shot.phone_index)
                    .second);
    EXPECT_EQ(shot.class_id,
              run.object_class[static_cast<std::size_t>(
                  shot.object_index)]);
    EXPECT_FALSE(shot.capture.file.empty());
  }
}

TEST(LabRig, RepeatShotsShareStimulus) {
  auto fleet = end_to_end_fleet();
  LabRigConfig config;
  config.objects_per_class = 1;
  config.angles = {0.0f};
  config.shots_per_stimulus = 3;
  LabRun run = run_lab_rig(fleet, config);
  // 5 classes x 1 object x 1 angle x 5 phones x 3 shots.
  EXPECT_EQ(run.shots.size(), 5u * 5 * 3);
  for (std::size_t i = 0; i < run.shots.size(); i += 3) {
    EXPECT_EQ(run.shots[i].repeat, 0);
    EXPECT_EQ(run.shots[i + 1].repeat, 1);
    EXPECT_EQ(run.shots[i + 2].repeat, 2);
    // Same stimulus, different temporal noise -> different bytes.
    EXPECT_NE(run.shots[i].capture.file, run.shots[i + 1].capture.file);
  }
}

TEST(LabRig, DeterministicAcrossRuns) {
  auto fleet = end_to_end_fleet();
  LabRigConfig config;
  config.objects_per_class = 1;
  config.angles = {0.0f, 1.0f};
  LabRun a = run_lab_rig(fleet, config);
  LabRun b = run_lab_rig(fleet, config);
  ASSERT_EQ(a.shots.size(), b.shots.size());
  for (std::size_t i = 0; i < a.shots.size(); ++i)
    EXPECT_EQ(a.shots[i].capture.file, b.shots[i].capture.file);
}

}  // namespace
}  // namespace edgestab
