// Tests for the parallel runtime (src/runtime): pool and loop
// semantics, per-item seed derivation, model cloning for per-worker
// inference, and the determinism contract end to end — the same lab-rig
// experiment must produce bit-identical instability numbers,
// flip-ledger digests and drift summaries at 1, 2 and 8 lanes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.h"
#include "data/lab_rig.h"
#include "device/fleets.h"
#include "fault/fault.h"
#include "nn/mobilenet.h"
#include "nn/model.h"
#include "obs/drift.h"
#include "obs/fault_ledger.h"
#include "obs/obs.h"
#include "runtime/parallel.h"
#include "runtime/seed.h"
#include "runtime/thread_pool.h"
#include "tensor/tensor.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace edgestab {
namespace {

// Restores the global pool width on scope exit so one test's resize (or
// a failed assertion mid-resize) never leaks lanes into the next test.
class PoolWidthGuard {
 public:
  PoolWidthGuard() : saved_(runtime::ThreadPool::global().threads()) {}
  ~PoolWidthGuard() { runtime::ThreadPool::set_global_threads(saved_); }

 private:
  int saved_;
};

// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPool, ClampsLaneCountToAtLeastOne) {
  runtime::ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  runtime::ThreadPool negative(-4);
  EXPECT_EQ(negative.threads(), 1);
}

TEST(ThreadPool, SetGlobalThreadsResizes) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(3);
  EXPECT_EQ(runtime::ThreadPool::global().threads(), 3);
  runtime::ThreadPool::set_global_threads(1);
  EXPECT_EQ(runtime::ThreadPool::global().threads(), 1);
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  runtime::ThreadPool pool(4);
  const std::size_t n = 23;
  const std::size_t grain = 5;  // 23 = 4*5 + 3: forces a remainder chunk
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.run_chunks(n, grain, [&](std::size_t begin, std::size_t end) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(begin, end);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    EXPECT_LE(end - begin, grain);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, n);
}

// ---- parallel_for / parallel_for_2d / parallel_map --------------------------

TEST(ParallelFor, EmptyRangeNeverInvokesBody) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(4);
  std::atomic<int> calls{0};
  runtime::parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(4);
  const std::size_t n = 1003;  // deliberately not a multiple of any grain
  std::vector<int> hits(n, 0);
  runtime::parallel_for(
      n, [&](std::size_t i) { ++hits[i]; }, /*grain=*/7);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, SingleLanePoolRunsInline) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(1);
  std::vector<int> hits(17, 0);
  runtime::parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, FirstExceptionPropagatesAndPoolSurvives) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(4);
  EXPECT_THROW(
      runtime::parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom at 37");
          },
          /*grain=*/3),
      std::runtime_error);
  // The pool must stay fully usable after an exceptional region.
  std::atomic<std::size_t> sum{0};
  runtime::parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelFor, NestedRegionsRunInlineWithoutDeadlock) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(4);
  std::atomic<int> total{0};
  runtime::parallel_for(
      8,
      [&](std::size_t) {
        runtime::parallel_for(16,
                              [&](std::size_t) { total.fetch_add(1); });
      },
      /*grain=*/1);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelFor2D, CoversTheGridRowMajor) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(4);
  const std::size_t rows = 7, cols = 5;
  std::vector<int> hits(rows * cols, 0);
  runtime::parallel_for_2d(rows, cols, [&](std::size_t r, std::size_t c) {
    ++hits[r * cols + c];
  });
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], 1) << "cell " << i;
  std::atomic<int> calls{0};
  runtime::parallel_for_2d(0, 9, [&](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  runtime::parallel_for_2d(9, 0, [&](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelMap, ResultsLandInIndexOrder) {
  PoolWidthGuard guard;
  runtime::ThreadPool::set_global_threads(4);
  auto squares = runtime::parallel_map<std::uint64_t>(
      257, [](std::size_t i) { return static_cast<std::uint64_t>(i) * i; },
      /*grain=*/3);
  ASSERT_EQ(squares.size(), 257u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], static_cast<std::uint64_t>(i) * i);
}

// ---- Per-item seed derivation ----------------------------------------------

TEST(Seed, DerivationIsStableAndCoordinateSensitive) {
  // Same coordinates -> same seed, regardless of call site or timing.
  EXPECT_EQ(runtime::derive_seed(42u, 1, 2, 3),
            runtime::derive_seed(42u, 1, 2, 3));
  // Each coordinate matters, including trailing ones.
  std::set<std::uint64_t> seeds;
  seeds.insert(runtime::derive_seed(42u, 1, 2, 3));
  seeds.insert(runtime::derive_seed(42u, 1, 2, 4));
  seeds.insert(runtime::derive_seed(42u, 1, 3, 3));
  seeds.insert(runtime::derive_seed(42u, 2, 2, 3));
  seeds.insert(runtime::derive_seed(43u, 1, 2, 3));
  EXPECT_EQ(seeds.size(), 5u);
  // Coordinate order matters: (1,2) and (2,1) are different items.
  EXPECT_NE(runtime::derive_seed(42u, 1, 2), runtime::derive_seed(42u, 2, 1));
}

TEST(Seed, DerivedStreamsAreReproducibleAndDistinct) {
  Pcg32 a = runtime::derive_rng(7u, 3, 0);
  Pcg32 a_again = runtime::derive_rng(7u, 3, 0);
  Pcg32 b = runtime::derive_rng(7u, 3, 1);
  bool any_differs = false;
  for (int i = 0; i < 16; ++i) {
    std::uint32_t va = a.next_u32();
    EXPECT_EQ(va, a_again.next_u32());
    if (va != b.next_u32()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

// ---- Model cloning ----------------------------------------------------------

TEST(ModelClone, ForwardsIdenticallyAndIsIndependent) {
  MobileNetConfig config;
  Model model = build_mini_mobilenet_v2(config);
  Pcg32 rng(21, 5);
  model.init(rng);

  Tensor input({2, 3, config.input_size, config.input_size});
  Pcg32 noise(9, 2);
  for (float& v : input.data())
    v = static_cast<float>(noise.uniform(-0.5, 0.5));

  Model copy = model.clone();
  Tensor out_orig = model.forward(input);
  Tensor out_copy = copy.forward(input);
  ASSERT_EQ(out_orig.shape(), out_copy.shape());
  for (std::size_t i = 0; i < out_orig.numel(); ++i)
    ASSERT_EQ(out_orig[i], out_copy[i]) << "logit " << i;

  // The clone owns its parameters: perturbing them must not leak back.
  for (Param* p : copy.params())
    for (float& v : p->value.data()) v += 0.25f;
  Tensor out_after = model.forward(input);
  for (std::size_t i = 0; i < out_orig.numel(); ++i)
    ASSERT_EQ(out_orig[i], out_after[i]) << "logit " << i;
}

// ---- End-to-end determinism across lane counts ------------------------------

struct EndToEndDigests {
  std::uint64_t observations = 0;
  std::uint64_t ledger = 0;
  std::uint64_t drift = 0;
  std::uint64_t faults = 0;      ///< fault-ledger fingerprint (0 clean)
  std::uint64_t resilience = 0;  ///< coverage/quarantine fingerprint
  int shots_lost = 0;
};

// The lab rig names each run's drift group "capture", "capture#1", ...
// so repeated runs in one process don't collide; strip the run suffix
// when fingerprinting so the three fixture runs compare group-for-group.
std::string base_group(const std::string& group) {
  return group.substr(0, group.find('#'));
}

// One smoke-size end-to-end run (untrained mini model, 3 phones,
// 2 angles x 2 shots) at the given lane count, reduced to fingerprints
// of everything the paper's tables are built from. When `faulted`, the
// run executes under an aggressive fault plan — the fault schedule and
// the resulting retries / quarantines / coverage accounting must be
// just as lane-count-invariant as the clean numbers.
EndToEndDigests run_fixture(int threads, bool faulted = false) {
  runtime::ThreadPool::set_global_threads(threads);
  auto& auditor = obs::DriftAuditor::global();
  auditor.clear();
  if (obs::kDriftCompiledIn) auditor.set_enabled(true);
  obs::FaultLedger::global().clear();
  if (faulted) {
    fault::FaultInjector::global().configure(fault::parse_fault_plan(
        "dropout=0.1,transient=0.1,bitflip=0.2,truncate=0.1,"
        "straggler=0.2,burst=0.4,attempts=2,quarantine_after=2"));
  }

  MobileNetConfig config;
  Model model = build_mini_mobilenet_v2(config);
  Pcg32 rng(7, 11);
  model.init(rng);

  LabRigConfig rig;
  rig.objects_per_class = 1;
  rig.angles = {-0.5f, 0.5f};
  rig.shots_per_stimulus = 2;
  rig.seed = 99;
  std::vector<PhoneProfile> fleet = end_to_end_fleet();
  if (fleet.size() > 3) fleet.resize(3);

  EndToEndResult result = run_end_to_end(model, fleet, rig);

  EndToEndDigests d;
  Fingerprint obs_fp;
  for (const Observation& o : result.observations)
    obs_fp.add(o.item)
        .add(o.env)
        .add(o.predicted)
        .add(o.correct ? 1 : 0)
        .add(o.confidence);
  obs_fp.add(result.overall.total_items).add(result.overall.unstable_items);
  for (double acc : result.accuracy_by_phone) obs_fp.add(acc);
  for (double wp : result.within_phone_instability) obs_fp.add(wp);
  d.observations = obs_fp.value();

  if (obs::kDriftCompiledIn) {
    d.ledger = auditor.ledger().digest();
    Fingerprint drift_fp;
    for (const auto& s : auditor.stage_summaries())
      drift_fp.add(base_group(s.group))
          .add(s.stage)
          .add(s.psnr_db.count)
          .add(s.psnr_db.sum)
          .add(s.psnr_db.min)
          .add(s.psnr_db.max)
          .add(s.ssim.sum)
          .add(s.channel_mean_delta.sum)
          .add(s.channel_var_delta.sum)
          .add(s.identical_pairs);
    for (const auto& s : auditor.logit_summaries())
      drift_fp.add(base_group(s.group))
          .add(s.l2.sum)
          .add(s.linf.sum)
          .add(s.kl.sum)
          .add(s.top1_margin.sum)
          .add(s.comparisons)
          .add(s.top1_agree);
    d.drift = drift_fp.value();
    auditor.set_enabled(false);
    auditor.clear();
  }

  const FleetResilienceStats& res = result.resilience;
  Fingerprint res_fp;
  res_fp.add(res.faults_active ? 1 : 0)
      .add(res.device_count)
      .add(res.item_count)
      .add(res.total_shots)
      .add(res.shots_lost)
      .add(res.shots_excluded)
      .add(res.quarantined_devices)
      .add(res.items_fully_covered)
      .add(res.items_degraded)
      .add(res.items_lost)
      .add(res.mean_coverage);
  for (int v : res.quarantined_from_item) res_fp.add(v);
  for (int v : res.usable_shots_by_device) res_fp.add(v);
  for (int v : res.coverage_histogram) res_fp.add(v);
  d.resilience = res_fp.value();
  d.shots_lost = res.shots_lost;

  // Fingerprint the fault ledger via base_group for the same reason as
  // the drift summaries: the capture group name carries a per-process
  // run counter.
  Fingerprint fault_fp;
  for (const auto& g : obs::FaultLedger::global().summaries()) {
    fault_fp.add(base_group(g.group))
        .add(g.total_events)
        .add(g.shots_lost)
        .add(g.quarantined_devices)
        .add(g.dropped_entries);
    for (const auto& [kind, count] : g.events_by_kind)
      fault_fp.add(kind).add(count);
    for (const auto& row : g.devices)
      fault_fp.add(row.device)
          .add(row.dropouts)
          .add(row.transient_failures)
          .add(row.payload_bit_flips)
          .add(row.payload_truncations)
          .add(row.stragglers)
          .add(row.retries)
          .add(row.decode_failures)
          .add(row.shots_lost)
          .add(row.quarantined ? 1 : 0)
          .add(row.quarantined_from_item)
          .add(row.total_delay_ms);
    for (const auto& e : g.entries)
      fault_fp.add(static_cast<int>(e.kind))
          .add(e.device)
          .add(e.item)
          .add(e.shot)
          .add(e.attempt)
          .add(e.recovered ? 1 : 0)
          .add(e.detail);
  }
  d.faults = fault_fp.value();

  fault::FaultInjector::global().reset();
  obs::FaultLedger::global().clear();
  return d;
}

TEST(RuntimeDeterminism, EndToEndBitIdenticalAcrossLaneCounts) {
  PoolWidthGuard guard;
  EndToEndDigests one = run_fixture(1);
  EndToEndDigests two = run_fixture(2);
  EndToEndDigests eight = run_fixture(8);

  EXPECT_EQ(one.observations, two.observations);
  EXPECT_EQ(one.observations, eight.observations);
  EXPECT_EQ(one.ledger, two.ledger);
  EXPECT_EQ(one.ledger, eight.ledger);
  EXPECT_EQ(one.drift, two.drift);
  EXPECT_EQ(one.drift, eight.drift);
}

TEST(RuntimeDeterminism, FaultedEndToEndBitIdenticalAcrossLaneCounts) {
  PoolWidthGuard guard;
  EndToEndDigests one = run_fixture(1, /*faulted=*/true);
  EndToEndDigests two = run_fixture(2, /*faulted=*/true);
  EndToEndDigests eight = run_fixture(8, /*faulted=*/true);

  EXPECT_EQ(one.observations, two.observations);
  EXPECT_EQ(one.observations, eight.observations);
  EXPECT_EQ(one.ledger, two.ledger);
  EXPECT_EQ(one.ledger, eight.ledger);
  EXPECT_EQ(one.drift, two.drift);
  EXPECT_EQ(one.drift, eight.drift);
  EXPECT_EQ(one.faults, two.faults);
  EXPECT_EQ(one.faults, eight.faults);
  EXPECT_EQ(one.resilience, two.resilience);
  EXPECT_EQ(one.resilience, eight.resilience);

  if (fault::kFaultsCompiledIn) {
    // The aggressive plan must actually bite, or the test proves nothing.
    EXPECT_GT(one.shots_lost, 0);
  } else {
    EXPECT_EQ(one.shots_lost, 0);
  }
}

}  // namespace
}  // namespace edgestab
