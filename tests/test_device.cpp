// Device layer tests: fleet presets (Table 1 / Table 5 structure),
// capture pipeline determinism and output structure, OS-decoder wiring,
// and the compute-backend matmul divergence property.
#include <gtest/gtest.h>

#include "device/capture.h"
#include "device/fleets.h"
#include "image/metrics.h"
#include "nn/mobilenet.h"
#include "util/md5.h"
#include "util/rng.h"

namespace edgestab {
namespace {

Image test_emission() {
  Image img(96, 96, 3);
  Pcg32 rng(31);
  for (float& v : img.data())
    v = static_cast<float>(rng.uniform(0.05, 0.9));
  return img;
}

TEST(Fleets, EndToEndMatchesPaperTable1) {
  auto fleet = end_to_end_fleet();
  ASSERT_EQ(fleet.size(), 5u);
  EXPECT_EQ(fleet[0].name, "Samsung Galaxy S10");
  EXPECT_EQ(fleet[0].model_code, "SM-G973U1");
  EXPECT_EQ(fleet[4].name, "iPhone XR");
  EXPECT_EQ(fleet[4].model_code, "A1984");
  // iPhone stores HEIF, the Androids JPEG (§5).
  EXPECT_EQ(fleet[4].storage_format, ImageFormat::kHeifLike);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(fleet[static_cast<std::size_t>(i)].storage_format,
              ImageFormat::kJpegLike);
  // Exactly the Samsung and iPhone analogues support raw (§9.2).
  int raw_capable = 0;
  for (const auto& p : fleet) raw_capable += p.supports_raw ? 1 : 0;
  EXPECT_EQ(raw_capable, 2);
  EXPECT_TRUE(fleet[0].supports_raw);
  EXPECT_TRUE(fleet[4].supports_raw);
}

TEST(Fleets, DivergenceZeroCollapsesPipelines) {
  auto fleet = end_to_end_fleet(0.0f);
  for (const auto& p : fleet) {
    EXPECT_FLOAT_EQ(p.sensor.exposure, 1.0f) << p.name;
    EXPECT_FLOAT_EQ(p.isp.wb_gains[0], 1.0f) << p.name;
    EXPECT_FLOAT_EQ(p.mount_dx, 0.0f) << p.name;
  }
}

TEST(Fleets, DivergenceScalesMonotonically) {
  auto lo = end_to_end_fleet(0.5f);
  auto hi = end_to_end_fleet(2.0f);
  // The HTC analogue's CCM moves further from identity at higher d.
  float lo_dev = std::abs(lo[2].isp.ccm[0] - 1.0f);
  float hi_dev = std::abs(hi[2].isp.ccm[0] - 1.0f);
  EXPECT_GT(hi_dev, lo_dev);
  EXPECT_THROW(end_to_end_fleet(-0.1f), CheckError);
  EXPECT_THROW(end_to_end_fleet(5.0f), CheckError);
}

TEST(Fleets, FirebaseMatchesPaperTable5) {
  auto fleet = firebase_fleet();
  ASSERT_EQ(fleet.size(), 5u);
  EXPECT_EQ(fleet[1].name, "Huawei Mate RS");
  EXPECT_EQ(fleet[1].backend.soc_name, "HiSilicon Kirin 970");
  // Exactly Huawei and Xiaomi carry the variant decoder (§7).
  JpegDecodeOptions standard;
  EXPECT_TRUE(fleet[0].os_decoder == standard);
  EXPECT_FALSE(fleet[1].os_decoder == standard);
  EXPECT_TRUE(fleet[2].os_decoder == standard);
  EXPECT_TRUE(fleet[3].os_decoder == standard);
  EXPECT_FALSE(fleet[4].os_decoder == standard);
  EXPECT_TRUE(fleet[1].os_decoder == fleet[4].os_decoder);
}

TEST(Fleets, FindPhone) {
  auto fleet = end_to_end_fleet();
  EXPECT_EQ(find_phone(fleet, "Motorola Moto G5").model_code, "XT1670");
  EXPECT_THROW(find_phone(fleet, "Nokia 3310"), CheckError);
}

TEST(Capture, ProducesDecodableFile) {
  auto fleet = end_to_end_fleet();
  Image emission = test_emission();
  for (const auto& phone : fleet) {
    Pcg32 rng(1, phone.noise_stream);
    Capture c = take_photo(phone, emission, rng);
    EXPECT_FALSE(c.file.empty()) << phone.name;
    EXPECT_EQ(c.format, phone.storage_format);
    ImageU8 decoded = decode_capture(c, JpegDecodeOptions{});
    EXPECT_EQ(decoded.width(), phone.sensor.width);
    EXPECT_EQ(decoded.height(), phone.sensor.height);
    EXPECT_EQ(c.raw.has_value(), phone.supports_raw) << phone.name;
  }
}

TEST(Capture, DeterministicGivenRngState) {
  auto fleet = end_to_end_fleet();
  Image emission = test_emission();
  Pcg32 rng1(9, 4), rng2(9, 4);
  Capture a = take_photo(fleet[0], emission, rng1);
  Capture b = take_photo(fleet[0], emission, rng2);
  EXPECT_EQ(a.file, b.file);
}

TEST(Capture, ConsecutiveShotsNearlyIdentical) {
  auto fleet = end_to_end_fleet();
  Image emission = test_emission();
  Pcg32 rng(9, 4);
  Capture a = take_photo(fleet[0], emission, rng);
  Capture b = take_photo(fleet[0], emission, rng);
  EXPECT_NE(a.file, b.file);  // temporal noise differs...
  Image ia = to_float(decode_capture(a, JpegDecodeOptions{}));
  Image ib = to_float(decode_capture(b, JpegDecodeOptions{}));
  EXPECT_GT(psnr(ia, ib), 30.0);  // ...but the photos look identical
}

TEST(Capture, DifferentPhonesRenderDifferently) {
  auto fleet = end_to_end_fleet();
  Image emission = test_emission();
  Pcg32 rng_a(9, 1), rng_b(9, 2);
  Image samsung = to_float(decode_capture(
      take_photo(fleet[0], emission, rng_a), JpegDecodeOptions{}));
  Image htc = to_float(decode_capture(
      take_photo(fleet[2], emission, rng_b), JpegDecodeOptions{}));
  // Renditions differ visibly more than two shots of one phone do.
  EXPECT_GT(diff_fraction(samsung, htc, 0.05f), 0.10);
}

TEST(Capture, OsDecoderChangesPixelsNotFile) {
  auto fleet = end_to_end_fleet();
  Image emission = test_emission();
  Pcg32 rng(9, 1);
  Capture c = take_photo(fleet[0], emission, rng);  // JPEG phone
  JpegDecodeOptions variant;
  variant.upsample = JpegDecodeOptions::Upsample::kBilinear;
  variant.fixed_point_idct = true;
  ImageU8 standard = decode_capture(c, JpegDecodeOptions{});
  ImageU8 varied = decode_capture(c, variant);
  EXPECT_FALSE(standard == varied);
  EXPECT_NE(Md5::hex(standard.data()), Md5::hex(varied.data()));
}

TEST(Capture, DevelopRawIsDeterministic) {
  auto fleet = end_to_end_fleet();
  Image emission = test_emission();
  Pcg32 rng(9, 1);
  Capture c = take_photo(fleet[0], emission, rng);
  ASSERT_TRUE(c.raw.has_value());
  IspConfig isp;
  Image a = develop_raw(*c.raw, isp);
  Image b = develop_raw(*c.raw, isp);
  EXPECT_EQ(to_u8(a), to_u8(b));
}

TEST(Backend, BlockedMatmulChangesLogitsSlightly) {
  MobileNetConfig cfg;
  Model model = build_mini_mobilenet_v2(cfg);
  Pcg32 rng(41);
  model.init(rng);
  Tensor input({2, 3, 32, 32});
  for (float& v : input.data()) v = static_cast<float>(rng.normal());

  model.set_matmul_mode(MatmulMode::kStandard);
  Tensor a = model.forward(input, false);
  model.set_matmul_mode(MatmulMode::kBlocked);
  Tensor b = model.forward(input, false);

  bool any_diff = false;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-3f);  // sub-ULP-ish divergence only
    if (a[i] != b[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);  // but they are NOT bit-identical (§7's premise)
}

}  // namespace
}  // namespace edgestab
