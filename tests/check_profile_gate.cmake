# Hermetic end-to-end check of the hot-path profiler.
#
# Flow (all inside WORK_DIR, smoke-size rig):
#   1. Warm-up/reference run WITHOUT --profile: warms the model cache
#      (a cold run pretrains, which allocates differently than a cached
#      load, so only warmed runs are comparable) and snapshots the CSVs
#      as the observe-never-alter reference.
#   2. Run --profile --threads 1: profile.json + profile.html must land,
#      the JSON must carry the edgestab-profile-v1 schema, the hotspot
#      table must hit stdout, and every CSV must be byte-identical to
#      the unprofiled reference.
#   3. Run --profile --threads 2: the profile digest and the allocation
#      totals must be bit-identical to the single-threaded run (the
#      lane-merge determinism contract), CSVs again byte-identical.
#   4. Promote the candidate BENCH_fig3.json — which must contain the
#      profile headline metrics — and re-run profiled: `sentinel
#      compare` must exit 0 with zero regressed metrics.
#
# Expected -D variables: BENCH_EXE, SENTINEL_EXE, WORK_DIR, CACHE_DIR.
foreach(var BENCH_EXE SENTINEL_EXE WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_profile_gate: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/baselines")

set(smoke_env "EDGESTAB_CACHE=${CACHE_DIR}" "EDGESTAB_RIG_OBJECTS=2")

function(run_bench label out_var)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env ${smoke_env} "${BENCH_EXE}" ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${label}: bench exited with ${rc}\n${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Pull the digest and the allocation totals out of a profile.json.
function(read_profile path digest_var count_var bytes_var)
  file(READ "${path}" doc)
  if(NOT doc MATCHES "\"schema\":\"edgestab-profile-v1\"")
    message(FATAL_ERROR "${path} lacks the edgestab-profile-v1 schema")
  endif()
  if(NOT doc MATCHES "\"digest\":\"([0-9a-f]+)\"")
    message(FATAL_ERROR "${path} has no digest field")
  endif()
  set(${digest_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
  if(NOT doc MATCHES "\"totals\":{\"alloc_count\":([0-9]+),\"alloc_bytes\":([0-9]+)")
    message(FATAL_ERROR "${path} has no allocation totals")
  endif()
  set(${count_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
  set(${bytes_var} "${CMAKE_MATCH_2}" PARENT_SCOPE)
endfunction()

function(check_csvs_match label)
  file(GLOB ref_csvs "${WORK_DIR}/ref_csv/*.csv")
  if(ref_csvs STREQUAL "")
    message(FATAL_ERROR "${label}: no reference CSVs were captured")
  endif()
  foreach(ref ${ref_csvs})
    get_filename_component(csv_name "${ref}" NAME)
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E compare_files
        "${ref}" "${WORK_DIR}/bench_out/${csv_name}"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "${label}: ${csv_name} differs from the unprofiled reference — "
        "profiling must observe, never alter")
    endif()
  endforeach()
endfunction()

# --- 1. warm-up + unprofiled reference -----------------------------------
# fig3[a-d]_*.csv are the result tables; fig3_stage_timing.csv is
# measured latency and differs between ANY two runs, so it is no
# byte-identity subject.
run_bench("reference run" ref_out --threads 1)
file(GLOB plain_csvs "${WORK_DIR}/bench_out/fig3[abcd]_*.csv")
if(plain_csvs STREQUAL "")
  message(FATAL_ERROR "reference run produced no fig3 CSVs")
endif()
file(MAKE_DIRECTORY "${WORK_DIR}/ref_csv")
file(COPY ${plain_csvs} DESTINATION "${WORK_DIR}/ref_csv")

# --- 2. profiled single-threaded run -------------------------------------
run_bench("profiled t1 run" t1_out --threads 1 --profile)
if(NOT EXISTS "${WORK_DIR}/bench_out/fig3.profile.json")
  message(FATAL_ERROR "profiled run wrote no bench_out/fig3.profile.json")
endif()
if(NOT EXISTS "${WORK_DIR}/bench_out/fig3.profile.html")
  message(FATAL_ERROR "profiled run wrote no bench_out/fig3.profile.html")
endif()
if(NOT t1_out MATCHES "\\[profile\\]")
  message(FATAL_ERROR "profiled run printed no hotspot table:\n${t1_out}")
endif()
read_profile("${WORK_DIR}/bench_out/fig3.profile.json"
  t1_digest t1_alloc_count t1_alloc_bytes)
if(t1_alloc_count EQUAL 0)
  message(FATAL_ERROR "profiled run attributed zero allocations")
endif()
check_csvs_match("profiled t1 run")

# --- 3. profiled two-thread run: lane-merge determinism ------------------
run_bench("profiled t2 run" t2_out --threads 2 --profile)
read_profile("${WORK_DIR}/bench_out/fig3.profile.json"
  t2_digest t2_alloc_count t2_alloc_bytes)
if(NOT t1_digest STREQUAL t2_digest)
  message(FATAL_ERROR
    "profile digest differs across thread counts: "
    "t1=${t1_digest} t2=${t2_digest}")
endif()
if(NOT t1_alloc_count EQUAL t2_alloc_count OR
   NOT t1_alloc_bytes EQUAL t2_alloc_bytes)
  message(FATAL_ERROR
    "allocation totals differ across thread counts: "
    "t1=${t1_alloc_count}/${t1_alloc_bytes} "
    "t2=${t2_alloc_count}/${t2_alloc_bytes}")
endif()
check_csvs_match("profiled t2 run")

# --- 4. profile metrics must survive a clean sentinel compare ------------
file(READ "${WORK_DIR}/bench_out/BENCH_fig3.json" candidate)
foreach(metric profile_alloc_bytes_total profile_alloc_count profile_excl_ms)
  if(NOT candidate MATCHES "${metric}")
    message(FATAL_ERROR "BENCH_fig3.json lacks the ${metric} metric")
  endif()
endforeach()
file(COPY "${WORK_DIR}/bench_out/BENCH_fig3.json"
  DESTINATION "${WORK_DIR}/baselines")

run_bench("compare run" cmp_out --threads 2 --profile)
execute_process(
  COMMAND "${SENTINEL_EXE}" compare --bench fig3 --rel-tol 0.5
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "profiled compare exited ${rc}:\n${out}${err}")
endif()
if(NOT out MATCHES "0 regressed")
  message(FATAL_ERROR "profiled compare reported regressions:\n${out}")
endif()

message(STATUS "profile gate OK in ${WORK_DIR}")
