// Unit tests for the util library: RNG determinism and distribution
// sanity, MD5 vectors, stats, table/CSV formatting, byte round-trips,
// fingerprints.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "util/bytes.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/hashing.h"
#include "util/md5.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace edgestab {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_THROW(ES_CHECK_MSG(1 == 2, "custom " << 42), CheckError);
  try {
    ES_CHECK_MSG(false, "hello " << 7);
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("hello 7"), std::string::npos);
  }
}

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42, 3), b(42, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u32() == b.next_u32()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Pcg32, UniformInRange) {
  Pcg32 rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    int v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Pcg32, UniformIntCoversAllValues) {
  Pcg32 rng(11);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[rng.uniform_int(5u)];
  for (int c : counts) EXPECT_GT(c, 800);
}

TEST(Pcg32, NormalMomentsApproximate) {
  Pcg32 rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stdev(), 1.0, 0.03);
}

TEST(Pcg32, PoissonMeanMatchesLambda) {
  Pcg32 rng(17);
  for (double lambda : {0.5, 4.0, 50.0}) {
    RunningStats s;
    for (int i = 0; i < 5000; ++i) s.add(rng.poisson(lambda));
    EXPECT_NEAR(s.mean(), lambda, lambda * 0.1 + 0.1) << "lambda=" << lambda;
  }
}

TEST(Pcg32, PoissonZeroLambda) {
  Pcg32 rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Pcg32, ShuffleIsPermutation) {
  Pcg32 rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Pcg32, ForkProducesIndependentStreams) {
  Pcg32 root(5);
  Pcg32 a = root.fork(1);
  Pcg32 b = root.fork(1);  // second fork advances root state
  EXPECT_NE(a.next_u32(), b.next_u32());
}

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(std::string("")),
            "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(std::string("abc")),
            "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(std::string("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(std::string(
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz012345"
                "6789")),
            "d174ab98d277d9f5a5611c2c9f419d9f");
}

TEST(Md5, IncrementalMatchesOneShot) {
  std::string msg(1000, 'x');
  Md5 h;
  h.update(msg.data(), 137);
  h.update(msg.data() + 137, msg.size() - 137);
  auto d = h.digest();
  EXPECT_EQ(to_hex(d), Md5::hex(msg));
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stdev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Quantile, InterpolatesLinearly) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.125), 1.5);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);   // bin 0
  h.add(0.95);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(5.0);    // clamps to bin 9
  h.add(1.0);    // boundary clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 3u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.bin_fraction(9), 0.6, 1e-12);
  EXPECT_NEAR(h.bin_center(0), 0.05, 1e-12);
}

TEST(Table, RendersAlignedCells) {
  Table t({"A", "LONG_HEADER"});
  t.add_row({"x", "1"});
  t.add_separator();
  t.add_row({"yy", "2"});
  std::string s = t.str();
  EXPECT_NE(s.find("| A  | LONG_HEADER |"), std::string::npos);
  EXPECT_NE(s.find("| yy | 2           |"), std::string::npos);
}

TEST(Table, RowWidthChecked) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::pct(0.5415, 1), "54.1%");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::kb(2048.0, 1), "2.0");
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "has,comma"});
  w.add_row({"has\"quote", "multi\nline"});
  std::string s = w.str();
  EXPECT_NE(s.find("plain,\"has,comma\""), std::string::npos);
  EXPECT_NE(s.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, WritesFile) {
  CsvWriter w({"x"});
  w.add_row({"1"});
  std::string path = "/tmp/edgestab_test_csv.csv";
  w.write_file(path);
  auto data = read_file(path);
  EXPECT_EQ(std::string(data.begin(), data.end()), "x\n1\n");
  std::filesystem::remove(path);
}

TEST(Bytes, RoundTripAllTypes) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.f32(3.25f);
  w.f64(-1.5e300);
  w.str("hello");
  w.f32_array(std::vector<float>{1.0f, -2.0f});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_FLOAT_EQ(r.f32(), 3.25f);
  EXPECT_DOUBLE_EQ(r.f64(), -1.5e300);
  EXPECT_EQ(r.str(), "hello");
  auto arr = r.f32_array();
  ASSERT_EQ(arr.size(), 2u);
  EXPECT_FLOAT_EQ(arr[0], 1.0f);
  EXPECT_FLOAT_EQ(arr[1], -2.0f);
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncationThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  r.u8();
  EXPECT_THROW(r.u32(), CheckError);
}

TEST(Bytes, FileRoundTrip) {
  std::string path = "/tmp/edgestab_test_bytes.bin";
  Bytes data{1, 2, 3, 250};
  write_file(path, data);
  EXPECT_TRUE(file_exists(path));
  EXPECT_EQ(read_file(path), data);
  std::filesystem::remove(path);
  EXPECT_FALSE(file_exists(path));
}

TEST(Hashing, FingerprintOrderSensitive) {
  Fingerprint a, b;
  a.add(1).add(2);
  b.add(2).add(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(Hashing, FingerprintStringsDistinguished) {
  Fingerprint a, b;
  a.add(std::string("ab")).add(std::string("c"));
  b.add(std::string("a")).add(std::string("bc"));
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(a.hex().size(), 16u);
}

TEST(Hashing, Fnv1a64KnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a64(std::string("")), 0xcbf29ce484222325ULL);
}

}  // namespace
}  // namespace edgestab
