// Unit tests for the tensor library: shape bookkeeping, GEMM variants
// (including the blocked accumulation mode), im2col/col2im adjointness,
// depthwise convolution, and softmax/cross-entropy.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace edgestab {
namespace {

Tensor random_tensor(std::vector<int> shape, Pcg32& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (float& v : t.data())
    v = static_cast<float>(rng.normal(0.0, scale));
  return t;
}

TEST(Tensor, ShapeAndNumel) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.rank(), 4);
  EXPECT_EQ(t.numel(), 120u);
  EXPECT_EQ(t.dim(2), 4);
}

TEST(Tensor, RejectsNonPositiveDims) {
  EXPECT_THROW(Tensor({2, 0}), CheckError);
  EXPECT_THROW(Tensor({-1}), CheckError);
}

TEST(Tensor, At4Layout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  // NCHW: offset = ((1*3+2)*4+3)*5+4 = 119
  EXPECT_FLOAT_EQ(t.data()[119], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r[7], 7.0f);
  EXPECT_THROW(t.reshaped({5, 5}), CheckError);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a({2, 2}, 1.0f);
  Tensor b({2, 2}, 2.0f);
  a.add_scaled(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a[3], 4.0f);
  Tensor c({3, 1});
  EXPECT_THROW(a.add_scaled(c, 1.0f), CheckError);
}

TEST(Matmul, MatchesNaiveReference) {
  Pcg32 rng(1);
  Tensor a = random_tensor({5, 7}, rng);
  Tensor b = random_tensor({7, 4}, rng);
  Tensor c({5, 4});
  matmul(a, b, c);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 4; ++j) {
      float expect = 0.0f;
      for (int k = 0; k < 7; ++k) expect += a.at2(i, k) * b.at2(k, j);
      EXPECT_NEAR(c.at2(i, j), expect, 1e-5f);
    }
}

TEST(Matmul, AccumulateAddsToExisting) {
  Pcg32 rng(2);
  Tensor a = random_tensor({3, 3}, rng);
  Tensor b = random_tensor({3, 3}, rng);
  Tensor c({3, 3}, 1.0f);
  Tensor fresh({3, 3});
  matmul(a, b, fresh);
  matmul(a, b, c, /*accumulate=*/true);
  for (std::size_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], fresh[i] + 1.0f, 1e-5f);
}

TEST(Matmul, BlockedModeCloseButNotRequiredIdentical) {
  Pcg32 rng(3);
  Tensor a = random_tensor({8, 33}, rng);
  Tensor b = random_tensor({33, 9}, rng);
  Tensor c1({8, 9}), c2({8, 9});
  matmul(a, b, c1, false, MatmulMode::kStandard);
  matmul(a, b, c2, false, MatmulMode::kBlocked);
  for (std::size_t i = 0; i < c1.numel(); ++i)
    EXPECT_NEAR(c1[i], c2[i], 1e-4f);
}

TEST(Matmul, TransposedVariantsMatch) {
  Pcg32 rng(4);
  Tensor a = random_tensor({6, 5}, rng);   // [m,k]
  Tensor b = random_tensor({5, 7}, rng);   // [k,n]
  Tensor ref({6, 7});
  matmul(a, b, ref);

  // A^T stored as [k,m].
  Tensor at({5, 6});
  for (int i = 0; i < 6; ++i)
    for (int k = 0; k < 5; ++k) at.at2(k, i) = a.at2(i, k);
  Tensor c1({6, 7});
  matmul_at_b(at, b, c1);
  for (std::size_t i = 0; i < ref.numel(); ++i)
    EXPECT_NEAR(c1[i], ref[i], 1e-5f);

  // B^T stored as [n,k].
  Tensor bt({7, 5});
  for (int k = 0; k < 5; ++k)
    for (int j = 0; j < 7; ++j) bt.at2(j, k) = b.at2(k, j);
  Tensor c2({6, 7});
  matmul_a_bt(a, bt, c2);
  for (std::size_t i = 0; i < ref.numel(); ++i)
    EXPECT_NEAR(c2[i], ref[i], 1e-5f);
}

TEST(Matmul, ShapeMismatchThrows) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  Tensor c({2, 2});
  EXPECT_THROW(matmul(a, b, c), CheckError);
}

// im2col of a known tiny input.
TEST(Im2Col, ExtractsPatchesWithPadding) {
  // 1 channel 3x3 input, 3x3 kernel, stride 1, pad 1 -> 9 output positions.
  ConvGeom g{1, 3, 3, 1, 3, 1, 1};
  EXPECT_EQ(g.out_h(), 3);
  std::vector<float> input(9);
  for (int i = 0; i < 9; ++i) input[static_cast<std::size_t>(i)] = i + 1.0f;
  std::vector<float> cols(9u * 9u);
  im2col(input.data(), g, cols.data());
  // Row for kernel position (ky=1,kx=1) — the center — is the identity.
  const float* center = cols.data() + 4u * 9u;
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(center[i], input[i]);
  // Row for (0,0): output (0,0) samples input(-1,-1) = 0 padding.
  const float* topleft = cols.data();
  EXPECT_FLOAT_EQ(topleft[0], 0.0f);
  // Output (2,2) samples input(1,1) = 5.
  EXPECT_FLOAT_EQ(topleft[8], 5.0f);
}

// col2im must be the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>.
TEST(Im2Col, Col2ImIsAdjoint) {
  Pcg32 rng(5);
  for (int stride : {1, 2}) {
    ConvGeom g{2, 6, 5, 1, 3, stride, 1};
    std::size_t in_n = 2u * 6u * 5u;
    std::size_t cols_n =
        static_cast<std::size_t>(2 * 9) * g.out_h() * g.out_w();
    std::vector<float> x(in_n), y(cols_n), cols(cols_n),
        back(in_n, 0.0f);
    for (auto& v : x) v = static_cast<float>(rng.normal());
    for (auto& v : y) v = static_cast<float>(rng.normal());
    im2col(x.data(), g, cols.data());
    col2im(y.data(), g, back.data());
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t i = 0; i < cols_n; ++i) lhs += cols[i] * y[i];
    for (std::size_t i = 0; i < in_n; ++i) rhs += x[i] * back[i];
    EXPECT_NEAR(lhs, rhs, 1e-3) << "stride=" << stride;
  }
}

TEST(Depthwise, MatchesDirectComputation) {
  Pcg32 rng(6);
  ConvGeom g{3, 5, 5, 3, 3, 1, 1};
  Tensor input = random_tensor({2, 3, 5, 5}, rng);
  Tensor weights = random_tensor({3, 3, 3}, rng);
  Tensor bias = random_tensor({3}, rng);
  Tensor out({2, 3, 5, 5});
  depthwise_conv_forward(input, weights, bias.raw(), g, out);
  // Check one interior pixel by hand.
  float expect = bias[1];
  for (int ky = 0; ky < 3; ++ky)
    for (int kx = 0; kx < 3; ++kx)
      expect += weights[static_cast<std::size_t>(1 * 9 + ky * 3 + kx)] *
                input.at4(1, 1, 1 + ky, 2 + kx);
  EXPECT_NEAR(out.at4(1, 1, 2, 3), expect, 1e-5f);
}

TEST(Depthwise, StrideTwoGeometry) {
  ConvGeom g{1, 8, 8, 1, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 4);
  Tensor input({1, 1, 8, 8}, 1.0f);
  Tensor weights({1, 3, 3}, 1.0f);
  Tensor out({1, 1, 4, 4});
  depthwise_conv_forward(input, weights, nullptr, g, out);
  // Interior outputs sum 9 ones.
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);
  // Corner (0,0) covers 2x2 valid inputs.
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Tensor logits({2, 3});
  logits.at2(0, 0) = 1.0f;
  logits.at2(0, 1) = 2.0f;
  logits.at2(0, 2) = 3.0f;
  logits.at2(1, 0) = 1000.0f;  // overflow-stability check
  logits.at2(1, 1) = 1001.0f;
  logits.at2(1, 2) = 999.0f;
  Tensor probs({2, 3});
  softmax_rows(logits, probs);
  for (int i = 0; i < 2; ++i) {
    float sum = probs.at2(i, 0) + probs.at2(i, 1) + probs.at2(i, 2);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  EXPECT_GT(probs.at2(0, 2), probs.at2(0, 1));
  EXPECT_GT(probs.at2(1, 1), probs.at2(1, 0));
  EXPECT_FALSE(std::isnan(probs.at2(1, 0)));
}

TEST(Softmax, CrossEntropyKnownValue) {
  Tensor logits({1, 2});
  logits.at2(0, 0) = 0.0f;
  logits.at2(0, 1) = 0.0f;
  Tensor probs({1, 2});
  double loss = softmax_cross_entropy(logits, {1}, probs);
  EXPECT_NEAR(loss, std::log(2.0), 1e-6);
}

}  // namespace
}  // namespace edgestab
