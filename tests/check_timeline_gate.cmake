# Hermetic gate for the service timeline (DESIGN.md §18): the epoch
# series digest must be bit-identical across thread counts AND across a
# hard kill + --resume, the per-epoch outcome deltas must reconcile
# exactly against the run's shot count, arming the timeline must not
# perturb any other artifact, and the sentinel's offline re-render must
# round-trip the HTML byte-exactly.
#
#   1. unarmed run                       -> no timeline artifacts; snapshot
#                                           the per-device CSV
#   2. armed run at --threads 2          -> timeline.json/html land,
#                                           digest.timeline D in meta.json,
#                                           per-device CSV byte-identical
#                                           to the unarmed snapshot
#   3. armed run at --threads 1          -> digest.timeline == D
#   4. armed --kill-after-ckpt 2         -> must exit 7 (epoch 5 vs ckpt
#                                           cadence 7: the checkpoint lands
#                                           mid-epoch)
#   5. armed --resume                    -> digest.timeline == D
#   6. edgestab_sentinel timeline FILE   -> "shots accounted: 640" and a
#                                           --out re-render byte-identical
#                                           to the bench's HTML
#
# Expected -D variables: BENCH_EXE, SENTINEL_EXE, WORK_DIR, CACHE_DIR.
foreach(var BENCH_EXE SENTINEL_EXE WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_timeline_gate: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# The soak-gate geometry: all three device classes, a deadline tight
# enough to open breakers (so the transition stream is non-empty),
# moderate capture/delivery faults. 640 shots is the reconciliation
# target the sentinel must account for.
set(common_args
  --devices 8 --shots 640 --bank 4 --scene 32
  --faults "moderate,budget,deadline_ms=24")
# 5-slot epochs against a 7-slot checkpoint cadence: every checkpoint
# boundary lands mid-epoch, so resume must restore the open partial
# epoch exactly.
set(timeline_args --timeline --timeline-epoch 5)
set(ckpt_file "${WORK_DIR}/timeline.ckpt.json")
set(out_dir "${WORK_DIR}/bench_out")

function(run_soak out_var expect_rc)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      "EDGESTAB_CACHE=${CACHE_DIR}"
      "${BENCH_EXE}" ${common_args} ${ARGN}
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE out)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
      "timeline_gate: ${ARGN} exited with ${rc} (expected ${expect_rc}):\n${out}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# Pull the timeline digest out of a meta.json manifest.
function(timeline_digest out_var file)
  file(READ "${file}" body)
  string(REGEX MATCH "\"timeline\":\"([0-9a-f]+)\"" m "${body}")
  if(m STREQUAL "")
    message(FATAL_ERROR "timeline_gate: no timeline digest in ${file}")
  endif()
  set(${out_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

function(compare_files label a b)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files "${a}" "${b}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "timeline_gate: ${label}: ${a} and ${b} differ")
  endif()
endfunction()

message(STATUS "==== timeline_gate: unarmed run writes no timeline ====")
run_soak(out 0 --threads 2)
if(EXISTS "${out_dir}/fleet_soak.timeline.json" OR
   EXISTS "${out_dir}/fleet_soak.timeline.html")
  message(FATAL_ERROR
    "timeline_gate: unarmed run wrote timeline artifacts")
endif()
file(READ "${out_dir}/fleet_soak.meta.json" unarmed_meta)
if(unarmed_meta MATCHES "\"timeline\":")
  message(FATAL_ERROR
    "timeline_gate: unarmed manifest carries a timeline digest")
endif()
configure_file("${out_dir}/fleet_soak_devices.csv"
  "${WORK_DIR}/unarmed_devices.csv" COPYONLY)

message(STATUS "==== timeline_gate: armed reference run (--threads 2) ====")
run_soak(out 0 --threads 2 ${timeline_args})
foreach(artifact fleet_soak.timeline.json fleet_soak.timeline.html)
  if(NOT EXISTS "${out_dir}/${artifact}")
    message(FATAL_ERROR "timeline_gate: armed run wrote no ${artifact}")
  endif()
endforeach()
timeline_digest(ref_digest "${out_dir}/fleet_soak.meta.json")
# Arming the timeline must not perturb the rest of the artifact set.
compare_files("armed run changed the per-device CSV"
  "${out_dir}/fleet_soak_devices.csv" "${WORK_DIR}/unarmed_devices.csv")

message(STATUS "==== timeline_gate: thread invariance (--threads 1) ====")
run_soak(out 0 --threads 1 ${timeline_args})
timeline_digest(t1_digest "${out_dir}/fleet_soak.meta.json")
if(NOT t1_digest STREQUAL ref_digest)
  message(FATAL_ERROR
    "timeline_gate: series digest differs across thread counts:\n"
    "  threads 2: ${ref_digest}\n  threads 1: ${t1_digest}")
endif()

message(STATUS "==== timeline_gate: hard kill after 2 checkpoints ====")
run_soak(out 7 --threads 2 ${timeline_args}
  --ckpt "${ckpt_file}" --ckpt-slots 7 --kill-after-ckpt 2)
if(NOT EXISTS "${ckpt_file}")
  message(FATAL_ERROR "timeline_gate: hard kill left no checkpoint file")
endif()

message(STATUS "==== timeline_gate: resume continues the series ====")
run_soak(resume_out 0 --threads 2 ${timeline_args}
  --ckpt "${ckpt_file}" --ckpt-slots 7 --resume)
if(NOT resume_out MATCHES "resumed from")
  message(FATAL_ERROR "timeline_gate: resume run did not report resuming")
endif()
timeline_digest(resumed_digest "${out_dir}/fleet_soak.meta.json")
if(NOT resumed_digest STREQUAL ref_digest)
  message(FATAL_ERROR
    "timeline_gate: kill/resume series differs from the uninterrupted "
    "run:\n  reference: ${ref_digest}\n  resumed:   ${resumed_digest}")
endif()

message(STATUS "==== timeline_gate: sentinel reconciliation + re-render ====")
execute_process(
  COMMAND "${SENTINEL_EXE}" timeline "${out_dir}/fleet_soak.timeline.json"
    --out "${WORK_DIR}/rerender.html"
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
    "timeline_gate: sentinel timeline failed with ${rc}:\n${out}")
endif()
# The per-epoch outcome deltas must sum exactly to the run's shot count.
if(NOT out MATCHES "shots accounted: 640")
  message(FATAL_ERROR
    "timeline_gate: outcome deltas do not reconcile to 640 shots:\n${out}")
endif()
compare_files("sentinel re-render is not byte-identical"
  "${WORK_DIR}/rerender.html" "${out_dir}/fleet_soak.timeline.html")

message(STATUS
  "timeline_gate OK — series bit-identical across threads and "
  "kill/resume, outcomes reconcile, HTML round-trips")
