// ISP + sensor tests: CFA geometry, raw container round-trips, sensor
// noise statistics and determinism, demosaic correctness on synthetic
// mosaics, individual stage invariants, pipeline composition, and the
// software-ISP consistency property the §6 experiment relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "image/metrics.h"
#include "isp/pipeline.h"
#include "isp/raw.h"
#include "isp/sensor.h"
#include "isp/software_isp.h"
#include "util/rng.h"
#include "util/stats.h"

namespace edgestab {
namespace {

TEST(Cfa, RggbPattern) {
  EXPECT_EQ(cfa_color(BayerPattern::kRggb, 0, 0), 0);  // R
  EXPECT_EQ(cfa_color(BayerPattern::kRggb, 1, 0), 1);  // G
  EXPECT_EQ(cfa_color(BayerPattern::kRggb, 0, 1), 1);  // G
  EXPECT_EQ(cfa_color(BayerPattern::kRggb, 1, 1), 2);  // B
  // Periodicity.
  EXPECT_EQ(cfa_color(BayerPattern::kRggb, 4, 6), 0);
}

TEST(Cfa, BggrPattern) {
  EXPECT_EQ(cfa_color(BayerPattern::kBggr, 0, 0), 2);
  EXPECT_EQ(cfa_color(BayerPattern::kBggr, 1, 1), 0);
}

TEST(RawImage, SerializeRoundTripAtBitDepth) {
  Pcg32 rng(1);
  RawImage raw(16, 12, BayerPattern::kRggb, 0.06f, 10);
  for (float& v : raw.data())
    v = static_cast<float>(rng.uniform());
  // Quantize to the container's own precision first, then expect an
  // exact round-trip.
  Bytes data = raw.serialize();
  RawImage back = RawImage::deserialize(data);
  EXPECT_EQ(back.width(), 16);
  EXPECT_EQ(back.height(), 12);
  EXPECT_EQ(back.bit_depth(), 10);
  EXPECT_FLOAT_EQ(back.black_level(), 0.06f);
  for (std::size_t i = 0; i < raw.data().size(); ++i)
    EXPECT_NEAR(back.data()[i], raw.data()[i], 1.0f / 1023.0f);
  // Second round-trip is exact.
  EXPECT_EQ(RawImage::deserialize(back.serialize()).data(), back.data());
}

TEST(RawImage, DeserializeRejectsGarbage) {
  Bytes garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(RawImage::deserialize(garbage), CheckError);
}

TEST(Sensor, DeterministicGivenSameRngState) {
  Image scene(32, 32, 3, 0.5f);
  SensorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  Pcg32 rng1(7, 3), rng2(7, 3);
  RawImage a = expose_sensor(scene, cfg, rng1);
  RawImage b = expose_sensor(scene, cfg, rng2);
  EXPECT_EQ(a.data(), b.data());
}

TEST(Sensor, TemporalNoiseDiffersAcrossShots) {
  Image scene(32, 32, 3, 0.5f);
  SensorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  Pcg32 rng(7, 3);
  RawImage a = expose_sensor(scene, cfg, rng);
  RawImage b = expose_sensor(scene, cfg, rng);
  EXPECT_NE(a.data(), b.data());
  // But only slightly: shots of the same scene are nearly identical.
  double mad = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    mad += std::abs(a.data()[i] - b.data()[i]);
  mad /= static_cast<double>(a.data().size());
  EXPECT_LT(mad, 0.02);
}

TEST(Sensor, MeanLevelTracksSceneBrightness) {
  SensorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.vignetting = 0.0f;
  Pcg32 rng(9);
  for (float level : {0.2f, 0.5f, 0.8f}) {
    Image scene(32, 32, 3, level);
    RawImage raw = expose_sensor(scene, cfg, rng);
    RunningStats s;
    for (float v : raw.data()) s.add(v);
    float expected = cfg.black_level + (1.0f - cfg.black_level) * level;
    EXPECT_NEAR(s.mean(), expected, 0.02) << "level=" << level;
  }
}

TEST(Sensor, VignettingDarkensCorners) {
  SensorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.vignetting = 0.3f;
  cfg.read_noise = 0.0f;
  cfg.full_well = 1e7f;  // effectively noiseless
  Image scene(32, 32, 3, 0.6f);
  Pcg32 rng(11);
  RawImage raw = expose_sensor(scene, cfg, rng);
  float center = raw.at(16, 16);
  float corner = raw.at(0, 0);
  EXPECT_GT(center, corner + 0.05f);
}

TEST(Sensor, PrnuFixedPerUnit) {
  SensorConfig cfg;
  cfg.width = 16;
  cfg.height = 16;
  cfg.read_noise = 0.0f;
  cfg.full_well = 1e7f;
  cfg.prnu_sigma = 0.05f;
  Image scene(16, 16, 3, 0.5f);
  Pcg32 rng1(1, 1), rng2(2, 9);
  RawImage a = expose_sensor(scene, cfg, rng1);
  RawImage b = expose_sensor(scene, cfg, rng2);
  // Same unit seed -> same fixed pattern even with different temporal rng.
  for (std::size_t i = 0; i < a.data().size(); ++i)
    EXPECT_NEAR(a.data()[i], b.data()[i], 2e-3f);
  // Different unit seed -> different pattern.
  cfg.unit_seed = 999;
  Pcg32 rng3(1, 1);
  RawImage c = expose_sensor(scene, cfg, rng3);
  EXPECT_NE(a.data(), c.data());
}

TEST(Stages, BlackLevelSubtraction) {
  RawImage raw(8, 8, BayerPattern::kRggb, 0.1f, 10);
  for (float& v : raw.data()) v = 0.55f;
  black_level_subtract(raw);
  for (float v : raw.data()) EXPECT_NEAR(v, 0.5f, 1e-5f);
}

/// Build a mosaic from a known constant-color image.
RawImage mosaic_of(float r, float g, float b, int size,
                   BayerPattern pattern = BayerPattern::kRggb) {
  RawImage raw(size, size, pattern, 0.0f, 10);
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      int c = raw.color_at(x, y);
      raw.at(x, y) = c == 0 ? r : (c == 1 ? g : b);
    }
  return raw;
}

class DemosaicTest
    : public ::testing::TestWithParam<std::pair<DemosaicKind, BayerPattern>> {
};

TEST_P(DemosaicTest, RecoversConstantColors) {
  auto [kind, pattern] = GetParam();
  RawImage raw = mosaic_of(0.7f, 0.4f, 0.2f, 16, pattern);
  Image rgb = demosaic(raw, kind);
  // Interior pixels recover the exact constant color.
  for (int y = 4; y < 12; ++y)
    for (int x = 4; x < 12; ++x) {
      EXPECT_NEAR(rgb.at(x, y, 0), 0.7f, 0.02f);
      EXPECT_NEAR(rgb.at(x, y, 1), 0.4f, 0.02f);
      EXPECT_NEAR(rgb.at(x, y, 2), 0.2f, 0.02f);
    }
}

TEST_P(DemosaicTest, PreservesSampledSites) {
  auto [kind, pattern] = GetParam();
  Pcg32 rng(13);
  RawImage raw(12, 12, pattern, 0.0f, 10);
  for (float& v : raw.data()) v = static_cast<float>(rng.uniform());
  Image rgb = demosaic(raw, kind);
  for (int y = 0; y < 12; ++y)
    for (int x = 0; x < 12; ++x)
      EXPECT_FLOAT_EQ(rgb.at(x, y, raw.color_at(x, y)), raw.at(x, y));
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndPatterns, DemosaicTest,
    ::testing::Values(
        std::make_pair(DemosaicKind::kBilinear, BayerPattern::kRggb),
        std::make_pair(DemosaicKind::kBilinear, BayerPattern::kBggr),
        std::make_pair(DemosaicKind::kMalvar, BayerPattern::kRggb),
        std::make_pair(DemosaicKind::kMalvar, BayerPattern::kBggr)));

TEST(Stages, MalvarSharperThanBilinearOnEdges) {
  // A vertical step edge: gradient-corrected demosaicing should
  // reconstruct it with lower error than plain bilinear.
  int size = 32;
  RawImage raw(size, size, BayerPattern::kRggb, 0.0f, 12);
  Image truth(size, size, 3);
  for (int y = 0; y < size; ++y)
    for (int x = 0; x < size; ++x) {
      float v = x < size / 2 ? 0.2f : 0.8f;
      for (int c = 0; c < 3; ++c) truth.at(x, y, c) = v;
      raw.at(x, y) = v;
    }
  Image bil = demosaic(raw, DemosaicKind::kBilinear);
  Image mal = demosaic(raw, DemosaicKind::kMalvar);
  EXPECT_LT(mse(mal, truth), mse(bil, truth));
}

TEST(Stages, WhiteBalancePreset) {
  Image img(4, 4, 3, 0.5f);
  white_balance_preset(img, {2.0f, 1.0f, 0.5f});
  EXPECT_FLOAT_EQ(img.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 1), 0.5f);
  EXPECT_FLOAT_EQ(img.at(0, 0, 2), 0.25f);
}

TEST(Stages, GrayWorldEqualizesChannelMeans) {
  Pcg32 rng(15);
  Image img(16, 16, 3);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x) {
      img.at(x, y, 0) = 0.6f + static_cast<float>(rng.uniform(-0.1, 0.1));
      img.at(x, y, 1) = 0.4f + static_cast<float>(rng.uniform(-0.1, 0.1));
      img.at(x, y, 2) = 0.2f + static_cast<float>(rng.uniform(-0.1, 0.1));
    }
  white_balance_gray_world(img);
  std::array<double, 3> means{};
  for (int c = 0; c < 3; ++c) {
    for (float v : img.plane(c)) means[static_cast<std::size_t>(c)] += v;
    means[static_cast<std::size_t>(c)] /= 256.0;
  }
  EXPECT_NEAR(means[0], means[1], 1e-4);
  EXPECT_NEAR(means[1], means[2], 1e-4);
}

TEST(Stages, ToneMapMonotoneAndBounded) {
  Image img(8, 1, 3);
  for (int x = 0; x < 8; ++x)
    for (int c = 0; c < 3; ++c)
      img.at(x, 0, c) = static_cast<float>(x) / 7.0f;
  tone_map(img, 2.2f, 0.4f);
  for (int x = 1; x < 8; ++x)
    EXPECT_GE(img.at(x, 0, 0), img.at(x - 1, 0, 0));
  EXPECT_NEAR(img.at(0, 0, 0), 0.0f, 1e-5f);
  EXPECT_NEAR(img.at(7, 0, 0), 1.0f, 1e-5f);
}

TEST(Stages, DenoiseReducesNoiseEnergy) {
  Pcg32 rng(17);
  Image clean(16, 16, 3, 0.5f);
  Image noisy = clean;
  for (float& v : noisy.data())
    v += static_cast<float>(rng.normal(0.0, 0.05));
  Image denoised = noisy;
  denoise_box(denoised, 1, 0.8f);
  EXPECT_LT(mse(denoised, clean), mse(noisy, clean));
}

TEST(Stages, SharpenAmplifiesEdges) {
  Image img(16, 16, 3);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      for (int c = 0; c < 3; ++c)
        img.at(x, y, c) = x < 8 ? 0.3f : 0.7f;
  Image sharpened = img;
  sharpen_unsharp(sharpened, 1, 1.0f);
  // Overshoot on both sides of the edge.
  EXPECT_LT(sharpened.at(7, 8, 0), img.at(7, 8, 0));
  EXPECT_GT(sharpened.at(8, 8, 0), img.at(8, 8, 0));
}

TEST(Stages, SaturationIdentityAndGray) {
  Pcg32 rng(19);
  Image img(4, 4, 3);
  for (float& v : img.data()) v = static_cast<float>(rng.uniform());
  Image copy = img;
  saturate(copy, 1.0f);
  for (std::size_t i = 0; i < img.data().size(); ++i)
    EXPECT_FLOAT_EQ(copy.data()[i], img.data()[i]);
  saturate(copy, 0.0f);  // full desaturation -> all channels equal
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) {
      EXPECT_NEAR(copy.at(x, y, 0), copy.at(x, y, 1), 1e-5f);
      EXPECT_NEAR(copy.at(x, y, 1), copy.at(x, y, 2), 1e-5f);
    }
}

TEST(Pipeline, OutputsDisplayRangeImage) {
  SensorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  Image scene(32, 32, 3, 0.5f);
  Pcg32 rng(21);
  RawImage raw = expose_sensor(scene, cfg, rng);
  Image out = run_isp(raw, IspConfig{});
  EXPECT_EQ(out.width(), 32);
  EXPECT_EQ(out.channels(), 3);
  for (float v : out.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(SoftwareIsp, ConsistentButDifferent) {
  // The §6 property: each converter is deterministic, and the two
  // produce visibly different renditions of identical raws.
  SensorConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  Pcg32 rng(23);
  Image scene(32, 32, 3);
  for (float& v : scene.data()) v = static_cast<float>(rng.uniform());
  Pcg32 shot_rng(5, 5);
  RawImage raw = expose_sensor(scene, cfg, shot_rng);

  Image a1 = run_isp(raw, magick_isp());
  Image a2 = run_isp(raw, magick_isp());
  EXPECT_EQ(to_u8(a1), to_u8(a2));  // consistent

  Image b = run_isp(raw, photo_isp());
  EXPECT_GT(diff_fraction(a1, b, 0.05f), 0.05);  // different rendition
}

}  // namespace
}  // namespace edgestab
