# Builds the four EDGESTAB_DRIFT x EDGESTAB_TRACING build flavors in
# child build trees, runs bench_table4_isp end-to-end in each (smoke-size
# rig via EDGESTAB_RIG_OBJECTS, shared model cache), and asserts that the
# drift artifacts exist exactly in the drift-enabled flavors and the
# trace artifacts exactly in the tracing-enabled ones — i.e. that both
# observability subsystems really are compile-time removable without
# breaking the bench.
#
# Expected -D variables: SOURCE_DIR, WORK_DIR, CACHE_DIR.
foreach(var SOURCE_DIR WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_drift_matrix: ${var} not set")
  endif()
endforeach()

foreach(drift ON OFF)
  foreach(tracing ON OFF)
    set(tag "drift_${drift}_tracing_${tracing}")
    set(build_dir "${WORK_DIR}/${tag}")
    message(STATUS "==== ${tag}: configure ====")
    execute_process(
      COMMAND ${CMAKE_COMMAND} -S "${SOURCE_DIR}" -B "${build_dir}"
        -DCMAKE_BUILD_TYPE=Release
        -DEDGESTAB_DRIFT=${drift}
        -DEDGESTAB_TRACING=${tracing}
      RESULT_VARIABLE rc
      OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${tag}: configure failed with ${rc}")
    endif()

    message(STATUS "==== ${tag}: build bench_table4_isp ====")
    include(ProcessorCount)
    ProcessorCount(ncpu)
    if(ncpu EQUAL 0)
      set(ncpu 2)
    endif()
    execute_process(
      COMMAND ${CMAKE_COMMAND} --build "${build_dir}"
        --target bench_table4_isp --parallel ${ncpu}
      RESULT_VARIABLE rc
      OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${tag}: build failed with ${rc}")
    endif()

    message(STATUS "==== ${tag}: run ====")
    set(run_dir "${build_dir}/smoke_run")
    file(REMOVE_RECURSE "${run_dir}")
    file(MAKE_DIRECTORY "${run_dir}")
    execute_process(
      COMMAND ${CMAKE_COMMAND} -E env
        "EDGESTAB_CACHE=${CACHE_DIR}"
        "EDGESTAB_RIG_OBJECTS=2"
        "${build_dir}/bench/bench_table4_isp"
      WORKING_DIRECTORY "${run_dir}"
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "${tag}: bench exited with ${rc}")
    endif()

    set(out "${run_dir}/bench_out")
    foreach(artifact "table4_isp.csv" "table4_isp.meta.json")
      if(NOT EXISTS "${out}/${artifact}")
        message(FATAL_ERROR "${tag}: missing artifact ${out}/${artifact}")
      endif()
    endforeach()

    set(drift_json "${out}/table4_isp.drift.json")
    set(drift_html "${out}/table4_isp.drift.html")
    if(drift)
      if(NOT EXISTS "${drift_json}")
        message(FATAL_ERROR "${tag}: drift build produced no ${drift_json}")
      endif()
      file(READ "${drift_json}" doc)
      if(NOT doc MATCHES "edgestab-drift-report-v1")
        message(FATAL_ERROR "${tag}: ${drift_json} lacks the report schema")
      endif()
      if(NOT doc MATCHES "\"stage\":\"demosaic\"")
        message(FATAL_ERROR "${tag}: ${drift_json} has no per-stage drift")
      endif()
      if(NOT doc MATCHES "\"flip_ledger\"")
        message(FATAL_ERROR "${tag}: ${drift_json} has no flip ledger")
      endif()
      if(NOT EXISTS "${drift_html}")
        message(FATAL_ERROR "${tag}: drift build produced no ${drift_html}")
      endif()
      file(READ "${drift_html}" html)
      if(NOT html MATCHES "stage-drift")
        message(FATAL_ERROR "${tag}: ${drift_html} has no stage-drift table")
      endif()
    else()
      if(EXISTS "${drift_json}" OR EXISTS "${drift_html}")
        message(FATAL_ERROR "${tag}: non-drift build still wrote drift reports")
      endif()
    endif()

    set(trace "${out}/table4_isp.trace.json")
    if(tracing)
      if(NOT EXISTS "${trace}")
        message(FATAL_ERROR "${tag}: tracing build produced no ${trace}")
      endif()
    else()
      if(EXISTS "${trace}")
        message(FATAL_ERROR "${tag}: non-tracing build still wrote ${trace}")
      endif()
    endif()

    message(STATUS "==== ${tag}: OK ====")
  endforeach()
endforeach()

message(STATUS "drift/tracing build-flavor matrix OK")
