# Build-flavor matrix for the compile-time-removable observability
# subsystems (drift auditing, span tracing, hot-path profiling).
#
# Four explicit (EDGESTAB_DRIFT, EDGESTAB_TRACING, EDGESTAB_PROFILE)
# flavors build in child trees and run bench_table4_isp end-to-end
# (smoke-size rig via EDGESTAB_RIG_OBJECTS, shared model cache):
#
#   full      ON  ON  ON   default flavor, run without --profile
#   noprof    ON  ON  OFF  byte-identity partner of `full`
#   proftrim  OFF OFF ON   profiler alone, run WITH --profile — profile
#                          artifacts must land even with tracing
#                          compiled out
#   bare      OFF OFF OFF  everything off, run WITH --profile — the
#                          flag must warn and write no profile artifacts
#
# Asserts drift artifacts exist exactly in drift flavors, trace
# artifacts exactly in tracing flavors, profile artifacts exactly where
# the profiler is compiled in AND requested — and that the deterministic
# result artifacts (CSV, drift report) of `full` and `noprof` are
# byte-identical: compiling the profiler out changes nothing.
#
# Expected -D variables: SOURCE_DIR, WORK_DIR, CACHE_DIR.
foreach(var SOURCE_DIR WORK_DIR CACHE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "check_drift_matrix: ${var} not set")
  endif()
endforeach()

include(ProcessorCount)
ProcessorCount(ncpu)
if(ncpu EQUAL 0)
  set(ncpu 2)
endif()

# run_flavor(tag drift tracing profile profile_flag expect_profile)
# Configures + builds the flavor, runs the bench (appending --profile
# when profile_flag is ON), and checks the per-subsystem artifacts. The
# run directory is left at ${WORK_DIR}/${tag}/smoke_run for the
# byte-identity comparison below.
function(run_flavor tag drift tracing profile profile_flag expect_profile)
  set(build_dir "${WORK_DIR}/${tag}")
  message(STATUS "==== ${tag}: configure ====")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -S "${SOURCE_DIR}" -B "${build_dir}"
      -DCMAKE_BUILD_TYPE=Release
      -DEDGESTAB_DRIFT=${drift}
      -DEDGESTAB_TRACING=${tracing}
      -DEDGESTAB_PROFILE=${profile}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${tag}: configure failed with ${rc}")
  endif()

  message(STATUS "==== ${tag}: build bench_table4_isp ====")
  execute_process(
    COMMAND ${CMAKE_COMMAND} --build "${build_dir}"
      --target bench_table4_isp --parallel ${ncpu}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${tag}: build failed with ${rc}")
  endif()

  message(STATUS "==== ${tag}: run ====")
  set(run_dir "${build_dir}/smoke_run")
  file(REMOVE_RECURSE "${run_dir}")
  file(MAKE_DIRECTORY "${run_dir}")
  set(bench_args "")
  if(profile_flag STREQUAL "ON")
    set(bench_args "--profile")
  endif()
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
      "EDGESTAB_CACHE=${CACHE_DIR}"
      "EDGESTAB_RIG_OBJECTS=2"
      "${build_dir}/bench/bench_table4_isp" ${bench_args}
    WORKING_DIRECTORY "${run_dir}"
    RESULT_VARIABLE rc ERROR_VARIABLE run_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${tag}: bench exited with ${rc}")
  endif()

  set(out "${run_dir}/bench_out")
  foreach(artifact "table4_isp.csv" "table4_isp.meta.json")
    if(NOT EXISTS "${out}/${artifact}")
      message(FATAL_ERROR "${tag}: missing artifact ${out}/${artifact}")
    endif()
  endforeach()

  set(drift_json "${out}/table4_isp.drift.json")
  set(drift_html "${out}/table4_isp.drift.html")
  if(drift)
    if(NOT EXISTS "${drift_json}")
      message(FATAL_ERROR "${tag}: drift build produced no ${drift_json}")
    endif()
    file(READ "${drift_json}" doc)
    if(NOT doc MATCHES "edgestab-drift-report-v1")
      message(FATAL_ERROR "${tag}: ${drift_json} lacks the report schema")
    endif()
    if(NOT doc MATCHES "\"stage\":\"demosaic\"")
      message(FATAL_ERROR "${tag}: ${drift_json} has no per-stage drift")
    endif()
    if(NOT doc MATCHES "\"flip_ledger\"")
      message(FATAL_ERROR "${tag}: ${drift_json} has no flip ledger")
    endif()
    if(NOT EXISTS "${drift_html}")
      message(FATAL_ERROR "${tag}: drift build produced no ${drift_html}")
    endif()
    file(READ "${drift_html}" html)
    if(NOT html MATCHES "stage-drift")
      message(FATAL_ERROR "${tag}: ${drift_html} has no stage-drift table")
    endif()
  else()
    if(EXISTS "${drift_json}" OR EXISTS "${drift_html}")
      message(FATAL_ERROR "${tag}: non-drift build still wrote drift reports")
    endif()
  endif()

  set(trace "${out}/table4_isp.trace.json")
  if(tracing)
    if(NOT EXISTS "${trace}")
      message(FATAL_ERROR "${tag}: tracing build produced no ${trace}")
    endif()
  else()
    if(EXISTS "${trace}")
      message(FATAL_ERROR "${tag}: non-tracing build still wrote ${trace}")
    endif()
  endif()

  set(profile_json "${out}/table4_isp.profile.json")
  set(profile_html "${out}/table4_isp.profile.html")
  if(expect_profile STREQUAL "YES")
    if(NOT EXISTS "${profile_json}" OR NOT EXISTS "${profile_html}")
      message(FATAL_ERROR "${tag}: profiled run wrote no profile artifacts")
    endif()
    file(READ "${profile_json}" doc)
    if(NOT doc MATCHES "edgestab-profile-v1")
      message(FATAL_ERROR "${tag}: ${profile_json} lacks the profile schema")
    endif()
  else()
    if(EXISTS "${profile_json}" OR EXISTS "${profile_html}")
      message(FATAL_ERROR "${tag}: flavor still wrote profile artifacts")
    endif()
  endif()
  if(profile_flag STREQUAL "ON" AND profile STREQUAL "OFF")
    if(NOT run_err MATCHES "compiled out")
      message(FATAL_ERROR
        "${tag}: --profile on a no-profiler build did not warn:\n${run_err}")
    endif()
  endif()

  message(STATUS "==== ${tag}: OK ====")
endfunction()

#          tag      drift tracing profile --profile expect_profile
run_flavor(full     ON    ON      ON      OFF       NO)
run_flavor(noprof   ON    ON      OFF     OFF       NO)
run_flavor(proftrim OFF   OFF     ON      ON        YES)
run_flavor(bare     OFF   OFF     OFF     ON        NO)

# Byte-identity: with the profiler compiled in but not requested, the
# deterministic result artifacts must match the profiler-free build
# exactly (tracked allocators observe, never alter).
foreach(artifact "table4_isp.csv" "table4_isp.drift.json")
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
      "${WORK_DIR}/full/smoke_run/bench_out/${artifact}"
      "${WORK_DIR}/noprof/smoke_run/bench_out/${artifact}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
      "${artifact} differs between the profile-ON and profile-OFF "
      "flavors — compiling the profiler in must change nothing")
  endif()
endforeach()

message(STATUS "observability build-flavor matrix OK")
