#include "obs/manifest.h"

#include <cstdio>
#include <ctime>
#include <filesystem>
#include <fstream>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace edgestab::obs {

ResourceUsage process_usage() {
  ResourceUsage usage;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru = {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    auto seconds = [](const timeval& tv) {
      return static_cast<double>(tv.tv_sec) +
             static_cast<double>(tv.tv_usec) / 1e6;
    };
    usage.user_seconds = seconds(ru.ru_utime);
    usage.sys_seconds = seconds(ru.ru_stime);
#if defined(__APPLE__)
    usage.max_rss_kb = ru.ru_maxrss / 1024;  // bytes on Darwin
#else
    usage.max_rss_kb = ru.ru_maxrss;  // KiB on Linux
#endif
  }
#endif
  return usage;
}

namespace {

std::string trim(const std::string& s) {
  std::size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  std::size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string read_first_line(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in.good()) return "";
  std::string line;
  std::getline(in, line);
  return trim(line);
}

}  // namespace

std::string hex_digest(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

std::string git_head_sha() {
  std::error_code ec;
  std::filesystem::path dir = std::filesystem::current_path(ec);
  if (ec) return "";
  for (; !dir.empty(); dir = dir.parent_path()) {
    std::filesystem::path git = dir / ".git";
    if (!std::filesystem::is_directory(git, ec)) {
      if (dir == dir.parent_path()) break;
      continue;
    }
    std::string head = read_first_line(git / "HEAD");
    if (head.rfind("ref: ", 0) == 0) {
      std::string sha = read_first_line(git / head.substr(5));
      if (!sha.empty()) return sha;
      // Ref not under refs/ as a loose file (packed-refs); report the
      // symbolic target rather than nothing.
      return head.substr(5);
    }
    return head;  // detached HEAD stores the SHA directly
  }
  return "";
}

RunManifest::RunManifest(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

void RunManifest::set_seed(std::uint64_t seed) {
  has_seed_ = true;
  seed_ = seed;
}

void RunManifest::set_wall_seconds(double seconds) {
  wall_seconds_ = seconds;
}

void RunManifest::set_field(const std::string& key,
                            const std::string& value) {
  for (auto& [k, v] : string_fields_)
    if (k == key) {
      v = value;
      return;
    }
  string_fields_.emplace_back(key, value);
}

void RunManifest::set_field(const std::string& key, double value) {
  for (auto& [k, v] : number_fields_)
    if (k == key) {
      v = value;
      return;
    }
  number_fields_.emplace_back(key, value);
}

const std::string* RunManifest::find_string_field(
    const std::string& key) const {
  for (const auto& [k, v] : string_fields_)
    if (k == key) return &v;
  return nullptr;
}

std::optional<double> RunManifest::find_number_field(
    const std::string& key) const {
  for (const auto& [k, v] : number_fields_)
    if (k == key) return v;
  return std::nullopt;
}

void RunManifest::add_digest(const std::string& name, std::uint64_t digest) {
  digests_.emplace_back(name, digest);
}

void RunManifest::add_device(ManifestDevice device) {
  devices_.push_back(std::move(device));
}

void RunManifest::add_artifact(const std::string& path) {
  artifacts_.push_back(path);
}

std::string RunManifest::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("edgestab-run-manifest-v1");
  w.key("bench").value(bench_name_);
  w.key("created_unix")
      .value(static_cast<std::int64_t>(std::time(nullptr)));
  std::string sha = git_head_sha();
  w.key("git_sha").value(sha.empty() ? "unknown" : sha);
  w.key("tracing_compiled_in").value(kTracingCompiledIn);
  w.key("drift_compiled_in").value(kDriftCompiledIn);
  if (has_seed_) w.key("seed").value(seed_);
  if (wall_seconds_ >= 0.0) w.key("wall_seconds").value(wall_seconds_);

  {
    w.key("fields");
    w.begin_object();
    for (const auto& [key, value] : string_fields_) w.key(key).value(value);
    for (const auto& [key, value] : number_fields_) w.key(key).value(value);
    // Process resource accounting, folded in at render time so every
    // manifest writer — bench::Run and the micro-bench hook alike —
    // gains the data. Explicit set_field() values win.
    ResourceUsage usage = process_usage();
    if (find_number_field("user_seconds") == std::nullopt)
      w.key("user_seconds").value(usage.user_seconds);
    if (find_number_field("sys_seconds") == std::nullopt)
      w.key("sys_seconds").value(usage.sys_seconds);
    if (find_number_field("max_rss_kb") == std::nullopt)
      w.key("max_rss_kb").value(static_cast<double>(usage.max_rss_kb));
    w.end_object();
  }

  if (!devices_.empty()) {
    w.key("fleet");
    w.begin_array();
    for (const ManifestDevice& d : devices_) {
      w.begin_object();
      w.key("name").value(d.name);
      w.key("model_code").value(d.model_code);
      w.key("isp").value(d.isp);
      w.key("format").value(d.format);
      w.key("quality").value(d.quality);
      w.key("soc").value(d.soc);
      w.key("digest").value(d.digest);
      w.end_object();
    }
    w.end_array();
  }

  if (!digests_.empty()) {
    w.key("digests");
    w.begin_object();
    for (const auto& [name, digest] : digests_) w.key(name).value(hex_digest(digest));
    w.end_object();
  }

  auto counters = MetricsRegistry::global().counters();
  if (!counters.empty()) {
    w.key("counters");
    w.begin_object();
    for (const auto& [name, value] : counters) w.key(name).value(value);
    w.end_object();
  }

  auto histograms = MetricsRegistry::global().histograms();
  if (!histograms.empty()) {
    auto ms = [](double ns) { return ns / 1e6; };
    w.key("stage_timing_ms");
    w.begin_object();
    for (const auto& [name, s] : histograms) {
      if (!is_timing_histogram(name)) continue;
      w.key(name);
      w.begin_object();
      w.key("count").value(s.count);
      w.key("total").value(ms(static_cast<double>(s.sum)));
      w.key("mean").value(ms(s.mean()));
      w.key("p50").value(ms(s.p50));
      w.key("p95").value(ms(s.p95));
      w.key("p99").value(ms(s.p99));
      w.end_object();
    }
    w.end_object();
  }

  if (!artifacts_.empty()) {
    w.key("artifacts");
    w.begin_array();
    for (const std::string& a : artifacts_) w.value(a);
    w.end_array();
  }

  w.end_object();
  return w.take();
}

bool RunManifest::write(const std::string& path) const {
  std::string doc = to_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

}  // namespace edgestab::obs
