// Named counters and log-bucketed latency histograms.
//
// MetricsRegistry is the process-wide metric store behind the pipeline
// instrumentation: counters track volumes (shots captured, bytes encoded,
// inferences run), histograms track per-stage latency and answer
// p50/p95/p99 queries. Both are lock-free on the record path (atomics
// only); name lookup takes a mutex, so instrumentation sites resolve a
// metric once (the ES_* macros cache a reference in a static local).
//
// Histogram buckets are logarithmic — kSubBuckets linear sub-buckets per
// power of two — giving a bounded relative quantile error (<= 1/16 with 8
// sub-buckets) over the full uint64 range in 512 fixed slots.
//
// Contention: counters and histogram buckets are single cache lines, so
// many lanes hammering the *same* metric ping-pong that line. The
// parallel runtime's workloads record at per-item granularity (span
// exits, per-comparison drift units) — microseconds of work per record —
// so the relaxed fetch_add is noise there; don't put a record() inside a
// per-pixel loop. Readers are merely snapshot-consistent: quantile()
// walks a bucket snapshot (so its target can't overshoot the observed
// mass mid-record), but a summary taken while writers are active may
// mix slightly different populations across count/sum/quantiles.
// Summaries meant for artifact files must be taken after the parallel
// region joins — every bench exporter runs post-join, where totals and
// quantiles are exact and deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace edgestab {
class CsvWriter;
}  // namespace edgestab

namespace edgestab::obs {

/// Monotonically increasing counter (thread-safe).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time summary of a histogram.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Log-bucketed histogram over non-negative 64-bit values (the span
/// instrumentation records nanoseconds). Thread-safe; record() is a
/// handful of relaxed atomics.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 3;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;  // 8 per octave
  static constexpr int kBucketCount = 512;

  void record(std::uint64_t value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Quantile estimate, q in [0,1]; values below kSubBuckets are exact,
  /// larger ones interpolate within their bucket (bounded relative
  /// error) and are clamped into the observed [min, max] — so q=1
  /// returns the exact max and no estimate escapes the data range.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  HistogramSummary summary() const;
  void reset();

  /// Bucket index for a value (exposed for tests).
  static int bucket_index(std::uint64_t value);

 private:
  static void bucket_bounds(int index, double& lower, double& width);

  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide registry of named metrics. References returned by
/// counter()/histogram() stay valid for the registry's lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted (name, value) snapshots for exporters; zero-count entries are
  /// included (a registered metric that never fired is itself a signal).
  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, HistogramSummary>> histograms() const;

  /// Zero every metric (tests; the names stay registered).
  void reset();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Histograms under the "drift." prefix hold scaled divergence units
/// (milli-dB, ppm, micro — see obs/drift.h), not span nanoseconds; the
/// timing exporters skip them (the drift report owns their presentation).
inline bool is_timing_histogram(const std::string& name) {
  return name.rfind("drift.", 0) != 0;
}

/// Flat stage-timing table from every timing histogram in the registry,
/// one row per stage with count/total/mean/p50/p95/p99 in milliseconds
/// (histogram values are nanoseconds, the unit ScopedSpan records).
CsvWriter stage_timing_csv(const MetricsRegistry& registry);

}  // namespace edgestab::obs
