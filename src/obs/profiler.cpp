#include "obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "runtime/task_context.h"
#include "util/check.h"
#include "util/hashing.h"

namespace edgestab::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One aggregated call-tree node. Lives in a std::deque that only grows
/// under the intern mutex, so pointers handed out to frames, caches and
/// task contexts stay valid until clear(); the per-node statistics are
/// relaxed atomics so the scope/alloc hot paths never take the mutex.
struct Node {
  Node(Node* parent_in, std::string category_in, std::string name_in)
      : parent(parent_in),
        category(std::move(category_in)),
        name(std::move(name_in)) {}

  Node* parent;
  std::string category;
  std::string name;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> incl_ns{0};
  std::atomic<std::uint64_t> excl_ns{0};
  std::atomic<std::uint64_t> alloc_count{0};
  std::atomic<std::uint64_t> alloc_bytes{0};
  std::atomic<std::uint64_t> free_count{0};
  std::atomic<std::uint64_t> free_bytes{0};
  // Live accounting is signed: a buffer may be freed under a different
  // scope than the one that allocated it, driving one node's balance
  // negative while another's stays high. Peaks clamp at zero.
  std::atomic<std::int64_t> live_bytes{0};
  std::atomic<std::int64_t> peak_live_bytes{0};
  Histogram latency;
};

struct Frame {
  Node* node;
  std::uint64_t start_ns;
  std::uint64_t child_ns;  ///< Σ inclusive time of completed direct children
};

/// The logical scope stack of this thread. Pool worker lanes start empty
/// and fall back to t_ambient — the submitting scope propagated through
/// runtime/task_context.h — so attribution is thread-invariant.
thread_local std::vector<Frame> t_stack;
thread_local Node* t_ambient = nullptr;

/// Node interning is (mutex + map) on the slow path with a per-thread
/// cache keyed by (parent, category ptr, name ptr) — the macros pass
/// string literals, so pointer identity is a sound per-site key. clear()
/// bumps the generation, which invalidates every cache before any stale
/// Node* could be dereferenced.
std::atomic<std::uint64_t> g_generation{1};

struct InternCache {
  std::uint64_t generation = 0;
  std::map<std::tuple<Node*, const void*, const void*>, Node*> entries;
};
thread_local InternCache t_cache;

struct ProfilerState {
  std::atomic<bool> enabled{false};
  std::atomic<bool> armed{false};
  std::atomic<bool> hooks_installed{false};

  mutable std::mutex mu;  ///< guards nodes + index structure (not stats)
  std::deque<Node> nodes;
  std::map<std::tuple<Node*, std::string, std::string>, Node*> index;

  std::atomic<std::uint64_t> total_alloc_count{0};
  std::atomic<std::uint64_t> total_alloc_bytes{0};
  std::atomic<std::uint64_t> total_free_count{0};
  std::atomic<std::uint64_t> total_free_bytes{0};
  std::atomic<std::int64_t> total_live_bytes{0};
  std::atomic<std::int64_t> total_peak_live_bytes{0};
  std::atomic<std::uint64_t> site_alloc_count[kAllocSiteCount] = {};
  std::atomic<std::uint64_t> site_alloc_bytes[kAllocSiteCount] = {};
};

ProfilerState& state() {
  static ProfilerState* s = new ProfilerState();
  return *s;
}

Node* intern_slow(Node* parent, const char* category, const char* name) {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto key = std::make_tuple(parent, std::string(category), std::string(name));
  auto it = s.index.find(key);
  if (it != s.index.end()) return it->second;
  s.nodes.emplace_back(parent, category, name);
  Node* node = &s.nodes.back();
  s.index.emplace(std::move(key), node);
  return node;
}

Node* intern(Node* parent, const char* category, const char* name) {
  InternCache& cache = t_cache;
  std::uint64_t generation = g_generation.load(std::memory_order_acquire);
  if (cache.generation != generation) {
    cache.entries.clear();
    cache.generation = generation;
  }
  auto key = std::make_tuple(parent, static_cast<const void*>(category),
                             static_cast<const void*>(name));
  auto it = cache.entries.find(key);
  if (it != cache.entries.end()) return it->second;
  Node* node = intern_slow(parent, category, name);
  cache.entries.emplace(key, node);
  return node;
}

Node* innermost() {
  return t_stack.empty() ? t_ambient : t_stack.back().node;
}

void raise_peak(std::atomic<std::int64_t>& peak, std::int64_t live) {
  std::int64_t seen = peak.load(std::memory_order_relaxed);
  while (live > seen &&
         !peak.compare_exchange_weak(seen, live, std::memory_order_relaxed)) {
  }
}

// ---- hook trampolines (installed once, on first enable) -------------------

void hook_on_alloc(AllocSite site, std::size_t bytes) {
  Profiler::global().on_alloc(site, bytes);
}

void hook_on_free(AllocSite site, std::size_t bytes) {
  Profiler::global().on_free(site, bytes);
}

void* hook_capture() { return innermost(); }

void* hook_install(void* context) {
  void* previous = t_ambient;
  t_ambient = static_cast<Node*>(context);
  return previous;
}

void hook_restore(void* previous) { t_ambient = static_cast<Node*>(previous); }

const AllocHooks kAllocHooks{&hook_on_alloc, &hook_on_free};
const runtime::TaskContextHooks kTaskHooks{&hook_capture, &hook_install,
                                           &hook_restore};

std::uint64_t digest_of(const std::vector<ProfileNode>& nodes) {
  Fingerprint fp;
  fp.add(std::string("edgestab-profile-v1"));
  fp.add(static_cast<std::uint64_t>(nodes.size()));
  for (const ProfileNode& node : nodes) {
    fp.add(node.path);
    fp.add(node.calls);
    fp.add(node.alloc_count);
    fp.add(node.alloc_bytes);
    fp.add(node.free_count);
    fp.add(node.free_bytes);
  }
  return fp.value();
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "[profile] cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  out << text;
  out.flush();
  if (!out) {
    std::fprintf(stderr, "[profile] short write to %s\n", path.c_str());
    return false;
  }
  return true;
}

// The shared obs::html_escape (obs/report.h) under the name this file
// historically used.
std::string html_escape_text(const std::string& s) { return html_escape(s); }

}  // namespace

Profiler& Profiler::global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

bool Profiler::enabled() const {
  return state().enabled.load(std::memory_order_relaxed);
}

void Profiler::set_enabled(bool enabled) {
  ProfilerState& s = state();
  if (enabled) {
    s.armed.store(true, std::memory_order_relaxed);
    // Hooks stay installed for the process lifetime once armed; they are
    // inert while enabled() is false, and never uninstalling means lanes
    // can re-read the pointer at any time without a race window.
    if (!s.hooks_installed.exchange(true)) {
      set_alloc_hooks(&kAllocHooks);
      runtime::set_task_context_hooks(&kTaskHooks);
    }
  }
  s.enabled.store(enabled, std::memory_order_relaxed);
}

bool Profiler::armed() const {
  return state().armed.load(std::memory_order_relaxed);
}

void Profiler::clear() {
  ProfilerState& s = state();
  s.enabled.store(false, std::memory_order_relaxed);
  s.armed.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(s.mu);
  ES_CHECK_MSG(t_stack.empty(),
               "Profiler::clear() with an open profile scope on this thread");
  s.index.clear();
  s.nodes.clear();
  // Invalidate every thread's intern cache before a stale Node* could be
  // looked up against the rebuilt table.
  g_generation.fetch_add(1, std::memory_order_release);
  s.total_alloc_count.store(0, std::memory_order_relaxed);
  s.total_alloc_bytes.store(0, std::memory_order_relaxed);
  s.total_free_count.store(0, std::memory_order_relaxed);
  s.total_free_bytes.store(0, std::memory_order_relaxed);
  s.total_live_bytes.store(0, std::memory_order_relaxed);
  s.total_peak_live_bytes.store(0, std::memory_order_relaxed);
  for (int i = 0; i < kAllocSiteCount; ++i) {
    s.site_alloc_count[i].store(0, std::memory_order_relaxed);
    s.site_alloc_bytes[i].store(0, std::memory_order_relaxed);
  }
}

void Profiler::begin_scope(const char* category, const char* name) {
  Node* node = intern(innermost(), category, name);
  t_stack.push_back(Frame{node, now_ns(), 0});
}

void Profiler::end_scope() {
  ES_CHECK_MSG(!t_stack.empty(),
               "Profiler::end_scope() without a matching begin_scope()");
  Frame frame = t_stack.back();
  t_stack.pop_back();
  std::uint64_t end = now_ns();
  std::uint64_t duration =
      end >= frame.start_ns ? end - frame.start_ns : 0;
  // Exclusive = duration minus same-thread child time. Children executed
  // on *other* lanes (a scope that fans out to the pool) are not
  // subtracted: that wall time is genuinely attributable to the
  // dispatching scope. See the determinism notes in profiler.h.
  std::uint64_t child = std::min(frame.child_ns, duration);
  Node& node = *frame.node;
  node.calls.fetch_add(1, std::memory_order_relaxed);
  node.incl_ns.fetch_add(duration, std::memory_order_relaxed);
  node.excl_ns.fetch_add(duration - child, std::memory_order_relaxed);
  node.latency.record(duration);
  if (!t_stack.empty() && t_stack.back().node == node.parent)
    t_stack.back().child_ns += duration;
}

void Profiler::on_alloc(AllocSite site, std::size_t bytes) {
  ProfilerState& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  Node* node = innermost();
  if (node == nullptr) node = intern(nullptr, "profile", "unscoped");
  std::uint64_t b = static_cast<std::uint64_t>(bytes);
  node->alloc_count.fetch_add(1, std::memory_order_relaxed);
  node->alloc_bytes.fetch_add(b, std::memory_order_relaxed);
  std::int64_t node_live =
      node->live_bytes.fetch_add(static_cast<std::int64_t>(b),
                                 std::memory_order_relaxed) +
      static_cast<std::int64_t>(b);
  raise_peak(node->peak_live_bytes, node_live);

  s.total_alloc_count.fetch_add(1, std::memory_order_relaxed);
  s.total_alloc_bytes.fetch_add(b, std::memory_order_relaxed);
  int site_index = static_cast<int>(site);
  if (site_index >= 0 && site_index < kAllocSiteCount) {
    s.site_alloc_count[site_index].fetch_add(1, std::memory_order_relaxed);
    s.site_alloc_bytes[site_index].fetch_add(b, std::memory_order_relaxed);
  }
  std::int64_t live =
      s.total_live_bytes.fetch_add(static_cast<std::int64_t>(b),
                                   std::memory_order_relaxed) +
      static_cast<std::int64_t>(b);
  raise_peak(s.total_peak_live_bytes, live);
}

void Profiler::on_free(AllocSite site, std::size_t bytes) {
  (void)site;
  ProfilerState& s = state();
  if (!s.enabled.load(std::memory_order_relaxed)) return;
  Node* node = innermost();
  if (node == nullptr) node = intern(nullptr, "profile", "unscoped");
  std::uint64_t b = static_cast<std::uint64_t>(bytes);
  node->free_count.fetch_add(1, std::memory_order_relaxed);
  node->free_bytes.fetch_add(b, std::memory_order_relaxed);
  node->live_bytes.fetch_sub(static_cast<std::int64_t>(b),
                             std::memory_order_relaxed);
  s.total_free_count.fetch_add(1, std::memory_order_relaxed);
  s.total_free_bytes.fetch_add(b, std::memory_order_relaxed);
  s.total_live_bytes.fetch_sub(static_cast<std::int64_t>(b),
                               std::memory_order_relaxed);
}

std::vector<ProfileNode> Profiler::snapshot() const {
  ProfilerState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);

  // Group children under their parents, then order every sibling list by
  // (category, name) so the emitted DFS preorder is canonical no matter
  // which lane interned which node first.
  std::vector<const Node*> roots;
  std::map<const Node*, std::vector<const Node*>> children;
  for (const Node& node : s.nodes) {
    if (node.parent == nullptr)
      roots.push_back(&node);
    else
      children[node.parent].push_back(&node);
  }
  auto label_less = [](const Node* a, const Node* b) {
    if (a->category != b->category) return a->category < b->category;
    return a->name < b->name;
  };
  std::sort(roots.begin(), roots.end(), label_less);
  for (auto& entry : children)
    std::sort(entry.second.begin(), entry.second.end(), label_less);

  std::vector<ProfileNode> out;
  out.reserve(s.nodes.size());
  struct Visit {
    const Node* node;
    int depth;
    std::string path;
  };
  std::vector<Visit> pending;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it)
    pending.push_back(
        Visit{*it, 0, (*it)->category + "." + (*it)->name});
  while (!pending.empty()) {
    Visit visit = std::move(pending.back());
    pending.pop_back();
    const Node& node = *visit.node;
    ProfileNode row;
    row.path = visit.path;
    row.category = node.category;
    row.name = node.name;
    row.depth = visit.depth;
    row.calls = node.calls.load(std::memory_order_relaxed);
    row.incl_ns = node.incl_ns.load(std::memory_order_relaxed);
    row.excl_ns = node.excl_ns.load(std::memory_order_relaxed);
    row.p50_ns = node.latency.p50();
    row.p95_ns = node.latency.p95();
    row.alloc_count = node.alloc_count.load(std::memory_order_relaxed);
    row.alloc_bytes = node.alloc_bytes.load(std::memory_order_relaxed);
    row.free_count = node.free_count.load(std::memory_order_relaxed);
    row.free_bytes = node.free_bytes.load(std::memory_order_relaxed);
    std::int64_t peak =
        node.peak_live_bytes.load(std::memory_order_relaxed);
    row.peak_live_bytes = peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
    out.push_back(std::move(row));
    auto kids = children.find(visit.node);
    if (kids != children.end()) {
      for (auto it = kids->second.rbegin(); it != kids->second.rend(); ++it)
        pending.push_back(Visit{
            *it, visit.depth + 1,
            visit.path + "/" + (*it)->category + "." + (*it)->name});
    }
  }
  return out;
}

ProfileTotals Profiler::totals() const {
  ProfilerState& s = state();
  ProfileTotals totals;
  totals.alloc_count = s.total_alloc_count.load(std::memory_order_relaxed);
  totals.alloc_bytes = s.total_alloc_bytes.load(std::memory_order_relaxed);
  totals.free_count = s.total_free_count.load(std::memory_order_relaxed);
  totals.free_bytes = s.total_free_bytes.load(std::memory_order_relaxed);
  std::int64_t peak = s.total_peak_live_bytes.load(std::memory_order_relaxed);
  totals.peak_live_bytes = peak > 0 ? static_cast<std::uint64_t>(peak) : 0;
  for (int i = 0; i < kAllocSiteCount; ++i) {
    totals.site_alloc_count[i] =
        s.site_alloc_count[i].load(std::memory_order_relaxed);
    totals.site_alloc_bytes[i] =
        s.site_alloc_bytes[i].load(std::memory_order_relaxed);
  }
  return totals;
}

std::string Profiler::digest_hex() const {
  return hex_digest(digest_of(snapshot()));
}

// ---- exports --------------------------------------------------------------

std::string profile_json(const Profiler& profiler,
                         const std::string& bench_name) {
  std::vector<ProfileNode> nodes = profiler.snapshot();
  ProfileTotals totals = profiler.totals();
  double total_excl_ms = 0.0;
  double root_incl_ms = 0.0;
  for (const ProfileNode& node : nodes) {
    total_excl_ms += static_cast<double>(node.excl_ns) / 1e6;
    if (node.depth == 0)
      root_incl_ms += static_cast<double>(node.incl_ns) / 1e6;
  }

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("edgestab-profile-v1");
  w.key("bench").value(bench_name);
  w.key("digest").value(hex_digest(digest_of(nodes)));
  w.key("root_incl_ms").value(root_incl_ms);
  w.key("total_excl_ms").value(total_excl_ms);
  w.key("totals").begin_object();
  w.key("alloc_count").value(totals.alloc_count);
  w.key("alloc_bytes").value(totals.alloc_bytes);
  w.key("free_count").value(totals.free_count);
  w.key("free_bytes").value(totals.free_bytes);
  w.key("peak_live_bytes").value(totals.peak_live_bytes);
  w.key("sites").begin_array();
  for (int i = 0; i < kAllocSiteCount; ++i) {
    w.begin_object();
    w.key("site").value(alloc_site_name(static_cast<AllocSite>(i)));
    w.key("alloc_count").value(totals.site_alloc_count[i]);
    w.key("alloc_bytes").value(totals.site_alloc_bytes[i]);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("nodes").begin_array();
  for (const ProfileNode& node : nodes) {
    w.begin_object();
    w.key("path").value(node.path);
    w.key("category").value(node.category);
    w.key("name").value(node.name);
    w.key("depth").value(node.depth);
    w.key("calls").value(node.calls);
    w.key("incl_ns").value(node.incl_ns);
    w.key("excl_ns").value(node.excl_ns);
    w.key("p50_ns").value(node.p50_ns);
    w.key("p95_ns").value(node.p95_ns);
    w.key("alloc_count").value(node.alloc_count);
    w.key("alloc_bytes").value(node.alloc_bytes);
    w.key("free_count").value(node.free_count);
    w.key("free_bytes").value(node.free_bytes);
    w.key("peak_live_bytes").value(node.peak_live_bytes);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

std::uint64_t u64_field(const JsonValue& object, const char* key) {
  const JsonValue* v = object.find(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return 0;
  return static_cast<std::uint64_t>(v->number);
}

}  // namespace

bool parse_profile(const JsonValue& doc, ProfileDoc* out, std::string* error) {
  auto fail = [error](const char* message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!doc.is_object()) return fail("profile: document is not an object");
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "edgestab-profile-v1")
    return fail("profile: missing or unknown schema");
  const JsonValue* nodes = doc.find("nodes");
  if (nodes == nullptr || !nodes->is_array())
    return fail("profile: missing nodes array");

  ProfileDoc parsed;
  if (const JsonValue* bench = doc.find("bench"))
    parsed.bench = bench->string_or("");
  if (const JsonValue* digest = doc.find("digest"))
    parsed.digest = digest->string_or("");
  parsed.root_incl_ms =
      doc.find("root_incl_ms") ? doc.find("root_incl_ms")->number_or(0.0) : 0.0;
  parsed.total_excl_ms = doc.find("total_excl_ms")
                             ? doc.find("total_excl_ms")->number_or(0.0)
                             : 0.0;
  if (const JsonValue* totals = doc.find("totals")) {
    if (!totals->is_object()) return fail("profile: totals is not an object");
    parsed.totals.alloc_count = u64_field(*totals, "alloc_count");
    parsed.totals.alloc_bytes = u64_field(*totals, "alloc_bytes");
    parsed.totals.free_count = u64_field(*totals, "free_count");
    parsed.totals.free_bytes = u64_field(*totals, "free_bytes");
    parsed.totals.peak_live_bytes = u64_field(*totals, "peak_live_bytes");
    if (const JsonValue* sites = totals->find("sites")) {
      if (!sites->is_array()) return fail("profile: sites is not an array");
      for (const JsonValue& entry : sites->items) {
        if (!entry.is_object()) continue;
        const JsonValue* site_name = entry.find("site");
        if (site_name == nullptr || !site_name->is_string()) continue;
        for (int i = 0; i < kAllocSiteCount; ++i) {
          if (site_name->string == alloc_site_name(static_cast<AllocSite>(i))) {
            parsed.totals.site_alloc_count[i] = u64_field(entry, "alloc_count");
            parsed.totals.site_alloc_bytes[i] = u64_field(entry, "alloc_bytes");
            break;
          }
        }
      }
    }
  }
  for (const JsonValue& entry : nodes->items) {
    if (!entry.is_object()) return fail("profile: node is not an object");
    ProfileNode node;
    const JsonValue* path = entry.find("path");
    if (path == nullptr || !path->is_string())
      return fail("profile: node missing path");
    node.path = path->string;
    if (const JsonValue* category = entry.find("category"))
      node.category = category->string_or("");
    if (const JsonValue* name = entry.find("name"))
      node.name = name->string_or("");
    node.depth = static_cast<int>(u64_field(entry, "depth"));
    node.calls = u64_field(entry, "calls");
    node.incl_ns = u64_field(entry, "incl_ns");
    node.excl_ns = u64_field(entry, "excl_ns");
    node.p50_ns = entry.find("p50_ns") ? entry.find("p50_ns")->number_or(0.0)
                                       : 0.0;
    node.p95_ns = entry.find("p95_ns") ? entry.find("p95_ns")->number_or(0.0)
                                       : 0.0;
    node.alloc_count = u64_field(entry, "alloc_count");
    node.alloc_bytes = u64_field(entry, "alloc_bytes");
    node.free_count = u64_field(entry, "free_count");
    node.free_bytes = u64_field(entry, "free_bytes");
    node.peak_live_bytes = u64_field(entry, "peak_live_bytes");
    parsed.nodes.push_back(std::move(node));
  }
  *out = std::move(parsed);
  return true;
}

std::string hotspot_table(const std::vector<ProfileNode>& nodes,
                          std::size_t top_n) {
  std::vector<const ProfileNode*> order;
  order.reserve(nodes.size());
  double total_excl_ns = 0.0;
  for (const ProfileNode& node : nodes) {
    order.push_back(&node);
    total_excl_ns += static_cast<double>(node.excl_ns);
  }
  std::sort(order.begin(), order.end(),
            [](const ProfileNode* a, const ProfileNode* b) {
              if (a->excl_ns != b->excl_ns) return a->excl_ns > b->excl_ns;
              return a->path < b->path;  // deterministic tie-break
            });
  if (order.size() > top_n) order.resize(top_n);

  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line), "%10s %6s %10s %9s %10s %12s  %s\n",
                "excl_ms", "%", "incl_ms", "calls", "p95_ms", "alloc_kb",
                "path");
  out += line;
  for (const ProfileNode* node : order) {
    double excl_ms = static_cast<double>(node->excl_ns) / 1e6;
    double share = total_excl_ns > 0.0
                       ? 100.0 * static_cast<double>(node->excl_ns) /
                             total_excl_ns
                       : 0.0;
    std::snprintf(line, sizeof(line),
                  "%10.2f %5.1f%% %10.2f %9" PRIu64 " %10.3f %12.1f  %s\n",
                  excl_ms, share, static_cast<double>(node->incl_ns) / 1e6,
                  node->calls, node->p95_ns / 1e6,
                  static_cast<double>(node->alloc_bytes) / 1024.0,
                  node->path.c_str());
    out += line;
  }
  return out;
}

std::string profile_html(const std::vector<ProfileNode>& nodes,
                         const ProfileTotals& totals,
                         const std::string& bench_name) {
  double root_incl_ns = 0.0;
  for (const ProfileNode& node : nodes)
    if (node.depth == 0) root_incl_ns += static_cast<double>(node.incl_ns);
  if (root_incl_ns <= 0.0) root_incl_ns = 1.0;

  std::string out;
  out += "<!doctype html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n";
  out += "<title>profile: " + html_escape_text(bench_name) + "</title>\n";
  out +=
      "<style>\n"
      "body{font-family:monospace;background:#1b1b1f;color:#d8d8d8;"
      "margin:24px;}\n"
      "h1{font-size:18px;} .sub{color:#9a9aa0;margin-bottom:16px;}\n"
      ".row{position:relative;height:20px;margin:1px 0;}\n"
      ".bar{position:absolute;top:0;bottom:0;background:#b03a2e;"
      "border-radius:2px;min-width:2px;}\n"
      ".bar.d1{background:#ca6f1e;} .bar.d2{background:#b7950b;}\n"
      ".bar.d3{background:#1e8449;} .bar.d4{background:#2471a3;}\n"
      ".bar.d5{background:#7d3c98;}\n"
      ".lbl{position:absolute;left:4px;top:2px;font-size:12px;"
      "white-space:nowrap;color:#f4f4f4;text-shadow:0 0 3px #000;}\n"
      "table{border-collapse:collapse;margin-top:20px;font-size:12px;}\n"
      "td,th{border:1px solid #3a3a40;padding:3px 8px;text-align:right;}\n"
      "td.p,th.p{text-align:left;}\n"
      "</style>\n</head>\n<body>\n";
  out += "<h1>profile: " + html_escape_text(bench_name) + "</h1>\n";
  {
    char sub[256];
    std::snprintf(sub, sizeof(sub),
                  "<div class=\"sub\">allocs %" PRIu64 " (%.1f MiB), frees %"
                  PRIu64 ", peak live %.1f MiB</div>\n",
                  totals.alloc_count,
                  static_cast<double>(totals.alloc_bytes) / (1024.0 * 1024.0),
                  totals.free_count,
                  static_cast<double>(totals.peak_live_bytes) /
                      (1024.0 * 1024.0));
    out += sub;
  }

  // Icicle view: one bar per aggregated node, width = inclusive share of
  // the root total, indent = tree depth. DFS preorder keeps parents
  // directly above their children.
  for (const ProfileNode& node : nodes) {
    double width =
        100.0 * static_cast<double>(node.incl_ns) / root_incl_ns;
    if (width > 100.0) width = 100.0;
    double left = 2.0 * static_cast<double>(node.depth);
    if (width > 100.0 - left) width = 100.0 - left;
    int color = node.depth % 6;
    char row[768];
    std::snprintf(
        row, sizeof(row),
        "<div class=\"row\"><div class=\"bar d%d\" style=\"left:%.1f%%;"
        "width:%.2f%%\" title=\"%s — incl %.2f ms, excl %.2f ms, "
        "calls %" PRIu64 ", alloc %" PRIu64 " (%.1f KiB)\"></div>"
        "<div class=\"lbl\" style=\"left:%.1f%%\">%s</div></div>\n",
        color, left, width, html_escape_text(node.path).c_str(),
        static_cast<double>(node.incl_ns) / 1e6,
        static_cast<double>(node.excl_ns) / 1e6, node.calls,
        node.alloc_count, static_cast<double>(node.alloc_bytes) / 1024.0,
        left, html_escape_text(node.category + "." + node.name).c_str());
    out += row;
  }

  out +=
      "<table>\n<tr><th class=\"p\">path</th><th>calls</th><th>incl ms</th>"
      "<th>excl ms</th><th>p50 ms</th><th>p95 ms</th><th>allocs</th>"
      "<th>alloc KiB</th><th>peak live KiB</th></tr>\n";
  for (const ProfileNode& node : nodes) {
    char row[768];
    std::snprintf(row, sizeof(row),
                  "<tr><td class=\"p\">%s</td><td>%" PRIu64
                  "</td><td>%.2f</td><td>%.2f</td><td>%.3f</td><td>%.3f</td>"
                  "<td>%" PRIu64 "</td><td>%.1f</td><td>%.1f</td></tr>\n",
                  html_escape_text(node.path).c_str(), node.calls,
                  static_cast<double>(node.incl_ns) / 1e6,
                  static_cast<double>(node.excl_ns) / 1e6, node.p50_ns / 1e6,
                  node.p95_ns / 1e6, node.alloc_count,
                  static_cast<double>(node.alloc_bytes) / 1024.0,
                  static_cast<double>(node.peak_live_bytes) / 1024.0);
    out += row;
  }
  out += "</table>\n</body>\n</html>\n";
  return out;
}

bool write_profile_report(const Profiler& profiler,
                          const std::string& bench_name,
                          const std::string& dir, RunManifest* manifest) {
  std::vector<ProfileNode> nodes = profiler.snapshot();
  ProfileTotals totals = profiler.totals();

  std::string json_file = bench_name + ".profile.json";
  std::string html_file = bench_name + ".profile.html";
  std::string json_path = dir + "/" + json_file;
  std::string html_path = dir + "/" + html_file;
  bool ok = write_text_file(json_path, profile_json(profiler, bench_name));
  ok = write_text_file(html_path,
                       profile_html(nodes, totals, bench_name)) &&
       ok;

  std::string table = hotspot_table(nodes);
  std::printf("[profile] %s hotspots (by exclusive time):\n%s", bench_name.c_str(),
              table.c_str());
  std::printf("[profile] allocs %" PRIu64 " (%.1f MiB), peak live %.1f MiB; "
              "report: %s\n",
              totals.alloc_count,
              static_cast<double>(totals.alloc_bytes) / (1024.0 * 1024.0),
              static_cast<double>(totals.peak_live_bytes) / (1024.0 * 1024.0),
              html_path.c_str());

  if (manifest != nullptr) {
    manifest->add_artifact(json_file);
    manifest->add_artifact(html_file);
    // String field, not a manifest digest: the digest is sensitive to the
    // executed code path (e.g. model-cache cold vs warm), so it must not
    // become a hard-equality baseline metric; profile.json carries it for
    // the thread-invariance checks.
    manifest->set_field("profile_digest", hex_digest(digest_of(nodes)));
    manifest->set_field("profile_alloc_count",
                        static_cast<double>(totals.alloc_count));
    manifest->set_field("profile_alloc_bytes",
                        static_cast<double>(totals.alloc_bytes));
    manifest->set_field("profile_peak_live_bytes",
                        static_cast<double>(totals.peak_live_bytes));
  }
  return ok;
}

}  // namespace edgestab::obs
