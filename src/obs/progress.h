// Stderr progress heartbeat for long-running bench loops.
//
// Off by default so bench output stays byte-stable for scripts; armed by
// the `--progress` bench flag or EDGESTAB_PROGRESS=1. Each tick() may
// print one line with the completed/total count, elapsed wall time and a
// linear ETA — rate-limited so per-item loops can tick freely:
//
//   [progress] fig3 repeats 2/5 (40%) elapsed 10.4s eta 15.6s
//
// Lines go to stderr (unbuffered via fflush) so a `--repeats` sweep
// whose stdout is piped into a file still shows a pulse on the terminal.
#pragma once

#include <cstdint>
#include <string>

#include "util/timer.h"

namespace edgestab::obs {

class ProgressMeter {
 public:
  /// Optional live-alert source (telemetry's running alert estimate).
  /// A plain function pointer so progress stays decoupled from the
  /// telemetry layer: the bench harness installs it when telemetry is
  /// armed, and every heartbeat line then carries the running count.
  using AlertCountFn = std::int64_t (*)();

  /// Optional live-status source: a short free-form suffix (the service
  /// pipeline installs one reporting per-stage queue depths and the
  /// running shed count, e.g. " q cap:3 isp:1 inf:12 shed 42"). Same
  /// plain-function-pointer decoupling as the alert source; advisory
  /// wall-clock state, never part of any deterministic artifact.
  using StatusTextFn = std::string (*)();

  /// `label` prefixes each line; `total` of 0 means unknown (no ETA).
  /// `min_interval_seconds` rate-limits output; the first and final
  /// ticks always print when enabled.
  ProgressMeter(std::string label, std::int64_t total, bool enabled,
                double min_interval_seconds = 0.5);

  /// Install (or clear, with nullptr) the process-wide alert source.
  static void set_alert_source(AlertCountFn source);

  /// Install (or clear, with nullptr) the process-wide status source.
  static void set_status_source(StatusTextFn source);

  /// Mark `n` more items done; prints at most one heartbeat line.
  void tick(std::int64_t n = 1);

  /// Print the closing line (total items + elapsed). Idempotent.
  void finish();

  bool enabled() const { return enabled_; }
  std::int64_t done() const { return done_; }

  /// True when EDGESTAB_PROGRESS is set to anything but "0"/"".
  static bool env_enabled();

 private:
  void emit(bool closing);

  std::string label_;
  std::int64_t total_;
  bool enabled_;
  double min_interval_seconds_;
  std::int64_t done_ = 0;
  double last_emit_seconds_ = -1.0;
  bool finished_ = false;
  WallTimer timer_;
};

}  // namespace edgestab::obs
