// Drift report exporters + the shared end-of-run artifact export.
//
// `drift_json` / `drift_html` render the DriftAuditor's accumulated
// state — drift-by-stage tables, logit-drift distributions (p50/p95/p99
// pulled from the MetricsRegistry histograms the auditor feeds), and
// the prediction-flip ledger — as `bench_out/<name>.drift.json` and a
// self-contained HTML fleet report a browser can open directly.
//
// `export_run_artifacts` is bench::Run's finish() body hoisted into the
// obs library so its failure paths (unwritable out-dir, dropped span
// events, short writes) are unit-testable without linking a bench: it
// flushes and freezes the tracer, writes the stage-timing CSV, Chrome
// trace, drift reports (when the auditor is enabled) and the provenance
// manifest — folding the drift digests into the manifest first — and
// returns false if any artifact failed to land or spans were dropped.
#pragma once

#include <string>

#include "obs/drift.h"
#include "obs/manifest.h"

namespace edgestab::obs {

/// Escape `&`, `<`, `>`, `"` for HTML text and attribute contexts. The
/// one escaping helper every HTML exporter (drift, profile, fleet)
/// must route user-influenced strings — device names, metric labels,
/// rule names — through.
std::string html_escape(const std::string& s);

/// JSON document (schema "edgestab-drift-report-v1") of the auditor's
/// full state.
std::string drift_json(const DriftAuditor& auditor,
                       const std::string& bench_name);

/// Self-contained HTML fleet report (inline CSS, no external assets).
std::string drift_html(const DriftAuditor& auditor,
                       const std::string& bench_name);

/// Write both report flavors into `dir`, register them (and the drift /
/// flip-ledger digests) on `manifest` when given. False on I/O failure.
bool write_drift_report(const DriftAuditor& auditor,
                        const std::string& bench_name, const std::string& dir,
                        RunManifest* manifest);

/// End-of-run export shared by every bench (see file comment). `dir`
/// must already exist; the manifest lands at `dir/<bench_name>.meta.json`.
bool export_run_artifacts(const std::string& bench_name,
                          const std::string& dir, RunManifest& manifest);

}  // namespace edgestab::obs
