// Umbrella header + instrumentation macros for the observability layer.
//
// Hot-path sites use the macros, not the classes, so a build with
// -DEDGESTAB_TRACING=OFF compiles every span to `((void)0)` — zero code,
// zero data, zero clock reads. With tracing compiled in, spans still cost
// only a relaxed atomic load until a bench enables the tracer.
//
//   {
//     ES_TRACE_SCOPE("isp", "demosaic");   // span + latency histogram
//     rgb = demosaic(raw, kind);
//   }
//   ES_COUNT("codec.bytes_encoded", out.size());
//
// ES_TRACE_SCOPE declares block-scoped locals: use it inside a braced
// scope (never as the single statement of an unbraced `if`). The
// category/name arguments must be string literals; the span feeds the
// registry histogram named "<category>.<name>", resolved once per call
// site via a static local.
//
// The same sites also feed the hot-path profiler (obs/profiler.h): with
// EDGESTAB_PROFILE compiled in, ES_TRACE_SCOPE additionally opens a
// profile scope on the logical call tree, and ES_PROFILE_SCOPE opens a
// profile scope *without* a tracer span — for sites that matter to time
// attribution even in tracing-off builds. Both compile to `((void)0)`
// when their option is off, and each gate independently, so every
// flavor of (tracing × profile) builds.
#pragma once

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace edgestab::obs {

#ifdef EDGESTAB_TRACING
inline constexpr bool kTracingCompiledIn = true;
#else
inline constexpr bool kTracingCompiledIn = false;
#endif

#ifdef EDGESTAB_DRIFT
inline constexpr bool kDriftCompiledIn = true;
#else
inline constexpr bool kDriftCompiledIn = false;
#endif

#ifdef EDGESTAB_PROFILE
inline constexpr bool kProfileCompiledIn = true;
#else
inline constexpr bool kProfileCompiledIn = false;
#endif

}  // namespace edgestab::obs

#ifndef ES_OBS_CONCAT
#define ES_OBS_CONCAT_INNER(a, b) a##b
#define ES_OBS_CONCAT(a, b) ES_OBS_CONCAT_INNER(a, b)
#endif

// Profile scope only (no tracer span, no histogram): the call-tree
// profiler's own instrumentation points, live even when tracing is
// compiled out. Category/name must be string literals (the profiler
// caches intern lookups by pointer identity).
#ifdef EDGESTAB_PROFILE

#define ES_PROFILE_SCOPE(category, name)                                   \
  ::edgestab::obs::ProfileScope ES_OBS_CONCAT(es_obs_pscope_,              \
                                              __LINE__)(category, name)

#else

#define ES_PROFILE_SCOPE(category, name) ((void)0)

#endif  // EDGESTAB_PROFILE

#ifdef EDGESTAB_TRACING

#define ES_TRACE_SCOPE(category, name)                                     \
  static ::edgestab::obs::Histogram& ES_OBS_CONCAT(es_obs_hist_,           \
                                                   __LINE__) =             \
      ::edgestab::obs::MetricsRegistry::global().histogram(category        \
                                                           "." name);      \
  ::edgestab::obs::ScopedSpan ES_OBS_CONCAT(es_obs_span_, __LINE__)(       \
      category, name, &ES_OBS_CONCAT(es_obs_hist_, __LINE__));             \
  ES_PROFILE_SCOPE(category, name)

#define ES_COUNT(name, delta)                                              \
  do {                                                                     \
    if (::edgestab::obs::Tracer::global().enabled()) {                     \
      static ::edgestab::obs::Counter& es_obs_counter =                    \
          ::edgestab::obs::MetricsRegistry::global().counter(name);        \
      es_obs_counter.add(static_cast<std::uint64_t>(delta));               \
    }                                                                      \
  } while (0)

#else

#define ES_TRACE_SCOPE(category, name) ES_PROFILE_SCOPE(category, name)
#define ES_COUNT(name, delta) ((void)0)

#endif  // EDGESTAB_TRACING
