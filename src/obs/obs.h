// Umbrella header + instrumentation macros for the observability layer.
//
// Hot-path sites use the macros, not the classes, so a build with
// -DEDGESTAB_TRACING=OFF compiles every span to `((void)0)` — zero code,
// zero data, zero clock reads. With tracing compiled in, spans still cost
// only a relaxed atomic load until a bench enables the tracer.
//
//   {
//     ES_TRACE_SCOPE("isp", "demosaic");   // span + latency histogram
//     rgb = demosaic(raw, kind);
//   }
//   ES_COUNT("codec.bytes_encoded", out.size());
//
// ES_TRACE_SCOPE declares block-scoped locals: use it inside a braced
// scope (never as the single statement of an unbraced `if`). The
// category/name arguments must be string literals; the span feeds the
// registry histogram named "<category>.<name>", resolved once per call
// site via a static local.
#pragma once

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace edgestab::obs {

#ifdef EDGESTAB_TRACING
inline constexpr bool kTracingCompiledIn = true;
#else
inline constexpr bool kTracingCompiledIn = false;
#endif

#ifdef EDGESTAB_DRIFT
inline constexpr bool kDriftCompiledIn = true;
#else
inline constexpr bool kDriftCompiledIn = false;
#endif

}  // namespace edgestab::obs

#ifndef ES_OBS_CONCAT
#define ES_OBS_CONCAT_INNER(a, b) a##b
#define ES_OBS_CONCAT(a, b) ES_OBS_CONCAT_INNER(a, b)
#endif

#ifdef EDGESTAB_TRACING

#define ES_TRACE_SCOPE(category, name)                                     \
  static ::edgestab::obs::Histogram& ES_OBS_CONCAT(es_obs_hist_,           \
                                                   __LINE__) =             \
      ::edgestab::obs::MetricsRegistry::global().histogram(category        \
                                                           "." name);      \
  ::edgestab::obs::ScopedSpan ES_OBS_CONCAT(es_obs_span_, __LINE__)(       \
      category, name, &ES_OBS_CONCAT(es_obs_hist_, __LINE__))

#define ES_COUNT(name, delta)                                              \
  do {                                                                     \
    if (::edgestab::obs::Tracer::global().enabled()) {                     \
      static ::edgestab::obs::Counter& es_obs_counter =                    \
          ::edgestab::obs::MetricsRegistry::global().counter(name);        \
      es_obs_counter.add(static_cast<std::uint64_t>(delta));               \
    }                                                                      \
  } while (0)

#else

#define ES_TRACE_SCOPE(category, name) ((void)0)
#define ES_COUNT(name, delta) ((void)0)

#endif  // EDGESTAB_TRACING
