#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace edgestab::obs {

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ES_CHECK_MSG(!has_element_.empty() && !after_key_,
               "unbalanced end_object()");
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ES_CHECK_MSG(!has_element_.empty() && !after_key_, "unbalanced end_array()");
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  ES_CHECK_MSG(!has_element_.empty() && !after_key_,
               "key() outside an object");
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  out_ += format_double(v);  // "null" for NaN/Inf — JSON has neither
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::take() {
  ES_CHECK_MSG(has_element_.empty() && !after_key_,
               "take() with open containers");
  return std::move(out_);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

namespace {

/// Recursive-descent parser over the strict JSON grammar. Depth-capped
/// so hostile input cannot blow the stack.
class JsonParser {
 public:
  static constexpr int kMaxDepth = 64;

  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out, std::string* error) {
    bool ok = parse_value(out, 0) && (skip_ws(), pos_ == text_.size());
    if (!ok) {
      if (error_.empty()) error_ = "trailing characters after document";
      if (error != nullptr)
        *error = "json parse error at byte " + std::to_string(pos_) + ": " +
                 error_;
    }
    return ok;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of document");
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.type = JsonValue::Type::kString;
        return parse_string(out.string);
      case 't':
        out.type = JsonValue::Type::kBool;
        out.boolean = true;
        return literal("true");
      case 'f':
        out.type = JsonValue::Type::kBool;
        out.boolean = false;
        return literal("false");
      case 'n':
        out.type = JsonValue::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':')
        return fail("expected ':' after object key");
      ++pos_;
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value, depth + 1)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) return fail("unterminated escape");
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape digit");
          }
          pos_ += 4;
          // UTF-8 encode the code point (the writer only escapes
          // controls, so surrogate pairs are not expected; lone
          // surrogates encode as-is rather than erroring).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("invalid value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    out.type = JsonValue::Type::kNumber;
    out.number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error) {
  JsonParser parser(text);
  JsonValue value;
  if (!parser.parse(value, error)) return std::nullopt;
  return value;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace edgestab::obs
