#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace edgestab::obs {

void JsonWriter::comma_for_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ES_CHECK_MSG(!has_element_.empty() && !after_key_,
               "unbalanced end_object()");
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ES_CHECK_MSG(!has_element_.empty() && !after_key_, "unbalanced end_array()");
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  ES_CHECK_MSG(!has_element_.empty() && !after_key_,
               "key() outside an object");
  if (has_element_.back()) out_ += ',';
  has_element_.back() = true;
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  out_ += escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_for_value();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

std::string JsonWriter::take() {
  ES_CHECK_MSG(has_element_.empty() && !after_key_,
               "take() with open containers");
  return std::move(out_);
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace edgestab::obs
