#include "obs/progress.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace edgestab::obs {

namespace {

ProgressMeter::AlertCountFn g_alert_source = nullptr;
ProgressMeter::StatusTextFn g_status_source = nullptr;

}  // namespace

void ProgressMeter::set_alert_source(AlertCountFn source) {
  g_alert_source = source;
}

void ProgressMeter::set_status_source(StatusTextFn source) {
  g_status_source = source;
}

ProgressMeter::ProgressMeter(std::string label, std::int64_t total,
                             bool enabled, double min_interval_seconds)
    : label_(std::move(label)),
      total_(total),
      enabled_(enabled),
      min_interval_seconds_(min_interval_seconds) {}

bool ProgressMeter::env_enabled() {
  const char* env = std::getenv("EDGESTAB_PROGRESS");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

void ProgressMeter::tick(std::int64_t n) {
  done_ += n;
  if (!enabled_ || finished_) return;
  double now = timer_.seconds();
  bool due = last_emit_seconds_ < 0.0 ||
             now - last_emit_seconds_ >= min_interval_seconds_;
  bool last = total_ > 0 && done_ >= total_;
  if (due || last) emit(false);
}

void ProgressMeter::finish() {
  if (!enabled_ || finished_) {
    finished_ = true;
    return;
  }
  emit(true);
  finished_ = true;
}

void ProgressMeter::emit(bool closing) {
  double elapsed = timer_.seconds();
  // Elapsed-based throughput: items completed per wall second so far.
  // The epsilon guards the first tick of a sub-microsecond interval —
  // a 0-ish denominator would print an absurd (or infinite) rate.
  double rate = elapsed > 1e-6 && done_ > 0
                    ? static_cast<double>(done_) / elapsed
                    : 0.0;
  // Running alert estimate from the installed telemetry source, e.g.
  // " 3 alerts"; empty when no source is armed so pre-telemetry output
  // is unchanged.
  char alerts[32] = "";
  if (g_alert_source != nullptr) {
    std::snprintf(alerts, sizeof(alerts), " %lld alerts",
                  static_cast<long long>(g_alert_source()));
  }
  // Live pipeline status (queue depths, shed count) from the installed
  // status source; empty when none is armed so pre-service heartbeat
  // lines are unchanged.
  std::string status;
  if (g_status_source != nullptr) status = g_status_source();
  if (closing) {
    std::fprintf(stderr,
                 "[progress] %s done: %lld in %.1fs (%.1f items/s)%s%s\n",
                 label_.c_str(), static_cast<long long>(done_), elapsed,
                 rate, alerts, status.c_str());
  } else if (total_ > 0) {
    double fraction =
        static_cast<double>(done_) / static_cast<double>(total_);
    double eta = done_ > 0
                     ? elapsed / static_cast<double>(done_) *
                           static_cast<double>(total_ - done_)
                     : 0.0;
    std::fprintf(stderr,
                 "[progress] %s %lld/%lld (%.0f%%) elapsed %.1fs "
                 "(%.1f items/s) eta %.1fs%s%s\n",
                 label_.c_str(), static_cast<long long>(done_),
                 static_cast<long long>(total_), fraction * 100.0, elapsed,
                 rate, eta, alerts, status.c_str());
  } else {
    std::fprintf(stderr,
                 "[progress] %s %lld elapsed %.1fs (%.1f items/s)%s%s\n",
                 label_.c_str(), static_cast<long long>(done_), elapsed,
                 rate, alerts, status.c_str());
  }
  std::fflush(stderr);
  last_emit_seconds_ = elapsed;
}

}  // namespace edgestab::obs
