// Per-run provenance manifests.
//
// Every bench emits `bench_out/<name>.meta.json` describing how its CSV
// rows were produced: rig seed, fleet composition, config digests
// (util/hashing fingerprints of the phone/ISP/codec configs), the git
// commit, counters and stage-timing summaries, and the artifact list —
// enough to re-derive or diff any result without spelunking the binary.
//
// The manifest is deliberately generic (string fields, named digests,
// device rows) so this layer depends only on util; the bench harness
// fills it from the typed configs it owns.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace edgestab::obs {

/// Point-in-time process resource accounting (getrusage where the
/// platform has it; zeros elsewhere). Rendered into every manifest's
/// `fields` at write time — independent of the regression sentinel, so
/// each run's meta.json names the CPU time and peak memory it cost.
struct ResourceUsage {
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  long max_rss_kb = 0;  ///< peak resident set, KiB (0 when unavailable)
};

/// Cumulative usage of the calling process.
ResourceUsage process_usage();

/// One device row in the manifest's fleet table.
struct ManifestDevice {
  std::string name;
  std::string model_code;
  std::string isp;
  std::string format;
  int quality = 0;
  std::string soc;
  std::string digest;  ///< hex fingerprint of the full profile
};

class RunManifest {
 public:
  explicit RunManifest(std::string bench_name);

  void set_seed(std::uint64_t seed);
  void set_wall_seconds(double seconds);
  void set_field(const std::string& key, const std::string& value);
  void set_field(const std::string& key, double value);

  void add_digest(const std::string& name, std::uint64_t digest);
  void add_device(ManifestDevice device);
  void add_artifact(const std::string& path);

  const std::string& bench_name() const { return bench_name_; }
  bool has_seed() const { return has_seed_; }
  std::uint64_t seed() const { return seed_; }

  /// Named digests in insertion order (hex rendering is the exporter's
  /// job); the regression sentinel snapshots these into the run archive.
  const std::vector<std::pair<std::string, std::uint64_t>>& digests() const {
    return digests_;
  }

  /// Stored string/number field lookups; nullptr / nullopt when unset.
  const std::string* find_string_field(const std::string& key) const;
  std::optional<double> find_number_field(const std::string& key) const;

  /// Render the manifest, folding in the current global counter and
  /// stage-timing state (milliseconds).
  std::string to_json() const;

  /// Write to `path`; reports failure on stderr and via the return value.
  bool write(const std::string& path) const;

 private:
  std::string bench_name_;
  bool has_seed_ = false;
  std::uint64_t seed_ = 0;
  double wall_seconds_ = -1.0;
  std::vector<std::pair<std::string, std::string>> string_fields_;
  std::vector<std::pair<std::string, double>> number_fields_;
  std::vector<std::pair<std::string, std::uint64_t>> digests_;
  std::vector<ManifestDevice> devices_;
  std::vector<std::string> artifacts_;
};

/// Commit SHA of the enclosing git checkout (searches upward from the
/// working directory); empty when not in a repository.
std::string git_head_sha();

/// 16-hex-digit rendering of a util/hashing fingerprint.
std::string hex_digest(std::uint64_t digest);

}  // namespace edgestab::obs
