#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"

namespace edgestab::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread span nesting depth (only maintained by active spans).
thread_local std::uint16_t t_span_depth = 0;

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_ns() - epoch_ns_; }

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // One buffer per (tracer, thread); the shared_ptr in buffers_ keeps it
  // alive for exporters even after the thread exits.
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->thread_id = next_thread_id_++;
    buffers_.push_back(buffer);
    t_buffer = std::move(buffer);
  }
  return *t_buffer;
}

void Tracer::record(const SpanEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    ++buffer.dropped;
    return;
  }
  SpanEvent stamped = event;
  stamped.thread_id = buffer.thread_id;
  buffer.events.push_back(stamped);
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

ScopedSpan::ScopedSpan(const char* category, const char* name,
                       Histogram* histogram)
    : category_(category), name_(name), histogram_(histogram) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  depth_ = t_span_depth++;
  start_ns_ = tracer.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  Tracer& tracer = Tracer::global();
  std::uint64_t duration = tracer.now_ns() - start_ns_;
  SpanEvent event;
  event.category = category_;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = duration;
  event.depth = depth_;
  tracer.record(event);
  if (histogram_ != nullptr) histogram_->record(duration);
}

SuspendTracing::SuspendTracing() : was_enabled_(Tracer::global().enabled()) {
  Tracer::global().set_enabled(false);
}

SuspendTracing::~SuspendTracing() {
  Tracer::global().set_enabled(was_enabled_);
}

std::string chrome_trace_json(const Tracer& tracer) {
  std::vector<SpanEvent> events = tracer.snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const SpanEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.start_ns) / 1e3);
    w.key("dur").value(static_cast<double>(e.duration_ns) / 1e3);
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(e.thread_id));
    w.key("args");
    w.begin_object();
    w.key("depth").value(static_cast<std::uint64_t>(e.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("droppedEvents").value(tracer.dropped());
  w.end_object();
  return w.take();
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::string doc = chrome_trace_json(tracer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

}  // namespace edgestab::obs
