#include "obs/trace.h"

#include <chrono>
#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace edgestab::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Per-thread span nesting depth (only maintained by active spans).
thread_local std::uint16_t t_span_depth = 0;

}  // namespace

// One registered buffer per recording thread; the shared_ptr in the
// tracer's registry keeps it alive for exporters after the thread exits.
// `cap` is written only by the owning thread (refreshed on each record
// from the tracer's atomic) and read only by that thread's flush.
struct TraceThreadBuffer {
  std::uint32_t thread_id = 0;
  mutable std::mutex mutex;
  std::vector<SpanEvent> events;
  std::uint64_t dropped = 0;
  std::size_t cap = Tracer::kMaxEventsPerThread;
};

namespace {

// Thread-local staging: events append here lock-free and drain into the
// registered buffer per chunk. The destructor drains the remainder when
// the thread exits, so short-lived workers never strand spans; it only
// touches the buffer the shared_ptr keeps alive, never the tracer.
struct TraceSlot {
  std::shared_ptr<TraceThreadBuffer> buffer;
  std::vector<SpanEvent> staging;

  ~TraceSlot() { flush(); }

  void flush() {
    if (buffer == nullptr || staging.empty()) return;
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const SpanEvent& e : staging) {
      if (buffer->events.size() >= buffer->cap)
        ++buffer->dropped;
      else
        buffer->events.push_back(e);
    }
    staging.clear();
  }
};

thread_local TraceSlot t_trace_slot;

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_ns() - epoch_ns_; }

void Tracer::record(const SpanEvent& event) {
  TraceSlot& slot = t_trace_slot;
  if (slot.buffer == nullptr) {
    auto buffer = std::make_shared<TraceThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->thread_id = next_thread_id_++;
    buffers_.push_back(buffer);
    slot.buffer = std::move(buffer);
    slot.staging.reserve(kFlushChunk);
  }
  slot.buffer->cap = max_events_.load(std::memory_order_relaxed);
  SpanEvent stamped = event;
  stamped.thread_id = slot.buffer->thread_id;
  slot.staging.push_back(stamped);
  if (slot.staging.size() >= kFlushChunk) slot.flush();
}

void Tracer::flush() { t_trace_slot.flush(); }

std::vector<SpanEvent> Tracer::snapshot() const {
  t_trace_slot.flush();  // a thread always sees its own spans
  std::vector<std::shared_ptr<TraceThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buffers = buffers_;
  }
  std::vector<SpanEvent> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  t_trace_slot.flush();
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    dropped += buffer->dropped;
  }
  return dropped;
}

std::size_t Tracer::size() const {
  t_trace_slot.flush();
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

void Tracer::clear() {
  t_trace_slot.staging.clear();
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    buffer->events.clear();
    buffer->dropped = 0;
  }
}

ScopedSpan::ScopedSpan(const char* category, const char* name,
                       Histogram* histogram)
    : category_(category), name_(name), histogram_(histogram) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  depth_ = t_span_depth++;
  start_ns_ = tracer.now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  --t_span_depth;
  Tracer& tracer = Tracer::global();
  std::uint64_t duration = tracer.now_ns() - start_ns_;
  SpanEvent event;
  event.category = category_;
  event.name = name_;
  event.start_ns = start_ns_;
  event.duration_ns = duration;
  event.depth = depth_;
  tracer.record(event);
  if (histogram_ != nullptr) histogram_->record(duration);
}

SuspendTracing::SuspendTracing()
    : was_enabled_(Tracer::global().enabled()),
      profiler_was_enabled_(Profiler::global().enabled()) {
  Tracer::global().set_enabled(false);
  if (profiler_was_enabled_) Profiler::global().set_enabled(false);
}

SuspendTracing::~SuspendTracing() {
  Tracer::global().set_enabled(was_enabled_);
  if (profiler_was_enabled_) Profiler::global().set_enabled(true);
}

std::string chrome_trace_json(const Tracer& tracer) {
  std::vector<SpanEvent> events = tracer.snapshot();
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const SpanEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    w.key("ph").value("X");
    w.key("ts").value(static_cast<double>(e.start_ns) / 1e3);
    w.key("dur").value(static_cast<double>(e.duration_ns) / 1e3);
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(static_cast<std::uint64_t>(e.thread_id));
    w.key("args");
    w.begin_object();
    w.key("depth").value(static_cast<std::uint64_t>(e.depth));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("displayTimeUnit").value("ms");
  w.key("droppedEvents").value(tracer.dropped());
  w.end_object();
  return w.take();
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::string doc = chrome_trace_json(tracer);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

}  // namespace edgestab::obs
