#include "obs/fault_ledger.h"

#include <algorithm>
#include <tuple>

#include "util/hashing.h"

namespace edgestab::obs {

namespace {

/// Canonical event order: stable across lane counts and merge order.
bool event_less(const FaultEvent& a, const FaultEvent& b) {
  return std::tie(a.device, a.item, a.shot, a.attempt, a.kind, a.detail) <
         std::tie(b.device, b.item, b.shot, b.attempt, b.kind, b.detail);
}

}  // namespace

const char* fault_event_kind_name(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kCaptureDropout: return "capture_dropout";
    case FaultEventKind::kTransientFailure: return "transient_failure";
    case FaultEventKind::kPayloadBitFlip: return "payload_bit_flip";
    case FaultEventKind::kPayloadTruncation: return "payload_truncation";
    case FaultEventKind::kStragglerDelay: return "straggler_delay";
    case FaultEventKind::kRetry: return "retry";
    case FaultEventKind::kDecodeFailure: return "decode_failure";
    case FaultEventKind::kShotLost: return "shot_lost";
    case FaultEventKind::kQuarantine: return "quarantine";
    case FaultEventKind::kShedOverload: return "shed_overload";
    case FaultEventKind::kDeadlineTimeout: return "deadline_timeout";
    case FaultEventKind::kBreakerOpen: return "breaker_open";
    case FaultEventKind::kBreakerReject: return "breaker_reject";
    case FaultEventKind::kBreakerProbe: return "breaker_probe";
    case FaultEventKind::kBreakerClose: return "breaker_close";
  }
  return "unknown";
}

FaultLedger& FaultLedger::global() {
  static FaultLedger ledger;
  return ledger;
}

void FaultLedger::record(const std::string& group, const FaultEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  raw_[group].push_back(event);
}

void FaultLedger::merge(const FaultLedger& other) {
  // Copy under the source lock, then fold under ours (never hold both —
  // merge(a,b) racing merge(b,a) must not deadlock).
  std::map<std::string, std::vector<FaultEvent>> theirs;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    theirs = other.raw_;
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [group, events] : theirs) {
    auto& raw = raw_[group];
    raw.insert(raw.end(), events.begin(), events.end());
  }
}

FaultGroupSummary FaultLedger::build_summary(
    const std::string& group, std::vector<FaultEvent> events) const {
  // Parallel lanes append in completion order; sort to the canonical
  // coordinate order so entries, tallies and the digest are identical at
  // any thread count.
  std::stable_sort(events.begin(), events.end(), event_less);

  FaultGroupSummary s;
  s.group = group;
  s.total_events = static_cast<int>(events.size());

  std::map<int, DeviceFaultRow> rows;
  for (const FaultEvent& e : events) {
    ++s.events_by_kind[static_cast<int>(e.kind)];
    DeviceFaultRow& row = rows[e.device];
    row.device = e.device;
    switch (e.kind) {
      case FaultEventKind::kCaptureDropout: ++row.dropouts; break;
      case FaultEventKind::kTransientFailure: ++row.transient_failures; break;
      case FaultEventKind::kPayloadBitFlip: ++row.payload_bit_flips; break;
      case FaultEventKind::kPayloadTruncation:
        ++row.payload_truncations;
        break;
      case FaultEventKind::kStragglerDelay:
        ++row.stragglers;
        row.total_delay_ms += e.detail;
        break;
      case FaultEventKind::kRetry:
        ++row.retries;
        row.total_delay_ms += e.detail;
        break;
      case FaultEventKind::kDecodeFailure: ++row.decode_failures; break;
      case FaultEventKind::kShotLost:
        ++row.shots_lost;
        ++s.shots_lost;
        break;
      case FaultEventKind::kQuarantine:
        row.quarantined = true;
        if (row.quarantined_from_item < 0 || e.item < row.quarantined_from_item)
          row.quarantined_from_item = e.item;
        break;
      case FaultEventKind::kShedOverload:
        ++row.shed;
        ++s.shots_lost;
        break;
      case FaultEventKind::kDeadlineTimeout:
        ++row.deadline_timeouts;
        break;
      case FaultEventKind::kBreakerOpen: ++row.breaker_opens; break;
      case FaultEventKind::kBreakerReject:
        ++row.breaker_rejects;
        ++s.shots_lost;
        break;
      case FaultEventKind::kBreakerProbe:
      case FaultEventKind::kBreakerClose:
        break;  // state-machine receipts; counted in events_by_kind only
    }
    if (s.entries.size() < kMaxEntriesPerGroup) {
      s.entries.push_back(e);
    } else {
      ++s.dropped_entries;
    }
  }

  s.devices.reserve(rows.size());
  for (const auto& [_, row] : rows) {
    if (row.quarantined) ++s.quarantined_devices;
    s.devices.push_back(row);
  }
  return s;
}

std::vector<FaultGroupSummary> FaultLedger::summaries() const {
  std::map<std::string, std::vector<FaultEvent>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = raw_;
  }
  std::vector<FaultGroupSummary> out;
  out.reserve(snapshot.size());
  for (auto& [group, events] : snapshot)
    out.push_back(build_summary(group, std::move(events)));
  return out;
}

std::optional<FaultGroupSummary> FaultLedger::find_group(
    const std::string& group) const {
  std::vector<FaultEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = raw_.find(group);
    if (it == raw_.end()) return std::nullopt;
    events = it->second;
  }
  return build_summary(group, std::move(events));
}

bool FaultLedger::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return raw_.empty();
}

std::vector<FaultEvent> FaultLedger::export_group_raw(
    const std::string& group) const {
  std::vector<FaultEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = raw_.find(group);
    if (it == raw_.end()) return events;
    events = it->second;
  }
  std::stable_sort(events.begin(), events.end(), event_less);
  return events;
}

void FaultLedger::import_group_raw(const std::string& group,
                                   std::vector<FaultEvent> events) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events.empty()) {
    raw_.erase(group);
    return;
  }
  raw_[group] = std::move(events);
}

std::uint64_t FaultLedger::digest() const {
  Fingerprint fp;
  for (const FaultGroupSummary& s : summaries()) {
    fp.add(s.group).add(s.total_events).add(s.shots_lost)
        .add(s.quarantined_devices);
    for (const auto& [kind, n] : s.events_by_kind) fp.add(kind).add(n);
    for (const DeviceFaultRow& row : s.devices) {
      fp.add(row.device)
          .add(row.dropouts)
          .add(row.transient_failures)
          .add(row.payload_bit_flips)
          .add(row.payload_truncations)
          .add(row.stragglers)
          .add(row.retries)
          .add(row.decode_failures)
          .add(row.shots_lost)
          .add(row.shed)
          .add(row.deadline_timeouts)
          .add(row.breaker_opens)
          .add(row.breaker_rejects)
          .add(row.quarantined ? 1 : 0)
          .add(row.quarantined_from_item)
          .add(row.total_delay_ms);
    }
    for (const FaultEvent& e : s.entries) {
      fp.add(static_cast<int>(e.kind))
          .add(e.device)
          .add(e.item)
          .add(e.shot)
          .add(e.attempt)
          .add(e.recovered ? 1 : 0)
          .add(e.detail);
    }
  }
  return fp.value();
}

void FaultLedger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  raw_.clear();
}

}  // namespace edgestab::obs
