#include "obs/metrics.h"

#include <bit>
#include <cmath>

#include "util/csv.h"

namespace edgestab::obs {

namespace {

void atomic_min(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (value < cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed))
    ;
}

void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (value > cur &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed))
    ;
}

}  // namespace

int Histogram::bucket_index(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  int msb = 63 - std::countl_zero(value);
  int shift = msb - kSubBucketBits;
  int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  return ((msb - kSubBucketBits + 1) << kSubBucketBits) + sub;
}

void Histogram::bucket_bounds(int index, double& lower, double& width) {
  // Small values have their own unit bucket and are exact.
  if (index < kSubBuckets) {
    lower = static_cast<double>(index);
    width = 0.0;
    return;
  }
  int octave = index >> kSubBucketBits;
  int sub = index & (kSubBuckets - 1);
  int msb = octave + kSubBucketBits - 1;
  lower = std::ldexp(1.0, msb) +
          std::ldexp(static_cast<double>(sub), msb - kSubBucketBits);
  width = std::ldexp(1.0, msb - kSubBucketBits);
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::quantile(double q) const {
  // Snapshot the buckets and derive the population from the snapshot:
  // with concurrent record()s the separate count_ counter can disagree
  // with the bucket mass (all relaxed atomics), and a target computed
  // from it could overshoot what the bucket walk will ever accumulate.
  std::uint64_t snapshot[kBucketCount];
  std::uint64_t n = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    n += snapshot[i];
  }
  if (n == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  auto target = static_cast<std::uint64_t>(std::ceil(q * n));
  if (target == 0) target = 1;
  double lo = static_cast<double>(min_.load(std::memory_order_relaxed));
  double hi = static_cast<double>(max_.load(std::memory_order_relaxed));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    std::uint64_t in_bucket = snapshot[i];
    if (in_bucket == 0) continue;
    if (seen + in_bucket >= target) {
      // Interpolate within the containing bucket: the k-th of its
      // `in_bucket` samples sits at fraction (k - 0.5) / in_bucket of
      // the bucket span. Clamping into the observed [min, max] keeps
      // first/last-bucket estimates honest — p99 of a distribution whose
      // tail shares one bucket now lands at/below the true max instead
      // of the bucket edge, and q=1 returns the exact max.
      double lower, width;
      bucket_bounds(i, lower, width);
      double frac = (static_cast<double>(target - seen) - 0.5) /
                    static_cast<double>(in_bucket);
      double value = lower + frac * width;
      return value < lo ? lo : (value > hi ? hi : value);
    }
    seen += in_bucket;
  }
  return hi;
}

HistogramSummary Histogram::summary() const {
  HistogramSummary s;
  s.count = count();
  s.sum = sum();
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.p50 = p50();
    s.p95 = p95();
    s.p99 = p99();
  }
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    out.emplace_back(name, counter->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSummary>>
MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, HistogramSummary>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    out.emplace_back(name, histogram->summary());
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

CsvWriter stage_timing_csv(const MetricsRegistry& registry) {
  CsvWriter csv({"stage", "count", "total_ms", "mean_ms", "p50_ms", "p95_ms",
                 "p99_ms"});
  auto ms = [](double ns) { return ns / 1e6; };
  for (const auto& [name, s] : registry.histograms()) {
    if (!is_timing_histogram(name)) continue;
    csv.add_row({name, std::to_string(s.count),
                 std::to_string(ms(static_cast<double>(s.sum))),
                 std::to_string(ms(s.mean())), std::to_string(ms(s.p50)),
                 std::to_string(ms(s.p95)), std::to_string(ms(s.p99))});
  }
  return csv;
}

}  // namespace edgestab::obs
