// Noise-aware comparison of a run record against a committed baseline.
//
// The verdict vocabulary is deliberately four-valued: a comparison that
// cannot be made honestly (provenance mismatch, NaN, metric missing on
// one side) is *incomparable*, never silently "unchanged" — the paper's
// core lesson is that environment drift masquerades as model change, so
// the sentinel refuses to score apples against oranges.
//
// Tolerance policy by metric kind:
//   perf         band = max(rel_tol * |median|, mad_k * MAD, abs_floor);
//                inside the band → unchanged, outside → improved or
//                regressed by the metric's declared direction. Requires
//                matching thread counts (wall time at --threads 4 says
//                nothing about a --threads 1 baseline).
//   correctness  |delta| <= max(epsilon, default_epsilon) → unchanged;
//                results are bit-deterministic at any thread count here,
//                so these stay comparable across thread counts.
//   digest       hard string equality, gated on matching provenance
//                (seed, config digests, fault plan).
#pragma once

#include <string>
#include <vector>

#include "obs/baseline.h"

namespace edgestab::obs {

enum class Verdict { kImproved, kUnchanged, kRegressed, kIncomparable };

const char* verdict_name(Verdict verdict);

struct CompareOptions {
  double perf_rel_tol = 0.25;    ///< relative tolerance on the median
  double perf_mad_k = 5.0;       ///< MAD multiplier (noise-scaled band)
  double default_epsilon = 1e-12;  ///< correctness floor when undeclared
};

/// One metric's comparison outcome.
struct MetricVerdict {
  std::string name;
  MetricKind kind = MetricKind::kPerf;
  Verdict verdict = Verdict::kIncomparable;
  double current = 0.0;
  double baseline = 0.0;
  double delta = 0.0;  ///< current - baseline (numeric kinds)
  double band = 0.0;   ///< tolerance applied (band or epsilon)
  std::string current_text;   ///< digest kind
  std::string baseline_text;  ///< digest kind
  std::string reason;  ///< one-phrase justification, always set
};

struct CompareReport {
  std::string bench;
  /// False when seed / fault plan / config digests differ: every metric
  /// is incomparable-provenance.
  bool provenance_comparable = true;
  /// False when thread counts differ: perf metrics only are incomparable.
  bool perf_comparable = true;
  std::vector<std::string> provenance_notes;
  std::vector<MetricVerdict> verdicts;

  int count(Verdict verdict) const;
  bool has_regressions() const { return count(Verdict::kRegressed) > 0; }
};

/// Diff `record` against `baseline`. The record's repeats are collapsed
/// the same way baselines are built (median over repeats), so a
/// `--repeats N` run is compared median-to-median.
CompareReport compare_run(const RunRecord& record, const Baseline& baseline,
                          const CompareOptions& options = {});

/// Human-readable table for the CLI.
std::string compare_report_text(const CompareReport& report);

/// Machine-readable rendering (schema edgestab-compare-v1).
std::string compare_report_json(const CompareReport& report);

/// Self-contained HTML trend report: per-bench metric trajectories over
/// the archived runs (inline SVG, no external assets), with points that
/// regress against the matching baseline marked. `baselines` may be
/// empty — trends still render, without regression markers.
std::string trend_html(const std::vector<RunRecord>& records,
                       const std::vector<Baseline>& baselines);

}  // namespace edgestab::obs
