// Minimal streaming JSON writer for the observability exporters (Chrome
// traces, provenance manifests). Handles comma placement and string
// escaping; the caller is responsible for well-formed nesting (checked
// with ES_CHECK so malformed exporter code fails loudly in tests).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace edgestab::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// The finished document; the writer must be back at nesting depth 0.
  std::string take();
  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void comma_for_value();

  std::string out_;
  /// One frame per open container: true once the first element was
  /// written (so the next element is comma-separated).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace edgestab::obs
