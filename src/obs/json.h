// Minimal streaming JSON writer + strict parser for the observability
// layer (Chrome traces, provenance manifests, the cross-run baseline
// archive). The writer handles comma placement and string escaping; the
// caller is responsible for well-formed nesting (checked with ES_CHECK
// so malformed exporter code fails loudly in tests). The parser accepts
// strict JSON — exactly the language the writer emits — and returns a
// small ordered DOM the sentinel tooling reads baselines and run
// records through.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace edgestab::obs {

/// Shortest decimal rendering of `v` that parses back to the same
/// double (tries 15, 16, then 17 significant digits). Used for every
/// number the exporters emit so document digests are stable across
/// rebuilds and platforms — a fixed "%.6g" truncates differently than
/// it re-parses. Non-finite values render as "null" (JSON has no
/// NaN/Inf).
std::string format_double(double v);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by exactly one value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// The finished document; the writer must be back at nesting depth 0.
  std::string take();
  const std::string& str() const { return out_; }

  static std::string escape(std::string_view s);

 private:
  void comma_for_value();

  std::string out_;
  /// One frame per open container: true once the first element was
  /// written (so the next element is comma-separated).
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

/// Parsed JSON value. A deliberately small DOM: public fields, object
/// members kept in document order (the writer emits deterministic
/// ordering and the sentinel preserves it through round trips).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            ///< arrays
  std::vector<std::pair<std::string, JsonValue>> members;  ///< objects

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// First member with key `key` (objects only); nullptr when absent.
  const JsonValue* find(std::string_view key) const;

  /// The number/string when this value has that type, else `fallback`.
  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  std::string string_or(std::string fallback) const {
    return is_string() ? string : std::move(fallback);
  }
};

/// Parse one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Returns nullopt on malformed input and,
/// when `error` is non-null, fills it with a byte offset + message.
std::optional<JsonValue> parse_json(std::string_view text,
                                    std::string* error = nullptr);

}  // namespace edgestab::obs
