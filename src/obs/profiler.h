// Hot-path profiler: span-tree time attribution + allocation tracking.
//
// The tracer (obs/trace.h) records raw per-thread span events — great
// for timeline views, but its nesting is physical (which OS thread ran
// the code), so the same run folds into different trees at different
// --threads settings: the pool's dynamic scheduling makes chunk bodies
// children of whatever lane claimed them. The profiler instead maintains
// a LOGICAL call tree, live: every profile scope pushes onto a
// thread-local stack, and the thread pool propagates the submitting
// scope across the fan-out edge (runtime/task_context.h), so a span that
// runs on a worker lane still nests under the scope that dispatched it.
// Node identity — (parent, category, name) — is therefore invariant
// under thread count, and so are call counts and allocation totals.
//
// Per node the profiler aggregates: call count, inclusive wall time,
// exclusive wall time (inclusive minus same-thread child time), a
// per-call latency histogram (p50/p95), and — through the allocation
// hooks in util/alloc_track.h — allocation count/bytes, free
// count/bytes and peak live bytes attributed to the innermost open
// scope at allocation time.
//
// Determinism contract (mirrors FlipLedger/FaultLedger):
//   deterministic at any --threads:  node set, paths, call counts,
//       alloc/free counts and bytes — these feed the profile digest.
//   timing-dependent (never digested): inclusive/exclusive ns,
//       quantiles, peak live bytes (peaks depend on overlap).
// Exports order nodes canonically (DFS preorder, siblings sorted by
// category.name) regardless of the interleaving that built the tree.
//
// Exclusive-time identity: excl = incl − Σ(same-thread child incl), so
// over any single-threaded region Σ excl over the subtree telescopes to
// the root's inclusive time exactly. A scope that fans out to the pool
// keeps its parallel children's time in its own exclusive figure (the
// region's wall time IS attributable to it); the children additionally
// report their own inclusive/exclusive, which overlap in wall terms —
// the profile reports per-node attribution, not a partition of wall.
//
// The classes compile in every flavor so tests and tooling always link;
// the EDGESTAB_PROFILE option controls whether the ES_TRACE_SCOPE /
// ES_PROFILE_SCOPE macros emit scopes and whether the tracked
// allocators report (obs/obs.h, util/alloc_track.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.h"
#include "util/alloc_track.h"

namespace edgestab::obs {

class RunManifest;

/// One aggregated call-tree node, snapshotted. Nodes arrive in DFS
/// preorder with siblings sorted by label, so `depth` reconstructs the
/// tree shape and `path` ("/"-joined "category.name" labels) is unique.
struct ProfileNode {
  std::string path;
  std::string category;
  std::string name;
  int depth = 0;
  std::uint64_t calls = 0;
  std::uint64_t incl_ns = 0;
  std::uint64_t excl_ns = 0;
  double p50_ns = 0.0;
  double p95_ns = 0.0;
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t free_count = 0;
  std::uint64_t free_bytes = 0;
  std::uint64_t peak_live_bytes = 0;  ///< timing-dependent, not digested
};

/// Whole-run allocation totals with the per-site breakdown.
struct ProfileTotals {
  std::uint64_t alloc_count = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t free_count = 0;
  std::uint64_t free_bytes = 0;
  std::uint64_t peak_live_bytes = 0;  ///< timing-dependent, not digested
  std::uint64_t site_alloc_count[kAllocSiteCount] = {};
  std::uint64_t site_alloc_bytes[kAllocSiteCount] = {};
};

/// Process-wide profiler. Disabled by default; a bench arms it with
/// set_enabled(true) (the --profile flag). Scope begin/end and the
/// allocation hooks are the hot path: a relaxed flag load when disabled,
/// a thread-local stack push/pop plus relaxed atomics when enabled.
class Profiler {
 public:
  static Profiler& global();

  bool enabled() const;
  /// Enabling the first time installs the allocation and task-context
  /// hooks and latches armed(); disabling leaves them installed (they
  /// check enabled()) so mute/unmute is cheap and nesting-safe.
  void set_enabled(bool enabled);

  /// True once set_enabled(true) ever ran (until clear()): the signal
  /// that this run wants profile artifacts exported.
  bool armed() const;

  /// Drop every node and total and un-latch armed(). Must not run while
  /// any profile scope is open (tests and repeat harnesses call it
  /// between runs).
  void clear();

  /// Scope hot path (ProfileScope calls these; begin/end must pair on
  /// the same thread).
  void begin_scope(const char* category, const char* name);
  void end_scope();

  /// Allocation hot path (installed into util/alloc_track hooks).
  void on_alloc(AllocSite site, std::size_t bytes);
  void on_free(AllocSite site, std::size_t bytes);

  /// Canonical snapshot: DFS preorder, siblings sorted by label. Taken
  /// after parallel regions join (exporters run post-join).
  std::vector<ProfileNode> snapshot() const;
  ProfileTotals totals() const;

  /// Fingerprint over the deterministic fields of the canonical
  /// snapshot: paths, call counts, alloc/free counts and bytes. Equal
  /// at any --threads for a deterministic workload.
  std::string digest_hex() const;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

 private:
  Profiler() = default;
};

/// RAII profile scope; no-op unless the profiler is enabled at
/// construction (an end always pairs with its begin even if the
/// profiler is muted mid-scope). Usually emitted via the macros in
/// obs/obs.h rather than constructed directly.
class ProfileScope {
 public:
  ProfileScope(const char* category, const char* name) {
    Profiler& profiler = Profiler::global();
    if (!profiler.enabled()) return;
    active_ = true;
    profiler.begin_scope(category, name);
  }
  ~ProfileScope() {
    if (active_) Profiler::global().end_scope();
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  bool active_ = false;
};

/// Parsed profile document (sentinel tooling + tests read profile.json
/// back through this).
struct ProfileDoc {
  std::string bench;
  std::string digest;
  ProfileTotals totals;
  double total_excl_ms = 0.0;
  double root_incl_ms = 0.0;
  std::vector<ProfileNode> nodes;
};

/// JSON document (schema "edgestab-profile-v1") of the profiler state.
std::string profile_json(const Profiler& profiler,
                         const std::string& bench_name);

/// Parse a profile document produced by profile_json.
bool parse_profile(const JsonValue& doc, ProfileDoc* out, std::string* error);

/// Top-N hotspot table (sorted by exclusive time) as printable text.
std::string hotspot_table(const std::vector<ProfileNode>& nodes,
                          std::size_t top_n = 12);

/// Self-contained flame-style HTML report (inline CSS, no scripts, no
/// external assets).
std::string profile_html(const std::vector<ProfileNode>& nodes,
                         const ProfileTotals& totals,
                         const std::string& bench_name);

/// Write <bench>.profile.json + <bench>.profile.html into `dir`, print
/// the hotspot table to stdout, and register artifacts, the profile
/// digest and headline allocation fields on `manifest` when given.
/// False on I/O failure.
bool write_profile_report(const Profiler& profiler,
                          const std::string& bench_name,
                          const std::string& dir, RunManifest* manifest);

}  // namespace edgestab::obs
