// Cross-run archive + perf/correctness baselines.
//
// PR 1-4 made each bench run richly observable (manifest, trace, drift
// report, fault ledger) but nothing looked *across* runs. This layer is
// the longitudinal half: every bench::Run appends one compact RunRecord
// line to `bench_out/runs.jsonl` (the run archive) and rewrites
// `bench_out/BENCH_<name>.json` (the candidate baseline, schema
// `edgestab-baseline-v1`) summarizing the run's repeated timings as
// median + MAD. The comparison engine (obs/compare.h) diffs a record
// against a committed baseline; `tools/edgestab_sentinel` is the CLI.
//
// Metric taxonomy — the tolerance policy keys off it (see compare.h):
//   perf        noisy by nature; compared with relative + MAD-scaled
//               bands (per-device latency is too noisy for naive
//               single-number comparisons)
//   correctness deterministic at any thread count in this codebase;
//               compared exactly or within a declared epsilon
//   digest      output fingerprints (drift report, fault ledger, decode
//               MD5 streams); hard equality, but only when provenance
//               (seed / config digests / fault plan) matches
//
// Provenance digests (lab_rig, workspace, isp_*, fault_plan) are NOT
// metrics: when they differ the runs are different experiments and every
// comparison is `incomparable-provenance` — environment drift must not
// masquerade as a perf win or loss.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace edgestab::obs {

enum class MetricKind { kPerf, kCorrectness, kDigest };
enum class Direction { kLowerIsBetter, kHigherIsBetter, kExact };

const char* metric_kind_name(MetricKind kind);
const char* direction_name(Direction direction);
std::optional<MetricKind> parse_metric_kind(const std::string& name);
std::optional<Direction> parse_direction(const std::string& name);

/// One scalar (or digest) result a bench wants guarded across runs.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCorrectness;
  Direction direction = Direction::kExact;
  std::string unit;
  double value = 0.0;   ///< numeric kinds
  std::string text;     ///< digest kind: hex fingerprint
  double epsilon = 0.0; ///< correctness tolerance (0 = exact)
  /// Perf kind: absolute band floor (unit-scaled) carried into the
  /// derived BaselineMetric — for metrics whose medians can be tiny
  /// (e.g. per-stage exclusive ms), where a purely relative band would
  /// flag noise.
  double abs_floor = 0.0;
};

/// Timing of one bench repeat (wall clock + getrusage deltas).
struct RepeatSample {
  double wall_seconds = 0.0;
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
};

/// Everything one bench execution contributes to the run archive.
struct RunRecord {
  std::string bench;
  std::string git_sha;
  std::int64_t created_unix = 0;
  bool has_seed = false;
  std::uint64_t seed = 0;
  int threads = 1;
  std::string fault_plan;  ///< "" = clean run
  std::vector<std::pair<std::string, std::string>> digests;  ///< name → hex
  std::vector<RepeatSample> repeats;
  double items = 0.0;      ///< headline work units (0 = unknown)
  long max_rss_kb = 0;
  /// Per-stage wall time totals (ms) from the span histograms; archived
  /// for the trend report, not gated (too many, too noisy individually).
  std::vector<std::pair<std::string, double>> stage_wall_ms;
  std::vector<MetricSample> metrics;  ///< bench-declared headline metrics
};

/// Baseline entry: one metric's repeat-aware summary.
struct BaselineMetric {
  std::string name;
  MetricKind kind = MetricKind::kPerf;
  Direction direction = Direction::kLowerIsBetter;
  std::string unit;
  double median = 0.0;
  double mad = 0.0;        ///< median absolute deviation over the repeats
  int n = 0;               ///< repeats the summary was taken over
  double abs_floor = 0.0;  ///< absolute tolerance floor (unit-scaled)
  double epsilon = 0.0;    ///< correctness tolerance
  std::string text;        ///< digest kind
};

/// One bench's committed comparison target (schema edgestab-baseline-v1).
struct Baseline {
  std::string bench;
  std::string git_sha;
  std::int64_t created_unix = 0;
  bool has_seed = false;
  std::uint64_t seed = 0;
  int threads = 1;
  std::string fault_plan;
  /// Provenance digests only (is_provenance_digest).
  std::vector<std::pair<std::string, std::string>> digests;
  std::vector<BaselineMetric> metrics;
};

/// Median of a sample (0 for empty); linear interpolation between the
/// two middle elements for even sizes.
double median_of(std::vector<double> values);

/// Median absolute deviation around `median` (0 for empty).
double mad_of(const std::vector<double>& values, double median);

/// Config-input digests that define *which experiment ran* (vs output
/// digests that fingerprint what it produced): lab_rig, workspace,
/// fault_plan and isp_* belong to provenance.
bool is_provenance_digest(const std::string& name);

/// Per-stage wall totals (ms) from the global MetricsRegistry's timing
/// histograms, sorted by name.
std::vector<std::pair<std::string, double>> stage_wall_ms_from_registry();

/// One-line JSON rendering (no trailing newline) of a run record.
std::string run_record_json(const RunRecord& record);

/// Append `record` as one line to the jsonl archive at `path` (created
/// on demand). False + stderr report on I/O failure.
bool append_run_record(const std::string& path, const RunRecord& record);

/// Parse one archive line / a whole archive. Loading tolerates blank
/// lines; a malformed line fails the load with a line-numbered error.
/// A missing archive file is an error; an existing-but-empty one loads
/// zero records successfully.
bool parse_run_record(const JsonValue& doc, RunRecord* out,
                      std::string* error);
bool load_run_records(const std::string& path, std::vector<RunRecord>* out,
                      std::string* error);

/// Rewrite the archive keeping only the newest `keep` records per bench
/// (bench names are already tier-decorated, so this is per (bench, tier)).
/// Survivors keep their original order. The rewrite is crash-safe:
/// sibling tmp file then atomic rename. On success *kept / *dropped (when
/// non-null) report the split; on failure the archive is untouched.
bool prune_run_archive(const std::string& path, std::size_t keep,
                       std::size_t* kept, std::size_t* dropped,
                       std::string* error);

/// Derive the candidate baseline from one record: perf summaries
/// (wall/cpu seconds, items/sec) get median + MAD over the repeats;
/// correctness and digest metrics carry over verbatim.
Baseline baseline_from_record(const RunRecord& record);

std::string baseline_json(const Baseline& baseline);
bool write_baseline(const std::string& path, const Baseline& baseline);
bool parse_baseline(const JsonValue& doc, Baseline* out, std::string* error);
bool load_baseline(const std::string& path, Baseline* out,
                   std::string* error);

}  // namespace edgestab::obs
