// Prediction-flip ledger — the "which stimulus flipped where" half of
// the divergence auditor.
//
// core/instability reduces a set of per-environment observations to a
// single instability number; the ledger keeps the receipts. For every
// experiment group it records, per stimulus, which environments got it
// right and which got it wrong, tallies correct↔incorrect flips by
// ground-truth class and by (env, env) pair, and reproduces the exact
// item bookkeeping of `compute_instability` so its totals can be
// cross-checked against the paper metric for the same run (bench::Run
// fails the bench if they ever disagree).
//
// The ledger is plain bookkeeping — no images, no tensors — so it lives
// in src/obs and is linked in both EDGESTAB_DRIFT flavors; the drift
// auditor simply never feeds it when drift is compiled out.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace edgestab::obs {

/// One classification outcome of one stimulus in one environment —
/// a mirror of core's Observation, kept dependency-free so obs does not
/// link core.
struct FlipOutcome {
  int item = 0;
  int env = 0;
  bool correct = false;
  int predicted = -1;
  int class_id = -1;
};

/// One recorded correct↔incorrect flip: `env_correct` classified `item`
/// correctly while `env_incorrect` did not.
struct FlipEntry {
  int item = 0;
  int class_id = -1;
  int env_correct = 0;
  int env_incorrect = 0;
  int predicted_correct = -1;
  int predicted_incorrect = -1;
};

/// Per-group summary. The four *_items counters follow the exact
/// semantics of core::compute_instability: items seen in fewer than two
/// environments are skipped, an item is unstable iff at least one env is
/// correct AND at least one is incorrect, and all-wrong items stay in
/// the denominator.
struct LedgerGroupSummary {
  std::string group;
  int total_items = 0;
  int unstable_items = 0;
  int all_correct_items = 0;
  int all_incorrect_items = 0;

  /// Flip pair counts: one per (correct env, incorrect env) pair over
  /// all unstable items.
  std::map<int, int> flips_by_class;        ///< class_id -> flip pairs
  std::map<int, int> unstable_by_class;     ///< class_id -> unstable items
  std::map<std::pair<int, int>, int> flips_by_pair;  ///< (envA, envB) -> pairs

  /// Individual flip records, capped; `dropped_entries` counts the rest.
  std::vector<FlipEntry> entries;
  std::int64_t dropped_entries = 0;

  double instability() const {
    return total_items > 0
               ? static_cast<double>(unstable_items) / total_items
               : 0.0;
  }
};

/// Accumulates flip summaries per experiment group. Thread-compatible
/// (callers add whole groups; the DriftAuditor serializes access).
class FlipLedger {
 public:
  /// Max individual FlipEntry records kept per group; by-class /
  /// by-pair tallies are exact regardless.
  static constexpr std::size_t kMaxEntriesPerGroup = 20000;

  /// Ingest one experiment group's outcomes. If the group name was seen
  /// before the outcomes are appended to the existing per-item tallies
  /// and the summary is recomputed.
  void add_group(const std::string& group,
                 std::span<const FlipOutcome> outcomes);

  /// Fold another ledger (a per-thread shard) into this one. Each
  /// affected group's raw outcomes are re-sorted by (item, env), so the
  /// merged ledger — entries, tallies and digest() — is identical no
  /// matter how the work was sharded or in which order shards merge.
  void merge(const FlipLedger& other);

  std::vector<LedgerGroupSummary> summaries() const;
  std::optional<LedgerGroupSummary> find_group(const std::string& group) const;
  bool empty() const { return raw_.empty(); }

  /// Stable fingerprint over all group totals (for the provenance
  /// manifest digest).
  std::uint64_t digest() const;

  void clear();

 private:
  // Raw outcomes per group; summaries are rebuilt on demand so repeated
  // add_group calls for one group stay consistent.
  std::map<std::string, std::vector<FlipOutcome>> raw_;

  LedgerGroupSummary build_summary(const std::string& group) const;
};

}  // namespace edgestab::obs
