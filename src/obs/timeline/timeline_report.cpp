#include "obs/timeline/timeline_report.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/manifest.h"
#include "obs/report.h"
#include "util/hashing.h"

namespace edgestab::obs {

namespace {

constexpr const char* kTimelineFormat = "edgestab-timeline-v1";

bool write_text_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[timeline] cannot open %s for writing\n",
                 path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[timeline] short write to %s\n", path.c_str());
  return ok;
}

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

bool parse_ll(const JsonValue* v, long long* out) {
  if (v == nullptr || !v->is_number()) return false;
  *out = static_cast<long long>(v->number);
  return true;
}

bool parse_int(const JsonValue* v, int* out) {
  long long ll = 0;
  if (!parse_ll(v, &ll)) return false;
  *out = static_cast<int>(ll);
  return true;
}

void write_names(JsonWriter& w, const char* key,
                 const std::vector<std::string>& names) {
  w.key(key).begin_array();
  for (const std::string& n : names) w.value(n);
  w.end_array();
}

bool parse_names(const JsonValue* v, std::vector<std::string>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  for (const JsonValue& s : v->items) {
    if (!s.is_string()) return false;
    out->push_back(s.string);
  }
  return true;
}

}  // namespace

void timeline_epoch_json(JsonWriter& w, const TimelineEpoch& e) {
  w.begin_object();
  w.key("epoch").value(static_cast<std::int64_t>(e.index));
  w.key("slots").value(e.slots);
  w.key("outcomes").begin_array();
  for (long long c : e.outcomes) w.value(static_cast<std::int64_t>(c));
  w.end_array();
  w.key("latency_hist").begin_array();
  for (const std::map<int, long long>& hist : e.latency_hist) {
    w.begin_array();
    for (const auto& [bucket, count] : hist) {
      w.begin_array();
      w.value(bucket);
      w.value(static_cast<std::int64_t>(count));
      w.end_array();
    }
    w.end_array();
  }
  w.end_array();
  w.key("census").begin_array();
  for (long long c : e.census) w.value(static_cast<std::int64_t>(c));
  w.end_array();
  w.key("queues").begin_array();
  for (const TimelineEpoch::QueueLane& lane : e.queues) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(lane.min));
    w.value(static_cast<std::int64_t>(lane.max));
    w.value(static_cast<std::int64_t>(lane.sum));
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

bool parse_timeline_epoch(const JsonValue& v, TimelineEpoch* out) {
  if (!v.is_object()) return false;
  TimelineEpoch e;
  if (!parse_ll(v.find("epoch"), &e.index)) return false;
  if (!parse_int(v.find("slots"), &e.slots)) return false;
  const JsonValue* outcomes = v.find("outcomes");
  if (outcomes == nullptr || !outcomes->is_array()) return false;
  for (const JsonValue& c : outcomes->items) {
    if (!c.is_number()) return false;
    e.outcomes.push_back(static_cast<long long>(c.number));
  }
  const JsonValue* hists = v.find("latency_hist");
  if (hists == nullptr || !hists->is_array()) return false;
  for (const JsonValue& cls : hists->items) {
    if (!cls.is_array()) return false;
    std::map<int, long long> hist;
    for (const JsonValue& pair : cls.items) {
      if (!pair.is_array() || pair.items.size() != 2 ||
          !pair.items[0].is_number() || !pair.items[1].is_number()) {
        return false;
      }
      hist[static_cast<int>(pair.items[0].number)] =
          static_cast<long long>(pair.items[1].number);
    }
    e.latency_hist.push_back(std::move(hist));
  }
  const JsonValue* census = v.find("census");
  if (census == nullptr || !census->is_array()) return false;
  for (const JsonValue& c : census->items) {
    if (!c.is_number()) return false;
    e.census.push_back(static_cast<long long>(c.number));
  }
  const JsonValue* queues = v.find("queues");
  if (queues == nullptr || !queues->is_array()) return false;
  for (const JsonValue& lane : queues->items) {
    if (!lane.is_array() || lane.items.size() != 3 ||
        !lane.items[0].is_number() || !lane.items[1].is_number() ||
        !lane.items[2].is_number()) {
      return false;
    }
    TimelineEpoch::QueueLane q;
    q.min = static_cast<long long>(lane.items[0].number);
    q.max = static_cast<long long>(lane.items[1].number);
    q.sum = static_cast<long long>(lane.items[2].number);
    e.queues.push_back(q);
  }
  *out = std::move(e);
  return true;
}

void timeline_transition_json(JsonWriter& w, const BreakerTransition& t) {
  w.begin_object();
  w.key("device").value(t.device);
  w.key("epoch").value(static_cast<std::int64_t>(t.epoch));
  w.key("slot").value(static_cast<std::int64_t>(t.slot));
  w.key("from").value(t.from);
  w.key("to").value(t.to);
  w.key("cause").value(t.cause);
  w.end_object();
}

bool parse_timeline_transition(const JsonValue& v, BreakerTransition* out) {
  if (!v.is_object()) return false;
  BreakerTransition t;
  if (!parse_int(v.find("device"), &t.device)) return false;
  if (!parse_ll(v.find("epoch"), &t.epoch)) return false;
  if (!parse_ll(v.find("slot"), &t.slot)) return false;
  if (!parse_int(v.find("from"), &t.from)) return false;
  if (!parse_int(v.find("to"), &t.to)) return false;
  const JsonValue* cause = v.find("cause");
  if (cause == nullptr || !cause->is_string()) return false;
  t.cause = cause->string;
  *out = std::move(t);
  return true;
}

void timeline_trace_json(JsonWriter& w, const ShotTrace& t) {
  w.begin_object();
  w.key("g").value(static_cast<std::int64_t>(t.g));
  w.key("slot").value(static_cast<std::int64_t>(t.slot));
  w.key("device").value(t.device);
  w.key("class").value(t.cls);
  w.key("outcome").value(t.outcome);
  w.key("queue_wait_us").value(static_cast<std::int64_t>(t.queue_wait_us));
  w.key("service_us").value(static_cast<std::int64_t>(t.service_us));
  w.key("backoff_us").value(static_cast<std::int64_t>(t.backoff_us));
  w.key("delivery_us").value(static_cast<std::int64_t>(t.delivery_us));
  w.key("attempts").begin_array();
  for (const TraceAttempt& a : t.attempts) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(a.backoff_us));
    w.value(static_cast<std::int64_t>(a.service_us));
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

bool parse_timeline_trace(const JsonValue& v, ShotTrace* out) {
  if (!v.is_object()) return false;
  ShotTrace t;
  if (!parse_ll(v.find("g"), &t.g)) return false;
  if (!parse_ll(v.find("slot"), &t.slot)) return false;
  if (!parse_int(v.find("device"), &t.device)) return false;
  if (!parse_int(v.find("class"), &t.cls)) return false;
  if (!parse_int(v.find("outcome"), &t.outcome)) return false;
  if (!parse_ll(v.find("queue_wait_us"), &t.queue_wait_us)) return false;
  if (!parse_ll(v.find("service_us"), &t.service_us)) return false;
  if (!parse_ll(v.find("backoff_us"), &t.backoff_us)) return false;
  if (!parse_ll(v.find("delivery_us"), &t.delivery_us)) return false;
  const JsonValue* attempts = v.find("attempts");
  if (attempts == nullptr || !attempts->is_array()) return false;
  for (const JsonValue& a : attempts->items) {
    if (!a.is_array() || a.items.size() != 2 || !a.items[0].is_number() ||
        !a.items[1].is_number()) {
      return false;
    }
    TraceAttempt attempt;
    attempt.backoff_us = static_cast<long long>(a.items[0].number);
    attempt.service_us = static_cast<long long>(a.items[1].number);
    t.attempts.push_back(attempt);
  }
  *out = std::move(t);
  return true;
}

std::uint64_t timeline_digest(const TimelineDoc& doc) {
  Fingerprint fp;
  fp.add(std::string(kTimelineFormat));
  fp.add(doc.epoch_slots);
  fp.add(doc.trace_sample_ppm);
  fp.add(doc.slots_total);
  for (const std::vector<std::string>* names :
       {&doc.stages, &doc.classes, &doc.outcomes}) {
    fp.add(static_cast<long long>(names->size()));
    for (const std::string& n : *names) fp.add(n);
  }
  fp.add(static_cast<long long>(doc.epochs.size()));
  for (const TimelineEpoch& e : doc.epochs) {
    fp.add(e.index);
    fp.add(e.slots);
    for (long long c : e.outcomes) fp.add(c);
    for (const std::map<int, long long>& hist : e.latency_hist) {
      fp.add(static_cast<long long>(hist.size()));
      for (const auto& [bucket, count] : hist) {
        fp.add(bucket);
        fp.add(count);
      }
    }
    for (long long c : e.census) fp.add(c);
    // e.queues deliberately excluded: live queue depths are wall-clock
    // observational data (DESIGN.md §18).
  }
  fp.add(static_cast<long long>(doc.transitions.size()));
  for (const BreakerTransition& t : doc.transitions) {
    fp.add(t.device);
    fp.add(t.epoch);
    fp.add(t.slot);
    fp.add(t.from);
    fp.add(t.to);
    fp.add(t.cause);
  }
  fp.add(static_cast<long long>(doc.traces.size()));
  for (const ShotTrace& t : doc.traces) {
    fp.add(t.g);
    fp.add(t.slot);
    fp.add(t.device);
    fp.add(t.cls);
    fp.add(t.outcome);
    fp.add(t.queue_wait_us);
    fp.add(t.service_us);
    fp.add(t.backoff_us);
    fp.add(t.delivery_us);
    for (const TraceAttempt& a : t.attempts) {
      fp.add(a.backoff_us);
      fp.add(a.service_us);
    }
  }
  fp.add(doc.traces_dropped);
  return fp.value();
}

std::string timeline_json(const TimelineDoc& doc) {
  JsonWriter w;
  w.begin_object();
  w.key("format").value(kTimelineFormat);
  w.key("bench").value(doc.bench);
  w.key("epoch_slots").value(doc.epoch_slots);
  w.key("trace_sample_ppm")
      .value(static_cast<std::int64_t>(doc.trace_sample_ppm));
  w.key("slots_total").value(static_cast<std::int64_t>(doc.slots_total));
  write_names(w, "stages", doc.stages);
  write_names(w, "classes", doc.classes);
  write_names(w, "outcomes", doc.outcomes);
  w.key("census_states").begin_array();
  for (int s = 0; s < kTimelineCensusStates; ++s) {
    w.value(timeline_census_name(s));
  }
  w.end_array();
  w.key("epochs").begin_array();
  for (const TimelineEpoch& e : doc.epochs) timeline_epoch_json(w, e);
  w.end_array();
  w.key("transitions").begin_array();
  for (const BreakerTransition& t : doc.transitions) {
    timeline_transition_json(w, t);
  }
  w.end_array();
  w.key("traces").begin_array();
  for (const ShotTrace& t : doc.traces) timeline_trace_json(w, t);
  w.end_array();
  w.key("traces_dropped").value(static_cast<std::int64_t>(doc.traces_dropped));
  w.key("digest").value(hex_digest(timeline_digest(doc)));
  w.end_object();
  return w.take();
}

bool parse_timeline(const std::string& text, TimelineDoc* out,
                    std::string* error) {
  std::optional<JsonValue> v = parse_json(text, error);
  if (!v) return false;
  auto fail = [error](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  if (!v->is_object()) return fail("timeline document is not an object");
  const JsonValue* format = v->find("format");
  if (format == nullptr || format->string_or("") != kTimelineFormat) {
    return fail("not an edgestab-timeline-v1 document");
  }
  TimelineDoc doc;
  const JsonValue* bench = v->find("bench");
  if (bench == nullptr || !bench->is_string()) return fail("missing bench");
  doc.bench = bench->string;
  if (!parse_int(v->find("epoch_slots"), &doc.epoch_slots)) {
    return fail("missing epoch_slots");
  }
  if (!parse_ll(v->find("trace_sample_ppm"), &doc.trace_sample_ppm)) {
    return fail("missing trace_sample_ppm");
  }
  if (!parse_ll(v->find("slots_total"), &doc.slots_total)) {
    return fail("missing slots_total");
  }
  if (!parse_names(v->find("stages"), &doc.stages)) {
    return fail("missing stages");
  }
  if (!parse_names(v->find("classes"), &doc.classes)) {
    return fail("missing classes");
  }
  if (!parse_names(v->find("outcomes"), &doc.outcomes)) {
    return fail("missing outcomes");
  }
  const JsonValue* epochs = v->find("epochs");
  if (epochs == nullptr || !epochs->is_array()) return fail("missing epochs");
  for (const JsonValue& e : epochs->items) {
    TimelineEpoch parsed;
    if (!parse_timeline_epoch(e, &parsed)) return fail("malformed epoch");
    doc.epochs.push_back(std::move(parsed));
  }
  const JsonValue* transitions = v->find("transitions");
  if (transitions == nullptr || !transitions->is_array()) {
    return fail("missing transitions");
  }
  for (const JsonValue& t : transitions->items) {
    BreakerTransition parsed;
    if (!parse_timeline_transition(t, &parsed)) {
      return fail("malformed transition");
    }
    doc.transitions.push_back(std::move(parsed));
  }
  const JsonValue* traces = v->find("traces");
  if (traces == nullptr || !traces->is_array()) return fail("missing traces");
  for (const JsonValue& t : traces->items) {
    ShotTrace parsed;
    if (!parse_timeline_trace(t, &parsed)) return fail("malformed trace");
    doc.traces.push_back(std::move(parsed));
  }
  if (!parse_ll(v->find("traces_dropped"), &doc.traces_dropped)) {
    return fail("missing traces_dropped");
  }
  *out = std::move(doc);
  return true;
}

namespace {

/// One SVG sparkline lane. Pure function of the series, so the bench's
/// HTML and the sentinel's offline re-render are byte-identical.
std::string sparkline(const std::vector<long long>& series, long long peak,
                      const char* css_class) {
  constexpr int kW = 600;
  constexpr int kH = 36;
  constexpr int kPad = 2;
  std::string svg;
  appendf(svg,
          "<svg class=\"lane\" width=\"%d\" height=\"%d\" "
          "viewBox=\"0 0 %d %d\">",
          kW, kH, kW, kH);
  if (!series.empty()) {
    const long long vmax = std::max<long long>(1, peak);
    const std::size_t n = series.size();
    std::string points;
    for (std::size_t i = 0; i < n; ++i) {
      const double x =
          n == 1 ? kW / 2.0
                 : kPad + static_cast<double>(i) * (kW - 2 * kPad) / (n - 1);
      const double y = kH - kPad -
                       static_cast<double>(series[i]) * (kH - 2 * kPad) / vmax;
      appendf(points, "%s%.2f,%.2f", i == 0 ? "" : " ", x, y);
    }
    if (n == 1) {
      appendf(svg, "<circle class=\"%s\" cx=\"%d\" cy=\"%s\" r=\"2\"/>",
              css_class, kW / 2,
              points.substr(points.find(',') + 1).c_str());
    } else {
      appendf(svg, "<polyline class=\"%s\" points=\"%s\"/>", css_class,
              points.c_str());
    }
  }
  svg += "</svg>";
  return svg;
}

void lane_row(std::string& html, const std::string& label,
              const std::vector<long long>& series, const char* css_class) {
  long long peak = 0;
  long long last = 0;
  for (long long v : series) peak = std::max(peak, v);
  if (!series.empty()) last = series.back();
  html += "<tr><td class=\"label\">" + html_escape(label) + "</td><td>";
  html += sparkline(series, peak, css_class);
  appendf(html, "</td><td class=\"num\">%lld</td><td class=\"num\">%lld</td></tr>\n",
          peak, last);
}

}  // namespace

std::string timeline_html(const TimelineDoc& doc) {
  std::string html;
  html +=
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>" +
      html_escape(doc.bench) +
      " — service timeline</title>\n<style>\n"
      "body{font-family:system-ui,sans-serif;margin:24px;background:#111;"
      "color:#ddd;}\n"
      "h1{font-size:20px;} h2{font-size:16px;margin-top:28px;}\n"
      "table{border-collapse:collapse;}\n"
      "td,th{padding:3px 10px;font-size:13px;text-align:left;}\n"
      "td.num,th.num{text-align:right;font-variant-numeric:tabular-nums;}\n"
      "td.label{color:#9bd;white-space:nowrap;}\n"
      "svg.lane{background:#181818;border:1px solid #333;}\n"
      "polyline,circle{fill:none;stroke-width:1.5;}\n"
      "circle{fill:currentColor;}\n"
      ".outcome{stroke:#6c6;color:#6c6;} .queue{stroke:#fa0;color:#fa0;}\n"
      ".census{stroke:#e66;color:#e66;} .marker{fill:#e66;stroke:none;}\n"
      ".summary{color:#888;font-size:13px;}\n"
      "</style></head><body>\n";
  html += "<h1>" + html_escape(doc.bench) + " — service timeline</h1>\n";
  appendf(html,
          "<p class=\"summary\">%zu epochs × %d slots (%lld slots total) · "
          "trace sample %lld ppm · %zu traces kept",
          doc.epochs.size(), doc.epoch_slots, doc.slots_total,
          doc.trace_sample_ppm, doc.traces.size());
  if (doc.traces_dropped > 0) {
    appendf(html, " (%lld dropped past cap)", doc.traces_dropped);
  }
  html += " · epoch axis is aggregator fold order, never wall clock</p>\n";

  // Outcome lanes: per-epoch deltas per outcome.
  html +=
      "<h2>Outcomes per epoch</h2>\n<table>\n"
      "<tr><th>series</th><th>lane</th><th class=\"num\">peak</th>"
      "<th class=\"num\">last</th></tr>\n";
  for (std::size_t o = 0; o < doc.outcomes.size(); ++o) {
    std::vector<long long> series;
    series.reserve(doc.epochs.size());
    for (const TimelineEpoch& e : doc.epochs) {
      series.push_back(o < e.outcomes.size() ? e.outcomes[o] : 0);
    }
    lane_row(html, doc.outcomes[o], series, "outcome");
  }
  html += "</table>\n";

  // Queue-depth lanes (observational): per-stage epoch mean, peak = max.
  html +=
      "<h2>Queue depth per stage (observational, epoch mean)</h2>\n<table>\n"
      "<tr><th>stage</th><th>lane</th><th class=\"num\">peak</th>"
      "<th class=\"num\">last</th></tr>\n";
  for (std::size_t s = 0; s < doc.stages.size(); ++s) {
    std::vector<long long> series;
    long long peak = 0;
    series.reserve(doc.epochs.size());
    for (const TimelineEpoch& e : doc.epochs) {
      long long mean = 0;
      if (s < e.queues.size() && e.slots > 0) {
        mean = e.queues[s].sum / e.slots;
        peak = std::max(peak, e.queues[s].max);
      }
      series.push_back(mean);
    }
    html += "<tr><td class=\"label\">" + html_escape(doc.stages[s]) +
            "</td><td>";
    long long lane_peak = 0;
    for (long long v : series) lane_peak = std::max(lane_peak, v);
    html += sparkline(series, lane_peak, "queue");
    appendf(html,
            "</td><td class=\"num\">%lld</td><td class=\"num\">%lld</td></tr>\n",
            peak, series.empty() ? 0 : series.back());
  }
  html += "</table>\n";

  // Breaker census lanes + transition markers.
  html +=
      "<h2>Breaker census at epoch close</h2>\n<table>\n"
      "<tr><th>state</th><th>lane</th><th class=\"num\">peak</th>"
      "<th class=\"num\">last</th></tr>\n";
  for (int s = 0; s < kTimelineCensusStates; ++s) {
    std::vector<long long> series;
    series.reserve(doc.epochs.size());
    for (const TimelineEpoch& e : doc.epochs) {
      series.push_back(s < static_cast<int>(e.census.size()) ? e.census[s]
                                                             : 0);
    }
    lane_row(html, timeline_census_name(s), series, "census");
  }
  html += "</table>\n";

  appendf(html, "<h2>Breaker transitions (%zu)</h2>\n",
          doc.transitions.size());
  if (!doc.transitions.empty()) {
    // Marker strip: one dot per transition, x by folded slot.
    const long long span = std::max<long long>(1, doc.slots_total);
    std::string strip =
        "<svg class=\"lane\" width=\"600\" height=\"24\" "
        "viewBox=\"0 0 600 24\">";
    for (const BreakerTransition& t : doc.transitions) {
      const double x = 2 + static_cast<double>(t.slot) * 596 / span;
      appendf(strip, "<circle class=\"marker\" cx=\"%.2f\" cy=\"12\" r=\"3\">",
              x);
      std::string tip;
      appendf(tip, "slot %lld device %d: %s → %s (", t.slot, t.device,
              timeline_census_name(t.from), timeline_census_name(t.to));
      tip += t.cause + ")";
      strip += "<title>" + html_escape(tip) + "</title></circle>";
    }
    strip += "</svg>";
    html += "<p>" + strip + "</p>\n";
    html +=
        "<table>\n<tr><th class=\"num\">slot</th><th class=\"num\">epoch</th>"
        "<th class=\"num\">device</th><th>from</th><th>to</th>"
        "<th>cause</th></tr>\n";
    for (const BreakerTransition& t : doc.transitions) {
      appendf(html,
              "<tr><td class=\"num\">%lld</td><td class=\"num\">%lld</td>"
              "<td class=\"num\">%d</td><td>%s</td><td>%s</td><td>",
              t.slot, t.epoch, t.device, timeline_census_name(t.from),
              timeline_census_name(t.to));
      html += html_escape(t.cause) + "</td></tr>\n";
    }
    html += "</table>\n";
  } else {
    html += "<p class=\"summary\">no transitions recorded</p>\n";
  }

  appendf(html, "<h2>Sampled shot traces (%zu)</h2>\n", doc.traces.size());
  if (!doc.traces.empty()) {
    html +=
        "<table>\n<tr><th class=\"num\">shot</th><th class=\"num\">slot</th>"
        "<th class=\"num\">device</th><th>class</th><th>outcome</th>"
        "<th class=\"num\">queue wait µs</th><th class=\"num\">service µs</th>"
        "<th class=\"num\">backoff µs</th><th class=\"num\">delivery µs</th>"
        "<th class=\"num\">attempts</th></tr>\n";
    for (const ShotTrace& t : doc.traces) {
      const std::string cls =
          t.cls >= 0 && t.cls < static_cast<int>(doc.classes.size())
              ? doc.classes[t.cls]
              : std::to_string(t.cls);
      const std::string outcome =
          t.outcome >= 0 && t.outcome < static_cast<int>(doc.outcomes.size())
              ? doc.outcomes[t.outcome]
              : std::to_string(t.outcome);
      appendf(html, "<tr><td class=\"num\">%lld</td><td class=\"num\">%lld</td>"
                    "<td class=\"num\">%d</td><td>",
              t.g, t.slot, t.device);
      html += html_escape(cls) + "</td><td>" + html_escape(outcome) + "</td>";
      appendf(html,
              "<td class=\"num\">%lld</td><td class=\"num\">%lld</td>"
              "<td class=\"num\">%lld</td><td class=\"num\">%lld</td>"
              "<td class=\"num\">%zu</td></tr>\n",
              t.queue_wait_us, t.service_us, t.backoff_us, t.delivery_us,
              t.attempts.size());
    }
    html += "</table>\n";
  } else {
    html += "<p class=\"summary\">no traces sampled</p>\n";
  }

  html += "</body></html>\n";
  return html;
}

std::uint64_t write_timeline_report(const TimelineDoc& doc,
                                    const std::string& dir,
                                    RunManifest* manifest) {
  const std::uint64_t digest = timeline_digest(doc);
  const std::string json_file = doc.bench + ".timeline.json";
  const std::string html_file = doc.bench + ".timeline.html";
  bool ok = write_text_file(dir + "/" + json_file, timeline_json(doc));
  ok = write_text_file(dir + "/" + html_file, timeline_html(doc)) && ok;
  if (ok) {
    std::printf("[timeline] %s/%s + %s (%zu epochs, %zu transitions, "
                "%zu traces)\n",
                dir.c_str(), json_file.c_str(), html_file.c_str(),
                doc.epochs.size(), doc.transitions.size(), doc.traces.size());
  }
  if (manifest != nullptr) {
    manifest->add_digest("timeline", digest);
    if (ok) {
      manifest->add_artifact(json_file);
      manifest->add_artifact(html_file);
    }
  }
  return digest;
}

}  // namespace edgestab::obs
