// Exporters for the service timeline (DESIGN.md §18): the canonical
// edgestab-timeline-v1 JSON document, its FNV digest over the
// deterministic surface, a self-contained SVG sparkline dashboard, and
// the full-fidelity parser the sentinel uses to re-render both offline.
//
// timeline_html is a pure function of the parsed document — the HTML
// the bench writes and the HTML `edgestab_sentinel timeline` re-renders
// from the JSON are byte-identical, which the timeline gate asserts.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.h"
#include "obs/timeline/timeline.h"

namespace edgestab::obs {

class RunManifest;

/// Canonical edgestab-timeline-v1 document. Deterministic: epochs are
/// emitted in ascending index order, transitions and traces in fold
/// order, and every number is an integer (counts, microseconds, ppm),
/// so the bytes are identical across thread counts and kill/resume.
std::string timeline_json(const TimelineDoc& doc);

/// Full-fidelity parse of timeline_json output (including the
/// observational queue lanes). Returns false and fills `error` on
/// malformed or wrong-format input.
bool parse_timeline(const std::string& text, TimelineDoc* out,
                    std::string* error);

/// FNV-1a fingerprint over the deterministic surface of the document:
/// config (epoch length, sample rate, name tables), per-epoch outcome
/// deltas / latency histograms / census, the transition stream and the
/// sampled traces. The observational queue-depth lanes, the bench name
/// and slot/wall bookkeeping that merely mirrors them are excluded —
/// this digest is the cross-thread / cross-resume equality contract.
std::uint64_t timeline_digest(const TimelineDoc& doc);

/// Self-contained HTML dashboard: SVG sparkline lanes for outcome
/// deltas, per-stage queue depth and breaker census, transition markers
/// with cause tooltips, and the sampled-trace table. All labels pass
/// through obs::html_escape; no scripts.
std::string timeline_html(const TimelineDoc& doc);

/// Write <dir>/<doc.bench>.timeline.json and .timeline.html, register
/// both as artifacts and add the "timeline" digest to `manifest` (when
/// non-null). Returns the digest it registered.
std::uint64_t write_timeline_report(const TimelineDoc& doc,
                                    const std::string& dir,
                                    RunManifest* manifest);

// Shared element codecs — used by timeline_json and by the recorder's
// checkpoint state serialization (edgestab-timeline-state-v1), so the
// two documents cannot drift apart.
void timeline_epoch_json(JsonWriter& w, const TimelineEpoch& e);
bool parse_timeline_epoch(const JsonValue& v, TimelineEpoch* out);
void timeline_transition_json(JsonWriter& w, const BreakerTransition& t);
bool parse_timeline_transition(const JsonValue& v, BreakerTransition* out);
void timeline_trace_json(JsonWriter& w, const ShotTrace& t);
bool parse_timeline_trace(const JsonValue& v, ShotTrace* out);

}  // namespace edgestab::obs
