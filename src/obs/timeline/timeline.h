// Service timeline — deterministic epoch time-series for the streaming
// fleet pipeline.
//
// PR 9's soak observability is end-of-run aggregates: a run that
// degrades halfway through (breaker storm, queue saturation, shed
// burst) is indistinguishable from one that was mildly bad throughout.
// The timeline supplies the *when*: the serial aggregator feeds one
// TimelineRecorder singleton in fold order, and the recorder buckets
// everything into **fold epochs** — every `epoch_slots` aggregator-
// folded slots close one epoch. Epochs are counted in folded slots,
// never wall clock, so the series is bit-identical at any --threads
// setting and across a kill/resume boundary.
//
// Per epoch the recorder keeps outcome-count deltas, per-device-class
// modeled-latency histograms (log2-microsecond buckets), the breaker-
// state census at epoch close, and observational per-stage queue-depth
// lanes; alongside the epochs ride a breaker state-transition event
// stream (device, epoch, from, to, cause) and sampled per-shot causal
// traces decomposing modeled end-to-end latency into queue-wait vs
// service time with the attempt/backoff breakdown.
//
// Determinism contract (mirrors telemetry/fault ledger): every digested
// surface is integer-quantized and fed serially from the aggregator in
// shot order. Queue-depth lanes are the one observational exception —
// they sample live wall-clock queue sizes at slot-fold time, so they
// ride in the exported document but are excluded from the digest (the
// same split as the soak report's wall_seconds/stage high-water half).
//
// The recorder's full accumulator state — including the open partial
// epoch — serializes into the edgestab-ckpt-v1 checkpoint
// ("edgestab-timeline-state-v1") so a resumed run continues the series
// seamlessly; restore refuses a state whose epoch length or trace
// sample rate differ from the live knobs.
//
// Build flavors: with -DEDGESTAB_TIMELINE=OFF `kTimelineCompiledIn` is
// false and enabled() folds to constant false, so every hook compiles
// to a dead test; the classes stay linked (and unit-testable) in both
// flavors, mirroring the drift/fault/telemetry design.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace edgestab::obs {

#ifdef EDGESTAB_TIMELINE
inline constexpr bool kTimelineCompiledIn = true;
#else
inline constexpr bool kTimelineCompiledIn = false;
#endif

/// Breaker census states. 0-2 mirror service::BreakerState; 3 is the
/// sticky-open terminal (the timeline keeps its own id space so obs
/// stays independent of the service layer).
inline constexpr int kTimelineCensusStates = 4;
const char* timeline_census_name(int state);

/// One closed (or, at snapshot time, partially filled) fold epoch.
struct TimelineEpoch {
  long long index = 0;  ///< epoch number: first folded slot / epoch_slots
  int slots = 0;        ///< slots folded into this epoch (== epoch_slots
                        ///< except for a trailing partial epoch)

  /// Outcome-count deltas this epoch, indexed like the outcome name
  /// table the run registered.
  std::vector<long long> outcomes;

  /// Per-device-class modeled-latency histogram over classified shots:
  /// hist[class][bucket] where bucket b covers [2^b, 2^(b+1)) us.
  std::vector<std::map<int, long long>> latency_hist;

  /// Breaker-state census at epoch close (device counts per census
  /// state) — derived from the transition stream, so deterministic.
  std::vector<long long> census;

  /// Observational per-stage queue-depth lane, sampled once per folded
  /// slot from the live queues. NOT part of the digest.
  struct QueueLane {
    long long min = 0;
    long long max = 0;
    long long sum = 0;  ///< divide by `slots` for the epoch mean
  };
  std::vector<QueueLane> queues;
};

/// One breaker state transition, in fold order.
struct BreakerTransition {
  int device = 0;
  long long epoch = 0;
  long long slot = 0;  ///< folded-slot index the transition landed in
  int from = 0;        ///< census state ids
  int to = 0;
  std::string cause;   ///< "timeout_trip" | "cooldown_elapsed" |
                       ///< "probe_failure" | "probe_success" |
                       ///< "sticky_latch"
};

/// One service attempt inside a sampled trace.
struct TraceAttempt {
  long long backoff_us = 0;  ///< exponential backoff before the attempt
  long long service_us = 0;  ///< the attempt's modeled latency draw
};

/// One sampled per-shot causal trace: the modeled end-to-end latency
/// decomposed into queue wait (virtual backlog at admission), service
/// time, retry backoff and delivery delay. All integer microseconds.
struct ShotTrace {
  long long g = 0;
  long long slot = 0;
  int device = 0;
  int cls = 0;      ///< device-class index into the class name table
  int outcome = 0;  ///< outcome index into the outcome name table
  long long queue_wait_us = 0;
  long long service_us = 0;
  long long backoff_us = 0;
  long long delivery_us = 0;
  std::vector<TraceAttempt> attempts;
};

/// Canonical snapshot of the whole series — what the exporters render
/// and the sentinel re-renders offline.
struct TimelineDoc {
  std::string bench;  ///< filled by the exporter, not the recorder
  int epoch_slots = 0;
  long long trace_sample_ppm = 0;
  long long slots_total = 0;

  std::vector<std::string> stages;
  std::vector<std::string> classes;
  std::vector<std::string> outcomes;

  std::vector<TimelineEpoch> epochs;  ///< ascending; last may be partial
  std::vector<BreakerTransition> transitions;
  std::vector<ShotTrace> traces;
  long long traces_dropped = 0;

  bool empty() const { return epochs.empty() && transitions.empty(); }
};

/// Process-wide timeline recorder. All record hooks are called serially
/// from the streaming aggregator in fold order; the mutex exists so
/// snapshot/serialize from another thread is safe, not to make folds
/// commutative (they are order-dependent by design — fold order IS the
/// time axis).
class TimelineRecorder {
 public:
  /// Default fold-epoch length in slots.
  static constexpr int kDefaultEpochSlots = 64;
  /// Default per-shot trace sample rate, parts per million (2%).
  static constexpr long long kDefaultTracePpm = 20000;
  /// Deterministic cap on retained traces; overflow (in fold order, so
  /// identical at any thread count) increments traces_dropped.
  static constexpr std::size_t kTraceCap = 512;

  static TimelineRecorder& global();

  TimelineRecorder() = default;

  /// False in an EDGESTAB_TIMELINE=OFF build no matter what a caller
  /// set, so every hook folds to a dead test.
  bool enabled() const {
    if constexpr (!kTimelineCompiledIn) return false;
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Epoch length in folded slots (clamped to >= 1). Set before the run
  /// starts; restore_state refuses a mismatching checkpoint.
  void set_epoch_slots(int slots);
  int epoch_slots() const {
    return epoch_slots_.load(std::memory_order_relaxed);
  }

  /// Trace sample rate in parts per million, clamped to [0, 1000000].
  void set_trace_sample_ppm(long long ppm);
  long long trace_sample_ppm() const {
    return trace_ppm_.load(std::memory_order_relaxed);
  }

  /// Start a fresh series for a run: registers the stage / device-class
  /// / outcome name tables and the fleet size (for the census), and
  /// drops any accumulated series. Keeps enabled() and the knob values.
  /// On a resume, call this first, then restore_state().
  void begin_run(std::vector<std::string> stages,
                 std::vector<std::string> classes,
                 std::vector<std::string> outcomes, int devices);

  /// One folded shot: bumps the epoch's outcome delta and — when
  /// `count_latency` — the class's latency histogram.
  void record_shot(int cls, int outcome, long long latency_us,
                   bool count_latency);

  /// One breaker state transition (census state ids); updates the live
  /// census tracking.
  void record_transition(int device, int from, int to, std::string cause);

  /// One sampled causal trace (deterministically capped, see kTraceCap).
  void record_trace(ShotTrace trace);

  /// One slot fully folded: samples the observational queue-depth lanes
  /// (one entry per registered stage) and closes the epoch when
  /// epoch_slots slots have accumulated.
  void note_slot_folded(const std::vector<long long>& queue_depths);

  /// Canonical snapshot: closed epochs plus the open partial epoch (if
  /// any), transitions and traces in fold order. `bench` is left empty.
  TimelineDoc snapshot() const;

  /// FNV fingerprint over the deterministic surface of snapshot() —
  /// everything except the observational queue-depth lanes.
  std::uint64_t digest() const;

  /// Exact JSON serialization of the full accumulator state
  /// ("edgestab-timeline-state-v1") including the open partial epoch
  /// and the queue lanes, so a restored recorder continues the series
  /// seamlessly mid-epoch.
  std::string serialize_state() const;

  /// Replace the series from serialize_state() output. Returns false on
  /// malformed input OR when the state's epoch_slots / trace sample
  /// rate differ from the live knobs — a resumed series under different
  /// bucketing would silently break the epoch contract.
  bool restore_state(const std::string& json);

  bool empty() const;

  /// Drop all accumulated state and name tables; keeps enabled() and
  /// the knob values (mirrors DeviceHealthRegistry::clear so --repeats
  /// warm-ups can reset between runs).
  void clear();

 private:
  TimelineEpoch& open_epoch();
  void close_epoch();

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::atomic<int> epoch_slots_{kDefaultEpochSlots};
  std::atomic<long long> trace_ppm_{kDefaultTracePpm};

  std::vector<std::string> stages_;
  std::vector<std::string> classes_;
  std::vector<std::string> outcomes_;
  std::vector<int> device_state_;  ///< live census (census state ids)

  long long slots_seen_ = 0;  ///< fully folded slots (the time cursor)
  std::vector<TimelineEpoch> epochs_;  ///< closed epochs
  TimelineEpoch open_;                 ///< accumulating epoch
  bool open_active_ = false;

  std::vector<BreakerTransition> transitions_;
  std::vector<ShotTrace> traces_;
  long long traces_dropped_ = 0;
};

/// True when the timeline is compiled in AND the global recorder is
/// enabled — the one-line guard every hook site uses.
inline bool timeline_enabled() {
  if constexpr (!kTimelineCompiledIn) return false;
  return TimelineRecorder::global().enabled();
}

}  // namespace edgestab::obs
