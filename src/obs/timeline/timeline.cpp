#include "obs/timeline/timeline.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "obs/json.h"
#include "obs/timeline/timeline_report.h"

namespace edgestab::obs {

namespace {

constexpr const char* kStateFormat = "edgestab-timeline-state-v1";

/// floor(log2(us)) bucket; <= 1us lands in bucket 0.
int latency_bucket(long long us) {
  if (us <= 1) return 0;
  return std::bit_width(static_cast<unsigned long long>(us)) - 1;
}

bool parse_string_array(const JsonValue* v, std::vector<std::string>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->items.size());
  for (const JsonValue& s : v->items) {
    if (!s.is_string()) return false;
    out->push_back(s.string);
  }
  return true;
}

void write_string_array(JsonWriter& w, const std::vector<std::string>& v) {
  w.begin_array();
  for (const std::string& s : v) w.value(s);
  w.end_array();
}

}  // namespace

const char* timeline_census_name(int state) {
  switch (state) {
    case 0: return "closed";
    case 1: return "open";
    case 2: return "half-open";
    case 3: return "sticky";
    default: return "unknown";
  }
}

TimelineRecorder& TimelineRecorder::global() {
  static TimelineRecorder recorder;
  return recorder;
}

void TimelineRecorder::set_epoch_slots(int slots) {
  epoch_slots_.store(std::max(1, slots), std::memory_order_relaxed);
}

void TimelineRecorder::set_trace_sample_ppm(long long ppm) {
  trace_ppm_.store(std::clamp<long long>(ppm, 0, 1000000),
                   std::memory_order_relaxed);
}

void TimelineRecorder::begin_run(std::vector<std::string> stages,
                                 std::vector<std::string> classes,
                                 std::vector<std::string> outcomes,
                                 int devices) {
  std::lock_guard<std::mutex> lock(mu_);
  stages_ = std::move(stages);
  classes_ = std::move(classes);
  outcomes_ = std::move(outcomes);
  device_state_.assign(std::max(0, devices), 0);
  slots_seen_ = 0;
  epochs_.clear();
  open_ = TimelineEpoch{};
  open_active_ = false;
  transitions_.clear();
  traces_.clear();
  traces_dropped_ = 0;
}

TimelineEpoch& TimelineRecorder::open_epoch() {
  if (!open_active_) {
    open_ = TimelineEpoch{};
    open_.index = slots_seen_ / epoch_slots();
    open_.outcomes.assign(outcomes_.size(), 0);
    open_.latency_hist.assign(classes_.size(), {});
    open_.queues.assign(stages_.size(), TimelineEpoch::QueueLane{});
    open_active_ = true;
  }
  return open_;
}

void TimelineRecorder::close_epoch() {
  open_.census.assign(kTimelineCensusStates, 0);
  for (int s : device_state_) {
    if (s >= 0 && s < kTimelineCensusStates) ++open_.census[s];
  }
  epochs_.push_back(std::move(open_));
  open_ = TimelineEpoch{};
  open_active_ = false;
}

void TimelineRecorder::record_shot(int cls, int outcome, long long latency_us,
                                   bool count_latency) {
  std::lock_guard<std::mutex> lock(mu_);
  TimelineEpoch& e = open_epoch();
  if (outcome >= 0 && outcome < static_cast<int>(e.outcomes.size())) {
    ++e.outcomes[outcome];
  }
  if (count_latency && cls >= 0 &&
      cls < static_cast<int>(e.latency_hist.size())) {
    ++e.latency_hist[cls][latency_bucket(latency_us)];
  }
}

void TimelineRecorder::record_transition(int device, int from, int to,
                                         std::string cause) {
  std::lock_guard<std::mutex> lock(mu_);
  if (device < 0 || device >= static_cast<int>(device_state_.size())) return;
  BreakerTransition t;
  t.device = device;
  t.epoch = slots_seen_ / epoch_slots();
  t.slot = slots_seen_;
  t.from = std::clamp(from, 0, kTimelineCensusStates - 1);
  t.to = std::clamp(to, 0, kTimelineCensusStates - 1);
  t.cause = std::move(cause);
  device_state_[device] = t.to;
  transitions_.push_back(std::move(t));
}

void TimelineRecorder::record_trace(ShotTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (traces_.size() >= kTraceCap) {
    ++traces_dropped_;
    return;
  }
  traces_.push_back(std::move(trace));
}

void TimelineRecorder::note_slot_folded(
    const std::vector<long long>& queue_depths) {
  std::lock_guard<std::mutex> lock(mu_);
  TimelineEpoch& e = open_epoch();
  const bool first = e.slots == 0;
  const std::size_t lanes = std::min(e.queues.size(), queue_depths.size());
  for (std::size_t i = 0; i < lanes; ++i) {
    TimelineEpoch::QueueLane& lane = e.queues[i];
    const long long d = queue_depths[i];
    if (first) {
      lane.min = lane.max = lane.sum = d;
    } else {
      lane.min = std::min(lane.min, d);
      lane.max = std::max(lane.max, d);
      lane.sum += d;
    }
  }
  ++e.slots;
  ++slots_seen_;
  if (slots_seen_ % epoch_slots() == 0) close_epoch();
}

TimelineDoc TimelineRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TimelineDoc doc;
  doc.epoch_slots = epoch_slots();
  doc.trace_sample_ppm = trace_sample_ppm();
  doc.slots_total = slots_seen_;
  doc.stages = stages_;
  doc.classes = classes_;
  doc.outcomes = outcomes_;
  doc.epochs = epochs_;
  if (open_active_) {
    TimelineEpoch partial = open_;
    partial.census.assign(kTimelineCensusStates, 0);
    for (int s : device_state_) {
      if (s >= 0 && s < kTimelineCensusStates) ++partial.census[s];
    }
    doc.epochs.push_back(std::move(partial));
  }
  doc.transitions = transitions_;
  doc.traces = traces_;
  doc.traces_dropped = traces_dropped_;
  return doc;
}

std::uint64_t TimelineRecorder::digest() const {
  return timeline_digest(snapshot());
}

std::string TimelineRecorder::serialize_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("format").value(kStateFormat);
  w.key("epoch_slots").value(epoch_slots());
  w.key("trace_sample_ppm").value(static_cast<std::int64_t>(trace_sample_ppm()));
  w.key("stages");
  write_string_array(w, stages_);
  w.key("classes");
  write_string_array(w, classes_);
  w.key("outcomes");
  write_string_array(w, outcomes_);
  w.key("device_state").begin_array();
  for (int s : device_state_) w.value(s);
  w.end_array();
  w.key("slots_seen").value(static_cast<std::int64_t>(slots_seen_));
  w.key("traces_dropped").value(static_cast<std::int64_t>(traces_dropped_));
  w.key("epochs").begin_array();
  for (const TimelineEpoch& e : epochs_) timeline_epoch_json(w, e);
  w.end_array();
  w.key("open_active").value(open_active_);
  if (open_active_) {
    w.key("open");
    timeline_epoch_json(w, open_);
  }
  w.key("transitions").begin_array();
  for (const BreakerTransition& t : transitions_) timeline_transition_json(w, t);
  w.end_array();
  w.key("traces").begin_array();
  for (const ShotTrace& t : traces_) timeline_trace_json(w, t);
  w.end_array();
  w.end_object();
  return w.take();
}

bool TimelineRecorder::restore_state(const std::string& json) {
  std::optional<JsonValue> doc = parse_json(json);
  if (!doc || !doc->is_object()) return false;
  const JsonValue* format = doc->find("format");
  if (format == nullptr || format->string_or("") != kStateFormat) return false;

  // The epoch length and sample rate shape every bucket downstream; a
  // resume under different knobs would splice two incompatible series.
  const JsonValue* epoch_slots = doc->find("epoch_slots");
  const JsonValue* ppm = doc->find("trace_sample_ppm");
  if (epoch_slots == nullptr || !epoch_slots->is_number()) return false;
  if (ppm == nullptr || !ppm->is_number()) return false;
  if (static_cast<int>(epoch_slots->number) != this->epoch_slots()) {
    return false;
  }
  if (static_cast<long long>(ppm->number) != trace_sample_ppm()) return false;

  std::vector<std::string> stages;
  std::vector<std::string> classes;
  std::vector<std::string> outcomes;
  if (!parse_string_array(doc->find("stages"), &stages)) return false;
  if (!parse_string_array(doc->find("classes"), &classes)) return false;
  if (!parse_string_array(doc->find("outcomes"), &outcomes)) return false;

  const JsonValue* device_state = doc->find("device_state");
  if (device_state == nullptr || !device_state->is_array()) return false;
  std::vector<int> devices;
  devices.reserve(device_state->items.size());
  for (const JsonValue& s : device_state->items) {
    if (!s.is_number()) return false;
    devices.push_back(static_cast<int>(s.number));
  }

  const JsonValue* slots_seen = doc->find("slots_seen");
  const JsonValue* dropped = doc->find("traces_dropped");
  if (slots_seen == nullptr || !slots_seen->is_number()) return false;
  if (dropped == nullptr || !dropped->is_number()) return false;

  const JsonValue* epochs_v = doc->find("epochs");
  if (epochs_v == nullptr || !epochs_v->is_array()) return false;
  std::vector<TimelineEpoch> epochs;
  epochs.reserve(epochs_v->items.size());
  for (const JsonValue& e : epochs_v->items) {
    TimelineEpoch parsed;
    if (!parse_timeline_epoch(e, &parsed)) return false;
    epochs.push_back(std::move(parsed));
  }

  const JsonValue* open_active = doc->find("open_active");
  if (open_active == nullptr || !open_active->is_bool()) return false;
  TimelineEpoch open;
  if (open_active->boolean) {
    const JsonValue* open_v = doc->find("open");
    if (open_v == nullptr || !parse_timeline_epoch(*open_v, &open)) {
      return false;
    }
  }

  const JsonValue* transitions_v = doc->find("transitions");
  if (transitions_v == nullptr || !transitions_v->is_array()) return false;
  std::vector<BreakerTransition> transitions;
  transitions.reserve(transitions_v->items.size());
  for (const JsonValue& t : transitions_v->items) {
    BreakerTransition parsed;
    if (!parse_timeline_transition(t, &parsed)) return false;
    transitions.push_back(std::move(parsed));
  }

  const JsonValue* traces_v = doc->find("traces");
  if (traces_v == nullptr || !traces_v->is_array()) return false;
  std::vector<ShotTrace> traces;
  traces.reserve(traces_v->items.size());
  for (const JsonValue& t : traces_v->items) {
    ShotTrace parsed;
    if (!parse_timeline_trace(t, &parsed)) return false;
    traces.push_back(std::move(parsed));
  }

  std::lock_guard<std::mutex> lock(mu_);
  stages_ = std::move(stages);
  classes_ = std::move(classes);
  outcomes_ = std::move(outcomes);
  device_state_ = std::move(devices);
  slots_seen_ = static_cast<long long>(slots_seen->number);
  traces_dropped_ = static_cast<long long>(dropped->number);
  epochs_ = std::move(epochs);
  open_active_ = open_active->boolean;
  open_ = open_active_ ? std::move(open) : TimelineEpoch{};
  transitions_ = std::move(transitions);
  traces_ = std::move(traces);
  return true;
}

bool TimelineRecorder::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.empty() && !open_active_ && transitions_.empty() &&
         slots_seen_ == 0;
}

void TimelineRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
  classes_.clear();
  outcomes_.clear();
  device_state_.clear();
  slots_seen_ = 0;
  epochs_.clear();
  open_ = TimelineEpoch{};
  open_active_ = false;
  transitions_.clear();
  traces_.clear();
  traces_dropped_ = 0;
}

}  // namespace edgestab::obs
