#include "obs/baseline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "obs/metrics.h"

namespace edgestab::obs {

namespace {

constexpr char kRunRecordSchema[] = "edgestab-run-record-v1";
constexpr char kBaselineSchema[] = "edgestab-baseline-v1";

/// Numeric member with NaN for an explicit JSON null (the writer's
/// rendering of NaN/Inf) and `fallback` when absent or mistyped.
double number_member(const JsonValue& obj, const char* key,
                     double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->is_null()) return std::numeric_limits<double>::quiet_NaN();
  return v->number_or(fallback);
}

std::string string_member(const JsonValue& obj, const char* key,
                          std::string fallback = "") {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? fallback : v->string_or(std::move(fallback));
}

void emit_digests(
    JsonWriter& w,
    const std::vector<std::pair<std::string, std::string>>& digests) {
  w.key("digests");
  w.begin_object();
  for (const auto& [name, hex] : digests) w.key(name).value(hex);
  w.end_object();
}

std::vector<std::pair<std::string, std::string>> parse_digests(
    const JsonValue& doc) {
  std::vector<std::pair<std::string, std::string>> out;
  const JsonValue* digests = doc.find("digests");
  if (digests != nullptr && digests->is_object())
    for (const auto& [name, value] : digests->members)
      out.emplace_back(name, value.string_or(""));
  return out;
}

bool write_text_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

}  // namespace

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kPerf: return "perf";
    case MetricKind::kCorrectness: return "correctness";
    case MetricKind::kDigest: return "digest";
  }
  return "unknown";
}

const char* direction_name(Direction direction) {
  switch (direction) {
    case Direction::kLowerIsBetter: return "lower";
    case Direction::kHigherIsBetter: return "higher";
    case Direction::kExact: return "exact";
  }
  return "unknown";
}

std::optional<MetricKind> parse_metric_kind(const std::string& name) {
  if (name == "perf") return MetricKind::kPerf;
  if (name == "correctness") return MetricKind::kCorrectness;
  if (name == "digest") return MetricKind::kDigest;
  return std::nullopt;
}

std::optional<Direction> parse_direction(const std::string& name) {
  if (name == "lower") return Direction::kLowerIsBetter;
  if (name == "higher") return Direction::kHigherIsBetter;
  if (name == "exact") return Direction::kExact;
  return std::nullopt;
}

double median_of(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double mad_of(const std::vector<double>& values, double median) {
  if (values.empty()) return 0.0;
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) deviations.push_back(std::fabs(v - median));
  return median_of(std::move(deviations));
}

bool is_provenance_digest(const std::string& name) {
  return name == "lab_rig" || name == "workspace" || name == "fault_plan" ||
         name.rfind("isp_", 0) == 0;
}

std::vector<std::pair<std::string, double>> stage_wall_ms_from_registry() {
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [name, summary] :
       MetricsRegistry::global().histograms()) {
    if (!is_timing_histogram(name) || summary.count == 0) continue;
    out.emplace_back(name, static_cast<double>(summary.sum) / 1e6);
  }
  return out;  // registry snapshots are already name-sorted
}

std::string run_record_json(const RunRecord& record) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kRunRecordSchema);
  w.key("bench").value(record.bench);
  w.key("created_unix").value(record.created_unix);
  w.key("git_sha").value(record.git_sha);
  if (record.has_seed) w.key("seed").value(record.seed);
  w.key("threads").value(record.threads);
  w.key("fault_plan").value(record.fault_plan);
  w.key("items").value(record.items);
  w.key("max_rss_kb").value(static_cast<std::int64_t>(record.max_rss_kb));
  emit_digests(w, record.digests);
  w.key("repeats");
  w.begin_array();
  for (const RepeatSample& r : record.repeats) {
    w.begin_object();
    w.key("wall_seconds").value(r.wall_seconds);
    w.key("user_seconds").value(r.user_seconds);
    w.key("sys_seconds").value(r.sys_seconds);
    w.end_object();
  }
  w.end_array();
  w.key("stage_wall_ms");
  w.begin_object();
  for (const auto& [stage, ms] : record.stage_wall_ms) w.key(stage).value(ms);
  w.end_object();
  w.key("metrics");
  w.begin_array();
  for (const MetricSample& m : record.metrics) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("kind").value(metric_kind_name(m.kind));
    w.key("direction").value(direction_name(m.direction));
    w.key("unit").value(m.unit);
    if (m.kind == MetricKind::kDigest) {
      w.key("text").value(m.text);
    } else {
      w.key("value").value(m.value);
      if (m.epsilon > 0.0) w.key("epsilon").value(m.epsilon);
      if (m.abs_floor > 0.0) w.key("abs_floor").value(m.abs_floor);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool append_run_record(const std::string& path, const RunRecord& record) {
  std::string line = run_record_json(record);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    std::fprintf(stderr, "[archive] cannot open %s for append\n",
                 path.c_str());
    return false;
  }
  line += '\n';
  std::size_t written = std::fwrite(line.data(), 1, line.size(), f);
  bool ok = written == line.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[archive] short write to %s\n", path.c_str());
  return ok;
}

bool parse_run_record(const JsonValue& doc, RunRecord* out,
                      std::string* error) {
  if (!doc.is_object()) {
    if (error != nullptr) *error = "run record is not a JSON object";
    return false;
  }
  if (string_member(doc, "schema") != kRunRecordSchema) {
    if (error != nullptr)
      *error = "missing or unknown schema (want " +
               std::string(kRunRecordSchema) + ")";
    return false;
  }
  RunRecord record;
  record.bench = string_member(doc, "bench");
  if (record.bench.empty()) {
    if (error != nullptr) *error = "run record has no bench name";
    return false;
  }
  record.git_sha = string_member(doc, "git_sha");
  record.created_unix =
      static_cast<std::int64_t>(number_member(doc, "created_unix", 0.0));
  if (const JsonValue* seed = doc.find("seed"); seed != nullptr) {
    record.has_seed = true;
    record.seed = static_cast<std::uint64_t>(seed->number_or(0.0));
  }
  record.threads = static_cast<int>(number_member(doc, "threads", 1.0));
  record.fault_plan = string_member(doc, "fault_plan");
  record.items = number_member(doc, "items", 0.0);
  record.max_rss_kb =
      static_cast<long>(number_member(doc, "max_rss_kb", 0.0));
  record.digests = parse_digests(doc);
  if (const JsonValue* repeats = doc.find("repeats");
      repeats != nullptr && repeats->is_array()) {
    for (const JsonValue& r : repeats->items) {
      RepeatSample sample;
      sample.wall_seconds = number_member(r, "wall_seconds", 0.0);
      sample.user_seconds = number_member(r, "user_seconds", 0.0);
      sample.sys_seconds = number_member(r, "sys_seconds", 0.0);
      record.repeats.push_back(sample);
    }
  }
  if (const JsonValue* stages = doc.find("stage_wall_ms");
      stages != nullptr && stages->is_object()) {
    for (const auto& [stage, ms] : stages->members)
      record.stage_wall_ms.emplace_back(stage, ms.number_or(0.0));
  }
  if (const JsonValue* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_array()) {
    for (const JsonValue& m : metrics->items) {
      MetricSample sample;
      sample.name = string_member(m, "name");
      sample.kind = parse_metric_kind(string_member(m, "kind"))
                        .value_or(MetricKind::kCorrectness);
      sample.direction = parse_direction(string_member(m, "direction"))
                             .value_or(Direction::kExact);
      sample.unit = string_member(m, "unit");
      sample.value = number_member(m, "value", 0.0);
      sample.text = string_member(m, "text");
      sample.epsilon = number_member(m, "epsilon", 0.0);
      sample.abs_floor = number_member(m, "abs_floor", 0.0);
      if (!sample.name.empty()) record.metrics.push_back(std::move(sample));
    }
  }
  *out = std::move(record);
  return true;
}

bool load_run_records(const std::string& path, std::vector<RunRecord>* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  out->clear();
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::string parse_error;
    std::optional<JsonValue> doc = parse_json(line, &parse_error);
    RunRecord record;
    std::string record_error;
    if (!doc.has_value() ||
        !parse_run_record(*doc, &record, &record_error)) {
      if (error != nullptr)
        *error = path + ":" + std::to_string(line_number) + ": " +
                 (doc.has_value() ? record_error : parse_error);
      return false;
    }
    out->push_back(std::move(record));
  }
  return true;
}

bool prune_run_archive(const std::string& path, std::size_t keep,
                       std::size_t* kept, std::size_t* dropped,
                       std::string* error) {
  if (keep == 0) {
    if (error != nullptr) *error = "keep must be >= 1";
    return false;
  }
  std::vector<RunRecord> records;
  if (!load_run_records(path, &records, error)) return false;

  // The archive is append-only, so a bench's newest records are its
  // last lines: count per bench from the back, then emit survivors in
  // their original order.
  std::vector<char> survives(records.size(), 0);
  std::map<std::string, std::size_t> newest_seen;
  for (std::size_t i = records.size(); i-- > 0;)
    if (++newest_seen[records[i].bench] <= keep) survives[i] = 1;

  std::string doc;
  std::size_t kept_count = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!survives[i]) continue;
    doc += run_record_json(records[i]);
    doc += '\n';
    ++kept_count;
  }

  // Crash-safe rewrite: tmp sibling then atomic rename, so a kill at
  // any instant leaves either the old or the new archive, never a torn
  // one.
  std::string tmp = path + ".tmp";
  if (!write_text_file(tmp, doc)) {
    if (error != nullptr) *error = "cannot write " + tmp;
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " over " + path;
    std::remove(tmp.c_str());
    return false;
  }
  if (kept != nullptr) *kept = kept_count;
  if (dropped != nullptr) *dropped = records.size() - kept_count;
  return true;
}

Baseline baseline_from_record(const RunRecord& record) {
  Baseline baseline;
  baseline.bench = record.bench;
  baseline.git_sha = record.git_sha;
  baseline.created_unix = record.created_unix;
  baseline.has_seed = record.has_seed;
  baseline.seed = record.seed;
  baseline.threads = record.threads;
  baseline.fault_plan = record.fault_plan;
  for (const auto& [name, hex] : record.digests)
    if (is_provenance_digest(name)) baseline.digests.emplace_back(name, hex);

  std::vector<double> wall, cpu, ips;
  for (const RepeatSample& r : record.repeats) {
    wall.push_back(r.wall_seconds);
    cpu.push_back(r.user_seconds + r.sys_seconds);
    if (record.items > 0.0 && r.wall_seconds > 0.0)
      ips.push_back(record.items / r.wall_seconds);
  }
  const int n = static_cast<int>(record.repeats.size());
  auto perf = [&](const char* name, const std::vector<double>& samples,
                  Direction direction, const char* unit, double abs_floor) {
    if (samples.empty()) return;
    BaselineMetric m;
    m.name = name;
    m.kind = MetricKind::kPerf;
    m.direction = direction;
    m.unit = unit;
    m.median = median_of(samples);
    m.mad = mad_of(samples, m.median);
    m.n = n;
    m.abs_floor = abs_floor;
    baseline.metrics.push_back(std::move(m));
  };
  perf("wall_seconds", wall, Direction::kLowerIsBetter, "s", 0.05);
  perf("cpu_seconds", cpu, Direction::kLowerIsBetter, "s", 0.05);
  perf("items_per_second", ips, Direction::kHigherIsBetter, "items/s", 0.0);

  for (const MetricSample& sample : record.metrics) {
    BaselineMetric m;
    m.name = sample.name;
    m.kind = sample.kind;
    m.direction = sample.direction;
    m.unit = sample.unit;
    m.median = sample.value;
    m.n = 1;
    m.epsilon = sample.epsilon;
    m.abs_floor = sample.abs_floor;
    m.text = sample.text;
    baseline.metrics.push_back(std::move(m));
  }
  // Output digests from the manifest (drift report, ledgers) are digest
  // metrics: behavioral fingerprints gated under matching provenance.
  for (const auto& [name, hex] : record.digests) {
    if (is_provenance_digest(name)) continue;
    BaselineMetric m;
    m.name = "digest." + name;
    m.kind = MetricKind::kDigest;
    m.direction = Direction::kExact;
    m.text = hex;
    m.n = 1;
    baseline.metrics.push_back(std::move(m));
  }
  return baseline;
}

std::string baseline_json(const Baseline& baseline) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kBaselineSchema);
  w.key("bench").value(baseline.bench);
  w.key("created_unix").value(baseline.created_unix);
  w.key("git_sha").value(baseline.git_sha);
  w.key("provenance");
  w.begin_object();
  if (baseline.has_seed) w.key("seed").value(baseline.seed);
  w.key("threads").value(baseline.threads);
  w.key("fault_plan").value(baseline.fault_plan);
  emit_digests(w, baseline.digests);
  w.end_object();
  w.key("metrics");
  w.begin_array();
  for (const BaselineMetric& m : baseline.metrics) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("kind").value(metric_kind_name(m.kind));
    w.key("direction").value(direction_name(m.direction));
    if (!m.unit.empty()) w.key("unit").value(m.unit);
    if (m.kind == MetricKind::kDigest) {
      w.key("text").value(m.text);
    } else {
      w.key("median").value(m.median);
      w.key("mad").value(m.mad);
      w.key("n").value(m.n);
      if (m.abs_floor > 0.0) w.key("abs_floor").value(m.abs_floor);
      if (m.epsilon > 0.0) w.key("epsilon").value(m.epsilon);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool write_baseline(const std::string& path, const Baseline& baseline) {
  return write_text_file(path, baseline_json(baseline) + "\n");
}

bool parse_baseline(const JsonValue& doc, Baseline* out,
                    std::string* error) {
  if (!doc.is_object()) {
    if (error != nullptr) *error = "baseline is not a JSON object";
    return false;
  }
  if (string_member(doc, "schema") != kBaselineSchema) {
    if (error != nullptr)
      *error = "missing or unknown schema (want " +
               std::string(kBaselineSchema) + ")";
    return false;
  }
  Baseline baseline;
  baseline.bench = string_member(doc, "bench");
  if (baseline.bench.empty()) {
    if (error != nullptr) *error = "baseline has no bench name";
    return false;
  }
  baseline.git_sha = string_member(doc, "git_sha");
  baseline.created_unix =
      static_cast<std::int64_t>(number_member(doc, "created_unix", 0.0));
  if (const JsonValue* provenance = doc.find("provenance");
      provenance != nullptr && provenance->is_object()) {
    if (const JsonValue* seed = provenance->find("seed"); seed != nullptr) {
      baseline.has_seed = true;
      baseline.seed = static_cast<std::uint64_t>(seed->number_or(0.0));
    }
    baseline.threads =
        static_cast<int>(number_member(*provenance, "threads", 1.0));
    baseline.fault_plan = string_member(*provenance, "fault_plan");
    baseline.digests = parse_digests(*provenance);
  }
  if (const JsonValue* metrics = doc.find("metrics");
      metrics != nullptr && metrics->is_array()) {
    for (const JsonValue& m : metrics->items) {
      BaselineMetric metric;
      metric.name = string_member(m, "name");
      metric.kind = parse_metric_kind(string_member(m, "kind"))
                        .value_or(MetricKind::kPerf);
      metric.direction = parse_direction(string_member(m, "direction"))
                             .value_or(Direction::kLowerIsBetter);
      metric.unit = string_member(m, "unit");
      metric.median = number_member(m, "median", 0.0);
      metric.mad = number_member(m, "mad", 0.0);
      metric.n = static_cast<int>(number_member(m, "n", 0.0));
      metric.abs_floor = number_member(m, "abs_floor", 0.0);
      metric.epsilon = number_member(m, "epsilon", 0.0);
      metric.text = string_member(m, "text");
      if (!metric.name.empty()) baseline.metrics.push_back(std::move(metric));
    }
  }
  *out = std::move(baseline);
  return true;
}

bool load_baseline(const std::string& path, Baseline* out,
                   std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string parse_error;
  std::optional<JsonValue> doc = parse_json(buffer.str(), &parse_error);
  if (!doc.has_value()) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return false;
  }
  std::string baseline_error;
  if (!parse_baseline(*doc, out, &baseline_error)) {
    if (error != nullptr) *error = path + ": " + baseline_error;
    return false;
  }
  return true;
}

}  // namespace edgestab::obs
