// Fault ledger — the receipts for every injected or observed fault.
//
// src/fault decides *when* faults strike; the resilience policy in core
// decides what happens next (retry, quarantine, degrade). This ledger
// records both halves per experiment group: every dropout, corruption,
// straggler, retry, decode failure and quarantine, tallied per device,
// so a faulted run's manifest and drift report can account for exactly
// which coverage was lost and why. Like the flip ledger it is plain
// bookkeeping with a deterministic merge: events are canonically sorted
// before summarizing, so tallies and digest() are identical no matter
// how many pool lanes recorded them or in which order.
//
// Unlike FlipLedger (serialized by the DriftAuditor), events arrive
// directly from parallel lanes, so the ledger carries its own lock.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace edgestab::obs {

enum class FaultEventKind : int {
  kCaptureDropout = 0,    ///< capture produced nothing
  kTransientFailure = 1,  ///< device transiently failed a capture attempt
  kPayloadBitFlip = 2,    ///< delivery corrupted payload bits (detail: flips)
  kPayloadTruncation = 3, ///< delivery lost a payload tail (detail: bytes)
  kStragglerDelay = 4,    ///< delivery straggled (detail: ms, synthetic)
  kRetry = 5,             ///< bounded retry issued (detail: backoff ms)
  kDecodeFailure = 6,     ///< consumer could not decode the delivered bytes
  kShotLost = 7,          ///< shot unusable after all attempts (detail: tries)
  kQuarantine = 8,        ///< device quarantined (detail: consecutive losses)
  // Service-layer robustness events (src/service): load shedding,
  // deadline enforcement and the per-device circuit breaker.
  kShedOverload = 9,      ///< admission shed the shot (detail: backlog ms)
  kDeadlineTimeout = 10,  ///< modeled latency blew the budget (detail: ms over)
  kBreakerOpen = 11,      ///< breaker opened (detail: consecutive timeouts)
  kBreakerReject = 12,    ///< shot rejected while open (detail: cooldown left)
  kBreakerProbe = 13,     ///< half-open probe admitted (detail: 1 ok / 0 fail)
  kBreakerClose = 14,     ///< breaker closed after a clean probe streak
};

const char* fault_event_kind_name(FaultEventKind kind);

/// One fault occurrence at stable fleet coordinates. `detail` is
/// kind-dependent (see FaultEventKind).
struct FaultEvent {
  FaultEventKind kind = FaultEventKind::kCaptureDropout;
  int device = 0;   ///< environment / phone index within the run's fleet
  int item = 0;     ///< stimulus id
  int shot = 0;     ///< repeat index
  int attempt = 0;  ///< delivery / capture attempt the event belongs to
  bool recovered = false;  ///< a later attempt made the shot usable
  double detail = 0.0;
};

/// Per-device fault accounting within one group.
struct DeviceFaultRow {
  int device = 0;
  int dropouts = 0;
  int transient_failures = 0;
  int payload_bit_flips = 0;
  int payload_truncations = 0;
  int stragglers = 0;
  int retries = 0;
  int decode_failures = 0;
  int shots_lost = 0;
  int shed = 0;             ///< shots shed by service admission
  int deadline_timeouts = 0;
  int breaker_opens = 0;
  int breaker_rejects = 0;
  bool quarantined = false;
  int quarantined_from_item = -1;  ///< first item excluded by quarantine
  double total_delay_ms = 0.0;     ///< synthetic straggler + backoff time
};

/// Per-group summary over canonically ordered events.
struct FaultGroupSummary {
  std::string group;
  int total_events = 0;
  std::map<int, int> events_by_kind;  ///< FaultEventKind as int -> count
  std::vector<DeviceFaultRow> devices;  ///< sorted by device index
  int quarantined_devices = 0;
  int shots_lost = 0;

  /// Individual events, capped; `dropped_entries` counts the rest.
  std::vector<FaultEvent> entries;
  std::int64_t dropped_entries = 0;
};

/// Thread-safe accumulator of fault events per experiment group.
class FaultLedger {
 public:
  /// Max individual FaultEvent records kept per group in summaries;
  /// per-device tallies are exact regardless.
  static constexpr std::size_t kMaxEntriesPerGroup = 20000;

  static FaultLedger& global();

  FaultLedger() = default;

  void record(const std::string& group, const FaultEvent& event);

  /// Fold another ledger (a per-shard instance) into this one.
  void merge(const FaultLedger& other);

  std::vector<FaultGroupSummary> summaries() const;
  std::optional<FaultGroupSummary> find_group(const std::string& group) const;
  bool empty() const;

  /// Every raw event recorded under `group`, canonically sorted and
  /// never entry-capped (summaries cap at kMaxEntriesPerGroup; a
  /// checkpoint must not). Empty when the group is absent.
  std::vector<FaultEvent> export_group_raw(const std::string& group) const;

  /// Replace `group`'s raw events wholesale (checkpoint restore). An
  /// empty vector erases the group, so a restored ledger is
  /// indistinguishable from one that never saw the group.
  void import_group_raw(const std::string& group,
                        std::vector<FaultEvent> events);

  /// Stable fingerprint over all group tallies and canonically ordered
  /// events (for the provenance manifest digest).
  std::uint64_t digest() const;

  void clear();

 private:
  FaultGroupSummary build_summary(const std::string& group,
                                  std::vector<FaultEvent> events) const;

  mutable std::mutex mu_;
  std::map<std::string, std::vector<FaultEvent>> raw_;
};

}  // namespace edgestab::obs
