#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "image/metrics.h"
#include "obs/metrics.h"
#include "obs/obs.h"

namespace edgestab::obs {

namespace {

struct TapContext {
  const char* group = nullptr;
  int item = 0;
  int env = 0;
};
thread_local TapContext t_drift_ctx;

float clamp01(float v) { return v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v); }

// Per-channel mean/variance of the clamped-[0,1] view of an image.
void channel_stats(const Image& img, std::vector<double>& mean,
                   std::vector<double>& var) {
  mean.assign(static_cast<std::size_t>(img.channels()), 0.0);
  var.assign(static_cast<std::size_t>(img.channels()), 0.0);
  double inv = 1.0 / static_cast<double>(img.pixel_count());
  for (int c = 0; c < img.channels(); ++c) {
    double s = 0.0, ss = 0.0;
    for (float v : img.plane(c)) {
      double d = clamp01(v);
      s += d;
      ss += d * d;
    }
    double m = s * inv;
    mean[static_cast<std::size_t>(c)] = m;
    var[static_cast<std::size_t>(c)] = std::max(0.0, ss * inv - m * m);
  }
}

std::uint64_t scaled(double value, double scale) {
  double v = value * scale;
  if (!(v > 0.0)) return 0;  // NaN / negative => 0
  return static_cast<std::uint64_t>(std::llround(v));
}

int argmax(std::span<const float> v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

void softmax_into(std::span<const float> logits, std::vector<double>& out) {
  out.resize(logits.size());
  double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(static_cast<double>(logits[i]) - mx);
    sum += out[i];
  }
  for (double& p : out) p /= sum;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal storage

struct DriftAuditor::StoredImage {
  int width = 0, height = 0, channels = 0;
  int env = 0;
  std::vector<std::uint8_t> pixels;  // quantized clamped planar values
  std::vector<double> mean, var;     // exact stats of the clamped floats

  Image dequantize() const {
    Image img(width, height, channels);
    auto dst = img.data();
    for (std::size_t i = 0; i < pixels.size(); ++i)
      dst[i] = static_cast<float>(pixels[i]) / 255.0f;
    return img;
  }
};

struct DriftAuditor::StageSlot {
  StageDriftSummary summary;
  std::map<int, StoredImage> refs;  // item -> reference artifact
  Histogram* psnr_hist = nullptr;
  Histogram* ssim_hist = nullptr;
};

struct DriftAuditor::LogitSlot {
  LogitDriftSummary summary;
  std::map<int, std::pair<int, std::vector<float>>> refs;  // item -> (env, v)
  std::int64_t skipped = 0;
  Histogram* l2_hist = nullptr;
  Histogram* linf_hist = nullptr;
  Histogram* kl_hist = nullptr;
};

// ---------------------------------------------------------------------------
// DriftScope

DriftScope::DriftScope(const char* group, int item, int env)
    : prev_group_(t_drift_ctx.group),
      prev_item_(t_drift_ctx.item),
      prev_env_(t_drift_ctx.env) {
  t_drift_ctx = {group, item, env};
}

DriftScope::~DriftScope() {
  t_drift_ctx = {prev_group_, prev_item_, prev_env_};
}

// ---------------------------------------------------------------------------
// DriftAuditor

DriftAuditor& DriftAuditor::global() {
  static DriftAuditor* auditor = new DriftAuditor();  // never destroyed
  return *auditor;
}

void DriftAuditor::set_max_audited_items(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_audited_items_ = n;
}

void DriftAuditor::set_env_label(const std::string& group, int env,
                                 const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  env_labels_[group][env] = label;
}

std::string DriftAuditor::env_label(const std::string& group, int env) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto git = env_labels_.find(group);
  if (git != env_labels_.end()) {
    auto eit = git->second.find(env);
    if (eit != git->second.end()) return eit->second;
  }
  return "env" + std::to_string(env);
}

void DriftAuditor::tap_stage(int stage_index, const char* stage_name,
                             const Image& rgb) {
  if (!enabled() || rgb.empty()) return;
  const TapContext ctx = t_drift_ctx;
  if (ctx.group == nullptr) return;

  std::lock_guard<std::mutex> lock(mu_);
  std::string key =
      std::string(ctx.group) + '\x1f' + std::to_string(stage_index);
  auto& slot = stages_[key];
  if (slot == nullptr) {
    slot = std::make_unique<StageSlot>();
    slot->summary.group = ctx.group;
    slot->summary.stage_index = stage_index;
    slot->summary.stage = stage_name;
    std::string base = std::string("drift.") + ctx.group + "." + stage_name;
    slot->summary.psnr_metric = base + ".psnr_mdb";
    slot->summary.ssim_metric = base + ".ssim_loss_ppm";
    slot->psnr_hist =
        &MetricsRegistry::global().histogram(slot->summary.psnr_metric);
    slot->ssim_hist =
        &MetricsRegistry::global().histogram(slot->summary.ssim_metric);
  }

  auto it = slot->refs.find(ctx.item);
  if (it == slot->refs.end()) {
    // First environment to tap this (group, stage, item) becomes the
    // reference everyone else is compared against.
    if (slot->refs.size() >= max_audited_items_) {
      ++skipped_items_;
      return;
    }
    std::size_t bytes = rgb.size();
    if (ref_bytes_ + bytes > kMaxRefBytes) {
      ++skipped_bytes_items_;
      return;
    }
    StoredImage ref;
    ref.width = rgb.width();
    ref.height = rgb.height();
    ref.channels = rgb.channels();
    ref.env = ctx.env;
    ref.pixels.resize(rgb.size());
    auto src = rgb.data();
    for (std::size_t i = 0; i < src.size(); ++i)
      ref.pixels[i] =
          static_cast<std::uint8_t>(clamp01(src[i]) * 255.0f + 0.5f);
    channel_stats(rgb, ref.mean, ref.var);
    ref_bytes_ += bytes;
    slot->refs.emplace(ctx.item, std::move(ref));
    return;
  }

  const StoredImage& ref = it->second;
  if (ref.env == ctx.env) return;  // re-tap from the reference environment
  if (ref.width != rgb.width() || ref.height != rgb.height() ||
      ref.channels != rgb.channels())
    return;

  // Compare the clamped display-referred views: intermediate ISP stages
  // legitimately exceed [0,1]; what matters downstream is the visible
  // range, and the quantized reference only holds that anyway.
  Image cur(rgb.width(), rgb.height(), rgb.channels());
  auto src = rgb.data();
  auto dst = cur.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = clamp01(src[i]);
  Image ref_img = ref.dequantize();

  double m = mse(cur, ref_img);
  double psnr_db;
  if (m <= 0.0) {
    ++slot->summary.identical_pairs;
    psnr_db = kPsnrCapDb;
  } else {
    psnr_db = std::min(kPsnrCapDb, 10.0 * std::log10(1.0 / m));
  }
  double s = ssim(cur, ref_img);

  std::vector<double> mean, var;
  channel_stats(rgb, mean, var);
  double dmean = 0.0, dvar = 0.0;
  for (int c = 0; c < rgb.channels(); ++c) {
    dmean += std::abs(mean[static_cast<std::size_t>(c)] -
                      ref.mean[static_cast<std::size_t>(c)]);
    dvar += std::abs(var[static_cast<std::size_t>(c)] -
                     ref.var[static_cast<std::size_t>(c)]);
  }
  dmean /= rgb.channels();
  dvar /= rgb.channels();

  slot->summary.psnr_db.add(psnr_db);
  slot->summary.ssim.add(s);
  slot->summary.channel_mean_delta.add(dmean);
  slot->summary.channel_var_delta.add(dvar);
  slot->psnr_hist->record(scaled(psnr_db, 1000.0));        // milli-dB
  slot->ssim_hist->record(scaled(1.0 - s, 1e6));           // loss ppm
}

void DriftAuditor::record_logits(const std::string& group, int item, int env,
                                 std::span<const float> logits) {
  if (!enabled() || logits.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = logits_[group];
  if (slot == nullptr) {
    slot = std::make_unique<LogitSlot>();
    slot->summary.group = group;
    std::string base = "drift.logit." + group;
    slot->summary.l2_metric = base + ".l2_micro";
    slot->summary.linf_metric = base + ".linf_micro";
    slot->summary.kl_metric = base + ".kl_micro";
    slot->l2_hist =
        &MetricsRegistry::global().histogram(slot->summary.l2_metric);
    slot->linf_hist =
        &MetricsRegistry::global().histogram(slot->summary.linf_metric);
    slot->kl_hist =
        &MetricsRegistry::global().histogram(slot->summary.kl_metric);
  }

  auto it = slot->refs.find(item);
  if (it == slot->refs.end()) {
    if (slot->refs.size() >= kMaxLogitRefs) {
      ++slot->skipped;
      ++skipped_items_;
      return;
    }
    slot->refs.emplace(
        item, std::make_pair(env, std::vector<float>(logits.begin(),
                                                     logits.end())));
    return;
  }

  const auto& [ref_env, ref] = it->second;
  if (ref_env == env || ref.size() != logits.size()) return;

  double l2 = 0.0, linf = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    double d = static_cast<double>(logits[i]) - ref[i];
    l2 += d * d;
    linf = std::max(linf, std::abs(d));
  }
  l2 = std::sqrt(l2);

  std::vector<double> p_ref, p_cur;
  softmax_into(ref, p_ref);
  softmax_into(logits, p_cur);
  double kl = 0.0;
  for (std::size_t i = 0; i < p_ref.size(); ++i)
    kl += p_ref[i] * std::log((p_ref[i] + 1e-12) / (p_cur[i] + 1e-12));
  kl = std::max(0.0, kl);

  // Top-1 margin of the current environment: how far the winning logit
  // sits above the runner-up (small margin = flip-prone).
  int top1 = argmax(logits);
  double second = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < logits.size(); ++i)
    if (static_cast<int>(i) != top1)
      second = std::max(second, static_cast<double>(logits[i]));
  double margin = static_cast<double>(logits[static_cast<std::size_t>(top1)]) -
                  second;

  slot->summary.l2.add(l2);
  slot->summary.linf.add(linf);
  slot->summary.kl.add(kl);
  slot->summary.top1_margin.add(margin);
  ++slot->summary.comparisons;
  if (top1 == argmax(ref)) ++slot->summary.top1_agree;
  slot->l2_hist->record(scaled(l2, 1e6));
  slot->linf_hist->record(scaled(linf, 1e6));
  slot->kl_hist->record(scaled(kl, 1e6));
}

void DriftAuditor::record_flips(const std::string& group,
                                std::span<const FlipOutcome> outcomes) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.add_group(group, outcomes);
}

std::vector<StageDriftSummary> DriftAuditor::stage_summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageDriftSummary> out;
  out.reserve(stages_.size());
  for (const auto& [key, slot] : stages_) out.push_back(slot->summary);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.group != b.group ? a.group < b.group
                              : a.stage_index < b.stage_index;
  });
  return out;
}

std::vector<LogitDriftSummary> DriftAuditor::logit_summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogitDriftSummary> out;
  out.reserve(logits_.size());
  for (const auto& [group, slot] : logits_) out.push_back(slot->summary);
  return out;
}

std::int64_t DriftAuditor::skipped_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_items_;
}

std::int64_t DriftAuditor::skipped_bytes_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_bytes_items_;
}

void DriftAuditor::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
  logits_.clear();
  env_labels_.clear();
  ledger_.clear();
  ref_bytes_ = 0;
  skipped_items_ = 0;
  skipped_bytes_items_ = 0;
}

bool drift_enabled() {
  return kDriftCompiledIn && DriftAuditor::global().enabled();
}

}  // namespace edgestab::obs
