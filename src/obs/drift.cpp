#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string_view>

#include "image/metrics.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/telemetry/telemetry.h"

namespace edgestab::obs {

namespace {

struct TapContext {
  const char* group = nullptr;
  int item = 0;
  int env = 0;
};
thread_local TapContext t_drift_ctx;

// Groups whose drift environments index fleet devices: the capture
// rig(s) and the raw-pipeline audit tag taps with the phone index,
// software_isp tags with the ISP variant. Only device-indexed groups
// feed the health registry.
bool drift_env_is_device(const char* group) {
  const std::string_view g(group);
  return g.substr(0, 7) == "capture" || g == "raw_pipeline";
}

float clamp01(float v) { return v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v); }

// Per-channel mean/variance of the clamped-[0,1] view of an image.
void channel_stats(const Image& img, std::vector<double>& mean,
                   std::vector<double>& var) {
  mean.assign(static_cast<std::size_t>(img.channels()), 0.0);
  var.assign(static_cast<std::size_t>(img.channels()), 0.0);
  double inv = 1.0 / static_cast<double>(img.pixel_count());
  for (int c = 0; c < img.channels(); ++c) {
    double s = 0.0, ss = 0.0;
    for (float v : img.plane(c)) {
      double d = clamp01(v);
      s += d;
      ss += d * d;
    }
    double m = s * inv;
    mean[static_cast<std::size_t>(c)] = m;
    var[static_cast<std::size_t>(c)] = std::max(0.0, ss * inv - m * m);
  }
}

std::uint64_t scaled(double value, double scale) {
  double v = value * scale;
  if (!(v > 0.0)) return 0;  // NaN / negative => 0
  return static_cast<std::uint64_t>(std::llround(v));
}

int argmax(std::span<const float> v) {
  return static_cast<int>(std::max_element(v.begin(), v.end()) - v.begin());
}

void softmax_into(std::span<const float> logits, std::vector<double>& out) {
  out.resize(logits.size());
  double mx = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(static_cast<double>(logits[i]) - mx);
    sum += out[i];
  }
  for (double& p : out) p /= sum;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal storage

struct DriftAuditor::StoredImage {
  int width = 0, height = 0, channels = 0;
  int env = 0;
  std::vector<std::uint8_t> pixels;  // quantized clamped planar values
  std::vector<double> mean, var;     // exact stats of the clamped floats

  Image dequantize() const {
    Image img(width, height, channels);
    auto dst = img.data();
    for (std::size_t i = 0; i < pixels.size(); ++i)
      dst[i] = static_cast<float>(pixels[i]) / 255.0f;
    return img;
  }
};

// One completed comparison, staged until summary time. Folding the
// records in sorted (item, env) order makes every DriftStat (whose
// floating-point sums are association-order sensitive) independent of
// the order taps arrived in — the determinism contract parallel
// experiments rely on.
struct StageRecord {
  int item = 0;
  int env = 0;
  double psnr_db = 0.0;
  double ssim = 0.0;
  double mean_delta = 0.0;
  double var_delta = 0.0;
  bool identical = false;
};

struct LogitRecord {
  int item = 0;
  int env = 0;
  double l2 = 0.0;
  double linf = 0.0;
  double kl = 0.0;
  double top1_margin = 0.0;
  bool top1_agree = false;
};

template <typename Record>
void sort_records(std::vector<Record>& records) {
  std::sort(records.begin(), records.end(),
            [](const Record& a, const Record& b) {
              return a.item != b.item ? a.item < b.item : a.env < b.env;
            });
}

struct DriftAuditor::StageSlot {
  StageDriftSummary summary;        // static fields (names) only
  std::size_t item_cap = 0;         // id-based: audited iff item < cap
  std::map<int, StoredImage> refs;  // item -> reference artifact
  std::vector<StageRecord> records;
  Histogram* psnr_hist = nullptr;
  Histogram* ssim_hist = nullptr;
};

struct DriftAuditor::LogitSlot {
  LogitDriftSummary summary;  // static fields (names) only
  std::map<int, std::pair<int, std::vector<float>>> refs;  // item -> (env, v)
  std::vector<LogitRecord> records;
  std::int64_t skipped = 0;
  Histogram* l2_hist = nullptr;
  Histogram* linf_hist = nullptr;
  Histogram* kl_hist = nullptr;
};

// ---------------------------------------------------------------------------
// DriftScope

DriftScope::DriftScope(const char* group, int item, int env)
    : prev_group_(t_drift_ctx.group),
      prev_item_(t_drift_ctx.item),
      prev_env_(t_drift_ctx.env) {
  t_drift_ctx = {group, item, env};
}

DriftScope::~DriftScope() {
  t_drift_ctx = {prev_group_, prev_item_, prev_env_};
}

// ---------------------------------------------------------------------------
// DriftAuditor

DriftAuditor& DriftAuditor::global() {
  static DriftAuditor* auditor = new DriftAuditor();  // never destroyed
  return *auditor;
}

void DriftAuditor::set_max_audited_items(std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_audited_items_ = n;
}

void DriftAuditor::set_env_label(const std::string& group, int env,
                                 const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  env_labels_[group][env] = label;
}

std::string DriftAuditor::env_label(const std::string& group, int env) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto git = env_labels_.find(group);
  if (git != env_labels_.end()) {
    auto eit = git->second.find(env);
    if (eit != git->second.end()) return eit->second;
  }
  return "env" + std::to_string(env);
}

void DriftAuditor::tap_stage(int stage_index, const char* stage_name,
                             const Image& rgb) {
  if (!enabled() || rgb.empty()) return;
  const TapContext ctx = t_drift_ctx;
  if (ctx.group == nullptr) return;

  // Locked phase 1: resolve the slot and the stored reference. Slot and
  // reference map nodes are stable and references immutable once
  // inserted, so the pointers stay valid off-lock.
  StageSlot* slot = nullptr;
  const StoredImage* ref = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string key =
        std::string(ctx.group) + '\x1f' + std::to_string(stage_index);
    auto& owned = stages_[key];
    if (owned == nullptr) {
      owned = std::make_unique<StageSlot>();
      owned->summary.group = ctx.group;
      owned->summary.stage_index = stage_index;
      owned->summary.stage = stage_name;
      // Id-based audit cap: whichever image reaches the slot first fixes
      // the per-item byte cost (stages produce uniform shapes within a
      // group), and with it how many item ids fit the byte budget.
      owned->item_cap = std::min(
          max_audited_items_,
          std::max<std::size_t>(
              1, kMaxSlotRefBytes / std::max<std::size_t>(1, rgb.size())));
      std::string base = std::string("drift.") + ctx.group + "." + stage_name;
      owned->summary.psnr_metric = base + ".psnr_mdb";
      owned->summary.ssim_metric = base + ".ssim_loss_ppm";
      owned->psnr_hist =
          &MetricsRegistry::global().histogram(owned->summary.psnr_metric);
      owned->ssim_hist =
          &MetricsRegistry::global().histogram(owned->summary.ssim_metric);
    }
    slot = owned.get();

    if (ctx.item < 0 ||
        static_cast<std::size_t>(ctx.item) >= slot->item_cap) {
      // Over the id cap: count which limit bit. Audited-set membership
      // depends only on the item id, never on tap arrival order.
      if (ctx.item >= 0 &&
          static_cast<std::size_t>(ctx.item) < max_audited_items_)
        ++skipped_bytes_items_;
      else
        ++skipped_items_;
      return;
    }
    auto it = slot->refs.find(ctx.item);
    if (it != slot->refs.end()) ref = &it->second;
  }

  if (ref == nullptr) {
    // First environment to tap this (group, stage, item) becomes the
    // reference everyone else is compared against. Quantization and
    // stats run off-lock; per the ordering contract only one thread
    // sweeps a given item, so no other thread races this insert.
    StoredImage stored;
    stored.width = rgb.width();
    stored.height = rgb.height();
    stored.channels = rgb.channels();
    stored.env = ctx.env;
    stored.pixels.resize(rgb.size());
    auto src = rgb.data();
    for (std::size_t i = 0; i < src.size(); ++i)
      stored.pixels[i] =
          static_cast<std::uint8_t>(clamp01(src[i]) * 255.0f + 0.5f);
    channel_stats(rgb, stored.mean, stored.var);
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = slot->refs.emplace(ctx.item, std::move(stored));
    if (inserted) ref_bytes_ += rgb.size();
    return;
  }

  if (ref->env == ctx.env) return;  // re-tap from the reference environment
  if (ref->width != rgb.width() || ref->height != rgb.height() ||
      ref->channels != rgb.channels())
    return;

  // Off-lock phase 2: the expensive comparisons. Compare the clamped
  // display-referred views: intermediate ISP stages legitimately exceed
  // [0,1]; what matters downstream is the visible range, and the
  // quantized reference only holds that anyway.
  Image cur(rgb.width(), rgb.height(), rgb.channels());
  auto src = rgb.data();
  auto dst = cur.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = clamp01(src[i]);
  Image ref_img = ref->dequantize();

  StageRecord rec;
  rec.item = ctx.item;
  rec.env = ctx.env;
  double m = mse(cur, ref_img);
  if (m <= 0.0) {
    rec.identical = true;
    rec.psnr_db = kPsnrCapDb;
  } else {
    rec.psnr_db = std::min(kPsnrCapDb, 10.0 * std::log10(1.0 / m));
  }
  rec.ssim = ssim(cur, ref_img);

  std::vector<double> mean, var;
  channel_stats(rgb, mean, var);
  for (int c = 0; c < rgb.channels(); ++c) {
    rec.mean_delta += std::abs(mean[static_cast<std::size_t>(c)] -
                               ref->mean[static_cast<std::size_t>(c)]);
    rec.var_delta += std::abs(var[static_cast<std::size_t>(c)] -
                              ref->var[static_cast<std::size_t>(c)]);
  }
  rec.mean_delta /= rgb.channels();
  rec.var_delta /= rgb.channels();

  // Per-stage drift magnitude flows into the device health books when
  // the environment is a fleet device.
  if (telemetry_enabled() && drift_env_is_device(ctx.group)) {
    DeviceHealthRegistry::global().record_stage_drift(ctx.env, ctx.item,
                                                      rec.psnr_db);
  }

  // Histograms are integer-bucketed atomics — order-independent, no
  // lock needed. The record is staged for the summary-time sorted fold.
  slot->psnr_hist->record(scaled(rec.psnr_db, 1000.0));  // milli-dB
  slot->ssim_hist->record(scaled(1.0 - rec.ssim, 1e6));  // loss ppm
  std::lock_guard<std::mutex> lock(mu_);
  slot->records.push_back(rec);
}

void DriftAuditor::record_logits(const std::string& group, int item, int env,
                                 std::span<const float> logits) {
  if (!enabled() || logits.empty()) return;

  LogitSlot* slot = nullptr;
  const std::pair<int, std::vector<float>>* stored = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& owned = logits_[group];
    if (owned == nullptr) {
      owned = std::make_unique<LogitSlot>();
      owned->summary.group = group;
      std::string base = "drift.logit." + group;
      owned->summary.l2_metric = base + ".l2_micro";
      owned->summary.linf_metric = base + ".linf_micro";
      owned->summary.kl_metric = base + ".kl_micro";
      owned->l2_hist =
          &MetricsRegistry::global().histogram(owned->summary.l2_metric);
      owned->linf_hist =
          &MetricsRegistry::global().histogram(owned->summary.linf_metric);
      owned->kl_hist =
          &MetricsRegistry::global().histogram(owned->summary.kl_metric);
    }
    slot = owned.get();

    // Id-based cap, same arrival-order independence as stage refs.
    if (item < 0 || static_cast<std::size_t>(item) >= kMaxLogitRefs) {
      ++slot->skipped;
      ++skipped_items_;
      return;
    }
    auto it = slot->refs.find(item);
    if (it == slot->refs.end()) {
      slot->refs.emplace(
          item, std::make_pair(env, std::vector<float>(logits.begin(),
                                                       logits.end())));
      return;
    }
    stored = &it->second;
  }

  const auto& [ref_env, ref] = *stored;
  if (ref_env == env || ref.size() != logits.size()) return;

  double l2 = 0.0, linf = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    double d = static_cast<double>(logits[i]) - ref[i];
    l2 += d * d;
    linf = std::max(linf, std::abs(d));
  }
  l2 = std::sqrt(l2);

  std::vector<double> p_ref, p_cur;
  softmax_into(ref, p_ref);
  softmax_into(logits, p_cur);
  double kl = 0.0;
  for (std::size_t i = 0; i < p_ref.size(); ++i)
    kl += p_ref[i] * std::log((p_ref[i] + 1e-12) / (p_cur[i] + 1e-12));
  kl = std::max(0.0, kl);

  // Top-1 margin of the current environment: how far the winning logit
  // sits above the runner-up (small margin = flip-prone).
  int top1 = argmax(logits);
  double second = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < logits.size(); ++i)
    if (static_cast<int>(i) != top1)
      second = std::max(second, static_cast<double>(logits[i]));

  LogitRecord rec;
  rec.item = item;
  rec.env = env;
  rec.l2 = l2;
  rec.linf = linf;
  rec.kl = kl;
  rec.top1_margin =
      static_cast<double>(logits[static_cast<std::size_t>(top1)]) - second;
  rec.top1_agree = top1 == argmax(ref);

  slot->l2_hist->record(scaled(l2, 1e6));
  slot->linf_hist->record(scaled(linf, 1e6));
  slot->kl_hist->record(scaled(kl, 1e6));
  std::lock_guard<std::mutex> lock(mu_);
  slot->records.push_back(rec);
}

void DriftAuditor::record_flips(const std::string& group,
                                std::span<const FlipOutcome> outcomes) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ledger_.add_group(group, outcomes);
}

std::vector<StageDriftSummary> DriftAuditor::stage_summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<StageDriftSummary> out;
  out.reserve(stages_.size());
  for (const auto& [key, slot] : stages_) {
    StageDriftSummary s = slot->summary;
    // Fold staged records in sorted (item, env) order: float sums
    // associate identically no matter which thread compared what when.
    std::vector<StageRecord> records = slot->records;
    sort_records(records);
    for (const StageRecord& r : records) {
      s.psnr_db.add(r.psnr_db);
      s.ssim.add(r.ssim);
      s.channel_mean_delta.add(r.mean_delta);
      s.channel_var_delta.add(r.var_delta);
      if (r.identical) ++s.identical_pairs;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.group != b.group ? a.group < b.group
                              : a.stage_index < b.stage_index;
  });
  return out;
}

std::vector<LogitDriftSummary> DriftAuditor::logit_summaries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogitDriftSummary> out;
  out.reserve(logits_.size());
  for (const auto& [group, slot] : logits_) {
    LogitDriftSummary s = slot->summary;
    std::vector<LogitRecord> records = slot->records;
    sort_records(records);
    for (const LogitRecord& r : records) {
      s.l2.add(r.l2);
      s.linf.add(r.linf);
      s.kl.add(r.kl);
      s.top1_margin.add(r.top1_margin);
      ++s.comparisons;
      if (r.top1_agree) ++s.top1_agree;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::int64_t DriftAuditor::skipped_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_items_;
}

std::int64_t DriftAuditor::skipped_bytes_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return skipped_bytes_items_;
}

void DriftAuditor::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  stages_.clear();
  logits_.clear();
  env_labels_.clear();
  ledger_.clear();
  ref_bytes_ = 0;
  skipped_items_ = 0;
  skipped_bytes_items_ = 0;
}

bool drift_enabled() {
  return kDriftCompiledIn && DriftAuditor::global().enabled();
}

}  // namespace edgestab::obs
