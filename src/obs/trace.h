// In-process span tracing for the capture -> ISP -> codec -> inference
// pipeline.
//
// The paper's method is *attribution*: instability (and wall time) must be
// pinned on concrete pipeline stages. ScopedSpan records the interval a
// stage ran, per thread and with nesting depth, into lock-light per-thread
// buffers owned by the process-wide Tracer. Spans are exported as Chrome
// `trace_event` JSON (chrome://tracing, Perfetto) and, aggregated, as the
// per-stage latency histograms in MetricsRegistry.
//
// Instrumentation sites use the ES_TRACE_SCOPE macro from obs/obs.h, which
// compiles to nothing when EDGESTAB_TRACING is off — the classes here stay
// available in both builds so tooling and tests always link.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace edgestab::obs {

class Histogram;
struct TraceThreadBuffer;  // defined in trace.cpp

/// One completed span. `category`/`name` must be string literals (the
/// instrumentation macros guarantee this); events store the pointers only.
struct SpanEvent {
  const char* category = "";
  const char* name = "";
  std::uint64_t start_ns = 0;  ///< since Tracer construction (steady clock)
  std::uint64_t duration_ns = 0;
  std::uint32_t thread_id = 0;  ///< dense id assigned per recording thread
  std::uint16_t depth = 0;      ///< nesting depth within the thread
};

/// Process-wide span collector. Disabled by default: a bench (or test)
/// opts in with set_enabled(true); artifact-cache construction opts back
/// out around training loops with SuspendTracing.
///
/// Recording threads append to a small lock-free thread-local staging
/// vector that drains into their registered buffer every kFlushChunk
/// events, when the thread exits (the staging slot's destructor), or on
/// an explicit flush() — so short-lived worker threads never leave spans
/// stranded and the hot path takes the buffer mutex only once per chunk.
/// snapshot()/size()/dropped() flush the *calling* thread's staging
/// first, so a thread always sees its own spans immediately.
class Tracer {
 public:
  /// Hard cap per thread: a runaway loop degrades to dropped-event
  /// accounting instead of unbounded memory.
  static constexpr std::size_t kMaxEventsPerThread = 1u << 20;

  /// Staged events drained per mutex acquisition.
  static constexpr std::size_t kFlushChunk = 256;

  static Tracer& global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Nanoseconds since tracer construction (monotonic).
  std::uint64_t now_ns() const;

  void record(const SpanEvent& event);

  /// Drain the calling thread's staged events into its buffer. Exporters
  /// call this (after set_enabled(false)) so the exporting thread's tail
  /// of events lands deterministically; exited threads already flushed.
  void flush();

  /// Copy of every recorded event across all threads (exporter side).
  std::vector<SpanEvent> snapshot() const;

  /// Events discarded because a thread hit the per-thread event cap.
  std::uint64_t dropped() const;

  /// Number of events currently buffered.
  std::size_t size() const;

  /// Lower the per-thread event cap (tests exercise dropped-event
  /// accounting without recording a million spans). Applies to events
  /// recorded after the call.
  void set_max_events_per_thread(std::size_t n) {
    max_events_.store(n, std::memory_order_relaxed);
  }
  std::size_t max_events_per_thread() const {
    return max_events_.load(std::memory_order_relaxed);
  }

  void clear();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> max_events_{kMaxEventsPerThread};
  std::uint64_t epoch_ns_ = 0;

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<TraceThreadBuffer>> buffers_;
  std::uint32_t next_thread_id_ = 0;
};

/// RAII span: records [construction, destruction) into Tracer::global()
/// and, when a histogram is supplied, feeds the duration into it. Both
/// effects are skipped entirely when the tracer is disabled at
/// construction time, so suspended regions (e.g. cached-model training)
/// cost one relaxed atomic load per span.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name,
             Histogram* histogram = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* category_;
  const char* name_;
  Histogram* histogram_;
  std::uint64_t start_ns_ = 0;
  std::uint16_t depth_ = 0;
  bool active_ = false;
};

/// RAII guard that disables tracing — and the hot-path profiler — for a
/// region (nesting-safe). Used around one-time cached-artifact
/// construction, e.g. base-model pretraining, whose millions of forward
/// passes are not part of the run being measured and would otherwise
/// pollute profiles and allocation attribution.
class SuspendTracing {
 public:
  SuspendTracing();
  ~SuspendTracing();

  SuspendTracing(const SuspendTracing&) = delete;
  SuspendTracing& operator=(const SuspendTracing&) = delete;

 private:
  bool was_enabled_;
  bool profiler_was_enabled_;
};

/// Serialize every buffered span as Chrome trace_event JSON ("X" complete
/// events, timestamps in microseconds). Loadable in chrome://tracing and
/// https://ui.perfetto.dev. Returns the document; write_chrome_trace()
/// writes it to a path and reports I/O failure.
std::string chrome_trace_json(const Tracer& tracer);
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace edgestab::obs
