// Divergence auditor — per-stage drift attribution across the fleet.
//
// The paper attributes cross-device prediction divergence to pipeline
// stages (compression, ISP, OS/processor — §5). This auditor makes that
// attribution observable in every bench: while an experiment replays the
// *same* stimulus through several environments, taps inside the ISP and
// the classifier compare each environment's intermediate artifact
// against the first environment that produced one (the reference phone)
// and fold the divergence into MetricsRegistry histograms:
//
//   ES_DRIFT_SCOPE("capture", stimulus_id, phone_index);  // RAII context
//   ...
//   ES_DRIFT_STAGE(2, "white_balance", rgb);  // inside run_isp
//
// Stage taps record PSNR, SSIM and per-channel mean/variance deltas;
// logit taps (record_logits) record L2 / L-inf drift, KL divergence and
// top-1 agreement vs. the reference environment. The prediction-flip
// ledger (flip_ledger.h) rides along on the same singleton so exporters
// can emit one coherent <name>.drift.json + HTML fleet report.
//
// Build flavors: with -DEDGESTAB_DRIFT=OFF the macros compile to
// `((void)0)` and `kDriftCompiledIn` is false, but the classes remain
// linked (and unit-testable) in both flavors — mirroring the tracing
// design. With drift compiled in, a disabled auditor costs one relaxed
// atomic load per tap.
//
// Memory: references are stored u8-quantized (the comparison target is
// the clamped [0,1] display range anyway) and capped per (group, stage).
// Caps are id-based so the audited set never depends on tap arrival
// order: an item is audited iff its id is below both max_audited_items
// and the slot's byte-derived cap (kMaxSlotRefBytes / reference image
// bytes). Taps beyond the caps are counted, not stored.
//
// Parallelism: taps may arrive from any thread. The expensive image
// comparisons (SSIM/MSE/channel stats) run outside the auditor mutex —
// stored references are immutable once inserted — and each comparison is
// staged as a per-(item, env) record; summaries fold the records in
// sorted (item, env) order, so the reported statistics are bit-identical
// at every thread count. The one ordering contract callers must keep:
// one item's environments tap serially (the reference is whichever env
// taps the item first). The parallel runtime therefore fans out across
// items, never across one item's environment sweep.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "image/image.h"
#include "obs/flip_ledger.h"

namespace edgestab::obs {

/// Accumulated distribution of one scalar drift metric.
struct DriftStat {
  std::int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void add(double v) {
    if (count == 0) {
      min = max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    sum += v;
  }
  double mean() const { return count > 0 ? sum / count : 0.0; }
};

/// Pairwise image drift accumulated for one (group, stage).
struct StageDriftSummary {
  std::string group;
  int stage_index = 0;
  std::string stage;
  DriftStat psnr_db;       ///< capped at kPsnrCapDb for identical images
  DriftStat ssim;
  DriftStat channel_mean_delta;  ///< mean over channels of |Δmean|
  DriftStat channel_var_delta;   ///< mean over channels of |Δvar|
  std::int64_t identical_pairs = 0;  ///< comparisons with zero MSE
  /// Histogram names registered with MetricsRegistry (empty until the
  /// first comparison): drift.<group>.<stage>.psnr_mdb / .ssim_loss_ppm.
  std::string psnr_metric;
  std::string ssim_metric;
};

/// Pairwise logit drift accumulated for one group.
struct LogitDriftSummary {
  std::string group;
  DriftStat l2;
  DriftStat linf;
  DriftStat kl;          ///< KL(softmax(ref) || softmax(cur))
  DriftStat top1_margin; ///< top1 - top2 logit gap of the *current* env
  std::int64_t comparisons = 0;
  std::int64_t top1_agree = 0;  ///< comparisons where argmax matched ref
  std::string l2_metric, linf_metric, kl_metric;
};

/// Thread-local tap context: which (group, item, env) subsequent
/// ES_DRIFT_STAGE taps on this thread belong to. Nestable; destructor
/// restores the previous context.
class DriftScope {
 public:
  DriftScope(const char* group, int item, int env);
  ~DriftScope();
  DriftScope(const DriftScope&) = delete;
  DriftScope& operator=(const DriftScope&) = delete;

 private:
  const char* prev_group_;
  int prev_item_;
  int prev_env_;
};

/// Process-wide divergence auditor. Bookkeeping (slot/reference maps,
/// staged comparison records) is mutex-serialized; image comparisons run
/// off-lock against immutable stored references; `enabled()` is a
/// relaxed atomic so disabled taps stay cheap. Summaries fold staged
/// records in sorted (item, env) order — deterministic at any thread
/// count (see the file comment for the caller-side ordering contract).
class DriftAuditor {
 public:
  static constexpr double kPsnrCapDb = 99.0;
  static constexpr std::size_t kDefaultMaxAuditedItems = 256;
  static constexpr std::size_t kMaxSlotRefBytes = 32ull << 20;
  static constexpr std::size_t kMaxLogitRefs = 65536;

  static DriftAuditor& global();

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Cap on distinct items whose reference artifact is retained per
  /// (group, stage). The cap is on the item *id* (audited iff
  /// id < cap) so the audited set is arrival-order independent;
  /// comparisons for items beyond it are skipped and counted in
  /// skipped_items().
  void set_max_audited_items(std::size_t n);

  /// Human-readable environment label (phone / ISP / condition name)
  /// used by the report tables.
  void set_env_label(const std::string& group, int env,
                     const std::string& label);
  std::string env_label(const std::string& group, int env) const;

  /// Compare `rgb` for the current DriftScope context against the
  /// reference environment's artifact for the same (group, stage, item).
  /// The first environment to tap becomes the reference. No-op without
  /// an active scope or when disabled.
  void tap_stage(int stage_index, const char* stage_name, const Image& rgb);

  /// Compare one environment's logit vector for `item` against the
  /// reference environment's. The first environment recorded per
  /// (group, item) becomes the reference.
  void record_logits(const std::string& group, int item, int env,
                     std::span<const float> logits);

  FlipLedger& ledger() { return ledger_; }
  const FlipLedger& ledger() const { return ledger_; }
  /// Serialized wrapper so experiment code does not race report export.
  void record_flips(const std::string& group,
                    std::span<const FlipOutcome> outcomes);

  std::vector<StageDriftSummary> stage_summaries() const;
  std::vector<LogitDriftSummary> logit_summaries() const;
  std::int64_t skipped_items() const;
  std::int64_t skipped_bytes_items() const;

  /// Drop all accumulated state (refs, summaries, ledger, labels).
  /// Leaves enabled() untouched.
  void clear();

 private:
  DriftAuditor() = default;

  struct StoredImage;
  struct StageKey;
  struct StageSlot;
  struct LogitSlot;

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::size_t max_audited_items_ = kDefaultMaxAuditedItems;
  std::size_t ref_bytes_ = 0;
  std::int64_t skipped_items_ = 0;
  std::int64_t skipped_bytes_items_ = 0;

  std::map<std::string, std::unique_ptr<StageSlot>> stages_;   // by group.stage
  std::map<std::string, std::unique_ptr<LogitSlot>> logits_;   // by group
  std::map<std::string, std::map<int, std::string>> env_labels_;
  FlipLedger ledger_;
};

/// True when drift support is compiled in AND the auditor is enabled.
bool drift_enabled();

}  // namespace edgestab::obs

// drift.h is usable without the obs.h umbrella; keep the token-paste
// helper available either way (identical definition, no redefinition).
#ifndef ES_OBS_CONCAT
#define ES_OBS_CONCAT_INNER(a, b) a##b
#define ES_OBS_CONCAT(a, b) ES_OBS_CONCAT_INNER(a, b)
#endif

#ifdef EDGESTAB_DRIFT

#define ES_DRIFT_SCOPE(group, item, env)                                   \
  ::edgestab::obs::DriftScope ES_OBS_CONCAT(es_drift_scope_,               \
                                            __LINE__)(group, item, env)

#define ES_DRIFT_STAGE(index, name, image)                                 \
  do {                                                                     \
    if (::edgestab::obs::DriftAuditor::global().enabled())                 \
      ::edgestab::obs::DriftAuditor::global().tap_stage(index, name,       \
                                                        image);            \
  } while (0)

#else

#define ES_DRIFT_SCOPE(group, item, env) ((void)0)
#define ES_DRIFT_STAGE(index, name, image) ((void)0)

#endif  // EDGESTAB_DRIFT
