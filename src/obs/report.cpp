#include "obs/report.h"

#include <cstdio>
#include <string>
#include <vector>

#include "obs/fault_ledger.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/profiler.h"
#include "obs/telemetry/anomaly.h"
#include "obs/telemetry/fleet_report.h"
#include "obs/telemetry/telemetry.h"
#include "obs/timeline/timeline.h"
#include "obs/timeline/timeline_report.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/csv.h"
#include "util/hashing.h"

namespace edgestab::obs {

namespace {

bool write_text_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[obs] short write to %s\n", path.c_str());
  return ok;
}

void emit_stat(JsonWriter& w, const char* key, const DriftStat& s) {
  w.key(key);
  w.begin_object();
  w.key("count").value(static_cast<std::int64_t>(s.count));
  w.key("mean").value(s.mean());
  w.key("min").value(s.min);
  w.key("max").value(s.max);
  w.end_object();
}

// p50/p95/p99 from the registry histogram the auditor fed, converted
// back from its integer unit (milli-dB, ppm, micro).
struct Quantiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  bool valid = false;
};

Quantiles quantiles_of(const std::string& metric, double scale) {
  Quantiles q;
  if (metric.empty()) return q;
  Histogram& h = MetricsRegistry::global().histogram(metric);
  if (h.count() == 0) return q;
  q.p50 = h.p50() / scale;
  q.p95 = h.p95() / scale;
  q.p99 = h.p99() / scale;
  q.valid = true;
  return q;
}

void emit_quantiles(JsonWriter& w, const char* key, const Quantiles& q) {
  w.key(key);
  w.begin_object();
  w.key("p50").value(q.p50);
  w.key("p95").value(q.p95);
  w.key("p99").value(q.p99);
  w.end_object();
}

std::string fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void td(std::string& html, const std::string& v, bool left = false) {
  html += left ? "<td class=l>" : "<td>";
  html += html_escape(v);
  html += "</td>";
}

}  // namespace

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string drift_json(const DriftAuditor& auditor,
                       const std::string& bench_name) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("edgestab-drift-report-v1");
  w.key("bench").value(bench_name);
  w.key("drift_compiled_in").value(kDriftCompiledIn);
  w.key("skipped_items").value(
      static_cast<std::int64_t>(auditor.skipped_items()));
  w.key("skipped_ref_bytes_items")
      .value(static_cast<std::int64_t>(auditor.skipped_bytes_items()));

  w.key("stage_drift");
  w.begin_array();
  for (const StageDriftSummary& s : auditor.stage_summaries()) {
    w.begin_object();
    w.key("group").value(s.group);
    w.key("stage_index").value(s.stage_index);
    w.key("stage").value(s.stage);
    w.key("comparisons").value(static_cast<std::int64_t>(s.psnr_db.count));
    w.key("identical_pairs")
        .value(static_cast<std::int64_t>(s.identical_pairs));
    emit_stat(w, "psnr_db", s.psnr_db);
    emit_quantiles(w, "psnr_db_quantiles", quantiles_of(s.psnr_metric, 1e3));
    emit_stat(w, "ssim", s.ssim);
    emit_quantiles(w, "ssim_loss_quantiles",
                   quantiles_of(s.ssim_metric, 1e6));
    emit_stat(w, "channel_mean_delta", s.channel_mean_delta);
    emit_stat(w, "channel_var_delta", s.channel_var_delta);
    w.end_object();
  }
  w.end_array();

  w.key("logit_drift");
  w.begin_array();
  for (const LogitDriftSummary& s : auditor.logit_summaries()) {
    w.begin_object();
    w.key("group").value(s.group);
    w.key("comparisons").value(static_cast<std::int64_t>(s.comparisons));
    w.key("top1_agree").value(static_cast<std::int64_t>(s.top1_agree));
    w.key("top1_agreement")
        .value(s.comparisons > 0
                   ? static_cast<double>(s.top1_agree) / s.comparisons
                   : 0.0);
    emit_stat(w, "l2", s.l2);
    emit_quantiles(w, "l2_quantiles", quantiles_of(s.l2_metric, 1e6));
    emit_stat(w, "linf", s.linf);
    emit_quantiles(w, "linf_quantiles", quantiles_of(s.linf_metric, 1e6));
    emit_stat(w, "kl", s.kl);
    emit_quantiles(w, "kl_quantiles", quantiles_of(s.kl_metric, 1e6));
    emit_stat(w, "top1_margin", s.top1_margin);
    w.end_object();
  }
  w.end_array();

  w.key("flip_ledger");
  w.begin_array();
  for (const LedgerGroupSummary& g : auditor.ledger().summaries()) {
    w.begin_object();
    w.key("group").value(g.group);
    w.key("total_items").value(g.total_items);
    w.key("unstable_items").value(g.unstable_items);
    w.key("all_correct_items").value(g.all_correct_items);
    w.key("all_incorrect_items").value(g.all_incorrect_items);
    w.key("instability").value(g.instability());
    w.key("flips_by_class");
    w.begin_array();
    for (const auto& [cls, flips] : g.flips_by_class) {
      w.begin_object();
      w.key("class_id").value(cls);
      w.key("flip_pairs").value(flips);
      auto it = g.unstable_by_class.find(cls);
      w.key("unstable_items")
          .value(it != g.unstable_by_class.end() ? it->second : 0);
      w.end_object();
    }
    w.end_array();
    w.key("flips_by_pair");
    w.begin_array();
    for (const auto& [pair, flips] : g.flips_by_pair) {
      w.begin_object();
      w.key("env_correct").value(pair.first);
      w.key("env_correct_label").value(auditor.env_label(g.group, pair.first));
      w.key("env_incorrect").value(pair.second);
      w.key("env_incorrect_label")
          .value(auditor.env_label(g.group, pair.second));
      w.key("flip_pairs").value(flips);
      w.end_object();
    }
    w.end_array();
    w.key("entries_recorded")
        .value(static_cast<std::int64_t>(g.entries.size()));
    w.key("entries_dropped").value(g.dropped_entries);
    w.end_object();
  }
  w.end_array();

  // Only faulted runs carry the section — a clean run's report stays
  // byte-identical to one from a tree without fault injection.
  const std::vector<FaultGroupSummary> fault_groups =
      FaultLedger::global().summaries();
  if (fault_groups.empty()) {
    w.end_object();
    return w.take();
  }
  w.key("fault_ledger");
  w.begin_array();
  for (const FaultGroupSummary& g : fault_groups) {
    w.begin_object();
    w.key("group").value(g.group);
    w.key("total_events").value(g.total_events);
    w.key("shots_lost").value(g.shots_lost);
    w.key("quarantined_devices").value(g.quarantined_devices);
    w.key("events_by_kind");
    w.begin_array();
    for (const auto& [kind, n] : g.events_by_kind) {
      w.begin_object();
      w.key("kind").value(
          fault_event_kind_name(static_cast<FaultEventKind>(kind)));
      w.key("count").value(n);
      w.end_object();
    }
    w.end_array();
    w.key("devices");
    w.begin_array();
    for (const DeviceFaultRow& row : g.devices) {
      w.begin_object();
      w.key("device").value(row.device);
      w.key("device_label").value(auditor.env_label(g.group, row.device));
      w.key("dropouts").value(row.dropouts);
      w.key("transient_failures").value(row.transient_failures);
      w.key("payload_bit_flips").value(row.payload_bit_flips);
      w.key("payload_truncations").value(row.payload_truncations);
      w.key("stragglers").value(row.stragglers);
      w.key("retries").value(row.retries);
      w.key("decode_failures").value(row.decode_failures);
      w.key("shots_lost").value(row.shots_lost);
      w.key("quarantined").value(row.quarantined);
      w.key("quarantined_from_item").value(row.quarantined_from_item);
      w.key("total_delay_ms").value(row.total_delay_ms);
      w.end_object();
    }
    w.end_array();
    w.key("entries_recorded")
        .value(static_cast<std::int64_t>(g.entries.size()));
    w.key("entries_dropped").value(g.dropped_entries);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.take();
}

std::string drift_html(const DriftAuditor& auditor,
                       const std::string& bench_name) {
  std::string html;
  html +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n<title>drift "
      "report: " +
      html_escape(bench_name) + "</title>\n<style>\n";
  html +=
      "body{font:14px/1.45 system-ui,sans-serif;margin:2em;color:#222}\n"
      "table{border-collapse:collapse;margin:0.7em 0}\n"
      "th,td{border:1px solid #bbb;padding:4px 10px;text-align:right}\n"
      "th{background:#f0f0f0}td.l,th.l{text-align:left}\n"
      "h2{margin-top:1.6em}.small{color:#666;font-size:12px}\n";
  html += "</style></head><body>\n";
  html += "<h1>Fleet drift report &mdash; " + html_escape(bench_name) +
          "</h1>\n";
  html +=
      "<p class=small>Each environment's intermediate artifacts are compared "
      "against the first environment that produced them (the reference "
      "phone). Flip-ledger totals follow the exact item bookkeeping of "
      "core/instability.</p>\n";

  // --- Drift by ISP stage -------------------------------------------------
  html += "<h2>Drift by ISP stage</h2>\n<table id=\"stage-drift\">\n";
  html +=
      "<tr><th class=l>group</th><th class=l>stage</th><th>pairs</th>"
      "<th>identical</th><th>PSNR mean (dB)</th><th>PSNR p50</th>"
      "<th>PSNR p95</th><th>SSIM mean</th><th>SSIM min</th>"
      "<th>|&Delta;mean|</th><th>|&Delta;var|</th></tr>\n";
  for (const StageDriftSummary& s : auditor.stage_summaries()) {
    Quantiles q = quantiles_of(s.psnr_metric, 1e3);
    html += "<tr>";
    td(html, s.group, true);
    td(html, s.stage, true);
    td(html, std::to_string(s.psnr_db.count));
    td(html, std::to_string(s.identical_pairs));
    td(html, fmt(s.psnr_db.mean(), 2));
    td(html, fmt(q.p50, 2));
    td(html, fmt(q.p95, 2));
    td(html, fmt(s.ssim.mean(), 4));
    td(html, fmt(s.ssim.count > 0 ? s.ssim.min : 0.0, 4));
    td(html, fmt(s.channel_mean_delta.mean(), 5));
    td(html, fmt(s.channel_var_delta.mean(), 5));
    html += "</tr>\n";
  }
  html += "</table>\n";

  // --- Logit drift --------------------------------------------------------
  html += "<h2>Logit drift</h2>\n<table id=\"logit-drift\">\n";
  html +=
      "<tr><th class=l>group</th><th>pairs</th><th>top-1 agreement</th>"
      "<th>L2 mean</th><th>L&infin; mean</th><th>KL mean</th>"
      "<th>top-1 margin mean</th></tr>\n";
  for (const LogitDriftSummary& s : auditor.logit_summaries()) {
    html += "<tr>";
    td(html, s.group, true);
    td(html, std::to_string(s.comparisons));
    td(html,
       fmt(s.comparisons > 0
               ? 100.0 * static_cast<double>(s.top1_agree) / s.comparisons
               : 0.0,
           1) +
           "%");
    td(html, fmt(s.l2.mean(), 4));
    td(html, fmt(s.linf.mean(), 4));
    td(html, fmt(s.kl.mean(), 5));
    td(html, fmt(s.top1_margin.mean(), 4));
    html += "</tr>\n";
  }
  html += "</table>\n";

  // --- Logit drift distribution ------------------------------------------
  html += "<h2>Logit drift distribution</h2>\n<table id=\"logit-dist\">\n";
  html +=
      "<tr><th class=l>group</th><th class=l>metric</th><th>p50</th>"
      "<th>p95</th><th>p99</th><th>max</th></tr>\n";
  for (const LogitDriftSummary& s : auditor.logit_summaries()) {
    struct Row {
      const char* metric;
      const std::string* name;
      const DriftStat* stat;
    } rows[] = {{"L2", &s.l2_metric, &s.l2},
                {"Linf", &s.linf_metric, &s.linf},
                {"KL", &s.kl_metric, &s.kl}};
    for (const Row& r : rows) {
      Quantiles q = quantiles_of(*r.name, 1e6);
      html += "<tr>";
      td(html, s.group, true);
      td(html, r.metric, true);
      td(html, fmt(q.p50, 5));
      td(html, fmt(q.p95, 5));
      td(html, fmt(q.p99, 5));
      td(html, fmt(r.stat->count > 0 ? r.stat->max : 0.0, 5));
      html += "</tr>\n";
    }
  }
  html += "</table>\n";

  // --- Prediction flips ---------------------------------------------------
  html += "<h2>Prediction flips</h2>\n";
  for (const LedgerGroupSummary& g : auditor.ledger().summaries()) {
    html += "<h3>" + html_escape(g.group) + "</h3>\n";
    html += "<table class=\"flip-summary\">\n";
    html +=
        "<tr><th>items</th><th>unstable</th><th>instability</th>"
        "<th>all correct</th><th>all incorrect</th><th>flip pairs "
        "recorded</th><th>dropped</th></tr>\n<tr>";
    td(html, std::to_string(g.total_items));
    td(html, std::to_string(g.unstable_items));
    td(html, fmt(100.0 * g.instability(), 2) + "%");
    td(html, std::to_string(g.all_correct_items));
    td(html, std::to_string(g.all_incorrect_items));
    td(html, std::to_string(g.entries.size()));
    td(html, std::to_string(g.dropped_entries));
    html += "</tr>\n</table>\n";

    if (!g.flips_by_class.empty()) {
      html += "<table class=\"flips-by-class\">\n";
      html +=
          "<tr><th>class</th><th>unstable items</th><th>flip pairs</th>"
          "</tr>\n";
      for (const auto& [cls, flips] : g.flips_by_class) {
        auto it = g.unstable_by_class.find(cls);
        html += "<tr>";
        td(html, std::to_string(cls));
        td(html,
           std::to_string(it != g.unstable_by_class.end() ? it->second : 0));
        td(html, std::to_string(flips));
        html += "</tr>\n";
      }
      html += "</table>\n";
    }

    if (!g.flips_by_pair.empty()) {
      html += "<table class=\"flips-by-pair\">\n";
      html +=
          "<tr><th class=l>correct env</th><th class=l>incorrect env</th>"
          "<th>flip pairs</th></tr>\n";
      for (const auto& [pair, flips] : g.flips_by_pair) {
        html += "<tr>";
        td(html, auditor.env_label(g.group, pair.first), true);
        td(html, auditor.env_label(g.group, pair.second), true);
        td(html, std::to_string(flips));
        html += "</tr>\n";
      }
      html += "</table>\n";
    }
  }

  // --- Fault accounting ---------------------------------------------------
  std::vector<FaultGroupSummary> fault_groups =
      FaultLedger::global().summaries();
  if (!fault_groups.empty()) {
    html += "<h2>Fault accounting</h2>\n";
    for (const FaultGroupSummary& g : fault_groups) {
      html += "<h3>" + html_escape(g.group) + "</h3>\n";
      html += "<table class=\"fault-summary\">\n";
      html +=
          "<tr><th>events</th><th>shots lost</th>"
          "<th>quarantined devices</th></tr>\n<tr>";
      td(html, std::to_string(g.total_events));
      td(html, std::to_string(g.shots_lost));
      td(html, std::to_string(g.quarantined_devices));
      html += "</tr>\n</table>\n";

      html += "<table class=\"fault-devices\">\n";
      html +=
          "<tr><th class=l>device</th><th>dropouts</th><th>transient</th>"
          "<th>bit flips</th><th>truncations</th><th>stragglers</th>"
          "<th>retries</th><th>decode fail</th><th>shots lost</th>"
          "<th>quarantined</th><th>delay ms</th></tr>\n";
      for (const DeviceFaultRow& row : g.devices) {
        html += "<tr>";
        td(html, auditor.env_label(g.group, row.device), true);
        td(html, std::to_string(row.dropouts));
        td(html, std::to_string(row.transient_failures));
        td(html, std::to_string(row.payload_bit_flips));
        td(html, std::to_string(row.payload_truncations));
        td(html, std::to_string(row.stragglers));
        td(html, std::to_string(row.retries));
        td(html, std::to_string(row.decode_failures));
        td(html, std::to_string(row.shots_lost));
        td(html, row.quarantined
                     ? "from item " + std::to_string(row.quarantined_from_item)
                     : "no");
        td(html, fmt(row.total_delay_ms, 1));
        html += "</tr>\n";
      }
      html += "</table>\n";
    }
  }

  html += "</body></html>\n";
  return html;
}

bool write_drift_report(const DriftAuditor& auditor,
                        const std::string& bench_name, const std::string& dir,
                        RunManifest* manifest) {
  std::string json = drift_json(auditor, bench_name);
  std::string json_file = bench_name + ".drift.json";
  std::string html_file = bench_name + ".drift.html";
  bool ok = write_text_file(dir + "/" + json_file, json);
  ok = write_text_file(dir + "/" + html_file,
                       drift_html(auditor, bench_name)) &&
       ok;
  if (ok) {
    std::printf("[drift] %s/%s + %s\n", dir.c_str(), json_file.c_str(),
                html_file.c_str());
  }
  if (manifest != nullptr) {
    manifest->add_digest("drift_report", fnv1a64(json));
    manifest->add_digest("drift_flip_ledger", auditor.ledger().digest());
    if (ok) {
      manifest->add_artifact(json_file);
      manifest->add_artifact(html_file);
    }
  }
  return ok;
}

bool export_run_artifacts(const std::string& bench_name,
                          const std::string& dir, RunManifest& manifest) {
  bool ok = true;
  if (kTracingCompiledIn) {
    Tracer& tracer = Tracer::global();
    // Freeze and flush: no span may race the export, and the exporting
    // thread's staged events must land before the snapshot (worker
    // threads flushed their staging when they exited).
    tracer.set_enabled(false);
    tracer.flush();

    std::string timing_file = bench_name + "_stage_timing.csv";
    std::string timing_path = dir + "/" + timing_file;
    try {
      stage_timing_csv(MetricsRegistry::global()).write_file(timing_path);
      std::printf("[csv] %s\n", timing_path.c_str());
      manifest.add_artifact(timing_file);
    } catch (const CheckError& e) {
      std::fprintf(stderr, "[csv] FAILED %s: %s\n", timing_path.c_str(),
                   e.what());
      ok = false;
    }

    std::string trace_file = bench_name + ".trace.json";
    if (write_chrome_trace(tracer, dir + "/" + trace_file)) {
      std::printf("[trace] %s/%s (%zu spans, %llu dropped)\n", dir.c_str(),
                  trace_file.c_str(), tracer.size(),
                  static_cast<unsigned long long>(tracer.dropped()));
      manifest.add_artifact(trace_file);
    } else {
      ok = false;
    }
    if (tracer.dropped() > 0) {
      std::fprintf(stderr,
                   "[trace] %llu span events dropped (per-thread buffer "
                   "full) — the trace is incomplete\n",
                   static_cast<unsigned long long>(tracer.dropped()));
      // Recorded only when non-zero so a clean run's meta.json stays
      // byte-identical to one from before drop accounting existed.
      manifest.set_field("trace_dropped_spans",
                         static_cast<double>(tracer.dropped()));
      ok = false;
    }
  }

  // Profile artifacts are exported whenever a profiler was armed this
  // run (the --profile flag); an unarmed run writes nothing, keeping its
  // artifact set byte-identical to a profile-less build.
  if (kProfileCompiledIn && Profiler::global().armed()) {
    Profiler::global().set_enabled(false);  // freeze before snapshotting
    ok = write_profile_report(Profiler::global(), bench_name, dir,
                              &manifest) &&
         ok;
  }

  // Fault accounting goes to the manifest in every build flavor (the
  // drift report carries the per-device detail when drift is compiled
  // in) — a faulted run must be distinguishable from a clean one by its
  // meta.json alone.
  const FaultLedger& faults = FaultLedger::global();
  if (!faults.empty()) {
    manifest.add_digest("fault_ledger", faults.digest());
    int events = 0, lost = 0, quarantined = 0;
    for (const FaultGroupSummary& g : faults.summaries()) {
      events += g.total_events;
      lost += g.shots_lost;
      quarantined += g.quarantined_devices;
    }
    manifest.set_field("fault_events", static_cast<double>(events));
    manifest.set_field("fault_shots_lost", static_cast<double>(lost));
    manifest.set_field("fault_quarantined_devices",
                       static_cast<double>(quarantined));
  }

  if (kDriftCompiledIn && DriftAuditor::global().enabled()) {
    ok = write_drift_report(DriftAuditor::global(), bench_name, dir,
                            &manifest) &&
         ok;
  }

  // Fleet health artifacts land only when telemetry was armed this run
  // (--telemetry); an unarmed run's artifact set stays byte-identical
  // to a telemetry-less build.
  if (telemetry_enabled()) {
    const FleetHealthReport fleet =
        evaluate_fleet_health(DeviceHealthRegistry::global());
    ok = write_fleet_report(fleet, bench_name, dir, &manifest) && ok;
  }

  // Service timeline artifacts land only when the timeline was armed
  // this run (--timeline); same artifact-set contract as telemetry.
  if (timeline_enabled()) {
    TimelineDoc timeline = TimelineRecorder::global().snapshot();
    timeline.bench = bench_name;
    write_timeline_report(timeline, dir, &manifest);
  }

  std::string meta = dir + "/" + bench_name + ".meta.json";
  if (manifest.write(meta)) {
    std::printf("[meta] %s\n", meta.c_str());
  } else {
    ok = false;
  }
  return ok;
}

}  // namespace edgestab::obs
