#include "obs/flip_ledger.h"

#include <algorithm>

#include "util/hashing.h"

namespace edgestab::obs {

void FlipLedger::add_group(const std::string& group,
                           std::span<const FlipOutcome> outcomes) {
  auto& raw = raw_[group];
  raw.insert(raw.end(), outcomes.begin(), outcomes.end());
}

void FlipLedger::merge(const FlipLedger& other) {
  for (const auto& [group, outcomes] : other.raw_) {
    auto& raw = raw_[group];
    raw.insert(raw.end(), outcomes.begin(), outcomes.end());
    // Canonical order: summaries walk outcomes in insertion order when
    // pairing correct/incorrect envs, so sort to make the merged result
    // shard-order independent.
    std::stable_sort(raw.begin(), raw.end(),
                     [](const FlipOutcome& a, const FlipOutcome& b) {
                       return a.item != b.item ? a.item < b.item
                                               : a.env < b.env;
                     });
  }
}

LedgerGroupSummary FlipLedger::build_summary(const std::string& group) const {
  LedgerGroupSummary s;
  s.group = group;
  auto it = raw_.find(group);
  if (it == raw_.end()) return s;

  struct ItemTally {
    std::vector<const FlipOutcome*> correct;
    std::vector<const FlipOutcome*> incorrect;
    int class_id = -1;
  };
  std::map<int, ItemTally> items;
  for (const FlipOutcome& o : it->second) {
    ItemTally& t = items[o.item];
    (o.correct ? t.correct : t.incorrect).push_back(&o);
    if (t.class_id < 0) t.class_id = o.class_id;
  }

  for (const auto& [item, t] : items) {
    std::size_t observations = t.correct.size() + t.incorrect.size();
    if (observations < 2) continue;  // same skip rule as compute_instability
    ++s.total_items;
    if (!t.correct.empty() && !t.incorrect.empty()) {
      ++s.unstable_items;
      ++s.unstable_by_class[t.class_id];
      for (const FlipOutcome* c : t.correct)
        for (const FlipOutcome* w : t.incorrect) {
          ++s.flips_by_class[t.class_id];
          ++s.flips_by_pair[{c->env, w->env}];
          if (s.entries.size() < kMaxEntriesPerGroup) {
            s.entries.push_back({item, t.class_id, c->env, w->env,
                                 c->predicted, w->predicted});
          } else {
            ++s.dropped_entries;
          }
        }
    } else if (t.incorrect.empty()) {
      ++s.all_correct_items;
    } else {
      ++s.all_incorrect_items;
    }
  }
  return s;
}

std::vector<LedgerGroupSummary> FlipLedger::summaries() const {
  std::vector<LedgerGroupSummary> out;
  out.reserve(raw_.size());
  for (const auto& [group, _] : raw_) out.push_back(build_summary(group));
  return out;
}

std::optional<LedgerGroupSummary> FlipLedger::find_group(
    const std::string& group) const {
  if (raw_.find(group) == raw_.end()) return std::nullopt;
  return build_summary(group);
}

std::uint64_t FlipLedger::digest() const {
  Fingerprint fp;
  for (const auto& s : summaries()) {
    fp.add(s.group)
        .add(s.total_items)
        .add(s.unstable_items)
        .add(s.all_correct_items)
        .add(s.all_incorrect_items);
    for (const auto& [cls, n] : s.flips_by_class) fp.add(cls).add(n);
    for (const auto& [pair, n] : s.flips_by_pair)
      fp.add(pair.first).add(pair.second).add(n);
  }
  return fp.value();
}

void FlipLedger::clear() { raw_.clear(); }

}  // namespace edgestab::obs
