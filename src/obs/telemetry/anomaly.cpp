#include "obs/telemetry/anomaly.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <utility>

#include "obs/baseline.h"
#include "obs/json.h"

namespace edgestab::obs {

namespace {

/// One window metric the rules can reference, resolved against the
/// derived window stats. `denominator` is the sample count that backs
/// the value (rules gate on it); `numerator` is only meaningful for
/// count/denominator rates, where the alert carries both so the bench
/// cross-check can recompute value == numerator/denominator exactly.
struct MetricReading {
  bool known = false;
  double value = 0.0;
  long long numerator = 0;
  long long denominator = 0;
};

MetricReading read_metric(const DeviceWindowStats& w, const std::string& metric) {
  MetricReading r;
  r.known = true;
  if (metric == "flip_rate") {
    r.value = w.flip_rate;
    r.numerator = w.flipped_items;
    r.denominator = w.observations;
  } else if (metric == "loss_rate") {
    r.value = w.loss_rate;
    r.numerator = w.shots_lost;
    r.denominator = w.shots;
  } else if (metric == "retry_rate") {
    r.value = w.retry_rate;
    r.numerator = w.retries;
    r.denominator = w.shots;
  } else if (metric == "latency_p50_ms") {
    r.value = w.latency_p50_ms;
    r.denominator = w.shots;
  } else if (metric == "latency_p99_ms") {
    r.value = w.latency_p99_ms;
    r.denominator = w.shots;
  } else if (metric == "drift_psnr_db_min") {
    r.value = w.drift_psnr_db_min;
    r.denominator = w.drift_comparisons;
  } else if (metric == "drift_psnr_db_mean") {
    r.value = w.drift_psnr_db_mean;
    r.denominator = w.drift_comparisons;
  } else {
    r.known = false;
  }
  return r;
}

std::string describe(const std::string& metric, double value, double threshold,
                     bool above_is_bad, double baseline, bool robust) {
  std::string out = metric + "=" + format_double(value);
  if (robust) {
    out += " vs fleet median " + format_double(baseline) + " (band " +
           format_double(threshold) + ")";
  } else {
    out += above_is_bad ? " > " : " < ";
    out += format_double(threshold);
  }
  return out;
}

}  // namespace

const char* anomaly_rule_kind_name(AnomalyRuleKind kind) {
  switch (kind) {
    case AnomalyRuleKind::kAbsolute: return "absolute";
    case AnomalyRuleKind::kRobustZ: return "robust-z";
  }
  return "unknown";
}

std::vector<AnomalyRule> default_anomaly_rules() {
  std::vector<AnomalyRule> rules;
  // The resilience policy quarantined the device — always ledgered, at
  // critical, via the special "quarantine" metric (see evaluate()).
  rules.push_back({"device_quarantined", "quarantine",
                   AnomalyRuleKind::kAbsolute, 0.0, 0.0, true,
                   AlertSeverity::kCritical, 0});
  // A quarter of a window's shots lost is a sick link no matter what
  // the rest of the fleet looks like.
  rules.push_back({"loss_rate_high", "loss_rate", AnomalyRuleKind::kAbsolute,
                   0.25, 0.0, true, AlertSeverity::kCritical, 4});
  // Half the window's classified items flipping is instability the
  // paper would call catastrophic on any device.
  rules.push_back({"flip_rate_high", "flip_rate", AnomalyRuleKind::kAbsolute,
                   0.5, 0.0, true, AlertSeverity::kWarning, 4});
  // A device flipping far outside the fleet's same-window spread: the
  // per-device instability signal. Floor at 0.15 so a tight fleet
  // (MAD ~ 0) doesn't page on one flip.
  rules.push_back({"flip_rate_outlier", "flip_rate", AnomalyRuleKind::kRobustZ,
                   5.0, 0.15, true, AlertSeverity::kWarning, 4});
  // More than one retry per shot on average = the backoff loop is
  // carrying the link.
  rules.push_back({"retry_rate_high", "retry_rate", AnomalyRuleKind::kAbsolute,
                   1.0, 0.0, true, AlertSeverity::kWarning, 4});
  // Modeled delivery latency tail; absolute ceiling plus a fleet
  // outlier check (floored at 50 ms — straggler injection is bursty).
  rules.push_back({"latency_p99_high", "latency_p99_ms",
                   AnomalyRuleKind::kAbsolute, 250.0, 0.0, true,
                   AlertSeverity::kWarning, 4});
  rules.push_back({"latency_outlier", "latency_p99_ms",
                   AnomalyRuleKind::kRobustZ, 5.0, 50.0, true,
                   AlertSeverity::kWarning, 4});
  // A window whose worst stage-drift comparison dips under 15 dB PSNR
  // has visibly diverged from the reference device.
  rules.push_back({"drift_psnr_low", "drift_psnr_db_min",
                   AnomalyRuleKind::kAbsolute, 15.0, 0.0, false,
                   AlertSeverity::kWarning, 1});
  return rules;
}

AnomalyEngine::AnomalyEngine(std::vector<AnomalyRule> rules)
    : rules_(std::move(rules)) {}

AlertLedger AnomalyEngine::evaluate(const FleetHealthSnapshot& snapshot) const {
  AlertLedger ledger;
  for (const AnomalyRule& rule : rules_) {
    if (rule.metric == "quarantine") {
      for (const DeviceHealth& d : snapshot.devices) {
        for (const DeviceWindowStats& w : d.windows) {
          if (!w.quarantined) continue;
          Alert a;
          a.rule = rule.name;
          a.metric = rule.metric;
          a.severity = rule.severity;
          a.device = d.device;
          a.device_label = d.label;
          a.window = w.window;
          a.item_lo = w.item_lo;
          a.item_hi = w.item_hi;
          a.item = w.quarantine_item;
          a.value = 1.0;
          a.detail = "resilience policy quarantined device from item " +
                     std::to_string(w.quarantine_item);
          ledger.record(std::move(a));
        }
      }
      continue;
    }
    if (rule.kind == AnomalyRuleKind::kAbsolute) {
      for (const DeviceHealth& d : snapshot.devices) {
        for (const DeviceWindowStats& w : d.windows) {
          const MetricReading r = read_metric(w, rule.metric);
          if (!r.known || r.denominator < rule.min_denominator) continue;
          const bool fired = rule.above_is_bad ? r.value > rule.threshold
                                               : r.value < rule.threshold;
          if (!fired) continue;
          Alert a;
          a.rule = rule.name;
          a.metric = rule.metric;
          a.severity = rule.severity;
          a.device = d.device;
          a.device_label = d.label;
          a.window = w.window;
          a.item_lo = w.item_lo;
          a.item_hi = w.item_hi;
          a.value = r.value;
          a.threshold = rule.threshold;
          a.numerator = r.numerator;
          a.denominator = r.denominator;
          a.detail = describe(rule.metric, r.value, rule.threshold,
                              rule.above_is_bad, 0.0, false);
          ledger.record(std::move(a));
        }
      }
      continue;
    }
    // kRobustZ: per window index, band each device against the fleet
    // cross-section of qualifying devices. Iterate the union of window
    // indices in ascending order so evaluation order is canonical.
    std::set<int> window_ids;
    for (const DeviceHealth& d : snapshot.devices) {
      for (const DeviceWindowStats& w : d.windows) window_ids.insert(w.window);
    }
    for (int window : window_ids) {
      struct Entry {
        const DeviceHealth* device;
        const DeviceWindowStats* stats;
        MetricReading reading;
      };
      std::vector<Entry> cross;
      for (const DeviceHealth& d : snapshot.devices) {
        for (const DeviceWindowStats& w : d.windows) {
          if (w.window != window) continue;
          const MetricReading r = read_metric(w, rule.metric);
          if (r.known && r.denominator >= rule.min_denominator) {
            cross.push_back({&d, &w, r});
          }
        }
      }
      if (static_cast<int>(cross.size()) < kMinDevices) continue;
      std::vector<double> values;
      values.reserve(cross.size());
      for (const Entry& e : cross) values.push_back(e.reading.value);
      const double median = median_of(values);
      const double mad = mad_of(values, median);
      const double band =
          std::max(rule.threshold * mad, rule.abs_floor);
      for (const Entry& e : cross) {
        const double deviation = rule.above_is_bad
                                     ? e.reading.value - median
                                     : median - e.reading.value;
        if (deviation <= band) continue;
        Alert a;
        a.rule = rule.name;
        a.metric = rule.metric;
        a.severity = rule.severity;
        a.device = e.device->device;
        a.device_label = e.device->label;
        a.window = window;
        a.item_lo = e.stats->item_lo;
        a.item_hi = e.stats->item_hi;
        a.value = e.reading.value;
        a.threshold = band;
        a.baseline = median;
        a.numerator = e.reading.numerator;
        a.denominator = e.reading.denominator;
        a.detail = describe(rule.metric, e.reading.value, band,
                            rule.above_is_bad, median, true);
        ledger.record(std::move(a));
      }
    }
  }
  ledger.alerts();  // sort once, eagerly
  return ledger;
}

FleetHealthReport evaluate_fleet_health(const DeviceHealthRegistry& registry,
                                        const AnomalyEngine& engine) {
  FleetHealthReport report;
  report.fleet = registry.snapshot();
  report.alerts = engine.evaluate(report.fleet);

  // Per-device alerting windows, with the canonical first rule name as
  // the transition reason.
  for (DeviceHealth& d : report.fleet.devices) {
    std::map<int, std::string> alerting;  // window → first rule name
    for (const Alert& a : report.alerts.alerts()) {
      if (a.device != d.device) continue;
      alerting.emplace(a.window, a.rule);  // keeps the first (canonical) rule
    }
    HealthStatus state = HealthStatus::kHealthy;
    int clean_streak = 0;
    for (const DeviceWindowStats& w : d.windows) {
      if (w.quarantined) {
        d.transitions.push_back(
            {w.window, w.item_lo, state, HealthStatus::kQuarantined,
             "quarantined from item " + std::to_string(w.quarantine_item)});
        state = HealthStatus::kQuarantined;
        break;  // sticky — the device is out of the experiment
      }
      const auto hit = alerting.find(w.window);
      if (hit != alerting.end()) {
        clean_streak = 0;
        if (state == HealthStatus::kHealthy) {
          d.transitions.push_back({w.window, w.item_lo, state,
                                   HealthStatus::kDegraded, hit->second});
          state = HealthStatus::kDegraded;
        }
      } else if (state == HealthStatus::kDegraded) {
        if (++clean_streak >= DeviceHealthRegistry::kRecoveryWindows) {
          d.transitions.push_back(
              {w.window, w.item_lo, state, HealthStatus::kHealthy,
               std::to_string(clean_streak) + " clean windows"});
          state = HealthStatus::kHealthy;
          clean_streak = 0;
        }
      }
    }
    d.status = state;
    if (state == HealthStatus::kDegraded) ++report.devices_degraded;
    if (state == HealthStatus::kQuarantined) ++report.devices_quarantined;
  }
  report.alerts_total = static_cast<long long>(report.alerts.total());
  report.alerts_critical =
      static_cast<long long>(report.alerts.count(AlertSeverity::kCritical));
  return report;
}

}  // namespace edgestab::obs
