// Fleet health exporters: fleet.json (edgestab-fleet-v1), the
// structured alert/event log events.jsonl (edgestab-events-v1), the
// self-contained fleet.html dashboard, and the fixed-width text table
// the sentinel CLI re-renders offline.
//
// Everything here is a pure function of a FleetHealthReport, which is
// itself a pure function of the registry's integer-quantized state —
// so fleet.json, events.jsonl and the alert-ledger digest are
// bit-identical at any --threads. The HTML is rendered from the same
// data (and is re-renderable offline from fleet.json via parse_fleet +
// fleet_html, mirroring the profiler's hotspots flow).
#pragma once

#include <string>

#include "obs/json.h"
#include "obs/manifest.h"
#include "obs/telemetry/anomaly.h"

namespace edgestab::obs {

/// Full-fidelity JSON document (schema "edgestab-fleet-v1"): headline
/// counts, per-device rows with window series + status transitions, and
/// the canonical alert list.
std::string fleet_json(const FleetHealthReport& report,
                       const std::string& bench_name);

/// One line per event (schema "edgestab-events-v1"): every alert in
/// canonical ledger order, then every status transition in
/// (device, window) order. Leveled: info / warning / critical.
std::string events_jsonl(const FleetHealthReport& report,
                         const std::string& bench_name);

/// Self-contained dashboard (inline CSS + SVG, no external assets):
/// per-device health rows with status badges, windowed flip/loss
/// sparklines, and the alert timeline.
std::string fleet_html(const FleetHealthReport& report,
                       const std::string& bench_name);

/// Fixed-width per-device table + alert list for terminals.
std::string fleet_text(const FleetHealthReport& report);

/// Write fleet.json + fleet.html + events.jsonl into `dir`; register
/// the artifacts, the alert_ledger / fleet_report / event_log digests
/// and the telemetry_* headline fields on `manifest` when given.
/// False on I/O failure.
bool write_fleet_report(const FleetHealthReport& report,
                        const std::string& bench_name, const std::string& dir,
                        RunManifest* manifest);

/// A fleet.json read back for offline rendering.
struct FleetDoc {
  std::string bench;
  FleetHealthReport report;
};

/// Parse an edgestab-fleet-v1 document. False + error message when the
/// schema or required members are missing/mistyped.
bool parse_fleet(const JsonValue& doc, FleetDoc* out, std::string* error);

}  // namespace edgestab::obs
