#include "obs/telemetry/telemetry.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"
#include "util/hashing.h"

namespace edgestab::obs {

namespace {

// Milli-dB / microsecond quantization: quantize ONCE at the record
// site, fold integers forever after. llround is exact for every value
// the rig produces and keeps the fold commutative.
long long quantize_mdb(double db) {
  if (!std::isfinite(db)) return 0;
  return std::llround(db * 1e3);
}

long long quantize_us(double ms) {
  if (!std::isfinite(ms) || ms < 0.0) return 0;
  return std::llround(ms * 1e3);
}

// Nearest-rank percentile over an already-sorted sample vector.
// Deterministic for a deterministic multiset; returns 0 when empty.
double percentile_ms(const std::vector<long long>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto n = static_cast<long long>(sorted_us.size());
  long long rank = static_cast<long long>(std::ceil(q * static_cast<double>(n)));
  rank = std::clamp(rank, 1LL, n);
  return static_cast<double>(sorted_us[static_cast<std::size_t>(rank - 1)]) / 1e3;
}

double safe_ratio(long long num, long long den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

const char* health_status_name(HealthStatus status) {
  switch (status) {
    case HealthStatus::kHealthy: return "healthy";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kQuarantined: return "quarantined";
  }
  return "unknown";
}

DeviceHealthRegistry& DeviceHealthRegistry::global() {
  static DeviceHealthRegistry registry;
  return registry;
}

void DeviceHealthRegistry::set_window_items(int items) {
  std::lock_guard<std::mutex> lock(mu_);
  window_items_ = std::max(1, items);
}

int DeviceHealthRegistry::window_items() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_items_;
}

void DeviceHealthRegistry::set_device_label(int device, const std::string& label) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  devices_[device].label = label;
}

DeviceHealthRegistry::Bucket& DeviceHealthRegistry::bucket(int device, int item) {
  // Caller holds mu_. Items below zero fold into window 0 rather than
  // producing negative keys.
  const int window = item > 0 ? item / window_items_ : 0;
  return devices_[device].windows[window];
}

void DeviceHealthRegistry::record_observation(int device, int item, bool correct,
                                              bool flipped) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket(device, item);
  ++b.observations;
  if (!correct) ++b.incorrect_items;
  if (flipped) ++b.flipped_items;
}

void DeviceHealthRegistry::record_shot(int device, int item, int /*shot*/,
                                       int attempts, bool lost, double latency_ms,
                                       int fault_events) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket(device, item);
  ++b.shots;
  if (lost) ++b.shots_lost;
  if (attempts > 1) b.retries += attempts - 1;
  b.fault_events += std::max(0, fault_events);
  b.latency_us.push_back(quantize_us(latency_ms));
  if (lost && !b.live_loss_flagged && b.shots_lost >= kLiveLossAlertShots) {
    b.live_loss_flagged = true;
    live_alerts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DeviceHealthRegistry::record_capture_loss(int device, int item, int /*shot*/,
                                               int retries) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket(device, item);
  ++b.shots;
  ++b.shots_lost;
  b.retries += std::max(0, retries);
  if (!b.live_loss_flagged && b.shots_lost >= kLiveLossAlertShots) {
    b.live_loss_flagged = true;
    live_alerts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DeviceHealthRegistry::record_retries(int device, int item, int count) {
  if (!enabled() || count <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  bucket(device, item).retries += count;
}

void DeviceHealthRegistry::record_stage_drift(int device, int item, double psnr_db) {
  if (!enabled()) return;
  const long long mdb = quantize_mdb(psnr_db);
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket(device, item);
  if (b.drift_comparisons == 0 || mdb < b.drift_psnr_mdb_min) {
    b.drift_psnr_mdb_min = mdb;
  }
  ++b.drift_comparisons;
  b.drift_psnr_mdb_sum += mdb;
}

void DeviceHealthRegistry::record_quarantine(int device, int item) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& b = bucket(device, item);
  if (!b.quarantined || item < b.quarantine_item) {
    b.quarantined = true;
    b.quarantine_item = item;
    live_alerts_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DeviceHealthRegistry::record_coverage(int device, long long usable,
                                           long long total) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  DeviceState& state = devices_[device];
  if (state.coverage_slots < 0) {
    state.coverage_usable = 0;
    state.coverage_slots = 0;
  }
  state.coverage_usable += usable;
  state.coverage_slots += total;
}

FleetHealthSnapshot DeviceHealthRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  FleetHealthSnapshot snap;
  snap.window_items = window_items_;
  snap.devices.reserve(devices_.size());
  for (const auto& [device, state] : devices_) {
    DeviceHealth health;
    health.device = device;
    health.label = state.label.empty() ? "device-" + std::to_string(device)
                                       : state.label;
    health.coverage_usable = state.coverage_usable;
    health.coverage_slots = state.coverage_slots;

    std::vector<long long> all_latency;
    long long drift_mdb_sum = 0;
    for (const auto& [window, b] : state.windows) {
      DeviceWindowStats w;
      w.window = window;
      w.item_lo = window * window_items_;
      w.item_hi = w.item_lo + window_items_;
      w.observations = b.observations;
      w.flipped_items = b.flipped_items;
      w.incorrect_items = b.incorrect_items;
      w.flip_rate = safe_ratio(b.flipped_items, b.observations);
      w.shots = b.shots;
      w.shots_lost = b.shots_lost;
      w.retries = b.retries;
      w.fault_events = b.fault_events;
      w.loss_rate = safe_ratio(b.shots_lost, b.shots);
      w.retry_rate = safe_ratio(b.retries, b.shots);

      std::vector<long long> sorted = b.latency_us;
      std::sort(sorted.begin(), sorted.end());
      w.latency_p50_ms = percentile_ms(sorted, 0.50);
      w.latency_p99_ms = percentile_ms(sorted, 0.99);
      w.latency_max_ms =
          sorted.empty() ? 0.0 : static_cast<double>(sorted.back()) / 1e3;
      all_latency.insert(all_latency.end(), sorted.begin(), sorted.end());

      w.drift_comparisons = b.drift_comparisons;
      if (b.drift_comparisons > 0) {
        w.drift_psnr_db_mean =
            static_cast<double>(b.drift_psnr_mdb_sum) /
            (1e3 * static_cast<double>(b.drift_comparisons));
        w.drift_psnr_db_min = static_cast<double>(b.drift_psnr_mdb_min) / 1e3;
      }
      w.quarantined = b.quarantined;
      w.quarantine_item = b.quarantine_item;

      health.observations += b.observations;
      health.flipped_items += b.flipped_items;
      health.incorrect_items += b.incorrect_items;
      health.shots += b.shots;
      health.shots_lost += b.shots_lost;
      health.retries += b.retries;
      health.fault_events += b.fault_events;
      health.drift_comparisons += b.drift_comparisons;
      drift_mdb_sum += b.drift_psnr_mdb_sum;
      health.windows.push_back(std::move(w));
    }
    health.flip_rate = safe_ratio(health.flipped_items, health.observations);
    std::sort(all_latency.begin(), all_latency.end());
    health.latency_p50_ms = percentile_ms(all_latency, 0.50);
    health.latency_p99_ms = percentile_ms(all_latency, 0.99);
    if (health.drift_comparisons > 0) {
      health.drift_psnr_db_mean =
          static_cast<double>(drift_mdb_sum) /
          (1e3 * static_cast<double>(health.drift_comparisons));
    }
    snap.devices.push_back(std::move(health));
  }
  return snap;
}

std::uint64_t DeviceHealthRegistry::digest() const {
  std::lock_guard<std::mutex> lock(mu_);
  Fingerprint fp;
  const auto addll = [&fp](long long v) {
    fp.add(static_cast<std::int64_t>(v));
  };
  fp.add("edgestab-telemetry-v1");
  fp.add(window_items_);
  fp.add(static_cast<std::uint64_t>(devices_.size()));
  for (const auto& [device, state] : devices_) {
    fp.add(device);
    fp.add(state.label);
    addll(state.coverage_usable);
    addll(state.coverage_slots);
    fp.add(static_cast<std::uint64_t>(state.windows.size()));
    for (const auto& [window, b] : state.windows) {
      fp.add(window);
      addll(b.observations);
      addll(b.flipped_items);
      addll(b.incorrect_items);
      addll(b.shots);
      addll(b.shots_lost);
      addll(b.retries);
      addll(b.fault_events);
      std::vector<long long> sorted = b.latency_us;
      std::sort(sorted.begin(), sorted.end());
      for (long long us : sorted) addll(us);
      addll(b.drift_comparisons);
      addll(b.drift_psnr_mdb_sum);
      addll(b.drift_comparisons > 0 ? b.drift_psnr_mdb_min : 0LL);
      fp.add(b.quarantined ? 1 : 0);
      fp.add(b.quarantine_item);
    }
  }
  return fp.value();
}

void DeviceHealthRegistry::merge_bucket(Bucket& into, const Bucket& from) {
  into.observations += from.observations;
  into.flipped_items += from.flipped_items;
  into.incorrect_items += from.incorrect_items;
  into.shots += from.shots;
  into.shots_lost += from.shots_lost;
  into.retries += from.retries;
  into.fault_events += from.fault_events;
  into.latency_us.insert(into.latency_us.end(), from.latency_us.begin(),
                         from.latency_us.end());
  if (from.drift_comparisons > 0) {
    if (into.drift_comparisons == 0 ||
        from.drift_psnr_mdb_min < into.drift_psnr_mdb_min) {
      into.drift_psnr_mdb_min = from.drift_psnr_mdb_min;
    }
    into.drift_comparisons += from.drift_comparisons;
    into.drift_psnr_mdb_sum += from.drift_psnr_mdb_sum;
  }
  if (from.quarantined &&
      (!into.quarantined || from.quarantine_item < into.quarantine_item)) {
    into.quarantined = true;
    into.quarantine_item = from.quarantine_item;
  }
}

void DeviceHealthRegistry::merge(const DeviceHealthRegistry& other) {
  if (&other == this) return;
  // Copy the source under its own lock, then fold under ours —
  // the FaultLedger merge discipline, avoiding lock-order cycles.
  std::map<int, DeviceState> theirs;
  std::int64_t their_live = 0;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    theirs = other.devices_;
    their_live = other.live_alerts_.load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [device, state] : theirs) {
    DeviceState& mine = devices_[device];
    if (mine.label.empty()) mine.label = state.label;
    if (state.coverage_slots >= 0) {
      if (mine.coverage_slots < 0) {
        mine.coverage_usable = 0;
        mine.coverage_slots = 0;
      }
      mine.coverage_usable += state.coverage_usable;
      mine.coverage_slots += state.coverage_slots;
    }
    for (const auto& [window, b] : state.windows) {
      merge_bucket(mine.windows[window], b);
    }
  }
  live_alerts_.fetch_add(their_live, std::memory_order_relaxed);
}

std::string DeviceHealthRegistry::serialize_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.begin_object();
  w.key("format").value("edgestab-telemetry-state-v1");
  w.key("window_items").value(window_items_);
  w.key("live_alerts")
      .value(static_cast<std::int64_t>(
          live_alerts_.load(std::memory_order_relaxed)));
  w.key("devices").begin_array();
  for (const auto& [device, state] : devices_) {
    w.begin_object();
    w.key("device").value(device);
    w.key("label").value(state.label);
    w.key("coverage_usable")
        .value(static_cast<std::int64_t>(state.coverage_usable));
    w.key("coverage_slots")
        .value(static_cast<std::int64_t>(state.coverage_slots));
    w.key("windows").begin_array();
    for (const auto& [window, b] : state.windows) {
      w.begin_object();
      w.key("window").value(window);
      w.key("observations").value(static_cast<std::int64_t>(b.observations));
      w.key("flipped_items").value(static_cast<std::int64_t>(b.flipped_items));
      w.key("incorrect_items")
          .value(static_cast<std::int64_t>(b.incorrect_items));
      w.key("shots").value(static_cast<std::int64_t>(b.shots));
      w.key("shots_lost").value(static_cast<std::int64_t>(b.shots_lost));
      w.key("retries").value(static_cast<std::int64_t>(b.retries));
      w.key("fault_events").value(static_cast<std::int64_t>(b.fault_events));
      // Canonically sorted: the multiset is order-free (every reader
      // sorts), so sorted bytes keep the document itself digestable.
      std::vector<long long> sorted = b.latency_us;
      std::sort(sorted.begin(), sorted.end());
      w.key("latency_us").begin_array();
      for (long long us : sorted) w.value(static_cast<std::int64_t>(us));
      w.end_array();
      w.key("drift_comparisons")
          .value(static_cast<std::int64_t>(b.drift_comparisons));
      w.key("drift_psnr_mdb_sum")
          .value(static_cast<std::int64_t>(b.drift_psnr_mdb_sum));
      w.key("drift_psnr_mdb_min")
          .value(static_cast<std::int64_t>(b.drift_psnr_mdb_min));
      w.key("quarantined").value(b.quarantined);
      w.key("quarantine_item").value(b.quarantine_item);
      w.key("live_loss_flagged").value(b.live_loss_flagged);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

bool DeviceHealthRegistry::restore_state(const std::string& json) {
  auto doc = parse_json(json);
  std::lock_guard<std::mutex> lock(mu_);
  devices_.clear();
  live_alerts_.store(0, std::memory_order_relaxed);
  if (!doc.has_value() || !doc->is_object()) return false;
  const JsonValue* format = doc->find("format");
  if (format == nullptr ||
      format->string_or("") != "edgestab-telemetry-state-v1")
    return false;
  const auto as_ll = [](const JsonValue* v, long long fallback) {
    return v != nullptr && v->is_number()
               ? static_cast<long long>(v->number)
               : fallback;
  };
  if (const JsonValue* w = doc->find("window_items"))
    window_items_ = std::max(1, static_cast<int>(w->number_or(1)));
  live_alerts_.store(as_ll(doc->find("live_alerts"), 0),
                     std::memory_order_relaxed);
  const JsonValue* devices = doc->find("devices");
  if (devices == nullptr || !devices->is_array()) return false;
  for (const JsonValue& dev : devices->items) {
    if (!dev.is_object()) return false;
    const int device = static_cast<int>(as_ll(dev.find("device"), 0));
    DeviceState& state = devices_[device];
    if (const JsonValue* label = dev.find("label"))
      state.label = label->string_or("");
    state.coverage_usable = as_ll(dev.find("coverage_usable"), 0);
    state.coverage_slots = as_ll(dev.find("coverage_slots"), -1);
    const JsonValue* windows = dev.find("windows");
    if (windows == nullptr || !windows->is_array()) return false;
    for (const JsonValue& win : windows->items) {
      if (!win.is_object()) return false;
      Bucket& b = state.windows[static_cast<int>(as_ll(win.find("window"), 0))];
      b.observations = as_ll(win.find("observations"), 0);
      b.flipped_items = as_ll(win.find("flipped_items"), 0);
      b.incorrect_items = as_ll(win.find("incorrect_items"), 0);
      b.shots = as_ll(win.find("shots"), 0);
      b.shots_lost = as_ll(win.find("shots_lost"), 0);
      b.retries = as_ll(win.find("retries"), 0);
      b.fault_events = as_ll(win.find("fault_events"), 0);
      if (const JsonValue* lat = win.find("latency_us");
          lat != nullptr && lat->is_array()) {
        b.latency_us.reserve(lat->items.size());
        for (const JsonValue& us : lat->items)
          b.latency_us.push_back(static_cast<long long>(us.number_or(0.0)));
      }
      b.drift_comparisons = as_ll(win.find("drift_comparisons"), 0);
      b.drift_psnr_mdb_sum = as_ll(win.find("drift_psnr_mdb_sum"), 0);
      b.drift_psnr_mdb_min = as_ll(win.find("drift_psnr_mdb_min"), 0);
      if (const JsonValue* q = win.find("quarantined"))
        b.quarantined = q->is_bool() && q->boolean;
      b.quarantine_item = static_cast<int>(as_ll(win.find("quarantine_item"),
                                                 -1));
      if (const JsonValue* f = win.find("live_loss_flagged"))
        b.live_loss_flagged = f->is_bool() && f->boolean;
    }
  }
  return true;
}

bool DeviceHealthRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return devices_.empty();
}

void DeviceHealthRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  devices_.clear();
  live_alerts_.store(0, std::memory_order_relaxed);
}

}  // namespace edgestab::obs
