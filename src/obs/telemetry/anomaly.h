// Declarative anomaly rules over fleet health windows.
//
// Two rule kinds, both deterministic functions of the registry's
// integer-quantized snapshot:
//
//   kAbsolute  fire when a device/window metric crosses a fixed
//              threshold (direction-aware), e.g. loss_rate > 0.25.
//   kRobustZ   fire when a device's metric is a robust outlier against
//              the same-window fleet cross-section: deviation from the
//              fleet median beyond max(mad_k · MAD, abs_floor) — the
//              sentinel's banding math (obs/baseline median_of/mad_of,
//              obs/compare band shape) pointed sideways across devices
//              instead of backwards across runs. Needs >= kMinDevices
//              devices with enough samples, otherwise the cross-section
//              is too small to call anything an outlier.
//
// Rules gate on a minimum denominator (observations / shots /
// comparisons, whichever backs the metric) so one lost shot out of one
// never pages. The quarantine rule is special-cased: it lifts the
// resilience policy's verdict into the ledger rather than re-deciding
// it, which is what keeps the quarantine cross-check in
// bench::check_alert_ledger exact.
#pragma once

#include <string>
#include <vector>

#include "obs/telemetry/alert_ledger.h"
#include "obs/telemetry/telemetry.h"

namespace edgestab::obs {

enum class AnomalyRuleKind : int {
  kAbsolute = 0,
  kRobustZ = 1,
};

const char* anomaly_rule_kind_name(AnomalyRuleKind kind);

struct AnomalyRule {
  std::string name;    ///< ledger key, e.g. "flip_rate_outlier"
  std::string metric;  ///< window metric (see anomaly.cpp metric table)
  AnomalyRuleKind kind = AnomalyRuleKind::kAbsolute;
  /// kAbsolute: the threshold itself. kRobustZ: the MAD multiplier.
  double threshold = 0.0;
  /// kRobustZ: absolute band floor so a near-zero-MAD fleet does not
  /// flag noise (the compare-engine lesson). Ignored for kAbsolute.
  double abs_floor = 0.0;
  bool above_is_bad = true;
  AlertSeverity severity = AlertSeverity::kWarning;
  /// Minimum backing denominator for the metric in the window.
  long long min_denominator = 1;
};

/// The built-in rule set every bench evaluates (documented in
/// DESIGN.md §14).
std::vector<AnomalyRule> default_anomaly_rules();

class AnomalyEngine {
 public:
  /// Robust-z rules need at least this many qualifying devices in a
  /// window's cross-section.
  static constexpr int kMinDevices = 3;

  AnomalyEngine() : AnomalyEngine(default_anomaly_rules()) {}
  explicit AnomalyEngine(std::vector<AnomalyRule> rules);

  const std::vector<AnomalyRule>& rules() const { return rules_; }

  /// Evaluate every rule over every device/window of the snapshot.
  /// Pure: same snapshot, same ledger, bit for bit.
  AlertLedger evaluate(const FleetHealthSnapshot& snapshot) const;

 private:
  std::vector<AnomalyRule> rules_;
};

/// The full evaluated picture one export consumes.
struct FleetHealthReport {
  FleetHealthSnapshot fleet;  ///< statuses + transitions folded in
  AlertLedger alerts;
  long long alerts_total = 0;
  long long alerts_critical = 0;
  long long devices_degraded = 0;
  long long devices_quarantined = 0;
};

/// Snapshot the registry, run the engine, fold the per-device status
/// state machine (healthy → degraded on an alerting window, degraded →
/// healthy after DeviceHealthRegistry::kRecoveryWindows clean windows,
/// quarantined sticky from the resilience signal) and tally headline
/// counts.
FleetHealthReport evaluate_fleet_health(
    const DeviceHealthRegistry& registry,
    const AnomalyEngine& engine = AnomalyEngine());

}  // namespace edgestab::obs
