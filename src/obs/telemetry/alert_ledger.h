// Canonical, merge-safe ledger of fleet health alerts.
//
// Same determinism contract as FlipLedger / FaultLedger: alerts() is
// sorted by the canonical (device, window, rule, item) key regardless
// of insertion or merge order, and digest() fingerprints exactly that
// sorted sequence, so the ledger is bit-identical at any --threads and
// across shard merges. The anomaly engine is the only writer in
// production (it evaluates a snapshot serially), but record/merge stay
// order-insensitive so sharded evaluation keeps the same digest.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace edgestab::obs {

enum class AlertSeverity : int {
  kWarning = 0,
  kCritical = 1,
};

const char* alert_severity_name(AlertSeverity severity);

/// One rule firing for one device over one window.
struct Alert {
  std::string rule;    ///< rule name, e.g. "loss_rate_high"
  std::string metric;  ///< window metric the rule evaluated
  AlertSeverity severity = AlertSeverity::kWarning;
  int device = -1;
  std::string device_label;
  int window = -1;
  int item_lo = 0;
  int item_hi = 0;
  /// Quarantine alerts carry the first excluded item; -1 otherwise.
  int item = -1;
  double value = 0.0;      ///< observed metric value
  double threshold = 0.0;  ///< band the value crossed (absolute or robust)
  double baseline = 0.0;   ///< fleet median for robust-z rules, else 0
  /// Rate provenance for cross-checks: value == numerator/denominator
  /// for rate metrics (0/0 otherwise).
  long long numerator = 0;
  long long denominator = 0;
  std::string detail;  ///< human-readable one-liner
};

class AlertLedger {
 public:
  void record(Alert alert);
  void merge(const AlertLedger& other);

  /// Alerts in canonical (device, window, rule, item) order.
  const std::vector<Alert>& alerts() const;

  std::size_t total() const { return alerts_.size(); }
  std::size_t count(AlertSeverity severity) const;
  bool empty() const { return alerts_.empty(); }

  /// FNV fingerprint over the canonically sorted alert sequence.
  std::uint64_t digest() const;

  void clear() { alerts_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const;

  mutable std::vector<Alert> alerts_;
  mutable bool sorted_ = true;
};

}  // namespace edgestab::obs
