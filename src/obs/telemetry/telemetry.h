// Fleet health telemetry — the per-device half of the observability
// stack.
//
// The paper's central finding is that instability is a *per-device*
// phenomenon: the same model diverges differently on each phone. The
// tracing / drift / fault layers aggregate per run; this registry keeps
// the books per device. While an experiment runs, hooks in the capture
// rig, the delivery/resilience path and the experiment loops feed one
// `DeviceHealthRegistry` singleton with per-shot facts (prediction
// flips, per-stage drift magnitude, synthetic delivery latency,
// fault/loss/retry counters, coverage), which it folds into rolling
// item-index windows per device. The anomaly engine (telemetry/anomaly.h)
// evaluates declarative rules over those windows and emits the alert
// ledger; the fleet report (telemetry/fleet_report.h) renders both as
// bench_out/<name>.fleet.json / .fleet.html / .events.jsonl.
//
// Determinism contract (mirrors FlipLedger / FaultLedger / profiler):
// every aggregate is integer-quantized before folding — counts, bool
// ors, int64 sums of milli-dB / microsecond values, min/max of ints —
// so the fold is commutative AND associative: samples may arrive from
// any pool lane in any order and the snapshot, the alert ledger and the
// exported artifacts are bit-identical at every --threads setting.
// Latency quantiles keep the per-window sample multiset (sorted at
// snapshot time), never a running estimate. Wall-clock span timings are
// deliberately NOT fed here: wall time is nondeterministic and belongs
// to the profiler/sentinel; the telemetry latency axis is the *modeled*
// per-shot delivery latency (straggler + backoff milliseconds), which
// is a pure function of the fault schedule.
//
// Windows are item-index buckets (window w covers items
// [w*W, (w+1)*W)), not arrival-order rings — the bucket an event lands
// in depends only on its fleet coordinates, which is what makes online
// folding order-independent.
//
// Build flavors: with -DEDGESTAB_TELEMETRY=OFF `kTelemetryCompiledIn`
// is false and enabled() folds to constant false, so every hook
// compiles to a dead test; the classes stay linked (and unit-testable)
// in both flavors, mirroring the drift/fault design.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace edgestab::obs {

#ifdef EDGESTAB_TELEMETRY
inline constexpr bool kTelemetryCompiledIn = true;
#else
inline constexpr bool kTelemetryCompiledIn = false;
#endif

/// Per-device status state machine. Transitions are folded serially
/// over windows by evaluate_fleet_health: healthy → degraded when a
/// window carries an alert, degraded → healthy after
/// kRecoveryWindows alert-free windows, anything → quarantined (sticky)
/// when the resilience policy quarantined the device — the registry
/// subsumes the quarantine signal rather than re-deciding it.
enum class HealthStatus : int {
  kHealthy = 0,
  kDegraded = 1,
  kQuarantined = 2,
};

const char* health_status_name(HealthStatus status);

/// One device's derived statistics over one item-index window. All
/// values are computed from integer-quantized aggregates, so they are
/// identical at any thread count.
struct DeviceWindowStats {
  int window = 0;
  int item_lo = 0;  ///< first item index the window covers
  int item_hi = 0;  ///< one past the last item index

  long long observations = 0;   ///< classified slot-0 observations
  long long flipped_items = 0;  ///< incorrect while >=1 device was correct
  long long incorrect_items = 0;
  double flip_rate = 0.0;  ///< flipped_items / observations

  long long shots = 0;  ///< capture/delivery attempts accounted
  long long shots_lost = 0;
  long long retries = 0;
  long long fault_events = 0;  ///< corruption events observed in delivery
  double loss_rate = 0.0;
  double retry_rate = 0.0;

  double latency_p50_ms = 0.0;  ///< modeled delivery latency (see header)
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;

  long long drift_comparisons = 0;
  double drift_psnr_db_mean = 0.0;
  double drift_psnr_db_min = 0.0;  ///< 0 when no comparisons

  bool quarantined = false;
  int quarantine_item = -1;  ///< first item excluded (when quarantined)
};

/// One status-machine transition, for the event log and the dashboard
/// timeline.
struct StatusTransition {
  int window = 0;
  int item_lo = 0;
  HealthStatus from = HealthStatus::kHealthy;
  HealthStatus to = HealthStatus::kHealthy;
  std::string reason;
};

/// One device's health row: whole-run totals plus the window series.
/// `status` / `transitions` are filled by evaluate_fleet_health (they
/// depend on which alerts fired); snapshot() leaves them at defaults.
struct DeviceHealth {
  int device = 0;
  std::string label;
  HealthStatus status = HealthStatus::kHealthy;
  std::vector<StatusTransition> transitions;

  long long observations = 0;
  long long flipped_items = 0;
  long long incorrect_items = 0;
  double flip_rate = 0.0;

  long long shots = 0;
  long long shots_lost = 0;
  long long retries = 0;
  long long fault_events = 0;

  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;

  long long drift_comparisons = 0;
  double drift_psnr_db_mean = 0.0;

  /// Usable / total slots from the resilience coverage tally; -1 slots
  /// when the experiment never reported coverage.
  long long coverage_usable = 0;
  long long coverage_slots = -1;

  std::vector<DeviceWindowStats> windows;  ///< ascending window index
};

/// Canonical fold of the whole registry.
struct FleetHealthSnapshot {
  int window_items = 0;
  std::vector<DeviceHealth> devices;  ///< ascending device index

  bool empty() const { return devices.empty(); }
};

/// Process-wide per-device health registry. Hooks are thread-safe
/// (mutex-serialized; a disabled registry costs one relaxed atomic
/// load) and commutative, so parallel lanes may record in any order.
class DeviceHealthRegistry {
 public:
  /// Default rolling-window width in items.
  static constexpr int kDefaultWindowItems = 16;
  /// degraded → healthy after this many consecutive alert-free windows.
  static constexpr int kRecoveryWindows = 2;
  /// live_alert_count() heuristic: a window bucket reaching this many
  /// lost shots counts as one live alert (the heartbeat estimate; the
  /// anomaly engine's ledger is authoritative).
  static constexpr long long kLiveLossAlertShots = 4;

  static DeviceHealthRegistry& global();

  DeviceHealthRegistry() = default;

  /// False in an EDGESTAB_TELEMETRY=OFF build no matter what a caller
  /// set, so every hook folds to a dead test.
  bool enabled() const {
    if constexpr (!kTelemetryCompiledIn) return false;
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Window width in items; takes effect for subsequent records, so set
  /// it before the run starts. Clamped to >= 1.
  void set_window_items(int items);
  int window_items() const;

  void set_device_label(int device, const std::string& label);

  /// One classified slot-0 observation. `flipped`: the device was
  /// incorrect on an item at least one other device got right — the
  /// env_incorrect side of a FlipLedger entry, so the per-device flip
  /// rate stays recomputable from the flip ledger.
  void record_observation(int device, int item, bool correct, bool flipped);

  /// One delivered (or lost-in-delivery) shot: attempts consumed,
  /// whether it was lost, the modeled delivery latency and how many
  /// corruption events the link injected.
  void record_shot(int device, int item, int shot, int attempts, bool lost,
                   double latency_ms, int fault_events);

  /// A shot lost at the capture site (dropout / transient exhaustion —
  /// it never reached delivery). `retries` = capture attempts beyond
  /// the first.
  void record_capture_loss(int device, int item, int shot, int retries);

  /// Retries that recovered at the capture site (the shot itself will
  /// be counted when delivery records it, so only the retry count
  /// lands here).
  void record_retries(int device, int item, int count);

  /// One per-stage drift comparison against the reference device.
  void record_stage_drift(int device, int item, double psnr_db);

  /// The resilience policy quarantined `device` from `item` on.
  void record_quarantine(int device, int item);

  /// Whole-run coverage for one device (usable slots / total slots).
  void record_coverage(int device, long long usable, long long total);

  /// Canonical snapshot: devices ascending, windows ascending, latency
  /// quantiles over the sorted per-window sample multiset.
  FleetHealthSnapshot snapshot() const;

  /// FNV fingerprint over the full canonical snapshot (integer
  /// aggregates only — exactly the deterministic surface).
  std::uint64_t digest() const;

  /// Fold another registry (a per-shard instance) into this one.
  void merge(const DeviceHealthRegistry& other);

  /// Exact JSON serialization of the full registry state
  /// ("edgestab-telemetry-state-v1"): every bucket's integer aggregates
  /// including the raw latency multiset (canonically sorted), so a
  /// restored registry's digest(), snapshot() and future folds are
  /// bit-identical to the original. snapshot() cannot serve here — it
  /// collapses latency multisets to quantiles — and the service
  /// checkpoint needs mid-window exactness (a checkpoint may land with
  /// half a window's samples already folded).
  std::string serialize_state() const;

  /// Replace the registry contents from serialize_state() output;
  /// enabled() and the window width survive a malformed document but
  /// the contents are cleared. Returns false on malformed input.
  bool restore_state(const std::string& json);

  /// Cheap running alert estimate for the progress heartbeat:
  /// quarantines plus window buckets whose losses crossed
  /// kLiveLossAlertShots. Advisory only — never exported.
  std::int64_t live_alert_count() const {
    return live_alerts_.load(std::memory_order_relaxed);
  }

  bool empty() const;

  /// Drop all accumulated state; leaves enabled() untouched (mirrors
  /// DriftAuditor::clear so --repeats warm-ups can reset between runs).
  void clear();

 private:
  /// Integer-quantized per-(device, window) aggregates. Every fold is
  /// commutative + associative (see file comment).
  struct Bucket {
    long long observations = 0;
    long long flipped_items = 0;
    long long incorrect_items = 0;
    long long shots = 0;
    long long shots_lost = 0;
    long long retries = 0;
    long long fault_events = 0;
    std::vector<long long> latency_us;  ///< sorted at snapshot time
    long long drift_comparisons = 0;
    long long drift_psnr_mdb_sum = 0;
    long long drift_psnr_mdb_min = 0;  ///< valid when drift_comparisons > 0
    bool quarantined = false;
    int quarantine_item = -1;
    bool live_loss_flagged = false;
  };

  struct DeviceState {
    std::string label;
    long long coverage_usable = 0;
    long long coverage_slots = -1;
    std::map<int, Bucket> windows;
  };

  Bucket& bucket(int device, int item);
  void merge_bucket(Bucket& into, const Bucket& from);

  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> live_alerts_{0};
  int window_items_ = kDefaultWindowItems;
  std::map<int, DeviceState> devices_;
};

/// True when telemetry is compiled in AND the global registry is
/// enabled — the one-line guard every hook site uses.
inline bool telemetry_enabled() {
  if constexpr (!kTelemetryCompiledIn) return false;
  return DeviceHealthRegistry::global().enabled();
}

}  // namespace edgestab::obs
