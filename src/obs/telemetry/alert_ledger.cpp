#include "obs/telemetry/alert_ledger.h"

#include <algorithm>
#include <tuple>

#include "util/hashing.h"

namespace edgestab::obs {

namespace {

auto canonical_key(const Alert& a) {
  return std::tie(a.device, a.window, a.rule, a.item, a.metric);
}

}  // namespace

const char* alert_severity_name(AlertSeverity severity) {
  switch (severity) {
    case AlertSeverity::kWarning: return "warning";
    case AlertSeverity::kCritical: return "critical";
  }
  return "unknown";
}

void AlertLedger::record(Alert alert) {
  alerts_.push_back(std::move(alert));
  sorted_ = false;
}

void AlertLedger::merge(const AlertLedger& other) {
  if (&other == this) return;
  alerts_.insert(alerts_.end(), other.alerts_.begin(), other.alerts_.end());
  sorted_ = alerts_.empty();
}

void AlertLedger::ensure_sorted() const {
  if (sorted_) return;
  std::stable_sort(alerts_.begin(), alerts_.end(),
                   [](const Alert& a, const Alert& b) {
                     return canonical_key(a) < canonical_key(b);
                   });
  sorted_ = true;
}

const std::vector<Alert>& AlertLedger::alerts() const {
  ensure_sorted();
  return alerts_;
}

std::size_t AlertLedger::count(AlertSeverity severity) const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(), [severity](const Alert& a) {
        return a.severity == severity;
      }));
}

std::uint64_t AlertLedger::digest() const {
  ensure_sorted();
  Fingerprint fp;
  fp.add("edgestab-alert-ledger-v1");
  fp.add(static_cast<std::uint64_t>(alerts_.size()));
  for (const Alert& a : alerts_) {
    fp.add(a.rule);
    fp.add(a.metric);
    fp.add(static_cast<int>(a.severity));
    fp.add(a.device);
    fp.add(a.device_label);
    fp.add(a.window);
    fp.add(a.item_lo);
    fp.add(a.item_hi);
    fp.add(a.item);
    fp.add(a.value);
    fp.add(a.threshold);
    fp.add(a.baseline);
    fp.add(static_cast<std::int64_t>(a.numerator));
    fp.add(static_cast<std::int64_t>(a.denominator));
    fp.add(a.detail);
  }
  return fp.value();
}

}  // namespace edgestab::obs
