#include "obs/telemetry/fleet_report.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"
#include "util/hashing.h"

namespace edgestab::obs {

namespace {

bool write_text_file(const std::string& path, const std::string& doc) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[fleet] cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = written == doc.size() && std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "[fleet] short write to %s\n", path.c_str());
  return ok;
}

std::string fmt(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

const char* transition_level(HealthStatus to) {
  switch (to) {
    case HealthStatus::kQuarantined: return "critical";
    case HealthStatus::kDegraded: return "warning";
    case HealthStatus::kHealthy: return "info";
  }
  return "info";
}

void emit_window(JsonWriter& w, const DeviceWindowStats& s) {
  w.begin_object();
  w.key("window").value(s.window);
  w.key("item_lo").value(s.item_lo);
  w.key("item_hi").value(s.item_hi);
  w.key("observations").value(static_cast<std::int64_t>(s.observations));
  w.key("flipped_items").value(static_cast<std::int64_t>(s.flipped_items));
  w.key("incorrect_items").value(static_cast<std::int64_t>(s.incorrect_items));
  w.key("flip_rate").value(s.flip_rate);
  w.key("shots").value(static_cast<std::int64_t>(s.shots));
  w.key("shots_lost").value(static_cast<std::int64_t>(s.shots_lost));
  w.key("retries").value(static_cast<std::int64_t>(s.retries));
  w.key("fault_events").value(static_cast<std::int64_t>(s.fault_events));
  w.key("loss_rate").value(s.loss_rate);
  w.key("retry_rate").value(s.retry_rate);
  w.key("latency_p50_ms").value(s.latency_p50_ms);
  w.key("latency_p99_ms").value(s.latency_p99_ms);
  w.key("latency_max_ms").value(s.latency_max_ms);
  w.key("drift_comparisons")
      .value(static_cast<std::int64_t>(s.drift_comparisons));
  w.key("drift_psnr_db_mean").value(s.drift_psnr_db_mean);
  w.key("drift_psnr_db_min").value(s.drift_psnr_db_min);
  w.key("quarantined").value(s.quarantined);
  w.key("quarantine_item").value(s.quarantine_item);
  w.end_object();
}

void emit_alert_fields(JsonWriter& w, const Alert& a) {
  w.key("rule").value(a.rule);
  w.key("metric").value(a.metric);
  w.key("severity").value(alert_severity_name(a.severity));
  w.key("device").value(a.device);
  w.key("device_label").value(a.device_label);
  w.key("window").value(a.window);
  w.key("item_lo").value(a.item_lo);
  w.key("item_hi").value(a.item_hi);
  w.key("item").value(a.item);
  w.key("value").value(a.value);
  w.key("threshold").value(a.threshold);
  w.key("baseline").value(a.baseline);
  w.key("numerator").value(static_cast<std::int64_t>(a.numerator));
  w.key("denominator").value(static_cast<std::int64_t>(a.denominator));
  w.key("detail").value(a.detail);
}

// Tiny inline-SVG bar sparkline over a window series; `bad` colors a
// bar red. Values are clamped to [0, 1] of `scale`.
std::string sparkline(const std::vector<double>& values,
                      const std::vector<bool>& bad, double scale,
                      const std::vector<std::string>& titles) {
  const int bar_w = 7, gap = 2, h = 22;
  const int width =
      static_cast<int>(values.size()) * (bar_w + gap) + gap;
  std::string svg = "<svg class=spark width=\"" + std::to_string(width) +
                    "\" height=\"" + std::to_string(h + 2) + "\">";
  for (std::size_t i = 0; i < values.size(); ++i) {
    double v = scale > 0.0 ? values[i] / scale : 0.0;
    v = std::clamp(v, 0.0, 1.0);
    const int bh = std::max(1, static_cast<int>(v * h + 0.5));
    const int x = gap + static_cast<int>(i) * (bar_w + gap);
    svg += "<rect x=\"" + std::to_string(x) + "\" y=\"" +
           std::to_string(1 + h - bh) + "\" width=\"" + std::to_string(bar_w) +
           "\" height=\"" + std::to_string(bh) + "\" fill=\"" +
           (i < bad.size() && bad[i] ? "#c0392b" : "#4a76a8") + "\">";
    if (i < titles.size()) {
      svg += "<title>" + html_escape(titles[i]) + "</title>";
    }
    svg += "</rect>";
  }
  svg += "</svg>";
  return svg;
}

const char* status_css(HealthStatus s) {
  switch (s) {
    case HealthStatus::kHealthy: return "ok";
    case HealthStatus::kDegraded: return "warn";
    case HealthStatus::kQuarantined: return "crit";
  }
  return "ok";
}

bool parse_health_status(const std::string& name, HealthStatus* out) {
  if (name == "healthy") *out = HealthStatus::kHealthy;
  else if (name == "degraded") *out = HealthStatus::kDegraded;
  else if (name == "quarantined") *out = HealthStatus::kQuarantined;
  else return false;
  return true;
}

bool parse_severity(const std::string& name, AlertSeverity* out) {
  if (name == "warning") *out = AlertSeverity::kWarning;
  else if (name == "critical") *out = AlertSeverity::kCritical;
  else return false;
  return true;
}

long long ll_or(const JsonValue& obj, const char* key, long long fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_number()
             ? static_cast<long long>(v->number)
             : fallback;
}

int int_or(const JsonValue& obj, const char* key, int fallback) {
  return static_cast<int>(ll_or(obj, key, fallback));
}

double num_or(const JsonValue& obj, const char* key, double fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->number_or(fallback) : fallback;
}

std::string str_or(const JsonValue& obj, const char* key,
                   const std::string& fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr ? v->string_or(fallback) : fallback;
}

bool bool_or(const JsonValue& obj, const char* key, bool fallback) {
  const JsonValue* v = obj.find(key);
  return v != nullptr && v->is_bool() ? v->boolean : fallback;
}

}  // namespace

std::string fleet_json(const FleetHealthReport& report,
                       const std::string& bench_name) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("edgestab-fleet-v1");
  w.key("bench").value(bench_name);
  w.key("window_items").value(report.fleet.window_items);
  w.key("alerts_total").value(static_cast<std::int64_t>(report.alerts_total));
  w.key("alerts_critical")
      .value(static_cast<std::int64_t>(report.alerts_critical));
  w.key("devices_degraded")
      .value(static_cast<std::int64_t>(report.devices_degraded));
  w.key("devices_quarantined")
      .value(static_cast<std::int64_t>(report.devices_quarantined));
  w.key("alert_digest").value(hex_digest(report.alerts.digest()));

  w.key("devices");
  w.begin_array();
  for (const DeviceHealth& d : report.fleet.devices) {
    w.begin_object();
    w.key("device").value(d.device);
    w.key("label").value(d.label);
    w.key("status").value(health_status_name(d.status));
    w.key("observations").value(static_cast<std::int64_t>(d.observations));
    w.key("flipped_items").value(static_cast<std::int64_t>(d.flipped_items));
    w.key("incorrect_items")
        .value(static_cast<std::int64_t>(d.incorrect_items));
    w.key("flip_rate").value(d.flip_rate);
    w.key("shots").value(static_cast<std::int64_t>(d.shots));
    w.key("shots_lost").value(static_cast<std::int64_t>(d.shots_lost));
    w.key("retries").value(static_cast<std::int64_t>(d.retries));
    w.key("fault_events").value(static_cast<std::int64_t>(d.fault_events));
    w.key("latency_p50_ms").value(d.latency_p50_ms);
    w.key("latency_p99_ms").value(d.latency_p99_ms);
    w.key("drift_comparisons")
        .value(static_cast<std::int64_t>(d.drift_comparisons));
    w.key("drift_psnr_db_mean").value(d.drift_psnr_db_mean);
    w.key("coverage_usable").value(static_cast<std::int64_t>(d.coverage_usable));
    w.key("coverage_slots").value(static_cast<std::int64_t>(d.coverage_slots));
    w.key("windows");
    w.begin_array();
    for (const DeviceWindowStats& s : d.windows) emit_window(w, s);
    w.end_array();
    w.key("transitions");
    w.begin_array();
    for (const StatusTransition& t : d.transitions) {
      w.begin_object();
      w.key("window").value(t.window);
      w.key("item_lo").value(t.item_lo);
      w.key("from").value(health_status_name(t.from));
      w.key("to").value(health_status_name(t.to));
      w.key("reason").value(t.reason);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("alerts");
  w.begin_array();
  for (const Alert& a : report.alerts.alerts()) {
    w.begin_object();
    emit_alert_fields(w, a);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.take();
}

std::string events_jsonl(const FleetHealthReport& report,
                         const std::string& bench_name) {
  std::string out;
  for (const Alert& a : report.alerts.alerts()) {
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("edgestab-events-v1");
    w.key("bench").value(bench_name);
    w.key("type").value("alert");
    w.key("level").value(alert_severity_name(a.severity));
    emit_alert_fields(w, a);
    w.end_object();
    out += w.take();
    out += '\n';
  }
  for (const DeviceHealth& d : report.fleet.devices) {
    for (const StatusTransition& t : d.transitions) {
      JsonWriter w;
      w.begin_object();
      w.key("schema").value("edgestab-events-v1");
      w.key("bench").value(bench_name);
      w.key("type").value("status");
      w.key("level").value(transition_level(t.to));
      w.key("device").value(d.device);
      w.key("device_label").value(d.label);
      w.key("window").value(t.window);
      w.key("item_lo").value(t.item_lo);
      w.key("from").value(health_status_name(t.from));
      w.key("to").value(health_status_name(t.to));
      w.key("reason").value(t.reason);
      w.end_object();
      out += w.take();
      out += '\n';
    }
  }
  return out;
}

std::string fleet_html(const FleetHealthReport& report,
                       const std::string& bench_name) {
  std::string html;
  html +=
      "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n"
      "<title>fleet health: " +
      html_escape(bench_name) + "</title>\n<style>\n";
  html +=
      "body{font:14px/1.45 system-ui,sans-serif;margin:2em;color:#222}\n"
      "table{border-collapse:collapse;margin:0.7em 0}\n"
      "th,td{border:1px solid #bbb;padding:4px 10px;text-align:right}\n"
      "th{background:#f0f0f0}td.l,th.l{text-align:left}\n"
      "h2{margin-top:1.6em}.small{color:#666;font-size:12px}\n"
      ".badge{display:inline-block;padding:1px 8px;border-radius:9px;"
      "color:#fff;font-size:12px}\n"
      ".badge.ok{background:#2d7d46}.badge.warn{background:#c77f1a}"
      ".badge.crit{background:#c0392b}\n"
      ".spark{vertical-align:middle}\n";
  html += "</style></head><body>\n";
  html += "<h1>Fleet health &mdash; " + html_escape(bench_name) + "</h1>\n";
  html += "<p class=small>" +
          std::to_string(report.fleet.devices.size()) + " devices &middot; " +
          std::to_string(report.alerts_total) + " alerts (" +
          std::to_string(report.alerts_critical) + " critical) &middot; " +
          std::to_string(report.devices_degraded) + " degraded &middot; " +
          std::to_string(report.devices_quarantined) +
          " quarantined &middot; window = " +
          std::to_string(report.fleet.window_items) + " items</p>\n";

  // --- Per-device health rows --------------------------------------------
  html += "<h2>Devices</h2>\n<table id=\"devices\">\n";
  html +=
      "<tr><th class=l>device</th><th class=l>status</th><th>obs</th>"
      "<th>flips</th><th>flip rate</th><th class=l>flips/window</th>"
      "<th>shots</th><th>lost</th><th class=l>losses/window</th>"
      "<th>retries</th><th>p50 ms</th><th>p99 ms</th><th>drift dB</th>"
      "<th>coverage</th></tr>\n";
  for (const DeviceHealth& d : report.fleet.devices) {
    std::vector<double> flips, losses;
    std::vector<bool> bad;
    std::vector<std::string> flip_titles, loss_titles;
    for (const DeviceWindowStats& s : d.windows) {
      flips.push_back(s.flip_rate);
      losses.push_back(s.loss_rate);
      bad.push_back(s.quarantined);
      const std::string span = "items " + std::to_string(s.item_lo) + "-" +
                               std::to_string(s.item_hi - 1);
      flip_titles.push_back(span + ": " + std::to_string(s.flipped_items) +
                            "/" + std::to_string(s.observations) + " flipped");
      loss_titles.push_back(span + ": " + std::to_string(s.shots_lost) + "/" +
                            std::to_string(s.shots) + " lost");
    }
    html += "<tr><td class=l>" + html_escape(d.label) + "</td>";
    html += "<td class=l><span class=\"badge ";
    html += status_css(d.status);
    html += "\">";
    html += health_status_name(d.status);
    html += "</span></td>";
    html += "<td>" + std::to_string(d.observations) + "</td>";
    html += "<td>" + std::to_string(d.flipped_items) + "</td>";
    html += "<td>" + fmt(100.0 * d.flip_rate, 1) + "%</td>";
    html += "<td class=l>" + sparkline(flips, bad, 1.0, flip_titles) + "</td>";
    html += "<td>" + std::to_string(d.shots) + "</td>";
    html += "<td>" + std::to_string(d.shots_lost) + "</td>";
    html +=
        "<td class=l>" + sparkline(losses, bad, 1.0, loss_titles) + "</td>";
    html += "<td>" + std::to_string(d.retries) + "</td>";
    html += "<td>" + fmt(d.latency_p50_ms, 1) + "</td>";
    html += "<td>" + fmt(d.latency_p99_ms, 1) + "</td>";
    html += "<td>" +
            (d.drift_comparisons > 0 ? fmt(d.drift_psnr_db_mean, 1)
                                     : std::string("&mdash;")) +
            "</td>";
    html += "<td>" +
            (d.coverage_slots >= 0
                 ? std::to_string(d.coverage_usable) + "/" +
                       std::to_string(d.coverage_slots)
                 : std::string("&mdash;")) +
            "</td></tr>\n";
  }
  html += "</table>\n";

  // --- Status timeline ----------------------------------------------------
  bool any_transition = false;
  for (const DeviceHealth& d : report.fleet.devices) {
    any_transition = any_transition || !d.transitions.empty();
  }
  if (any_transition) {
    html += "<h2>Status timeline</h2>\n<table id=\"timeline\">\n";
    html +=
        "<tr><th class=l>device</th><th>window</th><th>from item</th>"
        "<th class=l>transition</th><th class=l>reason</th></tr>\n";
    for (const DeviceHealth& d : report.fleet.devices) {
      for (const StatusTransition& t : d.transitions) {
        html += "<tr><td class=l>" + html_escape(d.label) + "</td>";
        html += "<td>" + std::to_string(t.window) + "</td>";
        html += "<td>" + std::to_string(t.item_lo) + "</td>";
        html += "<td class=l>";
        html += health_status_name(t.from);
        html += " &rarr; <span class=\"badge ";
        html += status_css(t.to);
        html += "\">";
        html += health_status_name(t.to);
        html += "</span></td>";
        html += "<td class=l>" + html_escape(t.reason) + "</td></tr>\n";
      }
    }
    html += "</table>\n";
  }

  // --- Alert timeline -----------------------------------------------------
  html += "<h2>Alerts</h2>\n";
  if (report.alerts.empty()) {
    html += "<p class=small>No alerts fired.</p>\n";
  } else {
    html += "<table id=\"alerts\">\n";
    html +=
        "<tr><th class=l>severity</th><th class=l>rule</th>"
        "<th class=l>device</th><th>window</th><th>items</th>"
        "<th>value</th><th>threshold</th><th class=l>detail</th></tr>\n";
    for (const Alert& a : report.alerts.alerts()) {
      html += "<tr><td class=l><span class=\"badge ";
      html += a.severity == AlertSeverity::kCritical ? "crit" : "warn";
      html += "\">";
      html += alert_severity_name(a.severity);
      html += "</span></td>";
      html += "<td class=l>" + html_escape(a.rule) + "</td>";
      html += "<td class=l>" + html_escape(a.device_label) + "</td>";
      html += "<td>" + std::to_string(a.window) + "</td>";
      html += "<td>" + std::to_string(a.item_lo) + "-" +
              std::to_string(a.item_hi - 1) + "</td>";
      html += "<td>" + fmt(a.value, 3) + "</td>";
      html += "<td>" + fmt(a.threshold, 3) + "</td>";
      html += "<td class=l>" + html_escape(a.detail) + "</td></tr>\n";
    }
    html += "</table>\n";
  }

  html += "</body></html>\n";
  return html;
}

std::string fleet_text(const FleetHealthReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-28s %-11s %6s %6s %7s %6s %5s %6s %8s %8s %9s\n", "device",
                "status", "obs", "flips", "flip%", "shots", "lost", "retry",
                "p50 ms", "p99 ms", "coverage");
  out += line;
  for (const DeviceHealth& d : report.fleet.devices) {
    std::string coverage = d.coverage_slots >= 0
                               ? std::to_string(d.coverage_usable) + "/" +
                                     std::to_string(d.coverage_slots)
                               : std::string("-");
    std::snprintf(line, sizeof(line),
                  "%-28.28s %-11s %6lld %6lld %6.1f%% %6lld %5lld %6lld "
                  "%8.1f %8.1f %9s\n",
                  d.label.c_str(), health_status_name(d.status),
                  d.observations, d.flipped_items, 100.0 * d.flip_rate,
                  d.shots, d.shots_lost, d.retries, d.latency_p50_ms,
                  d.latency_p99_ms, coverage.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%lld alerts (%lld critical), %lld degraded, %lld "
                "quarantined of %zu devices\n",
                report.alerts_total, report.alerts_critical,
                report.devices_degraded, report.devices_quarantined,
                report.fleet.devices.size());
  out += line;
  for (const Alert& a : report.alerts.alerts()) {
    std::snprintf(line, sizeof(line), "  [%s] %s: %s w%d (items %d-%d): %s\n",
                  alert_severity_name(a.severity), a.rule.c_str(),
                  a.device_label.c_str(), a.window, a.item_lo, a.item_hi - 1,
                  a.detail.c_str());
    out += line;
  }
  return out;
}

bool write_fleet_report(const FleetHealthReport& report,
                        const std::string& bench_name, const std::string& dir,
                        RunManifest* manifest) {
  const std::string json = fleet_json(report, bench_name);
  const std::string events = events_jsonl(report, bench_name);
  const std::string json_file = bench_name + ".fleet.json";
  const std::string html_file = bench_name + ".fleet.html";
  const std::string events_file = bench_name + ".events.jsonl";
  bool ok = write_text_file(dir + "/" + json_file, json);
  ok = write_text_file(dir + "/" + html_file,
                       fleet_html(report, bench_name)) &&
       ok;
  ok = write_text_file(dir + "/" + events_file, events) && ok;
  if (ok) {
    std::printf("[fleet] %s/%s + %s + %s (%lld alerts)\n", dir.c_str(),
                json_file.c_str(), html_file.c_str(), events_file.c_str(),
                report.alerts_total);
  }
  if (manifest != nullptr) {
    manifest->add_digest("alert_ledger", report.alerts.digest());
    manifest->add_digest("fleet_report", fnv1a64(json));
    manifest->add_digest("event_log", fnv1a64(events));
    manifest->set_field("telemetry_alerts_total",
                        static_cast<double>(report.alerts_total));
    manifest->set_field("telemetry_alerts_critical",
                        static_cast<double>(report.alerts_critical));
    manifest->set_field("telemetry_devices_degraded",
                        static_cast<double>(report.devices_degraded));
    manifest->set_field("telemetry_devices_quarantined",
                        static_cast<double>(report.devices_quarantined));
    if (ok) {
      manifest->add_artifact(json_file);
      manifest->add_artifact(html_file);
      manifest->add_artifact(events_file);
    }
  }
  return ok;
}

bool parse_fleet(const JsonValue& doc, FleetDoc* out, std::string* error) {
  const auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!doc.is_object()) return fail("fleet document is not an object");
  if (str_or(doc, "schema", "") != "edgestab-fleet-v1") {
    return fail("not an edgestab-fleet-v1 document");
  }
  FleetDoc parsed;
  parsed.bench = str_or(doc, "bench", "");
  FleetHealthReport& report = parsed.report;
  report.fleet.window_items = int_or(doc, "window_items", 0);
  report.alerts_total = ll_or(doc, "alerts_total", 0);
  report.alerts_critical = ll_or(doc, "alerts_critical", 0);
  report.devices_degraded = ll_or(doc, "devices_degraded", 0);
  report.devices_quarantined = ll_or(doc, "devices_quarantined", 0);

  const JsonValue* devices = doc.find("devices");
  if (devices == nullptr || !devices->is_array()) {
    return fail("fleet document has no devices array");
  }
  for (const JsonValue& dv : devices->items) {
    if (!dv.is_object()) return fail("device entry is not an object");
    DeviceHealth d;
    d.device = int_or(dv, "device", -1);
    d.label = str_or(dv, "label", "");
    if (!parse_health_status(str_or(dv, "status", "healthy"), &d.status)) {
      return fail("device " + d.label + " has an unknown status");
    }
    d.observations = ll_or(dv, "observations", 0);
    d.flipped_items = ll_or(dv, "flipped_items", 0);
    d.incorrect_items = ll_or(dv, "incorrect_items", 0);
    d.flip_rate = num_or(dv, "flip_rate", 0.0);
    d.shots = ll_or(dv, "shots", 0);
    d.shots_lost = ll_or(dv, "shots_lost", 0);
    d.retries = ll_or(dv, "retries", 0);
    d.fault_events = ll_or(dv, "fault_events", 0);
    d.latency_p50_ms = num_or(dv, "latency_p50_ms", 0.0);
    d.latency_p99_ms = num_or(dv, "latency_p99_ms", 0.0);
    d.drift_comparisons = ll_or(dv, "drift_comparisons", 0);
    d.drift_psnr_db_mean = num_or(dv, "drift_psnr_db_mean", 0.0);
    d.coverage_usable = ll_or(dv, "coverage_usable", 0);
    d.coverage_slots = ll_or(dv, "coverage_slots", -1);
    if (const JsonValue* windows = dv.find("windows");
        windows != nullptr && windows->is_array()) {
      for (const JsonValue& wv : windows->items) {
        if (!wv.is_object()) return fail("window entry is not an object");
        DeviceWindowStats s;
        s.window = int_or(wv, "window", 0);
        s.item_lo = int_or(wv, "item_lo", 0);
        s.item_hi = int_or(wv, "item_hi", 0);
        s.observations = ll_or(wv, "observations", 0);
        s.flipped_items = ll_or(wv, "flipped_items", 0);
        s.incorrect_items = ll_or(wv, "incorrect_items", 0);
        s.flip_rate = num_or(wv, "flip_rate", 0.0);
        s.shots = ll_or(wv, "shots", 0);
        s.shots_lost = ll_or(wv, "shots_lost", 0);
        s.retries = ll_or(wv, "retries", 0);
        s.fault_events = ll_or(wv, "fault_events", 0);
        s.loss_rate = num_or(wv, "loss_rate", 0.0);
        s.retry_rate = num_or(wv, "retry_rate", 0.0);
        s.latency_p50_ms = num_or(wv, "latency_p50_ms", 0.0);
        s.latency_p99_ms = num_or(wv, "latency_p99_ms", 0.0);
        s.latency_max_ms = num_or(wv, "latency_max_ms", 0.0);
        s.drift_comparisons = ll_or(wv, "drift_comparisons", 0);
        s.drift_psnr_db_mean = num_or(wv, "drift_psnr_db_mean", 0.0);
        s.drift_psnr_db_min = num_or(wv, "drift_psnr_db_min", 0.0);
        s.quarantined = bool_or(wv, "quarantined", false);
        s.quarantine_item = int_or(wv, "quarantine_item", -1);
        d.windows.push_back(std::move(s));
      }
    }
    if (const JsonValue* transitions = dv.find("transitions");
        transitions != nullptr && transitions->is_array()) {
      for (const JsonValue& tv : transitions->items) {
        if (!tv.is_object()) return fail("transition entry is not an object");
        StatusTransition t;
        t.window = int_or(tv, "window", 0);
        t.item_lo = int_or(tv, "item_lo", 0);
        if (!parse_health_status(str_or(tv, "from", "healthy"), &t.from) ||
            !parse_health_status(str_or(tv, "to", "healthy"), &t.to)) {
          return fail("transition has an unknown status");
        }
        t.reason = str_or(tv, "reason", "");
        d.transitions.push_back(std::move(t));
      }
    }
    report.fleet.devices.push_back(std::move(d));
  }

  if (const JsonValue* alerts = doc.find("alerts");
      alerts != nullptr && alerts->is_array()) {
    for (const JsonValue& av : alerts->items) {
      if (!av.is_object()) return fail("alert entry is not an object");
      Alert a;
      a.rule = str_or(av, "rule", "");
      a.metric = str_or(av, "metric", "");
      if (!parse_severity(str_or(av, "severity", "warning"), &a.severity)) {
        return fail("alert " + a.rule + " has an unknown severity");
      }
      a.device = int_or(av, "device", -1);
      a.device_label = str_or(av, "device_label", "");
      a.window = int_or(av, "window", -1);
      a.item_lo = int_or(av, "item_lo", 0);
      a.item_hi = int_or(av, "item_hi", 0);
      a.item = int_or(av, "item", -1);
      a.value = num_or(av, "value", 0.0);
      a.threshold = num_or(av, "threshold", 0.0);
      a.baseline = num_or(av, "baseline", 0.0);
      a.numerator = ll_or(av, "numerator", 0);
      a.denominator = ll_or(av, "denominator", 0);
      a.detail = str_or(av, "detail", "");
      report.alerts.record(std::move(a));
    }
  }
  *out = std::move(parsed);
  return true;
}

}  // namespace edgestab::obs
