#include "obs/compare.h"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <sstream>

namespace edgestab::obs {

namespace {

std::string fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buf[512];
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  return buf;
}

std::string html_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return std::isnan(v) ? "nan" : "inf";
  return fmt("%.6g", v);
}

const BaselineMetric* find_metric(const std::vector<BaselineMetric>& metrics,
                                  const std::string& name) {
  for (const BaselineMetric& m : metrics)
    if (m.name == name) return &m;
  return nullptr;
}

MetricVerdict judged(const BaselineMetric& base, Verdict verdict,
                     std::string reason) {
  MetricVerdict v;
  v.name = base.name;
  v.kind = base.kind;
  v.verdict = verdict;
  v.baseline = base.median;
  v.baseline_text = base.text;
  v.reason = std::move(reason);
  return v;
}

Verdict directional(Direction direction, double delta) {
  switch (direction) {
    case Direction::kLowerIsBetter:
      return delta < 0.0 ? Verdict::kImproved : Verdict::kRegressed;
    case Direction::kHigherIsBetter:
      return delta > 0.0 ? Verdict::kImproved : Verdict::kRegressed;
    case Direction::kExact:
      return Verdict::kRegressed;  // any drift from an exact target
  }
  return Verdict::kRegressed;
}

}  // namespace

const char* verdict_name(Verdict verdict) {
  switch (verdict) {
    case Verdict::kImproved: return "improved";
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kIncomparable: return "incomparable";
  }
  return "unknown";
}

int CompareReport::count(Verdict verdict) const {
  int n = 0;
  for (const MetricVerdict& v : verdicts)
    if (v.verdict == verdict) ++n;
  return n;
}

CompareReport compare_run(const RunRecord& record, const Baseline& baseline,
                          const CompareOptions& options) {
  CompareReport report;
  report.bench = record.bench;

  if (record.bench != baseline.bench) {
    report.provenance_comparable = false;
    report.provenance_notes.push_back(
        fmt("bench name differs: run '%s' vs baseline '%s'",
            record.bench.c_str(), baseline.bench.c_str()));
  }
  if (record.has_seed != baseline.has_seed ||
      (record.has_seed && record.seed != baseline.seed)) {
    report.provenance_comparable = false;
    report.provenance_notes.push_back(
        fmt("seed differs: run %s vs baseline %s",
            record.has_seed ? std::to_string(record.seed).c_str() : "(none)",
            baseline.has_seed ? std::to_string(baseline.seed).c_str()
                              : "(none)"));
  }
  if (record.fault_plan != baseline.fault_plan) {
    report.provenance_comparable = false;
    report.provenance_notes.push_back(
        fmt("fault plan differs: run '%s' vs baseline '%s'",
            record.fault_plan.c_str(), baseline.fault_plan.c_str()));
  }
  for (const auto& [name, hex] : baseline.digests) {
    const std::string* current = nullptr;
    for (const auto& [rname, rhex] : record.digests)
      if (rname == name) current = &rhex;
    if (current == nullptr) {
      report.provenance_comparable = false;
      report.provenance_notes.push_back(
          fmt("provenance digest '%s' missing from run", name.c_str()));
    } else if (*current != hex) {
      report.provenance_comparable = false;
      report.provenance_notes.push_back(
          fmt("provenance digest '%s' differs: %s vs %s", name.c_str(),
              current->c_str(), hex.c_str()));
    }
  }
  // Results are bit-deterministic at any thread count in this codebase
  // (PR 3's reduction guarantee), so a thread-count change only voids
  // the perf comparison, not correctness or digests.
  if (record.threads != baseline.threads) {
    report.perf_comparable = false;
    report.provenance_notes.push_back(
        fmt("thread count differs (run %d vs baseline %d): "
            "perf metrics incomparable",
            record.threads, baseline.threads));
  }

  // Collapse the record's repeats exactly the way baselines are built so
  // the comparison is median-to-median.
  Baseline current = baseline_from_record(record);

  for (const BaselineMetric& base : baseline.metrics) {
    const BaselineMetric* cur = find_metric(current.metrics, base.name);
    if (cur == nullptr) {
      report.verdicts.push_back(judged(base, Verdict::kIncomparable,
                                       "metric absent from current run"));
      continue;
    }
    if (!report.provenance_comparable) {
      MetricVerdict v = judged(base, Verdict::kIncomparable,
                               "provenance mismatch; different experiment");
      v.current = cur->median;
      v.current_text = cur->text;
      report.verdicts.push_back(std::move(v));
      continue;
    }

    MetricVerdict v;
    v.name = base.name;
    v.kind = base.kind;
    v.baseline = base.median;
    v.baseline_text = base.text;
    v.current = cur->median;
    v.current_text = cur->text;

    switch (base.kind) {
      case MetricKind::kDigest: {
        if (cur->text == base.text) {
          v.verdict = Verdict::kUnchanged;
          v.reason = "digest matches";
        } else {
          v.verdict = Verdict::kRegressed;
          v.reason = "digest differs under matching provenance";
        }
        break;
      }
      case MetricKind::kPerf: {
        if (!report.perf_comparable) {
          v.verdict = Verdict::kIncomparable;
          v.reason = "thread count differs";
          break;
        }
        if (!std::isfinite(cur->median) || !std::isfinite(base.median)) {
          v.verdict = Verdict::kIncomparable;
          v.reason = "non-finite value";
          break;
        }
        v.delta = cur->median - base.median;
        v.band = std::max({options.perf_rel_tol * std::fabs(base.median),
                           options.perf_mad_k * base.mad, base.abs_floor});
        if (std::fabs(v.delta) <= v.band) {
          v.verdict = Verdict::kUnchanged;
          v.reason = "within noise band";
        } else {
          v.verdict = directional(base.direction, v.delta);
          v.reason = fmt("outside band by %s", num(std::fabs(v.delta) -
                                                   v.band).c_str());
        }
        break;
      }
      case MetricKind::kCorrectness: {
        if (!std::isfinite(cur->median) || !std::isfinite(base.median)) {
          v.verdict = Verdict::kIncomparable;
          v.reason = "non-finite value";
          break;
        }
        v.delta = cur->median - base.median;
        v.band = std::max({base.epsilon, cur->epsilon,
                           options.default_epsilon});
        if (std::fabs(v.delta) <= v.band) {
          v.verdict = Verdict::kUnchanged;
          v.reason = "within epsilon";
        } else {
          v.verdict = directional(base.direction, v.delta);
          v.reason = "outside epsilon";
        }
        break;
      }
    }
    report.verdicts.push_back(std::move(v));
  }

  for (const BaselineMetric& cur : current.metrics) {
    if (find_metric(baseline.metrics, cur.name) != nullptr) continue;
    MetricVerdict v;
    v.name = cur.name;
    v.kind = cur.kind;
    v.verdict = Verdict::kIncomparable;
    v.current = cur.median;
    v.current_text = cur.text;
    v.reason = "metric absent from baseline";
    report.verdicts.push_back(std::move(v));
  }
  return report;
}

std::string compare_report_text(const CompareReport& report) {
  std::ostringstream out;
  out << "bench " << report.bench << "\n";
  for (const std::string& note : report.provenance_notes)
    out << "  note: " << note << "\n";
  out << fmt("  %-12s %-12s %-28s %12s %12s %12s  %s\n", "verdict", "kind",
             "metric", "current", "baseline", "band", "reason");
  for (const MetricVerdict& v : report.verdicts) {
    std::string current = v.kind == MetricKind::kDigest
                              ? v.current_text
                              : num(v.current);
    std::string baseline = v.kind == MetricKind::kDigest
                               ? v.baseline_text
                               : num(v.baseline);
    out << fmt("  %-12s %-12s %-28s %12s %12s %12s  %s\n",
               verdict_name(v.verdict), metric_kind_name(v.kind),
               v.name.c_str(), current.c_str(), baseline.c_str(),
               num(v.band).c_str(), v.reason.c_str());
  }
  out << fmt("  summary: %d improved, %d unchanged, %d regressed, "
             "%d incomparable\n",
             report.count(Verdict::kImproved),
             report.count(Verdict::kUnchanged),
             report.count(Verdict::kRegressed),
             report.count(Verdict::kIncomparable));
  return out.str();
}

std::string compare_report_json(const CompareReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("edgestab-compare-v1");
  w.key("bench").value(report.bench);
  w.key("provenance_comparable").value(report.provenance_comparable);
  w.key("perf_comparable").value(report.perf_comparable);
  w.key("provenance_notes");
  w.begin_array();
  for (const std::string& note : report.provenance_notes) w.value(note);
  w.end_array();
  w.key("verdicts");
  w.begin_array();
  for (const MetricVerdict& v : report.verdicts) {
    w.begin_object();
    w.key("name").value(v.name);
    w.key("kind").value(metric_kind_name(v.kind));
    w.key("verdict").value(verdict_name(v.verdict));
    if (v.kind == MetricKind::kDigest) {
      w.key("current").value(v.current_text);
      w.key("baseline").value(v.baseline_text);
    } else {
      w.key("current").value(v.current);
      w.key("baseline").value(v.baseline);
      w.key("delta").value(v.delta);
      w.key("band").value(v.band);
    }
    w.key("reason").value(v.reason);
    w.end_object();
  }
  w.end_array();
  w.key("counts");
  w.begin_object();
  w.key("improved").value(report.count(Verdict::kImproved));
  w.key("unchanged").value(report.count(Verdict::kUnchanged));
  w.key("regressed").value(report.count(Verdict::kRegressed));
  w.key("incomparable").value(report.count(Verdict::kIncomparable));
  w.end_object();
  w.end_object();
  return w.take();
}

namespace {

struct TrendPoint {
  double value = 0.0;
  bool regressed = false;
  std::string git_sha;
};

/// One metric's trajectory across the archived runs of a bench.
using TrendSeries = std::map<std::string, std::vector<TrendPoint>>;

std::string svg_sparkline(const std::string& metric,
                          const std::vector<TrendPoint>& points) {
  constexpr double kW = 640.0, kH = 140.0, kPad = 24.0;
  double lo = points.front().value, hi = points.front().value;
  for (const TrendPoint& p : points) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  if (hi - lo < 1e-12) {
    double bump = std::max(std::fabs(hi) * 0.05, 1e-6);
    lo -= bump;
    hi += bump;
  }
  auto x_of = [&](std::size_t i) {
    if (points.size() == 1) return kW / 2.0;
    return kPad + (kW - 2.0 * kPad) * static_cast<double>(i) /
                      static_cast<double>(points.size() - 1);
  };
  auto y_of = [&](double v) {
    return kH - kPad - (kH - 2.0 * kPad) * (v - lo) / (hi - lo);
  };

  std::ostringstream svg;
  svg << fmt("<svg viewBox=\"0 0 %g %g\" width=\"%g\" height=\"%g\">", kW,
             kH, kW, kH);
  svg << fmt("<text x=\"4\" y=\"14\" class=\"lbl\">%s</text>",
             html_escape(metric).c_str());
  svg << fmt("<text x=\"%g\" y=\"14\" class=\"lbl\" text-anchor=\"end\">"
             "min %s · max %s</text>",
             kW - 4.0, num(lo).c_str(), num(hi).c_str());
  if (points.size() > 1) {
    svg << "<polyline fill=\"none\" stroke=\"#4878a8\" stroke-width=\"1.5\" "
           "points=\"";
    for (std::size_t i = 0; i < points.size(); ++i)
      svg << fmt("%.1f,%.1f ", x_of(i), y_of(points[i].value));
    svg << "\"/>";
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const TrendPoint& p = points[i];
    svg << fmt("<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%s\" fill=\"%s\">"
               "<title>run %zu (%s): %s%s</title></circle>",
               x_of(i), y_of(p.value), p.regressed ? "5" : "3",
               p.regressed ? "#c23b3b" : "#4878a8", i + 1,
               html_escape(p.git_sha.substr(0, 12)).c_str(),
               num(p.value).c_str(),
               p.regressed ? " — regressed vs baseline" : "");
    svg << "\n";
  }
  svg << "</svg>";
  return svg.str();
}

}  // namespace

std::string trend_html(const std::vector<RunRecord>& records,
                       const std::vector<Baseline>& baselines) {
  // Group by bench, preserving archive (chronological) order within and
  // first-appearance order across benches.
  std::vector<std::string> bench_order;
  std::map<std::string, std::vector<const RunRecord*>> by_bench;
  for (const RunRecord& r : records) {
    if (by_bench.find(r.bench) == by_bench.end())
      bench_order.push_back(r.bench);
    by_bench[r.bench].push_back(&r);
  }

  std::ostringstream html;
  html << "<!doctype html><html><head><meta charset=\"utf-8\">"
          "<title>edgestab trend report</title><style>\n"
          "body{font-family:system-ui,sans-serif;margin:24px;"
          "color:#1c2733}\n"
          "h1{font-size:20px}h2{font-size:16px;border-bottom:1px solid "
          "#d7dde4;padding-bottom:4px;margin-top:28px}\n"
          ".lbl{font-size:11px;fill:#5a6673;font-family:monospace}\n"
          "svg{background:#f7f9fb;border:1px solid #e1e6ec;"
          "border-radius:4px;margin:6px 0;display:block}\n"
          ".meta{color:#5a6673;font-size:13px}\n"
          ".legend{font-size:12px;color:#5a6673;margin:8px 0}\n"
          ".dot{display:inline-block;width:9px;height:9px;"
          "border-radius:50%;margin:0 4px 0 10px}\n"
          "</style></head><body>\n";
  html << "<h1>edgestab cross-run trend report</h1>\n";
  html << fmt("<p class=\"meta\">%zu archived run(s) across %zu "
              "bench(es).</p>\n",
              records.size(), bench_order.size());
  html << "<p class=\"legend\"><span class=\"dot\" "
          "style=\"background:#4878a8\"></span>archived run"
          "<span class=\"dot\" style=\"background:#c23b3b\"></span>"
          "regressed vs committed baseline</p>\n";

  for (const std::string& bench : bench_order) {
    const std::vector<const RunRecord*>& runs = by_bench[bench];
    const Baseline* baseline = nullptr;
    for (const Baseline& b : baselines)
      if (b.bench == bench) baseline = &b;

    TrendSeries series;
    std::vector<std::string> series_order;
    auto push = [&](const std::string& name, double value,
                    bool regressed, const std::string& sha) {
      if (series.find(name) == series.end()) series_order.push_back(name);
      series[name].push_back({value, regressed, sha});
    };

    for (const RunRecord* run : runs) {
      // Collapse each run the same way baselines/comparisons do, then
      // pick up this run's verdicts so regressions mark the plot.
      Baseline collapsed = baseline_from_record(*run);
      std::map<std::string, Verdict> verdicts;
      if (baseline != nullptr) {
        CompareReport report = compare_run(*run, *baseline);
        for (const MetricVerdict& v : report.verdicts)
          verdicts[v.name] = v.verdict;
      }
      for (const BaselineMetric& m : collapsed.metrics) {
        if (m.kind == MetricKind::kDigest) continue;
        if (!std::isfinite(m.median)) continue;
        auto it = verdicts.find(m.name);
        bool regressed =
            it != verdicts.end() && it->second == Verdict::kRegressed;
        push(m.name, m.median, regressed, run->git_sha);
      }
    }

    html << fmt("<h2>%s</h2>\n", html_escape(bench).c_str());
    html << fmt("<p class=\"meta\">%zu run(s)%s</p>\n", runs.size(),
                baseline != nullptr ? "; baseline present"
                                    : "; no committed baseline");
    for (const std::string& name : series_order)
      html << svg_sparkline(name, series[name]) << "\n";
  }

  html << "</body></html>\n";
  return html.str();
}

}  // namespace edgestab::obs
