#include "runtime/task_context.h"

#include <atomic>

namespace edgestab::runtime {

namespace {

std::atomic<const TaskContextHooks*> g_task_hooks{nullptr};

}  // namespace

void set_task_context_hooks(const TaskContextHooks* hooks) {
  g_task_hooks.store(hooks, std::memory_order_release);
}

const TaskContextHooks* task_context_hooks() {
  return g_task_hooks.load(std::memory_order_acquire);
}

}  // namespace edgestab::runtime
