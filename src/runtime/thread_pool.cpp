#include "runtime/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task_context.h"
#include "util/check.h"

namespace edgestab::runtime {

namespace {

/// Set while a thread is executing chunks, so nested parallel regions
/// degrade to inline serial execution instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

}  // namespace

struct ThreadPool::Impl {
  // One parallel region at a time. Job fields are written by run_chunks
  // and read by workers only under `mu`; workers snapshot them at wake-up
  // and then claim chunks through the shared atomic cursor.
  std::mutex mu;
  std::condition_variable work_cv;  // workers wait here for a new job
  std::condition_variable done_cv;  // run_chunks waits here for drain
  std::uint64_t generation = 0;
  bool shutdown = false;

  std::size_t job_n = 0;
  std::size_t job_grain = 1;
  const std::function<void(std::size_t, std::size_t)>* job_body = nullptr;
  void* job_context = nullptr;  ///< captured submitter task context
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  int busy_workers = 0;
  std::exception_ptr error;

  std::vector<std::thread> workers;

  /// Claim and run chunks until the range is drained (or a chunk threw).
  void drain(std::size_t n, std::size_t grain,
             const std::function<void(std::size_t, std::size_t)>& body) {
    t_in_parallel_region = true;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      std::size_t begin = cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) break;
      std::size_t end = std::min(n, begin + grain);
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    t_in_parallel_region = false;
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      std::size_t n = 0, grain = 1;
      const std::function<void(std::size_t, std::size_t)>* body = nullptr;
      void* context = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] {
          return shutdown ||
                 (generation != seen_generation && job_body != nullptr);
        });
        if (shutdown) return;
        seen_generation = generation;
        n = job_n;
        grain = job_grain;
        body = job_body;
        context = job_context;
        ++busy_workers;
      }
      // Adopt the submitter's task context for the drain (profiler scope
      // attribution stays thread-invariant), then put the lane's own back.
      const TaskContextHooks* hooks = task_context_hooks();
      void* previous = nullptr;
      if (hooks != nullptr && hooks->install != nullptr)
        previous = hooks->install(context);
      drain(n, grain, *body);
      if (hooks != nullptr && hooks->restore != nullptr)
        hooks->restore(previous);
      {
        std::lock_guard<std::mutex> lock(mu);
        --busy_workers;
      }
      done_cv.notify_one();
    }
  }

  void start_workers(int count) {
    workers.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
      workers.emplace_back([this] { worker_loop(); });
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mu);
      shutdown = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  impl_->start_workers(threads < 1 ? 0 : threads - 1);
}

ThreadPool::~ThreadPool() { impl_->stop_workers(); }

int ThreadPool::threads() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::run_chunks(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  ES_CHECK(grain >= 1);

  // Serial fast paths: single-lane pool, a range that fits one chunk, or
  // a nested region (the caller is already a pool lane).
  if (impl_->workers.empty() || n <= grain || t_in_parallel_region) {
    bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    try {
      for (std::size_t begin = 0; begin < n; begin += grain)
        body(begin, std::min(n, begin + grain));
    } catch (...) {
      t_in_parallel_region = was_nested;
      throw;
    }
    t_in_parallel_region = was_nested;
    return;
  }

  const TaskContextHooks* hooks = task_context_hooks();
  void* context = hooks != nullptr && hooks->capture != nullptr
                      ? hooks->capture()
                      : nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    ES_CHECK_MSG(impl_->job_body == nullptr,
                 "ThreadPool::run_chunks: concurrent parallel regions on one "
                 "pool are not supported");
    impl_->job_n = n;
    impl_->job_grain = grain;
    impl_->job_body = &body;
    impl_->job_context = context;
    impl_->cursor.store(0, std::memory_order_relaxed);
    impl_->failed.store(false, std::memory_order_relaxed);
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  impl_->drain(n, grain, body);  // the calling thread is a lane too

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] { return impl_->busy_workers == 0; });
    impl_->job_body = nullptr;
    impl_->job_n = 0;
    impl_->job_context = nullptr;
    error = impl_->error;
    impl_->error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool* pool = new ThreadPool(default_threads());
  return *pool;
}

void ThreadPool::set_global_threads(int n) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  // global() hands out a stable reference, so swap the implementation
  // behind it rather than the pool object itself.
  ThreadPool& pool = global();
  if (pool.threads() == (n < 1 ? 1 : n)) return;
  pool.impl_->stop_workers();
  pool.impl_ = std::make_unique<Impl>();
  pool.impl_->start_workers(n < 1 ? 0 : n - 1);
}

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("EDGESTAB_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace edgestab::runtime
