// Long-lived stage worker threads for resident services.
//
// The thread pool (thread_pool.h) models fork-join parallel regions:
// one caller fans a range out and blocks until it drains. A streaming
// pipeline needs the other shape — threads that live for the whole run,
// pulling work from queues — and those threads must still honor the two
// process-wide contracts pool lanes honor:
//
//   * task-context propagation (task_context.h): a WorkerGroup thread
//     adopts the spawner's captured context for its entire body, so
//     profiler spans opened inside a stage attribute to the run's tree
//     instead of dangling on an anonymous thread;
//   * exception containment: a throwing body would std::terminate the
//     process from a raw std::thread; here the first exception per
//     group is captured and rethrown from join(), like run_chunks.
//
// Determinism stays the caller's contract exactly as with the pool:
// stage bodies must communicate through index-addressed records, never
// order-dependent shared state.
#pragma once

#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/task_context.h"

namespace edgestab::runtime {

/// A set of named worker threads joined (and their first exception
/// rethrown) by join(); the destructor joins but swallows, so stack
/// unwinding never terminates the process.
class WorkerGroup {
 public:
  WorkerGroup() = default;
  ~WorkerGroup() {
    try {
      join();
    } catch (...) {
      // Destructor path: the owner already gave up on the result.
    }
  }

  WorkerGroup(const WorkerGroup&) = delete;
  WorkerGroup& operator=(const WorkerGroup&) = delete;

  /// Spawn one worker running `body`. The spawner's task context is
  /// captured here and installed on the new thread for the body's whole
  /// lifetime.
  void spawn(std::function<void()> body) {
    const TaskContextHooks* hooks = task_context_hooks();
    void* context = hooks != nullptr && hooks->capture != nullptr
                        ? hooks->capture()
                        : nullptr;
    threads_.emplace_back([this, hooks, context,
                           body = std::move(body)]() mutable {
      void* previous = nullptr;
      if (hooks != nullptr && hooks->install != nullptr)
        previous = hooks->install(context);
      try {
        body();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      if (hooks != nullptr && hooks->restore != nullptr)
        hooks->restore(previous);
    });
  }

  /// Join every worker; rethrows the first exception any body raised.
  void join() {
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
    threads_.clear();
    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      std::swap(error, first_error_);
    }
    if (error) std::rethrow_exception(error);
  }

  std::size_t size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::exception_ptr first_error_;
};

}  // namespace edgestab::runtime
