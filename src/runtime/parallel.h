// Parallel loop helpers over the global thread pool.
//
// These are the only entry points experiment code should use; they keep
// the determinism contract (DESIGN.md §10) easy to honor:
//
//   parallel_for(n, [&](std::size_t i) { out[i] = f(i); });
//   parallel_for_2d(phones, items, [&](std::size_t p, std::size_t i) {...});
//   auto v = parallel_map<T>(n, [&](std::size_t i) { return g(i); });
//
// Bodies run on arbitrary lanes in arbitrary order — they must write
// only to index-addressed slots and derive any randomness from
// runtime/seed.h streams. parallel_map is the ordered-reduction
// primitive: results land in index order regardless of scheduling, so a
// serial fold over them is bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/thread_pool.h"

namespace edgestab::runtime {

/// Chunk size that gives each lane several chunks to balance over.
inline std::size_t default_grain(std::size_t n) {
  std::size_t lanes =
      static_cast<std::size_t>(ThreadPool::global().threads());
  std::size_t grain = n / (lanes * 8);
  return grain < 1 ? 1 : grain;
}

/// Run `fn(i)` for every i in [0, n) across the global pool.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) grain = default_grain(n);
  const std::function<void(std::size_t, std::size_t)> body =
      [&fn](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      };
  ThreadPool::global().run_chunks(n, grain, body);
}

/// Run `fn(i, j)` over the [0, n0) x [0, n1) grid (row-major flatten).
template <typename Fn>
void parallel_for_2d(std::size_t n0, std::size_t n1, Fn&& fn,
                     std::size_t grain = 0) {
  if (n0 == 0 || n1 == 0) return;
  parallel_for(
      n0 * n1,
      [&fn, n1](std::size_t flat) { fn(flat / n1, flat % n1); }, grain);
}

/// Ordered parallel map: out[i] = fn(i). The result vector is the
/// deterministic-merge point for per-item partials (sizes, digests,
/// observations) — fold it serially afterwards.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  std::vector<T> out(n);
  parallel_for(
      n, [&fn, &out](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

}  // namespace edgestab::runtime
