// Deterministic per-item RNG streams for parallel execution.
//
// A sequential RNG advanced item by item would make results depend on
// iteration order — exactly what a thread pool does not guarantee.
// Instead every unit of work derives its own Pcg32 from the run seed and
// its stable coordinates (phone id, item id, repeat...):
//
//   Pcg32 rng = runtime::derive_rng(config.seed, phone.noise_stream,
//                                   stimulus_id, shot);
//
// Same coordinates -> same stream, regardless of which lane runs the
// item or how many lanes exist. Derivation is SplitMix64-based so
// adjacent coordinates still produce statistically independent streams.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace edgestab::runtime {

/// Fold one coordinate into a seed chain.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t id) {
  SplitMix64 sm(seed ^ (id + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                        (seed >> 2)));
  return sm.next();
}

/// Derive a stable sub-seed from a run seed and work-item coordinates.
template <typename... Ids>
std::uint64_t derive_seed(std::uint64_t run_seed, Ids... ids) {
  std::uint64_t h = SplitMix64(run_seed).next();
  ((h = mix_seed(h, static_cast<std::uint64_t>(ids))), ...);
  return h;
}

/// Per-item generator: state and stream are derived independently so
/// distinct coordinate tuples never share a PCG sequence.
template <typename... Ids>
Pcg32 derive_rng(std::uint64_t run_seed, Ids... ids) {
  std::uint64_t seed = derive_seed(run_seed, ids...);
  std::uint64_t stream = mix_seed(seed, 0x5bf0363db2a96179ULL);
  return Pcg32(seed, stream);
}

}  // namespace edgestab::runtime
