// Cross-lane task-context propagation for the thread pool.
//
// The pool's dynamic scheduling moves work between threads, which breaks
// any attribution scheme built on thread-local state: a span opened on
// the submitting thread is invisible to the worker lanes that execute
// the chunks it fans out. These hooks let an observer (the obs profiler)
// carry an opaque context across the submit edge deterministically:
//
//   capture()  runs on the submitting thread when a parallel region is
//              dispatched; returns the context to propagate.
//   install()  runs on each worker lane before it drains chunks of that
//              region; returns the lane's previous context.
//   restore()  runs on the lane after the drain, undoing install().
//
// The calling thread is a lane too but already holds the context, so the
// pool only wraps *worker* drains. Hooks are function pointers behind one
// atomic — uninstalled, the cost is a null check per parallel region, and
// runtime/ keeps zero dependencies on obs/.
#pragma once

namespace edgestab::runtime {

struct TaskContextHooks {
  void* (*capture)() = nullptr;
  void* (*install)(void* context) = nullptr;
  void (*restore)(void* previous) = nullptr;
};

/// Install (or clear with nullptr) the process-wide hook table; the
/// table must outlive all subsequent parallel regions. Install before
/// dispatching parallel work — the pointer swap itself is atomic but
/// regions already in flight may miss it.
void set_task_context_hooks(const TaskContextHooks* hooks);
const TaskContextHooks* task_context_hooks();

}  // namespace edgestab::runtime
