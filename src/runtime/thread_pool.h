// Fixed-size thread pool with chunked work distribution.
//
// The pool is the execution engine behind runtime/parallel.h: callers
// hand it an index range and a chunk body; workers (plus the calling
// thread) claim chunks off a shared atomic cursor until the range is
// drained. Scheduling is dynamic — which thread runs which chunk is
// load-dependent — so DETERMINISM IS THE CALLER'S CONTRACT: bodies must
// write only to index-addressed slots (or thread-local shards merged in
// index order) and draw randomness from per-item streams
// (runtime/seed.h), never from shared sequential state. Under that
// contract results are bit-identical at any thread count; see
// DESIGN.md §10.
//
// Nesting: a parallel region entered from inside a worker runs inline on
// that worker (no new threads, no deadlock), so library code can use
// parallel_for without caring whether its caller already did.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace edgestab::runtime {

class ThreadPool {
 public:
  /// A pool with `threads` total lanes (including the calling thread);
  /// values < 1 are clamped to 1. `ThreadPool(1)` spawns no workers and
  /// runs everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallel lanes (worker threads + the caller).
  int threads() const;

  /// Invoke `body(begin, end)` over consecutive chunks covering [0, n),
  /// each at most `grain` indices, across all lanes; blocks until the
  /// range is drained. Exceptions thrown by any chunk stop further chunk
  /// dispatch and the first one captured is rethrown here. Recursive
  /// calls from inside a chunk body run serially inline.
  void run_chunks(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

  /// The process-wide pool used by runtime/parallel.h. Created on first
  /// use with default_threads() lanes.
  static ThreadPool& global();

  /// Replace the global pool with an `n`-lane one (benches: --threads N).
  /// Must not be called while a parallel region is running.
  static void set_global_threads(int n);

  /// EDGESTAB_THREADS when set to a positive integer, else
  /// std::thread::hardware_concurrency (min 1).
  static int default_threads();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace edgestab::runtime
