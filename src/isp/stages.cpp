#include "isp/stages.h"

#include <algorithm>
#include <cmath>

#include "image/color.h"

namespace edgestab {

void black_level_subtract(RawImage& raw) {
  const float black = raw.black_level();
  const float scale = 1.0f / (1.0f - black);
  for (float& v : raw.data())
    v = std::max(0.0f, (v - black) * scale);
}

namespace {

Image demosaic_bilinear(const RawImage& raw) {
  const int w = raw.width();
  const int h = raw.height();
  Image out(w, h, 3);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      int c = raw.color_at(x, y);
      out.at(x, y, c) = raw.at(x, y);
      // Interpolate each missing color from adjacent same-color sites
      // (out-of-bounds neighbors are skipped, not clamped — clamping
      // would mix in a different CFA color at the borders).
      for (int miss = 0; miss < 3; ++miss) {
        if (miss == c) continue;
        float sum = 0.0f;
        int count = 0;
        for (int dy = -1; dy <= 1; ++dy)
          for (int dx = -1; dx <= 1; ++dx) {
            if (dx == 0 && dy == 0) continue;
            int sx = x + dx, sy = y + dy;
            if (sx < 0 || sx >= w || sy < 0 || sy >= h) continue;
            if (raw.color_at(sx, sy) != miss) continue;
            sum += raw.at(sx, sy);
            ++count;
          }
        out.at(x, y, miss) = count > 0 ? sum / static_cast<float>(count)
                                       : raw.at(x, y);
      }
    }
  return out;
}

/// Malvar-He-Cutler gradient-corrected demosaicing (the 5x5 kernels from
/// the 2004 paper, coefficients /8).
Image demosaic_malvar(const RawImage& raw) {
  const int w = raw.width();
  const int h = raw.height();
  Image out(w, h, 3);
  auto m = [&](int x, int y) { return raw.at_clamped(x, y); };
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) {
      int c = raw.color_at(x, y);
      float v0 = m(x, y);
      out.at(x, y, c) = v0;
      float cross = m(x - 1, y) + m(x + 1, y) + m(x, y - 1) + m(x, y + 1);
      float axial2 =
          m(x - 2, y) + m(x + 2, y) + m(x, y - 2) + m(x, y + 2);
      float diag =
          m(x - 1, y - 1) + m(x + 1, y - 1) + m(x - 1, y + 1) +
          m(x + 1, y + 1);
      if (c != 1) {
        // Green at an R or B site.
        float g = (2.0f * cross + 4.0f * v0 - axial2) / 8.0f;
        out.at(x, y, 1) = std::max(g, 0.0f);
        // Opposite color (R at B / B at R): diagonal kernel.
        float opp = (6.0f * v0 + 2.0f * diag - 1.5f * axial2) / 8.0f;
        out.at(x, y, c == 0 ? 2 : 0) = std::max(opp, 0.0f);
      } else {
        // At a green site: one of R/B has horizontal neighbors, the
        // other vertical.
        // Neighbor colors from CFA parity (pure function — safe at
        // borders where x+1 == w).
        int ch = cfa_color(raw.pattern(), x + 1, y);
        int cv = cfa_color(raw.pattern(), x, y + 1);
        float hor =
            (5.0f * v0 + 4.0f * (m(x - 1, y) + m(x + 1, y)) -
             (m(x - 2, y) + m(x + 2, y)) +
             0.5f * (m(x, y - 2) + m(x, y + 2)) - diag) /
            8.0f;
        float ver =
            (5.0f * v0 + 4.0f * (m(x, y - 1) + m(x, y + 1)) -
             (m(x, y - 2) + m(x, y + 2)) +
             0.5f * (m(x - 2, y) + m(x + 2, y)) - diag) /
            8.0f;
        out.at(x, y, ch) = std::max(hor, 0.0f);
        out.at(x, y, cv) = std::max(ver, 0.0f);
      }
    }
  return out;
}

}  // namespace

Image demosaic(const RawImage& raw, DemosaicKind kind) {
  switch (kind) {
    case DemosaicKind::kBilinear: return demosaic_bilinear(raw);
    case DemosaicKind::kMalvar: return demosaic_malvar(raw);
  }
  ES_CHECK_MSG(false, "unknown demosaic kind");
  return {};
}

void white_balance_preset(Image& rgb, const std::array<float, 3>& gains) {
  ES_CHECK(rgb.channels() == 3);
  for (int c = 0; c < 3; ++c) {
    float g = gains[static_cast<std::size_t>(c)];
    for (float& v : rgb.plane(c)) v *= g;
  }
}

void white_balance_gray_world(Image& rgb) {
  ES_CHECK(rgb.channels() == 3);
  std::array<double, 3> means{};
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (float v : rgb.plane(c)) sum += v;
    means[static_cast<std::size_t>(c)] =
        sum / static_cast<double>(rgb.pixel_count());
  }
  double gray = (means[0] + means[1] + means[2]) / 3.0;
  std::array<float, 3> gains{};
  for (int c = 0; c < 3; ++c) {
    double m = std::max(means[static_cast<std::size_t>(c)], 1e-6);
    gains[static_cast<std::size_t>(c)] = static_cast<float>(gray / m);
  }
  white_balance_preset(rgb, gains);
}

void color_correct(Image& rgb, const std::array<float, 9>& matrix) {
  apply_color_matrix(rgb, matrix);
  rgb.clamp(0.0f, 4.0f);  // allow modest overshoot; tone map clamps later
}

void denoise_box(Image& rgb, int radius, float strength) {
  if (radius <= 0 || strength <= 0.0f) return;
  ES_CHECK(strength <= 1.0f);
  Image blurred(rgb.width(), rgb.height(), rgb.channels());
  const float inv =
      1.0f / static_cast<float>((2 * radius + 1) * (2 * radius + 1));
  for (int c = 0; c < rgb.channels(); ++c)
    for (int y = 0; y < rgb.height(); ++y)
      for (int x = 0; x < rgb.width(); ++x) {
        float sum = 0.0f;
        for (int dy = -radius; dy <= radius; ++dy)
          for (int dx = -radius; dx <= radius; ++dx)
            sum += rgb.at_clamped(x + dx, y + dy, c);
        blurred.at(x, y, c) = sum * inv;
      }
  for (std::size_t i = 0; i < rgb.data().size(); ++i)
    rgb.data()[i] += (blurred.data()[i] - rgb.data()[i]) * strength;
}

void tone_map(Image& rgb, float gamma, float s_curve_strength) {
  ES_CHECK(gamma > 0.0f);
  for (float& v : rgb.data()) {
    float g = std::pow(std::clamp(v, 0.0f, 1.0f), 1.0f / gamma);
    if (s_curve_strength != 0.0f) {
      // Smoothstep-based contrast curve blended with identity.
      float s = g * g * (3.0f - 2.0f * g);
      g = g + (s - g) * s_curve_strength;
    }
    v = std::clamp(g, 0.0f, 1.0f);
  }
}

void sharpen_unsharp(Image& rgb, int radius, float amount) {
  if (radius <= 0 || amount <= 0.0f) return;
  Image blurred(rgb.width(), rgb.height(), rgb.channels());
  const float inv =
      1.0f / static_cast<float>((2 * radius + 1) * (2 * radius + 1));
  for (int c = 0; c < rgb.channels(); ++c)
    for (int y = 0; y < rgb.height(); ++y)
      for (int x = 0; x < rgb.width(); ++x) {
        float sum = 0.0f;
        for (int dy = -radius; dy <= radius; ++dy)
          for (int dx = -radius; dx <= radius; ++dx)
            sum += rgb.at_clamped(x + dx, y + dy, c);
        blurred.at(x, y, c) = sum * inv;
      }
  for (std::size_t i = 0; i < rgb.data().size(); ++i) {
    float detail = rgb.data()[i] - blurred.data()[i];
    rgb.data()[i] = std::clamp(rgb.data()[i] + amount * detail, 0.0f, 1.0f);
  }
}

void saturate(Image& rgb, float factor) {
  ES_CHECK(rgb.channels() == 3);
  if (factor == 1.0f) return;
  for (int y = 0; y < rgb.height(); ++y)
    for (int x = 0; x < rgb.width(); ++x) {
      float r = rgb.at(x, y, 0);
      float g = rgb.at(x, y, 1);
      float b = rgb.at(x, y, 2);
      float luma = 0.299f * r + 0.587f * g + 0.114f * b;
      rgb.at(x, y, 0) = std::clamp(luma + (r - luma) * factor, 0.0f, 1.0f);
      rgb.at(x, y, 1) = std::clamp(luma + (g - luma) * factor, 0.0f, 1.0f);
      rgb.at(x, y, 2) = std::clamp(luma + (b - luma) * factor, 0.0f, 1.0f);
    }
}

}  // namespace edgestab
