#include "isp/stages.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "image/color.h"
#include "tensor/backend.h"
#include "tensor/kernels_avx2.h"

namespace edgestab {

void black_level_subtract(RawImage& raw) {
  const float black = raw.black_level();
  const float scale = 1.0f / (1.0f - black);
  for (float& v : raw.data())
    v = std::max(0.0f, (v - black) * scale);
}

namespace {

/// Parity (x & 1, y & 1) of the red CFA site for `pattern`.
void red_site_parity(BayerPattern pattern, int& red_x, int& red_y) {
  red_x = red_y = 0;
  for (int py = 0; py < 2; ++py)
    for (int px = 0; px < 2; ++px)
      if (cfa_color(pattern, px, py) == 0) {
        red_x = px;
        red_y = py;
      }
}

/// Scalar-reference bilinear interpolation of one pixel: each missing
/// color is the average of adjacent same-color sites (out-of-bounds
/// neighbors are skipped, not clamped — clamping would mix in a
/// different CFA color at the borders).
void demosaic_bilinear_px(const RawImage& raw, Image& out, int x, int y) {
  const int w = raw.width();
  const int h = raw.height();
  int c = raw.color_at(x, y);
  out.at(x, y, c) = raw.at(x, y);
  for (int miss = 0; miss < 3; ++miss) {
    if (miss == c) continue;
    float sum = 0.0f;
    int count = 0;
    for (int dy = -1; dy <= 1; ++dy)
      for (int dx = -1; dx <= 1; ++dx) {
        if (dx == 0 && dy == 0) continue;
        int sx = x + dx, sy = y + dy;
        if (sx < 0 || sx >= w || sy < 0 || sy >= h) continue;
        if (raw.color_at(sx, sy) != miss) continue;
        sum += raw.at(sx, sy);
        ++count;
      }
    out.at(x, y, miss) = count > 0 ? sum / static_cast<float>(count)
                                   : raw.at(x, y);
  }
}

Image demosaic_bilinear(const RawImage& raw) {
  const int w = raw.width();
  const int h = raw.height();
  Image out(w, h, 3);
  if (use_avx2() && w >= 12 && h > 2) {
    // Interior rows run the vector kernel; the 1-pixel border keeps the
    // fully-checked scalar reference.
    for (int x = 0; x < w; ++x) {
      demosaic_bilinear_px(raw, out, x, 0);
      demosaic_bilinear_px(raw, out, x, h - 1);
    }
    for (int y = 1; y < h - 1; ++y) {
      demosaic_bilinear_px(raw, out, 0, y);
      demosaic_bilinear_px(raw, out, w - 1, y);
    }
    int red_x, red_y;
    red_site_parity(raw.pattern(), red_x, red_y);
    avx2::demosaic_bilinear_rows_f32(
        raw.data().data(), w, h, red_x, red_y, 1, h - 1,
        out.plane(0).data(), out.plane(1).data(), out.plane(2).data());
    return out;
  }
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) demosaic_bilinear_px(raw, out, x, y);
  return out;
}

/// Scalar-reference Malvar-He-Cutler interpolation of one pixel (the 5x5
/// kernels from the 2004 paper, coefficients /8).
void demosaic_malvar_px(const RawImage& raw, Image& out, int x, int y) {
  auto m = [&](int sx, int sy) { return raw.at_clamped(sx, sy); };
  int c = raw.color_at(x, y);
  float v0 = m(x, y);
  out.at(x, y, c) = v0;
  float cross = m(x - 1, y) + m(x + 1, y) + m(x, y - 1) + m(x, y + 1);
  float axial2 = m(x - 2, y) + m(x + 2, y) + m(x, y - 2) + m(x, y + 2);
  float diag = m(x - 1, y - 1) + m(x + 1, y - 1) + m(x - 1, y + 1) +
               m(x + 1, y + 1);
  if (c != 1) {
    // Green at an R or B site.
    float g = (2.0f * cross + 4.0f * v0 - axial2) / 8.0f;
    out.at(x, y, 1) = std::max(g, 0.0f);
    // Opposite color (R at B / B at R): diagonal kernel.
    float opp = (6.0f * v0 + 2.0f * diag - 1.5f * axial2) / 8.0f;
    out.at(x, y, c == 0 ? 2 : 0) = std::max(opp, 0.0f);
  } else {
    // At a green site: one of R/B has horizontal neighbors, the
    // other vertical.
    // Neighbor colors from CFA parity (pure function — safe at
    // borders where x+1 == w).
    int ch = cfa_color(raw.pattern(), x + 1, y);
    int cv = cfa_color(raw.pattern(), x, y + 1);
    float hor = (5.0f * v0 + 4.0f * (m(x - 1, y) + m(x + 1, y)) -
                 (m(x - 2, y) + m(x + 2, y)) +
                 0.5f * (m(x, y - 2) + m(x, y + 2)) - diag) /
                8.0f;
    float ver = (5.0f * v0 + 4.0f * (m(x, y - 1) + m(x, y + 1)) -
                 (m(x, y - 2) + m(x, y + 2)) +
                 0.5f * (m(x - 2, y) + m(x + 2, y)) - diag) /
                8.0f;
    out.at(x, y, ch) = std::max(hor, 0.0f);
    out.at(x, y, cv) = std::max(ver, 0.0f);
  }
}

Image demosaic_malvar(const RawImage& raw) {
  const int w = raw.width();
  const int h = raw.height();
  Image out(w, h, 3);
  if (use_avx2() && w >= 14 && h > 4) {
    // Interior rows run the vector kernel; the 2-pixel border (where
    // at_clamped taps clamp) keeps the scalar reference.
    for (int x = 0; x < w; ++x)
      for (int y : {0, 1, h - 2, h - 1}) demosaic_malvar_px(raw, out, x, y);
    for (int y = 2; y < h - 2; ++y)
      for (int x : {0, 1, w - 2, w - 1}) demosaic_malvar_px(raw, out, x, y);
    int red_x, red_y;
    red_site_parity(raw.pattern(), red_x, red_y);
    avx2::demosaic_malvar_rows_f32(
        raw.data().data(), w, h, red_x, red_y, 2, h - 2,
        out.plane(0).data(), out.plane(1).data(), out.plane(2).data());
    return out;
  }
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) demosaic_malvar_px(raw, out, x, y);
  return out;
}

}  // namespace

Image demosaic(const RawImage& raw, DemosaicKind kind) {
  switch (kind) {
    case DemosaicKind::kBilinear: return demosaic_bilinear(raw);
    case DemosaicKind::kMalvar: return demosaic_malvar(raw);
  }
  ES_CHECK_MSG(false, "unknown demosaic kind");
  return {};
}

void white_balance_preset(Image& rgb, const std::array<float, 3>& gains) {
  ES_CHECK(rgb.channels() == 3);
  for (int c = 0; c < 3; ++c) {
    float g = gains[static_cast<std::size_t>(c)];
    for (float& v : rgb.plane(c)) v *= g;
  }
}

void white_balance_gray_world(Image& rgb) {
  ES_CHECK(rgb.channels() == 3);
  std::array<double, 3> means{};
  for (int c = 0; c < 3; ++c) {
    double sum = 0.0;
    for (float v : rgb.plane(c)) sum += v;
    means[static_cast<std::size_t>(c)] =
        sum / static_cast<double>(rgb.pixel_count());
  }
  double gray = (means[0] + means[1] + means[2]) / 3.0;
  std::array<float, 3> gains{};
  for (int c = 0; c < 3; ++c) {
    double m = std::max(means[static_cast<std::size_t>(c)], 1e-6);
    gains[static_cast<std::size_t>(c)] = static_cast<float>(gray / m);
  }
  white_balance_preset(rgb, gains);
}

void color_correct(Image& rgb, const std::array<float, 9>& matrix) {
  if (use_avx2()) {
    ES_CHECK(rgb.channels() == 3);
    // Fused matrix + clamp over the three planes.
    avx2::ccm_planes_f32(rgb.plane(0).data(), rgb.plane(1).data(),
                         rgb.plane(2).data(), rgb.pixel_count(),
                         matrix.data(), 0.0f, 4.0f);
    return;
  }
  apply_color_matrix(rgb, matrix);
  rgb.clamp(0.0f, 4.0f);  // allow modest overshoot; tone map clamps later
}

void denoise_box(Image& rgb, int radius, float strength) {
  if (radius <= 0 || strength <= 0.0f) return;
  ES_CHECK(strength <= 1.0f);
  Image blurred(rgb.width(), rgb.height(), rgb.channels());
  const float inv =
      1.0f / static_cast<float>((2 * radius + 1) * (2 * radius + 1));
  if (use_avx2()) {
    for (int c = 0; c < rgb.channels(); ++c)
      avx2::box_blur_plane_f32(rgb.plane(c).data(), rgb.width(),
                               rgb.height(), radius, inv,
                               blurred.plane(c).data());
  } else {
    for (int c = 0; c < rgb.channels(); ++c)
      for (int y = 0; y < rgb.height(); ++y)
        for (int x = 0; x < rgb.width(); ++x) {
          float sum = 0.0f;
          for (int dy = -radius; dy <= radius; ++dy)
            for (int dx = -radius; dx <= radius; ++dx)
              sum += rgb.at_clamped(x + dx, y + dy, c);
          blurred.at(x, y, c) = sum * inv;
        }
  }
  for (std::size_t i = 0; i < rgb.data().size(); ++i)
    rgb.data()[i] += (blurred.data()[i] - rgb.data()[i]) * strength;
}

void tone_map(Image& rgb, float gamma, float s_curve_strength) {
  ES_CHECK(gamma > 0.0f);
  if (use_avx2()) {
    // The curve is applied through a 1024-knot LUT uniform in sqrt(x)
    // (gamma curves are near-linear in that domain, so linear
    // interpolation holds ~1e-6 of the scalar pow even at the dark end).
    // Knots are built with the scalar expression, so the LUT itself is
    // deterministic per (gamma, strength).
    constexpr int kKnots = 1024;
    std::vector<float> lut(kKnots + 1);
    const float inv_gamma = 1.0f / gamma;
    for (int i = 0; i < kKnots; ++i) {
      const float t = static_cast<float>(i) / (kKnots - 1);
      float g = std::pow(t * t, inv_gamma);
      if (s_curve_strength != 0.0f) {
        float s = g * g * (3.0f - 2.0f * g);
        g = g + (s - g) * s_curve_strength;
      }
      lut[static_cast<std::size_t>(i)] = std::clamp(g, 0.0f, 1.0f);
    }
    lut[kKnots] = lut[kKnots - 1];
    avx2::lut_map_sqrt_f32(rgb.data().data(), rgb.data().size(), lut.data(),
                           kKnots);
    return;
  }
  for (float& v : rgb.data()) {
    float g = std::pow(std::clamp(v, 0.0f, 1.0f), 1.0f / gamma);
    if (s_curve_strength != 0.0f) {
      // Smoothstep-based contrast curve blended with identity.
      float s = g * g * (3.0f - 2.0f * g);
      g = g + (s - g) * s_curve_strength;
    }
    v = std::clamp(g, 0.0f, 1.0f);
  }
}

void sharpen_unsharp(Image& rgb, int radius, float amount) {
  if (radius <= 0 || amount <= 0.0f) return;
  Image blurred(rgb.width(), rgb.height(), rgb.channels());
  const float inv =
      1.0f / static_cast<float>((2 * radius + 1) * (2 * radius + 1));
  if (use_avx2()) {
    for (int c = 0; c < rgb.channels(); ++c)
      avx2::box_blur_plane_f32(rgb.plane(c).data(), rgb.width(),
                               rgb.height(), radius, inv,
                               blurred.plane(c).data());
  } else {
    for (int c = 0; c < rgb.channels(); ++c)
      for (int y = 0; y < rgb.height(); ++y)
        for (int x = 0; x < rgb.width(); ++x) {
          float sum = 0.0f;
          for (int dy = -radius; dy <= radius; ++dy)
            for (int dx = -radius; dx <= radius; ++dx)
              sum += rgb.at_clamped(x + dx, y + dy, c);
          blurred.at(x, y, c) = sum * inv;
        }
  }
  for (std::size_t i = 0; i < rgb.data().size(); ++i) {
    float detail = rgb.data()[i] - blurred.data()[i];
    rgb.data()[i] = std::clamp(rgb.data()[i] + amount * detail, 0.0f, 1.0f);
  }
}

void saturate(Image& rgb, float factor) {
  ES_CHECK(rgb.channels() == 3);
  if (factor == 1.0f) return;
  for (int y = 0; y < rgb.height(); ++y)
    for (int x = 0; x < rgb.width(); ++x) {
      float r = rgb.at(x, y, 0);
      float g = rgb.at(x, y, 1);
      float b = rgb.at(x, y, 2);
      float luma = 0.299f * r + 0.587f * g + 0.114f * b;
      rgb.at(x, y, 0) = std::clamp(luma + (r - luma) * factor, 0.0f, 1.0f);
      rgb.at(x, y, 1) = std::clamp(luma + (g - luma) * factor, 0.0f, 1.0f);
      rgb.at(x, y, 2) = std::clamp(luma + (b - luma) * factor, 0.0f, 1.0f);
    }
}

}  // namespace edgestab
