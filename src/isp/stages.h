// Individual ISP pipeline stages (paper §6: "common stages of an ISP
// pipeline include color correction, lens correction, demosaicing and
// noise reduction"). Each stage is a pure function so pipelines can be
// composed, reordered and ablated.
#pragma once

#include <array>

#include "image/image.h"
#include "isp/raw.h"

namespace edgestab {

/// Subtract the black level pedestal and rescale to [0,1] linear.
void black_level_subtract(RawImage& raw);

enum class DemosaicKind {
  kBilinear,  ///< average of same-color neighbors
  kMalvar,    ///< gradient-corrected (Malvar-He-Cutler 5x5 kernels)
};

/// Interpolate the mosaic to full linear RGB.
Image demosaic(const RawImage& raw, DemosaicKind kind);

/// White-balance gains. Preset applies fixed gains; gray-world estimates
/// gains so channel means equalize.
void white_balance_preset(Image& rgb, const std::array<float, 3>& gains);
void white_balance_gray_world(Image& rgb);

/// 3x3 color correction matrix in linear light (row-major).
void color_correct(Image& rgb, const std::array<float, 9>& matrix);

/// Chroma-preserving denoise: box-filter each channel, blend by strength
/// in [0,1].
void denoise_box(Image& rgb, int radius, float strength);

/// Global tone mapping: gamma encode then an s-curve of adjustable
/// contrast around mid-gray. Input linear, output display-referred.
void tone_map(Image& rgb, float gamma, float s_curve_strength);

/// Unsharp-mask sharpening on the display-referred image.
void sharpen_unsharp(Image& rgb, int radius, float amount);

/// Saturation adjustment in display space (1 = identity).
void saturate(Image& rgb, float factor);

}  // namespace edgestab
