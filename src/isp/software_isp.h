// Software ISP presets — the §6 technique of converting the same raw file
// with two different desktop converters (the paper used ImageMagick and
// Adobe Photoshop, following Buckler et al. 2017).
//
// `magick_isp` is a plain, neutral conversion; `photo_isp` is an opinion-
// ated one (stronger contrast curve, warmer color matrix, more sharpening
// and saturation). Both are consistent — run twice on the same raw they
// produce identical pixels — but differ from each other, which is exactly
// what Table 4 measures.
#pragma once

#include "isp/pipeline.h"

namespace edgestab {

/// Neutral converter (ImageMagick stand-in).
IspConfig magick_isp();

/// Opinionated converter (Adobe Photoshop stand-in).
IspConfig photo_isp();

}  // namespace edgestab
