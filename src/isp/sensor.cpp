#include "isp/sensor.h"

#include <algorithm>
#include <cmath>

#include "image/resize.h"
#include "obs/obs.h"
#include "util/hashing.h"

namespace edgestab {

namespace {

/// Box blur with a fractional radius: full blur at radius >= 1, blended
/// toward the original below that.
Image defocus_blur(const Image& img, float radius) {
  int r = std::max(1, static_cast<int>(std::ceil(radius)));
  Image blurred(img.width(), img.height(), img.channels());
  const float inv = 1.0f / static_cast<float>((2 * r + 1) * (2 * r + 1));
  for (int c = 0; c < img.channels(); ++c)
    for (int y = 0; y < img.height(); ++y)
      for (int x = 0; x < img.width(); ++x) {
        float sum = 0.0f;
        for (int dy = -r; dy <= r; ++dy)
          for (int dx = -r; dx <= r; ++dx)
            sum += img.at_clamped(x + dx, y + dy, c);
        blurred.at(x, y, c) = sum * inv;
      }
  float blend = std::min(radius, 1.0f);
  Image out = img;
  out.scale(1.0f - blend);
  out.add_scaled(blurred, blend);
  return out;
}

/// Lateral chromatic aberration: the red and blue channels are sampled
/// at slightly different radial magnifications.
Image apply_chromatic_aberration(const Image& img, float strength) {
  Image out(img.width(), img.height(), 3);
  float cx = static_cast<float>(img.width()) / 2.0f;
  float cy = static_cast<float>(img.height()) / 2.0f;
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float dx = static_cast<float>(x) + 0.5f - cx;
      float dy = static_cast<float>(y) + 0.5f - cy;
      out.at(x, y, 1) = img.at(x, y, 1);
      float sr = 1.0f - strength;
      out.at(x, y, 0) =
          img.sample_bilinear(cx + dx * sr - 0.5f, cy + dy * sr - 0.5f, 0);
      float sb = 1.0f + strength;
      out.at(x, y, 2) =
          img.sample_bilinear(cx + dx * sb - 0.5f, cy + dy * sb - 0.5f, 2);
    }
  return out;
}

}  // namespace

RawImage expose_sensor(const Image& scene_linear, const SensorConfig& config,
                       Pcg32& rng) {
  ES_TRACE_SCOPE("sensor", "expose");
  ES_CHECK(scene_linear.channels() == 3);
  // Resample the scene onto the sensor grid.
  Image scene = resize(scene_linear, config.width, config.height,
                       ResizeFilter::kArea);
  // Optics before the photosites.
  if (config.defocus > 0.0f) scene = defocus_blur(scene, config.defocus);
  if (config.chroma_aberration > 0.0f)
    scene = apply_chromatic_aberration(scene, config.chroma_aberration);

  RawImage raw(config.width, config.height, config.pattern,
               config.black_level, config.bit_depth);

  // Fixed-pattern PRNU for this sensor unit.
  Pcg32 unit_rng(config.unit_seed, 11);

  const float cx = static_cast<float>(config.width) / 2.0f;
  const float cy = static_cast<float>(config.height) / 2.0f;
  const float max_r2 = cx * cx + cy * cy;
  const float max_code = static_cast<float>((1 << config.bit_depth) - 1);
  const float usable = 1.0f - config.black_level;

  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      int c = raw.color_at(x, y);
      float signal = scene.at(x, y, c) *
                     config.channel_response[static_cast<std::size_t>(c)] *
                     config.exposure;

      // Vignetting: cos^4-like falloff toward corners.
      float dx = (static_cast<float>(x) + 0.5f - cx);
      float dy = (static_cast<float>(y) + 0.5f - cy);
      float falloff = 1.0f - config.vignetting * (dx * dx + dy * dy) / max_r2;
      signal *= falloff;

      // PRNU (fixed per unit — consumed in raster order, deterministic).
      float prnu = 1.0f + static_cast<float>(
                              unit_rng.normal(0.0, config.prnu_sigma));
      signal *= prnu;
      signal = std::max(signal, 0.0f);

      // Shot noise: Poisson in electron counts.
      float electrons = signal * config.full_well;
      float noisy_electrons;
      if (electrons < 1e-3f) {
        noisy_electrons = 0.0f;
      } else {
        noisy_electrons =
            static_cast<float>(rng.poisson(static_cast<double>(electrons)));
      }
      // Read noise in electrons.
      noisy_electrons +=
          static_cast<float>(rng.normal(0.0, config.read_noise));

      float value = config.black_level +
                    usable * (noisy_electrons / config.full_well);
      // ADC quantization + clipping.
      value = std::clamp(value, 0.0f, 1.0f);
      value = std::round(value * max_code) / max_code;
      raw.at(x, y) = value;
    }
  }
  return raw;
}

std::uint64_t sensor_digest(const SensorConfig& config) {
  Fingerprint fp;
  fp.add("sensor-config-v1");
  fp.add(config.width).add(config.height);
  fp.add(static_cast<int>(config.pattern));
  for (float r : config.channel_response) fp.add(static_cast<double>(r));
  fp.add(static_cast<double>(config.exposure))
      .add(static_cast<double>(config.full_well))
      .add(static_cast<double>(config.read_noise))
      .add(static_cast<double>(config.prnu_sigma))
      .add(static_cast<double>(config.vignetting))
      .add(static_cast<double>(config.black_level));
  fp.add(config.bit_depth);
  fp.add(static_cast<double>(config.defocus))
      .add(static_cast<double>(config.chroma_aberration));
  fp.add(config.unit_seed);
  return fp.value();
}

}  // namespace edgestab
