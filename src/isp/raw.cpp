#include "isp/raw.h"

#include <algorithm>
#include <cmath>

namespace edgestab {

int cfa_color(BayerPattern pattern, int x, int y) {
  int xi = x & 1;
  int yi = y & 1;
  switch (pattern) {
    case BayerPattern::kRggb:
      if (yi == 0) return xi == 0 ? 0 : 1;
      return xi == 0 ? 1 : 2;
    case BayerPattern::kBggr:
      if (yi == 0) return xi == 0 ? 2 : 1;
      return xi == 0 ? 1 : 0;
  }
  ES_CHECK_MSG(false, "unknown bayer pattern");
  return 1;
}

RawImage::RawImage(int width, int height, BayerPattern pattern,
                   float black_level, int bit_depth)
    : width_(width),
      height_(height),
      pattern_(pattern),
      black_level_(black_level),
      bit_depth_(bit_depth),
      data_(static_cast<std::size_t>(width) * height, 0.0f) {
  ES_CHECK(width > 0 && height > 0);
  ES_CHECK(bit_depth >= 8 && bit_depth <= 16);
  ES_CHECK(black_level >= 0.0f && black_level < 0.5f);
}

float RawImage::at_clamped(int x, int y) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y);
}

Bytes RawImage::serialize() const {
  ByteWriter w;
  w.str("edgestab-raw-v1");
  w.u16(static_cast<std::uint16_t>(width_));
  w.u16(static_cast<std::uint16_t>(height_));
  w.u8(pattern_ == BayerPattern::kRggb ? 0 : 1);
  w.f32(black_level_);
  w.u8(static_cast<std::uint8_t>(bit_depth_));
  const float max_code = static_cast<float>((1 << bit_depth_) - 1);
  for (float v : data_)
    w.u16(static_cast<std::uint16_t>(
        std::clamp(std::lround(v * max_code), 0L,
                   static_cast<long>(max_code))));
  return w.take();
}

RawImage RawImage::deserialize(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  ES_CHECK_MSG(r.str() == "edgestab-raw-v1", "bad raw magic");
  int w = r.u16();
  int h = r.u16();
  BayerPattern pattern =
      r.u8() == 0 ? BayerPattern::kRggb : BayerPattern::kBggr;
  float black = r.f32();
  int depth = r.u8();
  RawImage out(w, h, pattern, black, depth);
  const float max_code = static_cast<float>((1 << depth) - 1);
  for (float& v : out.data_) v = static_cast<float>(r.u16()) / max_code;
  ES_CHECK_MSG(r.done(), "trailing bytes in raw container");
  return out;
}

}  // namespace edgestab
