// Raw sensor image container ("DNG-like").
//
// Holds the linear Bayer mosaic a sensor produced, before any ISP stage.
// The paper's §9.2 mitigation captures these and runs them through one
// *consistent* software ISP instead of each phone's hardware pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/check.h"

namespace edgestab {

enum class BayerPattern {
  kRggb,  ///< R G / G B
  kBggr,  ///< B G / G R
};

/// Which color a CFA site sees: 0 = R, 1 = G, 2 = B.
int cfa_color(BayerPattern pattern, int x, int y);

/// Mosaic sample storage; tracked for profiler allocation attribution
/// (util/alloc_track.h; raw frames count against the image site). Plain
/// std::vector<float> in profile-off builds.
using RawStorage = TrackedVector<float, AllocSite::kImage>;

/// Linear mosaic samples in [0,1] after black-level headroom; one float
/// per photosite.
class RawImage {
 public:
  RawImage() = default;
  RawImage(int width, int height, BayerPattern pattern, float black_level,
           int bit_depth);

  int width() const { return width_; }
  int height() const { return height_; }
  BayerPattern pattern() const { return pattern_; }
  float black_level() const { return black_level_; }
  int bit_depth() const { return bit_depth_; }

  float& at(int x, int y) {
    ES_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  float at(int x, int y) const {
    ES_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  float at_clamped(int x, int y) const;

  int color_at(int x, int y) const { return cfa_color(pattern_, x, y); }

  RawStorage& data() { return data_; }
  const RawStorage& data() const { return data_; }

  /// Serialize / parse the container (header + quantized samples at the
  /// sensor bit depth — like a minimal DNG).
  Bytes serialize() const;
  static RawImage deserialize(std::span<const std::uint8_t> bytes);

 private:
  int width_ = 0;
  int height_ = 0;
  BayerPattern pattern_ = BayerPattern::kRggb;
  float black_level_ = 0.0f;
  int bit_depth_ = 10;
  RawStorage data_;
};

}  // namespace edgestab
