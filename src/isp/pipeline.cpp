#include "isp/pipeline.h"

#include "obs/drift.h"
#include "obs/obs.h"
#include "util/hashing.h"

namespace edgestab {

// The ES_DRIFT_STAGE taps feed the divergence auditor after each of the
// 7 RGB stages (black_level operates on the raw mosaic and has no RGB
// artifact to compare): under an active ES_DRIFT_SCOPE, each
// environment's intermediate is compared against the reference
// environment's for the same stimulus — the per-stage attribution the
// drift report's "drift by ISP stage" table is built from.
Image run_isp(const RawImage& raw, const IspConfig& config) {
  ES_TRACE_SCOPE("isp", "pipeline");
  RawImage work = raw;
  {
    ES_TRACE_SCOPE("isp", "black_level");
    black_level_subtract(work);
  }
  Image rgb;
  {
    ES_TRACE_SCOPE("isp", "demosaic");
    rgb = demosaic(work, config.demosaic_kind);
  }
  ES_DRIFT_STAGE(0, "demosaic", rgb);
  {
    ES_TRACE_SCOPE("isp", "white_balance");
    switch (config.wb_mode) {
      case WhiteBalanceMode::kPreset:
        white_balance_preset(rgb, config.wb_gains);
        break;
      case WhiteBalanceMode::kGrayWorld:
        white_balance_gray_world(rgb);
        break;
    }
  }
  ES_DRIFT_STAGE(1, "white_balance", rgb);
  {
    ES_TRACE_SCOPE("isp", "color_correct");
    color_correct(rgb, config.ccm);
  }
  ES_DRIFT_STAGE(2, "color_correct", rgb);
  {
    ES_TRACE_SCOPE("isp", "denoise");
    denoise_box(rgb, config.denoise_radius, config.denoise_strength);
  }
  ES_DRIFT_STAGE(3, "denoise", rgb);
  {
    ES_TRACE_SCOPE("isp", "tone_map");
    tone_map(rgb, config.gamma, config.s_curve);
  }
  ES_DRIFT_STAGE(4, "tone_map", rgb);
  {
    ES_TRACE_SCOPE("isp", "sharpen");
    sharpen_unsharp(rgb, config.sharpen_radius, config.sharpen_amount);
  }
  ES_DRIFT_STAGE(5, "sharpen", rgb);
  {
    ES_TRACE_SCOPE("isp", "saturate");
    saturate(rgb, config.saturation);
    rgb.clamp();
  }
  ES_DRIFT_STAGE(6, "saturate", rgb);
  return rgb;
}

std::uint64_t isp_digest(const IspConfig& config) {
  Fingerprint fp;
  fp.add("isp-config-v1");
  fp.add(config.name);
  fp.add(static_cast<int>(config.demosaic_kind));
  fp.add(static_cast<int>(config.wb_mode));
  for (float g : config.wb_gains) fp.add(static_cast<double>(g));
  for (float c : config.ccm) fp.add(static_cast<double>(c));
  fp.add(config.denoise_radius)
      .add(static_cast<double>(config.denoise_strength));
  fp.add(static_cast<double>(config.gamma))
      .add(static_cast<double>(config.s_curve));
  fp.add(config.sharpen_radius)
      .add(static_cast<double>(config.sharpen_amount));
  fp.add(static_cast<double>(config.saturation));
  return fp.value();
}

}  // namespace edgestab
