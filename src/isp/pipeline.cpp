#include "isp/pipeline.h"

namespace edgestab {

Image run_isp(const RawImage& raw, const IspConfig& config) {
  RawImage work = raw;
  black_level_subtract(work);
  Image rgb = demosaic(work, config.demosaic_kind);
  switch (config.wb_mode) {
    case WhiteBalanceMode::kPreset:
      white_balance_preset(rgb, config.wb_gains);
      break;
    case WhiteBalanceMode::kGrayWorld:
      white_balance_gray_world(rgb);
      break;
  }
  color_correct(rgb, config.ccm);
  denoise_box(rgb, config.denoise_radius, config.denoise_strength);
  tone_map(rgb, config.gamma, config.s_curve);
  sharpen_unsharp(rgb, config.sharpen_radius, config.sharpen_amount);
  saturate(rgb, config.saturation);
  rgb.clamp();
  return rgb;
}

}  // namespace edgestab
