#include "isp/pipeline.h"

#include "obs/obs.h"
#include "util/hashing.h"

namespace edgestab {

Image run_isp(const RawImage& raw, const IspConfig& config) {
  ES_TRACE_SCOPE("isp", "pipeline");
  RawImage work = raw;
  {
    ES_TRACE_SCOPE("isp", "black_level");
    black_level_subtract(work);
  }
  Image rgb;
  {
    ES_TRACE_SCOPE("isp", "demosaic");
    rgb = demosaic(work, config.demosaic_kind);
  }
  {
    ES_TRACE_SCOPE("isp", "white_balance");
    switch (config.wb_mode) {
      case WhiteBalanceMode::kPreset:
        white_balance_preset(rgb, config.wb_gains);
        break;
      case WhiteBalanceMode::kGrayWorld:
        white_balance_gray_world(rgb);
        break;
    }
  }
  {
    ES_TRACE_SCOPE("isp", "color_correct");
    color_correct(rgb, config.ccm);
  }
  {
    ES_TRACE_SCOPE("isp", "denoise");
    denoise_box(rgb, config.denoise_radius, config.denoise_strength);
  }
  {
    ES_TRACE_SCOPE("isp", "tone_map");
    tone_map(rgb, config.gamma, config.s_curve);
  }
  {
    ES_TRACE_SCOPE("isp", "sharpen");
    sharpen_unsharp(rgb, config.sharpen_radius, config.sharpen_amount);
  }
  {
    ES_TRACE_SCOPE("isp", "saturate");
    saturate(rgb, config.saturation);
    rgb.clamp();
  }
  return rgb;
}

std::uint64_t isp_digest(const IspConfig& config) {
  Fingerprint fp;
  fp.add("isp-config-v1");
  fp.add(config.name);
  fp.add(static_cast<int>(config.demosaic_kind));
  fp.add(static_cast<int>(config.wb_mode));
  for (float g : config.wb_gains) fp.add(static_cast<double>(g));
  for (float c : config.ccm) fp.add(static_cast<double>(c));
  fp.add(config.denoise_radius)
      .add(static_cast<double>(config.denoise_strength));
  fp.add(static_cast<double>(config.gamma))
      .add(static_cast<double>(config.s_curve));
  fp.add(config.sharpen_radius)
      .add(static_cast<double>(config.sharpen_amount));
  fp.add(static_cast<double>(config.saturation));
  return fp.value();
}

}  // namespace edgestab
