// Camera sensor model: spectral response, exposure, vignetting, PRNU,
// shot noise, read noise, black level, ADC quantization.
//
// This is the physical front of the simulated phone. Per-device parameter
// differences here (plus the per-device ISP behind it) generate the
// input-side variability that the paper measures.
#pragma once

#include <array>
#include <cstdint>

#include "image/image.h"
#include "isp/raw.h"
#include "util/rng.h"

namespace edgestab {

struct SensorConfig {
  int width = 64;
  int height = 64;
  BayerPattern pattern = BayerPattern::kRggb;

  /// Per-channel spectral response gains applied to scene linear RGB
  /// before sampling — models different color filter arrays.
  std::array<float, 3> channel_response = {1.0f, 1.0f, 1.0f};

  float exposure = 1.0f;          ///< linear gain before the ADC
  float full_well = 22000.0f;      ///< electrons at saturation (shot noise)
  float read_noise = 1.0f;        ///< electrons RMS (Gaussian)
  float prnu_sigma = 0.004f;      ///< per-pixel fixed-pattern gain spread
  float vignetting = 0.15f;       ///< corner light falloff fraction
  float black_level = 0.06f;      ///< ADC pedestal fraction
  int bit_depth = 10;

  // Optics (0 = ideal lens; both default off so fleets opt in).
  float defocus = 0.0f;            ///< blur radius in sensor pixels
  float chroma_aberration = 0.0f;  ///< radial R/B magnification split

  std::uint64_t unit_seed = 1;    ///< fixes the PRNU pattern per unit
};

/// Expose a linear-light RGB scene (values in [0, ~1], same aspect as the
/// sensor) and produce a raw mosaic. `rng` drives the *temporal* noise
/// (shot + read); the PRNU pattern is fixed by `config.unit_seed` so two
/// shots from the same unit share it, as on a real phone.
RawImage expose_sensor(const Image& scene_linear, const SensorConfig& config,
                       Pcg32& rng);

/// Stable fingerprint of the sensor configuration (for run manifests).
std::uint64_t sensor_digest(const SensorConfig& config);

}  // namespace edgestab
