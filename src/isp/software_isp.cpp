#include "isp/software_isp.h"

namespace edgestab {

IspConfig magick_isp() {
  IspConfig c;
  c.name = "magick_isp";
  c.demosaic_kind = DemosaicKind::kBilinear;
  c.wb_mode = WhiteBalanceMode::kGrayWorld;
  c.ccm = {1.05f, -0.03f, -0.02f,  //
           -0.04f, 1.06f, -0.02f,  //
           -0.02f, -0.05f, 1.07f};
  c.denoise_radius = 0;
  c.denoise_strength = 0.0f;
  c.gamma = 2.2f;
  c.s_curve = 0.0f;
  c.sharpen_radius = 0;
  c.sharpen_amount = 0.0f;
  c.saturation = 1.0f;
  return c;
}

IspConfig photo_isp() {
  IspConfig c;
  c.name = "photo_isp";
  c.demosaic_kind = DemosaicKind::kMalvar;
  c.wb_mode = WhiteBalanceMode::kPreset;
  c.wb_gains = {1.32f, 1.0f, 1.18f};
  // Warmer rendition with more cross-channel correction.
  c.ccm = {1.42f, -0.30f, -0.12f,  //
           -0.22f, 1.38f, -0.16f,  //
           -0.10f, -0.38f, 1.48f};
  c.denoise_radius = 1;
  c.denoise_strength = 0.25f;
  c.gamma = 2.3f;
  c.s_curve = 0.55f;
  c.sharpen_radius = 1;
  c.sharpen_amount = 0.8f;
  c.saturation = 1.25f;
  return c;
}

}  // namespace edgestab
