// Composable ISP pipeline: raw mosaic in, display-referred sRGB-like
// image out. Each phone profile carries its own IspConfig; the §6
// experiment swaps whole configs while holding the raw input fixed.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "image/image.h"
#include "isp/raw.h"
#include "isp/stages.h"

namespace edgestab {

enum class WhiteBalanceMode {
  kPreset,     ///< fixed per-device gains
  kGrayWorld,  ///< scene-adaptive
};

struct IspConfig {
  std::string name = "generic";

  DemosaicKind demosaic_kind = DemosaicKind::kMalvar;

  WhiteBalanceMode wb_mode = WhiteBalanceMode::kPreset;
  std::array<float, 3> wb_gains = {1.0f, 1.0f, 1.0f};

  /// Linear-light color correction matrix (row-major).
  std::array<float, 9> ccm = {1, 0, 0, 0, 1, 0, 0, 0, 1};

  int denoise_radius = 1;
  float denoise_strength = 0.3f;

  float gamma = 2.2f;
  float s_curve = 0.2f;

  int sharpen_radius = 1;
  float sharpen_amount = 0.4f;

  float saturation = 1.0f;
};

/// Run the full pipeline:
/// black level -> demosaic -> WB -> CCM -> denoise -> tone map ->
/// sharpen -> saturation.
Image run_isp(const RawImage& raw, const IspConfig& config);

/// Stable fingerprint of every field that changes the pipeline's output —
/// run manifests record it so a CSV row can be traced to the exact ISP
/// configuration that produced it.
std::uint64_t isp_digest(const IspConfig& config);

}  // namespace edgestab
