#include "image/resize.h"

#include <algorithm>
#include <cmath>

namespace edgestab {

namespace {

float catmull_rom(float p0, float p1, float p2, float p3, float t) {
  float a = -0.5f * p0 + 1.5f * p1 - 1.5f * p2 + 0.5f * p3;
  float b = p0 - 2.5f * p1 + 2.0f * p2 - 0.5f * p3;
  float c = -0.5f * p0 + 0.5f * p2;
  return ((a * t + b) * t + c) * t + p1;
}

Image resize_nearest(const Image& src, int out_w, int out_h) {
  Image out(out_w, out_h, src.channels());
  for (int y = 0; y < out_h; ++y) {
    int sy = std::min(static_cast<int>((y + 0.5f) * src.height() / out_h),
                      src.height() - 1);
    for (int x = 0; x < out_w; ++x) {
      int sx = std::min(static_cast<int>((x + 0.5f) * src.width() / out_w),
                        src.width() - 1);
      for (int c = 0; c < src.channels(); ++c)
        out.at(x, y, c) = src.at(sx, sy, c);
    }
  }
  return out;
}

Image resize_bilinear(const Image& src, int out_w, int out_h) {
  Image out(out_w, out_h, src.channels());
  float sx_scale = static_cast<float>(src.width()) / out_w;
  float sy_scale = static_cast<float>(src.height()) / out_h;
  for (int y = 0; y < out_h; ++y) {
    float sy = (y + 0.5f) * sy_scale - 0.5f;
    for (int x = 0; x < out_w; ++x) {
      float sx = (x + 0.5f) * sx_scale - 0.5f;
      for (int c = 0; c < src.channels(); ++c)
        out.at(x, y, c) = src.sample_bilinear(sx, sy, c);
    }
  }
  return out;
}

Image resize_bicubic(const Image& src, int out_w, int out_h) {
  Image out(out_w, out_h, src.channels());
  float sx_scale = static_cast<float>(src.width()) / out_w;
  float sy_scale = static_cast<float>(src.height()) / out_h;
  for (int y = 0; y < out_h; ++y) {
    float sy = (y + 0.5f) * sy_scale - 0.5f;
    int y1 = static_cast<int>(std::floor(sy));
    float ty = sy - y1;
    for (int x = 0; x < out_w; ++x) {
      float sx = (x + 0.5f) * sx_scale - 0.5f;
      int x1 = static_cast<int>(std::floor(sx));
      float tx = sx - x1;
      for (int c = 0; c < src.channels(); ++c) {
        float rows[4];
        for (int j = 0; j < 4; ++j) {
          int yy = y1 - 1 + j;
          rows[j] = catmull_rom(src.at_clamped(x1 - 1, yy, c),
                                src.at_clamped(x1, yy, c),
                                src.at_clamped(x1 + 1, yy, c),
                                src.at_clamped(x1 + 2, yy, c), tx);
        }
        out.at(x, y, c) =
            catmull_rom(rows[0], rows[1], rows[2], rows[3], ty);
      }
    }
  }
  return out;
}

Image resize_area(const Image& src, int out_w, int out_h) {
  Image out(out_w, out_h, src.channels());
  float sx_scale = static_cast<float>(src.width()) / out_w;
  float sy_scale = static_cast<float>(src.height()) / out_h;
  for (int y = 0; y < out_h; ++y) {
    int y0 = static_cast<int>(y * sy_scale);
    int y1 = std::max(y0 + 1, static_cast<int>((y + 1) * sy_scale));
    y1 = std::min(y1, src.height());
    for (int x = 0; x < out_w; ++x) {
      int x0 = static_cast<int>(x * sx_scale);
      int x1 = std::max(x0 + 1, static_cast<int>((x + 1) * sx_scale));
      x1 = std::min(x1, src.width());
      float inv = 1.0f / static_cast<float>((x1 - x0) * (y1 - y0));
      for (int c = 0; c < src.channels(); ++c) {
        float sum = 0.0f;
        for (int yy = y0; yy < y1; ++yy)
          for (int xx = x0; xx < x1; ++xx) sum += src.at(xx, yy, c);
        out.at(x, y, c) = sum * inv;
      }
    }
  }
  return out;
}

}  // namespace

Image resize(const Image& src, int out_w, int out_h, ResizeFilter filter) {
  ES_CHECK(!src.empty());
  ES_CHECK(out_w > 0 && out_h > 0);
  if (out_w == src.width() && out_h == src.height()) return src;
  switch (filter) {
    case ResizeFilter::kNearest: return resize_nearest(src, out_w, out_h);
    case ResizeFilter::kBilinear: return resize_bilinear(src, out_w, out_h);
    case ResizeFilter::kBicubic: return resize_bicubic(src, out_w, out_h);
    case ResizeFilter::kArea: return resize_area(src, out_w, out_h);
  }
  ES_CHECK_MSG(false, "unknown filter");
  return {};
}

Image crop(const Image& src, int x0, int y0, int w, int h) {
  ES_CHECK(x0 >= 0 && y0 >= 0 && w > 0 && h > 0);
  ES_CHECK(x0 + w <= src.width() && y0 + h <= src.height());
  Image out(w, h, src.channels());
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      for (int c = 0; c < src.channels(); ++c)
        out.at(x, y, c) = src.at(x0 + x, y0 + y, c);
  return out;
}

Image flip_horizontal(const Image& src) {
  Image out(src.width(), src.height(), src.channels());
  for (int y = 0; y < src.height(); ++y)
    for (int x = 0; x < src.width(); ++x)
      for (int c = 0; c < src.channels(); ++c)
        out.at(x, y, c) = src.at(src.width() - 1 - x, y, c);
  return out;
}

Affine Affine::identity() { return {{1, 0, 0, 0, 1, 0}}; }

Affine Affine::translate(float dx, float dy) {
  return {{1, 0, dx, 0, 1, dy}};
}

Affine Affine::rotate_about(float radians, float cx, float cy) {
  float c = std::cos(radians);
  float s = std::sin(radians);
  // Rotate about (cx, cy): T(c) * R * T(-c)
  return {{c, -s, cx - c * cx + s * cy, s, c, cy - s * cx - c * cy}};
}

Affine Affine::scale_about(float sx, float sy, float cx, float cy) {
  return {{sx, 0, cx - sx * cx, 0, sy, cy - sy * cy}};
}

Affine Affine::compose(const Affine& inner) const {
  // result(p) = this(inner(p))
  Affine r;
  r.m[0] = m[0] * inner.m[0] + m[1] * inner.m[3];
  r.m[1] = m[0] * inner.m[1] + m[1] * inner.m[4];
  r.m[2] = m[0] * inner.m[2] + m[1] * inner.m[5] + m[2];
  r.m[3] = m[3] * inner.m[0] + m[4] * inner.m[3];
  r.m[4] = m[3] * inner.m[1] + m[4] * inner.m[4];
  r.m[5] = m[3] * inner.m[2] + m[4] * inner.m[5] + m[5];
  return r;
}

void Affine::apply(float x, float y, float& ox, float& oy) const {
  ox = m[0] * x + m[1] * y + m[2];
  oy = m[3] * x + m[4] * y + m[5];
}

Image warp_affine(const Image& src, const Affine& out_to_src, int out_w,
                  int out_h) {
  Image out(out_w, out_h, src.channels());
  for (int y = 0; y < out_h; ++y)
    for (int x = 0; x < out_w; ++x) {
      float sx, sy;
      out_to_src.apply(static_cast<float>(x), static_cast<float>(y), sx, sy);
      for (int c = 0; c < src.channels(); ++c)
        out.at(x, y, c) = src.sample_bilinear(sx, sy, c);
    }
  return out;
}

}  // namespace edgestab
