#include "image/color.h"

#include <algorithm>
#include <cmath>

namespace edgestab {

void rgb_to_ycbcr(float r, float g, float b, float& y, float& cb, float& cr) {
  y = 0.299f * r + 0.587f * g + 0.114f * b;
  cb = 0.5f + (b - y) * 0.564f;
  cr = 0.5f + (r - y) * 0.713f;
}

void ycbcr_to_rgb(float y, float cb, float cr, float& r, float& g, float& b) {
  float cbc = cb - 0.5f;
  float crc = cr - 0.5f;
  r = y + 1.403f * crc;
  g = y - 0.344f * cbc - 0.714f * crc;
  b = y + 1.773f * cbc;
}

Image rgb_to_ycbcr(const Image& rgb) {
  ES_CHECK(rgb.channels() == 3);
  Image out(rgb.width(), rgb.height(), 3);
  for (int y = 0; y < rgb.height(); ++y)
    for (int x = 0; x < rgb.width(); ++x) {
      float yy, cb, cr;
      rgb_to_ycbcr(rgb.at(x, y, 0), rgb.at(x, y, 1), rgb.at(x, y, 2), yy, cb,
                   cr);
      out.at(x, y, 0) = yy;
      out.at(x, y, 1) = cb;
      out.at(x, y, 2) = cr;
    }
  return out;
}

Image ycbcr_to_rgb(const Image& ycc) {
  ES_CHECK(ycc.channels() == 3);
  Image out(ycc.width(), ycc.height(), 3);
  for (int y = 0; y < ycc.height(); ++y)
    for (int x = 0; x < ycc.width(); ++x) {
      float r, g, b;
      ycbcr_to_rgb(ycc.at(x, y, 0), ycc.at(x, y, 1), ycc.at(x, y, 2), r, g,
                   b);
      out.at(x, y, 0) = r;
      out.at(x, y, 1) = g;
      out.at(x, y, 2) = b;
    }
  return out;
}

void rgb_to_hsv(float r, float g, float b, float& h, float& s, float& v) {
  float mx = std::max({r, g, b});
  float mn = std::min({r, g, b});
  float d = mx - mn;
  v = mx;
  s = mx > 0.0f ? d / mx : 0.0f;
  if (d <= 0.0f) {
    h = 0.0f;
    return;
  }
  if (mx == r) {
    h = (g - b) / d;
    if (h < 0.0f) h += 6.0f;
  } else if (mx == g) {
    h = (b - r) / d + 2.0f;
  } else {
    h = (r - g) / d + 4.0f;
  }
  h /= 6.0f;
}

void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b) {
  h = h - std::floor(h);  // wrap into [0,1)
  float hf = h * 6.0f;
  int i = static_cast<int>(hf) % 6;
  float f = hf - std::floor(hf);
  float p = v * (1.0f - s);
  float q = v * (1.0f - s * f);
  float t = v * (1.0f - s * (1.0f - f));
  switch (i) {
    case 0: r = v; g = t; b = p; break;
    case 1: r = q; g = v; b = p; break;
    case 2: r = p; g = v; b = t; break;
    case 3: r = p; g = q; b = v; break;
    case 4: r = t; g = p; b = v; break;
    default: r = v; g = p; b = q; break;
  }
}

float srgb_encode(float linear) {
  linear = std::clamp(linear, 0.0f, 1.0f);
  if (linear <= 0.0031308f) return 12.92f * linear;
  return 1.055f * std::pow(linear, 1.0f / 2.4f) - 0.055f;
}

float srgb_decode(float encoded) {
  encoded = std::clamp(encoded, 0.0f, 1.0f);
  if (encoded <= 0.04045f) return encoded / 12.92f;
  return std::pow((encoded + 0.055f) / 1.055f, 2.4f);
}

Image srgb_encode(const Image& linear) {
  Image out(linear.width(), linear.height(), linear.channels());
  auto src = linear.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = srgb_encode(src[i]);
  return out;
}

Image srgb_decode(const Image& encoded) {
  Image out(encoded.width(), encoded.height(), encoded.channels());
  auto src = encoded.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = srgb_decode(src[i]);
  return out;
}

void apply_color_matrix(Image& img, const std::array<float, 9>& m) {
  ES_CHECK(img.channels() == 3);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float r = img.at(x, y, 0);
      float g = img.at(x, y, 1);
      float b = img.at(x, y, 2);
      img.at(x, y, 0) = m[0] * r + m[1] * g + m[2] * b;
      img.at(x, y, 1) = m[3] * r + m[4] * g + m[5] * b;
      img.at(x, y, 2) = m[6] * r + m[7] * g + m[8] * b;
    }
}

void adjust_hsv(Image& img, float hue_offset, float sat_mul, float val_mul) {
  ES_CHECK(img.channels() == 3);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float h, s, v;
      rgb_to_hsv(img.at(x, y, 0), img.at(x, y, 1), img.at(x, y, 2), h, s, v);
      h += hue_offset;
      s = std::clamp(s * sat_mul, 0.0f, 1.0f);
      v = std::clamp(v * val_mul, 0.0f, 1.0f);
      float r, g, b;
      hsv_to_rgb(h, s, v, r, g, b);
      img.at(x, y, 0) = r;
      img.at(x, y, 1) = g;
      img.at(x, y, 2) = b;
    }
}

void adjust_contrast_brightness(Image& img, float contrast, float brightness) {
  for (float& v : img.data()) {
    v = std::clamp((v - 0.5f) * contrast + 0.5f + brightness, 0.0f, 1.0f);
  }
}

}  // namespace edgestab
