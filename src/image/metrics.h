// Image comparison metrics — PSNR for codec tests, pixel-difference maps
// for the Figure-1 style "two shots, tiny diff, different label" analysis.
#pragma once

#include "image/image.h"

namespace edgestab {

/// Mean squared error across all channels.
double mse(const Image& a, const Image& b);

/// Peak signal-to-noise ratio in dB (peak = 1.0). Returns +inf for
/// identical images.
double psnr(const Image& a, const Image& b);

/// Mean absolute difference.
double mean_abs_diff(const Image& a, const Image& b);

/// Mean structural similarity over 8x8 blocks (per channel, averaged).
/// 1.0 for identical images; the standard C1/C2 stabilizers assume a
/// [0,1] dynamic range. Used by the drift auditor to characterize
/// *structural* per-stage divergence where PSNR only sees energy.
double ssim(const Image& a, const Image& b);

/// Fraction of pixels whose max-channel absolute difference exceeds
/// `threshold` (the paper's Fig. 1 uses 5% => threshold = 0.05).
double diff_fraction(const Image& a, const Image& b, float threshold);

/// Binary mask (1 channel, values 0/1) of pixels differing by more than
/// `threshold` in any channel — the red-dot map of Fig. 1.
Image diff_mask(const Image& a, const Image& b, float threshold);

}  // namespace edgestab
