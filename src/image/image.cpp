#include "image/image.h"

#include <algorithm>
#include <cmath>

namespace edgestab {

Image::Image(int width, int height, int channels, float fill)
    : width_(width),
      height_(height),
      channels_(channels),
      data_(static_cast<std::size_t>(width) * height * channels, fill) {
  ES_CHECK(width > 0 && height > 0 && channels > 0);
}

float Image::at_clamped(int x, int y, int c) const {
  x = std::clamp(x, 0, width_ - 1);
  y = std::clamp(y, 0, height_ - 1);
  return at(x, y, c);
}

float Image::sample_bilinear(float x, float y, int c) const {
  float fx = std::floor(x);
  float fy = std::floor(y);
  int x0 = static_cast<int>(fx);
  int y0 = static_cast<int>(fy);
  float tx = x - fx;
  float ty = y - fy;
  float v00 = at_clamped(x0, y0, c);
  float v10 = at_clamped(x0 + 1, y0, c);
  float v01 = at_clamped(x0, y0 + 1, c);
  float v11 = at_clamped(x0 + 1, y0 + 1, c);
  float top = v00 + (v10 - v00) * tx;
  float bot = v01 + (v11 - v01) * tx;
  return top + (bot - top) * ty;
}

void Image::clamp(float lo, float hi) {
  for (float& v : data_) v = std::clamp(v, lo, hi);
}

void Image::add_scaled(const Image& other, float scale) {
  ES_CHECK(same_shape(other));
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += other.data_[i] * scale;
}

void Image::scale(float s) {
  for (float& v : data_) v *= s;
}

ImageU8::ImageU8(int width, int height, int channels, std::uint8_t fill)
    : width_(width),
      height_(height),
      channels_(channels),
      data_(static_cast<std::size_t>(width) * height * channels, fill) {
  ES_CHECK(width > 0 && height > 0 && channels > 0);
}

ImageU8 to_u8(const Image& img) {
  ImageU8 out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      for (int c = 0; c < img.channels(); ++c) {
        float v = std::clamp(img.at(x, y, c), 0.0f, 1.0f);
        out.at(x, y, c) = static_cast<std::uint8_t>(v * 255.0f + 0.5f);
      }
  return out;
}

Image to_float(const ImageU8& img) {
  Image out(img.width(), img.height(), img.channels());
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x)
      for (int c = 0; c < img.channels(); ++c)
        out.at(x, y, c) = static_cast<float>(img.at(x, y, c)) / 255.0f;
  return out;
}

}  // namespace edgestab
