#include "image/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace edgestab {

double mse(const Image& a, const Image& b) {
  ES_CHECK(a.same_shape(b));
  ES_CHECK(!a.empty());
  double sum = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    double d = static_cast<double>(pa[i]) - pb[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pa.size());
}

double psnr(const Image& a, const Image& b) {
  double m = mse(a, b);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / m);
}

double mean_abs_diff(const Image& a, const Image& b) {
  ES_CHECK(a.same_shape(b));
  ES_CHECK(!a.empty());
  double sum = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i)
    sum += std::abs(static_cast<double>(pa[i]) - pb[i]);
  return sum / static_cast<double>(pa.size());
}

double ssim(const Image& a, const Image& b) {
  ES_CHECK(a.same_shape(b));
  ES_CHECK(!a.empty());
  constexpr int kBlock = 8;
  constexpr double kC1 = 0.01 * 0.01;  // (K1 * L)^2, L = 1.0
  constexpr double kC2 = 0.03 * 0.03;  // (K2 * L)^2
  double total = 0.0;
  std::size_t blocks = 0;
  for (int c = 0; c < a.channels(); ++c) {
    for (int by = 0; by < a.height(); by += kBlock) {
      for (int bx = 0; bx < a.width(); bx += kBlock) {
        int x1 = std::min(bx + kBlock, a.width());
        int y1 = std::min(by + kBlock, a.height());
        double sa = 0.0, sb = 0.0, saa = 0.0, sbb = 0.0, sab = 0.0;
        int n = 0;
        for (int y = by; y < y1; ++y)
          for (int x = bx; x < x1; ++x) {
            double va = a.at(x, y, c);
            double vb = b.at(x, y, c);
            sa += va;
            sb += vb;
            saa += va * va;
            sbb += vb * vb;
            sab += va * vb;
            ++n;
          }
        double inv = 1.0 / n;
        double ma = sa * inv;
        double mb = sb * inv;
        double var_a = std::max(0.0, saa * inv - ma * ma);
        double var_b = std::max(0.0, sbb * inv - mb * mb);
        double cov = sab * inv - ma * mb;
        double num = (2.0 * ma * mb + kC1) * (2.0 * cov + kC2);
        double den = (ma * ma + mb * mb + kC1) * (var_a + var_b + kC2);
        total += num / den;
        ++blocks;
      }
    }
  }
  return total / static_cast<double>(blocks);
}

double diff_fraction(const Image& a, const Image& b, float threshold) {
  ES_CHECK(a.same_shape(b));
  std::size_t over = 0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) {
      float mx = 0.0f;
      for (int c = 0; c < a.channels(); ++c)
        mx = std::max(mx, std::abs(a.at(x, y, c) - b.at(x, y, c)));
      if (mx > threshold) ++over;
    }
  return static_cast<double>(over) / static_cast<double>(a.pixel_count());
}

Image diff_mask(const Image& a, const Image& b, float threshold) {
  ES_CHECK(a.same_shape(b));
  Image mask(a.width(), a.height(), 1);
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) {
      float mx = 0.0f;
      for (int c = 0; c < a.channels(); ++c)
        mx = std::max(mx, std::abs(a.at(x, y, c) - b.at(x, y, c)));
      mask.at(x, y, 0) = mx > threshold ? 1.0f : 0.0f;
    }
  return mask;
}

}  // namespace edgestab
