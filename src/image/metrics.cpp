#include "image/metrics.h"

#include <cmath>
#include <limits>

namespace edgestab {

double mse(const Image& a, const Image& b) {
  ES_CHECK(a.same_shape(b));
  ES_CHECK(!a.empty());
  double sum = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    double d = static_cast<double>(pa[i]) - pb[i];
    sum += d * d;
  }
  return sum / static_cast<double>(pa.size());
}

double psnr(const Image& a, const Image& b) {
  double m = mse(a, b);
  if (m <= 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(1.0 / m);
}

double mean_abs_diff(const Image& a, const Image& b) {
  ES_CHECK(a.same_shape(b));
  ES_CHECK(!a.empty());
  double sum = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (std::size_t i = 0; i < pa.size(); ++i)
    sum += std::abs(static_cast<double>(pa[i]) - pb[i]);
  return sum / static_cast<double>(pa.size());
}

double diff_fraction(const Image& a, const Image& b, float threshold) {
  ES_CHECK(a.same_shape(b));
  std::size_t over = 0;
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) {
      float mx = 0.0f;
      for (int c = 0; c < a.channels(); ++c)
        mx = std::max(mx, std::abs(a.at(x, y, c) - b.at(x, y, c)));
      if (mx > threshold) ++over;
    }
  return static_cast<double>(over) / static_cast<double>(a.pixel_count());
}

Image diff_mask(const Image& a, const Image& b, float threshold) {
  ES_CHECK(a.same_shape(b));
  Image mask(a.width(), a.height(), 1);
  for (int y = 0; y < a.height(); ++y)
    for (int x = 0; x < a.width(); ++x) {
      float mx = 0.0f;
      for (int c = 0; c < a.channels(); ++c)
        mx = std::max(mx, std::abs(a.at(x, y, c) - b.at(x, y, c)));
      mask.at(x, y, 0) = mx > threshold ? 1.0f : 0.0f;
    }
  return mask;
}

}  // namespace edgestab
