#include "image/draw.h"

namespace edgestab {

void fill(Image& img, const Rgb& color) {
  ES_CHECK(img.channels() == 3);
  auto r = img.plane(0);
  auto g = img.plane(1);
  auto b = img.plane(2);
  std::fill(r.begin(), r.end(), color.r);
  std::fill(g.begin(), g.end(), color.g);
  std::fill(b.begin(), b.end(), color.b);
}

void fill_vertical_gradient(Image& img, const Rgb& top, const Rgb& bottom) {
  ES_CHECK(img.channels() == 3);
  for (int y = 0; y < img.height(); ++y) {
    float t = img.height() > 1
                  ? static_cast<float>(y) / (img.height() - 1)
                  : 0.0f;
    Rgb c = top.mixed(bottom, t);
    for (int x = 0; x < img.width(); ++x) {
      img.at(x, y, 0) = c.r;
      img.at(x, y, 1) = c.g;
      img.at(x, y, 2) = c.b;
    }
  }
}

namespace {
// Hash of lattice coordinates -> [0,1).
float lattice_hash(std::int64_t ix, std::int64_t iy, std::uint64_t seed) {
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h ^= static_cast<std::uint64_t>(iy) * 0x94d049bb133111ebULL;
  h = (h ^ (h >> 27)) * 0x2545f4914f6cdd1dULL;
  h ^= h >> 31;
  return static_cast<float>(h >> 40) / 16777216.0f;
}

float smooth(float t) { return t * t * (3.0f - 2.0f * t); }
}  // namespace

float value_noise(float x, float y, float scale, std::uint64_t seed) {
  float fx = x / scale;
  float fy = y / scale;
  auto ix = static_cast<std::int64_t>(std::floor(fx));
  auto iy = static_cast<std::int64_t>(std::floor(fy));
  float tx = smooth(fx - static_cast<float>(ix));
  float ty = smooth(fy - static_cast<float>(iy));
  float v00 = lattice_hash(ix, iy, seed);
  float v10 = lattice_hash(ix + 1, iy, seed);
  float v01 = lattice_hash(ix, iy + 1, seed);
  float v11 = lattice_hash(ix + 1, iy + 1, seed);
  float top = v00 + (v10 - v00) * tx;
  float bot = v01 + (v11 - v01) * tx;
  return top + (bot - top) * ty;
}

void paint_highlight(Image& img, float cx, float cy, float rx, float ry,
                     float strength) {
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float dx = (static_cast<float>(x) + 0.5f - cx) / rx;
      float dy = (static_cast<float>(y) + 0.5f - cy) / ry;
      float d2 = dx * dx + dy * dy;
      if (d2 >= 1.0f) continue;
      float a = (1.0f - d2) * strength;
      for (int c = 0; c < 3; ++c)
        img.at(x, y, c) =
            std::clamp(img.at(x, y, c) + (1.0f - img.at(x, y, c)) * a, 0.0f,
                       1.0f);
    }
}

void paint_shadow(Image& img, float cx, float cy, float rx, float ry,
                  float strength) {
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float dx = (static_cast<float>(x) + 0.5f - cx) / rx;
      float dy = (static_cast<float>(y) + 0.5f - cy) / ry;
      float d2 = dx * dx + dy * dy;
      if (d2 >= 1.0f) continue;
      float a = (1.0f - d2) * strength;
      for (int c = 0; c < 3; ++c)
        img.at(x, y, c) = std::clamp(img.at(x, y, c) * (1.0f - a), 0.0f, 1.0f);
    }
}

}  // namespace edgestab
