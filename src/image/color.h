// Color space conversions used by codecs (YCbCr), the ISP (gamma, white
// balance) and distortion-noise augmentation (HSV).
#pragma once

#include <array>

#include "image/image.h"

namespace edgestab {

/// Full-range BT.601 RGB -> YCbCr. Inputs/outputs in [0,1]; Cb/Cr are
/// stored offset by +0.5 so the whole image stays in [0,1].
void rgb_to_ycbcr(float r, float g, float b, float& y, float& cb, float& cr);
void ycbcr_to_rgb(float y, float cb, float cr, float& r, float& g, float& b);

/// Whole-image conversions (3-channel planar).
Image rgb_to_ycbcr(const Image& rgb);
Image ycbcr_to_rgb(const Image& ycc);

/// RGB <-> HSV, all components in [0,1] (hue wraps).
void rgb_to_hsv(float r, float g, float b, float& h, float& s, float& v);
void hsv_to_rgb(float h, float s, float v, float& r, float& g, float& b);

/// sRGB transfer function (approximate 2.2 pipeline uses the exact
/// piecewise curve for fidelity).
float srgb_encode(float linear);
float srgb_decode(float encoded);
Image srgb_encode(const Image& linear);
Image srgb_decode(const Image& encoded);

/// Apply a 3x3 color matrix (row-major) to a 3-channel image in place.
void apply_color_matrix(Image& img, const std::array<float, 9>& m);

/// Adjust hue (offset in turns), saturation (multiplier), value
/// (multiplier) — used by the distortion noise generator.
void adjust_hsv(Image& img, float hue_offset, float sat_mul, float val_mul);

/// Adjust contrast around 0.5 and brightness (additive), clamped.
void adjust_contrast_brightness(Image& img, float contrast, float brightness);

}  // namespace edgestab
