// Core image types.
//
// `Image` is a planar float32 image (channel planes of H*W) with values
// nominally in [0,1] for display-referred data; linear-light and raw data
// also use it with documented ranges. `ImageU8` is an interleaved 8-bit
// image, the form codecs and the "decoded file buffer" audits operate on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/alloc_track.h"
#include "util/check.h"

namespace edgestab {

/// Planar float image: data()[c*H*W + y*W + x].
class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels, float fill = 0.0f);

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * height_;
  }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int x, int y, int c) {
    ES_DCHECK(in_bounds(x, y, c));
    return data_[plane_offset(c) + static_cast<std::size_t>(y) * width_ + x];
  }
  float at(int x, int y, int c) const {
    ES_DCHECK(in_bounds(x, y, c));
    return data_[plane_offset(c) + static_cast<std::size_t>(y) * width_ + x];
  }

  /// Clamp-to-edge sampling (for filters near borders).
  float at_clamped(int x, int y, int c) const;

  /// Bilinear sample at a continuous position (clamped borders).
  float sample_bilinear(float x, float y, int c) const;

  std::span<float> plane(int c) {
    ES_DCHECK(c >= 0 && c < channels_);
    return {data_.data() + plane_offset(c), pixel_count()};
  }
  std::span<const float> plane(int c) const {
    ES_DCHECK(c >= 0 && c < channels_);
    return {data_.data() + plane_offset(c), pixel_count()};
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  /// Clamp every value into [lo, hi].
  void clamp(float lo = 0.0f, float hi = 1.0f);

  /// Per-element arithmetic with shape checks.
  void add_scaled(const Image& other, float scale);
  void scale(float s);

  bool same_shape(const Image& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }

 private:
  bool in_bounds(int x, int y, int c) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 &&
           c < channels_;
  }
  std::size_t plane_offset(int c) const {
    return static_cast<std::size_t>(c) * pixel_count();
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  /// Tracked for profiler allocation attribution (util/alloc_track.h);
  /// plain std::vector in profile-off builds.
  TrackedVector<float, AllocSite::kImage> data_;
};

/// Interleaved 8-bit image: data()[ (y*W + x)*C + c ].
class ImageU8 {
 public:
  ImageU8() = default;
  ImageU8(int width, int height, int channels, std::uint8_t fill = 0);

  int width() const { return width_; }
  int height() const { return height_; }
  int channels() const { return channels_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::uint8_t& at(int x, int y, int c) {
    ES_DCHECK(in_bounds(x, y, c));
    return data_[(static_cast<std::size_t>(y) * width_ + x) * channels_ + c];
  }
  std::uint8_t at(int x, int y, int c) const {
    ES_DCHECK(in_bounds(x, y, c));
    return data_[(static_cast<std::size_t>(y) * width_ + x) * channels_ + c];
  }

  std::span<std::uint8_t> data() { return data_; }
  std::span<const std::uint8_t> data() const { return data_; }

  bool same_shape(const ImageU8& other) const {
    return width_ == other.width_ && height_ == other.height_ &&
           channels_ == other.channels_;
  }
  bool operator==(const ImageU8& other) const {
    return same_shape(other) && data_ == other.data_;
  }

 private:
  bool in_bounds(int x, int y, int c) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_ && c >= 0 &&
           c < channels_;
  }

  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  TrackedVector<std::uint8_t, AllocSite::kImage> data_;
};

/// Quantize a [0,1] float image to 8 bits (round-half-up).
ImageU8 to_u8(const Image& img);
/// Expand an 8-bit image to floats in [0,1].
Image to_float(const ImageU8& img);

}  // namespace edgestab
