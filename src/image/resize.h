// Resampling and geometric transforms.
#pragma once

#include "image/image.h"

namespace edgestab {

enum class ResizeFilter {
  kNearest,
  kBilinear,
  kBicubic,  ///< Catmull-Rom
  kArea,     ///< box average — best for large downscales (screen capture)
};

/// Resize to (out_w, out_h) with the given filter.
Image resize(const Image& src, int out_w, int out_h,
             ResizeFilter filter = ResizeFilter::kBilinear);

/// Crop a rectangle; the rectangle must lie fully inside the source.
Image crop(const Image& src, int x0, int y0, int w, int h);

/// Horizontal mirror.
Image flip_horizontal(const Image& src);

/// 2x3 affine matrix mapping output pixel coordinates to source
/// coordinates: src = M * [x, y, 1]^T.
struct Affine {
  float m[6];

  static Affine identity();
  static Affine translate(float dx, float dy);
  static Affine rotate_about(float radians, float cx, float cy);
  static Affine scale_about(float sx, float sy, float cx, float cy);
  /// Composition: (a.then(b)) maps through a first, then b... note this
  /// is in *output->source* convention: apply(a, apply(b, p)).
  Affine compose(const Affine& inner) const;
  void apply(float x, float y, float& ox, float& oy) const;
};

/// Warp with bilinear sampling and clamped borders.
Image warp_affine(const Image& src, const Affine& out_to_src, int out_w,
                  int out_h);

}  // namespace edgestab
