// Anti-aliased procedural drawing primitives.
//
// The scene renderer builds photograph-like stimuli out of signed-distance
// shapes composited with soft edges, plus gradient and texture fills.
// Coordinates are in pixels; colors are RGB in [0,1].
#pragma once

#include <algorithm>
#include <cmath>

#include "image/image.h"
#include "util/rng.h"

namespace edgestab {

struct Rgb {
  float r = 0, g = 0, b = 0;

  Rgb scaled(float s) const { return {r * s, g * s, b * s}; }
  Rgb mixed(const Rgb& o, float t) const {
    return {r + (o.r - r) * t, g + (o.g - g) * t, b + (o.b - b) * t};
  }
};

/// Fill the whole image with a constant color.
void fill(Image& img, const Rgb& color);

/// Vertical linear gradient from top color to bottom color.
void fill_vertical_gradient(Image& img, const Rgb& top, const Rgb& bottom);

/// Composite `color` with per-pixel alpha from an SDF: alpha =
/// clamp(0.5 - sdf, 0, 1) * opacity, i.e. ~1px anti-aliased edges.
/// Sdf is any callable float(float x, float y) returning signed distance
/// (negative inside).
template <typename Sdf>
void paint_sdf(Image& img, const Sdf& sdf, const Rgb& color,
               float opacity = 1.0f) {
  ES_CHECK(img.channels() == 3);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float d = sdf(static_cast<float>(x) + 0.5f,
                    static_cast<float>(y) + 0.5f);
      float a = std::clamp(0.5f - d, 0.0f, 1.0f) * opacity;
      if (a <= 0.0f) continue;
      img.at(x, y, 0) += (color.r - img.at(x, y, 0)) * a;
      img.at(x, y, 1) += (color.g - img.at(x, y, 1)) * a;
      img.at(x, y, 2) += (color.b - img.at(x, y, 2)) * a;
    }
}

/// Same, but the fill is a vertical gradient between two colors across
/// [y0, y1] — used for cylindrical shading on bottles.
template <typename Sdf>
void paint_sdf_hgrad(Image& img, const Sdf& sdf, const Rgb& left,
                     const Rgb& right, float x0, float x1,
                     float opacity = 1.0f) {
  ES_CHECK(img.channels() == 3);
  float span = std::max(x1 - x0, 1e-3f);
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float fx = static_cast<float>(x) + 0.5f;
      float d = sdf(fx, static_cast<float>(y) + 0.5f);
      float a = std::clamp(0.5f - d, 0.0f, 1.0f) * opacity;
      if (a <= 0.0f) continue;
      float t = std::clamp((fx - x0) / span, 0.0f, 1.0f);
      // Cosine ramp approximates cylinder shading.
      float shade = 0.5f - 0.5f * std::cos(t * 3.14159265f);
      Rgb c = left.mixed(right, shade);
      img.at(x, y, 0) += (c.r - img.at(x, y, 0)) * a;
      img.at(x, y, 1) += (c.g - img.at(x, y, 1)) * a;
      img.at(x, y, 2) += (c.b - img.at(x, y, 2)) * a;
    }
}

// ---- Signed distance functions -------------------------------------------

/// Circle of radius r centered at (cx, cy).
struct SdfCircle {
  float cx, cy, r;
  float operator()(float x, float y) const {
    return std::sqrt((x - cx) * (x - cx) + (y - cy) * (y - cy)) - r;
  }
};

/// Axis-aligned ellipse (approximate SDF — exact near boundary for
/// moderate aspect ratios, which is all rendering needs).
struct SdfEllipse {
  float cx, cy, rx, ry;
  float operator()(float x, float y) const {
    float dx = (x - cx) / rx;
    float dy = (y - cy) / ry;
    float k = std::sqrt(dx * dx + dy * dy);
    return (k - 1.0f) * std::min(rx, ry);
  }
};

/// Axis-aligned rounded rectangle; (cx, cy) center, half extents hx/hy,
/// corner radius rad.
struct SdfRoundRect {
  float cx, cy, hx, hy, rad;
  float operator()(float x, float y) const {
    float qx = std::abs(x - cx) - (hx - rad);
    float qy = std::abs(y - cy) - (hy - rad);
    float ox = std::max(qx, 0.0f);
    float oy = std::max(qy, 0.0f);
    return std::sqrt(ox * ox + oy * oy) +
           std::min(std::max(qx, qy), 0.0f) - rad;
  }
};

/// Capsule (thick line segment) from (x0,y0) to (x1,y1) with radius r.
struct SdfCapsule {
  float x0, y0, x1, y1, r;
  float operator()(float x, float y) const {
    float pax = x - x0, pay = y - y0;
    float bax = x1 - x0, bay = y1 - y0;
    float h = std::clamp((pax * bax + pay * bay) /
                             std::max(bax * bax + bay * bay, 1e-6f),
                         0.0f, 1.0f);
    float dx = pax - bax * h, dy = pay - bay * h;
    return std::sqrt(dx * dx + dy * dy) - r;
  }
};

/// Isosceles trapezoid symmetric about x = cx, spanning y in
/// [cy - h/2, cy + h/2], half-width wt at the top and wb at the bottom.
/// Used for bottle necks, bag silhouettes, etc.
struct SdfTrapezoid {
  float cx, cy, h, wt, wb;
  float operator()(float x, float y) const {
    float t = std::clamp((y - (cy - h * 0.5f)) / h, 0.0f, 1.0f);
    float half_w = wt + (wb - wt) * t;
    float dx = std::abs(x - cx) - half_w;
    float dy = std::max((cy - h * 0.5f) - y, y - (cy + h * 0.5f));
    return std::max(dx, dy);
  }
};

// ---- Textures -------------------------------------------------------------

/// Deterministic value noise in [0,1] at integer lattice points, smoothly
/// interpolated; `seed` selects the field.
float value_noise(float x, float y, float scale, std::uint64_t seed);

/// Add zero-mean speckle texture to a region selected by an SDF.
template <typename Sdf>
void texture_speckle(Image& img, const Sdf& sdf, float amplitude, float scale,
                     std::uint64_t seed) {
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float fx = static_cast<float>(x) + 0.5f;
      float fy = static_cast<float>(y) + 0.5f;
      if (sdf(fx, fy) > 0.0f) continue;
      float n = (value_noise(fx, fy, scale, seed) - 0.5f) * 2.0f * amplitude;
      for (int c = 0; c < 3; ++c)
        img.at(x, y, c) = std::clamp(img.at(x, y, c) + n, 0.0f, 1.0f);
    }
}

/// Horizontal stripes inside an SDF region (e.g. label bands).
template <typename Sdf>
void texture_stripes(Image& img, const Sdf& sdf, const Rgb& color,
                     float period, float duty, float phase,
                     float opacity = 1.0f) {
  for (int y = 0; y < img.height(); ++y)
    for (int x = 0; x < img.width(); ++x) {
      float fx = static_cast<float>(x) + 0.5f;
      float fy = static_cast<float>(y) + 0.5f;
      if (sdf(fx, fy) > 0.0f) continue;
      float t = std::fmod(fy / period + phase, 1.0f);
      if (t < 0) t += 1.0f;
      if (t > duty) continue;
      img.at(x, y, 0) += (color.r - img.at(x, y, 0)) * opacity;
      img.at(x, y, 1) += (color.g - img.at(x, y, 1)) * opacity;
      img.at(x, y, 2) += (color.b - img.at(x, y, 2)) * opacity;
    }
}

/// Soft elliptical highlight (specular blob).
void paint_highlight(Image& img, float cx, float cy, float rx, float ry,
                     float strength);

/// Soft drop shadow under an object: darkens an elliptical region.
void paint_shadow(Image& img, float cx, float cy, float rx, float ry,
                  float strength);

}  // namespace edgestab
