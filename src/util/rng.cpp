#include "util/rng.h"

#include <cmath>

namespace edgestab {

double Pcg32::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  double u2 = uniform();
  if (u1 < 1e-12) u1 = 1e-12;
  const double two_pi = 6.283185307179586476925286766559;
  double r = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = r * std::sin(two_pi * u2);
  have_cached_normal_ = true;
  return r * std::cos(two_pi * u2);
}

int Pcg32::poisson(double lambda) {
  ES_DCHECK(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth: multiply uniforms until below e^-lambda.
    double l = std::exp(-lambda);
    int k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double v = normal(lambda, std::sqrt(lambda));
  return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

Pcg32 Pcg32::fork(std::uint64_t stream_tag) {
  SplitMix64 mix(next_u64() ^ (stream_tag * 0x9e3779b97f4a7c15ULL));
  std::uint64_t seed = mix.next();
  std::uint64_t stream = mix.next() | 1u;
  return Pcg32(seed, stream);
}

}  // namespace edgestab
