// Deterministic, portable random number generation.
//
// All experiment randomness flows through Pcg32 with hand-written
// uniform/normal transforms so results are bit-identical across standard
// libraries and platforms (std:: distributions are implementation-defined).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace edgestab {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 (XSH-RR 64/32). Small, fast, statistically solid, reproducible.
class Pcg32 {
 public:
  Pcg32() : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}

  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 1) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  std::uint32_t next_u32() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint32_t uniform_int(std::uint32_t n) {
    ES_DCHECK(n > 0);
    std::uint32_t threshold = (-n) % n;
    for (;;) {
      std::uint32_t r = next_u32();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    ES_DCHECK(hi >= lo);
    return lo + static_cast<int>(
                    uniform_int(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with explicit mean / standard deviation.
  double normal(double mean, double stdev) { return mean + stdev * normal(); }

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Poisson draw; uses Knuth's method for small lambda and a normal
  /// approximation for large lambda (sensor shot noise spans both).
  int poisson(double lambda);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(static_cast<std::uint32_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    ES_CHECK(!v.empty());
    return v[uniform_int(static_cast<std::uint32_t>(v.size()))];
  }

  /// Derive an independent child generator (for per-image streams).
  Pcg32 fork(std::uint64_t stream_tag);

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace edgestab
