#include "util/csv.h"

#include <fstream>

#include "util/check.h"

namespace edgestab {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()) {
  ES_CHECK(columns_ > 0);
  add_row(header);
}

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  ES_CHECK_MSG(cells.size() == columns_,
               "csv row width " << cells.size() << " != " << columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) body_.push_back(',');
    body_ += escape(cells[i]);
  }
  body_.push_back('\n');
}

std::string CsvWriter::str() const { return body_; }

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  ES_CHECK_MSG(out.good(), "cannot open " << path);
  out << body_;
  ES_CHECK_MSG(out.good(), "write failed for " << path);
}

}  // namespace edgestab
