#include "util/hashing.h"

#include <cstring>

namespace edgestab {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ULL;

std::uint64_t mix(std::uint64_t h, const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}
}  // namespace

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  return mix(0xcbf29ce484222325ULL, data.data(), data.size());
}

std::uint64_t fnv1a64(const std::string& s) {
  return fnv1a64(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Fingerprint& Fingerprint::add(std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i)
    bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  h_ = mix(h_, bytes, 8);
  return *this;
}

Fingerprint& Fingerprint::add(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return add(bits);
}

Fingerprint& Fingerprint::add(const std::string& s) {
  add(static_cast<std::uint64_t>(s.size()));
  h_ = mix(h_, reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  return *this;
}

std::string Fingerprint::hex() const {
  static const char* digits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 0; i < 16; ++i)
    s[15 - i] = digits[(h_ >> (4 * i)) & 15];
  return s;
}

}  // namespace edgestab
