// Binary serialization primitives (little-endian) + file helpers.
// Used by codec bitstreams, model checkpoints, and the workspace cache.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/alloc_track.h"

namespace edgestab {

/// Codec bitstreams, checkpoints and cache payloads. The tracked
/// allocator reports (de)allocations to the hot-path profiler when one
/// is armed; in profile-off builds it IS std::allocator, so the type is
/// exactly std::vector<std::uint8_t>.
using Bytes = TrackedVector<std::uint8_t, AllocSite::kBytes>;

/// Append-only little-endian byte writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f32(float v);
  void f64(double v);
  void str(const std::string& s);  ///< u32 length prefix + bytes
  void raw(std::span<const std::uint8_t> data);
  void f32_array(std::span<const float> data);  ///< u64 count + payload

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Bounds-checked little-endian byte reader; throws CheckError on
/// truncation (corrupt bitstreams must not read out of bounds).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  float f32();
  double f64();
  std::string str();
  std::vector<float> f32_array();
  void raw(std::span<std::uint8_t> out);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Read an entire file; throws CheckError if missing/unreadable.
Bytes read_file(const std::string& path);
/// Write an entire file; throws CheckError on failure.
void write_file(const std::string& path, std::span<const std::uint8_t> data);
/// True if the path exists and is a regular file.
bool file_exists(const std::string& path);
/// mkdir -p equivalent.
void make_dirs(const std::string& path);

}  // namespace edgestab
