#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"

namespace edgestab {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stdev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  ES_CHECK(!values.empty());
  ES_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ES_CHECK(hi > lo);
  ES_CHECK(bins > 0);
}

void Histogram::add(double x) {
  double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::bin_center(std::size_t i) const {
  return 0.5 * (bin_lo(i) + bin_hi(i));
}

double Histogram::bin_fraction(std::size_t i) const {
  return total_ ? static_cast<double>(counts_[i]) /
                      static_cast<double>(total_)
                : 0.0;
}

std::string Histogram::ascii(std::size_t width, const std::string& label) const {
  std::ostringstream os;
  if (!label.empty()) os << label << "\n";
  std::size_t max_count = 0;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar =
        max_count ? counts_[i] * width / max_count : 0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  [%6.3f,%6.3f) %6zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    os << buf << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace edgestab
