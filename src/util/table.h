// ASCII table rendering for bench output — prints rows shaped like the
// paper's tables.
#pragma once

#include <string>
#include <vector>

namespace edgestab {

/// Column-aligned ASCII table with a header row.
///
///   Table t({"METRIC", "JPEG 100", "JPEG 85"});
///   t.add_row({"ACCURACY", "54.0%", "54.3%"});
///   std::cout << t.str();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Insert a horizontal separator before the next row.
  void add_separator();

  std::string str() const;

  /// Helpers for formatted cells.
  static std::string pct(double fraction, int decimals = 1);   ///< 0.54 -> "54.0%"
  static std::string num(double value, int decimals = 2);
  static std::string kb(double bytes, int decimals = 2);       ///< bytes -> "1.23"

 private:
  std::vector<std::string> header_;
  // Each row is a vector of cells; an empty vector marks a separator.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace edgestab
