#include "util/alloc_track.h"

#include <atomic>

namespace edgestab {

namespace {

std::atomic<const AllocHooks*> g_alloc_hooks{nullptr};

}  // namespace

const char* alloc_site_name(AllocSite site) {
  switch (site) {
    case AllocSite::kTensor: return "tensor";
    case AllocSite::kImage: return "image";
    case AllocSite::kBytes: return "bytes";
  }
  return "unknown";
}

void set_alloc_hooks(const AllocHooks* hooks) {
  g_alloc_hooks.store(hooks, std::memory_order_release);
}

const AllocHooks* alloc_hooks() {
  return g_alloc_hooks.load(std::memory_order_acquire);
}

}  // namespace edgestab
