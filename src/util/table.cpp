#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace edgestab {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ES_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  ES_CHECK_MSG(cells.size() == header_.size(),
               "row has " << cells.size() << " cells, header has "
                          << header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

std::string Table::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](std::ostringstream& os,
                       const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c]
         << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  auto print_sep = [&](std::ostringstream& os) {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  std::ostringstream os;
  print_sep(os);
  print_row(os, header_);
  print_sep(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      print_sep(os);
    } else {
      print_row(os, row);
    }
  }
  print_sep(os);
  return os.str();
}

std::string Table::pct(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string Table::num(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string Table::kb(double bytes, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, bytes / 1024.0);
  return buf;
}

}  // namespace edgestab
