// Small statistics toolkit: running moments, quantiles, histograms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace edgestab {

/// Online mean / variance / extrema (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stdev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Quantile of a sample with linear interpolation; q in [0, 1].
/// The input is copied and sorted.
double quantile(std::vector<double> values, double q);

/// Arithmetic mean of a sample (0 for empty).
double mean_of(const std::vector<double>& values);

/// Fixed-bin histogram over [lo, hi]; out-of-range values clamp into the
/// edge bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  /// Fraction of samples in bin i (0 if empty histogram).
  double bin_fraction(std::size_t i) const;

  /// Render a simple ASCII bar chart (for bench/figure output).
  std::string ascii(std::size_t width = 40, const std::string& label = "") const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace edgestab
