// MD5 message digest (RFC 1321), implemented from scratch.
//
// Used by the OS/processor experiment (§7 of the paper) to audit whether
// two device decoders produced byte-identical decoded images.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace edgestab {

/// Incremental MD5 hasher.
class Md5 {
 public:
  Md5();

  /// Absorb more bytes.
  void update(std::span<const std::uint8_t> data);
  void update(const void* data, std::size_t len);

  /// Finish and return the 16-byte digest. The hasher must not be reused
  /// after finalization.
  std::array<std::uint8_t, 16> digest();

  /// Convenience: hash a buffer and return lowercase hex.
  static std::string hex(std::span<const std::uint8_t> data);
  static std::string hex(const std::string& data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_len_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  bool finalized_ = false;
};

/// Format a digest as lowercase hex.
std::string to_hex(std::span<const std::uint8_t> bytes);

}  // namespace edgestab
