// Wall-clock timing for harness progress reporting.
#pragma once

#include <chrono>

namespace edgestab {

/// Monotonic stopwatch; starts at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace edgestab
