// Non-cryptographic hashing for cache keys and config fingerprints.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace edgestab {

/// FNV-1a 64-bit over a byte span.
std::uint64_t fnv1a64(std::span<const std::uint8_t> data);
std::uint64_t fnv1a64(const std::string& s);

/// Incrementally build a config fingerprint: feed heterogeneous fields,
/// read out a stable hex token for cache file names.
class Fingerprint {
 public:
  Fingerprint& add(std::uint64_t v);
  Fingerprint& add(std::int64_t v) { return add(static_cast<std::uint64_t>(v)); }
  /// `long long` is distinct from int64_t (= long) on LP64 — fold the
  /// repo's `long long` counters through the same unsigned path.
  Fingerprint& add(long long v) { return add(static_cast<std::uint64_t>(v)); }
  Fingerprint& add(int v) { return add(static_cast<std::uint64_t>(v)); }
  Fingerprint& add(double v);
  Fingerprint& add(const std::string& s);

  std::uint64_t value() const { return h_; }
  std::string hex() const;

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace edgestab
