#include "util/bytes.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.h"

namespace edgestab {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::f32_array(std::span<const float> data) {
  u64(data.size());
  for (float v : data) f32(v);
}

void ByteReader::need(std::size_t n) const {
  ES_CHECK_MSG(pos_ + n <= data_.size(),
               "byte stream truncated: need " << n << " at " << pos_
                                              << " of " << data_.size());
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  std::uint16_t lo = u8();
  std::uint16_t hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  std::uint32_t lo = u16();
  std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  std::uint64_t lo = u32();
  std::uint64_t hi = u32();
  return lo | (hi << 32);
}

float ByteReader::f32() {
  std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::f64() {
  std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::str() {
  std::uint32_t len = u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

std::vector<float> ByteReader::f32_array() {
  std::uint64_t n = u64();
  need(n * 4);
  std::vector<float> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = f32();
  return out;
}

void ByteReader::raw(std::span<std::uint8_t> out) {
  need(out.size());
  std::memcpy(out.data(), data_.data() + pos_, out.size());
  pos_ += out.size();
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ES_CHECK_MSG(in.good(), "cannot open " << path);
  auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  Bytes data(size);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(size));
  ES_CHECK_MSG(in.good(), "read failed for " << path);
  return data;
}

void write_file(const std::string& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary);
  ES_CHECK_MSG(out.good(), "cannot open " << path);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ES_CHECK_MSG(out.good(), "write failed for " << path);
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  ES_CHECK_MSG(!ec, "mkdir failed for " << path << ": " << ec.message());
}

}  // namespace edgestab
