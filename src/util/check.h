// Lightweight precondition / invariant checking.
//
// ES_CHECK is always on (experiments must fail loudly, not corrupt
// results); ES_DCHECK compiles out in release builds for hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace edgestab {

/// Thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace edgestab

#define ES_CHECK(expr)                                                     \
  do {                                                                     \
    if (!(expr))                                                           \
      ::edgestab::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (0)

#define ES_CHECK_MSG(expr, msg)                                            \
  do {                                                                     \
    if (!(expr)) {                                                         \
      std::ostringstream es_check_os;                                      \
      es_check_os << msg;                                                  \
      ::edgestab::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                       es_check_os.str());                 \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define ES_DCHECK(expr) ((void)0)
#else
#define ES_DCHECK(expr) ES_CHECK(expr)
#endif
