// Minimal CSV writer — every bench also emits a machine-readable CSV so
// figures can be re-plotted outside the harness.
#pragma once

#include <string>
#include <vector>

namespace edgestab {

/// Builds a CSV document in memory; write_file() flushes it to disk.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);

  std::string str() const;
  /// Write to a file path; throws CheckError on I/O failure.
  void write_file(const std::string& path) const;

  static std::string escape(const std::string& cell);

 private:
  std::size_t columns_;
  std::string body_;
};

}  // namespace edgestab
