// Tracked-allocation hook for the hot-path container allocation sites.
//
// The profiler (src/obs/profiler.h) wants to attribute allocation count,
// bytes and peak live bytes to the innermost profile scope — but the
// containers that matter (tensor::Tensor, image::Image/ImageU8, the codec
// Bytes buffers) live in layers that must NOT depend on obs. This header
// is the dependency-free seam: an atomically-installed hook table the
// profiler registers at arm time, and a stateless std::allocator shim
// that reports every allocate/deallocate through it.
//
// With EDGESTAB_PROFILE compiled out, TrackingAllocator *is*
// std::allocator — the tracked containers are the exact same types as
// before and the hook table is never consulted, so the flavor costs
// nothing and changes no ABI surface inside the tree.
//
// Determinism: the hooks observe allocation events, never alter them.
// Whether a sink is installed (and whether the profiler is enabled) has
// zero effect on what the containers allocate, so results stay
// bit-identical with profiling on, off, or compiled out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace edgestab {

/// Which subsystem owns the allocation site. Used for the per-site
/// breakdown in the profile report; scope attribution is orthogonal.
enum class AllocSite : std::uint8_t {
  kTensor = 0,  ///< tensor::Tensor storage (NN activations, weights)
  kImage = 1,   ///< image::Image / ImageU8 / isp::RawImage planes
  kBytes = 2,   ///< util::Bytes — codec bitstreams, files, checkpoints
};
inline constexpr int kAllocSiteCount = 3;

const char* alloc_site_name(AllocSite site);

/// Observer table. Function pointers, not std::function: the hot path
/// must be one atomic load + null check when nothing is installed.
struct AllocHooks {
  void (*on_alloc)(AllocSite site, std::size_t bytes) = nullptr;
  void (*on_free)(AllocSite site, std::size_t bytes) = nullptr;
};

/// Install (or, with nullptr, remove) the process-wide hook table. The
/// table must outlive every tracked allocation — in practice it is a
/// static owned by the profiler. Not synchronized against concurrent
/// allocations beyond the pointer's atomicity: install before the
/// parallel work starts (the profiler arms in bench::Run's constructor).
void set_alloc_hooks(const AllocHooks* hooks);
const AllocHooks* alloc_hooks();

#ifdef EDGESTAB_PROFILE

/// std::allocator shim that reports through the installed AllocHooks.
/// Stateless and always-equal, so container copies/moves/swaps behave
/// exactly as with std::allocator.
template <typename T, AllocSite Site>
class TrackingAllocator {
 public:
  using value_type = T;

  template <typename U>
  struct rebind {
    using other = TrackingAllocator<U, Site>;
  };

  TrackingAllocator() noexcept = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U, Site>&) noexcept {}

  T* allocate(std::size_t n) {
    if (const AllocHooks* hooks = alloc_hooks();
        hooks != nullptr && hooks->on_alloc != nullptr)
      hooks->on_alloc(Site, n * sizeof(T));
    return std::allocator<T>().allocate(n);
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (const AllocHooks* hooks = alloc_hooks();
        hooks != nullptr && hooks->on_free != nullptr)
      hooks->on_free(Site, n * sizeof(T));
    std::allocator<T>().deallocate(p, n);
  }

  friend bool operator==(const TrackingAllocator&,
                         const TrackingAllocator&) noexcept {
    return true;
  }
};

#else

// Profile hooks compiled out: tracked containers are plain std::vector.
template <typename T, AllocSite Site>
using TrackingAllocator = std::allocator<T>;

#endif  // EDGESTAB_PROFILE

/// Vector whose heap traffic is attributed to `Site` in profiling builds.
template <typename T, AllocSite Site>
using TrackedVector = std::vector<T, TrackingAllocator<T, Site>>;

/// Allocator adaptor that makes value-less construct() default-initialize
/// — `vector::resize(n)` leaves trivial elements uninitialized instead of
/// zeroing them. Explicit-value construction (`vector(n, v)`, push_back,
/// copies) is untouched, so a container only ever holds indeterminate
/// bytes when its owner grew it through the no-value path on purpose.
/// This is a type-level opt-in: only containers declared with this
/// adaptor change behavior, and identically in every build flavor.
template <typename A>
class DefaultInitAllocator : public A {
  using Traits = std::allocator_traits<A>;

 public:
  template <typename U>
  struct rebind {
    using other =
        DefaultInitAllocator<typename Traits::template rebind_alloc<U>>;
  };

  using A::A;
  DefaultInitAllocator() = default;
  explicit DefaultInitAllocator(const A& a) noexcept : A(a) {}
  template <typename U>
  DefaultInitAllocator(const DefaultInitAllocator<U>& other) noexcept
      : A(static_cast<const U&>(other)) {}

  template <typename U>
  void construct(U* p) noexcept(noexcept(::new (static_cast<void*>(p)) U)) {
    ::new (static_cast<void*>(p)) U;
  }
  template <typename U, typename... Args>
  void construct(U* p, Args&&... args) {
    Traits::construct(static_cast<A&>(*this), p,
                      std::forward<Args>(args)...);
  }
};

/// TrackedVector whose no-value resize leaves elements uninitialized.
/// For hot-path buffers whose every element is overwritten before use.
template <typename T, AllocSite Site>
using UninitTrackedVector =
    std::vector<T, DefaultInitAllocator<TrackingAllocator<T, Site>>>;

}  // namespace edgestab
