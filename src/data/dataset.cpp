#include "data/dataset.h"

#include <algorithm>

#include "codec/jpeg_like.h"
#include "data/labels.h"
#include "device/capture.h"
#include "image/color.h"
#include "image/resize.h"

namespace edgestab {

Tensor image_to_input(const Image& display_referred, int input_size) {
  ES_CHECK(display_referred.channels() == 3);
  Image small = resize(display_referred, input_size, input_size,
                       ResizeFilter::kArea);
  Tensor out({1, 3, input_size, input_size});
  for (int c = 0; c < 3; ++c)
    for (int y = 0; y < input_size; ++y)
      for (int x = 0; x < input_size; ++x)
        out.at4(0, c, y, x) = small.at(x, y, c) * 2.0f - 1.0f;
  return out;
}

Tensor capture_to_input(const ImageU8& decoded, int input_size) {
  return image_to_input(to_float(decoded), input_size);
}

Tensor stack_inputs(const std::vector<Tensor>& samples) {
  ES_CHECK(!samples.empty());
  const Tensor& first = samples.front();
  ES_CHECK(first.rank() == 4 && first.dim(0) == 1);
  Tensor out({static_cast<int>(samples.size()), first.dim(1), first.dim(2),
              first.dim(3)});
  const std::size_t n = first.numel();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ES_CHECK(samples[i].same_shape(first));
    std::copy_n(samples[i].raw(), n, out.raw() + i * n);
  }
  return out;
}

namespace {

/// A neutral camera (defaults everywhere) used only for augmentation —
/// deliberately not a member of any experimental fleet.
PhoneProfile reference_camera() {
  PhoneProfile p;
  p.name = "reference";
  p.storage_format = ImageFormat::kJpegLike;
  p.storage_quality = 90;
  return p;
}

TensorDataset build_dataset(const PretrainConfig& config,
                            std::uint64_t seed_base, std::uint64_t rng_seed) {
  Pcg32 rng(rng_seed, 5);
  PhoneProfile camera = reference_camera();
  std::vector<Tensor> samples;
  std::vector<int> labels;
  samples.reserve(static_cast<std::size_t>(config.per_class) * kNumClasses);

  for (int cls = 0; cls < kNumClasses; ++cls) {
    for (int i = 0; i < config.per_class; ++i) {
      SceneSpec spec;
      spec.class_id = cls;
      spec.instance_seed = seed_base + static_cast<std::uint64_t>(i);
      spec.view_angle = static_cast<float>(rng.uniform(-1.0, 1.0));
      Image scene = render_scene(spec, config.scene_size);

      // Photometric augmentation + mild acquisition noise. The goal is
      // ImageNet-like invariance to small color/tone/compression shifts:
      // without it the model's decision margins are so thin that *every*
      // device rendition flips predictions and instability saturates far
      // above the paper's 14-17% band.
      float contrast = 1.0f + static_cast<float>(rng.uniform(
                                  -config.contrast_jitter,
                                  config.contrast_jitter));
      float brightness = static_cast<float>(rng.uniform(
          -config.brightness_jitter, config.brightness_jitter));
      adjust_contrast_brightness(scene, contrast, brightness);
      if (config.color_cast > 0.0f) {
        for (int c = 0; c < 3; ++c) {
          float gain = 1.0f + static_cast<float>(rng.uniform(
                                  -config.color_cast, config.color_cast));
          for (float& v : scene.plane(c)) v *= gain;
        }
        scene.clamp();
      }
      if (config.blur_probability > 0.0f &&
          rng.bernoulli(config.blur_probability)) {
        int small = std::max(8, config.scene_size / 2);
        scene = resize(resize(scene, small, small, ResizeFilter::kArea),
                       config.scene_size, config.scene_size,
                       ResizeFilter::kBilinear);
      }
      if (config.noise_sigma > 0.0f) {
        for (float& v : scene.data())
          v += static_cast<float>(rng.normal(0.0, config.noise_sigma));
        scene.clamp();
      }
      if (config.capture_probability > 0.0f &&
          rng.bernoulli(config.capture_probability)) {
        // Photograph the scene with the reference camera: linear light in,
        // sensor + ISP + JPEG out.
        Image linear = srgb_decode(scene);
        Capture shot = take_photo(camera, linear, rng);
        scene = to_float(decode_capture(shot, JpegDecodeOptions{}));
      } else if (config.jpeg_probability > 0.0f &&
                 rng.bernoulli(config.jpeg_probability)) {
        int quality = rng.uniform_int(65, 95);
        JpegLikeCodec codec(quality);
        scene = to_float(codec.decode(codec.encode(to_u8(scene))));
      }

      samples.push_back(image_to_input(scene));
      labels.push_back(cls);
    }
  }

  TensorDataset ds;
  ds.images = stack_inputs(samples);
  ds.labels = std::move(labels);
  return ds;
}

}  // namespace

TensorDataset make_pretrain_dataset(const PretrainConfig& config) {
  return build_dataset(config, /*seed_base=*/1000000, config.seed);
}

TensorDataset make_validation_dataset(const PretrainConfig& config) {
  PretrainConfig val = config;
  val.per_class = std::max(10, config.per_class / 5);
  // Disjoint instance seeds and a different augmentation stream.
  return build_dataset(val, /*seed_base=*/9000000, config.seed ^ 0xabcdef);
}

}  // namespace edgestab
