#include "data/labels.h"

#include "util/check.h"

namespace edgestab {

const std::string& class_name(int class_id) {
  static const std::vector<std::string> names = {
      "water_bottle", "beer_bottle", "wine_bottle", "purse",
      "backpack",     "red_wine",    "pillow",      "bubble",
      "soccer_ball",  "coffee_mug",  "laptop",      "sunhat"};
  ES_CHECK(class_id >= 0 && class_id < kNumClasses);
  return names[static_cast<std::size_t>(class_id)];
}

const std::vector<int>& target_classes() {
  static const std::vector<int> targets = {kWaterBottle, kBeerBottle,
                                           kWineBottle, kPurse, kBackpack};
  return targets;
}

bool prediction_correct(int truth, int predicted) {
  if (truth == predicted) return true;
  // §3.2: overlapping ImageNet labels are accepted both ways.
  if (truth == kWineBottle && predicted == kRedWine) return true;
  if (truth == kRedWine && predicted == kWineBottle) return true;
  return false;
}

}  // namespace edgestab
