// The lab rig: the paper's §3.2 controlled capture setup.
//
// Five phones on a mount photograph the same images displayed on a
// monitor in a dark room, at five horizontal angles. The rig renders
// each (object, angle) stimulus once, displays it, and has every phone
// photograph the identical emission — isolating device-internal
// variability exactly as the paper's setup does.
#pragma once

#include <cstdint>
#include <vector>

#include "data/render.h"
#include "data/screen.h"
#include "device/capture.h"
#include "device/fleets.h"

namespace edgestab {

struct LabShot {
  int object_index = 0;  ///< index into the rig's object list
  int class_id = 0;
  int angle_index = 0;   ///< 0..angles-1 (left..right)
  int phone_index = 0;   ///< index into the fleet
  int repeat = 0;        ///< consecutive-shot index (Figure 1 pairs)
  /// Capture-site fault accounting (src/fault). A dropped shot carries an
  /// empty capture and must be skipped by consumers; capture_attempts
  /// counts how many tries the phone needed (1 on a clean run).
  bool dropped = false;
  int capture_attempts = 1;
  Capture capture;
};

struct LabRigConfig {
  int objects_per_class = 30;
  int scene_size = 96;
  ScreenConfig screen;
  std::vector<float> angles = {-1.0f, -0.5f, 0.0f, 0.5f, 1.0f};
  std::uint64_t seed = 42;
  /// How many consecutive shots each phone takes of every stimulus
  /// (Figure 1 uses 2 shots of the same scene on one phone).
  int shots_per_stimulus = 1;
};

struct LabRun {
  std::vector<LabShot> shots;
  std::vector<int> object_class;  ///< class of every object index
  int angle_count = 0;
  int phone_count = 0;
};

/// Run the full rig: every phone captures every (object, angle) stimulus.
/// Shots are ordered by (object, angle, phone, repeat). Stimuli fan out
/// across the runtime thread pool; every capture's temporal noise comes
/// from a stream derived from (seed, phone, stimulus, shot), so the run
/// is bit-identical at any thread count.
LabRun run_lab_rig(const std::vector<PhoneProfile>& fleet,
                   const LabRigConfig& config);

/// Rewind the per-process rig-run counter that disambiguates drift /
/// fault group names ("capture", "capture#1", ...). The bench repeat
/// harness calls this after its warm-up repeats so the authoritative
/// run's group names — and with them the drift-report digest — are
/// byte-identical to a single-repeat run.
void reset_rig_run_counter();

/// Stable fingerprint of the rig configuration (seed, geometry, screen) —
/// recorded in run manifests so a result row names the exact capture
/// setup that produced it.
std::uint64_t rig_digest(const LabRigConfig& config);

/// Stimulus id helper — groups shots of the same displayed image.
inline int stimulus_id(const LabRun& run, const LabShot& shot) {
  return shot.object_index * run.angle_count + shot.angle_index;
}

}  // namespace edgestab
