// Label space for the synthetic dataset.
//
// The paper collected five ImageNet classes (water bottle, beer bottle,
// wine bottle, purse, backpack — §3.1) and evaluated a 1000-class model
// on them, accepting overlapping labels by hand (e.g. "wine bottle" vs
// "red wine", §3.2). We mirror that: a 12-class model whose first five
// classes are the targets, with seven distractor classes that incorrect
// predictions can land on (including "bubble" and "pillow", the wrong
// labels shown in the paper's Figures 1-2), plus an alias table.
#pragma once

#include <string>
#include <vector>

namespace edgestab {

enum ClassId : int {
  kWaterBottle = 0,
  kBeerBottle = 1,
  kWineBottle = 2,
  kPurse = 3,
  kBackpack = 4,
  // Distractors.
  kRedWine = 5,
  kPillow = 6,
  kBubble = 7,
  kSoccerBall = 8,
  kCoffeeMug = 9,
  kLaptop = 10,
  kSunhat = 11,
};

inline constexpr int kNumClasses = 12;
inline constexpr int kNumTargetClasses = 5;

const std::string& class_name(int class_id);

/// The five classes photographed in the lab experiments.
const std::vector<int>& target_classes();

/// True if `predicted` counts as correct for ground truth `truth`
/// (identity or an accepted alias — wine_bottle accepts red_wine and
/// vice versa, as in §3.2).
bool prediction_correct(int truth, int predicted);

}  // namespace edgestab
