#include "data/render.h"

#include <cmath>

#include "data/labels.h"
#include "image/draw.h"
#include "util/rng.h"

namespace edgestab {

namespace {

/// Per-instance drawing context: canvas, RNG, object placement.
struct Ctx {
  Image* img;
  Pcg32* rng;
  float s;   ///< canvas size in pixels
  float cx;  ///< object center x
  float cy;  ///< object vertical anchor (baseline-ish)
  float scale;

  float u(float frac) const { return frac * s * scale; }
  float jitter(double lo, double hi) const {
    return static_cast<float>(rng->uniform(lo, hi));
  }
};

Rgb jitter_color(Pcg32& rng, const Rgb& base, float amount) {
  auto j = [&](float v) {
    return std::clamp(
        v + static_cast<float>(rng.uniform(-amount, amount)), 0.0f, 1.0f);
  };
  return {j(base.r), j(base.g), j(base.b)};
}

void draw_background(Image& img, Pcg32& rng) {
  // Wall gradient + table surface; colors vary per instance.
  Rgb wall_top = jitter_color(
      rng, {0.68f, 0.68f, 0.66f}, 0.26f);
  Rgb wall_bottom = wall_top.scaled(
      static_cast<float>(rng.uniform(0.75, 0.95)));
  fill_vertical_gradient(img, wall_top, wall_bottom);

  float s = static_cast<float>(img.width());
  float table_y = s * static_cast<float>(rng.uniform(0.68, 0.8));
  Rgb table = jitter_color(rng, {0.45f, 0.35f, 0.28f}, 0.15f);
  paint_sdf(img,
            SdfRoundRect{s / 2, (table_y + s) / 2, s / 2,
                         (s - table_y) / 2, 1.0f},
            table);
  // Table wood grain.
  texture_speckle(img,
                  SdfRoundRect{s / 2, (table_y + s) / 2, s / 2,
                               (s - table_y) / 2, 1.0f},
                  0.02f, 5.0f, rng.next_u64());
  // Wall texture.
  texture_speckle(img, SdfRoundRect{s / 2, table_y / 2, s / 2, table_y / 2,
                                    1.0f},
                  0.012f, 9.0f, rng.next_u64());
}

/// Incidental clutter: a couple of small background shapes.
void draw_clutter(Image& img, Pcg32& rng) {
  float s = static_cast<float>(img.width());
  int count = rng.uniform_int(0, 3);
  for (int i = 0; i < count; ++i) {
    Rgb c = jitter_color(rng, {0.5f, 0.5f, 0.5f}, 0.35f);
    float x = s * static_cast<float>(rng.uniform(0.05, 0.95));
    float y = s * static_cast<float>(rng.uniform(0.1, 0.55));
    float r = s * static_cast<float>(rng.uniform(0.025, 0.09));
    switch (rng.uniform_int(3u)) {
      case 0: paint_sdf(img, SdfCircle{x, y, r}, c, 0.85f); break;
      case 1:
        paint_sdf(img, SdfRoundRect{x, y, r, r * 1.4f, r * 0.3f}, c, 0.85f);
        break;
      default:
        // Vertical bottle-ish silhouettes are deliberately distracting.
        paint_sdf(img, SdfRoundRect{x, y, r * 0.5f, r * 1.8f, r * 0.2f}, c,
                  0.85f);
        break;
    }
  }
}

/// Shared bottle chassis. Proportions/colors are supplied per class.
struct BottleStyle {
  float body_w, body_h;   ///< fractions of canvas
  float neck_w, neck_h;
  float shoulder_h;       ///< trapezoid transition height
  Rgb glass;
  float glass_opacity;
  Rgb cap;
  Rgb label;
  float label_y_frac;     ///< label center within body (0 top, 1 bottom)
  float label_h_frac;
  bool foil;
};

void draw_bottle(Ctx& ctx, const BottleStyle& st) {
  Image& img = *ctx.img;
  float bw = ctx.u(st.body_w);
  float bh = ctx.u(st.body_h);
  float nw = ctx.u(st.neck_w);
  float nh = ctx.u(st.neck_h);
  float sh = ctx.u(st.shoulder_h);
  float base_y = ctx.cy;
  float body_cy = base_y - bh / 2;
  float shoulder_top = base_y - bh - sh;
  float neck_cy = shoulder_top - nh / 2;

  paint_shadow(img, ctx.cx, base_y + ctx.u(0.015f), bw * 0.85f,
               ctx.u(0.035f), 0.45f);

  Rgb dark = st.glass.scaled(0.55f);
  // Neck.
  paint_sdf_hgrad(img,
                  SdfRoundRect{ctx.cx, neck_cy, nw / 2, nh / 2,
                               nw * 0.3f},
                  dark, st.glass, ctx.cx - nw / 2, ctx.cx + nw / 2,
                  st.glass_opacity);
  // Shoulders.
  paint_sdf_hgrad(img,
                  SdfTrapezoid{ctx.cx, shoulder_top + sh / 2, sh, nw / 2,
                               bw / 2},
                  dark, st.glass, ctx.cx - bw / 2, ctx.cx + bw / 2,
                  st.glass_opacity);
  // Body.
  paint_sdf_hgrad(img,
                  SdfRoundRect{ctx.cx, body_cy, bw / 2, bh / 2, bw * 0.18f},
                  dark, st.glass, ctx.cx - bw / 2, ctx.cx + bw / 2,
                  st.glass_opacity);
  // Cap / foil.
  float cap_h = ctx.u(0.035f);
  Rgb cap_color = st.foil ? Rgb{0.75f, 0.7f, 0.35f} : st.cap;
  paint_sdf(img,
            SdfRoundRect{ctx.cx, neck_cy - nh / 2 - cap_h / 2,
                         nw * 0.62f, cap_h, cap_h * 0.4f},
            cap_color);
  // Label band with simple stripe art.
  float label_cy = base_y - bh + bh * st.label_y_frac;
  float label_h = bh * st.label_h_frac;
  SdfRoundRect label_sdf{ctx.cx, label_cy, bw * 0.46f, label_h / 2,
                         2.0f};
  paint_sdf(img, label_sdf, st.label, 0.95f);
  Rgb accent = jitter_color(*ctx.rng, {0.5f, 0.2f, 0.25f}, 0.25f);
  texture_stripes(img, label_sdf, accent, label_h * 0.8f, 0.3f,
                  ctx.jitter(0.0, 1.0), 0.85f);
  // Specular highlight along one flank.
  paint_highlight(img, ctx.cx - bw * 0.28f, body_cy - bh * 0.15f,
                  bw * 0.12f, bh * 0.4f, 0.35f);
}

void render_water_bottle(Ctx& ctx) {
  BottleStyle st;
  st.body_w = ctx.jitter(0.20, 0.26);
  st.body_h = ctx.jitter(0.34, 0.42);
  st.neck_w = ctx.jitter(0.075, 0.10);
  st.neck_h = ctx.jitter(0.045, 0.08);
  st.shoulder_h = ctx.jitter(0.04, 0.07);
  // Clear / light blue plastic, translucent — but some sport bottles are
  // opaque and tinted, overlapping the glass-bottle palettes.
  if (ctx.rng->bernoulli(0.4)) {
    st.glass = jitter_color(*ctx.rng, {0.35f, 0.45f, 0.35f}, 0.22f);
    st.glass_opacity = ctx.jitter(0.85, 1.0);
  } else {
    st.glass = jitter_color(*ctx.rng, {0.62f, 0.78f, 0.88f}, 0.14f);
    st.glass_opacity = ctx.jitter(0.5, 0.78);
  }
  st.cap = ctx.rng->bernoulli(0.5) ? Rgb{0.85f, 0.85f, 0.9f}
                                   : jitter_color(*ctx.rng,
                                                  {0.2f, 0.45f, 0.8f}, 0.15f);
  st.label = jitter_color(*ctx.rng, {0.92f, 0.94f, 0.96f}, 0.06f);
  st.label_y_frac = ctx.jitter(0.45, 0.6);
  st.label_h_frac = ctx.jitter(0.2, 0.3);
  st.foil = false;
  draw_bottle(ctx, st);
  // Ribbing rings typical of PET bottles.
  if (ctx.rng->bernoulli(0.6)) {
    float bw = ctx.u(st.body_w);
    float bh = ctx.u(st.body_h);
    SdfRoundRect body{ctx.cx, ctx.cy - bh / 2, bw / 2, bh / 2, bw * 0.18f};
    texture_stripes(*ctx.img, body, st.glass.scaled(0.8f), ctx.u(0.035f),
                    0.25f, 0.0f, 0.4f);
  }
}

void render_beer_bottle(Ctx& ctx) {
  BottleStyle st;
  st.body_w = ctx.jitter(0.18, 0.23);
  st.body_h = ctx.jitter(0.30, 0.36);
  st.neck_w = ctx.jitter(0.06, 0.08);
  st.neck_h = ctx.jitter(0.10, 0.15);  // long neck
  st.shoulder_h = ctx.jitter(0.05, 0.08);
  const Rgb palettes[] = {{0.45f, 0.26f, 0.08f},   // amber
                          {0.35f, 0.20f, 0.06f},   // brown
                          {0.22f, 0.38f, 0.16f},   // green
                          {0.14f, 0.22f, 0.12f}};  // dark (wine-like)
  st.glass = jitter_color(*ctx.rng, ctx.rng->pick(std::vector<Rgb>(
                                        palettes, palettes + 4)),
                          0.08f);
  st.glass_opacity = 1.0f;
  st.cap = {0.8f, 0.78f, 0.72f};  // crown cap
  st.label = jitter_color(*ctx.rng, {0.88f, 0.82f, 0.6f}, 0.1f);
  st.label_y_frac = ctx.jitter(0.4, 0.55);
  st.label_h_frac = ctx.jitter(0.25, 0.35);
  st.foil = ctx.rng->bernoulli(0.3);
  draw_bottle(ctx, st);
}

void render_wine_bottle(Ctx& ctx) {
  BottleStyle st;
  st.body_w = ctx.jitter(0.16, 0.21);
  st.body_h = ctx.jitter(0.36, 0.44);  // tall
  st.neck_w = ctx.jitter(0.055, 0.075);
  st.neck_h = ctx.jitter(0.12, 0.17);
  st.shoulder_h = ctx.jitter(0.08, 0.12);  // sloped shoulders
  const Rgb palettes[] = {{0.10f, 0.18f, 0.10f},   // dark green
                          {0.16f, 0.06f, 0.08f},   // dark red
                          {0.10f, 0.10f, 0.12f},   // near black
                          {0.20f, 0.34f, 0.15f}};  // lighter (beer-like)
  st.glass = jitter_color(*ctx.rng, ctx.rng->pick(std::vector<Rgb>(
                                        palettes, palettes + 4)),
                          0.06f);
  st.glass_opacity = 1.0f;
  st.cap = {0.45f, 0.08f, 0.1f};  // foil capsule
  st.label = jitter_color(*ctx.rng, {0.9f, 0.88f, 0.8f}, 0.08f);
  st.label_y_frac = ctx.jitter(0.55, 0.7);  // low label
  st.label_h_frac = ctx.jitter(0.22, 0.32);
  st.foil = true;
  draw_bottle(ctx, st);
}

void render_purse(Ctx& ctx) {
  Image& img = *ctx.img;
  float w = ctx.u(ctx.jitter(0.30, 0.38));
  float h = ctx.u(ctx.jitter(0.20, 0.26));
  float cy = ctx.cy - h / 2;
  Rgb leather;
  switch (ctx.rng->uniform_int(3u)) {
    case 0: leather = jitter_color(*ctx.rng, {0.45f, 0.2f, 0.15f}, 0.12f); break;
    case 1: leather = jitter_color(*ctx.rng, {0.7f, 0.45f, 0.5f}, 0.2f); break;
    default:  // fabric tones shared with backpacks
      leather = jitter_color(*ctx.rng, {0.25f, 0.35f, 0.5f}, 0.18f);
      break;
  }
  paint_shadow(img, ctx.cx, ctx.cy + ctx.u(0.01f), w * 0.6f, ctx.u(0.03f),
               0.4f);
  // Handle arc: two capsules meeting above the bag.
  float hh = ctx.u(ctx.jitter(0.08, 0.14));
  Rgb handle = leather.scaled(0.7f);
  paint_sdf(img,
            SdfCapsule{ctx.cx - w * 0.3f, cy - h / 2, ctx.cx,
                       cy - h / 2 - hh, ctx.u(0.012f)},
            handle);
  paint_sdf(img,
            SdfCapsule{ctx.cx + w * 0.3f, cy - h / 2, ctx.cx,
                       cy - h / 2 - hh, ctx.u(0.012f)},
            handle);
  // Body: trapezoid flaring downward.
  paint_sdf_hgrad(img, SdfTrapezoid{ctx.cx, cy, h, w * 0.38f, w * 0.5f},
                  leather.scaled(0.6f), leather, ctx.cx - w / 2,
                  ctx.cx + w / 2);
  // Flap + clasp.
  paint_sdf(img,
            SdfTrapezoid{ctx.cx, cy - h * 0.28f, h * 0.42f, w * 0.36f,
                         w * 0.43f},
            leather.scaled(0.85f), 0.9f);
  paint_sdf(img, SdfCircle{ctx.cx, cy - h * 0.1f, ctx.u(0.015f)},
            {0.85f, 0.8f, 0.55f});
  // Stitching texture.
  texture_speckle(img, SdfTrapezoid{ctx.cx, cy, h, w * 0.38f, w * 0.5f},
                  0.03f, 2.5f, ctx.rng->next_u64());
  paint_highlight(img, ctx.cx - w * 0.2f, cy - h * 0.2f, w * 0.15f,
                  h * 0.25f, 0.25f);
}

void render_backpack(Ctx& ctx) {
  Image& img = *ctx.img;
  float w = ctx.u(ctx.jitter(0.26, 0.33));
  float h = ctx.u(ctx.jitter(0.34, 0.42));
  float cy = ctx.cy - h / 2;
  Rgb fabric;
  switch (ctx.rng->uniform_int(3u)) {
    case 0: fabric = jitter_color(*ctx.rng, {0.2f, 0.3f, 0.5f}, 0.15f); break;
    case 1: fabric = jitter_color(*ctx.rng, {0.3f, 0.5f, 0.3f}, 0.15f); break;
    default:  // leather tones shared with purses
      fabric = jitter_color(*ctx.rng, {0.45f, 0.25f, 0.2f}, 0.15f);
      break;
  }
  paint_shadow(img, ctx.cx, ctx.cy + ctx.u(0.01f), w * 0.6f, ctx.u(0.03f),
               0.4f);
  // Main body.
  paint_sdf_hgrad(img, SdfRoundRect{ctx.cx, cy, w / 2, h / 2, w * 0.2f},
                  fabric.scaled(0.65f), fabric, ctx.cx - w / 2,
                  ctx.cx + w / 2);
  // Top handle.
  paint_sdf(img,
            SdfCapsule{ctx.cx - w * 0.15f, cy - h / 2, ctx.cx + w * 0.15f,
                       cy - h / 2 - ctx.u(0.03f), ctx.u(0.012f)},
            fabric.scaled(0.5f));
  // Front pocket with zipper line.
  Rgb pocket = fabric.scaled(0.8f);
  paint_sdf(img,
            SdfRoundRect{ctx.cx, cy + h * 0.18f, w * 0.32f, h * 0.2f,
                         w * 0.12f},
            pocket);
  paint_sdf(img,
            SdfCapsule{ctx.cx - w * 0.3f, cy - h * 0.12f, ctx.cx + w * 0.3f,
                       cy - h * 0.12f, ctx.u(0.006f)},
            fabric.scaled(0.4f));
  // Shoulder straps peeking at the sides.
  paint_sdf(img,
            SdfCapsule{ctx.cx - w * 0.52f, cy - h * 0.3f, ctx.cx - w * 0.48f,
                       cy + h * 0.35f, ctx.u(0.018f)},
            fabric.scaled(0.55f));
  paint_sdf(img,
            SdfCapsule{ctx.cx + w * 0.52f, cy - h * 0.3f, ctx.cx + w * 0.48f,
                       cy + h * 0.35f, ctx.u(0.018f)},
            fabric.scaled(0.55f));
  texture_speckle(img, SdfRoundRect{ctx.cx, cy, w / 2, h / 2, w * 0.2f},
                  0.025f, 3.0f, ctx.rng->next_u64());
  paint_highlight(img, ctx.cx - w * 0.18f, cy - h * 0.25f, w * 0.18f,
                  h * 0.2f, 0.2f);
}

void render_red_wine(Ctx& ctx) {
  // A stemmed glass of red wine.
  Image& img = *ctx.img;
  float bowl_r = ctx.u(ctx.jitter(0.10, 0.13));
  float stem_h = ctx.u(ctx.jitter(0.10, 0.14));
  float base_y = ctx.cy;
  float bowl_cy = base_y - stem_h - bowl_r;
  paint_shadow(img, ctx.cx, base_y + ctx.u(0.01f), bowl_r * 1.2f,
               ctx.u(0.025f), 0.35f);
  // Base + stem.
  Rgb glass{0.85f, 0.87f, 0.9f};
  paint_sdf(img,
            SdfEllipse{ctx.cx, base_y, bowl_r * 0.9f, ctx.u(0.015f)},
            glass, 0.8f);
  paint_sdf(img,
            SdfCapsule{ctx.cx, base_y, ctx.cx, bowl_cy + bowl_r * 0.5f,
                       ctx.u(0.008f)},
            glass, 0.8f);
  // Bowl with wine fill.
  paint_sdf(img, SdfEllipse{ctx.cx, bowl_cy, bowl_r, bowl_r * 1.15f}, glass,
            0.45f);
  Rgb wine = jitter_color(*ctx.rng, {0.4f, 0.05f, 0.12f}, 0.05f);
  paint_sdf(img,
            SdfEllipse{ctx.cx, bowl_cy + bowl_r * 0.3f, bowl_r * 0.92f,
                       bowl_r * 0.75f},
            wine, 0.95f);
  paint_highlight(img, ctx.cx - bowl_r * 0.4f, bowl_cy - bowl_r * 0.3f,
                  bowl_r * 0.25f, bowl_r * 0.5f, 0.4f);
}

void render_pillow(Ctx& ctx) {
  Image& img = *ctx.img;
  float w = ctx.u(ctx.jitter(0.36, 0.44));
  float h = ctx.u(ctx.jitter(0.22, 0.3));
  float cy = ctx.cy - h / 2;
  Rgb cloth = jitter_color(*ctx.rng, {0.85f, 0.82f, 0.78f}, 0.12f);
  paint_shadow(img, ctx.cx, ctx.cy, w * 0.6f, ctx.u(0.03f), 0.3f);
  paint_sdf_hgrad(img, SdfRoundRect{ctx.cx, cy, w / 2, h / 2, h * 0.4f},
                  cloth.scaled(0.8f), cloth, ctx.cx - w / 2, ctx.cx + w / 2);
  // Soft crease lines.
  texture_stripes(img, SdfRoundRect{ctx.cx, cy, w / 2, h / 2, h * 0.4f},
                  cloth.scaled(0.9f), h * 0.5f, 0.12f, 0.3f, 0.5f);
  texture_speckle(img, SdfRoundRect{ctx.cx, cy, w / 2, h / 2, h * 0.4f},
                  0.02f, 6.0f, ctx.rng->next_u64());
  paint_highlight(img, ctx.cx - w * 0.15f, cy - h * 0.2f, w * 0.25f,
                  h * 0.3f, 0.25f);
}

void render_bubble(Ctx& ctx) {
  Image& img = *ctx.img;
  float r = ctx.u(ctx.jitter(0.14, 0.2));
  float cy = ctx.cy - r - ctx.u(0.05f);
  // Translucent sphere: faint rim + strong highlight.
  Rgb tint{0.75f, 0.85f, 0.95f};
  paint_sdf(img, SdfCircle{ctx.cx, cy, r}, tint, 0.25f);
  // Rim: ring via two circles.
  paint_sdf(img, SdfCircle{ctx.cx, cy, r}, tint.scaled(1.1f), 0.3f);
  paint_sdf(img, SdfCircle{ctx.cx, cy, r * 0.9f},
            {0.6f, 0.7f, 0.85f}, 0.15f);
  paint_highlight(img, ctx.cx - r * 0.4f, cy - r * 0.4f, r * 0.3f, r * 0.25f,
                  0.8f);
  paint_highlight(img, ctx.cx + r * 0.3f, cy + r * 0.35f, r * 0.18f,
                  r * 0.12f, 0.4f);
}

void render_soccer_ball(Ctx& ctx) {
  Image& img = *ctx.img;
  float r = ctx.u(ctx.jitter(0.14, 0.18));
  float cy = ctx.cy - r;
  paint_shadow(img, ctx.cx, ctx.cy + ctx.u(0.01f), r * 1.1f, ctx.u(0.03f),
               0.4f);
  paint_sdf_hgrad(img, SdfCircle{ctx.cx, cy, r}, {0.75f, 0.75f, 0.75f},
                  {0.95f, 0.95f, 0.95f}, ctx.cx - r, ctx.cx + r);
  // Dark patches.
  Rgb patch{0.12f, 0.12f, 0.12f};
  paint_sdf(img, SdfCircle{ctx.cx, cy, r * 0.22f}, patch);
  for (int i = 0; i < 5; ++i) {
    float a = static_cast<float>(i) * 1.2566f + ctx.jitter(0.0, 0.3);
    float px = ctx.cx + std::cos(a) * r * 0.72f;
    float py = cy + std::sin(a) * r * 0.72f;
    paint_sdf(img, SdfCircle{px, py, r * 0.16f}, patch, 0.9f);
  }
  paint_highlight(img, ctx.cx - r * 0.35f, cy - r * 0.4f, r * 0.3f, r * 0.25f,
                  0.3f);
}

void render_coffee_mug(Ctx& ctx) {
  Image& img = *ctx.img;
  float w = ctx.u(ctx.jitter(0.18, 0.24));
  float h = ctx.u(ctx.jitter(0.18, 0.24));
  float cy = ctx.cy - h / 2;
  Rgb ceramic = jitter_color(
      *ctx.rng,
      ctx.rng->bernoulli(0.5) ? Rgb{0.85f, 0.3f, 0.25f} : Rgb{0.25f, 0.45f,
                                                              0.7f},
      0.12f);
  paint_shadow(img, ctx.cx, ctx.cy + ctx.u(0.008f), w * 0.7f, ctx.u(0.025f),
               0.4f);
  // Handle: ring approximated by a capsule arc (three segments).
  Rgb handle = ceramic.scaled(0.9f);
  float hx = ctx.cx + w / 2;
  paint_sdf(img,
            SdfCapsule{hx, cy - h * 0.25f, hx + w * 0.22f, cy - h * 0.1f,
                       ctx.u(0.012f)},
            handle);
  paint_sdf(img,
            SdfCapsule{hx + w * 0.22f, cy - h * 0.1f, hx + w * 0.2f,
                       cy + h * 0.15f, ctx.u(0.012f)},
            handle);
  paint_sdf(img,
            SdfCapsule{hx + w * 0.2f, cy + h * 0.15f, hx, cy + h * 0.25f,
                       ctx.u(0.012f)},
            handle);
  // Body.
  paint_sdf_hgrad(img, SdfRoundRect{ctx.cx, cy, w / 2, h / 2, w * 0.12f},
                  ceramic.scaled(0.7f), ceramic, ctx.cx - w / 2,
                  ctx.cx + w / 2);
  // Coffee surface.
  paint_sdf(img,
            SdfEllipse{ctx.cx, cy - h / 2 + ctx.u(0.012f), w * 0.42f,
                       ctx.u(0.018f)},
            {0.25f, 0.15f, 0.08f});
  paint_highlight(img, ctx.cx - w * 0.2f, cy - h * 0.1f, w * 0.14f, h * 0.3f,
                  0.3f);
}

void render_laptop(Ctx& ctx) {
  Image& img = *ctx.img;
  float w = ctx.u(ctx.jitter(0.34, 0.42));
  float screen_h = ctx.u(ctx.jitter(0.2, 0.26));
  float base_h = ctx.u(0.035f);
  float base_y = ctx.cy;
  Rgb shell = jitter_color(*ctx.rng, {0.55f, 0.56f, 0.58f}, 0.08f);
  paint_shadow(img, ctx.cx, base_y + ctx.u(0.008f), w * 0.65f, ctx.u(0.02f),
               0.35f);
  // Base (keyboard deck).
  paint_sdf(img,
            SdfRoundRect{ctx.cx, base_y - base_h / 2, w / 2, base_h / 2,
                         base_h * 0.3f},
            shell);
  // Screen.
  float sc_cy = base_y - base_h - screen_h / 2;
  paint_sdf(img,
            SdfRoundRect{ctx.cx, sc_cy, w * 0.46f, screen_h / 2,
                         ctx.u(0.01f)},
            shell.scaled(0.7f));
  Rgb glow = jitter_color(*ctx.rng, {0.3f, 0.5f, 0.75f}, 0.2f);
  paint_sdf(img,
            SdfRoundRect{ctx.cx, sc_cy, w * 0.42f, screen_h * 0.42f,
                         ctx.u(0.006f)},
            glow);
  // Key rows.
  texture_stripes(img,
                  SdfRoundRect{ctx.cx, base_y - base_h / 2, w * 0.45f,
                               base_h * 0.35f, 1.0f},
                  shell.scaled(0.75f), base_h * 0.5f, 0.4f, 0.0f, 0.8f);
}

void render_sunhat(Ctx& ctx) {
  Image& img = *ctx.img;
  float brim_w = ctx.u(ctx.jitter(0.34, 0.42));
  float dome_w = brim_w * ctx.jitter(0.42, 0.52);
  float dome_h = ctx.u(ctx.jitter(0.12, 0.16));
  float base_y = ctx.cy - ctx.u(0.02f);
  Rgb straw = jitter_color(*ctx.rng, {0.85f, 0.72f, 0.45f}, 0.1f);
  paint_shadow(img, ctx.cx, ctx.cy + ctx.u(0.01f), brim_w * 0.6f,
               ctx.u(0.025f), 0.35f);
  // Brim.
  paint_sdf_hgrad(img,
                  SdfEllipse{ctx.cx, base_y, brim_w / 2, ctx.u(0.045f)},
                  straw.scaled(0.75f), straw, ctx.cx - brim_w / 2,
                  ctx.cx + brim_w / 2);
  // Dome.
  paint_sdf_hgrad(img,
                  SdfEllipse{ctx.cx, base_y - dome_h * 0.8f, dome_w / 2,
                             dome_h},
                  straw.scaled(0.8f), straw, ctx.cx - dome_w / 2,
                  ctx.cx + dome_w / 2);
  // Ribbon.
  Rgb ribbon = jitter_color(*ctx.rng, {0.5f, 0.15f, 0.2f}, 0.15f);
  paint_sdf(img,
            SdfRoundRect{ctx.cx, base_y - dome_h * 0.35f, dome_w * 0.52f,
                         ctx.u(0.016f), 2.0f},
            ribbon);
  texture_speckle(img,
                  SdfEllipse{ctx.cx, base_y, brim_w / 2, ctx.u(0.045f)},
                  0.03f, 2.0f, ctx.rng->next_u64());
}

}  // namespace

Image render_scene(const SceneSpec& spec, int size) {
  ES_CHECK(size >= 32);
  ES_CHECK(spec.class_id >= 0 && spec.class_id < kNumClasses);
  ES_CHECK(spec.view_angle >= -1.0f && spec.view_angle <= 1.0f);

  Image img(size, size, 3);
  // Instance RNG: fully determined by class + instance seed, so the same
  // object re-renders identically at any angle except for the viewpoint
  // itself.
  Pcg32 rng(spec.instance_seed * 977 + static_cast<std::uint64_t>(
                                           spec.class_id + 1) * 131071,
            7);

  draw_background(img, rng);
  draw_clutter(img, rng);

  Ctx ctx;
  ctx.img = &img;
  ctx.rng = &rng;
  ctx.s = static_cast<float>(size);
  ctx.scale = static_cast<float>(rng.uniform(0.78, 1.0));
  // Viewpoint: the rig's five angles shift the object horizontally and
  // slightly change apparent width (the object is 3-D; the renderer
  // approximates the foreshortening).
  float angle_shift = spec.view_angle * ctx.s * 0.13f;
  ctx.cx = ctx.s * 0.5f + angle_shift +
           static_cast<float>(rng.uniform(-0.02, 0.02)) * ctx.s;
  ctx.cy = ctx.s * static_cast<float>(rng.uniform(0.76, 0.86));
  ctx.scale *= 1.0f - 0.06f * std::abs(spec.view_angle);

  switch (spec.class_id) {
    case kWaterBottle: render_water_bottle(ctx); break;
    case kBeerBottle: render_beer_bottle(ctx); break;
    case kWineBottle: render_wine_bottle(ctx); break;
    case kPurse: render_purse(ctx); break;
    case kBackpack: render_backpack(ctx); break;
    case kRedWine: render_red_wine(ctx); break;
    case kPillow: render_pillow(ctx); break;
    case kBubble: render_bubble(ctx); break;
    case kSoccerBall: render_soccer_ball(ctx); break;
    case kCoffeeMug: render_coffee_mug(ctx); break;
    case kLaptop: render_laptop(ctx); break;
    case kSunhat: render_sunhat(ctx); break;
    default: ES_CHECK_MSG(false, "unhandled class");
  }
  // Global lighting variation (lamp brightness / exposure of the source
  // photo the monitor displays).
  float light = static_cast<float>(rng.uniform(0.8, 1.1));
  for (float& v : img.data()) v *= light;
  img.clamp();
  return img;
}

}  // namespace edgestab
