// Dataset construction: pretraining corpus and model-input conversion.
//
// The pretraining corpus stands in for ImageNet: direct renders of all 12
// classes with viewpoint and photometric augmentation — crucially *not*
// passed through any phone pipeline, so the evaluation-time captures are
// out-of-distribution for the model in the same way lab photos were for
// the paper's ImageNet-pretrained MobileNetV2.
#pragma once

#include "data/render.h"
#include "image/image.h"
#include "nn/trainer.h"
#include "util/rng.h"

namespace edgestab {

/// Model input geometry + normalization (MobileNetV2 convention [-1,1]).
inline constexpr int kModelInputSize = 32;

/// Convert a display-referred [0,1] image to a [1,3,S,S] model input.
Tensor image_to_input(const Image& display_referred,
                      int input_size = kModelInputSize);

/// Convert a decoded 8-bit capture to a model input.
Tensor capture_to_input(const ImageU8& decoded,
                        int input_size = kModelInputSize);

/// Append sample(s) utility: stack a list of [1,3,S,S] tensors.
Tensor stack_inputs(const std::vector<Tensor>& samples);

struct PretrainConfig {
  int per_class = 250;
  int scene_size = 96;
  std::uint64_t seed = 1234;
  /// Photometric augmentation ranges.
  float brightness_jitter = 0.08f;
  float contrast_jitter = 0.15f;
  float noise_sigma = 0.015f;
  float color_cast = 0.06f;       ///< per-channel gain jitter
  float blur_probability = 0.3f;  ///< chance of a down-up blur pass
  float jpeg_probability = 0.5f;  ///< chance of a JPEG round-trip
  /// Chance a training image passes through a neutral reference camera
  /// (sensor + ISP + JPEG). ImageNet photos are camera outputs; without
  /// this the renders lack all acquisition structure and the model's
  /// margins are unrealistically thin on captured inputs.
  float capture_probability = 0.5f;
};

/// Build the synthetic pretraining corpus over all 12 classes.
TensorDataset make_pretrain_dataset(const PretrainConfig& config);

/// Validation split uses a disjoint instance-seed range.
TensorDataset make_validation_dataset(const PretrainConfig& config);

}  // namespace edgestab
