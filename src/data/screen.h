// Monitor display simulation.
//
// The lab rig (paper §3.2, Fig. 2) photographs images shown on a computer
// screen in a dark room. The screen re-emits the displayed sRGB image as
// linear light with its own white point, backlight level, black glow and
// subpixel structure — one more transformation every phone sees
// identically, exactly as in the paper's setup.
#pragma once

#include <array>

#include "image/image.h"

namespace edgestab {

struct ScreenConfig {
  float backlight = 1.0f;        ///< peak luminance scale
  float black_level = 0.012f;    ///< LCD glow floor (linear)
  std::array<float, 3> white_point = {1.0f, 0.99f, 1.03f};
  float pixel_grid = 0.05f;      ///< visibility of the subpixel grid
  int output_scale = 2;          ///< emitted resolution multiplier
};

/// Convert a display-referred sRGB image to the linear-light emission the
/// cameras photograph.
Image display_on_screen(const Image& srgb_image, const ScreenConfig& config);

}  // namespace edgestab
