#include "data/lab_rig.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "data/labels.h"
#include "fault/fault.h"
#include "obs/drift.h"
#include "obs/fault_ledger.h"
#include "obs/obs.h"
#include "obs/telemetry/telemetry.h"
#include "runtime/parallel.h"
#include "runtime/seed.h"
#include "util/hashing.h"

namespace edgestab {

namespace {

/// Capture-site fault injection for one (phone, stimulus, shot). A
/// dropout loses the frame outright (not retryable — the emission has
/// moved on); a transient device failure is retried up to the plan's
/// attempt budget with recorded (never slept) backoff. Every decision is
/// a pure function of the fault seed and the shot coordinates, so the
/// schedule is identical at any thread count. Marks `record` dropped
/// when the shot is lost and files the receipts with the fault ledger.
void inject_capture_faults(const std::string& group,
                           const PhoneProfile& phone, int device,
                           std::size_t stimulus, std::size_t shot,
                           LabShot& record) {
  const auto& injector = fault::FaultInjector::global();
  if (!injector.enabled()) return;

  using obs::FaultEvent;
  using obs::FaultEventKind;
  auto& ledger = obs::FaultLedger::global();
  const int item = static_cast<int>(stimulus);
  const int rep = static_cast<int>(shot);

  if (injector.capture_dropout(phone.noise_stream, stimulus, shot)) {
    record.dropped = true;
    ledger.record(group, FaultEvent{FaultEventKind::kCaptureDropout, device,
                                    item, rep, 0, false, 0.0});
    ledger.record(group, FaultEvent{FaultEventKind::kShotLost, device, item,
                                    rep, 0, false, 1.0});
    if (obs::telemetry_enabled()) {
      obs::DeviceHealthRegistry::global().record_capture_loss(device, item,
                                                              rep, 0);
    }
    return;
  }

  const int max_attempts = std::max(1, injector.plan().max_attempts);
  std::vector<FaultEvent> events;
  int attempt = 0;
  while (attempt < max_attempts &&
         injector.transient_failure(phone.noise_stream, stimulus, shot,
                                    attempt)) {
    events.push_back(FaultEvent{FaultEventKind::kTransientFailure, device,
                                item, rep, attempt, false, 0.0});
    ++attempt;
    if (attempt < max_attempts)
      events.push_back(FaultEvent{FaultEventKind::kRetry, device, item, rep,
                                  attempt, false,
                                  injector.backoff_ms(attempt)});
  }
  const bool recovered = attempt < max_attempts;
  record.capture_attempts = recovered ? attempt + 1 : attempt;
  if (!recovered) {
    record.dropped = true;
    events.push_back(FaultEvent{FaultEventKind::kShotLost, device, item, rep,
                                attempt - 1, false,
                                static_cast<double>(attempt)});
  }
  for (FaultEvent& e : events) {
    if (e.kind != FaultEventKind::kShotLost) e.recovered = recovered;
    ledger.record(group, e);
  }
  if (obs::telemetry_enabled()) {
    auto& registry = obs::DeviceHealthRegistry::global();
    if (recovered) {
      // The shot itself is counted when delivery records it; only the
      // capture retries land here.
      registry.record_retries(device, item, attempt);
    } else {
      registry.record_capture_loss(device, item, rep, attempt - 1);
    }
  }
}

}  // namespace

namespace {
std::atomic<int> rig_run_counter{0};
}  // namespace

void reset_rig_run_counter() {
  rig_run_counter.store(0, std::memory_order_relaxed);
}

LabRun run_lab_rig(const std::vector<PhoneProfile>& fleet,
                   const LabRigConfig& config) {
  ES_TRACE_SCOPE("rig", "run_lab_rig");
  ES_CHECK(!fleet.empty());
  ES_CHECK(config.objects_per_class > 0);
  ES_CHECK(!config.angles.empty());
  ES_CHECK(config.shots_per_stimulus >= 1);

  // Group name for this rig run, shared by the drift auditor and the
  // fault ledger. A process can run the rig more than once (end-to-end
  // rig, then the raw bank's rig); stimulus ids restart from 0 each
  // time, so each run gets its own group name to keep reference
  // artifacts (and fault tallies) from colliding. The counter advances
  // unconditionally so group names agree across build flavors. The
  // string outlives every scope below.
  const int rig_run = rig_run_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string group =
      rig_run == 0 ? "capture" : "capture#" + std::to_string(rig_run);
  if (obs::drift_enabled()) {
    for (std::size_t p = 0; p < fleet.size(); ++p)
      obs::DriftAuditor::global().set_env_label(
          group, static_cast<int>(p), fleet[p].name);
  }

  LabRun run;
  run.angle_count = static_cast<int>(config.angles.size());
  run.phone_count = static_cast<int>(fleet.size());

  // Object list: objects_per_class instances of each target class.
  std::vector<SceneSpec> objects;
  for (int cls : target_classes()) {
    for (int i = 0; i < config.objects_per_class; ++i) {
      SceneSpec spec;
      spec.class_id = cls;
      spec.instance_seed =
          config.seed * 131 + static_cast<std::uint64_t>(i);
      objects.push_back(spec);
      run.object_class.push_back(cls);
    }
  }

  // The stimulus grid fans out across the thread pool, one lane per
  // (object, angle) stimulus: render + display once, then every phone
  // photographs the emission. Each (phone, stimulus, shot) draws its
  // temporal noise from a counter-derived stream, so a capture's bits
  // depend only on the rig seed and its coordinates — never on which
  // lane produced it or in what order.
  //
  // Phones (the drift-audit environments) stay serial *within* a
  // stimulus: the auditor's reference is the first environment to tap an
  // item, which must be the same phone at every thread count.
  const std::size_t phones = fleet.size();
  const auto shots_per =
      static_cast<std::size_t>(config.shots_per_stimulus);
  const std::size_t stimuli =
      objects.size() * static_cast<std::size_t>(run.angle_count);
  run.shots.resize(stimuli * phones * shots_per);

  runtime::parallel_for(
      stimuli,
      [&](std::size_t s) {
        const std::size_t obj =
            s / static_cast<std::size_t>(run.angle_count);
        const int a =
            static_cast<int>(s % static_cast<std::size_t>(run.angle_count));
        SceneSpec spec = objects[obj];
        spec.view_angle = config.angles[static_cast<std::size_t>(a)];
        Image scene = render_scene(spec, config.scene_size);
        Image emission = display_on_screen(scene, config.screen);

        for (std::size_t p = 0; p < phones; ++p) {
          for (std::size_t shot = 0; shot < shots_per; ++shot) {
            LabShot record;
            record.object_index = static_cast<int>(obj);
            record.class_id = spec.class_id;
            record.angle_index = a;
            record.phone_index = static_cast<int>(p);
            record.repeat = static_cast<int>(shot);
            inject_capture_faults(group, fleet[p], static_cast<int>(p), s,
                                  shot, record);
            if (!record.dropped) {
              // A surviving capture draws the same noise stream as a
              // clean run, so its pixels are bit-identical whether or
              // not faults were armed around it.
              Pcg32 rng = runtime::derive_rng(
                  config.seed, fleet[p].noise_stream, s, shot);
              if (obs::drift_enabled() && shot == 0) {
                // First shot of each stimulus: audit every ISP stage
                // inside take_photo against the first phone's artifacts.
                ES_DRIFT_SCOPE(group.c_str(), static_cast<int>(s),
                               static_cast<int>(p));
                record.capture = take_photo(fleet[p], emission, rng);
              } else {
                record.capture = take_photo(fleet[p], emission, rng);
              }
            }
            run.shots[(s * phones + p) * shots_per + shot] =
                std::move(record);
          }
        }
      },
      /*grain=*/1);
  return run;
}

std::uint64_t rig_digest(const LabRigConfig& config) {
  Fingerprint fp;
  fp.add("lab-rig-v1");
  fp.add(config.objects_per_class).add(config.scene_size);
  fp.add(static_cast<double>(config.screen.backlight))
      .add(static_cast<double>(config.screen.black_level));
  for (float w : config.screen.white_point) fp.add(static_cast<double>(w));
  fp.add(static_cast<double>(config.screen.pixel_grid))
      .add(config.screen.output_scale);
  for (float a : config.angles) fp.add(static_cast<double>(a));
  fp.add(config.seed).add(config.shots_per_stimulus);
  return fp.value();
}

}  // namespace edgestab
