#include "data/screen.h"

#include "image/color.h"
#include "image/resize.h"

namespace edgestab {

Image display_on_screen(const Image& srgb_image, const ScreenConfig& config) {
  ES_CHECK(srgb_image.channels() == 3);
  ES_CHECK(config.output_scale >= 1);

  // Upsample to the emitted resolution (the monitor is much denser than
  // the photographed framing).
  Image up = config.output_scale == 1
                 ? srgb_image
                 : resize(srgb_image,
                          srgb_image.width() * config.output_scale,
                          srgb_image.height() * config.output_scale,
                          ResizeFilter::kBilinear);

  Image emission = srgb_decode(up);
  for (int y = 0; y < emission.height(); ++y)
    for (int x = 0; x < emission.width(); ++x) {
      // Subpixel grid: every third emitted column favors one channel.
      for (int c = 0; c < 3; ++c) {
        float grid = 1.0f;
        if (config.pixel_grid > 0.0f)
          grid = (x % 3 == c) ? 1.0f + config.pixel_grid
                              : 1.0f - config.pixel_grid * 0.5f;
        float v = emission.at(x, y, c);
        v = config.black_level + (1.0f - config.black_level) * v;
        v *= config.backlight *
             config.white_point[static_cast<std::size_t>(c)] * grid;
        emission.at(x, y, c) = v;
      }
    }
  return emission;
}

}  // namespace edgestab
