// Procedural scene renderer.
//
// Stands in for the paper's photo collection (§3.1: Flickr scrapes,
// Amazon product photos and self-taken photos of five classes). Every
// object instance is a deterministic function of (class, instance seed):
// silhouette proportions, colors, label art, background and lighting all
// vary per instance, and the three bottle classes deliberately share
// silhouette structure so they are mutually confusable — the regime the
// paper's borderline-confidence findings (Fig. 4) live in.
#pragma once

#include <cstdint>

#include "image/image.h"

namespace edgestab {

struct SceneSpec {
  int class_id = 0;
  std::uint64_t instance_seed = 0;

  /// Horizontal viewpoint in [-1, 1]: the lab rig's five angles
  /// (left .. right, §3.2) shift the object and skew the perspective.
  float view_angle = 0.0f;
};

/// Render a display-referred sRGB image in [0,1] (what would be shown on
/// the lab monitor).
Image render_scene(const SceneSpec& spec, int size);

}  // namespace edgestab
