#include "device/fleets.h"

#include "util/check.h"
#include "util/hashing.h"

namespace edgestab {

namespace {

/// Blend a parameter toward its reference value as divergence -> 0.
float lerp_ref(float ref, float value, float divergence) {
  return ref + (value - ref) * divergence;
}

std::array<float, 9> blend_ccm(const std::array<float, 9>& ccm,
                               float divergence) {
  const std::array<float, 9> identity = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::array<float, 9> out{};
  for (int i = 0; i < 9; ++i)
    out[static_cast<std::size_t>(i)] =
        lerp_ref(identity[static_cast<std::size_t>(i)],
                 ccm[static_cast<std::size_t>(i)], divergence);
  return out;
}

/// Common sensor geometry for the lab fleet.
SensorConfig base_sensor(std::uint64_t unit_seed) {
  SensorConfig s;
  s.width = 64;
  s.height = 64;
  s.unit_seed = unit_seed;
  return s;
}

}  // namespace

std::vector<PhoneProfile> end_to_end_fleet(float divergence) {
  ES_CHECK(divergence >= 0.0f && divergence <= 4.0f);
  // The raw parameter deltas below describe a *maximally* divergent
  // fleet; the calibration pass (see DESIGN.md §7 and the ablation
  // bench) found that scaling them to 25% reproduces the paper's
  // end-to-end instability band of 14-17% with a flat accuracy profile,
  // so divergence = 1 maps to that operating point.
  const float d = divergence * 0.25f;
  std::vector<PhoneProfile> fleet;

  {
    // Samsung Galaxy S10 analogue — reference-grade pipeline, JPEG, raw.
    PhoneProfile p;
    p.name = "Samsung Galaxy S10";
    p.model_code = "SM-G973U1";
    p.sensor = base_sensor(101);
    p.sensor.channel_response = {lerp_ref(1.0f, 1.04f, d), 1.0f,
                                 lerp_ref(1.0f, 0.98f, d)};
    p.sensor.exposure = lerp_ref(1.0f, 1.05f, d);
    p.sensor.read_noise = 1.0f;
    p.sensor.vignetting = lerp_ref(0.12f, 0.10f, d);
    p.isp.name = "samsung_isp";
    p.isp.demosaic_kind = DemosaicKind::kMalvar;
    p.isp.wb_gains = {lerp_ref(1.0f, 1.06f, d), 1.0f,
                      lerp_ref(1.0f, 1.10f, d)};
    p.isp.ccm = blend_ccm({1.30f, -0.22f, -0.08f,  //
                           -0.16f, 1.28f, -0.12f,  //
                           -0.06f, -0.26f, 1.32f},
                          d);
    p.isp.s_curve = lerp_ref(0.2f, 0.35f, d);
    p.isp.sharpen_amount = lerp_ref(0.4f, 0.55f, d);
    p.isp.saturation = lerp_ref(1.0f, 1.12f, d);
    p.storage_format = ImageFormat::kJpegLike;
    p.storage_quality = 90;
    p.supports_raw = true;
    p.mount_dx = 0.0f;
    p.noise_stream = 11;
    fleet.push_back(p);
  }
  {
    // LG K10 analogue — budget sensor: noisier, cooler rendition.
    PhoneProfile p;
    p.name = "LG K10 LTE";
    p.model_code = "K425";
    p.sensor = base_sensor(102);
    p.sensor.channel_response = {lerp_ref(1.0f, 0.94f, d), 1.0f,
                                 lerp_ref(1.0f, 1.06f, d)};
    p.sensor.exposure = lerp_ref(1.0f, 0.96f, d);
    p.sensor.full_well = 16000.0f;
    p.sensor.read_noise = 1.6f;
    p.sensor.vignetting = lerp_ref(0.12f, 0.17f, d);
    p.isp.name = "lg_isp";
    p.isp.demosaic_kind = DemosaicKind::kMalvar;
    p.isp.wb_gains = {lerp_ref(1.0f, 0.96f, d), 1.0f,
                      lerp_ref(1.0f, 1.22f, d)};
    p.isp.ccm = blend_ccm({1.14f, -0.10f, -0.04f,  //
                           -0.08f, 1.12f, -0.04f,  //
                           -0.02f, -0.12f, 1.14f},
                          d);
    p.isp.denoise_strength = lerp_ref(0.3f, 0.55f, d);
    p.isp.s_curve = lerp_ref(0.2f, 0.10f, d);
    p.isp.sharpen_amount = lerp_ref(0.4f, 0.25f, d);
    p.isp.saturation = lerp_ref(1.0f, 0.92f, d);
    p.storage_format = ImageFormat::kJpegLike;
    p.storage_quality = 88;
    p.mount_dx = lerp_ref(0.0f, 1.5f, d);
    p.mount_tilt = lerp_ref(0.0f, 0.010f, d);
    p.noise_stream = 12;
    fleet.push_back(p);
  }
  {
    // HTC Desire 10 analogue — warm, contrasty tuning.
    PhoneProfile p;
    p.name = "HTC Desire 10 Lifestyle";
    p.model_code = "DESIRE 10";
    p.sensor = base_sensor(103);
    p.sensor.channel_response = {lerp_ref(1.0f, 1.08f, d), 1.0f,
                                 lerp_ref(1.0f, 0.92f, d)};
    p.sensor.exposure = lerp_ref(1.0f, 1.05f, d);
    p.sensor.full_well = 16000.0f;
    p.sensor.read_noise = 1.6f;
    p.sensor.vignetting = lerp_ref(0.12f, 0.16f, d);
    p.isp.name = "htc_isp";
    p.isp.demosaic_kind = DemosaicKind::kMalvar;
    p.isp.wb_mode = WhiteBalanceMode::kGrayWorld;
    p.isp.ccm = blend_ccm({1.38f, -0.28f, -0.10f,  //
                           -0.20f, 1.34f, -0.14f,  //
                           -0.08f, -0.30f, 1.38f},
                          d);
    p.isp.s_curve = lerp_ref(0.2f, 0.50f, d);
    p.isp.sharpen_amount = lerp_ref(0.4f, 0.70f, d);
    p.isp.saturation = lerp_ref(1.0f, 1.20f, d);
    p.storage_format = ImageFormat::kJpegLike;
    p.storage_quality = 88;
    p.mount_dx = lerp_ref(0.0f, -1.2f, d);
    p.noise_stream = 13;
    fleet.push_back(p);
  }
  {
    // Motorola Moto G5 analogue — neutral but soft pipeline.
    PhoneProfile p;
    p.name = "Motorola Moto G5";
    p.model_code = "XT1670";
    p.sensor = base_sensor(104);
    p.sensor.channel_response = {lerp_ref(1.0f, 0.98f, d), 1.0f,
                                 lerp_ref(1.0f, 1.02f, d)};
    p.sensor.exposure = lerp_ref(1.0f, 0.97f, d);
    p.sensor.full_well = 17000.0f;
    p.sensor.read_noise = 1.5f;
    p.sensor.vignetting = lerp_ref(0.12f, 0.18f, d);
    p.isp.name = "moto_isp";
    p.isp.demosaic_kind = DemosaicKind::kMalvar;
    p.isp.wb_gains = {lerp_ref(1.0f, 1.02f, d), 1.0f,
                      lerp_ref(1.0f, 1.04f, d)};
    p.isp.ccm = blend_ccm({1.10f, -0.06f, -0.04f,  //
                           -0.05f, 1.08f, -0.03f,  //
                           -0.02f, -0.08f, 1.10f},
                          d);
    p.isp.denoise_strength = lerp_ref(0.3f, 0.45f, d);
    p.isp.s_curve = lerp_ref(0.2f, 0.15f, d);
    p.isp.sharpen_amount = lerp_ref(0.4f, 0.20f, d);
    p.storage_format = ImageFormat::kJpegLike;
    p.storage_quality = 87;
    p.mount_dy = lerp_ref(0.0f, 1.0f, d);
    p.noise_stream = 14;
    fleet.push_back(p);
  }
  {
    // iPhone XR analogue — HEIF storage, raw support, its own rendition.
    PhoneProfile p;
    p.name = "iPhone XR";
    p.model_code = "A1984";
    p.sensor = base_sensor(105);
    p.sensor.channel_response = {lerp_ref(1.0f, 1.02f, d), 1.0f,
                                 lerp_ref(1.0f, 1.05f, d)};
    p.sensor.exposure = lerp_ref(1.0f, 1.02f, d);
    p.sensor.full_well = 20000.0f;
    p.sensor.read_noise = 1.1f;
    p.sensor.vignetting = lerp_ref(0.12f, 0.13f, d);
    p.isp.name = "apple_isp";
    p.isp.demosaic_kind = DemosaicKind::kMalvar;
    p.isp.wb_gains = {lerp_ref(1.0f, 1.12f, d), 1.0f,
                      lerp_ref(1.0f, 0.96f, d)};
    p.isp.ccm = blend_ccm({1.24f, -0.18f, -0.06f,  //
                           -0.12f, 1.22f, -0.10f,  //
                           -0.05f, -0.20f, 1.25f},
                          d);
    p.isp.s_curve = lerp_ref(0.2f, 0.28f, d);
    p.isp.sharpen_amount = lerp_ref(0.4f, 0.45f, d);
    p.isp.saturation = lerp_ref(1.0f, 1.06f, d);
    p.storage_format = ImageFormat::kHeifLike;
    p.storage_quality = 88;
    p.supports_raw = true;
    p.mount_dx = lerp_ref(0.0f, 0.8f, d);
    p.mount_tilt = lerp_ref(0.0f, -0.008f, d);
    p.noise_stream = 15;
    fleet.push_back(p);
  }
  return fleet;
}

std::vector<PhoneProfile> firebase_fleet() {
  // These devices only decode + infer; sensors/ISPs are unused. Two of
  // the five (the Huawei and Xiaomi analogues, as in §7) carry an OS
  // JPEG decoder with different chroma upsampling and a fixed-point
  // IDCT; they also use a different GEMM accumulation order.
  JpegDecodeOptions variant;
  variant.upsample = JpegDecodeOptions::Upsample::kBilinear;
  variant.fixed_point_idct = true;

  std::vector<PhoneProfile> fleet;
  auto add = [&](const std::string& name, const std::string& soc,
                 bool variant_os) {
    PhoneProfile p;
    p.name = name;
    p.model_code = soc;
    p.backend.soc_name = soc;
    p.backend.matmul_mode =
        variant_os ? MatmulMode::kBlocked : MatmulMode::kStandard;
    if (variant_os) p.os_decoder = variant;
    fleet.push_back(p);
  };
  add("Samsung Galaxy Note8", "Exynos 9 Octa 8895", false);
  add("Huawei Mate RS", "HiSilicon Kirin 970", true);
  add("Pixel 2", "Snapdragon 835", false);
  add("Sony XZ3", "Snapdragon 845", false);
  add("Xiaomi Mi 8 Pro", "Helio G90T (MT6785T)", true);
  return fleet;
}

std::uint64_t profile_digest(const PhoneProfile& phone) {
  Fingerprint fp;
  fp.add("phone-profile-v1");
  fp.add(phone.name).add(phone.model_code);
  fp.add(sensor_digest(phone.sensor));
  fp.add(isp_digest(phone.isp));
  fp.add(static_cast<int>(phone.storage_format)).add(phone.storage_quality);
  fp.add(static_cast<int>(phone.supports_raw));
  fp.add(static_cast<double>(phone.mount_dx))
      .add(static_cast<double>(phone.mount_dy))
      .add(static_cast<double>(phone.mount_tilt));
  fp.add(static_cast<int>(phone.os_decoder.upsample))
      .add(static_cast<int>(phone.os_decoder.fixed_point_idct));
  fp.add(phone.backend.soc_name)
      .add(static_cast<int>(phone.backend.matmul_mode));
  fp.add(phone.noise_stream);
  return fp.value();
}

const PhoneProfile& find_phone(const std::vector<PhoneProfile>& fleet,
                               const std::string& name) {
  for (const PhoneProfile& p : fleet)
    if (p.name == name) return p;
  ES_CHECK_MSG(false, "no phone named " << name);
  return fleet.front();
}

}  // namespace edgestab
