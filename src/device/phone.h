// Phone device profiles.
//
// A PhoneProfile bundles everything that makes "the same photo" differ
// between devices in the paper's experiments: the sensor unit, the ISP
// pipeline, the storage codec (format + quality), optional raw capture
// support, the OS's JPEG decoder behaviour, and the SoC compute backend.
#pragma once

#include <string>

#include "codec/codec.h"
#include "codec/jpeg_like.h"
#include "isp/pipeline.h"
#include "isp/sensor.h"
#include "tensor/ops.h"

namespace edgestab {

/// SoC math behaviour for on-device inference (paper §7: floating point
/// and instruction scheduling differences).
struct ComputeBackend {
  std::string soc_name = "generic";
  MatmulMode matmul_mode = MatmulMode::kStandard;
};

struct PhoneProfile {
  std::string name;        ///< e.g. "Samsung Galaxy S10"
  std::string model_code;  ///< e.g. "SM-G973U1"

  SensorConfig sensor;
  IspConfig isp;

  ImageFormat storage_format = ImageFormat::kJpegLike;
  int storage_quality = 90;
  bool supports_raw = false;

  /// Geometric mounting tolerances (pixels of scene offset, radians) —
  /// every physical rig has them.
  float mount_dx = 0.0f;
  float mount_dy = 0.0f;
  float mount_tilt = 0.0f;

  JpegDecodeOptions os_decoder;  ///< how this OS decodes JPEG files
  ComputeBackend backend;

  /// Per-phone deterministic stream id for temporal noise.
  std::uint64_t noise_stream = 1;
};

}  // namespace edgestab
