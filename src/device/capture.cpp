#include "device/capture.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "image/resize.h"
#include "obs/obs.h"

namespace edgestab {

namespace {

// EDGESTAB_PERF_CANARY_MS injects a per-shot sleep into the capture
// stage: a known slowdown that changes no pixels, used by the regression
// gate to prove the sentinel flags wall-time regressions without
// touching digests. 0 / unset = off.
int perf_canary_ms() {
  static const int ms = [] {
    const char* env = std::getenv("EDGESTAB_PERF_CANARY_MS");
    return env != nullptr ? std::atoi(env) : 0;
  }();
  return ms;
}

}  // namespace

Capture take_photo(const PhoneProfile& phone, const Image& screen_emission,
                   Pcg32& rng) {
  ES_TRACE_SCOPE("device", "take_photo");
  ES_CHECK(screen_emission.channels() == 3);
  if (int ms = perf_canary_ms(); ms > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));

  // Optics + mount: small per-phone geometric offset/tilt of the framed
  // scene. The warp maps output (sensor-facing) coordinates to screen
  // coordinates.
  Image framed = screen_emission;
  if (phone.mount_dx != 0.0f || phone.mount_dy != 0.0f ||
      phone.mount_tilt != 0.0f) {
    ES_TRACE_SCOPE("device", "frame_warp");
    float cx = static_cast<float>(screen_emission.width()) / 2.0f;
    float cy = static_cast<float>(screen_emission.height()) / 2.0f;
    Affine warp = Affine::rotate_about(phone.mount_tilt, cx, cy)
                      .compose(Affine::translate(phone.mount_dx,
                                                 phone.mount_dy));
    framed = warp_affine(screen_emission, warp, screen_emission.width(),
                         screen_emission.height());
  }

  RawImage raw = expose_sensor(framed, phone.sensor, rng);
  Image developed = run_isp(raw, phone.isp);

  Capture capture;
  capture.format = phone.storage_format;
  capture.quality = phone.storage_quality;
  {
    ES_TRACE_SCOPE("device", "store_file");
    auto codec = make_codec(phone.storage_format, phone.storage_quality);
    capture.file = codec->encode(to_u8(developed));
  }
  if (phone.supports_raw) capture.raw = raw;
  ES_COUNT("device.shots_captured", 1);
  return capture;
}

ImageU8 decode_capture(const Capture& capture,
                       const JpegDecodeOptions& os_decoder) {
  ES_TRACE_SCOPE("device", "decode_capture");
  if (capture.format == ImageFormat::kJpegLike) {
    JpegLikeCodec codec(capture.quality, os_decoder);
    return codec.decode(capture.file);
  }
  auto codec = make_codec(capture.format, capture.quality);
  return codec->decode(capture.file);
}

DecodeResult try_decode_capture(const Capture& capture,
                                const JpegDecodeOptions& os_decoder) {
  ES_TRACE_SCOPE("device", "decode_capture");
  try {
    if (capture.format == ImageFormat::kJpegLike) {
      // Constructing the codec validates the quality field, which on a
      // dropped or mangled capture may itself be garbage.
      JpegLikeCodec codec(capture.quality, os_decoder);
      return codec.try_decode(capture.file);
    }
    auto codec = try_make_codec(capture.format, capture.quality);
    if (!codec) {
      DecodeResult result;
      result.status = DecodeStatus::kUnknownFormat;
      result.message = "unknown storage format " +
                       std::to_string(static_cast<int>(capture.format));
      return result;
    }
    return codec->try_decode(capture.file);
  } catch (const CheckError& e) {
    DecodeResult result;
    result.status = DecodeStatus::kBadHeader;
    result.message = e.what();
    return result;
  }
}

Image develop_raw(const RawImage& raw, const IspConfig& software_isp) {
  ES_TRACE_SCOPE("device", "develop_raw");
  return run_isp(raw, software_isp);
}

}  // namespace edgestab
