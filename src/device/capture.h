// The photo-taking path: displayed scene -> optics -> sensor -> ISP ->
// storage codec. Mirrors the paper's lab rig where each phone photographs
// the same image shown on a monitor (§3.2, Figure 2).
#pragma once

#include <optional>

#include "device/phone.h"
#include "image/image.h"
#include "util/rng.h"

namespace edgestab {

/// A stored photo: compressed bytes + the format they are in, plus the
/// raw mosaic when the phone supports raw capture (§9.2).
struct Capture {
  Bytes file;
  ImageFormat format = ImageFormat::kJpegLike;
  int quality = 0;
  std::optional<RawImage> raw;
};

/// Photograph `screen_emission` (linear-light radiance of the displayed
/// image, any resolution) with the given phone. `rng` drives temporal
/// sensor noise — two calls with the same phone and scene model two
/// consecutive shots (Figure 1).
Capture take_photo(const PhoneProfile& phone, const Image& screen_emission,
                   Pcg32& rng);

/// Decode a capture's stored bytes with a given OS decoder behaviour
/// (inference may happen on a different device than the one that took
/// the photo). Aborts (CheckError) on malformed bytes — use
/// try_decode_capture when the payload may have been corrupted in
/// transit.
ImageU8 decode_capture(const Capture& capture,
                       const JpegDecodeOptions& os_decoder);

/// Total variant of decode_capture for untrusted payloads: malformed
/// bytes, an empty capture (dropout) or an out-of-enum format come back
/// as a typed DecodeResult instead of killing the process.
DecodeResult try_decode_capture(const Capture& capture,
                                const JpegDecodeOptions& os_decoder);

/// Convert a raw capture with a software ISP (the §9.2 consistent
/// pipeline), producing a display-referred image.
Image develop_raw(const RawImage& raw, const IspConfig& software_isp);

}  // namespace edgestab
