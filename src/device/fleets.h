// Device fleet presets mirroring the paper's two phone sets.
//
// `end_to_end_fleet` models Table 1 (the lab-rig phones that *take*
// photos): five devices with distinct sensors, ISPs and storage codecs —
// the iPhone analogue stores HEIF, the Androids store JPEG, and only the
// Samsung and iPhone analogues support raw capture, as in the paper.
//
// `firebase_fleet` models Table 5 (the Firebase Test Lab SoCs that only
// *run inference* on a fixed image set): they differ in JPEG decoder
// behaviour and floating-point accumulation, the §7 levers.
#pragma once

#include <cstdint>
#include <vector>

#include "device/phone.h"

namespace edgestab {

/// Strength of cross-device ISP/sensor divergence; 1.0 is the calibrated
/// paper-like fleet (end-to-end instability in the 14-17% band), 0.0
/// collapses every phone to the reference pipeline, values up to 4.0
/// exaggerate the differences (used by the source-ablation bench and the
/// stability-training study).
std::vector<PhoneProfile> end_to_end_fleet(float divergence = 1.0f);

std::vector<PhoneProfile> firebase_fleet();

/// Find a profile by name; throws if absent.
const PhoneProfile& find_phone(const std::vector<PhoneProfile>& fleet,
                               const std::string& name);

/// Stable fingerprint of everything that makes this phone's pipeline
/// unique (sensor, ISP, storage codec, OS decoder, compute backend) —
/// run manifests record one per fleet member so divergent results can be
/// attributed to an exact device configuration.
std::uint64_t profile_digest(const PhoneProfile& phone);

}  // namespace edgestab
