#include "fault/latency.h"

#include <algorithm>
#include <cmath>

#include "runtime/seed.h"

namespace edgestab::fault {

namespace {

// Disjoint from the kSiteDropout..kSiteStraggler salts in fault.cpp so
// the latency stream never aliases an injection stream.
constexpr std::uint64_t kSiteLatency = 0xD205;

// Calibrated to the Yang et al. shape: the budget tier is ~3x slower at
// the median than the flagship tier and an order of magnitude more
// likely to enter the slow mode.
constexpr LatencyClassModel kClassModels[] = {
    /*kFlagship*/ {4.0, 2.0, 0.01, 40.0},
    /*kMid*/ {8.0, 4.0, 0.05, 60.0},
    /*kBudget*/ {16.0, 10.0, 0.12, 120.0},
};

}  // namespace

const char* device_class_name(DeviceClass cls) {
  switch (cls) {
    case DeviceClass::kFlagship: return "flagship";
    case DeviceClass::kMid: return "mid";
    case DeviceClass::kBudget: return "budget";
  }
  return "unknown";
}

LatencyClassModel latency_class_model(DeviceClass cls, const FaultPlan& plan) {
  LatencyClassModel m = kClassModels[static_cast<int>(cls)];
  const double scale = plan.latency_scale > 0.0 ? plan.latency_scale : 1.0;
  m.base_ms *= scale;
  m.jitter_ms *= scale;
  m.slow_mean_ms *= scale;
  m.slow_rate =
      std::clamp(m.slow_rate + plan.latency_slow_boost, 0.0, 1.0);
  return m;
}

double draw_latency_ms(const FaultPlan& plan, DeviceClass cls,
                       std::uint64_t device, std::uint64_t item,
                       std::uint64_t shot, int attempt) {
  const LatencyClassModel m = latency_class_model(cls, plan);
  Pcg32 rng =
      runtime::derive_rng(plan.seed, kSiteLatency,
                          static_cast<std::uint64_t>(cls), device, item, shot,
                          static_cast<std::uint64_t>(attempt));
  double ms = m.base_ms + rng.uniform() * m.jitter_ms;
  if (m.slow_rate > 0.0 && rng.uniform() < m.slow_rate) {
    // Exponential slow mode — most excursions are mild, a few extreme,
    // the same tail shape as the straggler machinery.
    const double u = rng.uniform();
    ms += m.slow_mean_ms * -std::log1p(-u);
  }
  return ms;
}

double deadline_budget_ms(DeviceClass cls, const FaultPlan& plan) {
  if (plan.deadline_ms > 0.0) return plan.deadline_ms;
  return latency_class_model(cls, plan).default_deadline_ms();
}

}  // namespace edgestab::fault
