// Per-device-class latency-variability model.
//
// Yang et al. ("A Note on Latency Variability of Deep Neural Networks
// for Mobile Inference", PAPERS.md) show that inference latency varies
// across devices as wildly as the paper's pixel divergence — and that
// the variability itself is class-shaped: flagships are fast and tight,
// budget phones are slow with a fat straggler tail. This module extends
// the PR 4 straggler machinery into that per-class shape: every shot's
// modeled service latency is a bimodal draw — a uniform jitter band
// around the class base plus a probabilistic exponential slow mode —
// and every draw is a pure function of (plan seed, class, device, item,
// shot, attempt) through runtime::derive_rng, so deadline verdicts and
// breaker trips derived from it are bit-identical at any thread count.
//
// Latencies here are *modeled* milliseconds (recorded, never slept),
// the same contract as FaultInjector::straggler_delay_ms: they feed
// deadline budgets, telemetry latency quantiles and tail-latency
// reports, not wall clock.
#pragma once

#include <cstdint>
#include <string>

#include "fault/fault.h"

namespace edgestab::fault {

/// Device performance tier, the Yang et al. taxonomy collapsed to the
/// three classes the fleet synthesizer assigns.
enum class DeviceClass : int {
  kFlagship = 0,  ///< fast, tight distribution, rare slow mode
  kMid = 1,       ///< the calibrated middle
  kBudget = 2,    ///< slow, wide jitter, fat slow-mode tail
};

const char* device_class_name(DeviceClass cls);

/// Bimodal per-class latency distribution: fast mode is
/// base_ms + U[0,1) * jitter_ms; with probability slow_rate the draw
/// additionally rides an exponential slow mode of mean slow_mean_ms
/// (thermal throttling, background contention, scheduler stalls).
struct LatencyClassModel {
  double base_ms = 8.0;
  double jitter_ms = 4.0;
  double slow_rate = 0.05;
  double slow_mean_ms = 60.0;

  /// Default per-shot deadline budget for a device of this class: the
  /// fast-mode worst case plus half the slow-mode mean, so clean fast
  /// draws always fit and only genuine slow-mode excursions time out.
  double default_deadline_ms() const {
    return base_ms + jitter_ms + 0.5 * slow_mean_ms;
  }
};

/// The class model after applying the plan's latency knobs
/// (latency_scale multiplies every duration; latency_slow_boost adds to
/// the slow-mode probability, clamped to [0, 1]).
LatencyClassModel latency_class_model(DeviceClass cls, const FaultPlan& plan);

/// One shot-attempt's modeled service latency in ms — a pure function
/// of the coordinates, independent of injector arming (the latency
/// model is a property of the device class, not of fault injection).
double draw_latency_ms(const FaultPlan& plan, DeviceClass cls,
                       std::uint64_t device, std::uint64_t item,
                       std::uint64_t shot, int attempt);

/// The effective deadline budget for a device of `cls` under `plan`:
/// plan.deadline_ms when set, else the scaled class default.
double deadline_budget_ms(DeviceClass cls, const FaultPlan& plan);

}  // namespace edgestab::fault
